//! Integration test for the full trace pipeline through the facade:
//! record → serialize → deserialize → replay, cross-checked against direct
//! in-process detection, on real workloads and on facade-level programs.

use futurerd::{Algorithm, Config, Cx, ShadowArray, ShadowCell, Trace};
use futurerd_workloads::{run_workload, FutureMode, WorkloadKind, WorkloadParams};

/// All algorithms that accept futures-bearing streams.
const FUTURE_SAFE: [Algorithm; 3] = [
    Algorithm::MultiBags,
    Algorithm::MultiBagsPlus,
    Algorithm::GraphOracle,
];

fn racy_pipeline(cx: &mut Cx) -> u64 {
    let mut buffer = ShadowArray::new(cx, 4, 0u32);
    let producer = cx.create_future(|cx| {
        for i in 0..4 {
            buffer.set(cx, i, i as u32 + 1);
        }
    });
    let early = buffer.get(cx, 0);
    cx.get_future(producer);
    u64::from(early + buffer.get(cx, 3))
}

fn race_free_fork_join(cx: &mut Cx) -> u32 {
    let mut cell = ShadowCell::new(cx, 0u32);
    cx.spawn(|cx| cell.set(cx, 40));
    cx.sync();
    cell.get(cx) + 2
}

#[test]
fn facade_record_replay_agrees_with_direct_detection() {
    for (body, expected_races) in [
        (racy_pipeline as fn(&mut Cx) -> u64, 1usize),
        (|cx: &mut Cx| race_free_fork_join(cx) as u64, 0usize),
    ] {
        let recorded = futurerd::record(body);
        let trace = Trace::from_bytes(&recorded.trace.to_bytes()).expect("codec round trip");
        for algorithm in FUTURE_SAFE {
            let direct = Config::new().algorithm(algorithm).run(body);
            let replayed = Config::new()
                .algorithm(algorithm)
                .replay(&trace)
                .expect("canonical trace");
            assert_eq!(direct.race_count(), expected_races, "{algorithm:?}");
            assert_eq!(replayed.race_count(), expected_races, "{algorithm:?}");
            assert_eq!(
                replayed.report().witnesses(),
                direct.report().witnesses(),
                "{algorithm:?}"
            );
        }
    }
}

#[test]
fn workload_traces_replay_identically_across_algorithms() {
    let params = WorkloadParams::tiny();
    for (kind, mode) in [
        (WorkloadKind::Lcs, FutureMode::Structured),
        (WorkloadKind::Dedup, FutureMode::General),
    ] {
        let (recorder, _) = run_workload(kind, mode, &params, futurerd::TraceRecorder::new());
        let trace = recorder.into_trace();
        let counts = trace.validate().expect("workload traces are canonical");
        assert!(counts.creates > 0, "{kind}: workloads use futures");
        for algorithm in FUTURE_SAFE {
            let detection = Config::new()
                .algorithm(algorithm)
                .replay(&trace)
                .expect("canonical trace");
            assert!(detection.is_race_free(), "{kind} {mode} {algorithm:?}");
            assert_eq!(detection.summary.creates, counts.creates);
        }
    }
}

/// The determinism guarantee of the parallel engine, end-to-end on real
/// workload traces — including the seeded-race lcs variant, whose report
/// must carry the identical witness at every thread count.
#[test]
fn threaded_replay_is_deterministic_on_workload_traces() {
    let params = WorkloadParams::tiny();
    let mut traces: Vec<(String, Trace)> = Vec::new();
    for (kind, mode) in [
        (WorkloadKind::Lcs, FutureMode::Structured),
        (WorkloadKind::Bst, FutureMode::General),
    ] {
        let (recorder, _) = run_workload(kind, mode, &params, futurerd::TraceRecorder::new());
        traces.push((format!("{kind} {mode}"), recorder.into_trace()));
    }
    // The seeded-race lcs variant: a trace with a real determinacy race.
    let input = futurerd_workloads::lcs::LcsInput::generate(params.n, params.seed);
    let (_, recorder, _) = futurerd_runtime::run_program(futurerd::TraceRecorder::new(), |cx| {
        futurerd_workloads::lcs::structured_with_race(cx, &input, params.base)
    });
    traces.push(("racy lcs".to_string(), recorder.into_trace()));

    for (label, trace) in &traces {
        for algorithm in [Algorithm::MultiBags, Algorithm::MultiBagsPlus] {
            let sequential = Config::new()
                .algorithm(algorithm)
                .replay(trace)
                .expect("canonical trace");
            for threads in [2usize, 3, 8] {
                let parallel = Config::new()
                    .algorithm(algorithm)
                    .threads(threads)
                    .replay(trace)
                    .expect("canonical trace");
                assert_eq!(
                    parallel.race_count(),
                    sequential.race_count(),
                    "{label} {algorithm:?} P={threads}"
                );
                assert_eq!(
                    parallel.report().witnesses(),
                    sequential.report().witnesses(),
                    "{label} {algorithm:?} P={threads}"
                );
                assert_eq!(
                    parallel.report().total_observations(),
                    sequential.report().total_observations(),
                    "{label} {algorithm:?} P={threads}"
                );
            }
        }
    }
    // The racy variant really carries its seeded race.
    let (_, racy) = traces.last().expect("pushed above");
    assert!(Config::structured().replay(racy).unwrap().race_count() >= 1);
}

#[test]
fn trace_files_survive_disk_round_trips() {
    let recorded = futurerd::record(racy_pipeline);
    let path = std::env::temp_dir().join(format!(
        "futurerd-trace-pipeline-{}.trace",
        std::process::id()
    ));
    recorded.trace.save(&path).expect("save");
    let loaded = Trace::load(&path).expect("load");
    std::fs::remove_file(&path).ok();
    assert_eq!(loaded, recorded.trace);
    let detection = Config::general().replay(&loaded).expect("canonical trace");
    assert_eq!(detection.race_count(), 1);
}
