//! Session-equivalence properties: `Session::ingest` over **any** chunking
//! of an event stream — including one event at a time — followed by
//! `report()` yields a detection byte-identical to one-shot
//! `Config::replay` of the concatenated trace, at P ∈ {1, 4}, for both
//! paper algorithms, over seeded generated programs in both regimes.
//!
//! Also asserts the session cost model: a session kept live across appends
//! pays the freeze exactly once — every report after the first is served
//! warm or incrementally (`DetectionPath` never returns to `Cold`), and a
//! store-backed session accounts exactly one cold freeze across its whole
//! life, reopen included.

use futurerd::{Algorithm, Config, DetectionPath};
use futurerd_dag::genprog::{generate_program, GenConfig};
use futurerd_runtime::trace::record_spec;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const SEEDS: u64 = 6;
const ALGORITHMS: [Algorithm; 2] = [Algorithm::MultiBags, Algorithm::MultiBagsPlus];
const THREADS: [usize; 2] = [1, 4];

/// Splits `len` into random chunk lengths (1 ≤ chunk ≤ 7, biased small so
/// single-event chunks are common).
fn random_chunking(rng: &mut StdRng, len: usize) -> Vec<usize> {
    let mut sizes = Vec::new();
    let mut rest = len;
    while rest > 0 {
        let take = rng.gen_range(1usize..8).min(rest);
        sizes.push(take);
        rest -= take;
    }
    sizes
}

fn seeded_traces() -> Vec<(String, futurerd::Trace)> {
    let mut traces = Vec::new();
    for (tag, config) in [
        ("structured", GenConfig::structured()),
        ("general", GenConfig::general()),
    ] {
        for seed in 0..SEEDS {
            let spec = generate_program(&config, seed);
            let (trace, _) = record_spec(&spec);
            traces.push((format!("{tag} seed {seed}"), trace));
        }
    }
    traces
}

#[test]
fn session_ingest_over_any_chunking_matches_one_shot_replay() {
    let mut rng = StdRng::seed_from_u64(0x5e55_10e5);
    for (tag, trace) in seeded_traces() {
        for algorithm in ALGORITHMS {
            for threads in THREADS {
                let config = Config::new().algorithm(algorithm).threads(threads);
                let one_shot = config.replay(&trace).expect("canonical trace");
                // Three random chunkings plus the all-singletons worst case.
                let mut chunkings: Vec<Vec<usize>> = (0..3)
                    .map(|_| random_chunking(&mut rng, trace.len()))
                    .collect();
                chunkings.push(vec![1; trace.len()]);
                for (case, chunking) in chunkings.iter().enumerate() {
                    let mut session = config.session();
                    let mut at = 0;
                    for &size in chunking {
                        session
                            .ingest(&trace.events()[at..at + size])
                            .expect("canonical prefix");
                        at += size;
                    }
                    assert!(session.is_complete(), "{tag}: chunking consumed the trace");
                    let detection = session.report().expect("session reports");
                    assert_eq!(
                        detection.report().to_string(),
                        one_shot.report().to_string(),
                        "{tag}: {algorithm:?} P={threads} chunking #{case} diverged"
                    );
                    assert_eq!(detection.summary, one_shot.summary, "{tag}");
                    assert_eq!(
                        detection.detector_stats, one_shot.detector_stats,
                        "{tag}: aggregated stats must not depend on chunking"
                    );
                }
            }
        }
    }
}

#[test]
fn live_sessions_never_pay_a_second_freeze() {
    let mut rng = StdRng::seed_from_u64(0xf00d_f00d);
    for (tag, trace) in seeded_traces() {
        for algorithm in ALGORITHMS {
            let config = Config::new().algorithm(algorithm).threads(4);
            let one_shot = config.replay(&trace).expect("canonical trace");
            let mut session = config.session();
            let mut at = 0;
            let mut reports = 0;
            for size in random_chunking(&mut rng, trace.len()) {
                session
                    .ingest(&trace.events()[at..at + size])
                    .expect("canonical prefix");
                at += size;
                // Report on roughly every third chunk: each report must be
                // cold exactly once (the first), then strictly warm or
                // incremental — a live session re-freezes nothing.
                if reports == 0 || rng.gen_range(0u32..3) == 0 {
                    let detection = session.report().expect("prefix reports");
                    let path = detection.path.expect("replay paths are routed");
                    if reports == 0 {
                        assert_eq!(path, DetectionPath::Cold, "{tag}");
                    } else {
                        assert_ne!(path, DetectionPath::Cold, "{tag}: report #{reports}");
                    }
                    reports += 1;
                }
            }
            let last = session.report().expect("final report");
            if reports > 0 {
                assert_ne!(last.path, Some(DetectionPath::Cold), "{tag}");
            }
            assert_eq!(
                last.report().to_string(),
                one_shot.report().to_string(),
                "{tag}: {algorithm:?} final report diverged"
            );
        }
    }
}

#[test]
fn stored_sessions_account_one_cold_freeze_across_reopens() {
    let spec = generate_program(&GenConfig::general(), 11);
    let (trace, _) = record_spec(&spec);
    let one_shot = Config::general().replay(&trace).expect("canonical");

    let dir = std::env::temp_dir().join(format!(
        "futurerd-session-equiv-{}-reopen",
        std::process::id()
    ));
    std::fs::remove_dir_all(&dir).ok();
    let mut store = Config::store(&dir).expect("store opens");
    let cut = trace.len() / 3;
    let mut prefix = futurerd::Trace::new();
    prefix.extend_events(&trace.events()[..cut]);
    store.put_trace("grow", &prefix).expect("stores");

    // Session 1: cold freeze of the prefix, one incremental append.
    let mut session = Config::general()
        .threads(4)
        .open_session(&mut store, "grow")
        .expect("opens");
    assert_eq!(
        session.report().expect("prefix").path,
        Some(DetectionPath::Cold)
    );
    let mid = 2 * trace.len() / 3;
    session.ingest(&trace.events()[cut..mid]).expect("appends");
    assert!(matches!(
        session.report().expect("incremental").path,
        Some(DetectionPath::Incremental { .. })
    ));
    drop(session);

    // Session 2 resumes from the persisted sidecar: warm, then incremental.
    let mut session = Config::general()
        .threads(4)
        .open_session(&mut store, "grow")
        .expect("reopens");
    assert_eq!(
        session.report().expect("warm").path,
        Some(DetectionPath::WarmCached)
    );
    session.ingest(&trace.events()[mid..]).expect("appends");
    let last = session.report().expect("final");
    assert!(matches!(last.path, Some(DetectionPath::Incremental { .. })));
    drop(session);

    assert_eq!(
        last.report().to_string(),
        one_shot.report().to_string(),
        "stored session diverged from one-shot replay"
    );
    let stats = store.stats();
    assert_eq!(
        stats.cold_freezes, 1,
        "the freeze must be paid exactly once across the entry's life: {stats:?}"
    );
    assert_eq!(stats.incremental_refreezes, 2);
    assert_eq!(stats.warm_cached_hits, 1);
    std::fs::remove_dir_all(&dir).ok();
}
