//! Observability-invariance properties: the `futurerd-obs` recorder is
//! **off the correctness path**. Turning it on must not change a single
//! byte of any detection output — same rendered report, same summary,
//! same aggregated detector statistics, same serving path — over fuzz
//! generator shapes, both paper algorithms, and P ∈ {1, 2, 8}, through
//! both one-shot replay and chunked streaming sessions. The interval
//! timeline journal is held to the same bar: on/off across the same
//! matrix, and a full ring drops intervals (bumping the
//! `obs.timeline.dropped` counter) without blocking detection or
//! reordering the surviving intervals.
//!
//! Also pins the contrapositive (nothing is recorded while disabled) and
//! sanity-checks that an enabled run actually records the documented
//! stages and metrics, so the invariance tests cannot pass vacuously.

use futurerd::{Algorithm, Config};
use futurerd_runtime::trace::record_spec;
use futurerd_workloads::fuzzgen::{generate_shaped, FuzzShape};
use std::sync::{Mutex, MutexGuard};

const ALGORITHMS: [Algorithm; 2] = [Algorithm::MultiBags, Algorithm::MultiBagsPlus];
const THREADS: [usize; 3] = [1, 2, 8];

/// The obs recorder is process-global; the test harness runs `#[test]`s on
/// concurrent threads, so every test serializes on this lock before
/// toggling it.
static OBS_LOCK: Mutex<()> = Mutex::new(());

fn exclusive() -> MutexGuard<'static, ()> {
    OBS_LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

/// One recorded trace per fuzz generator shape × seed: the same program
/// families the differential fuzzer rotates through.
fn shaped_traces() -> Vec<(String, futurerd::Trace)> {
    let mut traces = Vec::new();
    for shape in FuzzShape::ALL {
        for seed in 0..2u64 {
            let program = generate_shaped(shape, seed);
            let (trace, _) = record_spec(&program.spec);
            traces.push((format!("{shape} seed {seed}"), trace));
        }
    }
    traces
}

/// Runs `detect` twice — recorder off, then on — and asserts every
/// detection output is byte-identical.
fn assert_invariant(
    tag: &str,
    detect: impl Fn() -> futurerd::Detection<()>,
) -> futurerd::Detection<()> {
    futurerd_obs::set_enabled(false);
    futurerd_obs::reset();
    let off = detect();
    futurerd_obs::set_enabled(true);
    let on = detect();
    futurerd_obs::set_enabled(false);
    assert_eq!(
        on.report().to_string(),
        off.report().to_string(),
        "{tag}: rendered report changed under the recorder"
    );
    assert_eq!(on.summary, off.summary, "{tag}: summary changed");
    assert_eq!(
        on.detector_stats, off.detector_stats,
        "{tag}: detector stats changed"
    );
    assert_eq!(on.path, off.path, "{tag}: serving path changed");
    on
}

/// As [`assert_invariant`], but the second run records the interval
/// timeline journal (with metrics) instead of metrics alone.
fn assert_timeline_invariant(
    tag: &str,
    detect: impl Fn() -> futurerd::Detection<()>,
) -> futurerd::Detection<()> {
    futurerd_obs::set_enabled(false);
    futurerd_obs::set_timeline_enabled(false);
    futurerd_obs::reset();
    let off = detect();
    futurerd_obs::set_enabled(true);
    futurerd_obs::set_timeline_enabled(true);
    let on = detect();
    futurerd_obs::set_enabled(false);
    futurerd_obs::set_timeline_enabled(false);
    assert_eq!(
        on.report().to_string(),
        off.report().to_string(),
        "{tag}: rendered report changed under the timeline journal"
    );
    assert_eq!(on.summary, off.summary, "{tag}: summary changed");
    assert_eq!(
        on.detector_stats, off.detector_stats,
        "{tag}: detector stats changed"
    );
    assert_eq!(on.path, off.path, "{tag}: serving path changed");
    on
}

#[test]
fn one_shot_replay_is_byte_identical_with_metrics_on() {
    let _guard = exclusive();
    for (tag, trace) in shaped_traces() {
        for algorithm in ALGORITHMS {
            for threads in THREADS {
                let config = Config::new().algorithm(algorithm).threads(threads);
                assert_invariant(&format!("{tag} {algorithm:?} P={threads}"), || {
                    config.replay(&trace).expect("canonical trace")
                });
            }
        }
    }
}

#[test]
fn chunked_sessions_are_byte_identical_with_metrics_on() {
    let _guard = exclusive();
    // A handful of shapes suffices here: chunked ingest drives the session
    // through the cold-then-incremental serving paths, where most of the
    // instrumentation (ingest counters, path timers, stats exports) lives.
    for (tag, trace) in shaped_traces().into_iter().step_by(3) {
        for algorithm in ALGORITHMS {
            for threads in THREADS {
                let config = Config::new().algorithm(algorithm).threads(threads);
                let chunk = (trace.len() / 5).max(1);
                let run = || {
                    let mut session = config.session();
                    for events in trace.events().chunks(chunk) {
                        session.ingest(events).expect("canonical prefix");
                        session.report().expect("prefix reports");
                    }
                    session.report().expect("final report")
                };
                let on = assert_invariant(&format!("{tag} {algorithm:?} P={threads}"), run);
                let one_shot = config.replay(&trace).expect("canonical trace");
                assert_eq!(
                    on.report().to_string(),
                    one_shot.report().to_string(),
                    "{tag}: session diverged from one-shot replay"
                );
            }
        }
    }
}

#[test]
fn one_shot_replay_is_byte_identical_with_timeline_on() {
    let _guard = exclusive();
    for (tag, trace) in shaped_traces() {
        for algorithm in ALGORITHMS {
            for threads in THREADS {
                let config = Config::new().algorithm(algorithm).threads(threads);
                let on = assert_timeline_invariant(
                    &format!("{tag} {algorithm:?} P={threads} timeline"),
                    || config.replay(&trace).expect("canonical trace"),
                );
                drop(on);
            }
        }
    }
}

#[test]
fn timeline_reconciles_with_snapshot_aggregates() {
    let _guard = exclusive();
    let program = generate_shaped(FuzzShape::General, 7);
    let (trace, _) = record_spec(&program.spec);
    let config = Config::general().threads(2);

    futurerd_obs::set_enabled(true);
    futurerd_obs::set_timeline_enabled(true);
    futurerd_obs::reset();
    config.replay(&trace).expect("canonical trace");
    let snapshot = futurerd_obs::snapshot();
    let timeline = futurerd_obs::timeline();
    futurerd_obs::set_enabled(false);
    futurerd_obs::set_timeline_enabled(false);

    assert_eq!(timeline.dropped, 0, "default capacity must not drop here");
    assert!(!timeline.intervals.is_empty(), "journal must not be empty");
    // With zero drops, per-stage interval sums must equal the snapshot's
    // aggregate totals nanosecond for nanosecond — both views are written
    // from the same measurement at span close.
    if let Err(violations) = timeline.reconcile(&snapshot) {
        panic!("timeline/snapshot reconciliation failed: {violations:?}");
    }
    // The merge ordering contract: (start, thread, stage).
    assert!(
        timeline.intervals.windows(2).all(|w| {
            (w[0].start_ns, &w[0].thread, w[0].stage) <= (w[1].start_ns, &w[1].thread, w[1].stage)
        }),
        "merged intervals must be ordered by (start, thread, stage)"
    );
}

#[test]
fn full_ring_drops_newest_without_blocking_or_reordering() {
    let _guard = exclusive();
    futurerd_obs::set_enabled(false);
    futurerd_obs::set_timeline_enabled(true);
    futurerd_obs::reset();
    futurerd_obs::set_timeline_capacity(3);

    // Five deterministic spans on this thread; a capacity-3 ring must keep
    // the first three in recording order and count the other two. Strictly
    // increasing start instants keep the (start, thread, stage) merge order
    // equal to recording order.
    let stages = ["validate", "freeze", "detect", "merge", "detect.partition"];
    let mut prev = std::time::Instant::now();
    for stage in stages {
        let mut started = std::time::Instant::now();
        while started <= prev {
            started = std::time::Instant::now();
        }
        futurerd_obs::record_stage(stage, started);
        prev = started;
    }
    let timeline = futurerd_obs::timeline();
    let snapshot = futurerd_obs::snapshot();
    futurerd_obs::set_timeline_capacity(futurerd_obs::DEFAULT_TIMELINE_CAPACITY);
    futurerd_obs::set_timeline_enabled(false);

    assert_eq!(timeline.dropped, 2, "two intervals past the bound");
    let survivors: Vec<&str> = timeline.intervals.iter().map(|i| i.stage).collect();
    assert_eq!(
        survivors,
        vec!["validate", "freeze", "detect"],
        "survivors must be the earliest intervals, order preserved"
    );
    assert_eq!(
        snapshot.metric("obs.timeline.dropped"),
        Some(2),
        "drops must surface in the metrics registry"
    );

    // A lossy journal must also not block a full detection run: the ring
    // stays at capacity, drops keep counting, detection output is intact.
    futurerd_obs::set_timeline_enabled(true);
    futurerd_obs::set_timeline_capacity(4);
    let program = generate_shaped(FuzzShape::Pipeline, 1);
    let (trace, _) = record_spec(&program.spec);
    let config = Config::general().threads(2);
    let lossy = config.replay(&trace).expect("canonical trace");
    let full = futurerd_obs::timeline();
    futurerd_obs::set_timeline_capacity(futurerd_obs::DEFAULT_TIMELINE_CAPACITY);
    futurerd_obs::set_timeline_enabled(false);
    futurerd_obs::reset();

    let clean = config.replay(&trace).expect("canonical trace");
    assert_eq!(
        lossy.report().to_string(),
        clean.report().to_string(),
        "a saturated ring must not change detection output"
    );
    assert!(
        full.dropped > 0,
        "the tiny ring must have dropped intervals"
    );
    for util in full.utilization() {
        assert!(
            util.intervals <= 4,
            "{}: ring bound exceeded ({} intervals)",
            util.thread,
            util.intervals
        );
    }
}

#[test]
fn enabled_runs_record_the_documented_stages() {
    let _guard = exclusive();
    let program = generate_shaped(FuzzShape::Pipeline, 3);
    let (trace, _) = record_spec(&program.spec);
    let config = Config::general().threads(2);

    futurerd_obs::set_enabled(true);
    futurerd_obs::reset();
    let mut session = config.session();
    let chunk = (trace.len() / 4).max(1);
    for events in trace.events().chunks(chunk) {
        session.ingest(events).expect("canonical prefix");
        session.report().expect("prefix reports");
    }
    let snapshot = futurerd_obs::snapshot();
    futurerd_obs::set_enabled(false);

    for stage in ["validate", "freeze", "detect", "merge"] {
        let stats = snapshot
            .stage(stage)
            .unwrap_or_else(|| panic!("stage '{stage}' missing from {snapshot:?}"));
        assert!(stats.count > 0, "{stage}: no spans closed");
        assert!(stats.min_ns <= stats.max_ns, "{stage}: inconsistent bounds");
    }
    assert_eq!(
        snapshot.metric("session.path.cold"),
        Some(1),
        "exactly one cold report expected"
    );
    assert!(
        snapshot.metric("session.ingest.events") >= Some(trace.len() as u64),
        "ingest counter must cover every event"
    );
    assert!(
        snapshot.metric("detector.read_checks").is_some(),
        "detector stats gauges missing"
    );

    // The exporters must all render the live snapshot without panicking
    // and carry the stage names through (formats are pinned exactly by the
    // golden tests in `crates/obs/tests/golden.rs`).
    let text = futurerd_obs::export_text(&snapshot);
    assert!(text.contains("validate") && text.contains("session.path.cold"));
    let json = futurerd_obs::export_json_lines(&snapshot);
    assert!(json.lines().all(|l| l.starts_with('{') && l.ends_with('}')));
    let prom = futurerd_obs::export_prometheus(&snapshot);
    assert!(prom.contains("futurerd_stage_spans_total{stage=\"validate\"}"));
}

#[test]
fn disabled_recorder_stays_empty() {
    let _guard = exclusive();
    futurerd_obs::set_enabled(false);
    futurerd_obs::reset();
    let program = generate_shaped(FuzzShape::General, 5);
    let (trace, _) = record_spec(&program.spec);
    let config = Config::general().threads(4);
    config.replay(&trace).expect("canonical trace");
    let mut session = config.session();
    session.ingest(trace.events()).expect("canonical");
    session.report().expect("reports");
    assert!(
        futurerd_obs::snapshot().is_empty(),
        "a disabled recorder must record nothing"
    );
}
