//! Walk-through examples in the spirit of the paper's figures.
//!
//! * Figure 2 illustrates MultiBags on a structured-futures program whose
//!   creations and joins are *not* well nested (the dag is not
//!   series-parallel): futures created inside one task are consumed by an
//!   outer task much later. The test below builds a program with the same
//!   shape and asserts the S-bag/P-bag states the walk-through highlights.
//! * Figure 5 illustrates MultiBags+ on a general-futures program; the test
//!   asserts the attached-set/`R` behaviour the section describes (only
//!   O(k) attached sets; queries across non-SP edges answered through `R`).

use futurerd_core::detector::RaceDetector;
use futurerd_core::reachability::{MultiBags, MultiBagsPlus, Reachability};
use futurerd_dag::{DagRecorder, MultiObserver, ReachabilityOracle};
use futurerd_runtime::run_program;

/// Figure 2-style program: the main task A creates future B; B creates C;
/// C creates D and E and consumes E but *not* D; B consumes C and creates F,
/// and F consumes D (joining a future created two levels down, outside any
/// sync scope); A finally consumes B and F's value flows back through B.
///
/// While D is outstanding its strand must be in a P-bag (parallel with
/// everything that runs next); every other completed task must be in an
/// S-bag exactly when the paper's table says so.
#[test]
fn figure2_style_multibags_bag_states() {
    let (_, detector, summary) = run_program(RaceDetector::<MultiBags>::structured(), |cx| {
        // Task D: created by C, consumed much later by F.
        let mut d_strand = None;
        let mut e_strand = None;
        let mut c_strand = None;

        let b = cx.create_future(|cx| {
            // This is task B.
            let (c_val, d_handle) = {
                let c = cx.create_future(|cx| {
                    // This is task C.
                    c_strand = Some(cx.current_strand());
                    let d = cx.create_future(|cx| {
                        d_strand = Some(cx.current_strand());
                        4u32
                    });
                    let e = cx.create_future(|cx| {
                        e_strand = Some(cx.current_strand());
                        6u32
                    });
                    // C consumes E but not D; D escapes upward.
                    let e_val = cx.get_future(e);
                    // E's strands are now sequentially before C's current
                    // strand: they must be in an S bag.
                    assert!(cx.observer_mut().strand_precedes_current(e_strand.unwrap()));
                    // D has returned but has not been consumed: P bag.
                    assert!(!cx.observer_mut().strand_precedes_current(d_strand.unwrap()));
                    (e_val, d)
                });

                cx.get_future(c)
            };
            // After consuming C, C's strands are in S bags again, but D is
            // still outstanding and stays in a P bag.
            assert!(cx.observer_mut().strand_precedes_current(c_strand.unwrap()));
            assert!(!cx.observer_mut().strand_precedes_current(d_strand.unwrap()));

            // Task F consumes D.
            let f = cx.create_future(|cx| {
                let d_val = cx.get_future(d_handle);
                // Now D precedes F's current strand.
                assert!(cx.observer_mut().strand_precedes_current(d_strand.unwrap()));
                d_val + 8
            });
            c_val + cx.get_future(f)
        });
        let total = cx.get_future(b);
        // Everything has joined: every recorded strand precedes the final
        // strand (all in S bags).
        assert!(cx.observer_mut().strand_precedes_current(d_strand.unwrap()));
        assert!(cx.observer_mut().strand_precedes_current(e_strand.unwrap()));
        assert!(cx.observer_mut().strand_precedes_current(c_strand.unwrap()));
        total
    });
    assert!(detector.report().is_race_free());
    // 6 function instances: main, B, C, D, E, F — as in Figure 2.
    assert_eq!(summary.functions, 6);
    assert_eq!(summary.creates, 5);
    assert_eq!(summary.gets, 5);
}

/// Figure 5-style program for MultiBags+: a mix of spawn/sync fork-join code
/// with futures whose values are consumed across branch boundaries
/// (multi-touch), producing a dag with non-SP edges. The test validates the
/// reachability answers against the ground-truth oracle over the recorded
/// dag, and checks that the number of attached sets stays O(k) — small
/// compared with the number of strands.
#[test]
fn figure5_style_multibags_plus_attached_sets() {
    let recorder = DagRecorder::new();
    let mbp = MultiBagsPlus::new();
    let (probe_strands, observers, summary) =
        run_program(MultiObserver::new(recorder, mbp), |cx| {
            let mut probes = Vec::new();
            // A future shared (multi-touched) by two spawned subtasks.
            let mut shared = cx.create_future(|cx| {
                probes.push(cx.current_strand());
                21u64
            });
            let mut acc = 0u64;
            {
                let shared_ref = &mut shared;
                let probes_ref = &mut probes;
                let acc_ref = &mut acc;
                cx.spawn(move |cx| {
                    probes_ref.push(cx.current_strand());
                    *acc_ref += cx.touch_future(shared_ref);
                });
            }
            {
                let shared_ref = &mut shared;
                let acc_ref = &mut acc;
                cx.spawn(move |cx| {
                    *acc_ref += cx.touch_future(shared_ref);
                });
            }
            cx.sync();
            // A second future created inside a spawned task and consumed by
            // the main task after the sync (escaping its creator's scope).
            let mut escaped = None;
            {
                let escaped_ref = &mut escaped;
                cx.spawn(move |cx| {
                    *escaped_ref = Some(cx.create_future(|_| 7u64));
                });
            }
            cx.sync();
            let v = cx.get_future(escaped.unwrap());
            probes.push(cx.current_strand());
            acc += v;
            assert_eq!(acc, 49);
            probes
        });
    let (recorder, mut mbp) = observers.into_inner();
    let oracle = ReachabilityOracle::from_dag(recorder.dag());

    // Every pair (probe strand, final strand) must be answered identically
    // by MultiBags+ and by the ground-truth oracle.
    let last = *probe_strands.last().unwrap();
    for &s in &probe_strands {
        assert_eq!(
            mbp.precedes_current(s),
            oracle.precedes(s, last),
            "disagreement about {s}"
        );
    }

    // k (gets) is small, and the number of attached sets is O(k), far below
    // the number of strands.
    assert!(summary.gets >= 3);
    let attached = mbp.num_attached_sets() as u64;
    assert!(
        attached <= 4 * summary.gets + 4,
        "attached sets: {attached}"
    );
    assert!(attached <= summary.strands);
    assert_eq!(mbp.stats().unexpected_attachifies, 0);
}
