//! Error-path coverage of the facade: misuse at every entry point —
//! non-canonical streams, empty sessions, algorithm × trace mismatches,
//! corrupted on-disk state — returns a typed [`futurerd::Error`] (or a
//! sensible empty verdict), and never panics.

use futurerd::{record, Algorithm, Config, Cx, Store};
use futurerd_core::replay::ReplayAlgorithm;
use futurerd_dag::trace::TraceEvent;
use futurerd_dag::{FunctionId, StrandId};

fn racy_body(cx: &mut Cx) -> u32 {
    let mut cell = futurerd::ShadowCell::new(cx, 0u32);
    cx.spawn(|cx| cell.set(cx, 1));
    let v = cell.get(cx);
    cx.sync();
    v
}

fn temp_store(tag: &str) -> Store {
    let dir = std::env::temp_dir().join(format!(
        "futurerd-facade-errors-{}-{tag}",
        std::process::id()
    ));
    std::fs::remove_dir_all(&dir).ok();
    Store::open(dir).expect("store opens")
}

#[test]
fn ingest_rejects_non_canonical_order_with_a_typed_error() {
    // A stream that does not open with ProgramStart violates the canonical
    // serial-DF invariant at position 0.
    let mut session = Config::structured().session();
    let err = session
        .ingest(&[TraceEvent::StrandStart {
            strand: StrandId(0),
            function: FunctionId(0),
        }])
        .expect_err("a headerless stream is not canonical");
    assert!(err.is_trace(), "{err}");
    // The session is poisoned at a known position; re-ingesting anything is
    // refused the same way, not accepted and not a panic.
    assert!(session
        .ingest(&[TraceEvent::ProgramStart {
            root: FunctionId(0),
            first: StrandId(0),
        }])
        .is_err());
    assert!(session.is_empty(), "nothing before the bad event is kept");
}

#[test]
fn mid_stream_corruption_keeps_the_valid_prefix_reporting() {
    let recorded = record(racy_body);
    let events = recorded.trace.events();
    let cut = events.len() / 2;
    let mut session = Config::structured().session();
    session.ingest(&events[..cut]).unwrap();
    // Replaying the stream from the top mid-stream is out of order.
    let err = session.ingest(events).expect_err("duplicate prefix");
    assert!(err.is_trace(), "{err}");
    // The prefix ingested before the corruption still serves reports.
    let detection = session.report().expect("prefix reports stay available");
    assert_eq!(session.len(), cut);
    let _ = detection.race_count();
}

#[test]
fn report_on_an_empty_session_is_an_empty_verdict_not_a_panic() {
    for config in [
        Config::structured(),
        Config::general(),
        Config::new().algorithm(Algorithm::GraphOracle),
        Config::new().algorithm(Algorithm::SpBags),
        Config::structured().threads(4),
    ] {
        let mut session = config.session();
        let detection = session
            .report()
            .expect("an empty execution has an empty verdict");
        assert_eq!(detection.race_count(), 0);
        assert!(detection.is_race_free());
    }
}

#[test]
fn spbags_on_futures_via_sessions_is_unsupported() {
    let futures = record(|cx| {
        let fut = cx.create_future(|_| 1u32);
        cx.get_future(fut)
    });
    let mut session = Config::new().algorithm(Algorithm::SpBags).session();
    // Ingest accepts the canonical stream — the algorithm × trace mismatch
    // surfaces at report time as a configuration refusal.
    session.ingest(futures.trace.events()).unwrap();
    let err = session.report().expect_err("SP-Bags has no future moves");
    assert!(err.is_unsupported(), "{err}");
    // The conservative variant consumes the same stream, marked approximate.
    let mut session = Config::new()
        .algorithm(Algorithm::SpBagsConservative)
        .session();
    session.ingest(futures.trace.events()).unwrap();
    let detection = session.report().unwrap();
    assert!(detection.report().is_approximate());
}

#[test]
fn open_session_on_a_missing_entry_is_a_store_error() {
    let mut store = temp_store("missing");
    let err = Config::structured()
        .open_session(&mut store, "never-put")
        .expect_err("no such entry");
    assert!(err.is_store(), "{err}");
    std::fs::remove_dir_all(store.root()).ok();
}

#[test]
fn corrupted_trace_file_is_a_typed_error_through_open_session() {
    let mut store = temp_store("bad-trace");
    store.put_trace("t", &record(racy_body).trace).unwrap();
    // Clobber the FRDTRACE container: bad magic, bad payload.
    std::fs::write(store.trace_path("t"), b"not a trace at all").unwrap();
    let err = Config::structured()
        .open_session(&mut store, "t")
        .expect_err("garbage is not a trace");
    assert!(err.is_trace() || err.is_store(), "{err}");
    // A truncated container (valid magic, cut payload) is also typed.
    let bytes = record(racy_body).trace.to_bytes();
    std::fs::write(store.trace_path("t"), &bytes[..bytes.len() / 2]).unwrap();
    let err = Config::structured()
        .open_session(&mut store, "t")
        .expect_err("a truncated trace must not decode");
    assert!(err.is_trace() || err.is_store(), "{err}");
    std::fs::remove_dir_all(store.root()).ok();
}

#[test]
fn corrupted_sidecar_falls_back_to_cold_with_the_right_verdict() {
    let recorded = record(racy_body);
    let mut store = temp_store("bad-sidecar");
    store.put_trace("t", &recorded.trace).unwrap();
    // First session persists an FRDIDX sidecar on report.
    let mut session = Config::structured().open_session(&mut store, "t").unwrap();
    let expected = session.report().unwrap();
    drop(session);
    let sidecar = store.sidecar_path("t", ReplayAlgorithm::MultiBags);
    assert!(sidecar.exists(), "report persisted the index");

    // Garbage sidecar: a re-opened session must treat it as absent (cold
    // resume), not crash or serve a wrong verdict from it.
    std::fs::write(&sidecar, b"FRDIDX?? definitely not an index").unwrap();
    let mut session = Config::structured().open_session(&mut store, "t").unwrap();
    let detection = session.report().expect("cold fallback still reports");
    assert_eq!(detection.race_count(), expected.race_count());
    assert_eq!(
        detection.report().to_string(),
        expected.report().to_string()
    );
    drop(session);

    // Truncated sidecar: same fallback.
    let bytes = std::fs::read(&sidecar).unwrap();
    std::fs::write(&sidecar, &bytes[..bytes.len().min(16)]).unwrap();
    let mut session = Config::structured().open_session(&mut store, "t").unwrap();
    assert_eq!(
        session.report().unwrap().race_count(),
        expected.race_count()
    );
    std::fs::remove_dir_all(store.root()).ok();
}
