//! Integration tests of the `futurerd` facade: the one-call entry points and
//! the `Config` builder must agree with the underlying crates driven
//! directly, across real workloads.

use futurerd::{Algorithm, Analysis, Config};
use futurerd_core::detector::RaceDetector;
use futurerd_core::reachability::{MultiBags, MultiBagsPlus};
use futurerd_runtime::run_program;
use futurerd_workloads::{lcs, mm};

#[test]
fn facade_matches_direct_detector_on_lcs() {
    let input = lcs::LcsInput::generate(32, 11);

    let facade = futurerd::detect_structured(|cx| lcs::structured(cx, &input, 8));
    let (direct_value, direct_det, direct_summary) =
        run_program(RaceDetector::<MultiBags>::structured(), |cx| {
            lcs::structured(cx, &input, 8)
        });

    assert_eq!(facade.value, direct_value);
    assert_eq!(facade.summary, direct_summary);
    assert_eq!(
        facade.report().race_count(),
        direct_det.report().race_count()
    );
    assert!(facade.is_race_free());
}

#[test]
fn facade_general_matches_direct_detector_on_general_lcs() {
    let input = lcs::LcsInput::generate(32, 12);

    let facade = futurerd::detect_general(|cx| lcs::general(cx, &input, 8));
    let (direct_value, direct_det, _) =
        run_program(RaceDetector::<MultiBagsPlus>::general(), |cx| {
            lcs::general(cx, &input, 8)
        });

    assert_eq!(facade.value, direct_value);
    assert!(facade.is_race_free() && direct_det.report().is_race_free());
    let facade_stats = facade.reach_stats.unwrap();
    let direct_stats = direct_det.reach_stats();
    assert_eq!(facade_stats.queries, direct_stats.queries);
    assert_eq!(facade_stats.attached_sets, direct_stats.attached_sets);
}

#[test]
fn facade_finds_seeded_races_with_every_suitable_algorithm() {
    let input = lcs::LcsInput::generate(32, 13);
    for algorithm in [
        Algorithm::MultiBags,
        Algorithm::MultiBagsPlus,
        Algorithm::GraphOracle,
    ] {
        let d = Config::new()
            .algorithm(algorithm)
            .run(|cx| lcs::structured_with_race(cx, &input, 8));
        assert!(!d.is_race_free(), "{algorithm:?} missed the seeded race");
    }
}

#[test]
fn analysis_levels_form_a_strictly_widening_pipeline() {
    let input = mm::MmInput::generate(12, 3);

    let baseline = Config::general()
        .analysis(Analysis::Baseline)
        .run(|cx| mm::general(cx, &input, 4));
    let reach = Config::general()
        .analysis(Analysis::Reachability)
        .run(|cx| mm::general(cx, &input, 4));
    let instr = Config::general()
        .analysis(Analysis::Instrumentation)
        .run(|cx| mm::general(cx, &input, 4));
    let full = Config::general()
        .analysis(Analysis::Full)
        .run(|cx| mm::general(cx, &input, 4));

    // Same computation in every configuration.
    for d in [&reach, &instr, &full] {
        assert_eq!(d.value, baseline.value);
        assert_eq!(d.summary.strands, baseline.summary.strands);
    }

    // State grows monotonically with the analysis level.
    assert!(baseline.reach_stats.is_none() && baseline.report.is_none());
    assert!(reach.reach_stats.is_some() && reach.report.is_none());
    assert!(instr.reach_stats.is_some() && instr.report.is_none());
    assert!(full.reach_stats.is_some() && full.report.is_some());
    // Only the full detector issues reachability *queries* (from the access
    // history); the lighter analyses just maintain the structure.
    assert_eq!(reach.reach_stats.unwrap().queries, 0);
    assert!(full.reach_stats.unwrap().queries > 0);
    assert!(full.detector_stats.unwrap().write_checks > 0);
}
