//! Facade-level exercise of the detection store: `Config::store`, warm
//! replay via `Config::replay_stored`, append → incremental re-detection,
//! and the batch replay service — all against real recorded programs.

use futurerd::{
    Algorithm, BatchJob, Config, DetectionPath, ShadowArray, ShadowCell, Store, StoreError,
};
use futurerd_core::replay::ReplayAlgorithm;

fn temp_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "futurerd-store-pipeline-{}-{tag}",
        std::process::id()
    ));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

fn racy_program(cx: &mut futurerd::Cx) -> u32 {
    let mut buffer = ShadowArray::new(cx, 8, 0u32);
    let producer = cx.create_future(|cx| {
        for i in 0..8 {
            buffer.set(cx, i, i as u32);
        }
    });
    let early = buffer.get(cx, 0); // races with the producer's writes
    cx.get_future(producer);
    early
}

/// Warm replay through the store is byte-identical to direct (cold) replay
/// for every freezable algorithm at P ∈ {1, 2, 8}.
#[test]
fn warm_replay_matches_cold_replay_across_thread_counts() {
    let recorded = futurerd::record(racy_program);
    let dir = temp_dir("warm");
    let mut store = Config::store(&dir).expect("store opens");
    store.put_trace("racy", &recorded.trace).expect("stores");

    for algorithm in [Algorithm::MultiBags, Algorithm::MultiBagsPlus] {
        for threads in [1usize, 2, 8] {
            let config = Config::new().algorithm(algorithm).threads(threads);
            let cold = config.replay(&recorded.trace).expect("direct replay");
            let stored = config
                .replay_stored(&mut store, "racy")
                .expect("stored replay");
            assert_eq!(
                stored.report().witnesses(),
                cold.report().witnesses(),
                "{algorithm:?} P={threads}"
            );
            assert_eq!(
                stored.report().to_string(),
                cold.report().to_string(),
                "{algorithm:?} P={threads} (rendered)"
            );
            assert_eq!(stored.summary, cold.summary);
        }
    }
    // 2 algorithms × 3 thread counts: first request per algorithm is cold,
    // the rest are served from the sidecar.
    assert_eq!(store.stats().cold_freezes, 2);
    assert_eq!(store.stats().warm_cached_hits, 4);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn unfreezable_algorithms_are_typed_errors() {
    let recorded = futurerd::record(racy_program);
    let dir = temp_dir("unfreezable");
    let mut store = Config::store(&dir).expect("store opens");
    store.put_trace("racy", &recorded.trace).expect("stores");
    for algorithm in [
        Algorithm::SpBags,
        Algorithm::SpBagsConservative,
        Algorithm::GraphOracle,
    ] {
        let err = Config::new()
            .algorithm(algorithm)
            .replay_stored(&mut store, "racy")
            .expect_err("no frozen form");
        assert!(
            matches!(err, futurerd::Error::Store(StoreError::Unfreezable(_))),
            "{algorithm:?}"
        );
    }
    std::fs::remove_dir_all(&dir).ok();
}

/// Record a program in two stages (simulating a growing execution): the
/// store re-detects incrementally after the append and matches a
/// from-scratch replay of the full trace.
#[test]
fn append_and_incremental_redetect_through_the_facade() {
    let recorded = futurerd::record(|cx| {
        let mut cell = ShadowCell::new(cx, 0u32);
        cx.spawn(|cx| cell.set(cx, 1));
        let racy = cell.get(cx);
        cx.sync();
        racy
    });
    let full = &recorded.trace;
    let cut = full.len() / 2;
    let mut prefix = futurerd::Trace::new();
    prefix.extend_events(&full.events()[..cut]);

    let dir = temp_dir("append");
    let mut store = Config::store(&dir).expect("store opens");
    store.put_trace("grow", &prefix).expect("prefix stores");
    let first = store
        .detect("grow", ReplayAlgorithm::MultiBags, 2)
        .expect("prefix detects");
    assert_eq!(first.path, DetectionPath::Cold);
    assert!(!first.complete);

    store
        .append_events("grow", &full.events()[cut..])
        .expect("append validates");
    let incremental = store
        .detect("grow", ReplayAlgorithm::MultiBags, 2)
        .expect("incremental");
    assert!(matches!(
        incremental.path,
        DetectionPath::Incremental { .. }
    ));
    assert!(incremental.complete);

    let direct = Config::structured().replay(full).expect("direct");
    assert_eq!(incremental.report.witnesses(), direct.report().witnesses());
    assert_eq!(incremental.report.to_string(), direct.report().to_string());
    std::fs::remove_dir_all(&dir).ok();
}

/// The batch service runs a queue of (trace, algorithm, threads) jobs over
/// the shared pool and renders a deterministic manifest.
#[test]
fn batch_service_produces_a_deterministic_manifest() {
    let racy = futurerd::record(racy_program);
    let clean = futurerd::record(|cx| {
        let cell = ShadowCell::new(cx, 3u32);
        let fut = cx.create_future(|cx| cell.get(cx));
        cx.get_future(fut)
    });
    let dir = temp_dir("batch");
    let mut store = Store::open(&dir).expect("store opens");
    store.put_trace("racy", &racy.trace).expect("stores");
    store.put_trace("clean", &clean.trace).expect("stores");

    let submit_all = |store: &mut Store| {
        for name in ["racy", "clean"] {
            for algorithm in [ReplayAlgorithm::MultiBags, ReplayAlgorithm::MultiBagsPlus] {
                for threads in [1usize, 4] {
                    store.submit(BatchJob {
                        trace: name.to_string(),
                        algorithm,
                        threads,
                    });
                }
            }
        }
    };
    submit_all(&mut store);
    let first = store.run_batch().expect("batch runs");
    assert!(first.all_ok(), "{first}");
    assert_eq!(first.records.len(), 8);

    // Same queue again: everything warm, digests identical.
    submit_all(&mut store);
    let second = store.run_batch().expect("batch reruns");
    for (a, b) in first.records.iter().zip(&second.records) {
        let (a, b) = (
            a.outcome.as_ref().expect("first run ok"),
            b.outcome.as_ref().expect("second run ok"),
        );
        assert_eq!(a.digest, b.digest);
        assert_eq!(a.races, b.races);
        assert!(b.path.is_warm(), "{:?}", b.path);
    }
    let manifest_file = std::fs::read_to_string(dir.join("batch-manifest.txt")).expect("written");
    assert_eq!(manifest_file, second.to_string());
    std::fs::remove_dir_all(&dir).ok();
}
