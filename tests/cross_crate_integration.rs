//! Integration tests spanning every crate of the workspace: workloads run on
//! the runtime under the detectors from `futurerd-core`, with the dag model
//! and oracle from `futurerd-dag` cross-checking the results.

use futurerd_core::detector::{InstrumentationOnly, RaceDetector, ReachabilityOnly};
use futurerd_core::reachability::{GraphOracle, MultiBags, MultiBagsPlus};
use futurerd_dag::stats::dag_stats;
use futurerd_dag::{DagRecorder, MultiObserver, NullObserver};
use futurerd_runtime::{run_program, ThreadPool};
use futurerd_workloads::{
    lcs, mm, reference_checksum, run_workload, FutureMode, WorkloadKind, WorkloadParams,
};

#[test]
fn all_workloads_give_identical_results_under_every_configuration() {
    let params = WorkloadParams::tiny();
    for kind in WorkloadKind::ALL {
        let expected = reference_checksum(kind, &params);
        for mode in [FutureMode::Structured, FutureMode::General] {
            let (_, r) = run_workload(kind, mode, &params, NullObserver);
            assert_eq!(r.checksum, expected, "{kind} {mode} baseline");
            let (_, r) = run_workload(
                kind,
                mode,
                &params,
                ReachabilityOnly::<MultiBagsPlus>::general(),
            );
            assert_eq!(r.checksum, expected, "{kind} {mode} reachability");
            let (_, r) = run_workload(
                kind,
                mode,
                &params,
                InstrumentationOnly::<MultiBagsPlus>::general(),
            );
            assert_eq!(r.checksum, expected, "{kind} {mode} instrumentation");
            let (det, r) = run_workload(
                kind,
                mode,
                &params,
                RaceDetector::<MultiBagsPlus>::general(),
            );
            assert_eq!(r.checksum, expected, "{kind} {mode} full");
            assert!(
                det.report().is_race_free(),
                "{kind} {mode}: {}",
                det.report()
            );
        }
    }
}

#[test]
fn structured_workloads_are_race_free_under_multibags_and_agree_with_oracle() {
    let params = WorkloadParams::tiny();
    for kind in WorkloadKind::ALL {
        let (mb, _) = run_workload(
            kind,
            FutureMode::Structured,
            &params,
            RaceDetector::<MultiBags>::structured(),
        );
        let (oracle, _) = run_workload(
            kind,
            FutureMode::Structured,
            &params,
            RaceDetector::new(GraphOracle::new()),
        );
        assert_eq!(
            mb.report().race_count(),
            oracle.report().race_count(),
            "{kind}"
        );
        assert!(mb.report().is_race_free(), "{kind}");
    }
}

#[test]
fn recorded_workload_dags_have_futures_and_parallelism() {
    // Record the dag of the general-futures lcs and check its shape: it has
    // create/get edges (non-SP), and parallelism > 1.
    let input = lcs::LcsInput::generate(32, 1);
    let (_, recorder, summary) = run_program(DagRecorder::new(), |cx| lcs::general(cx, &input, 8));
    let dag = recorder.dag();
    assert_eq!(dag.num_strands() as u64, summary.strands);
    let stats = dag_stats(dag);
    assert!(stats.edges.create > 0);
    assert!(stats.edges.get > 0);
    assert!(stats.parallelism > 1.0, "parallelism {}", stats.parallelism);
    assert!(dag.check_consistency().is_empty());
}

#[test]
fn detector_and_recorder_can_share_one_execution() {
    let input = mm::MmInput::generate(8, 2);
    let (_, obs, _) = run_program(
        MultiObserver::new(DagRecorder::new(), RaceDetector::<MultiBagsPlus>::general()),
        |cx| mm::general(cx, &input, 4),
    );
    let (recorder, detector) = obs.into_inner();
    assert!(detector.report().is_race_free());
    assert!(recorder.dag().num_strands() > 0);
    // Each recorded access produces at least one granule-level check (wide
    // elements such as i64 span several four-byte granules, so checks can
    // exceed accesses but never fall below them).
    let s = detector.history_stats();
    assert!(s.read_checks >= recorder.reads);
    assert!(s.write_checks >= recorder.writes);
}

#[test]
fn seeded_race_is_reported_by_every_detector() {
    let input = lcs::LcsInput::generate(32, 9);
    let (_, mb, _) = run_program(RaceDetector::<MultiBags>::structured(), |cx| {
        lcs::structured_with_race(cx, &input, 8)
    });
    let (_, mbp, _) = run_program(RaceDetector::<MultiBagsPlus>::general(), |cx| {
        lcs::structured_with_race(cx, &input, 8)
    });
    let (_, oracle, _) = run_program(RaceDetector::new(GraphOracle::new()), |cx| {
        lcs::structured_with_race(cx, &input, 8)
    });
    assert!(!mb.report().is_race_free());
    assert!(!mbp.report().is_race_free());
    assert!(!oracle.report().is_race_free());
    assert_eq!(mb.report().race_count(), oracle.report().race_count());
    assert_eq!(mbp.report().race_count(), oracle.report().race_count());
}

#[test]
fn parallel_pool_and_detected_execution_compute_the_same_answers() {
    let pool = ThreadPool::new(4);
    let lcs_input = lcs::LcsInput::generate(64, 4);
    let serial = lcs::serial(&lcs_input);
    assert_eq!(lcs::parallel(&pool, &lcs_input, 16), serial);
    let (detected, det, _) = run_program(RaceDetector::<MultiBags>::structured(), |cx| {
        lcs::structured(cx, &lcs_input, 16)
    });
    assert_eq!(detected, serial);
    assert!(det.report().is_race_free());

    let mm_input = mm::MmInput::generate(16, 4);
    let expected = mm::checksum(&mm::serial(&mm_input));
    assert_eq!(mm::parallel(&pool, &mm_input, 4), expected);
}

#[test]
fn detection_statistics_are_consistent_with_execution_counters() {
    let params = WorkloadParams::tiny();
    let (det, result) = run_workload(
        WorkloadKind::Dedup,
        FutureMode::General,
        &params,
        RaceDetector::<MultiBagsPlus>::general(),
    );
    let (report, reach, hist) = det.into_parts();
    assert!(report.is_race_free());
    // Every instrumented access produced at least one granule check.
    assert!(hist.read_checks >= result.summary.reads);
    assert!(hist.write_checks >= result.summary.writes);
    // The reachability structure answered at least one query per write that
    // found a previous accessor, and created O(k) attached sets.
    assert!(reach.queries > 0);
    assert!(reach.attached_sets <= 4 * result.summary.gets + 4);
}
