//! Wavefront dynamic programming (the `lcs` benchmark): shows how the two
//! reachability structures compare as the base case shrinks — a miniature
//! Figure 8.
//!
//! ```text
//! cargo run --release -p futurerd-workloads --example wavefront_lcs
//! ```

use futurerd_core::detector::ReachabilityOnly;
use futurerd_core::reachability::{MultiBags, MultiBagsPlus};
use futurerd_dag::NullObserver;
use futurerd_runtime::run_program;
use futurerd_workloads::lcs::{self, LcsInput};
use std::time::Instant;

fn main() {
    let n = 256;
    let input = LcsInput::generate(n, 3);
    let reference = lcs::serial(&input) as u64;
    println!("lcs on two random sequences of length {n}; LCS length = {reference}");
    println!(
        "{:<8} {:>10} {:>14} {:>14} {:>10}",
        "base", "baseline", "MultiBags", "MultiBags+", "futures"
    );
    for base in [64, 32, 16, 8] {
        let t0 = Instant::now();
        let (len0, _, summary) = run_program(NullObserver, |cx| lcs::structured(cx, &input, base));
        let baseline = t0.elapsed();

        let t1 = Instant::now();
        let (len1, _, _) = run_program(ReachabilityOnly::<MultiBags>::structured(), |cx| {
            lcs::structured(cx, &input, base)
        });
        let mb = t1.elapsed();

        let t2 = Instant::now();
        let (len2, _, _) = run_program(ReachabilityOnly::<MultiBagsPlus>::general(), |cx| {
            lcs::structured(cx, &input, base)
        });
        let mbp = t2.elapsed();

        assert_eq!(len0 as u64, reference);
        assert_eq!(len1 as u64, reference);
        assert_eq!(len2 as u64, reference);
        println!(
            "{:<8} {:>8.2}ms {:>12.2}ms {:>12.2}ms {:>10}",
            base,
            baseline.as_secs_f64() * 1e3,
            mb.as_secs_f64() * 1e3,
            mbp.as_secs_f64() * 1e3,
            summary.creates,
        );
    }
    println!(
        "MultiBags stays near the baseline; MultiBags+ pays its k² price as futures multiply."
    );
}
