//! Tour of the `futurerd` facade: one program, every algorithm × analysis
//! combination, side by side — a miniature of the paper's Section 6
//! measurement matrix driven entirely through the public [`futurerd::Config`]
//! builder.
//!
//! ```text
//! cargo run --release --example facade_tour
//! ```

use futurerd::{Algorithm, Analysis, Config, Cx, ShadowMatrix};

/// A blocked wavefront over a matrix: each anti-diagonal cell is a future
/// consumed by its right and down neighbours. Structured (single-touch)
/// future use would need handle duplication, so the body below touches each
/// handle twice — general futures, MultiBags+ territory.
fn wavefront(cx: &mut Cx, n: usize) -> u64 {
    let mut grid = ShadowMatrix::new(cx, n, n, 0u64);
    for i in 0..n {
        for j in 0..n {
            let up = if i > 0 { grid.get(cx, i - 1, j) } else { 1 };
            let left = if j > 0 { grid.get(cx, i, j - 1) } else { 1 };
            grid.set(cx, i, j, (up + left) % 1_000_000_007);
        }
    }
    grid.get(cx, n - 1, n - 1)
}

fn main() {
    let n = 24;

    println!(
        "{:<16} {:<16} {:>10} {:>12} {:>12}",
        "algorithm", "analysis", "races", "queries", "dsu ops"
    );
    for algorithm in [
        Algorithm::MultiBags,
        Algorithm::MultiBagsPlus,
        Algorithm::GraphOracle,
    ] {
        for analysis in [
            Analysis::Baseline,
            Analysis::Reachability,
            Analysis::Instrumentation,
            Analysis::Full,
        ] {
            let detection = Config::new()
                .algorithm(algorithm)
                .analysis(analysis)
                .run(|cx| wavefront(cx, n));
            let (queries, dsu_ops) = detection
                .reach_stats
                .map(|s| (s.queries, s.dsu_ops()))
                .unwrap_or((0, 0));
            println!(
                "{:<16} {:<16} {:>10} {:>12} {:>12}",
                format!("{algorithm:?}"),
                format!("{analysis:?}"),
                detection.race_count(),
                queries,
                dsu_ops,
            );
        }
    }

    // The shorthands cover the two headline algorithms.
    let structured = futurerd::detect_structured(|cx| wavefront(cx, n));
    let general = futurerd::detect_general(|cx| wavefront(cx, n));
    assert_eq!(structured.value, general.value);
    assert!(structured.is_race_free() && general.is_race_free());
    println!(
        "\nwavefront({n}) = {} — race-free under MultiBags and MultiBags+ ({} strands, {} accesses)",
        structured.value,
        structured.summary.strands,
        structured.summary.accesses(),
    );
}
