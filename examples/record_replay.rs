//! Record once, detect many times.
//!
//! ```console
//! $ cargo run --release --example record_replay
//! ```
//!
//! Records a racy producer/consumer program as a persistent trace, saves it,
//! loads it back, and replays it through every reachability algorithm —
//! without ever re-executing the program. The command-line version of this
//! workflow over the paper's benchmark workloads is the `futurerd-trace`
//! binary in `futurerd-bench`.

use futurerd::{Algorithm, Config, ShadowArray, Trace};

fn main() {
    // 1. Record. No detection state is maintained during recording; the
    //    execution event stream is captured as-is.
    let recorded = futurerd::record(|cx| {
        let mut buffer = ShadowArray::new(cx, 8, 0u32);
        let producer = cx.create_future(|cx| {
            for i in 0..8 {
                buffer.set(cx, i, (i as u32 + 1) * 10);
            }
        });
        let early = buffer.get(cx, 0); // ⚠ logically parallel with the writes
        cx.get_future(producer);
        early
    });
    println!(
        "recorded {} events ({} strands, {} accesses)",
        recorded.trace.len(),
        recorded.summary.strands,
        recorded.summary.accesses()
    );

    // 2. Persist. The compact binary codec round-trips through disk.
    let path = std::env::temp_dir().join("futurerd-record-replay-example.trace");
    recorded.trace.save(&path).expect("writing the trace file");
    let trace = Trace::load(&path).expect("reading the trace file");
    std::fs::remove_file(&path).ok();
    assert_eq!(trace, recorded.trace);
    println!("round-tripped through {}", path.display());

    // 3. Replay through every algorithm that handles futures. The program
    //    is not re-executed; the detectors consume the stored stream.
    for algorithm in [
        Algorithm::MultiBags,
        Algorithm::MultiBagsPlus,
        Algorithm::GraphOracle,
    ] {
        let detection = Config::new()
            .algorithm(algorithm)
            .replay(&trace)
            .expect("recorded traces are canonical");
        println!("{algorithm:?}: {} racy granule(s)", detection.race_count());
        assert_eq!(detection.race_count(), 1);
        for race in detection.report().witnesses() {
            println!("  {race}");
        }
    }
}
