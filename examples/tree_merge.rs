//! Ordered-set merge (the `bst` benchmark): parallel execution on the
//! work-stealing pool plus race detection of both futures variants.
//!
//! ```text
//! cargo run --release -p futurerd-workloads --example tree_merge
//! ```

use futurerd_core::detector::RaceDetector;
use futurerd_core::reachability::{MultiBags, MultiBagsPlus};
use futurerd_runtime::{run_program, ThreadPool};
use futurerd_workloads::bst::{self, BstInput};

fn main() {
    let input = BstInput::generate(50_000, 30_000, 7);
    let expected = bst::checksum(&bst::serial(&input));

    let pool = ThreadPool::new(4);
    let parallel = bst::parallel(&pool, &input, 512);
    assert_eq!(parallel, expected);
    println!(
        "parallel merge of {} + {} keys on {} workers: checksum {parallel:#x}",
        input.a.len(),
        input.b.len(),
        pool.num_threads()
    );

    let small = BstInput::generate(4_000, 2_000, 7);
    let (sum, det, s) = run_program(RaceDetector::<MultiBags>::structured(), |cx| {
        bst::structured(cx, &small, 64)
    });
    println!(
        "structured merge: checksum {sum:#x}, {} futures, {} accesses — {}",
        s.creates,
        s.accesses(),
        det.report()
    );

    let (sum, det, s) = run_program(RaceDetector::<MultiBagsPlus>::general(), |cx| {
        bst::general(cx, &small, 64)
    });
    println!(
        "pipelined merge:  checksum {sum:#x}, {} get_fut operations — {}",
        s.gets,
        det.report()
    );
}
