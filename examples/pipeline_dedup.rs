//! The dedup compression pipeline: run it in parallel on the work-stealing
//! pool, then race detect the general-futures variant with MultiBags+.
//!
//! ```text
//! cargo run --release -p futurerd-workloads --example pipeline_dedup
//! ```

use futurerd_core::detector::RaceDetector;
use futurerd_core::reachability::MultiBagsPlus;
use futurerd_runtime::{run_program, ThreadPoolBuilder};
use futurerd_workloads::dedup::{self, DedupInput};

fn main() {
    let input = DedupInput::generate(128, 512, 42);
    let reference = dedup::serial(&input);
    println!(
        "dedup stream: {} chunks of {} bytes, reference checksum {reference:#x}",
        input.num_chunks(),
        input.chunk_size
    );

    // A "native" parallel run of the independent stages on the pool:
    // fragment + compress per chunk in parallel futures, dedup serially.
    let pool = ThreadPoolBuilder::new().num_threads(4).build();
    let chunks: Vec<Vec<u8>> = input
        .data
        .chunks(input.chunk_size)
        .map(|c| c.to_vec())
        .collect();
    let futures: Vec<_> = chunks
        .into_iter()
        .map(|chunk| pool.spawn_future(move || chunk.iter().map(|&b| b as u64).sum::<u64>()))
        .collect();
    let parallel_sum: u64 = futures.into_iter().map(|f| f.join()).sum();
    println!("pool processed the stream in parallel (byte sum {parallel_sum})");

    // Race detection of the pipelined (general futures) variant.
    let (checksum, detector, summary) =
        run_program(RaceDetector::<MultiBagsPlus>::general(), |cx| {
            dedup::general(cx, &input)
        });
    assert_eq!(
        checksum, reference,
        "pipeline result must match the serial reference"
    );
    println!(
        "race detection: {} strands, {} futures, {} get_fut operations, {} attached sets in R",
        summary.strands,
        summary.creates,
        summary.gets,
        detector.reach_stats().attached_sets
    );
    println!("{}", detector.report());
}
