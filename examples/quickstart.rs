//! Quickstart: write a small task-parallel program with futures, race detect
//! it through the `futurerd` facade, then fix the race.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

fn main() {
    // A pipeline-ish program with a bug: the future fills a buffer while the
    // main task reads it *before* joining the future.
    println!("== buggy version (reads the buffer before get_future) ==");
    let detection = futurerd::detect_structured(|cx| {
        let mut buffer = futurerd::ShadowArray::new(cx, 8, 0u64);
        let producer = cx.create_future(|cx| {
            for i in 0..8 {
                buffer.set(cx, i, (i as u64 + 1) * 10);
            }
        });
        // BUG: this read is logically parallel with the producer's writes.
        let early = buffer.get(cx, 0);
        cx.get_future(producer);
        let late = buffer.get(cx, 0);
        (early, late)
    });
    println!(
        "executed {} strands, {} futures, {} memory accesses",
        detection.summary.strands,
        detection.summary.creates,
        detection.summary.accesses()
    );
    println!("{}", detection.report());

    // The same program with the join moved before the read: race-free, this
    // time checked with MultiBags+ (general futures).
    println!("== fixed version (get_future before reading) ==");
    let detection = futurerd::detect_general(|cx| {
        let mut buffer = futurerd::ShadowArray::new(cx, 8, 0u64);
        let producer = cx.create_future(|cx| {
            for i in 0..8 {
                buffer.set(cx, i, (i as u64 + 1) * 10);
            }
        });
        cx.get_future(producer);
        (0..8).map(|i| buffer.get(cx, i)).sum::<u64>()
    });
    println!("{}", detection.report());
    assert!(detection.is_race_free());
}
