//! Quickstart: write a small task-parallel program with futures, race detect
//! it, then fix the race.
//!
//! ```text
//! cargo run --release -p futurerd-workloads --example quickstart
//! ```

use futurerd_core::detector::RaceDetector;
use futurerd_core::reachability::{MultiBags, MultiBagsPlus};
use futurerd_runtime::{run_program, ShadowArray};

fn main() {
    // A pipeline-ish program with a bug: the future fills a buffer while the
    // main task reads it *before* joining the future.
    println!("== buggy version (reads the buffer before get_fut) ==");
    let (_, detector, summary) = run_program(RaceDetector::<MultiBags>::structured(), |cx| {
        let mut buffer = ShadowArray::new(cx, 8, 0u64);
        let producer = cx.create_future(|cx| {
            for i in 0..8 {
                buffer.set(cx, i, (i as u64 + 1) * 10);
            }
        });
        // BUG: this read is logically parallel with the producer's writes.
        let early = buffer.get(cx, 0);
        cx.get_future(producer);
        let late = buffer.get(cx, 0);
        (early, late)
    });
    println!(
        "executed {} strands, {} futures, {} memory accesses",
        summary.strands,
        summary.creates,
        summary.accesses()
    );
    println!("{}", detector.report());

    println!("== fixed version (get_fut before reading) ==");
    let (_, detector, _) = run_program(RaceDetector::<MultiBagsPlus>::general(), |cx| {
        let mut buffer = ShadowArray::new(cx, 8, 0u64);
        let producer = cx.create_future(|cx| {
            for i in 0..8 {
                buffer.set(cx, i, (i as u64 + 1) * 10);
            }
        });
        cx.get_future(producer);
        (0..8).map(|i| buffer.get(cx, i)).sum::<u64>()
    });
    println!("{}", detector.report());
    assert!(detector.report().is_race_free());
}
