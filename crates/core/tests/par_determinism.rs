//! Determinism of the parallel detection engine: `par_replay_detect` must
//! produce a report **byte-identical** to sequential `replay_detect` at
//! every thread count, for every freezable algorithm, on every trace.
//!
//! The property is checked over seeded generated programs in both regimes
//! (structured and general futures — the latter includes multi-touch
//! handles, where MultiBags is *unsound* and the frozen index must
//! reproduce the live algorithm's divergent answers, not ground truth),
//! plus randomized generator shapes. Reports are compared with `==`
//! (witness order, racy-granule set, observation totals) *and* by their
//! rendered form.
//!
//! `FUTURERD_PAR_THREADS=<n>` restricts the run to a single thread count —
//! CI uses this to exercise 2 and 8 workers in separate steps.

use futurerd_core::parallel::par_replay_detect;
use futurerd_core::replay::{replay_detect, ReplayAlgorithm};
use futurerd_dag::genprog::{generate_program, GenConfig};
use futurerd_dag::trace::Trace;
use futurerd_runtime::trace::record_spec;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const SEEDS: u64 = 40;

fn thread_counts() -> Vec<usize> {
    match std::env::var("FUTURERD_PAR_THREADS") {
        Ok(v) => vec![v
            .parse()
            .expect("FUTURERD_PAR_THREADS must be a thread count")],
        Err(_) => vec![1, 2, 3, 8],
    }
}

fn assert_deterministic(trace: &Trace, context: &std::fmt::Arguments<'_>) {
    for algorithm in [ReplayAlgorithm::MultiBags, ReplayAlgorithm::MultiBagsPlus] {
        let sequential = replay_detect(trace, algorithm).expect("recorded traces are canonical");
        for threads in thread_counts() {
            let parallel =
                par_replay_detect(trace, algorithm, threads).expect("same trace, same validation");
            assert_eq!(
                parallel, sequential,
                "{context}: {algorithm} diverged at P={threads}"
            );
            assert_eq!(
                parallel.to_string(),
                sequential.to_string(),
                "{context}: {algorithm} rendering diverged at P={threads}"
            );
        }
    }
}

fn check_config(config: &GenConfig, tag: &str) {
    for seed in 0..SEEDS {
        let spec = generate_program(config, seed);
        let (trace, _) = record_spec(&spec);
        assert_deterministic(&trace, &format_args!("{tag} seed {seed}"));
    }
}

#[test]
fn parallel_detection_is_deterministic_on_structured_programs() {
    check_config(&GenConfig::structured(), "structured");
}

#[test]
fn parallel_detection_is_deterministic_on_general_programs() {
    check_config(&GenConfig::general(), "general");
}

/// Arbitrary generator shapes, both regimes, including location-starved
/// programs (heavy per-granule contention) and deep nesting (long bag merge
/// chains in the frozen timeline).
#[test]
fn prop_parallel_detection_is_deterministic() {
    let mut rng = StdRng::seed_from_u64(0x9a11_de7e);
    for case in 0..32 {
        let seed: u64 = rng.gen();
        let general: bool = rng.gen();
        let cfg = GenConfig {
            max_depth: rng.gen_range(2u32..8),
            max_actions: rng.gen_range(2u32..10),
            num_locations: rng.gen_range(1u32..24),
            general_futures: general,
            ..GenConfig::structured()
        };
        let spec = generate_program(&cfg, seed);
        let (trace, _) = record_spec(&spec);
        assert_deterministic(
            &trace,
            &format_args!("prop case {case} seed {seed} general {general}"),
        );
    }
}

/// The frozen fallback path (no frozen form) must be identical too.
#[test]
fn parallel_detection_matches_sequential_for_fallback_algorithms() {
    let spec = generate_program(&GenConfig::general(), 3);
    let (trace, _) = record_spec(&spec);
    for algorithm in [
        ReplayAlgorithm::SpBagsConservative,
        ReplayAlgorithm::GraphOracle,
    ] {
        let sequential = replay_detect(&trace, algorithm).expect("canonical");
        let parallel = par_replay_detect(&trace, algorithm, 4).expect("canonical");
        assert_eq!(parallel, sequential, "{algorithm}");
    }
}
