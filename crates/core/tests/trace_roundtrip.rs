//! Property tests for the trace record/replay pipeline: for seeded random
//! programs (structured and general futures), recording an execution,
//! serializing the trace, deserializing it, and replaying it through a
//! detector must yield race reports identical to detecting directly
//! in-process — for every reachability algorithm.

use futurerd_core::detector::RaceDetector;
use futurerd_core::reachability::{
    GraphOracle, MultiBags, MultiBagsPlus, SpBags, SpBagsConservative,
};
use futurerd_core::replay::{differential, replay_detect_unchecked, ReplayAlgorithm};
use futurerd_core::RaceReport;
use futurerd_dag::genprog::{generate_program, GenConfig, ProgramSpec};
use futurerd_dag::trace::Trace;
use futurerd_runtime::spec::run_spec;
use futurerd_runtime::trace::record_spec;

const SEEDS: u64 = 60;

/// Runs `spec` directly in-process under the given algorithm's full
/// detector.
fn detect_direct(spec: &ProgramSpec, algorithm: ReplayAlgorithm) -> RaceReport {
    match algorithm {
        ReplayAlgorithm::MultiBags => run_spec(spec, RaceDetector::<MultiBags>::structured())
            .0
            .into_report(),
        ReplayAlgorithm::MultiBagsPlus => run_spec(spec, RaceDetector::<MultiBagsPlus>::general())
            .0
            .into_report(),
        ReplayAlgorithm::SpBags => run_spec(spec, RaceDetector::new(SpBags::new()))
            .0
            .into_report(),
        ReplayAlgorithm::SpBagsConservative => {
            run_spec(spec, RaceDetector::new(SpBagsConservative::new()))
                .0
                .into_report()
        }
        ReplayAlgorithm::GraphOracle => run_spec(spec, RaceDetector::new(GraphOracle::new()))
            .0
            .into_report(),
    }
}

/// Record → serialize → deserialize → validate → replay, returning the
/// round-tripped trace.
fn round_trip(spec: &ProgramSpec) -> Trace {
    let (trace, summary) = record_spec(spec);
    let bytes = trace.to_bytes();
    let decoded = Trace::from_bytes(&bytes).expect("decoding an encoded trace");
    assert_eq!(decoded, trace, "codec round trip changed the trace");
    let counts = decoded.validate().expect("recorded traces are canonical");
    assert_eq!(counts.strands, summary.strands);
    assert_eq!(counts.gets, summary.gets);
    assert_eq!(counts.accesses(), summary.accesses());
    decoded
}

fn assert_reports_identical(
    direct: &RaceReport,
    replayed: &RaceReport,
    context: &std::fmt::Arguments<'_>,
) {
    assert_eq!(
        direct.race_count(),
        replayed.race_count(),
        "race counts diverged: {context}"
    );
    assert_eq!(
        direct.total_observations(),
        replayed.total_observations(),
        "observation totals diverged: {context}"
    );
    assert_eq!(
        direct.witnesses(),
        replayed.witnesses(),
        "witness races diverged: {context}"
    );
}

fn check_config(config: &GenConfig, tag: &str) {
    for seed in 0..SEEDS {
        let spec = generate_program(config, seed);
        let trace = round_trip(&spec);
        for algorithm in ReplayAlgorithm::ALL {
            // SP-Bags aborts on future constructs, in-process and on replay
            // alike; the comparison only makes sense where it runs.
            if !algorithm.runnable_for(&trace) {
                continue;
            }
            let direct = detect_direct(&spec, algorithm);
            let replayed = replay_detect_unchecked(&trace, algorithm);
            assert_reports_identical(
                &direct,
                &replayed,
                &format_args!("{tag} seed {seed}, {algorithm}"),
            );
        }
    }
}

#[test]
fn structured_programs_round_trip_for_all_detectors() {
    check_config(&GenConfig::structured(), "structured");
}

#[test]
fn general_programs_round_trip_for_all_detectors() {
    check_config(&GenConfig::general(), "general");
}

#[test]
fn differential_driver_agrees_on_random_programs() {
    for (config, tag) in [
        (GenConfig::structured(), "structured"),
        (GenConfig::general(), "general"),
    ] {
        for seed in 0..SEEDS {
            let spec = generate_program(&config, seed);
            let (trace, _) = record_spec(&spec);
            let outcome = differential(&trace).expect("recorded traces are canonical");
            assert!(
                outcome.agreed(),
                "{tag} seed {seed}: {:?}",
                outcome.disagreements
            );
            // Structured generator output must stay in the structured
            // regime, so MultiBags stays a sound (and checked) participant.
            if *tag.as_bytes() == *b"structured" {
                assert!(trace.is_single_touch(), "{tag} seed {seed}");
                assert!(trace.is_structured(), "{tag} seed {seed}");
            }
        }
    }
}

#[test]
fn multibags_soundness_flag_tracks_multi_touch_traces() {
    // Find a general-futures program that actually multi-touches and check
    // the soundness flag flips for MultiBags while MultiBags+ stays sound.
    let config = GenConfig::general();
    let multi = (0..200)
        .map(|seed| record_spec(&generate_program(&config, seed)).0)
        .find(|trace| !trace.is_single_touch())
        .expect("general generator eventually multi-touches");
    assert!(!multi.is_structured());
    assert!(!ReplayAlgorithm::MultiBags.sound_for(&multi));
    assert!(ReplayAlgorithm::MultiBagsPlus.sound_for(&multi));
    assert!(!ReplayAlgorithm::SpBags.sound_for(&multi));
}

#[test]
fn multibags_soundness_requires_creator_scope_gets() {
    // Single-touch is not enough: a handle that escapes upward (the
    // creating task returns before the get) puts strands that precede the
    // future in never-joined P-bags, and MultiBags reports false positives.
    // The fuzzer found this; the general generator reproduces it.
    let config = GenConfig::general();
    let escaped = (0..400)
        .map(|seed| record_spec(&generate_program(&config, seed)).0)
        .find(|trace| trace.is_single_touch() && !trace.is_structured())
        .expect("general generator eventually leaks a single-touch handle upward");
    assert!(!ReplayAlgorithm::MultiBags.sound_for(&escaped));
    assert!(ReplayAlgorithm::MultiBagsPlus.sound_for(&escaped));
}
