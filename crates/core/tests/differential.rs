//! Differential property tests: the MultiBags algorithms against the
//! ground-truth graph oracle, on randomly generated programs.
//!
//! For every generated program we execute it once on the sequential eager
//! executor with a checking observer that, each time a new strand begins,
//! compares the answer of the algorithm under test with the graph oracle for
//! *every* previously executed strand. This validates exactly the query the
//! detector relies on ("is u sequentially before the currently executing
//! strand?") across the whole execution.
//!
//! A second battery compares full race detection (same access-history
//! protocol, different reachability structures): the set of racy granules
//! reported must be identical.
//!
//! The `prop_*` tests draw generator shapes from a seeded RNG (the
//! workspace's offline `rand` stand-in), so all cases are deterministic and
//! failures reproduce by the printed seed.

use futurerd_core::detector::RaceDetector;
use futurerd_core::reachability::{GraphOracle, MultiBags, MultiBagsPlus, Reachability};
use futurerd_dag::events::{CreateFutureEvent, GetFutureEvent, SpawnEvent, SyncEvent};
use futurerd_dag::genprog::{generate_program, GenConfig, ProgramSpec};
use futurerd_dag::{FunctionId, MemAddr, Observer, StrandId};
use futurerd_runtime::spec::run_spec;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Forwards every event to the algorithm under test and to the oracle, and
/// checks that they agree on every (previous strand, current strand) pair.
struct DifferentialChecker<R> {
    subject: R,
    oracle: GraphOracle,
    started: Vec<StrandId>,
    mismatches: Vec<String>,
}

impl<R: Reachability> DifferentialChecker<R> {
    fn new(subject: R) -> Self {
        Self {
            subject,
            oracle: GraphOracle::new(),
            started: Vec::new(),
            mismatches: Vec::new(),
        }
    }

    fn check_all(&mut self, current: StrandId) {
        for &u in &self.started {
            let expected = self.oracle.precedes_current(u);
            let got = self.subject.precedes_current(u);
            if expected != got {
                self.mismatches.push(format!(
                    "{}: precedes({u}, {current}) = {got}, oracle says {expected}",
                    self.subject.name()
                ));
            }
        }
    }
}

impl<R: Reachability> Observer for DifferentialChecker<R> {
    fn on_program_start(&mut self, root: FunctionId, first: StrandId) {
        self.subject.on_program_start(root, first);
        self.oracle.on_program_start(root, first);
    }
    fn on_strand_start(&mut self, strand: StrandId, function: FunctionId) {
        self.subject.on_strand_start(strand, function);
        self.oracle.on_strand_start(strand, function);
        self.check_all(strand);
        self.started.push(strand);
    }
    fn on_spawn(&mut self, ev: &SpawnEvent) {
        self.subject.on_spawn(ev);
        self.oracle.on_spawn(ev);
    }
    fn on_create_future(&mut self, ev: &CreateFutureEvent) {
        self.subject.on_create_future(ev);
        self.oracle.on_create_future(ev);
    }
    fn on_return(&mut self, function: FunctionId, last: StrandId) {
        self.subject.on_return(function, last);
        self.oracle.on_return(function, last);
    }
    fn on_sync(&mut self, ev: &SyncEvent) {
        self.subject.on_sync(ev);
        self.oracle.on_sync(ev);
    }
    fn on_get_future(&mut self, ev: &GetFutureEvent) {
        self.subject.on_get_future(ev);
        self.oracle.on_get_future(ev);
    }
    fn on_program_end(&mut self, last: StrandId) {
        self.subject.on_program_end(last);
        self.oracle.on_program_end(last);
    }
}

fn check_reachability_against_oracle<R: Reachability>(spec: &ProgramSpec, subject: R) {
    let (checker, summary) = run_spec(spec, DifferentialChecker::new(subject));
    assert!(
        checker.mismatches.is_empty(),
        "{} mismatches on a program with {} strands and {} gets:\n{}",
        checker.mismatches.len(),
        summary.strands,
        summary.gets,
        checker.mismatches.join("\n")
    );
}

fn racy_granules(spec: &ProgramSpec, detector: RaceDetector<impl Reachability>) -> Vec<u64> {
    let (det, _) = run_spec(spec, detector);
    let report = det.into_report();
    let mut granules: Vec<u64> = report
        .witnesses()
        .iter()
        .map(|r| r.addr.granule())
        .collect();
    // The witness list has one entry per racy granule by construction, but a
    // granule may race for several reasons; compare the full racy set.
    granules.sort_unstable();
    granules.dedup();
    let mut all: Vec<u64> = (0..1 << 16)
        .filter(|g| report.is_racy(MemAddr(g * MemAddr::GRANULARITY)))
        .collect();
    all.sort_unstable();
    assert!(granules.iter().all(|g| all.contains(g)));
    all
}

#[test]
fn multibags_matches_oracle_on_structured_programs() {
    let cfg = GenConfig::structured();
    for seed in 0..150 {
        let spec = generate_program(&cfg, seed);
        check_reachability_against_oracle(&spec, MultiBags::new());
    }
}

#[test]
fn multibags_plus_matches_oracle_on_structured_programs() {
    // MultiBags+ handles structured programs too (the paper measures exactly
    // this configuration in Figure 8).
    let cfg = GenConfig::structured();
    for seed in 0..150 {
        let spec = generate_program(&cfg, seed);
        check_reachability_against_oracle(&spec, MultiBagsPlus::new());
    }
}

#[test]
fn multibags_plus_matches_oracle_on_general_programs() {
    let cfg = GenConfig::general();
    for seed in 0..250 {
        let spec = generate_program(&cfg, seed);
        check_reachability_against_oracle(&spec, MultiBagsPlus::new());
    }
}

#[test]
fn multibags_plus_matches_oracle_on_deep_general_programs() {
    let cfg = GenConfig {
        max_depth: 8,
        max_actions: 6,
        num_locations: 8,
        ..GenConfig::general()
    };
    for seed in 0..100 {
        let spec = generate_program(&cfg, seed);
        check_reachability_against_oracle(&spec, MultiBagsPlus::new());
    }
}

#[test]
fn multibags_plus_never_needs_defensive_attachify() {
    for (cfg, n) in [
        (GenConfig::structured(), 100u64),
        (GenConfig::general(), 200),
    ] {
        for seed in 0..n {
            let spec = generate_program(&cfg, seed);
            let (obs, _) = run_spec(&spec, MultiBagsPlus::new());
            assert_eq!(
                obs.stats().unexpected_attachifies,
                0,
                "seed {seed}: the paper's attachment invariant was violated"
            );
        }
    }
}

#[test]
fn race_reports_agree_between_multibags_and_oracle_on_structured_programs() {
    let cfg = GenConfig::structured();
    for seed in 0..120 {
        let spec = generate_program(&cfg, seed);
        let with_multibags = racy_granules(&spec, RaceDetector::structured());
        let with_oracle = racy_granules(&spec, RaceDetector::new(GraphOracle::new()));
        assert_eq!(with_multibags, with_oracle, "seed {seed}");
    }
}

#[test]
fn race_reports_agree_between_multibags_plus_and_oracle_on_general_programs() {
    let cfg = GenConfig::general();
    for seed in 0..120 {
        let spec = generate_program(&cfg, seed);
        let with_mbp = racy_granules(&spec, RaceDetector::general());
        let with_oracle = racy_granules(&spec, RaceDetector::new(GraphOracle::new()));
        assert_eq!(with_mbp, with_oracle, "seed {seed}");
    }
}

/// Arbitrary seeds and generator shapes for the structured regime.
#[test]
fn prop_multibags_matches_oracle() {
    let mut rng = StdRng::seed_from_u64(0xd1ff_0001);
    for _ in 0..64 {
        let seed: u64 = rng.gen();
        let depth = rng.gen_range(2u32..7);
        let actions = rng.gen_range(2u32..10);
        let cfg = GenConfig {
            max_depth: depth,
            max_actions: actions,
            ..GenConfig::structured()
        };
        let spec = generate_program(&cfg, seed);
        check_reachability_against_oracle(&spec, MultiBags::new());
    }
}

/// Arbitrary seeds and generator shapes for the general regime.
#[test]
fn prop_multibags_plus_matches_oracle() {
    let mut rng = StdRng::seed_from_u64(0xd1ff_0002);
    for _ in 0..64 {
        let seed: u64 = rng.gen();
        let depth = rng.gen_range(2u32..7);
        let actions = rng.gen_range(2u32..10);
        let cfg = GenConfig {
            max_depth: depth,
            max_actions: actions,
            ..GenConfig::general()
        };
        let spec = generate_program(&cfg, seed);
        check_reachability_against_oracle(&spec, MultiBagsPlus::new());
    }
}

/// Race sets must agree regardless of generator shape.
#[test]
fn prop_race_sets_agree() {
    let mut rng = StdRng::seed_from_u64(0xd1ff_0003);
    for _ in 0..64 {
        let seed: u64 = rng.gen();
        let general: bool = rng.gen();
        let cfg = if general {
            GenConfig::general()
        } else {
            GenConfig::structured()
        };
        let spec = generate_program(&cfg, seed);
        let subject = racy_granules(&spec, RaceDetector::general());
        let oracle = racy_granules(&spec, RaceDetector::new(GraphOracle::new()));
        assert_eq!(subject, oracle, "seed {seed} general {general}");
    }
}
