//! The `DetectorStats` sharding contract (see the `shadow_pages` field
//! docs in `futurerd_core::stats`): summing per-partition counters with
//! `merge_outcomes_stats` reproduces the sequential detector's statistics
//! **field-for-field, except `shadow_pages`** — pages are per-partition
//! tables, so a page straddling a partition boundary is counted once per
//! partition touching it. A sharded run may therefore report more pages
//! than the sequential detector, never fewer, and exactly as many when a
//! single partition covers the whole granule space.

use futurerd_core::detector::RaceDetector;
use futurerd_core::parallel::{
    detect_frozen_outcomes, merge_outcomes_stats, IncrementalFreezer, StdExecutor,
};
use futurerd_core::replay::ReplayAlgorithm;
use futurerd_core::stats::DetectorStats;
use futurerd_dag::genprog::{generate_program, GenConfig};
use futurerd_runtime::trace::record_spec;

fn sequential_stats(
    trace: &futurerd_dag::trace::Trace,
    algorithm: ReplayAlgorithm,
) -> DetectorStats {
    let (_, _, stats) = match algorithm {
        ReplayAlgorithm::MultiBags => trace
            .replay(RaceDetector::<futurerd_core::reachability::MultiBags>::structured())
            .into_parts(),
        ReplayAlgorithm::MultiBagsPlus => trace
            .replay(RaceDetector::<futurerd_core::reachability::MultiBagsPlus>::general())
            .into_parts(),
        other => panic!("unfreezable algorithm in sharding test: {other}"),
    };
    stats
}

fn sharded_stats(
    trace: &futurerd_dag::trace::Trace,
    algorithm: ReplayAlgorithm,
    threads: usize,
) -> DetectorStats {
    let mut freezer = IncrementalFreezer::new(algorithm).expect("freezable algorithm");
    freezer.extend(trace.events());
    let index = freezer.snapshot_index();
    let outcomes = detect_frozen_outcomes(&index, freezer.accesses(), threads, &StdExecutor);
    let (_, stats) = merge_outcomes_stats(outcomes);
    stats
}

#[test]
fn sharded_stats_equal_sequential_except_shadow_pages() {
    for (config, tag) in [
        (GenConfig::structured(), "structured"),
        (GenConfig::general(), "general"),
    ] {
        for seed in 0..8u64 {
            let spec = generate_program(&config, seed);
            let (trace, _) = record_spec(&spec);
            for algorithm in [ReplayAlgorithm::MultiBags, ReplayAlgorithm::MultiBagsPlus] {
                if tag == "general" && algorithm == ReplayAlgorithm::MultiBags {
                    // MultiBags is unsound on general futures; its stats
                    // still shard consistently, but keep the matrix to the
                    // regimes each algorithm is meant for.
                    continue;
                }
                let seq = sequential_stats(&trace, algorithm);
                for threads in [1, 2, 3, 8] {
                    let par = sharded_stats(&trace, algorithm, threads);
                    let ctx = format!("{tag} seed {seed} {algorithm} P={threads}");
                    assert_eq!(par.read_checks, seq.read_checks, "{ctx}: read_checks");
                    assert_eq!(par.write_checks, seq.write_checks, "{ctx}: write_checks");
                    assert_eq!(
                        par.readers_recorded, seq.readers_recorded,
                        "{ctx}: readers_recorded"
                    );
                    assert_eq!(
                        par.readers_cleared, seq.readers_cleared,
                        "{ctx}: readers_cleared"
                    );
                    assert_eq!(par.races_found, seq.races_found, "{ctx}: races_found");
                    assert!(
                        par.shadow_pages >= seq.shadow_pages,
                        "{ctx}: sharding can only duplicate boundary pages \
                         (par {} < seq {})",
                        par.shadow_pages,
                        seq.shadow_pages
                    );
                    if threads == 1 {
                        assert_eq!(
                            par.shadow_pages, seq.shadow_pages,
                            "{ctx}: one partition sees every page exactly once"
                        );
                    }
                }
            }
        }
    }
}
