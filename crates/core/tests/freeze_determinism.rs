//! Byte-identity of the work-assisted pass-1 freeze: freezing through
//! [`IncrementalFreezer::extend_assisted`] must produce the **same frozen
//! state, bit for bit**, as the sequential freeze — at every worker count,
//! on every fuzz shape, for both freezable algorithms.
//!
//! The comparison is the raw export ([`IncrementalFreezer::to_raw`]), which
//! carries the closure rows, every bag/DNSP timeline, and the live resume
//! state (disjoint-set shortcuts, per-function first strands); the raw
//! forms are `Eq`, so `assert_eq!` is the whole oracle. The closure's
//! adjacency lists are not exported (they rebuild deterministically from
//! the rows) — the resume tests below cover them instead, by *continuing*
//! to freeze on top of an assisted prefix: any adjacency corruption would
//! mis-stamp the suffix's arcs and diverge the exported rows.
//!
//! Assists here run with `min_batch = 1` and single-stamp work units, so
//! every arc of every trace goes through the chunked batch stage — the
//! worst case for scheduling races, which is the point.
//!
//! `FUTURERD_PAR_THREADS=<n>` restricts the run to a single worker count —
//! CI uses this to exercise 2 and 8 workers in separate steps.

use futurerd_core::parallel::{FreezeAssist, IncrementalFreezer, RawFreeze, StdExecutor};
use futurerd_core::replay::ReplayAlgorithm;
use futurerd_dag::trace::Trace;
use futurerd_runtime::trace::record_spec;
use futurerd_workloads::fuzzgen::{generate_shaped, FuzzShape};

const SEEDS_PER_SHAPE: u64 = 4;
const ALGORITHMS: [ReplayAlgorithm; 2] =
    [ReplayAlgorithm::MultiBags, ReplayAlgorithm::MultiBagsPlus];

fn thread_counts() -> Vec<usize> {
    match std::env::var("FUTURERD_PAR_THREADS") {
        Ok(v) => vec![v
            .parse()
            .expect("FUTURERD_PAR_THREADS must be a thread count")],
        Err(_) => vec![1, 2, 4, 8],
    }
}

fn shaped_trace(shape: FuzzShape, seed: u64) -> Trace {
    let program = generate_shaped(shape, seed);
    let (trace, _) = record_spec(&program.spec);
    trace
}

fn sequential_raw(trace: &Trace, algorithm: ReplayAlgorithm) -> RawFreeze {
    let mut freezer = IncrementalFreezer::new(algorithm).expect("freezable algorithm");
    freezer.extend(trace.events());
    freezer.to_raw()
}

/// An assist that forces *every* arc through the batch stage in
/// single-stamp units — maximal chunking, maximal contention.
fn stress_assist(workers: usize, executor: &StdExecutor) -> FreezeAssist<'_> {
    FreezeAssist::new(workers, executor)
        .with_min_batch(1)
        .with_unit_target(1)
}

#[test]
fn assisted_freeze_is_byte_identical_on_every_fuzz_shape() {
    let executor = StdExecutor;
    for shape in FuzzShape::ALL {
        for seed in 0..SEEDS_PER_SHAPE {
            let trace = shaped_trace(shape, seed);
            for algorithm in ALGORITHMS {
                let expected = sequential_raw(&trace, algorithm);
                for workers in thread_counts() {
                    let mut freezer =
                        IncrementalFreezer::new(algorithm).expect("freezable algorithm");
                    freezer.extend_assisted(trace.events(), &stress_assist(workers, &executor));
                    assert_eq!(
                        freezer.to_raw(),
                        expected,
                        "{shape:?} seed {seed}: {algorithm} assisted freeze \
                         diverged at P={workers}"
                    );
                }
            }
        }
    }
}

#[test]
fn assisted_freeze_is_byte_identical_at_production_thresholds() {
    // Default min-batch / unit-target: most arcs stay sequential, only
    // genuinely large batches dispatch — the configuration production
    // paths (session ingest, store detect) actually run.
    let executor = StdExecutor;
    for shape in [FuzzShape::General, FuzzShape::AdversarialKn] {
        let trace = shaped_trace(shape, 7);
        for algorithm in ALGORITHMS {
            let expected = sequential_raw(&trace, algorithm);
            for workers in thread_counts() {
                let mut freezer = IncrementalFreezer::new(algorithm).expect("freezable algorithm");
                freezer.extend_assisted(trace.events(), &FreezeAssist::new(workers, &executor));
                assert_eq!(
                    freezer.to_raw(),
                    expected,
                    "{shape:?}: {algorithm} diverged at P={workers} with default thresholds"
                );
            }
        }
    }
}

#[test]
fn executor_free_fallback_is_byte_identical() {
    // No executor attached: batches above the threshold drain through the
    // pull-based ChunkIter on the calling thread — the no-pool fallback.
    let assist = FreezeAssist::sequential()
        .with_min_batch(1)
        .with_unit_target(1);
    for shape in FuzzShape::ALL {
        let trace = shaped_trace(shape, 11);
        for algorithm in ALGORITHMS {
            let expected = sequential_raw(&trace, algorithm);
            let mut freezer = IncrementalFreezer::new(algorithm).expect("freezable algorithm");
            freezer.extend_assisted(trace.events(), &assist);
            assert_eq!(
                freezer.to_raw(),
                expected,
                "{shape:?}: {algorithm} ChunkIter fallback diverged"
            );
        }
    }
}

#[test]
fn chunked_assisted_extends_match_one_sequential_freeze() {
    // Feed the stream in small chunks through the assisted path — the
    // session-ingest shape — and compare against one whole-trace
    // sequential freeze at every chunk boundary's end state.
    let executor = StdExecutor;
    for shape in [FuzzShape::Speculation, FuzzShape::PlantedRaces] {
        let trace = shaped_trace(shape, 3);
        for algorithm in ALGORITHMS {
            let expected = sequential_raw(&trace, algorithm);
            for workers in thread_counts() {
                let assist = stress_assist(workers, &executor);
                let mut freezer = IncrementalFreezer::new(algorithm).expect("freezable algorithm");
                for chunk in trace.events().chunks(7) {
                    freezer.extend_assisted(chunk, &assist);
                }
                assert_eq!(
                    freezer.to_raw(),
                    expected,
                    "{shape:?}: {algorithm} chunked assisted extend diverged at P={workers}"
                );
            }
        }
    }
}

#[test]
fn sequential_resume_on_an_assisted_prefix_stays_identical() {
    // Adjacency-list integrity: the raw export does not carry the closure's
    // adjacency lists, but the *suffix* freeze consumes them (every new arc
    // iterates the accumulated ancestor/descendant lists). Freezing a
    // prefix assisted and the rest sequentially must therefore still land
    // on the sequential end state — it cannot unless the assisted prefix
    // left the exact sequential adjacency behind.
    let executor = StdExecutor;
    for shape in [
        FuzzShape::General,
        FuzzShape::Pipeline,
        FuzzShape::AdversarialKn,
    ] {
        let trace = shaped_trace(shape, 5);
        let cut = trace.len() / 2;
        for algorithm in ALGORITHMS {
            let expected = sequential_raw(&trace, algorithm);
            for workers in thread_counts() {
                let mut freezer = IncrementalFreezer::new(algorithm).expect("freezable algorithm");
                freezer.extend_assisted(&trace.events()[..cut], &stress_assist(workers, &executor));
                freezer.extend(&trace.events()[cut..]);
                assert_eq!(
                    freezer.to_raw(),
                    expected,
                    "{shape:?}: {algorithm} sequential resume after assisted \
                     prefix diverged at P={workers}"
                );
            }
        }
    }
}
