//! Statistics collected by the reachability structures and the detector.
//!
//! The paper's complexity claims (Theorems 4.1 and 5.1) are stated in terms
//! of disjoint-set operations, reachability queries and the size of the
//! reachability matrix `R`; these counters expose those quantities so the
//! benchmark harness can reproduce the scaling ablations and the `R`-memory
//! discussion of Section 6.

use futurerd_dsu::OpCounters;
use serde::{Deserialize, Serialize};

/// Counters describing the work a reachability structure performed.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ReachStats {
    /// Reachability queries answered.
    pub queries: u64,
    /// `make_set` operations across all disjoint-set structures.
    pub make_sets: u64,
    /// `union` operations across all disjoint-set structures.
    pub unions: u64,
    /// `find` operations across all disjoint-set structures.
    pub finds: u64,
    /// Attached sets created (MultiBags+ only; nodes of `R`).
    pub attached_sets: u64,
    /// Arcs added to `R` (MultiBags+ only).
    pub r_arcs: u64,
    /// Approximate bytes used by the transitive closure of `R`.
    pub r_bytes: u64,
    /// Number of times a set the algorithm expected to be attached had to be
    /// attachified defensively (should be zero; exposed for validation).
    pub unexpected_attachifies: u64,
}

impl ReachStats {
    /// Folds disjoint-set counters into these statistics.
    pub fn absorb_dsu(&mut self, c: &OpCounters) {
        self.make_sets += c.make_sets;
        self.unions += c.unions;
        self.finds += c.finds;
    }

    /// Total disjoint-set operations.
    pub fn dsu_ops(&self) -> u64 {
        self.make_sets + self.unions + self.finds
    }

    /// Registers every counter as a `<prefix>.<field>` gauge in the
    /// `futurerd-obs` metrics registry (no-op while recording is
    /// disabled). Gauges, not counters: a report publishes its totals as
    /// one consistent point-in-time reading.
    pub fn export_metrics(&self, prefix: &str) {
        if !futurerd_obs::enabled() {
            return;
        }
        futurerd_obs::gauge_set(&format!("{prefix}.queries"), self.queries);
        futurerd_obs::gauge_set(&format!("{prefix}.make_sets"), self.make_sets);
        futurerd_obs::gauge_set(&format!("{prefix}.unions"), self.unions);
        futurerd_obs::gauge_set(&format!("{prefix}.finds"), self.finds);
        futurerd_obs::gauge_set(&format!("{prefix}.attached_sets"), self.attached_sets);
        futurerd_obs::gauge_set(&format!("{prefix}.r_arcs"), self.r_arcs);
        futurerd_obs::gauge_set(&format!("{prefix}.r_bytes"), self.r_bytes);
        futurerd_obs::gauge_set(
            &format!("{prefix}.unexpected_attachifies"),
            self.unexpected_attachifies,
        );
    }
}

/// Counters describing the detector's access-history activity.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct DetectorStats {
    /// Granule-level read checks performed.
    pub read_checks: u64,
    /// Granule-level write checks performed.
    pub write_checks: u64,
    /// Reader-list entries appended.
    pub readers_recorded: u64,
    /// Reader-list entries cleared by writers.
    pub readers_cleared: u64,
    /// Races recorded (before deduplication caps).
    pub races_found: u64,
    /// Shadow pages allocated.
    ///
    /// **Aggregation caveat:** this is the only field that is *not*
    /// invariant under sharding. Every other counter is driven by the
    /// granule-local access sequence, which each partition replays exactly
    /// as the sequential detector saw it, so summing partition stats
    /// (`merge_outcomes_stats`) reproduces the sequential values
    /// field-for-field. Shadow pages, however, are per-partition tables: a
    /// page whose granules straddle a partition boundary is allocated — and
    /// counted — once in *each* partition that touches it. A sharded run
    /// therefore reports `shadow_pages` ≥ the sequential count (equality at
    /// one partition). The `detector_stats_sharding` test pins both halves
    /// of this contract.
    pub shadow_pages: u64,
}

impl DetectorStats {
    /// Registers every counter as a `<prefix>.<field>` gauge in the
    /// `futurerd-obs` metrics registry (no-op while recording is
    /// disabled). See the `shadow_pages` field docs for the one counter
    /// whose value depends on the partition count.
    pub fn export_metrics(&self, prefix: &str) {
        if !futurerd_obs::enabled() {
            return;
        }
        futurerd_obs::gauge_set(&format!("{prefix}.read_checks"), self.read_checks);
        futurerd_obs::gauge_set(&format!("{prefix}.write_checks"), self.write_checks);
        futurerd_obs::gauge_set(&format!("{prefix}.readers_recorded"), self.readers_recorded);
        futurerd_obs::gauge_set(&format!("{prefix}.readers_cleared"), self.readers_cleared);
        futurerd_obs::gauge_set(&format!("{prefix}.races_found"), self.races_found);
        futurerd_obs::gauge_set(&format!("{prefix}.shadow_pages"), self.shadow_pages);
    }
}

impl std::fmt::Display for ReachStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "queries={} dsu_ops={} attached={} r_arcs={} r_bytes={}",
            self.queries,
            self.dsu_ops(),
            self.attached_sets,
            self.r_arcs,
            self.r_bytes
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn absorb_dsu_accumulates() {
        let mut s = ReachStats::default();
        s.absorb_dsu(&OpCounters {
            make_sets: 2,
            unions: 3,
            finds: 5,
        });
        s.absorb_dsu(&OpCounters {
            make_sets: 1,
            unions: 1,
            finds: 1,
        });
        assert_eq!(s.make_sets, 3);
        assert_eq!(s.unions, 4);
        assert_eq!(s.finds, 6);
        assert_eq!(s.dsu_ops(), 13);
    }

    #[test]
    fn display_mentions_key_fields() {
        let s = ReachStats {
            queries: 7,
            attached_sets: 2,
            ..Default::default()
        };
        let text = s.to_string();
        assert!(text.contains("queries=7"));
        assert!(text.contains("attached=2"));
    }
}
