//! Pass 1 of the parallel detection engine: replay the trace through the
//! reachability algorithm once and *freeze* the result into an immutable,
//! shareable index.
//!
//! The on-the-fly structures of [`crate::reachability`] answer "is strand
//! `u` sequentially before the *currently executing* strand?" — a query
//! whose answer depends on when it is asked. To shard detection, workers
//! need the same answer *for any point of the trace*, read-only. The freeze
//! replays the reachability updates once and records, instead of the live
//! sets, their **timelines**:
//!
//! * every bag (disjoint set) of MultiBags / the `DSP` of MultiBags+ is a
//!   node of a *merge forest*: a set object is created, may be relabelled
//!   `S → P` once (at the `Return` of the function owning it), and is merged
//!   into another set at most once (at the `Sync`/`GetFuture` that joins
//!   it). A strand's bag at trace position `t` is found by walking its merge
//!   chain while the merge position precedes `t`; its tag is `S` iff the
//!   final set's relabel position does not precede `t`. Positions along a
//!   merge chain strictly increase, so the walk is well defined — and it is
//!   the *recorded* update sequence that is replayed, so the frozen answers
//!   match the live algorithm exactly even on traces where MultiBags is
//!   unsound (multi-touch futures), where its unions diverge from true dag
//!   reachability;
//! * the `DNSP` sets of MultiBags+ get the same merge-forest treatment,
//!   with their tag timeline (`Unattached{attPred}` → attachified →
//!   `attSucc` assignments) recorded per set;
//! * the reachability dag `R` over attached sets is frozen as an
//!   **earliest-connection closure**: arcs arrive in trace order, so the
//!   first time a pair becomes connected is the earliest position at which
//!   any path exists, and `reaches(a, b)` *at position t* is one hash-map
//!   probe (`earliest(a→b) < t`) — the "attached-bag closure bits" of the
//!   frozen index.
//!
//! All query paths are `&self` with no interior mutability, so one
//! [`ReachIndex`] is shared by every detection worker.

use super::assist::FreezeAssist;
use crate::replay::ReplayAlgorithm;
use futurerd_dag::events::{CreateFutureEvent, GetFutureEvent, SpawnEvent, SyncEvent};
use futurerd_dag::trace::Trace;
use futurerd_dag::{FunctionId, MemAddr, Observer, StrandId};

/// A position in the trace: the index of an event in the stream. Every
/// timeline comparison is strict (`<`): an update at position `p` is visible
/// to queries issued by events at positions `> p`.
pub type Pos = u32;

const NO_SET: u32 = u32::MAX;

// ---------------------------------------------------------------------------
// Frozen bags (MultiBags and the DSP of MultiBags+)
// ---------------------------------------------------------------------------

/// One set object of the bag merge forest.
#[derive(Debug, Clone, Default)]
struct BagSet {
    /// `S → P` relabel position (the owning function's `Return`), if any.
    relabel: Option<Pos>,
    /// The set this one was merged into, and when.
    merged: Option<(Pos, u32)>,
}

/// The frozen form of a [`crate::reachability::MultiBags`] run (also used
/// for the `DSP` component of MultiBags+): final bag assignments per strand
/// plus each bag's tag/merge timeline.
#[derive(Debug, Clone, Default)]
pub struct FrozenBags {
    /// Birth set of each strand (the set it was placed in when it started).
    set_of_strand: Vec<u32>,
    sets: Vec<BagSet>,
}

impl FrozenBags {
    /// True iff `u` was in an S-bag just before the event at `pos` — exactly
    /// what `MultiBags::in_s_bag(u)` answered at that point of the replay.
    pub fn in_s_bag_at(&self, u: StrandId, pos: Pos) -> bool {
        let mut set = self.set_of_strand[u.index()];
        debug_assert_ne!(set, NO_SET, "strand {u} had not started at {pos}");
        loop {
            let s = &self.sets[set as usize];
            match s.merged {
                Some((p, target)) if p < pos => set = target,
                _ => return s.relabel.is_none_or(|p| p >= pos),
            }
        }
    }

    /// As [`FrozenBags::in_s_bag_at`], resuming the merge-chain walk from a
    /// per-strand cursor. Valid only for non-decreasing `pos` per cursor
    /// (the chain position a strand resolved to can never move backwards),
    /// which makes the whole walk amortized O(1) per query for workers
    /// scanning the trace in order.
    fn in_s_bag_at_cached(&self, cursor: &mut Vec<Cursor>, u: StrandId, pos: Pos) -> bool {
        let set = resolve_cached(
            &self.sets,
            |s| s.merged,
            cursor,
            self.set_of_strand[u.index()],
            u,
            pos,
        );
        self.sets[set as usize].relabel.is_none_or(|p| p >= pos)
    }

    /// Number of set objects in the merge forest.
    pub fn num_sets(&self) -> usize {
        self.sets.len()
    }
}

/// Per-strand memo of a merge-forest walk: `set` is the resolved set for
/// every query position `≤ expiry`; later positions resume the walk from
/// `set`.
#[derive(Debug, Clone, Copy)]
struct Cursor {
    set: u32,
    expiry: Pos,
}

const FRESH: Cursor = Cursor {
    set: NO_SET,
    expiry: 0,
};

/// Walks a merge forest from a cached per-strand position. `merged_of`
/// projects a set to its merge edge, `birth` is the strand's birth set for
/// the first query.
#[inline]
fn resolve_cached<S>(
    sets: &[S],
    merged_of: impl Fn(&S) -> Option<(Pos, u32)>,
    cursor: &mut Vec<Cursor>,
    birth: u32,
    u: StrandId,
    pos: Pos,
) -> u32 {
    if cursor.len() <= u.index() {
        cursor.resize(u.index() + 1, FRESH);
    }
    let entry = &mut cursor[u.index()];
    let mut set = if entry.set == NO_SET {
        debug_assert_ne!(birth, NO_SET, "strand {u} had not started at {pos}");
        birth
    } else if pos <= entry.expiry {
        return entry.set;
    } else {
        entry.set
    };
    loop {
        match merged_of(&sets[set as usize]) {
            Some((p, target)) if p < pos => set = target,
            Some((p, _)) => {
                *entry = Cursor { set, expiry: p };
                return set;
            }
            None => {
                *entry = Cursor { set, expiry: NEVER };
                return set;
            }
        }
    }
}

/// Builds a [`FrozenBags`] by mirroring the MultiBags update rules while
/// recording their timeline. `union_on_get = false` gives the `DSP` variant
/// used inside MultiBags+ (no union at `get_fut`).
#[derive(Debug, Clone)]
struct BagsBuilder {
    union_on_get: bool,
    frozen: FrozenBags,
    /// Live root of each set chain (with path halving); mirrors the live
    /// disjoint-set state during the freezing replay.
    live: Vec<u32>,
    /// First strand of each function — a known member of its bag.
    first_strand: Vec<Option<StrandId>>,
}

impl BagsBuilder {
    fn new(union_on_get: bool) -> Self {
        Self {
            union_on_get,
            frozen: FrozenBags::default(),
            live: Vec::new(),
            first_strand: Vec::new(),
        }
    }

    fn live_root(&mut self, mut set: u32) -> u32 {
        // Path halving over the live pointers: the frozen merge edges stay
        // intact, only the resolution shortcut is compressed.
        while self.live[set as usize] != set {
            let parent = self.live[set as usize];
            let grandparent = self.live[parent as usize];
            self.live[set as usize] = grandparent;
            set = grandparent;
        }
        set
    }

    fn set_of_function(&mut self, function: FunctionId) -> u32 {
        let member = self
            .first_strand
            .get(function.index())
            .copied()
            .flatten()
            .unwrap_or_else(|| panic!("function {function} has not started executing"));
        let birth = self.frozen.set_of_strand[member.index()];
        self.live_root(birth)
    }

    fn strand_start(&mut self, strand: StrandId, function: FunctionId) {
        if self.frozen.set_of_strand.len() <= strand.index() {
            self.frozen.set_of_strand.resize(strand.index() + 1, NO_SET);
        }
        if self.first_strand.len() <= function.index() {
            self.first_strand.resize(function.index() + 1, None);
        }
        match self.first_strand[function.index()] {
            None => {
                // First strand of the function: a fresh S-set (this is S_F).
                let id = self.frozen.sets.len() as u32;
                self.frozen.sets.push(BagSet::default());
                self.live.push(id);
                self.frozen.set_of_strand[strand.index()] = id;
                self.first_strand[function.index()] = Some(strand);
            }
            Some(_) => {
                // Subsequent strand: joins whatever set currently holds the
                // function's first strand (the live algorithm unions the new
                // singleton into it, which keeps that set's tag).
                let root = self.set_of_function(function);
                self.frozen.set_of_strand[strand.index()] = root;
            }
        }
    }

    fn function_return(&mut self, function: FunctionId, pos: Pos) {
        // P_F = S_F: relabel the live set holding the function's bag.
        let root = self.set_of_function(function);
        let set = &mut self.frozen.sets[root as usize];
        if set.relabel.is_none() {
            set.relabel = Some(pos);
        }
    }

    fn join_child(&mut self, parent: FunctionId, child: FunctionId, pos: Pos) {
        // S_parent = Union(S_parent, P_child), keeping the parent's tag.
        let winner = self.set_of_function(parent);
        let victim = self.set_of_function(child);
        if winner == victim {
            return;
        }
        self.frozen.sets[victim as usize].merged = Some((pos, winner));
        self.live[victim as usize] = winner;
    }

    fn sync(&mut self, ev: &SyncEvent, pos: Pos) {
        self.join_child(ev.parent, ev.child, pos);
    }

    fn get_future(&mut self, ev: &GetFutureEvent, pos: Pos) {
        if self.union_on_get {
            self.join_child(ev.parent, ev.future, pos);
        }
    }
}

// ---------------------------------------------------------------------------
// Frozen DNSP + timed closure of R (MultiBags+)
// ---------------------------------------------------------------------------

/// How a `DNSP` set started life.
#[derive(Debug, Clone, Copy)]
enum NspBirth {
    /// Created attached, as `R` node `rnode`.
    Attached { rnode: u32 },
    /// Created unattached with the given attached predecessor (immutable for
    /// the set's whole lifetime).
    Unattached { att_pred: u32 },
}

/// One set object of the `DNSP` merge forest, with its tag timeline.
#[derive(Debug, Clone)]
struct NspSet {
    birth: NspBirth,
    /// `Attachify` position and the `R` node created for it (unattached
    /// births only; at most once).
    attached: Option<(Pos, u32)>,
    /// `attSucc` assignments (position, `R` node), in trace order.
    att_succ: Vec<(Pos, u32)>,
    /// The set this one was merged into, and when.
    merged: Option<(Pos, u32)>,
}

/// Sentinel for "no path" in the timed closure rows.
pub(crate) const NEVER: Pos = Pos::MAX;

/// The `R` dag over attached sets with an earliest-connection transitive
/// closure: `earliest[a→b]` is the position of the arc insertion that first
/// connected `a` to `b`. Arcs arrive in trace order during the freezing
/// replay, so a single incremental pass computes it; afterwards a
/// reachability-at-position query is one array probe.
///
/// Rows are dense `Pos` vectors (lazily grown, [`NEVER`] = unreachable) —
/// the timed analogue of `RGraph`'s closure bit vectors, paying 32 bits per
/// pair instead of one to carry the connection position.
#[derive(Debug, Clone, Default)]
struct TimedClosure {
    /// `earliest[b][a]` = earliest position with a non-empty path `a → b`.
    /// Stored pred-side so the dominant arc shape (into a freshly created
    /// node) stamps one contiguous row instead of scattering across rows.
    earliest_pred: Vec<Vec<Pos>>,
    /// `pred[b]` / `succ[a]`: the closure as dup-free adjacency lists — each
    /// pair is pushed exactly once, when it is first stamped, so ancestor /
    /// descendant enumeration is proportional to the sets' actual sizes.
    pred_list: Vec<Vec<u32>>,
    succ_list: Vec<Vec<u32>>,
    entries: usize,
    /// False when the closure was imported from raw rows without its
    /// adjacency lists. Queries never need the lists, so a warm index load
    /// skips the O(entries) rebuild; [`TimedClosure::ensure_lists`] builds
    /// them on demand before the first post-import [`TimedClosure::add_arc`].
    lists_stale: bool,
}

impl TimedClosure {
    fn add_node(&mut self) -> u32 {
        let id = self.earliest_pred.len() as u32;
        self.earliest_pred.push(Vec::new());
        self.pred_list.push(Vec::new());
        self.succ_list.push(Vec::new());
        id
    }

    #[inline]
    fn earliest(&self, from: u32, to: u32) -> Pos {
        self.earliest_pred[to as usize]
            .get(from as usize)
            .copied()
            .unwrap_or(NEVER)
    }

    /// Rebuilds the adjacency lists (and entry count) from the closure rows
    /// after a raw import. O(nodes² ) scan, done once, only when the frozen
    /// state is actually extended.
    fn ensure_lists(&mut self) {
        if !self.lists_stale {
            return;
        }
        let nodes = self.earliest_pred.len();
        let mut pred_counts = vec![0u32; nodes];
        let mut succ_counts = vec![0u32; nodes];
        let mut entries = 0usize;
        for (d, row) in self.earliest_pred.iter().enumerate() {
            for (a, &p) in row.iter().enumerate() {
                if p != NEVER {
                    pred_counts[d] += 1;
                    succ_counts[a] += 1;
                    entries += 1;
                }
            }
        }
        self.pred_list = pred_counts
            .iter()
            .map(|&n| Vec::with_capacity(n as usize))
            .collect();
        self.succ_list = succ_counts
            .iter()
            .map(|&n| Vec::with_capacity(n as usize))
            .collect();
        for (d, row) in self.earliest_pred.iter().enumerate() {
            for (a, &p) in row.iter().enumerate() {
                if p != NEVER {
                    debug_assert_ne!(a, d, "closure rows must not contain self-loops");
                    self.pred_list[d].push(a as u32);
                    self.succ_list[a].push(d as u32);
                }
            }
        }
        self.entries = entries;
        self.lists_stale = false;
    }

    fn add_arc(&mut self, from: u32, to: u32, pos: Pos, assist: Option<&FreezeAssist<'_>>) {
        debug_assert!(!self.lists_stale, "ensure_lists must run before add_arc");
        debug_assert_ne!(from, to, "R is acyclic");
        if self.earliest(from, to) != NEVER {
            return; // already implied: no new connections
        }
        let mut ancestors = std::mem::take(&mut self.pred_list[from as usize]);
        ancestors.push(from);
        // Almost every arc points at a freshly created node (`to` has no
        // successors yet), so the descendant set is usually just `to`.
        let mut descendants = std::mem::take(&mut self.succ_list[to as usize]);
        descendants.push(to);
        let row_len = ancestors.iter().max().copied().expect("contains `from`") as usize + 1;
        let work = ancestors.len() * descendants.len();
        if assist.is_some_and(|a| a.should_assist(work)) {
            // Large batch with an assist attached: publish the stamping as a
            // batch stage — workers pull row ranges from the shared chunk
            // index and stamp concurrently; the coordinator then applies the
            // order-sensitive bookkeeping in exactly sequential order.
            self.stamp_assisted(
                &ancestors,
                &descendants,
                row_len,
                pos,
                assist.expect("checked"),
            );
        } else {
            for &d in &descendants {
                let row = &mut self.earliest_pred[d as usize];
                if row.len() < row_len {
                    row.resize(row_len, NEVER);
                }
                for &a in &ancestors {
                    debug_assert_ne!(a, d, "arc {from}->{to} would create a cycle in R");
                    if row[a as usize] == NEVER {
                        row[a as usize] = pos;
                        self.entries += 1;
                        self.pred_list[d as usize].push(a);
                        self.succ_list[a as usize].push(d);
                    }
                }
            }
        }
        // Put the borrowed lists back (dropping the appended self entries).
        ancestors.pop();
        descendants.pop();
        // The loops above may have pushed new entries while the lists were
        // taken; merge rather than overwrite.
        let from_new = std::mem::replace(&mut self.pred_list[from as usize], ancestors);
        self.pred_list[from as usize].extend(from_new);
        let to_new = std::mem::replace(&mut self.succ_list[to as usize], descendants);
        self.succ_list[to as usize].extend(to_new);
    }

    /// The work-assisted form of the stamping loops in
    /// [`add_arc`](TimedClosure::add_arc). Two batch shapes:
    ///
    /// * **several descendants** — closure rows are disjoint per descendant,
    ///   so each row is one work unit: the puller that claims it resizes and
    ///   stamps the whole row ([`stamp_closure_row`], the standalone batch
    ///   stage);
    /// * **one descendant** (the dominant arc shape: into a freshly created
    ///   node) — the single row is split into contiguous cell ranges, each
    ///   range a work unit, with the ancestors pre-bucketed by range.
    ///
    /// Workers only write `pos` into `NEVER` cells inside their claimed unit
    /// — the same values the sequential loop writes, in any order. Everything
    /// order-sensitive (entry count, adjacency pushes) is applied here by
    /// the coordinator afterwards, iterating descendants and ancestors in
    /// the exact sequential order, which is what keeps the frozen index
    /// byte-identical at every worker count.
    fn stamp_assisted(
        &mut self,
        ancestors: &[u32],
        descendants: &[u32],
        row_len: usize,
        pos: Pos,
        assist: &FreezeAssist<'_>,
    ) {
        use std::sync::Mutex;
        if let [d] = *descendants {
            // One descendant: split its row into cell-range units.
            let mut row = std::mem::take(&mut self.earliest_pred[d as usize]);
            if row.len() < row_len {
                row.resize(row_len, NEVER);
            }
            let n_units = assist.unit_count(ancestors.len(), row_len);
            let chunk_len = row_len.div_ceil(n_units).max(1);
            let mut buckets: Vec<Vec<(u32, u32)>> = vec![Vec::new(); row_len.div_ceil(chunk_len)];
            for (ord, &a) in ancestors.iter().enumerate() {
                buckets[a as usize / chunk_len].push((ord as u32, a));
            }
            struct CellUnit<'r> {
                cells: &'r mut [Pos],
                base: u32,
                /// `(ordinal in `ancestors`, ancestor id)` per target cell.
                targets: Vec<(u32, u32)>,
                fresh: Vec<u32>,
            }
            let units: Vec<Mutex<CellUnit<'_>>> = row
                .chunks_mut(chunk_len)
                .zip(buckets)
                .enumerate()
                .map(|(i, (cells, targets))| {
                    Mutex::new(CellUnit {
                        cells,
                        base: (i * chunk_len) as u32,
                        targets,
                        fresh: Vec::new(),
                    })
                })
                .collect();
            assist.dispatch(units.len(), &|u| {
                // Uncontended by the claim protocol: every unit index is
                // claimed exactly once across all pullers.
                let mut unit = units[u].lock().expect("no panics while stamping");
                let CellUnit {
                    cells,
                    base,
                    targets,
                    fresh,
                } = &mut *unit;
                for &(ord, a) in targets.iter() {
                    let cell = &mut cells[(a - *base) as usize];
                    if *cell == NEVER {
                        *cell = pos;
                        fresh.push(ord);
                    }
                }
            });
            let mut fresh_mask = vec![false; ancestors.len()];
            for unit in units {
                let unit = unit.into_inner().expect("no panics while stamping");
                for &ord in &unit.fresh {
                    fresh_mask[ord as usize] = true;
                }
            }
            self.earliest_pred[d as usize] = row;
            for (ord, &a) in ancestors.iter().enumerate() {
                if fresh_mask[ord] {
                    debug_assert_ne!(a, d, "arc into {d} would create a cycle in R");
                    self.entries += 1;
                    self.pred_list[d as usize].push(a);
                    self.succ_list[a as usize].push(d);
                }
            }
        } else {
            // Several descendants: each disjoint closure row is one unit.
            struct RowUnit {
                d: u32,
                row: Vec<Pos>,
                /// Newly stamped ancestors, in `ancestors` order.
                fresh: Vec<u32>,
            }
            let units: Vec<Mutex<RowUnit>> = descendants
                .iter()
                .map(|&d| {
                    Mutex::new(RowUnit {
                        d,
                        row: std::mem::take(&mut self.earliest_pred[d as usize]),
                        fresh: Vec::new(),
                    })
                })
                .collect();
            assist.dispatch(units.len(), &|u| {
                let mut unit = units[u].lock().expect("no panics while stamping");
                if unit.row.len() < row_len {
                    unit.row.resize(row_len, NEVER);
                }
                debug_assert!(!ancestors.contains(&unit.d), "cycle in R");
                let RowUnit { row, fresh, .. } = &mut *unit;
                *fresh = super::assist::stamp_closure_row(row, ancestors, pos);
            });
            for unit in units {
                let RowUnit { d, row, fresh } = unit.into_inner().expect("no panics");
                self.earliest_pred[d as usize] = row;
                for &a in &fresh {
                    self.entries += 1;
                    self.pred_list[d as usize].push(a);
                    self.succ_list[a as usize].push(d);
                }
            }
        }
    }

    /// True iff a non-empty path `from → to` existed before position `pos`.
    fn reaches_at(&self, from: u32, to: u32, pos: Pos) -> bool {
        self.earliest(from, to) < pos
    }

    fn num_nodes(&self) -> usize {
        self.earliest_pred.len()
    }

    fn closure_entries(&self) -> usize {
        if self.lists_stale {
            // Imported without lists: count on demand (stats path only).
            return self
                .earliest_pred
                .iter()
                .map(|row| row.iter().filter(|&&p| p != NEVER).count())
                .sum();
        }
        self.entries
    }
}

/// The frozen `DNSP` + `R` of a MultiBags+ run.
#[derive(Debug, Clone, Default)]
pub struct FrozenNsp {
    set_of_strand: Vec<u32>,
    sets: Vec<NspSet>,
    r: TimedClosure,
}

impl FrozenNsp {
    /// The set holding `strand` just before the event at `pos`.
    fn set_at(&self, strand: StrandId, pos: Pos) -> &NspSet {
        let mut set = self.set_of_strand[strand.index()];
        debug_assert_ne!(set, NO_SET, "strand {strand} not registered in DNSP");
        loop {
            let s = &self.sets[set as usize];
            match s.merged {
                Some((p, target)) if p < pos => set = target,
                _ => return s,
            }
        }
    }

    /// The `R` node of `strand`'s set if it was attached at `pos`.
    fn attached_node_at(set: &NspSet, pos: Pos) -> Option<u32> {
        match set.birth {
            NspBirth::Attached { rnode } => Some(rnode),
            NspBirth::Unattached { .. } => match set.attached {
                Some((p, rnode)) if p < pos => Some(rnode),
                _ => None,
            },
        }
    }

    /// The attached-predecessor proxy (query destination side, Figure 3).
    fn att_pred_proxy_at(&self, strand: StrandId, pos: Pos) -> u32 {
        let set = self.set_at(strand, pos);
        Self::pred_of_set(set, pos)
    }

    /// The attached-successor proxy (query source side), if assigned yet.
    fn att_succ_proxy_at(&self, strand: StrandId, pos: Pos) -> Option<u32> {
        let set = self.set_at(strand, pos);
        Self::succ_of_set(set, pos)
    }

    fn pred_of_set(set: &NspSet, pos: Pos) -> u32 {
        Self::attached_node_at(set, pos).unwrap_or(match set.birth {
            NspBirth::Unattached { att_pred } => att_pred,
            NspBirth::Attached { rnode } => rnode,
        })
    }

    fn succ_of_set(set: &NspSet, pos: Pos) -> Option<u32> {
        if let Some(rnode) = Self::attached_node_at(set, pos) {
            return Some(rnode);
        }
        set.att_succ
            .iter()
            .rev()
            .find(|&&(p, _)| p < pos)
            .map(|&(_, rnode)| rnode)
    }

    /// Cursor-cached variants of the proxy lookups (monotone `pos` only).
    fn att_pred_proxy_at_cached(
        &self,
        cursor: &mut Vec<Cursor>,
        strand: StrandId,
        pos: Pos,
    ) -> u32 {
        let idx = resolve_cached(
            &self.sets,
            |s| s.merged,
            cursor,
            self.set_of_strand[strand.index()],
            strand,
            pos,
        );
        Self::pred_of_set(&self.sets[idx as usize], pos)
    }

    fn att_succ_proxy_at_cached(
        &self,
        cursor: &mut Vec<Cursor>,
        strand: StrandId,
        pos: Pos,
    ) -> Option<u32> {
        let idx = resolve_cached(
            &self.sets,
            |s| s.merged,
            cursor,
            self.set_of_strand[strand.index()],
            strand,
            pos,
        );
        Self::succ_of_set(&self.sets[idx as usize], pos)
    }

    /// Number of attached sets (`R` nodes) in the frozen index.
    pub fn num_attached_sets(&self) -> usize {
        self.r.num_nodes()
    }
}

/// Mirrors the MultiBags+ `DNSP`/`R` update rules (Figure 4) while recording
/// their timeline.
#[derive(Debug, Clone, Default)]
struct NspBuilder {
    frozen: FrozenNsp,
    /// Live root of each set chain (path halving), as in [`BagsBuilder`].
    live: Vec<u32>,
}

impl NspBuilder {
    fn live_root(&mut self, mut set: u32) -> u32 {
        while self.live[set as usize] != set {
            let parent = self.live[set as usize];
            let grandparent = self.live[parent as usize];
            self.live[set as usize] = grandparent;
            set = grandparent;
        }
        set
    }

    fn set_of(&mut self, strand: StrandId) -> u32 {
        let birth = self.frozen.set_of_strand[strand.index()];
        debug_assert_ne!(birth, NO_SET, "strand {strand} not registered in DNSP");
        self.live_root(birth)
    }

    fn register(&mut self, strand: StrandId, set: u32) {
        if self.frozen.set_of_strand.len() <= strand.index() {
            self.frozen.set_of_strand.resize(strand.index() + 1, NO_SET);
        }
        debug_assert_eq!(
            self.frozen.set_of_strand[strand.index()],
            NO_SET,
            "strand {strand} registered twice in DNSP"
        );
        self.frozen.set_of_strand[strand.index()] = set;
    }

    fn new_set(&mut self, birth: NspBirth) -> u32 {
        let id = self.frozen.sets.len() as u32;
        self.frozen.sets.push(NspSet {
            birth,
            attached: None,
            att_succ: Vec::new(),
            merged: None,
        });
        self.live.push(id);
        id
    }

    fn make_attached(&mut self, strand: StrandId) -> u32 {
        let rnode = self.frozen.r.add_node();
        let set = self.new_set(NspBirth::Attached { rnode });
        self.register(strand, set);
        rnode
    }

    fn make_unattached(&mut self, strand: StrandId, att_pred: u32) {
        let set = self.new_set(NspBirth::Unattached { att_pred });
        self.register(strand, set);
    }

    fn is_attached(&mut self, strand: StrandId, pos: Pos) -> bool {
        let root = self.set_of(strand);
        FrozenNsp::attached_node_at(&self.frozen.sets[root as usize], pos + 1).is_some()
    }

    /// Live attached-predecessor proxy (during the freezing replay every
    /// lookup is "as of now", i.e. after all updates so far).
    fn att_pred_proxy(&mut self, strand: StrandId, pos: Pos) -> u32 {
        let root = self.set_of(strand);
        let set = &self.frozen.sets[root as usize];
        FrozenNsp::attached_node_at(set, pos + 1).unwrap_or(match set.birth {
            NspBirth::Unattached { att_pred } => att_pred,
            NspBirth::Attached { rnode } => rnode,
        })
    }

    /// `Attachify(u)` (Figure 4, lines 18–22).
    fn attachify(&mut self, strand: StrandId, pos: Pos, assist: Option<&FreezeAssist<'_>>) -> u32 {
        let root = self.set_of(strand);
        let set = &self.frozen.sets[root as usize];
        if let Some(rnode) = FrozenNsp::attached_node_at(set, pos + 1) {
            return rnode;
        }
        let NspBirth::Unattached { att_pred } = set.birth else {
            unreachable!("attached births always resolve above")
        };
        let rnode = self.frozen.r.add_node();
        self.frozen.r.add_arc(att_pred, rnode, pos, assist);
        self.frozen.sets[root as usize].attached = Some((pos, rnode));
        rnode
    }

    fn union_into(&mut self, winner: StrandId, victim: StrandId, pos: Pos) {
        let w = self.set_of(winner);
        let v = self.set_of(victim);
        if w == v {
            return;
        }
        self.frozen.sets[v as usize].merged = Some((pos, w));
        self.live[v as usize] = w;
    }

    /// Registers join strand `j` directly into the set containing `host`.
    fn make_strand_in_set_of(&mut self, j: StrandId, host: StrandId) {
        let root = self.set_of(host);
        self.register(j, root);
    }
}

// ---------------------------------------------------------------------------
// The public frozen index
// ---------------------------------------------------------------------------

/// The frozen reachability index: an immutable, `Sync` structure answering
/// "did strand `u` sequentially precede strand `v` at trace position `pos`?"
/// with exactly the answer the live algorithm gave during sequential replay.
///
/// Built by [`ReachIndex::freeze`] (pass 1 of the parallel engine) and then
/// shared read-only by every detection worker of pass 2. Only the paper's
/// two algorithms can be frozen — MultiBags (final bag timelines) and
/// MultiBags+ (bag timelines + `DNSP` set timelines + the attached-bag
/// closure); SP-Bags and the graph oracle have no frozen form and
/// [`par_replay_detect`](crate::parallel::par_replay_detect) falls back to
/// sequential replay for them.
#[derive(Debug)]
pub struct ReachIndex {
    algorithm: ReplayAlgorithm,
    inner: IndexInner,
}

#[derive(Debug)]
enum IndexInner {
    MultiBags(FrozenBags),
    MultiBagsPlus { dsp: FrozenBags, nsp: FrozenNsp },
}

/// Worker-private memo for [`ReachIndex::precedes_at_cached`]: per-strand
/// merge-chain positions for the bag forest (and, for MultiBags+, the
/// `DNSP` forest). See [`ReachIndex::cursor`].
#[derive(Debug)]
pub struct IndexCursor {
    bags: Vec<Cursor>,
    nsp: Vec<Cursor>,
    #[allow(dead_code)] // written only under debug_assertions
    last_pos: Pos,
}

impl ReachIndex {
    /// Replays `trace` once through the reachability algorithm only (no
    /// shadow memory) and freezes the result. Validates the trace first.
    ///
    /// Returns `None` for algorithms without a frozen form (SP-Bags and the
    /// graph oracle).
    pub fn freeze(
        trace: &Trace,
        algorithm: ReplayAlgorithm,
    ) -> Result<Option<ReachIndex>, futurerd_dag::trace::TraceError> {
        trace.validate()?;
        Ok(freeze_with_accesses(trace, algorithm).map(|(index, _)| index))
    }

    /// As [`freeze`](ReachIndex::freeze), with the closure stamping loops
    /// run through a work assist. The index is byte-identical to the
    /// sequential freeze at every worker count (the freeze-determinism
    /// property suite pins this over the whole fuzz shape corpus).
    pub fn freeze_assisted(
        trace: &Trace,
        algorithm: ReplayAlgorithm,
        assist: &FreezeAssist<'_>,
    ) -> Result<Option<ReachIndex>, futurerd_dag::trace::TraceError> {
        trace.validate()?;
        Ok(freeze_with_accesses_assisted(trace, algorithm, Some(assist)).map(|(index, _)| index))
    }

    /// The algorithm this index was frozen from.
    pub fn algorithm(&self) -> ReplayAlgorithm {
        self.algorithm
    }

    /// True iff `u` preceded `v` at trace position `pos` according to the
    /// frozen algorithm — the exact answer `precedes_current(u)` gave when
    /// the event at `pos` (an access by `v`) was replayed sequentially.
    pub fn precedes_at(&self, u: StrandId, v: StrandId, pos: u32) -> bool {
        match &self.inner {
            // MultiBags answers from the bag tag alone (Figure 1): the
            // current strand is not consulted.
            IndexInner::MultiBags(bags) => bags.in_s_bag_at(u, pos),
            IndexInner::MultiBagsPlus { dsp, nsp } => {
                if u == v {
                    return true;
                }
                // Figure 3: SP bags first, then the proxies against R.
                if dsp.in_s_bag_at(u, pos) {
                    return true;
                }
                let sv = nsp.att_pred_proxy_at(v, pos);
                let Some(su) = nsp.att_succ_proxy_at(u, pos) else {
                    return false;
                };
                nsp.r.reaches_at(su, sv, pos)
            }
        }
    }

    /// Creates a fresh query cursor for this index. A cursor memoizes the
    /// per-strand merge-chain walks, making queries amortized O(1) — but it
    /// requires the positions passed to
    /// [`precedes_at_cached`](ReachIndex::precedes_at_cached) to be
    /// non-decreasing over the cursor's lifetime (detection workers scan
    /// their shard in trace order, which guarantees it).
    pub fn cursor(&self) -> IndexCursor {
        IndexCursor {
            bags: Vec::new(),
            nsp: Vec::new(),
            last_pos: 0,
        }
    }

    /// As [`precedes_at`](ReachIndex::precedes_at), with the chain walks
    /// resumed from `cursor`. Positions must be non-decreasing per cursor.
    pub fn precedes_at_cached(
        &self,
        cursor: &mut IndexCursor,
        u: StrandId,
        v: StrandId,
        pos: u32,
    ) -> bool {
        debug_assert!(
            pos >= cursor.last_pos,
            "cursor positions must not go backwards"
        );
        #[cfg(debug_assertions)]
        {
            cursor.last_pos = pos;
        }
        match &self.inner {
            IndexInner::MultiBags(bags) => bags.in_s_bag_at_cached(&mut cursor.bags, u, pos),
            IndexInner::MultiBagsPlus { dsp, nsp } => {
                if u == v {
                    return true;
                }
                if dsp.in_s_bag_at_cached(&mut cursor.bags, u, pos) {
                    return true;
                }
                let sv = nsp.att_pred_proxy_at_cached(&mut cursor.nsp, v, pos);
                let Some(su) = nsp.att_succ_proxy_at_cached(&mut cursor.nsp, u, pos) else {
                    return false;
                };
                nsp.r.reaches_at(su, sv, pos)
            }
        }
    }

    /// Number of attached sets (`R` nodes) in the frozen index (0 for
    /// MultiBags).
    pub fn num_attached_sets(&self) -> usize {
        match &self.inner {
            IndexInner::MultiBags(_) => 0,
            IndexInner::MultiBagsPlus { nsp, .. } => nsp.num_attached_sets(),
        }
    }

    /// Number of entries in the frozen attached-bag closure (0 for
    /// MultiBags).
    pub fn closure_entries(&self) -> usize {
        match &self.inner {
            IndexInner::MultiBags(_) => 0,
            IndexInner::MultiBagsPlus { nsp, .. } => nsp.r.closure_entries(),
        }
    }
}

// ---------------------------------------------------------------------------
// The freezing replay observer
// ---------------------------------------------------------------------------

/// One granule-level access extracted during the freezing replay: pass 2
/// shards these by granule range, so workers touch only their own slice.
/// Public so that a persisted index (`futurerd-store`'s `FRDIDX` sidecars)
/// can carry the access stream next to the frozen timelines.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GranuleAccess {
    /// The granule index ([`MemAddr::granule`]).
    pub granule: u64,
    /// Trace position of the access event.
    pub pos: Pos,
    /// The accessing strand.
    pub strand: StrandId,
    /// True for writes.
    pub is_write: bool,
}

/// The pass-1 observer: drives the timeline builders and extracts the
/// granule-level access stream in the same single replay.
#[derive(Debug, Clone)]
struct Freezer {
    pos: Pos,
    bags: BagsBuilder,
    nsp: Option<NspBuilder>,
    accesses: Vec<GranuleAccess>,
}

impl Freezer {
    fn new(algorithm: ReplayAlgorithm) -> Option<Self> {
        let (union_on_get, nsp) = match algorithm {
            ReplayAlgorithm::MultiBags => (true, None),
            ReplayAlgorithm::MultiBagsPlus => (false, Some(NspBuilder::default())),
            _ => return None,
        };
        Some(Self {
            pos: 0,
            bags: BagsBuilder::new(union_on_get),
            nsp,
            accesses: Vec::new(),
        })
    }

    fn push_access(&mut self, strand: StrandId, addr: MemAddr, size: usize, is_write: bool) {
        let pos = self.pos;
        for granule in addr.granules(size) {
            self.accesses.push(GranuleAccess {
                granule,
                pos,
                strand,
                is_write,
            });
        }
    }

    // The three handlers below take the closure-stamping arcs; they are the
    // only ones that consult the (optional) work assist. The plain
    // [`Observer`] impl passes `None` (pure sequential), and
    // [`AssistedFreezer`] passes its attached assist — both drive the same
    // update rules, so the frozen state is byte-identical by construction.

    fn handle_create_future(&mut self, ev: &CreateFutureEvent, assist: Option<&FreezeAssist<'_>>) {
        if let Some(nsp) = &mut self.nsp {
            // Figure 4, lines 8–12.
            let pos = self.pos;
            let ru = nsp.attachify(ev.creator_strand, pos, assist);
            let rv = nsp.make_attached(ev.cont_strand);
            nsp.frozen.r.add_arc(ru, rv, pos, assist);
            let rw = nsp.make_attached(ev.child_first_strand);
            nsp.frozen.r.add_arc(ru, rw, pos, assist);
        }
        self.pos += 1;
    }

    fn handle_sync(&mut self, ev: &SyncEvent, assist: Option<&FreezeAssist<'_>>) {
        let pos = self.pos;
        self.bags.sync(ev, pos);
        if let Some(nsp) = &mut self.nsp {
            // Figure 4, lines 24–46.
            let f = ev.fork.pre_fork_strand;
            let s1 = ev.fork.child_first_strand;
            let s2 = ev.fork.cont_strand;
            let j = ev.join_strand;
            let t1 = ev.child_last_strand;
            let t2 = ev.pre_join_strand;

            let t1_attached = nsp.is_attached(t1, pos);
            let t2_attached = nsp.is_attached(t2, pos);

            if !t1_attached && !t2_attached {
                nsp.union_into(f, t1, pos);
                nsp.union_into(f, t2, pos);
                nsp.make_strand_in_set_of(j, f);
            } else if t1_attached && t2_attached {
                let rf = nsp.attachify(f, pos, assist);
                let rs1 = nsp.attachify(s1, pos, assist);
                let rs2 = nsp.attachify(s2, pos, assist);
                nsp.frozen.r.add_arc(rf, rs1, pos, assist);
                nsp.frozen.r.add_arc(rf, rs2, pos, assist);
                let rj = nsp.make_attached(j);
                let rt1 = nsp.attachify(t1, pos, assist);
                let rt2 = nsp.attachify(t2, pos, assist);
                nsp.frozen.r.add_arc(rt1, rj, pos, assist);
                nsp.frozen.r.add_arc(rt2, rj, pos, assist);
            } else {
                let (ta, tu, sa) = if t1_attached {
                    (t1, t2, s1)
                } else {
                    (t2, t1, s2)
                };
                if !nsp.is_attached(f, pos) {
                    nsp.union_into(sa, f, pos);
                }
                nsp.make_strand_in_set_of(j, ta);
                let rj = nsp.attachify(j, pos, assist);
                let tu_root = nsp.set_of(tu);
                let tu_set = &mut nsp.frozen.sets[tu_root as usize];
                if FrozenNsp::attached_node_at(tu_set, pos + 1).is_none() {
                    tu_set.att_succ.push((pos, rj));
                }
            }
        }
        self.pos += 1;
    }

    fn handle_get_future(&mut self, ev: &GetFutureEvent, assist: Option<&FreezeAssist<'_>>) {
        let pos = self.pos;
        self.bags.get_future(ev, pos);
        if let Some(nsp) = &mut self.nsp {
            // Figure 4, lines 14–17.
            let ru = nsp.attachify(ev.pre_get_strand, pos, assist);
            let rv = nsp.make_attached(ev.getter_strand);
            nsp.frozen.r.add_arc(ru, rv, pos, assist);
            let rw = nsp.attachify(ev.future_last_strand, pos, assist);
            nsp.frozen.r.add_arc(rw, rv, pos, assist);
        }
        self.pos += 1;
    }
}

impl Observer for Freezer {
    fn on_program_start(&mut self, _root: FunctionId, first: StrandId) {
        if let Some(nsp) = &mut self.nsp {
            // Figure 4, line 1: the first strand is attached, no predecessor.
            nsp.make_attached(first);
        }
        self.pos += 1;
    }

    fn on_strand_start(&mut self, strand: StrandId, function: FunctionId) {
        self.bags.strand_start(strand, function);
        self.pos += 1;
    }

    fn on_spawn(&mut self, ev: &SpawnEvent) {
        if let Some(nsp) = &mut self.nsp {
            // Figure 4, lines 3–6.
            let pred = nsp.att_pred_proxy(ev.fork_strand, self.pos);
            nsp.make_unattached(ev.cont_strand, pred);
            nsp.make_unattached(ev.child_first_strand, pred);
        }
        self.pos += 1;
    }

    fn on_create_future(&mut self, ev: &CreateFutureEvent) {
        self.handle_create_future(ev, None);
    }

    fn on_return(&mut self, function: FunctionId, _last: StrandId) {
        self.bags.function_return(function, self.pos);
        self.pos += 1;
    }

    fn on_sync(&mut self, ev: &SyncEvent) {
        self.handle_sync(ev, None);
    }

    fn on_get_future(&mut self, ev: &GetFutureEvent) {
        self.handle_get_future(ev, None);
    }

    fn on_read(&mut self, strand: StrandId, addr: MemAddr, size: usize) {
        self.push_access(strand, addr, size, false);
        self.pos += 1;
    }

    fn on_write(&mut self, strand: StrandId, addr: MemAddr, size: usize) {
        self.push_access(strand, addr, size, true);
        self.pos += 1;
    }

    fn on_program_end(&mut self, _last: StrandId) {
        self.pos += 1;
    }
}

/// A [`Freezer`] with a [`FreezeAssist`] attached: the same replay observer,
/// except the three closure-stamping handlers run their hot loops through
/// the work-assisted batch stage. Borrowing the freezer (rather than storing
/// the assist inside it) keeps [`IncrementalFreezer`] free of executor
/// lifetimes — an assist is attached per `extend` call.
struct AssistedFreezer<'f, 'e> {
    freezer: &'f mut Freezer,
    assist: &'e FreezeAssist<'e>,
}

impl Observer for AssistedFreezer<'_, '_> {
    fn on_program_start(&mut self, root: FunctionId, first: StrandId) {
        self.freezer.on_program_start(root, first);
    }

    fn on_strand_start(&mut self, strand: StrandId, function: FunctionId) {
        self.freezer.on_strand_start(strand, function);
    }

    fn on_spawn(&mut self, ev: &SpawnEvent) {
        self.freezer.on_spawn(ev);
    }

    fn on_create_future(&mut self, ev: &CreateFutureEvent) {
        self.freezer.handle_create_future(ev, Some(self.assist));
    }

    fn on_return(&mut self, function: FunctionId, last: StrandId) {
        self.freezer.on_return(function, last);
    }

    fn on_sync(&mut self, ev: &SyncEvent) {
        self.freezer.handle_sync(ev, Some(self.assist));
    }

    fn on_get_future(&mut self, ev: &GetFutureEvent) {
        self.freezer.handle_get_future(ev, Some(self.assist));
    }

    fn on_read(&mut self, strand: StrandId, addr: MemAddr, size: usize) {
        self.freezer.on_read(strand, addr, size);
    }

    fn on_write(&mut self, strand: StrandId, addr: MemAddr, size: usize) {
        self.freezer.on_write(strand, addr, size);
    }

    fn on_program_end(&mut self, last: StrandId) {
        self.freezer.on_program_end(last);
    }
}

/// Pass 1: one replay, producing the frozen index and the granule-level
/// access stream. The trace must already be validated. Returns `None` for
/// algorithms without a frozen form.
pub(crate) fn freeze_with_accesses(
    trace: &Trace,
    algorithm: ReplayAlgorithm,
) -> Option<(ReachIndex, Vec<GranuleAccess>)> {
    freeze_with_accesses_assisted(trace, algorithm, None)
}

/// As [`freeze_with_accesses`], with an optional work assist: the replay
/// itself stays task-ordered on the calling thread, but large closure
/// stamping batches run through the assist's executor.
pub(crate) fn freeze_with_accesses_assisted(
    trace: &Trace,
    algorithm: ReplayAlgorithm,
    assist: Option<&FreezeAssist<'_>>,
) -> Option<(ReachIndex, Vec<GranuleAccess>)> {
    assert!(
        trace.len() < u32::MAX as usize,
        "trace positions are 32-bit; {}-event trace is too large",
        trace.len()
    );
    let mut freezer = Freezer::new(algorithm)?;
    match assist {
        None => futurerd_dag::trace::replay_events(trace.events(), &mut freezer),
        Some(assist) => futurerd_dag::trace::replay_events(
            trace.events(),
            &mut AssistedFreezer {
                freezer: &mut freezer,
                assist,
            },
        ),
    }
    let inner = match freezer.nsp {
        None => IndexInner::MultiBags(freezer.bags.frozen),
        Some(nsp) => IndexInner::MultiBagsPlus {
            dsp: freezer.bags.frozen,
            nsp: nsp.frozen,
        },
    };
    Some((ReachIndex { algorithm, inner }, freezer.accesses))
}

// ---------------------------------------------------------------------------
// Incremental (resumable) freezing + raw introspection
// ---------------------------------------------------------------------------

/// Sentinel for "absent" in the raw (serialization) view of a frozen index.
/// Safe because trace positions, set ids and strand ids are all bounded by
/// the trace length, which the freezing entry points cap below `u32::MAX`.
pub const RAW_NONE: u32 = u32::MAX;

/// A resumable pass-1 freezer: feed it a canonical event stream in chunks
/// and snapshot a [`ReachIndex`] (plus the granule access stream) at any cut
/// point.
///
/// The frozen timelines are append-only — processing the events `[k, n)`
/// touches only the timelines those events update, and every already-frozen
/// answer at positions `< k` is unchanged (merge/relabel edges added later
/// carry positions `≥ k`, and every timeline comparison is strict). This is
/// what makes **incremental re-detection** sound: after appending events to
/// a stored trace, `futurerd-store` extends the freezer with just the
/// suffix instead of refreezing the whole trace, and only re-runs detection
/// partitions whose granules the suffix touched.
///
/// The complete freezer state (frozen timelines *and* the live resume state:
/// disjoint-set shortcuts, per-function first strands) converts to and from
/// the plain-data [`RawFreeze`] for persistence.
#[derive(Debug, Clone)]
pub struct IncrementalFreezer {
    algorithm: ReplayAlgorithm,
    freezer: Freezer,
}

impl IncrementalFreezer {
    /// Creates an empty freezer for `algorithm`. Returns `None` for
    /// algorithms without a frozen form (SP-Bags and the graph oracle).
    pub fn new(algorithm: ReplayAlgorithm) -> Option<Self> {
        Some(Self {
            algorithm,
            freezer: Freezer::new(algorithm)?,
        })
    }

    /// The algorithm being frozen.
    pub fn algorithm(&self) -> ReplayAlgorithm {
        self.algorithm
    }

    /// Number of events frozen so far — the next call to
    /// [`extend`](IncrementalFreezer::extend) must continue from this trace
    /// position.
    pub fn position(&self) -> u32 {
        self.freezer.pos
    }

    /// Feeds the next chunk of the canonical event stream. The caller is
    /// responsible for validating the full stream (e.g. with
    /// `Trace::validate_prefix`) and for passing events in order without
    /// gaps.
    pub fn extend(&mut self, events: &[futurerd_dag::trace::TraceEvent]) {
        if self.prepare_extend(events) {
            let _span = futurerd_obs::Span::enter(futurerd_obs::names::FREEZE);
            futurerd_dag::trace::replay_events(events, &mut self.freezer);
        }
    }

    /// As [`extend`](IncrementalFreezer::extend), with large closure
    /// stamping batches run through the given work assist. The frozen state
    /// after the call is byte-identical to what `extend` would have
    /// produced, at every worker count — the assist only changes *where*
    /// the stamping loops run, never what they write.
    ///
    /// The assist is borrowed per call (not stored), so a session can keep
    /// one resident freezer and attach whatever pool its next report is
    /// running on.
    pub fn extend_assisted(
        &mut self,
        events: &[futurerd_dag::trace::TraceEvent],
        assist: &FreezeAssist<'_>,
    ) {
        if self.prepare_extend(events) {
            let _span = futurerd_obs::Span::enter(futurerd_obs::names::FREEZE);
            futurerd_dag::trace::replay_events(
                events,
                &mut AssistedFreezer {
                    freezer: &mut self.freezer,
                    assist,
                },
            );
        }
    }

    /// Shared prologue of the extend paths: size check + lazy adjacency
    /// rebuild. Returns false when there is nothing to replay.
    fn prepare_extend(&mut self, events: &[futurerd_dag::trace::TraceEvent]) -> bool {
        assert!(
            self.freezer.pos as usize + events.len() < u32::MAX as usize,
            "trace positions are 32-bit; the extended stream is too large"
        );
        if events.is_empty() {
            return false;
        }
        if let Some(nsp) = &mut self.freezer.nsp {
            // A raw import defers the closure's adjacency lists (warm query
            // paths never need them); new arcs do.
            nsp.frozen.r.ensure_lists();
        }
        true
    }

    /// The granule-level access stream extracted so far, in trace order.
    pub fn accesses(&self) -> &[GranuleAccess] {
        &self.freezer.accesses
    }

    /// Snapshots the frozen timelines into a standalone [`ReachIndex`]
    /// answering queries at any position `≤` [`position`](Self::position).
    /// The freezer remains usable for further extension.
    pub fn snapshot_index(&self) -> ReachIndex {
        let inner = match &self.freezer.nsp {
            None => IndexInner::MultiBags(self.freezer.bags.frozen.clone()),
            Some(nsp) => IndexInner::MultiBagsPlus {
                dsp: self.freezer.bags.frozen.clone(),
                nsp: nsp.frozen.clone(),
            },
        };
        ReachIndex {
            algorithm: self.algorithm,
            inner,
        }
    }

    /// Exports the complete freezer state as plain data for serialization.
    pub fn to_raw(&self) -> RawFreeze {
        let bags = &self.freezer.bags;
        RawFreeze {
            algorithm: self.algorithm,
            pos: self.freezer.pos,
            bags: RawBags {
                set_of_strand: bags.frozen.set_of_strand.clone(),
                sets: bags
                    .frozen
                    .sets
                    .iter()
                    .map(|s| RawBagSet {
                        relabel: s.relabel.unwrap_or(RAW_NONE),
                        merged_pos: s.merged.map_or(RAW_NONE, |(p, _)| p),
                        merged_target: s.merged.map_or(0, |(_, t)| t),
                    })
                    .collect(),
                live: bags.live.clone(),
                first_strand: bags
                    .first_strand
                    .iter()
                    .map(|s| s.map_or(RAW_NONE, |s| s.0))
                    .collect(),
            },
            nsp: self.freezer.nsp.as_ref().map(|nsp| RawNsp {
                set_of_strand: nsp.frozen.set_of_strand.clone(),
                sets: nsp
                    .frozen
                    .sets
                    .iter()
                    .map(|s| {
                        let (birth_attached, birth_node) = match s.birth {
                            NspBirth::Attached { rnode } => (true, rnode),
                            NspBirth::Unattached { att_pred } => (false, att_pred),
                        };
                        RawNspSet {
                            birth_attached,
                            birth_node,
                            attached_pos: s.attached.map_or(RAW_NONE, |(p, _)| p),
                            attached_node: s.attached.map_or(0, |(_, n)| n),
                            att_succ: s.att_succ.clone(),
                            merged_pos: s.merged.map_or(RAW_NONE, |(p, _)| p),
                            merged_target: s.merged.map_or(0, |(_, t)| t),
                        }
                    })
                    .collect(),
                live: nsp.live.clone(),
                closure_rows: nsp.frozen.r.earliest_pred.clone(),
            }),
            accesses: self.freezer.accesses.clone(),
        }
    }

    /// Reconstructs a freezer from its raw form, validating structural
    /// integrity (index bounds, merge-chain monotonicity — which also rules
    /// out merge cycles — and algorithm/shape agreement). Corrupt input
    /// yields a typed error, never a panic or a query that loops.
    pub fn from_raw(raw: RawFreeze) -> Result<Self, RawIndexError> {
        let err = |message: &str| Err(RawIndexError(message.to_string()));
        let nsp_expected = match raw.algorithm {
            ReplayAlgorithm::MultiBags => false,
            ReplayAlgorithm::MultiBagsPlus => true,
            _ => return err("algorithm has no frozen form"),
        };
        if raw.nsp.is_some() != nsp_expected {
            return err("DNSP section does not match the algorithm");
        }

        // Bags section.
        let n_sets = raw.bags.sets.len();
        if raw.bags.live.len() != n_sets {
            return err("bag live-root table length mismatch");
        }
        let mut sets = Vec::with_capacity(n_sets);
        for (i, s) in raw.bags.sets.iter().enumerate() {
            let relabel = (s.relabel != RAW_NONE).then_some(s.relabel);
            let merged = if s.merged_pos == RAW_NONE {
                None
            } else {
                let t = s.merged_target as usize;
                if t >= n_sets || t == i {
                    return err("bag merge target out of range");
                }
                let target = &raw.bags.sets[t];
                if target.merged_pos != RAW_NONE && target.merged_pos <= s.merged_pos {
                    return err("bag merge chain positions must strictly increase");
                }
                Some((s.merged_pos, s.merged_target))
            };
            sets.push(BagSet { relabel, merged });
        }
        if raw
            .bags
            .set_of_strand
            .iter()
            .any(|&s| s != NO_SET && s as usize >= n_sets)
        {
            return err("strand bag assignment out of range");
        }
        if raw.bags.live.iter().any(|&s| s as usize >= n_sets) {
            return err("bag live root out of range");
        }
        for &fs in &raw.bags.first_strand {
            if fs != RAW_NONE
                && raw
                    .bags
                    .set_of_strand
                    .get(fs as usize)
                    .is_none_or(|&s| s == NO_SET)
            {
                return err("function first-strand has no bag assignment");
            }
        }
        let bags = BagsBuilder {
            union_on_get: !nsp_expected,
            frozen: FrozenBags {
                set_of_strand: raw.bags.set_of_strand,
                sets,
            },
            live: raw.bags.live,
            first_strand: raw
                .bags
                .first_strand
                .iter()
                .map(|&s| (s != RAW_NONE).then_some(StrandId(s)))
                .collect(),
        };

        // DNSP + closure section.
        let nsp = match raw.nsp {
            None => None,
            Some(rnsp) => {
                let n_sets = rnsp.sets.len();
                let nodes = rnsp.closure_rows.len();
                if rnsp.live.len() != n_sets {
                    return err("DNSP live-root table length mismatch");
                }
                let mut sets = Vec::with_capacity(n_sets);
                for (i, s) in rnsp.sets.iter().enumerate() {
                    if s.birth_node as usize >= nodes {
                        return err("DNSP birth node out of range");
                    }
                    let attached = if s.attached_pos == RAW_NONE {
                        None
                    } else {
                        if s.attached_node as usize >= nodes {
                            return err("DNSP attach node out of range");
                        }
                        if s.birth_attached {
                            return err("attached-born DNSP set cannot attachify");
                        }
                        Some((s.attached_pos, s.attached_node))
                    };
                    if s.att_succ.iter().any(|&(_, n)| n as usize >= nodes) {
                        return err("DNSP attSucc node out of range");
                    }
                    let merged = if s.merged_pos == RAW_NONE {
                        None
                    } else {
                        let t = s.merged_target as usize;
                        if t >= n_sets || t == i {
                            return err("DNSP merge target out of range");
                        }
                        let target = &rnsp.sets[t];
                        if target.merged_pos != RAW_NONE && target.merged_pos <= s.merged_pos {
                            return err("DNSP merge chain positions must strictly increase");
                        }
                        Some((s.merged_pos, s.merged_target))
                    };
                    sets.push(NspSet {
                        birth: if s.birth_attached {
                            NspBirth::Attached {
                                rnode: s.birth_node,
                            }
                        } else {
                            NspBirth::Unattached {
                                att_pred: s.birth_node,
                            }
                        },
                        attached,
                        att_succ: s.att_succ.clone(),
                        merged,
                    });
                }
                if rnsp
                    .set_of_strand
                    .iter()
                    .any(|&s| s != NO_SET && s as usize >= n_sets)
                {
                    return err("strand DNSP assignment out of range");
                }
                if rnsp.live.iter().any(|&s| s as usize >= n_sets) {
                    return err("DNSP live root out of range");
                }
                for (d, row) in rnsp.closure_rows.iter().enumerate() {
                    if row.len() > nodes {
                        return err("closure row longer than the node count");
                    }
                    // A diagonal entry would put a cycle into the supposedly
                    // acyclic R (and trip ensure_lists' debug assertion).
                    if row.get(d).is_some_and(|&p| p != NEVER) {
                        return err("closure row contains a self-loop");
                    }
                }
                // Adjacency lists are rebuilt lazily (ensure_lists) — a warm
                // index load pays only for what queries touch.
                let r = TimedClosure {
                    earliest_pred: rnsp.closure_rows,
                    pred_list: Vec::new(),
                    succ_list: Vec::new(),
                    entries: 0,
                    lists_stale: true,
                };
                Some(NspBuilder {
                    frozen: FrozenNsp {
                        set_of_strand: rnsp.set_of_strand,
                        sets,
                        r,
                    },
                    live: rnsp.live,
                })
            }
        };

        if raw.accesses.iter().any(|a| a.pos >= raw.pos) {
            return err("access stream position beyond the frozen position");
        }
        Ok(Self {
            algorithm: raw.algorithm,
            freezer: Freezer {
                pos: raw.pos,
                bags,
                nsp,
                accesses: raw.accesses,
            },
        })
    }
}

/// Structural-integrity failure while importing a [`RawFreeze`].
#[derive(Debug, Clone)]
pub struct RawIndexError(pub String);

impl std::fmt::Display for RawIndexError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "corrupt frozen index: {}", self.0)
    }
}

impl std::error::Error for RawIndexError {}

/// Plain-data export of an [`IncrementalFreezer`] — everything a persistent
/// store needs to rebuild the frozen index *and* resume freezing after an
/// append. Field sentinels use [`RAW_NONE`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RawFreeze {
    /// The frozen algorithm (must be freezable).
    pub algorithm: ReplayAlgorithm,
    /// Number of events frozen.
    pub pos: u32,
    /// The bag merge forest (MultiBags, or the DSP of MultiBags+).
    pub bags: RawBags,
    /// The DNSP forest + timed closure (MultiBags+ only).
    pub nsp: Option<RawNsp>,
    /// The granule-level access stream, in trace order.
    pub accesses: Vec<GranuleAccess>,
}

/// Raw form of the bag merge forest plus its live resume state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RawBags {
    /// Birth set per strand ([`RAW_NONE`] = strand not started).
    pub set_of_strand: Vec<u32>,
    /// Tag/merge timeline per set.
    pub sets: Vec<RawBagSet>,
    /// Live disjoint-set shortcut per set (resume state).
    pub live: Vec<u32>,
    /// First strand per function ([`RAW_NONE`] = function not started;
    /// resume state).
    pub first_strand: Vec<u32>,
}

/// Raw form of one bag set's timeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RawBagSet {
    /// `S → P` relabel position ([`RAW_NONE`] = still `S`).
    pub relabel: u32,
    /// Merge position ([`RAW_NONE`] = never merged).
    pub merged_pos: u32,
    /// Merge target set (meaningful only when `merged_pos` is set).
    pub merged_target: u32,
}

/// Raw form of the DNSP forest, its tag timelines, the timed closure rows
/// and the live resume state (MultiBags+ only).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RawNsp {
    /// Birth set per strand ([`RAW_NONE`] = not registered).
    pub set_of_strand: Vec<u32>,
    /// Tag/merge timeline per set.
    pub sets: Vec<RawNspSet>,
    /// Live disjoint-set shortcut per set (resume state).
    pub live: Vec<u32>,
    /// The earliest-connection closure: `closure_rows[b][a]` is the earliest
    /// position with a path `a → b` ([`RAW_NONE`] = unreachable). Adjacency
    /// lists and entry counts are rebuilt on import.
    pub closure_rows: Vec<Vec<u32>>,
}

/// Raw form of one DNSP set's timeline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RawNspSet {
    /// True if the set was born attached.
    pub birth_attached: bool,
    /// The `R` node (attached birth) or immutable attached predecessor
    /// (unattached birth).
    pub birth_node: u32,
    /// `Attachify` position ([`RAW_NONE`] = never attachified).
    pub attached_pos: u32,
    /// The `R` node created by `Attachify` (meaningful only when
    /// `attached_pos` is set).
    pub attached_node: u32,
    /// `attSucc` assignments (position, `R` node), in trace order.
    pub att_succ: Vec<(u32, u32)>,
    /// Merge position ([`RAW_NONE`] = never merged).
    pub merged_pos: u32,
    /// Merge target set (meaningful only when `merged_pos` is set).
    pub merged_target: u32,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::detector::RaceDetector;
    use crate::reachability::{MultiBags, MultiBagsPlus, Reachability};
    use futurerd_dag::trace::TraceEvent;

    /// root creates a future, continues in parallel, then gets it.
    fn future_trace() -> Trace {
        let root = FunctionId(0);
        let fut = FunctionId(1);
        let mut t = Trace::new();
        t.push(TraceEvent::ProgramStart {
            root,
            first: StrandId(0),
        });
        t.push(TraceEvent::StrandStart {
            strand: StrandId(0),
            function: root,
        });
        t.push(TraceEvent::CreateFuture(CreateFutureEvent {
            parent: root,
            child: fut,
            creator_strand: StrandId(0),
            cont_strand: StrandId(2),
            child_first_strand: StrandId(1),
        }));
        t.push(TraceEvent::StrandStart {
            strand: StrandId(1),
            function: fut,
        });
        t.push(TraceEvent::Write {
            strand: StrandId(1),
            addr: MemAddr(0x1000),
            size: 4,
        });
        t.push(TraceEvent::Return {
            function: fut,
            last: StrandId(1),
        });
        t.push(TraceEvent::StrandStart {
            strand: StrandId(2),
            function: root,
        });
        t.push(TraceEvent::Read {
            strand: StrandId(2),
            addr: MemAddr(0x1000),
            size: 4,
        });
        t.push(TraceEvent::GetFuture(GetFutureEvent {
            parent: root,
            future: fut,
            pre_get_strand: StrandId(2),
            getter_strand: StrandId(3),
            future_last_strand: StrandId(1),
            prior_touches: 0,
        }));
        t.push(TraceEvent::StrandStart {
            strand: StrandId(3),
            function: root,
        });
        t.push(TraceEvent::Read {
            strand: StrandId(3),
            addr: MemAddr(0x1000),
            size: 4,
        });
        t.push(TraceEvent::Return {
            function: root,
            last: StrandId(3),
        });
        t.push(TraceEvent::ProgramEnd { last: StrandId(3) });
        t
    }

    /// Replays `trace` through the live reachability structure, recording at
    /// every access event the answer for every started strand, and asserts
    /// the frozen index reproduces each answer.
    fn assert_frozen_matches_live<R: Reachability>(
        trace: &Trace,
        mut live: R,
        algorithm: ReplayAlgorithm,
    ) {
        let index = ReachIndex::freeze(trace, algorithm)
            .expect("valid trace")
            .expect("freezable algorithm");
        let mut started: Vec<StrandId> = Vec::new();
        for (pos, event) in trace.events().iter().enumerate() {
            if let TraceEvent::Read { strand, .. } | TraceEvent::Write { strand, .. } = event {
                for &u in &started {
                    let expected = live.precedes_current(u);
                    let got = index.precedes_at(u, *strand, pos as u32);
                    assert_eq!(
                        expected, got,
                        "{algorithm}: precedes({u}, {strand}) at {pos}"
                    );
                }
            }
            if let TraceEvent::StrandStart { strand, .. } = event {
                started.push(*strand);
            }
            let mut single = Trace::new();
            single.push(*event);
            single.replay_into(&mut live);
        }
    }

    #[test]
    fn frozen_multibags_matches_live_on_future_trace() {
        assert_frozen_matches_live(
            &future_trace(),
            MultiBags::new(),
            ReplayAlgorithm::MultiBags,
        );
    }

    #[test]
    fn frozen_multibags_plus_matches_live_on_future_trace() {
        assert_frozen_matches_live(
            &future_trace(),
            MultiBagsPlus::new(),
            ReplayAlgorithm::MultiBagsPlus,
        );
    }

    #[test]
    fn freeze_rejects_unfreezable_algorithms() {
        let trace = future_trace();
        assert!(ReachIndex::freeze(&trace, ReplayAlgorithm::GraphOracle)
            .expect("valid trace")
            .is_none());
    }

    #[test]
    fn freeze_extracts_granule_accesses() {
        let trace = future_trace();
        let (index, accesses) =
            freeze_with_accesses(&trace, ReplayAlgorithm::MultiBagsPlus).expect("freezable");
        assert_eq!(accesses.len(), 3);
        assert!(accesses.iter().all(|a| a.granule == 0x1000 / 4));
        assert_eq!(index.algorithm(), ReplayAlgorithm::MultiBagsPlus);
        assert!(index.num_attached_sets() >= 4);
        assert!(index.closure_entries() > 0);
    }

    #[test]
    fn frozen_answers_are_time_dependent() {
        // The future's strand (s1) is parallel with the continuation (s2,
        // reading at position 7) but precedes the getter (s3, reading at
        // position 10).
        let trace = future_trace();
        for algorithm in [ReplayAlgorithm::MultiBags, ReplayAlgorithm::MultiBagsPlus] {
            let index = ReachIndex::freeze(&trace, algorithm)
                .expect("valid")
                .expect("freezable");
            assert!(
                !index.precedes_at(StrandId(1), StrandId(2), 7),
                "{algorithm}"
            );
            assert!(
                index.precedes_at(StrandId(1), StrandId(3), 10),
                "{algorithm}"
            );
            assert!(
                index.precedes_at(StrandId(0), StrandId(2), 7),
                "{algorithm}"
            );
        }
    }

    #[test]
    fn frozen_index_is_shareable_across_threads() {
        let trace = future_trace();
        let index = ReachIndex::freeze(&trace, ReplayAlgorithm::MultiBagsPlus)
            .expect("valid")
            .expect("freezable");
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| assert!(index.precedes_at(StrandId(1), StrandId(3), 10)));
            }
        });
    }

    #[test]
    fn incremental_freeze_matches_full_freeze_at_every_cut() {
        let trace = future_trace();
        for algorithm in [ReplayAlgorithm::MultiBags, ReplayAlgorithm::MultiBagsPlus] {
            let (full, full_accesses) = freeze_with_accesses(&trace, algorithm).expect("freezable");
            for cut in 0..=trace.len() {
                let mut inc = IncrementalFreezer::new(algorithm).expect("freezable");
                inc.extend(&trace.events()[..cut]);
                inc.extend(&trace.events()[cut..]);
                assert_eq!(inc.position() as usize, trace.len());
                assert_eq!(inc.accesses(), &full_accesses[..], "cut {cut}");
                let snap = inc.snapshot_index();
                for &(u, v, pos) in &[(1u32, 2u32, 7u32), (1, 3, 10), (0, 2, 7), (0, 3, 10)] {
                    assert_eq!(
                        snap.precedes_at(StrandId(u), StrandId(v), pos),
                        full.precedes_at(StrandId(u), StrandId(v), pos),
                        "{algorithm} cut {cut}: precedes(s{u}, s{v}) at {pos}"
                    );
                }
            }
        }
    }

    #[test]
    fn raw_export_round_trips_the_freezer_state() {
        let trace = future_trace();
        for algorithm in [ReplayAlgorithm::MultiBags, ReplayAlgorithm::MultiBagsPlus] {
            let mut inc = IncrementalFreezer::new(algorithm).expect("freezable");
            inc.extend(trace.events());
            let raw = inc.to_raw();
            let back = IncrementalFreezer::from_raw(raw.clone()).expect("valid raw state");
            assert_eq!(
                back.to_raw(),
                raw,
                "{algorithm}: re-export must be identical"
            );
            // The re-imported freezer must answer queries identically...
            let (a, b) = (inc.snapshot_index(), back.snapshot_index());
            assert_eq!(
                a.precedes_at(StrandId(1), StrandId(3), 10),
                b.precedes_at(StrandId(1), StrandId(3), 10)
            );
            // ...and resume freezing: extending both with nothing keeps them
            // equal, and positions agree.
            assert_eq!(back.position(), inc.position());
        }
    }

    #[test]
    fn from_raw_rejects_corrupt_state() {
        let trace = future_trace();
        let mut inc = IncrementalFreezer::new(ReplayAlgorithm::MultiBagsPlus).expect("freezable");
        inc.extend(trace.events());
        let raw = inc.to_raw();

        let mut bad = raw.clone();
        bad.nsp = None;
        assert!(IncrementalFreezer::from_raw(bad).is_err(), "shape mismatch");

        let mut bad = raw.clone();
        bad.bags.live.pop();
        assert!(IncrementalFreezer::from_raw(bad).is_err(), "live length");

        let mut bad = raw.clone();
        bad.bags.set_of_strand[0] = 10_000;
        assert!(IncrementalFreezer::from_raw(bad).is_err(), "set bounds");

        let mut bad = raw.clone();
        if let Some(set) = bad.bags.sets.first_mut() {
            set.merged_pos = 5;
            set.merged_target = 0; // self-merge → cycle
        }
        assert!(IncrementalFreezer::from_raw(bad).is_err(), "merge cycle");

        let mut bad = raw.clone();
        bad.accesses.push(GranuleAccess {
            granule: 1,
            pos: bad.pos + 7,
            strand: StrandId(0),
            is_write: false,
        });
        assert!(
            IncrementalFreezer::from_raw(bad).is_err(),
            "access beyond frozen position"
        );

        let mut bad = raw.clone();
        if let Some(nsp) = bad.nsp.as_mut() {
            // A diagonal closure entry = a self-loop in R.
            if nsp.closure_rows[0].is_empty() {
                nsp.closure_rows[0].push(7);
            } else {
                nsp.closure_rows[0][0] = 7;
            }
        }
        assert!(
            IncrementalFreezer::from_raw(bad).is_err(),
            "closure self-loop"
        );

        assert!(IncrementalFreezer::from_raw(raw).is_ok(), "control");
    }

    /// Spot-check the detector-level agreement on the canonical racy trace.
    #[test]
    fn frozen_queries_reproduce_detector_verdicts() {
        let trace = future_trace();
        let report = trace
            .replay(RaceDetector::<MultiBagsPlus>::general())
            .into_report();
        assert_eq!(report.race_count(), 1);
    }
}
