//! Pass 1 of the parallel detection engine: replay the trace through the
//! reachability algorithm once and *freeze* the result into an immutable,
//! shareable index.
//!
//! The on-the-fly structures of [`crate::reachability`] answer "is strand
//! `u` sequentially before the *currently executing* strand?" — a query
//! whose answer depends on when it is asked. To shard detection, workers
//! need the same answer *for any point of the trace*, read-only. The freeze
//! replays the reachability updates once and records, instead of the live
//! sets, their **timelines**:
//!
//! * every bag (disjoint set) of MultiBags / the `DSP` of MultiBags+ is a
//!   node of a *merge forest*: a set object is created, may be relabelled
//!   `S → P` once (at the `Return` of the function owning it), and is merged
//!   into another set at most once (at the `Sync`/`GetFuture` that joins
//!   it). A strand's bag at trace position `t` is found by walking its merge
//!   chain while the merge position precedes `t`; its tag is `S` iff the
//!   final set's relabel position does not precede `t`. Positions along a
//!   merge chain strictly increase, so the walk is well defined — and it is
//!   the *recorded* update sequence that is replayed, so the frozen answers
//!   match the live algorithm exactly even on traces where MultiBags is
//!   unsound (multi-touch futures), where its unions diverge from true dag
//!   reachability;
//! * the `DNSP` sets of MultiBags+ get the same merge-forest treatment,
//!   with their tag timeline (`Unattached{attPred}` → attachified →
//!   `attSucc` assignments) recorded per set;
//! * the reachability dag `R` over attached sets is frozen as an
//!   **earliest-connection closure**: arcs arrive in trace order, so the
//!   first time a pair becomes connected is the earliest position at which
//!   any path exists, and `reaches(a, b)` *at position t* is one hash-map
//!   probe (`earliest(a→b) < t`) — the "attached-bag closure bits" of the
//!   frozen index.
//!
//! All query paths are `&self` with no interior mutability, so one
//! [`ReachIndex`] is shared by every detection worker.

use crate::replay::ReplayAlgorithm;
use futurerd_dag::events::{CreateFutureEvent, GetFutureEvent, SpawnEvent, SyncEvent};
use futurerd_dag::trace::Trace;
use futurerd_dag::{FunctionId, MemAddr, Observer, StrandId};

/// A position in the trace: the index of an event in the stream. Every
/// timeline comparison is strict (`<`): an update at position `p` is visible
/// to queries issued by events at positions `> p`.
pub(crate) type Pos = u32;

const NO_SET: u32 = u32::MAX;

// ---------------------------------------------------------------------------
// Frozen bags (MultiBags and the DSP of MultiBags+)
// ---------------------------------------------------------------------------

/// One set object of the bag merge forest.
#[derive(Debug, Clone, Default)]
struct BagSet {
    /// `S → P` relabel position (the owning function's `Return`), if any.
    relabel: Option<Pos>,
    /// The set this one was merged into, and when.
    merged: Option<(Pos, u32)>,
}

/// The frozen form of a [`crate::reachability::MultiBags`] run (also used
/// for the `DSP` component of MultiBags+): final bag assignments per strand
/// plus each bag's tag/merge timeline.
#[derive(Debug, Default)]
pub struct FrozenBags {
    /// Birth set of each strand (the set it was placed in when it started).
    set_of_strand: Vec<u32>,
    sets: Vec<BagSet>,
}

impl FrozenBags {
    /// True iff `u` was in an S-bag just before the event at `pos` — exactly
    /// what `MultiBags::in_s_bag(u)` answered at that point of the replay.
    pub fn in_s_bag_at(&self, u: StrandId, pos: Pos) -> bool {
        let mut set = self.set_of_strand[u.index()];
        debug_assert_ne!(set, NO_SET, "strand {u} had not started at {pos}");
        loop {
            let s = &self.sets[set as usize];
            match s.merged {
                Some((p, target)) if p < pos => set = target,
                _ => return s.relabel.is_none_or(|p| p >= pos),
            }
        }
    }

    /// As [`FrozenBags::in_s_bag_at`], resuming the merge-chain walk from a
    /// per-strand cursor. Valid only for non-decreasing `pos` per cursor
    /// (the chain position a strand resolved to can never move backwards),
    /// which makes the whole walk amortized O(1) per query for workers
    /// scanning the trace in order.
    fn in_s_bag_at_cached(&self, cursor: &mut Vec<Cursor>, u: StrandId, pos: Pos) -> bool {
        let set = resolve_cached(
            &self.sets,
            |s| s.merged,
            cursor,
            self.set_of_strand[u.index()],
            u,
            pos,
        );
        self.sets[set as usize].relabel.is_none_or(|p| p >= pos)
    }

    /// Number of set objects in the merge forest.
    pub fn num_sets(&self) -> usize {
        self.sets.len()
    }
}

/// Per-strand memo of a merge-forest walk: `set` is the resolved set for
/// every query position `≤ expiry`; later positions resume the walk from
/// `set`.
#[derive(Debug, Clone, Copy)]
struct Cursor {
    set: u32,
    expiry: Pos,
}

const FRESH: Cursor = Cursor {
    set: NO_SET,
    expiry: 0,
};

/// Walks a merge forest from a cached per-strand position. `merged_of`
/// projects a set to its merge edge, `birth` is the strand's birth set for
/// the first query.
#[inline]
fn resolve_cached<S>(
    sets: &[S],
    merged_of: impl Fn(&S) -> Option<(Pos, u32)>,
    cursor: &mut Vec<Cursor>,
    birth: u32,
    u: StrandId,
    pos: Pos,
) -> u32 {
    if cursor.len() <= u.index() {
        cursor.resize(u.index() + 1, FRESH);
    }
    let entry = &mut cursor[u.index()];
    let mut set = if entry.set == NO_SET {
        debug_assert_ne!(birth, NO_SET, "strand {u} had not started at {pos}");
        birth
    } else if pos <= entry.expiry {
        return entry.set;
    } else {
        entry.set
    };
    loop {
        match merged_of(&sets[set as usize]) {
            Some((p, target)) if p < pos => set = target,
            Some((p, _)) => {
                *entry = Cursor { set, expiry: p };
                return set;
            }
            None => {
                *entry = Cursor { set, expiry: NEVER };
                return set;
            }
        }
    }
}

/// Builds a [`FrozenBags`] by mirroring the MultiBags update rules while
/// recording their timeline. `union_on_get = false` gives the `DSP` variant
/// used inside MultiBags+ (no union at `get_fut`).
#[derive(Debug)]
struct BagsBuilder {
    union_on_get: bool,
    frozen: FrozenBags,
    /// Live root of each set chain (with path halving); mirrors the live
    /// disjoint-set state during the freezing replay.
    live: Vec<u32>,
    /// First strand of each function — a known member of its bag.
    first_strand: Vec<Option<StrandId>>,
}

impl BagsBuilder {
    fn new(union_on_get: bool) -> Self {
        Self {
            union_on_get,
            frozen: FrozenBags::default(),
            live: Vec::new(),
            first_strand: Vec::new(),
        }
    }

    fn live_root(&mut self, mut set: u32) -> u32 {
        // Path halving over the live pointers: the frozen merge edges stay
        // intact, only the resolution shortcut is compressed.
        while self.live[set as usize] != set {
            let parent = self.live[set as usize];
            let grandparent = self.live[parent as usize];
            self.live[set as usize] = grandparent;
            set = grandparent;
        }
        set
    }

    fn set_of_function(&mut self, function: FunctionId) -> u32 {
        let member = self
            .first_strand
            .get(function.index())
            .copied()
            .flatten()
            .unwrap_or_else(|| panic!("function {function} has not started executing"));
        let birth = self.frozen.set_of_strand[member.index()];
        self.live_root(birth)
    }

    fn strand_start(&mut self, strand: StrandId, function: FunctionId) {
        if self.frozen.set_of_strand.len() <= strand.index() {
            self.frozen.set_of_strand.resize(strand.index() + 1, NO_SET);
        }
        if self.first_strand.len() <= function.index() {
            self.first_strand.resize(function.index() + 1, None);
        }
        match self.first_strand[function.index()] {
            None => {
                // First strand of the function: a fresh S-set (this is S_F).
                let id = self.frozen.sets.len() as u32;
                self.frozen.sets.push(BagSet::default());
                self.live.push(id);
                self.frozen.set_of_strand[strand.index()] = id;
                self.first_strand[function.index()] = Some(strand);
            }
            Some(_) => {
                // Subsequent strand: joins whatever set currently holds the
                // function's first strand (the live algorithm unions the new
                // singleton into it, which keeps that set's tag).
                let root = self.set_of_function(function);
                self.frozen.set_of_strand[strand.index()] = root;
            }
        }
    }

    fn function_return(&mut self, function: FunctionId, pos: Pos) {
        // P_F = S_F: relabel the live set holding the function's bag.
        let root = self.set_of_function(function);
        let set = &mut self.frozen.sets[root as usize];
        if set.relabel.is_none() {
            set.relabel = Some(pos);
        }
    }

    fn join_child(&mut self, parent: FunctionId, child: FunctionId, pos: Pos) {
        // S_parent = Union(S_parent, P_child), keeping the parent's tag.
        let winner = self.set_of_function(parent);
        let victim = self.set_of_function(child);
        if winner == victim {
            return;
        }
        self.frozen.sets[victim as usize].merged = Some((pos, winner));
        self.live[victim as usize] = winner;
    }

    fn sync(&mut self, ev: &SyncEvent, pos: Pos) {
        self.join_child(ev.parent, ev.child, pos);
    }

    fn get_future(&mut self, ev: &GetFutureEvent, pos: Pos) {
        if self.union_on_get {
            self.join_child(ev.parent, ev.future, pos);
        }
    }
}

// ---------------------------------------------------------------------------
// Frozen DNSP + timed closure of R (MultiBags+)
// ---------------------------------------------------------------------------

/// How a `DNSP` set started life.
#[derive(Debug, Clone, Copy)]
enum NspBirth {
    /// Created attached, as `R` node `rnode`.
    Attached { rnode: u32 },
    /// Created unattached with the given attached predecessor (immutable for
    /// the set's whole lifetime).
    Unattached { att_pred: u32 },
}

/// One set object of the `DNSP` merge forest, with its tag timeline.
#[derive(Debug, Clone)]
struct NspSet {
    birth: NspBirth,
    /// `Attachify` position and the `R` node created for it (unattached
    /// births only; at most once).
    attached: Option<(Pos, u32)>,
    /// `attSucc` assignments (position, `R` node), in trace order.
    att_succ: Vec<(Pos, u32)>,
    /// The set this one was merged into, and when.
    merged: Option<(Pos, u32)>,
}

/// Sentinel for "no path" in the timed closure rows.
const NEVER: Pos = Pos::MAX;

/// The `R` dag over attached sets with an earliest-connection transitive
/// closure: `earliest[a→b]` is the position of the arc insertion that first
/// connected `a` to `b`. Arcs arrive in trace order during the freezing
/// replay, so a single incremental pass computes it; afterwards a
/// reachability-at-position query is one array probe.
///
/// Rows are dense `Pos` vectors (lazily grown, [`NEVER`] = unreachable) —
/// the timed analogue of `RGraph`'s closure bit vectors, paying 32 bits per
/// pair instead of one to carry the connection position.
#[derive(Debug, Default)]
struct TimedClosure {
    /// `earliest[b][a]` = earliest position with a non-empty path `a → b`.
    /// Stored pred-side so the dominant arc shape (into a freshly created
    /// node) stamps one contiguous row instead of scattering across rows.
    earliest_pred: Vec<Vec<Pos>>,
    /// `pred[b]` / `succ[a]`: the closure as dup-free adjacency lists — each
    /// pair is pushed exactly once, when it is first stamped, so ancestor /
    /// descendant enumeration is proportional to the sets' actual sizes.
    pred_list: Vec<Vec<u32>>,
    succ_list: Vec<Vec<u32>>,
    entries: usize,
}

impl TimedClosure {
    fn add_node(&mut self) -> u32 {
        let id = self.earliest_pred.len() as u32;
        self.earliest_pred.push(Vec::new());
        self.pred_list.push(Vec::new());
        self.succ_list.push(Vec::new());
        id
    }

    #[inline]
    fn earliest(&self, from: u32, to: u32) -> Pos {
        self.earliest_pred[to as usize]
            .get(from as usize)
            .copied()
            .unwrap_or(NEVER)
    }

    fn add_arc(&mut self, from: u32, to: u32, pos: Pos) {
        debug_assert_ne!(from, to, "R is acyclic");
        if self.earliest(from, to) != NEVER {
            return; // already implied: no new connections
        }
        let mut ancestors = std::mem::take(&mut self.pred_list[from as usize]);
        ancestors.push(from);
        // Almost every arc points at a freshly created node (`to` has no
        // successors yet), so the descendant set is usually just `to`.
        let mut descendants = std::mem::take(&mut self.succ_list[to as usize]);
        descendants.push(to);
        let row_len = ancestors.iter().max().copied().expect("contains `from`") as usize + 1;
        for &d in &descendants {
            let row = &mut self.earliest_pred[d as usize];
            if row.len() < row_len {
                row.resize(row_len, NEVER);
            }
            for &a in &ancestors {
                debug_assert_ne!(a, d, "arc {from}->{to} would create a cycle in R");
                if row[a as usize] == NEVER {
                    row[a as usize] = pos;
                    self.entries += 1;
                    self.pred_list[d as usize].push(a);
                    self.succ_list[a as usize].push(d);
                }
            }
        }
        // Put the borrowed lists back (dropping the appended self entries).
        ancestors.pop();
        descendants.pop();
        // The loops above may have pushed new entries while the lists were
        // taken; merge rather than overwrite.
        let from_new = std::mem::replace(&mut self.pred_list[from as usize], ancestors);
        self.pred_list[from as usize].extend(from_new);
        let to_new = std::mem::replace(&mut self.succ_list[to as usize], descendants);
        self.succ_list[to as usize].extend(to_new);
    }

    /// True iff a non-empty path `from → to` existed before position `pos`.
    fn reaches_at(&self, from: u32, to: u32, pos: Pos) -> bool {
        self.earliest(from, to) < pos
    }

    fn num_nodes(&self) -> usize {
        self.earliest_pred.len()
    }

    fn closure_entries(&self) -> usize {
        self.entries
    }
}

/// The frozen `DNSP` + `R` of a MultiBags+ run.
#[derive(Debug, Default)]
pub struct FrozenNsp {
    set_of_strand: Vec<u32>,
    sets: Vec<NspSet>,
    r: TimedClosure,
}

impl FrozenNsp {
    /// The set holding `strand` just before the event at `pos`.
    fn set_at(&self, strand: StrandId, pos: Pos) -> &NspSet {
        let mut set = self.set_of_strand[strand.index()];
        debug_assert_ne!(set, NO_SET, "strand {strand} not registered in DNSP");
        loop {
            let s = &self.sets[set as usize];
            match s.merged {
                Some((p, target)) if p < pos => set = target,
                _ => return s,
            }
        }
    }

    /// The `R` node of `strand`'s set if it was attached at `pos`.
    fn attached_node_at(set: &NspSet, pos: Pos) -> Option<u32> {
        match set.birth {
            NspBirth::Attached { rnode } => Some(rnode),
            NspBirth::Unattached { .. } => match set.attached {
                Some((p, rnode)) if p < pos => Some(rnode),
                _ => None,
            },
        }
    }

    /// The attached-predecessor proxy (query destination side, Figure 3).
    fn att_pred_proxy_at(&self, strand: StrandId, pos: Pos) -> u32 {
        let set = self.set_at(strand, pos);
        Self::pred_of_set(set, pos)
    }

    /// The attached-successor proxy (query source side), if assigned yet.
    fn att_succ_proxy_at(&self, strand: StrandId, pos: Pos) -> Option<u32> {
        let set = self.set_at(strand, pos);
        Self::succ_of_set(set, pos)
    }

    fn pred_of_set(set: &NspSet, pos: Pos) -> u32 {
        Self::attached_node_at(set, pos).unwrap_or(match set.birth {
            NspBirth::Unattached { att_pred } => att_pred,
            NspBirth::Attached { rnode } => rnode,
        })
    }

    fn succ_of_set(set: &NspSet, pos: Pos) -> Option<u32> {
        if let Some(rnode) = Self::attached_node_at(set, pos) {
            return Some(rnode);
        }
        set.att_succ
            .iter()
            .rev()
            .find(|&&(p, _)| p < pos)
            .map(|&(_, rnode)| rnode)
    }

    /// Cursor-cached variants of the proxy lookups (monotone `pos` only).
    fn att_pred_proxy_at_cached(
        &self,
        cursor: &mut Vec<Cursor>,
        strand: StrandId,
        pos: Pos,
    ) -> u32 {
        let idx = resolve_cached(
            &self.sets,
            |s| s.merged,
            cursor,
            self.set_of_strand[strand.index()],
            strand,
            pos,
        );
        Self::pred_of_set(&self.sets[idx as usize], pos)
    }

    fn att_succ_proxy_at_cached(
        &self,
        cursor: &mut Vec<Cursor>,
        strand: StrandId,
        pos: Pos,
    ) -> Option<u32> {
        let idx = resolve_cached(
            &self.sets,
            |s| s.merged,
            cursor,
            self.set_of_strand[strand.index()],
            strand,
            pos,
        );
        Self::succ_of_set(&self.sets[idx as usize], pos)
    }

    /// Number of attached sets (`R` nodes) in the frozen index.
    pub fn num_attached_sets(&self) -> usize {
        self.r.num_nodes()
    }
}

/// Mirrors the MultiBags+ `DNSP`/`R` update rules (Figure 4) while recording
/// their timeline.
#[derive(Debug, Default)]
struct NspBuilder {
    frozen: FrozenNsp,
    /// Live root of each set chain (path halving), as in [`BagsBuilder`].
    live: Vec<u32>,
}

impl NspBuilder {
    fn live_root(&mut self, mut set: u32) -> u32 {
        while self.live[set as usize] != set {
            let parent = self.live[set as usize];
            let grandparent = self.live[parent as usize];
            self.live[set as usize] = grandparent;
            set = grandparent;
        }
        set
    }

    fn set_of(&mut self, strand: StrandId) -> u32 {
        let birth = self.frozen.set_of_strand[strand.index()];
        debug_assert_ne!(birth, NO_SET, "strand {strand} not registered in DNSP");
        self.live_root(birth)
    }

    fn register(&mut self, strand: StrandId, set: u32) {
        if self.frozen.set_of_strand.len() <= strand.index() {
            self.frozen.set_of_strand.resize(strand.index() + 1, NO_SET);
        }
        debug_assert_eq!(
            self.frozen.set_of_strand[strand.index()],
            NO_SET,
            "strand {strand} registered twice in DNSP"
        );
        self.frozen.set_of_strand[strand.index()] = set;
    }

    fn new_set(&mut self, birth: NspBirth) -> u32 {
        let id = self.frozen.sets.len() as u32;
        self.frozen.sets.push(NspSet {
            birth,
            attached: None,
            att_succ: Vec::new(),
            merged: None,
        });
        self.live.push(id);
        id
    }

    fn make_attached(&mut self, strand: StrandId) -> u32 {
        let rnode = self.frozen.r.add_node();
        let set = self.new_set(NspBirth::Attached { rnode });
        self.register(strand, set);
        rnode
    }

    fn make_unattached(&mut self, strand: StrandId, att_pred: u32) {
        let set = self.new_set(NspBirth::Unattached { att_pred });
        self.register(strand, set);
    }

    fn is_attached(&mut self, strand: StrandId, pos: Pos) -> bool {
        let root = self.set_of(strand);
        FrozenNsp::attached_node_at(&self.frozen.sets[root as usize], pos + 1).is_some()
    }

    /// Live attached-predecessor proxy (during the freezing replay every
    /// lookup is "as of now", i.e. after all updates so far).
    fn att_pred_proxy(&mut self, strand: StrandId, pos: Pos) -> u32 {
        let root = self.set_of(strand);
        let set = &self.frozen.sets[root as usize];
        FrozenNsp::attached_node_at(set, pos + 1).unwrap_or(match set.birth {
            NspBirth::Unattached { att_pred } => att_pred,
            NspBirth::Attached { rnode } => rnode,
        })
    }

    /// `Attachify(u)` (Figure 4, lines 18–22).
    fn attachify(&mut self, strand: StrandId, pos: Pos) -> u32 {
        let root = self.set_of(strand);
        let set = &self.frozen.sets[root as usize];
        if let Some(rnode) = FrozenNsp::attached_node_at(set, pos + 1) {
            return rnode;
        }
        let NspBirth::Unattached { att_pred } = set.birth else {
            unreachable!("attached births always resolve above")
        };
        let rnode = self.frozen.r.add_node();
        self.frozen.r.add_arc(att_pred, rnode, pos);
        self.frozen.sets[root as usize].attached = Some((pos, rnode));
        rnode
    }

    fn union_into(&mut self, winner: StrandId, victim: StrandId, pos: Pos) {
        let w = self.set_of(winner);
        let v = self.set_of(victim);
        if w == v {
            return;
        }
        self.frozen.sets[v as usize].merged = Some((pos, w));
        self.live[v as usize] = w;
    }

    /// Registers join strand `j` directly into the set containing `host`.
    fn make_strand_in_set_of(&mut self, j: StrandId, host: StrandId) {
        let root = self.set_of(host);
        self.register(j, root);
    }
}

// ---------------------------------------------------------------------------
// The public frozen index
// ---------------------------------------------------------------------------

/// The frozen reachability index: an immutable, `Sync` structure answering
/// "did strand `u` sequentially precede strand `v` at trace position `pos`?"
/// with exactly the answer the live algorithm gave during sequential replay.
///
/// Built by [`ReachIndex::freeze`] (pass 1 of the parallel engine) and then
/// shared read-only by every detection worker of pass 2. Only the paper's
/// two algorithms can be frozen — MultiBags (final bag timelines) and
/// MultiBags+ (bag timelines + `DNSP` set timelines + the attached-bag
/// closure); SP-Bags and the graph oracle have no frozen form and
/// [`par_replay_detect`](crate::parallel::par_replay_detect) falls back to
/// sequential replay for them.
#[derive(Debug)]
pub struct ReachIndex {
    algorithm: ReplayAlgorithm,
    inner: IndexInner,
}

#[derive(Debug)]
enum IndexInner {
    MultiBags(FrozenBags),
    MultiBagsPlus { dsp: FrozenBags, nsp: FrozenNsp },
}

/// Worker-private memo for [`ReachIndex::precedes_at_cached`]: per-strand
/// merge-chain positions for the bag forest (and, for MultiBags+, the
/// `DNSP` forest). See [`ReachIndex::cursor`].
#[derive(Debug)]
pub struct IndexCursor {
    bags: Vec<Cursor>,
    nsp: Vec<Cursor>,
    #[allow(dead_code)] // written only under debug_assertions
    last_pos: Pos,
}

impl ReachIndex {
    /// Replays `trace` once through the reachability algorithm only (no
    /// shadow memory) and freezes the result. Validates the trace first.
    ///
    /// Returns `None` for algorithms without a frozen form (SP-Bags and the
    /// graph oracle).
    pub fn freeze(
        trace: &Trace,
        algorithm: ReplayAlgorithm,
    ) -> Result<Option<ReachIndex>, futurerd_dag::trace::TraceError> {
        trace.validate()?;
        Ok(freeze_with_accesses(trace, algorithm).map(|(index, _)| index))
    }

    /// The algorithm this index was frozen from.
    pub fn algorithm(&self) -> ReplayAlgorithm {
        self.algorithm
    }

    /// True iff `u` preceded `v` at trace position `pos` according to the
    /// frozen algorithm — the exact answer `precedes_current(u)` gave when
    /// the event at `pos` (an access by `v`) was replayed sequentially.
    pub fn precedes_at(&self, u: StrandId, v: StrandId, pos: u32) -> bool {
        match &self.inner {
            // MultiBags answers from the bag tag alone (Figure 1): the
            // current strand is not consulted.
            IndexInner::MultiBags(bags) => bags.in_s_bag_at(u, pos),
            IndexInner::MultiBagsPlus { dsp, nsp } => {
                if u == v {
                    return true;
                }
                // Figure 3: SP bags first, then the proxies against R.
                if dsp.in_s_bag_at(u, pos) {
                    return true;
                }
                let sv = nsp.att_pred_proxy_at(v, pos);
                let Some(su) = nsp.att_succ_proxy_at(u, pos) else {
                    return false;
                };
                nsp.r.reaches_at(su, sv, pos)
            }
        }
    }

    /// Creates a fresh query cursor for this index. A cursor memoizes the
    /// per-strand merge-chain walks, making queries amortized O(1) — but it
    /// requires the positions passed to
    /// [`precedes_at_cached`](ReachIndex::precedes_at_cached) to be
    /// non-decreasing over the cursor's lifetime (detection workers scan
    /// their shard in trace order, which guarantees it).
    pub fn cursor(&self) -> IndexCursor {
        IndexCursor {
            bags: Vec::new(),
            nsp: Vec::new(),
            last_pos: 0,
        }
    }

    /// As [`precedes_at`](ReachIndex::precedes_at), with the chain walks
    /// resumed from `cursor`. Positions must be non-decreasing per cursor.
    pub fn precedes_at_cached(
        &self,
        cursor: &mut IndexCursor,
        u: StrandId,
        v: StrandId,
        pos: u32,
    ) -> bool {
        debug_assert!(
            pos >= cursor.last_pos,
            "cursor positions must not go backwards"
        );
        #[cfg(debug_assertions)]
        {
            cursor.last_pos = pos;
        }
        match &self.inner {
            IndexInner::MultiBags(bags) => bags.in_s_bag_at_cached(&mut cursor.bags, u, pos),
            IndexInner::MultiBagsPlus { dsp, nsp } => {
                if u == v {
                    return true;
                }
                if dsp.in_s_bag_at_cached(&mut cursor.bags, u, pos) {
                    return true;
                }
                let sv = nsp.att_pred_proxy_at_cached(&mut cursor.nsp, v, pos);
                let Some(su) = nsp.att_succ_proxy_at_cached(&mut cursor.nsp, u, pos) else {
                    return false;
                };
                nsp.r.reaches_at(su, sv, pos)
            }
        }
    }

    /// Number of attached sets (`R` nodes) in the frozen index (0 for
    /// MultiBags).
    pub fn num_attached_sets(&self) -> usize {
        match &self.inner {
            IndexInner::MultiBags(_) => 0,
            IndexInner::MultiBagsPlus { nsp, .. } => nsp.num_attached_sets(),
        }
    }

    /// Number of entries in the frozen attached-bag closure (0 for
    /// MultiBags).
    pub fn closure_entries(&self) -> usize {
        match &self.inner {
            IndexInner::MultiBags(_) => 0,
            IndexInner::MultiBagsPlus { nsp, .. } => nsp.r.closure_entries(),
        }
    }
}

// ---------------------------------------------------------------------------
// The freezing replay observer
// ---------------------------------------------------------------------------

/// One granule-level access extracted during the freezing replay: pass 2
/// shards these by granule range, so workers touch only their own slice.
#[derive(Debug, Clone, Copy)]
pub(crate) struct GranuleAccess {
    pub granule: u64,
    pub pos: Pos,
    pub strand: StrandId,
    pub is_write: bool,
}

/// The pass-1 observer: drives the timeline builders and extracts the
/// granule-level access stream in the same single replay.
struct Freezer {
    pos: Pos,
    bags: BagsBuilder,
    nsp: Option<NspBuilder>,
    accesses: Vec<GranuleAccess>,
}

impl Freezer {
    fn new(algorithm: ReplayAlgorithm) -> Option<Self> {
        let (union_on_get, nsp) = match algorithm {
            ReplayAlgorithm::MultiBags => (true, None),
            ReplayAlgorithm::MultiBagsPlus => (false, Some(NspBuilder::default())),
            _ => return None,
        };
        Some(Self {
            pos: 0,
            bags: BagsBuilder::new(union_on_get),
            nsp,
            accesses: Vec::new(),
        })
    }

    fn push_access(&mut self, strand: StrandId, addr: MemAddr, size: usize, is_write: bool) {
        let pos = self.pos;
        for granule in addr.granules(size) {
            self.accesses.push(GranuleAccess {
                granule,
                pos,
                strand,
                is_write,
            });
        }
    }
}

impl Observer for Freezer {
    fn on_program_start(&mut self, _root: FunctionId, first: StrandId) {
        if let Some(nsp) = &mut self.nsp {
            // Figure 4, line 1: the first strand is attached, no predecessor.
            nsp.make_attached(first);
        }
        self.pos += 1;
    }

    fn on_strand_start(&mut self, strand: StrandId, function: FunctionId) {
        self.bags.strand_start(strand, function);
        self.pos += 1;
    }

    fn on_spawn(&mut self, ev: &SpawnEvent) {
        if let Some(nsp) = &mut self.nsp {
            // Figure 4, lines 3–6.
            let pred = nsp.att_pred_proxy(ev.fork_strand, self.pos);
            nsp.make_unattached(ev.cont_strand, pred);
            nsp.make_unattached(ev.child_first_strand, pred);
        }
        self.pos += 1;
    }

    fn on_create_future(&mut self, ev: &CreateFutureEvent) {
        if let Some(nsp) = &mut self.nsp {
            // Figure 4, lines 8–12.
            let pos = self.pos;
            let ru = nsp.attachify(ev.creator_strand, pos);
            let rv = nsp.make_attached(ev.cont_strand);
            nsp.frozen.r.add_arc(ru, rv, pos);
            let rw = nsp.make_attached(ev.child_first_strand);
            nsp.frozen.r.add_arc(ru, rw, pos);
        }
        self.pos += 1;
    }

    fn on_return(&mut self, function: FunctionId, _last: StrandId) {
        self.bags.function_return(function, self.pos);
        self.pos += 1;
    }

    fn on_sync(&mut self, ev: &SyncEvent) {
        let pos = self.pos;
        self.bags.sync(ev, pos);
        if let Some(nsp) = &mut self.nsp {
            // Figure 4, lines 24–46.
            let f = ev.fork.pre_fork_strand;
            let s1 = ev.fork.child_first_strand;
            let s2 = ev.fork.cont_strand;
            let j = ev.join_strand;
            let t1 = ev.child_last_strand;
            let t2 = ev.pre_join_strand;

            let t1_attached = nsp.is_attached(t1, pos);
            let t2_attached = nsp.is_attached(t2, pos);

            if !t1_attached && !t2_attached {
                nsp.union_into(f, t1, pos);
                nsp.union_into(f, t2, pos);
                nsp.make_strand_in_set_of(j, f);
            } else if t1_attached && t2_attached {
                let rf = nsp.attachify(f, pos);
                let rs1 = nsp.attachify(s1, pos);
                let rs2 = nsp.attachify(s2, pos);
                nsp.frozen.r.add_arc(rf, rs1, pos);
                nsp.frozen.r.add_arc(rf, rs2, pos);
                let rj = nsp.make_attached(j);
                let rt1 = nsp.attachify(t1, pos);
                let rt2 = nsp.attachify(t2, pos);
                nsp.frozen.r.add_arc(rt1, rj, pos);
                nsp.frozen.r.add_arc(rt2, rj, pos);
            } else {
                let (ta, tu, sa) = if t1_attached {
                    (t1, t2, s1)
                } else {
                    (t2, t1, s2)
                };
                if !nsp.is_attached(f, pos) {
                    nsp.union_into(sa, f, pos);
                }
                nsp.make_strand_in_set_of(j, ta);
                let rj = nsp.attachify(j, pos);
                let tu_root = nsp.set_of(tu);
                let tu_set = &mut nsp.frozen.sets[tu_root as usize];
                if FrozenNsp::attached_node_at(tu_set, pos + 1).is_none() {
                    tu_set.att_succ.push((pos, rj));
                }
            }
        }
        self.pos += 1;
    }

    fn on_get_future(&mut self, ev: &GetFutureEvent) {
        let pos = self.pos;
        self.bags.get_future(ev, pos);
        if let Some(nsp) = &mut self.nsp {
            // Figure 4, lines 14–17.
            let ru = nsp.attachify(ev.pre_get_strand, pos);
            let rv = nsp.make_attached(ev.getter_strand);
            nsp.frozen.r.add_arc(ru, rv, pos);
            let rw = nsp.attachify(ev.future_last_strand, pos);
            nsp.frozen.r.add_arc(rw, rv, pos);
        }
        self.pos += 1;
    }

    fn on_read(&mut self, strand: StrandId, addr: MemAddr, size: usize) {
        self.push_access(strand, addr, size, false);
        self.pos += 1;
    }

    fn on_write(&mut self, strand: StrandId, addr: MemAddr, size: usize) {
        self.push_access(strand, addr, size, true);
        self.pos += 1;
    }

    fn on_program_end(&mut self, _last: StrandId) {
        self.pos += 1;
    }
}

/// Pass 1: one replay, producing the frozen index and the granule-level
/// access stream. The trace must already be validated. Returns `None` for
/// algorithms without a frozen form.
pub(crate) fn freeze_with_accesses(
    trace: &Trace,
    algorithm: ReplayAlgorithm,
) -> Option<(ReachIndex, Vec<GranuleAccess>)> {
    assert!(
        trace.len() < u32::MAX as usize,
        "trace positions are 32-bit; {}-event trace is too large",
        trace.len()
    );
    let freezer = trace.replay(Freezer::new(algorithm)?);
    let inner = match freezer.nsp {
        None => IndexInner::MultiBags(freezer.bags.frozen),
        Some(nsp) => IndexInner::MultiBagsPlus {
            dsp: freezer.bags.frozen,
            nsp: nsp.frozen,
        },
    };
    Some((ReachIndex { algorithm, inner }, freezer.accesses))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::detector::RaceDetector;
    use crate::reachability::{MultiBags, MultiBagsPlus, Reachability};
    use futurerd_dag::trace::TraceEvent;

    /// root creates a future, continues in parallel, then gets it.
    fn future_trace() -> Trace {
        let root = FunctionId(0);
        let fut = FunctionId(1);
        let mut t = Trace::new();
        t.push(TraceEvent::ProgramStart {
            root,
            first: StrandId(0),
        });
        t.push(TraceEvent::StrandStart {
            strand: StrandId(0),
            function: root,
        });
        t.push(TraceEvent::CreateFuture(CreateFutureEvent {
            parent: root,
            child: fut,
            creator_strand: StrandId(0),
            cont_strand: StrandId(2),
            child_first_strand: StrandId(1),
        }));
        t.push(TraceEvent::StrandStart {
            strand: StrandId(1),
            function: fut,
        });
        t.push(TraceEvent::Write {
            strand: StrandId(1),
            addr: MemAddr(0x1000),
            size: 4,
        });
        t.push(TraceEvent::Return {
            function: fut,
            last: StrandId(1),
        });
        t.push(TraceEvent::StrandStart {
            strand: StrandId(2),
            function: root,
        });
        t.push(TraceEvent::Read {
            strand: StrandId(2),
            addr: MemAddr(0x1000),
            size: 4,
        });
        t.push(TraceEvent::GetFuture(GetFutureEvent {
            parent: root,
            future: fut,
            pre_get_strand: StrandId(2),
            getter_strand: StrandId(3),
            future_last_strand: StrandId(1),
            prior_touches: 0,
        }));
        t.push(TraceEvent::StrandStart {
            strand: StrandId(3),
            function: root,
        });
        t.push(TraceEvent::Read {
            strand: StrandId(3),
            addr: MemAddr(0x1000),
            size: 4,
        });
        t.push(TraceEvent::Return {
            function: root,
            last: StrandId(3),
        });
        t.push(TraceEvent::ProgramEnd { last: StrandId(3) });
        t
    }

    /// Replays `trace` through the live reachability structure, recording at
    /// every access event the answer for every started strand, and asserts
    /// the frozen index reproduces each answer.
    fn assert_frozen_matches_live<R: Reachability>(
        trace: &Trace,
        mut live: R,
        algorithm: ReplayAlgorithm,
    ) {
        let index = ReachIndex::freeze(trace, algorithm)
            .expect("valid trace")
            .expect("freezable algorithm");
        let mut started: Vec<StrandId> = Vec::new();
        for (pos, event) in trace.events().iter().enumerate() {
            if let TraceEvent::Read { strand, .. } | TraceEvent::Write { strand, .. } = event {
                for &u in &started {
                    let expected = live.precedes_current(u);
                    let got = index.precedes_at(u, *strand, pos as u32);
                    assert_eq!(
                        expected, got,
                        "{algorithm}: precedes({u}, {strand}) at {pos}"
                    );
                }
            }
            if let TraceEvent::StrandStart { strand, .. } = event {
                started.push(*strand);
            }
            let mut single = Trace::new();
            single.push(*event);
            single.replay_into(&mut live);
        }
    }

    #[test]
    fn frozen_multibags_matches_live_on_future_trace() {
        assert_frozen_matches_live(
            &future_trace(),
            MultiBags::new(),
            ReplayAlgorithm::MultiBags,
        );
    }

    #[test]
    fn frozen_multibags_plus_matches_live_on_future_trace() {
        assert_frozen_matches_live(
            &future_trace(),
            MultiBagsPlus::new(),
            ReplayAlgorithm::MultiBagsPlus,
        );
    }

    #[test]
    fn freeze_rejects_unfreezable_algorithms() {
        let trace = future_trace();
        assert!(ReachIndex::freeze(&trace, ReplayAlgorithm::GraphOracle)
            .expect("valid trace")
            .is_none());
    }

    #[test]
    fn freeze_extracts_granule_accesses() {
        let trace = future_trace();
        let (index, accesses) =
            freeze_with_accesses(&trace, ReplayAlgorithm::MultiBagsPlus).expect("freezable");
        assert_eq!(accesses.len(), 3);
        assert!(accesses.iter().all(|a| a.granule == 0x1000 / 4));
        assert_eq!(index.algorithm(), ReplayAlgorithm::MultiBagsPlus);
        assert!(index.num_attached_sets() >= 4);
        assert!(index.closure_entries() > 0);
    }

    #[test]
    fn frozen_answers_are_time_dependent() {
        // The future's strand (s1) is parallel with the continuation (s2,
        // reading at position 7) but precedes the getter (s3, reading at
        // position 10).
        let trace = future_trace();
        for algorithm in [ReplayAlgorithm::MultiBags, ReplayAlgorithm::MultiBagsPlus] {
            let index = ReachIndex::freeze(&trace, algorithm)
                .expect("valid")
                .expect("freezable");
            assert!(
                !index.precedes_at(StrandId(1), StrandId(2), 7),
                "{algorithm}"
            );
            assert!(
                index.precedes_at(StrandId(1), StrandId(3), 10),
                "{algorithm}"
            );
            assert!(
                index.precedes_at(StrandId(0), StrandId(2), 7),
                "{algorithm}"
            );
        }
    }

    #[test]
    fn frozen_index_is_shareable_across_threads() {
        let trace = future_trace();
        let index = ReachIndex::freeze(&trace, ReplayAlgorithm::MultiBagsPlus)
            .expect("valid")
            .expect("freezable");
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| assert!(index.precedes_at(StrandId(1), StrandId(3), 10)));
            }
        });
    }

    /// Spot-check the detector-level agreement on the canonical racy trace.
    #[test]
    fn frozen_queries_reproduce_detector_verdicts() {
        let trace = future_trace();
        let report = trace
            .replay(RaceDetector::<MultiBagsPlus>::general())
            .into_report();
        assert_eq!(report.race_count(), 1);
    }
}
