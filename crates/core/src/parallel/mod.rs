//! The parallel detection engine: two-pass, sharded, deterministic.
//!
//! Sequential replay ([`crate::replay`]) interleaves two very different
//! kinds of work: maintaining the *reachability structure* (driven by the
//! parallel-construct events, inherently ordered) and maintaining the
//! *access history* plus race checks (driven by the memory accesses, which
//! dominate real traces and are independent across granules). This engine
//! splits them:
//!
//! 1. **Pass 1 — freeze** ([`ReachIndex::freeze`]): replay the trace once
//!    through the reachability algorithm only, recording each bag's tag and
//!    merge *timeline* instead of its final state, and — for MultiBags+ —
//!    the earliest-connection closure of the attached-set dag `R`. The
//!    result answers `precedes(u, v)` *at any trace position* read-only,
//!    with no interior mutability, so it is shared by every worker. The same
//!    replay extracts the granule-level access stream.
//! 2. **Pass 2 — shard** ([`ShadowPartition`]): split the granule space into
//!    at most `P` contiguous ranges balanced by access count, bucket the
//!    access stream by range, and run each bucket through a private
//!    shadow-memory partition, querying the shared frozen index.
//! 3. **Merge** : the per-partition witnesses carry the trace position of
//!    the access that exposed them; sorting by position rebuilds exactly the
//!    sequential report — [`par_replay_detect`] returns a [`RaceReport`]
//!    identical to [`replay_detect`](crate::replay::replay_detect) at every
//!    thread count, which the determinism property tests assert event-for-
//!    event over seeded generated programs.
//!
//! Workers are plain closures handed to a [`DetectExecutor`]; the default
//! [`StdExecutor`] uses scoped OS threads, and `futurerd`'s facade plugs the
//! work-stealing pool of `futurerd-runtime` in instead (its `PoolExecutor`),
//! so detection — not just capture — runs on the pool.

mod assist;
mod freeze;
mod shard;

pub use assist::{
    stamp_closure_row, AssistExecutor, ChunkIndex, ChunkIndexCore, ChunkIter, FreezeAssist,
    DEFAULT_MIN_BATCH,
};
pub use freeze::{
    FrozenBags, FrozenNsp, GranuleAccess, IncrementalFreezer, Pos, RawBagSet, RawBags, RawFreeze,
    RawIndexError, RawNsp, RawNspSet, ReachIndex, RAW_NONE,
};
pub use shard::{
    bucket_accesses, incremental_outcomes, merge_outcomes, merge_outcomes_stats, partition_ranges,
    run_partition, IncrementalOutcomes, PartitionOutcome, ShadowPartition, REBALANCE_DRIFT_FACTOR,
};

use crate::races::RaceReport;
use crate::replay::{replay_detect_unchecked, ReplayAlgorithm};
use futurerd_dag::trace::{Trace, TraceError};

/// Runs a batch of independent detection workers to completion.
///
/// The engine hands each granule partition to one task; implementations
/// decide where the tasks run. All tasks must have finished when `run_batch`
/// returns — the engine merges partition results immediately afterwards.
pub trait DetectExecutor {
    /// Executes every task, potentially in parallel, and waits for all of
    /// them.
    fn run_batch<'a>(&self, tasks: Vec<Box<dyn FnOnce() + Send + 'a>>);
}

/// The default executor: one scoped OS thread per task (and no thread at all
/// for a single task).
#[derive(Debug, Clone, Copy, Default)]
pub struct StdExecutor;

impl DetectExecutor for StdExecutor {
    fn run_batch<'a>(&self, tasks: Vec<Box<dyn FnOnce() + Send + 'a>>) {
        if tasks.len() <= 1 {
            for task in tasks {
                task();
            }
            return;
        }
        // Label the scoped threads only while observability is recording:
        // labels register a per-thread buffer with the global registry, and
        // an idle run should not pay that registration.
        let label = futurerd_obs::recording();
        std::thread::scope(|scope| {
            for (slot, task) in tasks.into_iter().enumerate() {
                scope.spawn(move || {
                    if label {
                        futurerd_obs::set_thread_label(&format!("detect.{slot}"));
                    }
                    task();
                });
            }
        });
    }
}

/// Replays a validated trace through the two-pass parallel detection engine
/// with up to `threads` workers and returns a [`RaceReport`] identical to
/// sequential [`replay_detect`](crate::replay::replay_detect).
///
/// Only the paper's algorithms have a frozen reachability form; for
/// [`ReplayAlgorithm::SpBags`], [`ReplayAlgorithm::SpBagsConservative`] and
/// [`ReplayAlgorithm::GraphOracle`] this falls back to sequential replay
/// (the report is identical either way).
///
/// # Example
///
/// ```
/// use futurerd_core::parallel::par_replay_detect;
/// use futurerd_core::replay::{replay_detect, ReplayAlgorithm};
/// use futurerd_runtime::record_program;
///
/// let (_, trace, _) = record_program(|cx| {
///     let mut cell = futurerd_runtime::ShadowCell::new(cx, 0u32);
///     cx.spawn(|cx| cell.set(cx, 1));
///     let _racy = cell.get(cx);
///     cx.sync();
/// });
/// let sequential = replay_detect(&trace, ReplayAlgorithm::MultiBags).unwrap();
/// let parallel = par_replay_detect(&trace, ReplayAlgorithm::MultiBags, 4).unwrap();
/// assert_eq!(parallel, sequential);
/// assert_eq!(parallel.race_count(), 1);
/// ```
pub fn par_replay_detect(
    trace: &Trace,
    algorithm: ReplayAlgorithm,
    threads: usize,
) -> Result<RaceReport, TraceError> {
    par_replay_detect_with(trace, algorithm, threads, &StdExecutor)
}

/// As [`par_replay_detect`], but both passes run on the given executor
/// (e.g. the work-stealing pool of `futurerd-runtime`): pass 2's detection
/// partitions through [`DetectExecutor::run_batch`], and pass 1's large
/// closure stamping batches through [`AssistExecutor::assist`] when
/// `threads > 1`.
pub fn par_replay_detect_with(
    trace: &Trace,
    algorithm: ReplayAlgorithm,
    threads: usize,
    executor: &(impl DetectExecutor + AssistExecutor),
) -> Result<RaceReport, TraceError> {
    {
        let _span = futurerd_obs::Span::enter(futurerd_obs::names::VALIDATE);
        trace.validate()?;
    }
    let assist = (threads > 1).then(|| FreezeAssist::new(threads, executor));
    let frozen = {
        let _span = futurerd_obs::Span::enter(futurerd_obs::names::FREEZE);
        freeze::freeze_with_accesses_assisted(trace, algorithm, assist.as_ref())
    };
    let Some((index, accesses)) = frozen else {
        // No frozen form for this algorithm: sequential replay gives the
        // same report by definition.
        return Ok(replay_detect_unchecked(trace, algorithm));
    };
    Ok(detect_frozen(&index, &accesses, threads, executor))
}

/// Pass 2 alone: sharded detection over an already-frozen index and its
/// granule access stream — the warm path of a persistent detection store,
/// which loads both from an `FRDIDX` sidecar instead of refreezing.
///
/// Identical to the pass-2 stage of [`par_replay_detect_with`]; the report
/// is byte-identical to sequential replay at every thread count.
pub fn detect_frozen(
    index: &ReachIndex,
    accesses: &[GranuleAccess],
    threads: usize,
    executor: &impl DetectExecutor,
) -> RaceReport {
    shard::merge_reports(detect_partitions(index, accesses, threads, executor))
}

/// As [`detect_frozen`], but returns the per-partition outcomes instead of
/// the merged report — the form a store persists so that incremental
/// re-detection can reuse outcomes for untouched granule ranges. Merge with
/// [`merge_outcomes`].
pub fn detect_frozen_outcomes(
    index: &ReachIndex,
    accesses: &[GranuleAccess],
    threads: usize,
    executor: &impl DetectExecutor,
) -> Vec<PartitionOutcome> {
    detect_partitions(index, accesses, threads, executor)
        .into_iter()
        .map(ShadowPartition::into_outcome)
        .collect()
}

fn detect_partitions(
    index: &ReachIndex,
    accesses: &[GranuleAccess],
    threads: usize,
    executor: &impl DetectExecutor,
) -> Vec<ShadowPartition> {
    let _span = futurerd_obs::Span::enter(futurerd_obs::names::DETECT);
    let ranges = shard::partition_ranges(accesses, threads.max(1));
    let mut partitions: Vec<ShadowPartition> = ranges
        .iter()
        .map(|r| ShadowPartition::new(r.clone()))
        .collect();
    if let [partition] = partitions.as_mut_slice() {
        // One range covers every access: run it on the stream directly
        // instead of copying the whole stream into a bucket.
        let _task = futurerd_obs::Span::enter(futurerd_obs::names::DETECT_PARTITION);
        partition.run(index, accesses);
        return partitions;
    }
    let buckets = shard::bucket_accesses(accesses, &ranges);
    let tasks: Vec<Box<dyn FnOnce() + Send + '_>> = partitions
        .iter_mut()
        .zip(buckets)
        .map(|(partition, bucket)| {
            Box::new(move || {
                let _task = futurerd_obs::Span::enter(futurerd_obs::names::DETECT_PARTITION);
                partition.run(index, &bucket)
            }) as Box<dyn FnOnce() + Send + '_>
        })
        .collect();
    executor.run_batch(tasks);
    partitions
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::replay::replay_detect;
    use futurerd_dag::events::{ForkInfo, SpawnEvent, SyncEvent};
    use futurerd_dag::trace::TraceEvent;
    use futurerd_dag::{FunctionId, MemAddr, StrandId};

    /// A fork-join trace touching two distant granules, one of them racy.
    fn two_granule_trace() -> Trace {
        let root = FunctionId(0);
        let child = FunctionId(1);
        let x = MemAddr(0x1000);
        let y = MemAddr(0x8000);
        let mut t = Trace::new();
        t.push(TraceEvent::ProgramStart {
            root,
            first: StrandId(0),
        });
        t.push(TraceEvent::StrandStart {
            strand: StrandId(0),
            function: root,
        });
        t.push(TraceEvent::Write {
            strand: StrandId(0),
            addr: y,
            size: 4,
        });
        t.push(TraceEvent::Spawn(SpawnEvent {
            parent: root,
            child,
            fork_strand: StrandId(0),
            cont_strand: StrandId(2),
            child_first_strand: StrandId(1),
        }));
        t.push(TraceEvent::StrandStart {
            strand: StrandId(1),
            function: child,
        });
        t.push(TraceEvent::Write {
            strand: StrandId(1),
            addr: x,
            size: 4,
        });
        t.push(TraceEvent::Return {
            function: child,
            last: StrandId(1),
        });
        t.push(TraceEvent::StrandStart {
            strand: StrandId(2),
            function: root,
        });
        t.push(TraceEvent::Read {
            strand: StrandId(2),
            addr: x,
            size: 4,
        });
        t.push(TraceEvent::Read {
            strand: StrandId(2),
            addr: y,
            size: 4,
        });
        t.push(TraceEvent::Sync(SyncEvent {
            parent: root,
            child,
            pre_join_strand: StrandId(2),
            join_strand: StrandId(3),
            child_last_strand: StrandId(1),
            fork: ForkInfo {
                pre_fork_strand: StrandId(0),
                child_first_strand: StrandId(1),
                cont_strand: StrandId(2),
            },
        }));
        t.push(TraceEvent::StrandStart {
            strand: StrandId(3),
            function: root,
        });
        t.push(TraceEvent::Return {
            function: root,
            last: StrandId(3),
        });
        t.push(TraceEvent::ProgramEnd { last: StrandId(3) });
        t
    }

    #[test]
    fn par_detect_matches_sequential_at_every_thread_count() {
        let trace = two_granule_trace();
        for algorithm in [ReplayAlgorithm::MultiBags, ReplayAlgorithm::MultiBagsPlus] {
            let sequential = replay_detect(&trace, algorithm).expect("valid");
            for threads in [1, 2, 3, 8] {
                let parallel = par_replay_detect(&trace, algorithm, threads).expect("valid");
                assert_eq!(parallel, sequential, "{algorithm} at P={threads}");
            }
        }
    }

    #[test]
    fn par_detect_falls_back_for_unfreezable_algorithms() {
        let trace = two_granule_trace();
        for algorithm in [
            ReplayAlgorithm::SpBags,
            ReplayAlgorithm::SpBagsConservative,
            ReplayAlgorithm::GraphOracle,
        ] {
            let sequential = replay_detect(&trace, algorithm).expect("valid");
            let parallel = par_replay_detect(&trace, algorithm, 4).expect("valid");
            assert_eq!(parallel, sequential, "{algorithm}");
        }
    }

    #[test]
    fn par_detect_validates_the_trace() {
        let mut trace = two_granule_trace();
        trace.push(TraceEvent::ProgramEnd { last: StrandId(3) });
        assert!(par_replay_detect(&trace, ReplayAlgorithm::MultiBags, 2).is_err());
    }

    #[test]
    fn par_detect_handles_access_free_traces() {
        let mut t = Trace::new();
        t.push(TraceEvent::ProgramStart {
            root: FunctionId(0),
            first: StrandId(0),
        });
        t.push(TraceEvent::StrandStart {
            strand: StrandId(0),
            function: FunctionId(0),
        });
        t.push(TraceEvent::Return {
            function: FunctionId(0),
            last: StrandId(0),
        });
        t.push(TraceEvent::ProgramEnd { last: StrandId(0) });
        let report = par_replay_detect(&t, ReplayAlgorithm::MultiBags, 4).expect("valid");
        assert!(report.is_race_free());
    }
}
