//! Work-assisted scheduling for the pass-1 freeze: a shared self-scheduling
//! chunk index that idle workers pull stamping batches from.
//!
//! The freeze replay is inherently task-ordered — reachability updates must
//! be applied in trace order — but the *hot loop inside one update* is not:
//! when [`add_arc`](super::freeze) stamps the earliest-connection closure,
//! every (ancestor, descendant) pair gets the same position regardless of
//! stamping order, and distinct closure rows (and distinct cells within one
//! row) are written at most once per arc. That makes the stamping loop a
//! *batch stage*: the coordinator publishes the batch as a list of work
//! units, pushes their indexes through a [`ChunkIndex`], and keeps replaying
//! nothing until the batch completes — while the pool's idle workers pull
//! unit ranges from the shared atomic counter and stamp concurrently (the
//! work-assisting design referenced from the ROADMAP: self-scheduling chunk
//! claims instead of pure deque stealing). With no pool attached, the same
//! units drain through the pull-based [`ChunkIter`] on the calling thread,
//! so the chunked stage stays testable — and byte-identical — without any
//! executor.
//!
//! Byte-identity is by construction, not by luck:
//!
//! * workers only ever write `pos` into cells that held the
//!   never-connected sentinel, and every cell belongs to exactly one work
//!   unit, claimed by exactly one puller (the `fetch_add` protocol below);
//! * everything order-sensitive — adjacency pushes, the entry counter, row
//!   growth bookkeeping — is applied by the coordinator afterwards, in
//!   exactly the order the sequential loop uses, from the per-unit
//!   `fresh` lists the workers report.

use super::freeze::{Pos, NEVER};
use futurerd_check::sync::{AtomicIntShim, AtomicShim, Ordering, RealShim, SyncShim};
use std::ops::Range;

/// Stamps one closure row for one arc batch: every `ancestors` cell of
/// `row` still holding the never-connected sentinel (`Pos::MAX`) is set to
/// `pos`, and the newly stamped ancestors are returned in input order.
///
/// This is the closure stamping loop of the freeze as a standalone batch
/// stage — the unit of work the work-assisted executor hands to pullers,
/// and deliberately a pure function of `(row, ancestors, pos)` so a future
/// *remote* freeze worker can run the same stage against shipped row bytes
/// (the ROADMAP's remote-freeze-worker direction). The caller owns the
/// order-sensitive bookkeeping (adjacency pushes, entry counts) and applies
/// it from the returned list in sequential order.
pub fn stamp_closure_row(row: &mut [Pos], ancestors: &[u32], pos: Pos) -> Vec<u32> {
    let mut fresh = Vec::new();
    for &a in ancestors {
        let cell = &mut row[a as usize];
        if *cell == NEVER {
            *cell = pos;
            fresh.push(a);
        }
    }
    fresh
}

/// Runs one pull-loop body on the calling thread and, concurrently, on up
/// to `helpers` extra workers — the dispatch interface of the work-assisted
/// freeze.
///
/// Unlike [`DetectExecutor`](super::DetectExecutor) (one closure per
/// partition), every copy of `body` is the *same* closure: a loop claiming
/// unit ranges from a shared [`ChunkIndex`] until it is drained. The
/// coordinator always participates (it calls `body` itself), so a saturated
/// pool degrades gracefully to the coordinator stamping everything alone —
/// helpers accelerate the batch, they are never needed for progress.
///
/// Implementations must not return before every copy of `body` has
/// returned.
pub trait AssistExecutor {
    /// Runs `body` on the calling thread and on up to `helpers` workers;
    /// returns when all copies have finished.
    fn assist(&self, helpers: usize, body: &(dyn Fn() + Sync));
}

impl AssistExecutor for super::StdExecutor {
    fn assist(&self, helpers: usize, body: &(dyn Fn() + Sync)) {
        if helpers == 0 {
            body();
            return;
        }
        std::thread::scope(|scope| {
            for _ in 0..helpers {
                scope.spawn(body);
            }
            body();
        });
    }
}

/// A shared self-scheduling chunk index: the coordinator publishes `len`
/// work units, and every puller (coordinator included) claims disjoint
/// `chunk`-sized ranges with one `fetch_add` until the units run out.
///
/// The protocol guarantees that over all pullers every unit index in
/// `0..len` is claimed **exactly once**: `fetch_add` hands each caller a
/// private starting offset, so ranges never overlap, and a puller stops
/// only once its claimed start is past `len`, so nothing is dropped. The
/// scheduler tests stress exactly this under thread contention, and the
/// `futurerd-trace check` suite *proves* it for small configurations by
/// exhaustively exploring the generic core under the model shim.
pub struct ChunkIndexCore<S: SyncShim> {
    next: S::AtomicUsize,
    len: usize,
    chunk: usize,
    misses: S::AtomicU64,
}

/// The production instantiation: [`ChunkIndexCore`] over the zero-cost
/// real-atomics shim.
pub type ChunkIndex = ChunkIndexCore<RealShim>;

impl<S: SyncShim> std::fmt::Debug for ChunkIndexCore<S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ChunkIndex")
            .field("len", &self.len)
            .field("chunk", &self.chunk)
            .finish_non_exhaustive()
    }
}

impl<S: SyncShim> ChunkIndexCore<S> {
    /// Creates an index over `len` units, claimed `chunk` at a time.
    pub fn new(len: usize, chunk: usize) -> Self {
        assert!(chunk > 0, "chunk size must be positive");
        Self {
            next: S::AtomicUsize::new(0),
            len,
            chunk,
            misses: S::AtomicU64::new(0),
        }
    }

    /// Claims the next unclaimed unit range, or `None` once the index is
    /// drained. Safe to call from any number of threads concurrently.
    ///
    /// AcqRel: the claim is the publication point a puller synchronizes
    /// through before touching its units' cells, so the claim protocol
    /// stays a valid handoff even if unit payloads ever stop being
    /// single-owner. (The stat counter below stays `Relaxed`; it guards
    /// nothing.)
    pub fn claim(&self) -> Option<Range<usize>> {
        let start = self.next.fetch_add(self.chunk, Ordering::AcqRel);
        if start >= self.len {
            self.misses.fetch_add(1, Ordering::Relaxed);
            return None;
        }
        Some(start..(start + self.chunk).min(self.len))
    }

    /// Number of claims that found the index already drained. Every puller
    /// pays exactly one miss to learn the batch is over, so the excess over
    /// the puller count measures `fetch_add` overshoot under contention —
    /// exported as the `freeze.assist.index_misses` counter.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Total number of work units published.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if the index was created over zero units.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The per-claim range size.
    pub fn chunk_size(&self) -> usize {
        self.chunk
    }
}

/// The no-pool fallback: the same chunking as [`ChunkIndex`], as a plain
/// pull-based iterator drained by a single thread via `.next()`.
#[derive(Debug, Clone)]
pub struct ChunkIter {
    next: usize,
    len: usize,
    chunk: usize,
}

impl ChunkIter {
    /// Creates an iterator over `len` units, yielded `chunk` at a time.
    pub fn new(len: usize, chunk: usize) -> Self {
        assert!(chunk > 0, "chunk size must be positive");
        Self {
            next: 0,
            len,
            chunk,
        }
    }
}

impl Iterator for ChunkIter {
    type Item = Range<usize>;

    fn next(&mut self) -> Option<Range<usize>> {
        if self.next >= self.len {
            return None;
        }
        let start = self.next;
        self.next = (start + self.chunk).min(self.len);
        Some(start..self.next)
    }
}

/// Default work threshold (in closure stamps, i.e. ancestors ×
/// descendants) below which an arc is stamped sequentially even when an
/// assist is attached: publishing a batch costs a dispatch round-trip, so
/// tiny arcs never pay it.
pub const DEFAULT_MIN_BATCH: usize = 4096;

/// Default target number of stamps per work unit when splitting one
/// closure row across pullers.
const DEFAULT_UNIT_TARGET: usize = 512;

/// Configuration + executor handle for work-assisted freezing: how many
/// pullers a stamping batch may use, when a batch is worth publishing at
/// all, and where the helper copies of the pull loop run.
///
/// Pass one to [`IncrementalFreezer::extend_assisted`](super::IncrementalFreezer::extend_assisted)
/// or [`ReachIndex::freeze_assisted`](super::ReachIndex::freeze_assisted).
/// Without an executor ([`FreezeAssist::sequential`]) batches drain through
/// the pull-based [`ChunkIter`] on the calling thread — same chunked stage,
/// no threads — which is the fallback the byte-identity suite pins at
/// `P = 1`.
#[derive(Clone, Copy)]
pub struct FreezeAssist<'e> {
    workers: usize,
    min_batch: usize,
    unit_target: usize,
    executor: Option<&'e dyn AssistExecutor>,
}

impl std::fmt::Debug for FreezeAssist<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FreezeAssist")
            .field("workers", &self.workers)
            .field("min_batch", &self.min_batch)
            .field("unit_target", &self.unit_target)
            .field("executor", &self.executor.is_some())
            .finish()
    }
}

impl<'e> FreezeAssist<'e> {
    /// An assist running stamping batches on `executor` with up to
    /// `workers` concurrent pullers (the coordinator is one of them).
    pub fn new(workers: usize, executor: &'e dyn AssistExecutor) -> Self {
        Self {
            workers: workers.max(1),
            min_batch: DEFAULT_MIN_BATCH,
            unit_target: DEFAULT_UNIT_TARGET,
            executor: Some(executor),
        }
    }

    /// The executor-free fallback: batches above the threshold still go
    /// through the chunked batch stage, drained by [`ChunkIter`] on the
    /// calling thread.
    pub fn sequential() -> Self {
        Self {
            workers: 1,
            min_batch: DEFAULT_MIN_BATCH,
            unit_target: DEFAULT_UNIT_TARGET,
            executor: None,
        }
    }

    /// Overrides the work threshold (in stamps) above which an arc's
    /// stamping is published as a batch. The property tests set `1` to
    /// force every arc through the assisted stage.
    pub fn with_min_batch(mut self, min_batch: usize) -> Self {
        self.min_batch = min_batch.max(1);
        self
    }

    /// Overrides the target number of stamps per work unit (smaller units
    /// mean more claims and more contention — useful for stress tests).
    pub fn with_unit_target(mut self, unit_target: usize) -> Self {
        self.unit_target = unit_target.max(1);
        self
    }

    /// Number of concurrent pullers this assist may use.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// True if an arc stamping `work` pairs should go through the batch
    /// stage. With an executor attached but only one worker, batching buys
    /// nothing — no helper will ever pull a unit — so the arc stays on the
    /// plain inline loops and a 1-thread assisted freeze costs exactly what
    /// the sequential freeze costs. Executor-free assists keep batching:
    /// that configuration exists precisely to exercise the [`ChunkIter`]
    /// fallback stage.
    pub(crate) fn should_assist(&self, work: usize) -> bool {
        (self.workers > 1 || self.executor.is_none()) && work >= self.min_batch
    }

    /// Splits `targets` stamps into work units of roughly `unit_target`
    /// stamps each, capped at `cap` units.
    pub(crate) fn unit_count(&self, targets: usize, cap: usize) -> usize {
        targets.div_ceil(self.unit_target).clamp(1, cap.max(1))
    }

    /// Runs `run_unit(u)` once for every `u in 0..n_units`: concurrently
    /// via the executor and the shared [`ChunkIndex`] when one is attached
    /// (units are claimed one at a time — each unit is already a batch),
    /// via the pull-based [`ChunkIter`] otherwise.
    pub(crate) fn dispatch(&self, n_units: usize, run_unit: &(impl Fn(usize) + Sync)) {
        let _dispatch = futurerd_obs::Span::enter(futurerd_obs::names::FREEZE_ASSIST_DISPATCH);
        match self.executor {
            Some(executor) if self.workers > 1 && n_units > 1 => {
                let index = ChunkIndex::new(n_units, 1);
                let helpers = self.workers.min(n_units) - 1;
                executor.assist(helpers, &|| {
                    let span = futurerd_obs::Span::enter(futurerd_obs::names::FREEZE_ASSIST_STAMP);
                    let mut claimed: u64 = 0;
                    while let Some(range) = index.claim() {
                        claimed += range.len() as u64;
                        for unit in range {
                            run_unit(unit);
                        }
                    }
                    drop(span);
                    if claimed > 0 && futurerd_obs::enabled() {
                        futurerd_obs::counter_add(
                            &format!("freeze.assist.units.{}", futurerd_obs::thread_label()),
                            claimed,
                        );
                    }
                });
                if futurerd_obs::enabled() {
                    futurerd_obs::counter_add(futurerd_obs::names::FREEZE_ASSIST_BATCHES, 1);
                    futurerd_obs::counter_add(
                        futurerd_obs::names::FREEZE_ASSIST_INDEX_MISSES,
                        index.misses(),
                    );
                }
            }
            _ => {
                let span = futurerd_obs::Span::enter(futurerd_obs::names::FREEZE_ASSIST_STAMP);
                for range in ChunkIter::new(n_units, 1) {
                    for unit in range {
                        run_unit(unit);
                    }
                }
                drop(span);
                if futurerd_obs::enabled() {
                    futurerd_obs::counter_add(futurerd_obs::names::FREEZE_ASSIST_BATCHES, 1);
                    futurerd_obs::counter_add(
                        &format!("freeze.assist.units.{}", futurerd_obs::thread_label()),
                        n_units as u64,
                    );
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::super::StdExecutor;
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use std::sync::Mutex;

    #[test]
    fn chunk_iter_yields_every_unit_once_in_order() {
        let ranges: Vec<Range<usize>> = ChunkIter::new(10, 3).collect();
        assert_eq!(ranges, vec![0..3, 3..6, 6..9, 9..10]);
        assert!(ChunkIter::new(0, 4).next().is_none());
        // Chunk larger than the unit count: one full range.
        assert_eq!(ChunkIter::new(3, 64).collect::<Vec<_>>(), vec![0..3]);
    }

    #[test]
    fn chunk_index_single_thread_matches_the_iterator() {
        let index = ChunkIndex::new(10, 3);
        let mut claimed = Vec::new();
        while let Some(range) = index.claim() {
            claimed.push(range);
        }
        assert_eq!(claimed, ChunkIter::new(10, 3).collect::<Vec<_>>());
        // Drained stays drained.
        assert!(index.claim().is_none());
    }

    /// The scheduler's core guarantee: under thread contention every unit
    /// is claimed exactly once — no range claimed twice, no range dropped.
    #[test]
    fn chunk_index_claims_are_exact_under_contention() {
        let mut rng = StdRng::seed_from_u64(0xc1a1);
        for trial in 0..20 {
            let threads = [2, 3, 4, 8][trial % 4];
            let len = rng.gen_range(1..5_000);
            let chunk = rng.gen_range(1..64);
            let index = ChunkIndex::new(len, chunk);
            let mut per_thread: Vec<Vec<Range<usize>>> = vec![Vec::new(); threads];
            std::thread::scope(|scope| {
                for claimed in per_thread.iter_mut() {
                    scope.spawn(|| {
                        while let Some(range) = index.claim() {
                            claimed.push(range);
                        }
                    });
                }
            });
            let mut seen = vec![0u32; len];
            for range in per_thread.iter().flatten() {
                assert!(range.end <= len, "claim past the end: {range:?}");
                assert_eq!(range.len().min(chunk), range.len(), "oversized claim");
                for unit in range.clone() {
                    seen[unit] += 1;
                }
            }
            assert!(
                seen.iter().all(|&count| count == 1),
                "trial {trial} (len {len}, chunk {chunk}, {threads} threads): \
                 some unit claimed {:?} times",
                seen.iter().copied().filter(|&c| c != 1).collect::<Vec<_>>()
            );
        }
    }

    #[test]
    fn std_executor_assist_runs_every_copy_and_the_coordinator() {
        let hits = Mutex::new(Vec::new());
        let body = || {
            hits.lock().unwrap().push(std::thread::current().id());
        };
        StdExecutor.assist(3, &body);
        let hits = hits.into_inner().unwrap();
        assert_eq!(hits.len(), 4, "3 helpers + the coordinator");
        assert!(
            hits.contains(&std::thread::current().id()),
            "the coordinator must participate"
        );
    }

    #[test]
    fn dispatch_without_executor_uses_the_pull_iterator() {
        let assist = FreezeAssist::sequential().with_unit_target(1);
        let hit = Mutex::new(vec![0u32; 7]);
        assist.dispatch(7, &|unit| hit.lock().unwrap()[unit] += 1);
        assert!(hit.into_inner().unwrap().iter().all(|&c| c == 1));
    }

    #[test]
    fn dispatch_with_executor_runs_every_unit_exactly_once() {
        let assist = FreezeAssist::new(4, &StdExecutor).with_unit_target(1);
        let hit = Mutex::new(vec![0u32; 100]);
        assist.dispatch(100, &|unit| hit.lock().unwrap()[unit] += 1);
        assert!(hit.into_inner().unwrap().iter().all(|&c| c == 1));
    }

    #[test]
    fn unit_count_respects_target_and_cap() {
        let assist = FreezeAssist::sequential().with_unit_target(10);
        assert_eq!(assist.unit_count(100, 1000), 10);
        assert_eq!(assist.unit_count(5, 1000), 1);
        assert_eq!(assist.unit_count(100, 3), 3);
        assert_eq!(assist.unit_count(0, 1000), 1);
    }
}
