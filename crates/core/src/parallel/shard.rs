//! Pass 2 of the parallel detection engine: shard the granule space, give
//! each worker a private shadow-memory partition, and merge the per-worker
//! race reports deterministically.
//!
//! The access-history protocol of Section 3 is *granule-local*: the shadow
//! state of a granule (last writer, reader list) is read and written only by
//! accesses to that granule, and the state updates do not depend on query
//! answers. With reachability frozen into a shared
//! [`ReachIndex`](super::ReachIndex), detection on disjoint granule ranges
//! is therefore embarrassingly parallel — each worker replays exactly the
//! per-granule access sequence the sequential detector saw, gets exactly the
//! answers the sequential detector got, and thus observes exactly the same
//! races.

use super::freeze::{GranuleAccess, IndexCursor};
use super::ReachIndex;
use crate::races::{AccessKind, Race, RaceReport};
use crate::shadow::AccessHistory;
use futurerd_dag::MemAddr;
use std::collections::HashSet;
use std::ops::Range;

/// A worker's private slice of the detection state: a contiguous granule
/// range, its own shadow-memory table, and the races found so far.
///
/// Built from the same two-level [`AccessHistory`] the sequential detector
/// uses; granule indices stay global, so pages outside the partition's range
/// are simply never allocated.
#[derive(Debug)]
pub struct ShadowPartition {
    range: Range<u64>,
    history: AccessHistory,
    /// Granules already known racy (mirrors the first-witness-per-granule
    /// rule of [`RaceReport::record`]).
    racy: HashSet<u64>,
    /// First witness race per granule, with the trace position of the access
    /// that exposed it (the deterministic merge key).
    witnesses: Vec<(u32, Race)>,
    /// Every racing pair observed, including repeats per granule.
    observations: u64,
}

impl ShadowPartition {
    /// Creates an empty partition owning `range` (half-open, in granules).
    pub fn new(range: Range<u64>) -> Self {
        Self {
            range,
            history: AccessHistory::new(),
            racy: HashSet::new(),
            witnesses: Vec::new(),
            observations: 0,
        }
    }

    /// The granule range this partition owns.
    pub fn range(&self) -> Range<u64> {
        self.range.clone()
    }

    /// True iff this partition owns `granule`.
    pub fn owns(&self, granule: u64) -> bool {
        self.range.contains(&granule)
    }

    /// Number of shadow pages this partition allocated.
    pub fn shadow_pages(&self) -> usize {
        self.history.num_pages()
    }

    /// Racing pairs observed so far (including repeats per granule).
    pub fn observations(&self) -> u64 {
        self.observations
    }

    /// Witness races found so far (one per racy granule, in trace order).
    pub fn witnesses(&self) -> &[(u32, Race)] {
        &self.witnesses
    }

    fn found(&mut self, pos: u32, race: Race) {
        self.observations += 1;
        let granule = race.addr.granule();
        if self.racy.insert(granule) {
            self.witnesses.push((pos, race));
        }
    }

    /// Processes one granule-level access, mirroring the sequential
    /// detector's read/write protocol against the frozen index. Queries go
    /// through the worker's cursor; accesses must arrive in trace order.
    pub(crate) fn apply(
        &mut self,
        index: &ReachIndex,
        cursor: &mut IndexCursor,
        acc: &GranuleAccess,
    ) {
        debug_assert!(self.owns(acc.granule));
        let addr = MemAddr(acc.granule * MemAddr::GRANULARITY);
        // Collect the racing pairs first: the shadow state borrow must end
        // before the witness bookkeeping takes `&mut self` again. The order
        // (writer check, then readers in list order) matches the sequential
        // detector, so the first witness per granule is the same race.
        let mut races: Vec<Race> = Vec::new();
        let state = self.history.get_mut(acc.granule);
        if acc.is_write {
            if let Some(writer) = state.last_writer {
                if !index.precedes_at_cached(cursor, writer, acc.strand, acc.pos) {
                    races.push(Race {
                        addr,
                        prior_strand: writer,
                        prior_kind: AccessKind::Write,
                        current_strand: acc.strand,
                        current_kind: AccessKind::Write,
                    });
                }
            }
            for &reader in &state.readers {
                if !index.precedes_at_cached(cursor, reader, acc.strand, acc.pos) {
                    races.push(Race {
                        addr,
                        prior_strand: reader,
                        prior_kind: AccessKind::Read,
                        current_strand: acc.strand,
                        current_kind: AccessKind::Write,
                    });
                }
            }
            state.readers.clear();
            state.last_writer = Some(acc.strand);
        } else {
            if let Some(writer) = state.last_writer {
                if !index.precedes_at_cached(cursor, writer, acc.strand, acc.pos) {
                    races.push(Race {
                        addr,
                        prior_strand: writer,
                        prior_kind: AccessKind::Write,
                        current_strand: acc.strand,
                        current_kind: AccessKind::Read,
                    });
                }
            }
            // A strand appears once per write epoch, exactly as in the
            // sequential detector.
            if state.readers.last() != Some(&acc.strand) {
                state.readers.push(acc.strand);
            }
        }
        for race in races {
            self.found(acc.pos, race);
        }
    }

    /// Runs this partition's whole slice of the access stream.
    pub(crate) fn run(&mut self, index: &ReachIndex, accesses: &[GranuleAccess]) {
        let mut cursor = index.cursor();
        for acc in accesses {
            self.apply(index, &mut cursor, acc);
        }
    }

    /// Extracts the partition's result (range, witnesses, observation
    /// count) — the unit a persistent detection store caches and merges.
    pub fn into_outcome(self) -> PartitionOutcome {
        PartitionOutcome {
            range: self.range,
            witnesses: self.witnesses,
            observations: self.observations,
        }
    }
}

/// One partition's detection result: its granule range, the first-witness
/// race per racy granule (tagged with the trace position that exposed it)
/// and the total racing pairs observed.
///
/// Outcomes are the exchange format between the engine and
/// `futurerd-store`: a stored outcome for a granule range stays valid as
/// long as no appended event touches a granule in that range, so incremental
/// re-detection merges cached outcomes with freshly recomputed ones.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PartitionOutcome {
    /// The granule range the partition owned (half-open).
    pub range: Range<u64>,
    /// First witness race per racy granule, with the trace position of the
    /// access that exposed it.
    pub witnesses: Vec<(u32, Race)>,
    /// Every racing pair observed, including repeats per granule.
    pub observations: u64,
}

/// Runs detection over one granule range of the access stream against a
/// frozen index, sequentially, and returns the partition's outcome.
/// `accesses` is the **full** stream; accesses outside `range` are skipped.
pub fn run_partition(
    index: &ReachIndex,
    range: Range<u64>,
    accesses: &[GranuleAccess],
) -> PartitionOutcome {
    let mut partition = ShadowPartition::new(range);
    let mut cursor = index.cursor();
    for acc in accesses {
        if partition.owns(acc.granule) {
            partition.apply(index, &mut cursor, acc);
        }
    }
    partition.into_outcome()
}

/// Splits the granule space into at most `parts` contiguous ranges of
/// roughly equal access counts (balanced sharding: partition boundaries
/// follow the access histogram, not the raw address span).
pub fn partition_ranges(accesses: &[GranuleAccess], parts: usize) -> Vec<Range<u64>> {
    let parts = parts.max(1);
    if accesses.is_empty() {
        return Vec::new();
    }
    if parts == 1 {
        // No split point needed: one range covering the touched space.
        let lo = accesses.iter().map(|a| a.granule).min().expect("non-empty");
        let hi = accesses.iter().map(|a| a.granule).max().expect("non-empty");
        return std::iter::once(lo..hi + 1).collect();
    }
    // Sort a granule array once instead of hash/tree counting: the split
    // points are the granules at the access-count quantiles.
    let mut granules: Vec<u64> = accesses.iter().map(|a| a.granule).collect();
    granules.sort_unstable();
    let lo = granules[0];
    let hi = granules[granules.len() - 1] + 1;
    let total = granules.len() as u64;
    let target = total.div_ceil(parts as u64);
    let mut ranges = Vec::with_capacity(parts);
    let mut start = lo;
    let mut taken = 0u64; // accesses already assigned to closed ranges
    let mut i = 0usize;
    while i < granules.len() && ranges.len() + 1 < parts {
        // Walk one whole granule run (a boundary cannot split a granule).
        let granule = granules[i];
        let mut j = i;
        while j < granules.len() && granules[j] == granule {
            j += 1;
        }
        if (j as u64 - taken) >= target {
            ranges.push(start..granule + 1);
            start = granule + 1;
            taken = j as u64;
        }
        i = j;
    }
    if start < hi {
        ranges.push(start..hi);
    }
    debug_assert!(ranges.len() <= parts);
    debug_assert_eq!(ranges.first().map(|r| r.start), Some(lo));
    debug_assert_eq!(ranges.last().map(|r| r.end), Some(hi));
    ranges
}

/// Buckets the access stream by partition, preserving trace order within
/// each bucket. Ranges must be sorted and disjoint (as produced by
/// [`partition_ranges`]).
pub fn bucket_accesses(
    accesses: &[GranuleAccess],
    ranges: &[Range<u64>],
) -> Vec<Vec<GranuleAccess>> {
    if ranges.len() <= 1 {
        return if ranges.is_empty() {
            Vec::new()
        } else {
            vec![accesses.to_vec()]
        };
    }
    let ends: Vec<u64> = ranges.iter().map(|r| r.end).collect();
    let mut buckets: Vec<Vec<GranuleAccess>> = ranges.iter().map(|_| Vec::new()).collect();
    for acc in accesses {
        let idx = ends.partition_point(|&end| end <= acc.granule);
        debug_assert!(ranges[idx].contains(&acc.granule));
        buckets[idx].push(*acc);
    }
    buckets
}

/// Merges per-partition results into one [`RaceReport`] byte-identical to
/// what the sequential detector produced: witnesses are replayed into the
/// report sorted by trace position (tie-broken by granule, the order a
/// single wide access reports its granules in), and the observation total is
/// restored afterwards.
///
/// The merge is *range-agnostic*: any set of outcomes whose ranges cover
/// every touched granule exactly once yields the same report, which is why a
/// store can mix cached outcomes (from an earlier partitioning) with freshly
/// recomputed ones.
pub fn merge_outcomes(outcomes: impl IntoIterator<Item = PartitionOutcome>) -> RaceReport {
    let mut total = 0u64;
    let mut all: Vec<(u32, Race)> = Vec::new();
    for outcome in outcomes {
        total += outcome.observations;
        all.extend(outcome.witnesses);
    }
    all.sort_by_key(|&(pos, race)| (pos, race.addr.granule()));
    let mut report = RaceReport::default();
    let mut recorded = 0u64;
    for (_, race) in all {
        report.record(race);
        recorded += 1;
    }
    report.add_observations(total - recorded);
    report
}

/// Merges finished partitions into one report (see [`merge_outcomes`]).
pub(crate) fn merge_reports(partitions: Vec<ShadowPartition>) -> RaceReport {
    merge_outcomes(partitions.into_iter().map(ShadowPartition::into_outcome))
}

#[cfg(test)]
mod tests {
    use super::*;
    use futurerd_dag::StrandId;

    fn acc(granule: u64, pos: u32, strand: u32, is_write: bool) -> GranuleAccess {
        GranuleAccess {
            granule,
            pos,
            strand: StrandId(strand),
            is_write,
        }
    }

    #[test]
    fn partitioning_balances_by_access_count() {
        // Granule 10 is hot; the split should isolate it rather than halving
        // the address span.
        let mut accesses = Vec::new();
        for pos in 0..90 {
            accesses.push(acc(10, pos, 0, false));
        }
        for (i, pos) in (90..100).enumerate() {
            accesses.push(acc(100 + i as u64, pos, 0, false));
        }
        let ranges = partition_ranges(&accesses, 2);
        assert_eq!(ranges.len(), 2);
        assert_eq!(ranges[0], 10..11);
        assert_eq!(ranges[1], 11..110);
    }

    #[test]
    fn partitioning_covers_the_space_contiguously() {
        let accesses: Vec<_> = (0..64u64).map(|g| acc(g, g as u32, 0, false)).collect();
        for parts in [1, 2, 3, 7, 64, 100] {
            let ranges = partition_ranges(&accesses, parts);
            assert!(!ranges.is_empty() && ranges.len() <= parts);
            assert_eq!(ranges.first().unwrap().start, 0);
            assert_eq!(ranges.last().unwrap().end, 64);
            for pair in ranges.windows(2) {
                assert_eq!(pair[0].end, pair[1].start, "gap at {pair:?}");
            }
        }
    }

    #[test]
    fn empty_access_stream_yields_no_partitions() {
        assert!(partition_ranges(&[], 4).is_empty());
    }

    #[test]
    fn buckets_preserve_trace_order() {
        let accesses = vec![
            acc(5, 0, 0, true),
            acc(50, 1, 0, true),
            acc(5, 2, 1, false),
            acc(50, 3, 1, false),
        ];
        let ranges = vec![0..10, 10..60];
        let buckets = bucket_accesses(&accesses, &ranges);
        assert_eq!(buckets[0].iter().map(|a| a.pos).collect::<Vec<_>>(), [0, 2]);
        assert_eq!(buckets[1].iter().map(|a| a.pos).collect::<Vec<_>>(), [1, 3]);
    }

    #[test]
    fn partition_tracks_first_witness_per_granule() {
        let mut p = ShadowPartition::new(0..100);
        assert!(p.owns(5) && !p.owns(100));
        let race = Race {
            addr: MemAddr(5 * MemAddr::GRANULARITY),
            prior_strand: StrandId(1),
            prior_kind: AccessKind::Write,
            current_strand: StrandId(2),
            current_kind: AccessKind::Read,
        };
        p.found(7, race);
        p.found(9, race);
        assert_eq!(p.observations(), 2);
        assert_eq!(p.witnesses().len(), 1);
        assert_eq!(p.witnesses()[0].0, 7);
    }

    #[test]
    fn merge_restores_observation_totals() {
        let mut a = ShadowPartition::new(0..10);
        let mut b = ShadowPartition::new(10..20);
        let race_a = Race {
            addr: MemAddr(4),
            prior_strand: StrandId(1),
            prior_kind: AccessKind::Write,
            current_strand: StrandId(2),
            current_kind: AccessKind::Read,
        };
        let race_b = Race {
            addr: MemAddr(15 * MemAddr::GRANULARITY),
            prior_strand: StrandId(3),
            prior_kind: AccessKind::Read,
            current_strand: StrandId(4),
            current_kind: AccessKind::Write,
        };
        b.found(2, race_b);
        a.found(5, race_a);
        a.found(6, race_a);
        let report = merge_reports(vec![a, b]);
        assert_eq!(report.race_count(), 2);
        assert_eq!(report.total_observations(), 3);
        // Sorted by position: the partition-b race comes first.
        assert_eq!(report.witnesses()[0], race_b);
        assert_eq!(report.witnesses()[1], race_a);
    }
}
