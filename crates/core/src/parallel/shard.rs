//! Pass 2 of the parallel detection engine: shard the granule space, give
//! each worker a private shadow-memory partition, and merge the per-worker
//! race reports deterministically.
//!
//! The access-history protocol of Section 3 is *granule-local*: the shadow
//! state of a granule (last writer, reader list) is read and written only by
//! accesses to that granule, and the state updates do not depend on query
//! answers. With reachability frozen into a shared
//! [`ReachIndex`](super::ReachIndex), detection on disjoint granule ranges
//! is therefore embarrassingly parallel — each worker replays exactly the
//! per-granule access sequence the sequential detector saw, gets exactly the
//! answers the sequential detector got, and thus observes exactly the same
//! races.

use super::freeze::{GranuleAccess, IndexCursor};
use super::{DetectExecutor, ReachIndex};
use crate::races::{AccessKind, Race, RaceReport};
use crate::shadow::AccessHistory;
use crate::stats::DetectorStats;
use futurerd_dag::MemAddr;
use std::collections::HashSet;
use std::ops::Range;

/// A worker's private slice of the detection state: a contiguous granule
/// range, its own shadow-memory table, and the races found so far.
///
/// Built from the same two-level [`AccessHistory`] the sequential detector
/// uses; granule indices stay global, so pages outside the partition's range
/// are simply never allocated.
#[derive(Debug)]
pub struct ShadowPartition {
    range: Range<u64>,
    history: AccessHistory,
    /// Granules already known racy (mirrors the first-witness-per-granule
    /// rule of [`RaceReport::record`]).
    racy: HashSet<u64>,
    /// First witness race per granule, with the trace position of the access
    /// that exposed it (the deterministic merge key).
    witnesses: Vec<(u32, Race)>,
    /// Every racing pair observed, including repeats per granule.
    observations: u64,
}

impl ShadowPartition {
    /// Creates an empty partition owning `range` (half-open, in granules).
    pub fn new(range: Range<u64>) -> Self {
        Self {
            range,
            history: AccessHistory::new(),
            racy: HashSet::new(),
            witnesses: Vec::new(),
            observations: 0,
        }
    }

    /// The granule range this partition owns.
    pub fn range(&self) -> Range<u64> {
        self.range.clone()
    }

    /// True iff this partition owns `granule`.
    pub fn owns(&self, granule: u64) -> bool {
        self.range.contains(&granule)
    }

    /// Number of shadow pages this partition allocated.
    pub fn shadow_pages(&self) -> usize {
        self.history.num_pages()
    }

    /// Racing pairs observed so far (including repeats per granule).
    pub fn observations(&self) -> u64 {
        self.observations
    }

    /// Witness races found so far (one per racy granule, in trace order).
    pub fn witnesses(&self) -> &[(u32, Race)] {
        &self.witnesses
    }

    fn found(&mut self, pos: u32, race: Race) {
        self.observations += 1;
        let granule = race.addr.granule();
        if self.racy.insert(granule) {
            self.witnesses.push((pos, race));
        }
    }

    /// Processes one granule-level access, mirroring the sequential
    /// detector's read/write protocol against the frozen index. Queries go
    /// through the worker's cursor; accesses must arrive in trace order.
    pub(crate) fn apply(
        &mut self,
        index: &ReachIndex,
        cursor: &mut IndexCursor,
        acc: &GranuleAccess,
    ) {
        debug_assert!(self.owns(acc.granule));
        let addr = MemAddr(acc.granule * MemAddr::GRANULARITY);
        // Collect the racing pairs first: the shadow state borrow must end
        // before the witness bookkeeping takes `&mut self` again. The order
        // (writer check, then readers in list order) matches the sequential
        // detector, so the first witness per granule is the same race.
        let mut races: Vec<Race> = Vec::new();
        // Access-history counters accumulate in locals while the shadow
        // state is borrowed, then fold into the partition's stats — the
        // same quantities the sequential detector counts, so summing them
        // across partitions reproduces its totals (minus `shadow_pages`,
        // which is per-partition table occupancy).
        let mut readers_recorded = 0u64;
        let mut readers_cleared = 0u64;
        let state = self.history.get_mut(acc.granule);
        if acc.is_write {
            if let Some(writer) = state.last_writer {
                if !index.precedes_at_cached(cursor, writer, acc.strand, acc.pos) {
                    races.push(Race {
                        addr,
                        prior_strand: writer,
                        prior_kind: AccessKind::Write,
                        current_strand: acc.strand,
                        current_kind: AccessKind::Write,
                    });
                }
            }
            for &reader in &state.readers {
                if !index.precedes_at_cached(cursor, reader, acc.strand, acc.pos) {
                    races.push(Race {
                        addr,
                        prior_strand: reader,
                        prior_kind: AccessKind::Read,
                        current_strand: acc.strand,
                        current_kind: AccessKind::Write,
                    });
                }
            }
            readers_cleared = state.readers.len() as u64;
            state.readers.clear();
            state.last_writer = Some(acc.strand);
        } else {
            if let Some(writer) = state.last_writer {
                if !index.precedes_at_cached(cursor, writer, acc.strand, acc.pos) {
                    races.push(Race {
                        addr,
                        prior_strand: writer,
                        prior_kind: AccessKind::Write,
                        current_strand: acc.strand,
                        current_kind: AccessKind::Read,
                    });
                }
            }
            // A strand appears once per write epoch, exactly as in the
            // sequential detector.
            if state.readers.last() != Some(&acc.strand) {
                state.readers.push(acc.strand);
                readers_recorded = 1;
            }
        }
        let stats = self.history.stats_mut();
        if acc.is_write {
            stats.write_checks += 1;
        } else {
            stats.read_checks += 1;
        }
        stats.readers_recorded += readers_recorded;
        stats.readers_cleared += readers_cleared;
        stats.races_found += races.len() as u64;
        for race in races {
            self.found(acc.pos, race);
        }
    }

    /// Runs this partition's whole slice of the access stream.
    pub(crate) fn run(&mut self, index: &ReachIndex, accesses: &[GranuleAccess]) {
        let mut cursor = index.cursor();
        for acc in accesses {
            self.apply(index, &mut cursor, acc);
        }
    }

    /// Access-history counters accumulated so far (the partition's share of
    /// the sequential detector's [`DetectorStats`]).
    pub fn stats(&self) -> DetectorStats {
        self.history.stats()
    }

    /// Extracts the partition's result (range, witnesses, observation
    /// count, access-history counters) — the unit a persistent detection
    /// store caches and merges.
    pub fn into_outcome(self) -> PartitionOutcome {
        PartitionOutcome {
            range: self.range,
            witnesses: self.witnesses,
            observations: self.observations,
            stats: self.history.stats(),
        }
    }
}

/// One partition's detection result: its granule range, the first-witness
/// race per racy granule (tagged with the trace position that exposed it)
/// and the total racing pairs observed.
///
/// Outcomes are the exchange format between the engine and
/// `futurerd-store`: a stored outcome for a granule range stays valid as
/// long as no appended event touches a granule in that range, so incremental
/// re-detection merges cached outcomes with freshly recomputed ones.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PartitionOutcome {
    /// The granule range the partition owned (half-open).
    pub range: Range<u64>,
    /// First witness race per racy granule, with the trace position of the
    /// access that exposed it.
    pub witnesses: Vec<(u32, Race)>,
    /// Every racing pair observed, including repeats per granule.
    pub observations: u64,
    /// The partition's access-history counters. `read_checks +
    /// write_checks` is the number of granule accesses this partition
    /// processed — the load figure incremental re-balancing steers by.
    pub stats: DetectorStats,
}

/// Runs detection over one granule range of the access stream against a
/// frozen index, sequentially, and returns the partition's outcome.
/// `accesses` is the **full** stream; accesses outside `range` are skipped.
pub fn run_partition(
    index: &ReachIndex,
    range: Range<u64>,
    accesses: &[GranuleAccess],
) -> PartitionOutcome {
    let mut partition = ShadowPartition::new(range);
    let mut cursor = index.cursor();
    for acc in accesses {
        if partition.owns(acc.granule) {
            partition.apply(index, &mut cursor, acc);
        }
    }
    partition.into_outcome()
}

/// Splits the granule space into at most `parts` contiguous ranges of
/// roughly equal access counts (balanced sharding: partition boundaries
/// follow the access histogram, not the raw address span).
pub fn partition_ranges(accesses: &[GranuleAccess], parts: usize) -> Vec<Range<u64>> {
    let parts = parts.max(1);
    if accesses.is_empty() {
        return Vec::new();
    }
    if parts == 1 {
        // No split point needed: one range covering the touched space.
        let lo = accesses.iter().map(|a| a.granule).min().expect("non-empty");
        let hi = accesses.iter().map(|a| a.granule).max().expect("non-empty");
        return std::iter::once(lo..hi + 1).collect();
    }
    // Sort a granule array once instead of hash/tree counting: the split
    // points are the granules at the access-count quantiles.
    let mut granules: Vec<u64> = accesses.iter().map(|a| a.granule).collect();
    granules.sort_unstable();
    let lo = granules[0];
    let hi = granules[granules.len() - 1] + 1;
    let total = granules.len() as u64;
    let target = total.div_ceil(parts as u64);
    let mut ranges = Vec::with_capacity(parts);
    let mut start = lo;
    let mut taken = 0u64; // accesses already assigned to closed ranges
    let mut i = 0usize;
    while i < granules.len() && ranges.len() + 1 < parts {
        // Walk one whole granule run (a boundary cannot split a granule).
        let granule = granules[i];
        let mut j = i;
        while j < granules.len() && granules[j] == granule {
            j += 1;
        }
        if (j as u64 - taken) >= target {
            ranges.push(start..granule + 1);
            start = granule + 1;
            taken = j as u64;
        }
        i = j;
    }
    if start < hi {
        ranges.push(start..hi);
    }
    debug_assert!(ranges.len() <= parts);
    debug_assert_eq!(ranges.first().map(|r| r.start), Some(lo));
    debug_assert_eq!(ranges.last().map(|r| r.end), Some(hi));
    ranges
}

/// Buckets the access stream by partition, preserving trace order within
/// each bucket. Ranges must be sorted and disjoint (as produced by
/// [`partition_ranges`]).
pub fn bucket_accesses(
    accesses: &[GranuleAccess],
    ranges: &[Range<u64>],
) -> Vec<Vec<GranuleAccess>> {
    if ranges.len() <= 1 {
        return if ranges.is_empty() {
            Vec::new()
        } else {
            vec![accesses.to_vec()]
        };
    }
    let ends: Vec<u64> = ranges.iter().map(|r| r.end).collect();
    let mut buckets: Vec<Vec<GranuleAccess>> = ranges.iter().map(|_| Vec::new()).collect();
    for acc in accesses {
        let idx = ends.partition_point(|&end| end <= acc.granule);
        debug_assert!(ranges[idx].contains(&acc.granule));
        buckets[idx].push(*acc);
    }
    buckets
}

/// Merges per-partition results into one [`RaceReport`] byte-identical to
/// what the sequential detector produced: witnesses are replayed into the
/// report sorted by trace position (tie-broken by granule, the order a
/// single wide access reports its granules in), and the observation total is
/// restored afterwards.
///
/// The merge is *range-agnostic*: any set of outcomes whose ranges cover
/// every touched granule exactly once yields the same report, which is why a
/// store can mix cached outcomes (from an earlier partitioning) with freshly
/// recomputed ones.
pub fn merge_outcomes(outcomes: impl IntoIterator<Item = PartitionOutcome>) -> RaceReport {
    merge_outcomes_stats(outcomes).0
}

/// As [`merge_outcomes`], but also sums the per-partition access-history
/// counters into one [`DetectorStats`] — what a multi-threaded detection
/// reports instead of dropping the counters.
///
/// The summed counters equal the sequential detector's on every field
/// except `shadow_pages`: pages are per-partition tables, so a page whose
/// granules straddle a partition boundary is counted once per partition
/// that touched it.
pub fn merge_outcomes_stats(
    outcomes: impl IntoIterator<Item = PartitionOutcome>,
) -> (RaceReport, DetectorStats) {
    let _span = futurerd_obs::Span::enter(futurerd_obs::names::MERGE);
    let mut total = 0u64;
    let mut stats = DetectorStats::default();
    let mut all: Vec<(u32, Race)> = Vec::new();
    for outcome in outcomes {
        total += outcome.observations;
        let s = &outcome.stats;
        stats.read_checks += s.read_checks;
        stats.write_checks += s.write_checks;
        stats.readers_recorded += s.readers_recorded;
        stats.readers_cleared += s.readers_cleared;
        stats.races_found += s.races_found;
        stats.shadow_pages += s.shadow_pages;
        all.extend(outcome.witnesses);
    }
    all.sort_by_key(|&(pos, race)| (pos, race.addr.granule()));
    let mut report = RaceReport::default();
    let mut recorded = 0u64;
    for (_, race) in all {
        report.record(race);
        recorded += 1;
    }
    report.add_observations(total - recorded);
    (report, stats)
}

/// Re-balancing trigger for incremental pass 2: re-partition when the most
/// loaded stored range carries more than this many times its fair share of
/// the (grown) access stream.
pub const REBALANCE_DRIFT_FACTOR: u64 = 2;

/// The result of [`incremental_outcomes`]: the merged-ready outcome set
/// plus how it was assembled.
#[derive(Debug, Clone)]
pub struct IncrementalOutcomes {
    /// One outcome per partition, in granule order (cached ones reused
    /// verbatim, touched ones recomputed).
    pub outcomes: Vec<PartitionOutcome>,
    /// Partitions recomputed because the appended suffix touched their
    /// granules (or because their range changed in a re-balance).
    pub rerun: usize,
    /// Partitions whose cached outcomes were reused verbatim.
    pub reused: usize,
    /// True if the access histogram drifted past
    /// [`REBALANCE_DRIFT_FACTOR`] and the partition ranges were recomputed
    /// from the full stream.
    pub rebalanced: bool,
}

/// Incremental pass 2: given the cached outcomes of a previous detection
/// and the accesses appended since, re-runs only partitions whose granule
/// range the suffix touched and reuses the rest verbatim. Boundary ranges
/// are widened to absorb granules outside the old coverage.
///
/// Long append chains unbalance a partitioning that was computed for a
/// younger trace: appends concentrated on a few granules pile work onto one
/// partition until the P-way speedup collapses. Each call therefore checks
/// the access histogram against the stored ranges — using the per-outcome
/// check counters, so no pass over the full stream is needed — and once the
/// most loaded range exceeds [`REBALANCE_DRIFT_FACTOR`] times its fair
/// share, re-partitions from the full stream ([`partition_ranges`]) and
/// recomputes whatever the new boundaries invalidate. Cached outcomes whose
/// exact range survives a re-balance untouched are still reused: the merge
/// is range-agnostic.
///
/// Re-runs replay their range over the **full** access stream (shadow state
/// must be rebuilt from the beginning), in parallel on `executor`.
pub fn incremental_outcomes(
    index: &ReachIndex,
    accesses: &[GranuleAccess],
    fresh: &[GranuleAccess],
    stored: Vec<PartitionOutcome>,
    parts: usize,
    executor: &impl DetectExecutor,
) -> IncrementalOutcomes {
    let _span = futurerd_obs::Span::enter(futurerd_obs::names::DETECT);
    if fresh.is_empty() || stored.is_empty() {
        let reused = stored.len();
        return IncrementalOutcomes {
            outcomes: stored,
            rerun: 0,
            reused,
            rebalanced: false,
        };
    }
    // Widen the boundary ranges so appended granules outside the old
    // coverage belong somewhere (widening implies the range is touched, so
    // it is recomputed below either way).
    let mut ranges: Vec<Range<u64>> = stored.iter().map(|o| o.range.clone()).collect();
    let min_new = fresh.iter().map(|a| a.granule).min().expect("non-empty");
    let max_new = fresh.iter().map(|a| a.granule).max().expect("non-empty");
    if let Some(first) = ranges.first_mut() {
        first.start = first.start.min(min_new);
    }
    if let Some(last) = ranges.last_mut() {
        last.end = last.end.max(max_new + 1);
    }

    // Bin the suffix into the (widened) stored ranges once — the same pass
    // feeds the drift check (per-range load = the accesses the cached
    // detection processed, via its check counters, plus this suffix's
    // share) and the touched test below.
    let bin = |ranges: &[Range<u64>], fresh: &[GranuleAccess]| -> Vec<u64> {
        let ends: Vec<u64> = ranges.iter().map(|r| r.end).collect();
        let mut counts = vec![0u64; ranges.len()];
        let last = counts.len() - 1;
        for acc in fresh {
            let idx = ends.partition_point(|&end| end <= acc.granule);
            counts[idx.min(last)] += 1;
        }
        counts
    };
    let mut fresh_counts = bin(&ranges, fresh);
    let total: u64 = fresh_counts
        .iter()
        .zip(&stored)
        .map(|(f, o)| f + o.stats.read_checks + o.stats.write_checks)
        .sum();
    let max_load = fresh_counts
        .iter()
        .zip(&stored)
        .map(|(f, o)| f + o.stats.read_checks + o.stats.write_checks)
        .max()
        .unwrap_or(0);
    let drifted = parts > 1
        && ranges.len() > 1
        && max_load * (ranges.len() as u64) > REBALANCE_DRIFT_FACTOR * total;

    let (target, rebalanced) = if drifted {
        let fresh_ranges = partition_ranges(accesses, parts);
        let rebalanced = fresh_ranges != ranges;
        if rebalanced {
            // The touched test below is per *target* range: re-bin once.
            fresh_counts = bin(&fresh_ranges, fresh);
        }
        (fresh_ranges, rebalanced)
    } else {
        (ranges, false)
    };

    // A cached outcome survives iff its exact range reappears in the target
    // partitioning and the suffix did not touch it.
    let by_range: std::collections::HashMap<(u64, u64), &PartitionOutcome> = stored
        .iter()
        .map(|o| ((o.range.start, o.range.end), o))
        .collect();
    let mut outcomes: Vec<Option<PartitionOutcome>> = target
        .iter()
        .zip(&fresh_counts)
        .map(|(r, &fresh_in_range)| {
            if fresh_in_range == 0 {
                by_range.get(&(r.start, r.end)).map(|&o| o.clone())
            } else {
                None
            }
        })
        .collect();

    let rerun_ranges: Vec<(usize, Range<u64>)> = outcomes
        .iter()
        .enumerate()
        .filter(|(_, o)| o.is_none())
        .map(|(i, _)| (i, target[i].clone()))
        .collect();
    let rerun = rerun_ranges.len();
    let reused = target.len() - rerun;
    let mut slots: Vec<Option<PartitionOutcome>> = vec![None; rerun];
    let tasks: Vec<Box<dyn FnOnce() + Send + '_>> = slots
        .iter_mut()
        .zip(&rerun_ranges)
        .map(|(slot, (_, range))| {
            let range = range.clone();
            Box::new(move || {
                let _task = futurerd_obs::Span::enter(futurerd_obs::names::DETECT_PARTITION);
                *slot = Some(run_partition(index, range, accesses))
            }) as Box<dyn FnOnce() + Send + '_>
        })
        .collect();
    executor.run_batch(tasks);
    for ((i, _), slot) in rerun_ranges.into_iter().zip(slots) {
        outcomes[i] = Some(slot.expect("partition task ran"));
    }
    IncrementalOutcomes {
        outcomes: outcomes
            .into_iter()
            .map(|o| o.expect("every slot filled"))
            .collect(),
        rerun,
        reused,
        rebalanced,
    }
}

/// Merges finished partitions into one report (see [`merge_outcomes`]).
pub(crate) fn merge_reports(partitions: Vec<ShadowPartition>) -> RaceReport {
    merge_outcomes(partitions.into_iter().map(ShadowPartition::into_outcome))
}

#[cfg(test)]
mod tests {
    use super::*;
    use futurerd_dag::StrandId;

    fn acc(granule: u64, pos: u32, strand: u32, is_write: bool) -> GranuleAccess {
        GranuleAccess {
            granule,
            pos,
            strand: StrandId(strand),
            is_write,
        }
    }

    #[test]
    fn partitioning_balances_by_access_count() {
        // Granule 10 is hot; the split should isolate it rather than halving
        // the address span.
        let mut accesses = Vec::new();
        for pos in 0..90 {
            accesses.push(acc(10, pos, 0, false));
        }
        for (i, pos) in (90..100).enumerate() {
            accesses.push(acc(100 + i as u64, pos, 0, false));
        }
        let ranges = partition_ranges(&accesses, 2);
        assert_eq!(ranges.len(), 2);
        assert_eq!(ranges[0], 10..11);
        assert_eq!(ranges[1], 11..110);
    }

    #[test]
    fn partitioning_covers_the_space_contiguously() {
        let accesses: Vec<_> = (0..64u64).map(|g| acc(g, g as u32, 0, false)).collect();
        for parts in [1, 2, 3, 7, 64, 100] {
            let ranges = partition_ranges(&accesses, parts);
            assert!(!ranges.is_empty() && ranges.len() <= parts);
            assert_eq!(ranges.first().unwrap().start, 0);
            assert_eq!(ranges.last().unwrap().end, 64);
            for pair in ranges.windows(2) {
                assert_eq!(pair[0].end, pair[1].start, "gap at {pair:?}");
            }
        }
    }

    #[test]
    fn empty_access_stream_yields_no_partitions() {
        assert!(partition_ranges(&[], 4).is_empty());
    }

    #[test]
    fn buckets_preserve_trace_order() {
        let accesses = vec![
            acc(5, 0, 0, true),
            acc(50, 1, 0, true),
            acc(5, 2, 1, false),
            acc(50, 3, 1, false),
        ];
        let ranges = vec![0..10, 10..60];
        let buckets = bucket_accesses(&accesses, &ranges);
        assert_eq!(buckets[0].iter().map(|a| a.pos).collect::<Vec<_>>(), [0, 2]);
        assert_eq!(buckets[1].iter().map(|a| a.pos).collect::<Vec<_>>(), [1, 3]);
    }

    #[test]
    fn partition_tracks_first_witness_per_granule() {
        let mut p = ShadowPartition::new(0..100);
        assert!(p.owns(5) && !p.owns(100));
        let race = Race {
            addr: MemAddr(5 * MemAddr::GRANULARITY),
            prior_strand: StrandId(1),
            prior_kind: AccessKind::Write,
            current_strand: StrandId(2),
            current_kind: AccessKind::Read,
        };
        p.found(7, race);
        p.found(9, race);
        assert_eq!(p.observations(), 2);
        assert_eq!(p.witnesses().len(), 1);
        assert_eq!(p.witnesses()[0].0, 7);
    }

    #[test]
    fn merge_restores_observation_totals() {
        let mut a = ShadowPartition::new(0..10);
        let mut b = ShadowPartition::new(10..20);
        let race_a = Race {
            addr: MemAddr(4),
            prior_strand: StrandId(1),
            prior_kind: AccessKind::Write,
            current_strand: StrandId(2),
            current_kind: AccessKind::Read,
        };
        let race_b = Race {
            addr: MemAddr(15 * MemAddr::GRANULARITY),
            prior_strand: StrandId(3),
            prior_kind: AccessKind::Read,
            current_strand: StrandId(4),
            current_kind: AccessKind::Write,
        };
        b.found(2, race_b);
        a.found(5, race_a);
        a.found(6, race_a);
        let report = merge_reports(vec![a, b]);
        assert_eq!(report.race_count(), 2);
        assert_eq!(report.total_observations(), 3);
        // Sorted by position: the partition-b race comes first.
        assert_eq!(report.witnesses()[0], race_b);
        assert_eq!(report.witnesses()[1], race_a);
    }
}
