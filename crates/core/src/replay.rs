//! Offline detection: replay a recorded [`Trace`] through the detectors.
//!
//! Recording decouples *running* a program from *detecting* on it: a trace
//! captured once (see `futurerd-runtime::trace`) can be replayed through
//! every reachability algorithm, repeatedly, without re-executing the
//! workload. Because the detectors are plain [`Observer`]s, replay is just
//! feeding the stored events back in order — but the detectors' amortized
//! bounds and correctness assume the canonical serial-DF event discipline,
//! so every entry point here validates the trace first.
//!
//! [`differential`] is the cross-checking driver: it replays one trace
//! through every algorithm that is *sound* for that trace (SP-Bags only
//! handles fork-join streams; MultiBags requires single-touch futures) and
//! reports any verdict that disagrees with the ground-truth graph oracle.

use crate::detector::RaceDetector;
use crate::races::RaceReport;
use crate::reachability::{GraphOracle, MultiBags, MultiBagsPlus, SpBags, SpBagsConservative};
use futurerd_dag::trace::{Trace, TraceError};
use futurerd_dag::Observer;

/// The reachability algorithms a trace can be replayed through.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ReplayAlgorithm {
    /// MultiBags (Section 4) — sound for structured (single-touch) futures.
    MultiBags,
    /// MultiBags+ (Section 5) — sound for general futures.
    MultiBagsPlus,
    /// The SP-Bags baseline — sound for pure fork-join streams only.
    SpBags,
    /// SP-Bags with the conservative futures fallback: `create_fut` is
    /// treated as `spawn` and `get_fut` as `sync`, so it runs on any stream
    /// but its verdict on futures traces is approximate (the report is
    /// [marked](RaceReport::is_approximate)). Lets [`differential`] quantify
    /// the fork-join baseline's error on futures programs.
    SpBagsConservative,
    /// The ground-truth transitive-closure oracle — sound for everything,
    /// quadratic space.
    GraphOracle,
}

impl ReplayAlgorithm {
    /// Every algorithm, in comparison order.
    pub const ALL: [ReplayAlgorithm; 5] = [
        ReplayAlgorithm::MultiBags,
        ReplayAlgorithm::MultiBagsPlus,
        ReplayAlgorithm::SpBags,
        ReplayAlgorithm::SpBagsConservative,
        ReplayAlgorithm::GraphOracle,
    ];

    /// Short display name.
    pub fn name(self) -> &'static str {
        match self {
            ReplayAlgorithm::MultiBags => "multibags",
            ReplayAlgorithm::MultiBagsPlus => "multibags+",
            ReplayAlgorithm::SpBags => "spbags",
            ReplayAlgorithm::SpBagsConservative => "spbags-cons",
            ReplayAlgorithm::GraphOracle => "oracle",
        }
    }

    /// Parses a CLI-style name (as produced by [`ReplayAlgorithm::name`]).
    pub fn parse(name: &str) -> Option<Self> {
        Some(match name {
            "multibags" | "mb" => ReplayAlgorithm::MultiBags,
            "multibags+" | "mbp" | "multibagsplus" => ReplayAlgorithm::MultiBagsPlus,
            "spbags" | "sp" => ReplayAlgorithm::SpBags,
            "spbags-cons" | "spc" | "spbagsconservative" => ReplayAlgorithm::SpBagsConservative,
            "oracle" | "graph" => ReplayAlgorithm::GraphOracle,
            _ => return None,
        })
    }

    /// True if the algorithm's race verdict is trustworthy for this trace.
    /// Unsound-but-runnable combinations (MultiBags outside the structured
    /// regime — a multi-touch handle, or a single-touch handle escaping its
    /// creating task's scope — and conservative SP-Bags on any futures
    /// trace) still replay, but may report false positives, so
    /// [`differential`] excludes them from agreement checks and quantifies
    /// their error instead.
    pub fn sound_for(self, trace: &Trace) -> bool {
        match self {
            ReplayAlgorithm::MultiBags => trace.is_structured(),
            ReplayAlgorithm::MultiBagsPlus | ReplayAlgorithm::GraphOracle => true,
            ReplayAlgorithm::SpBags | ReplayAlgorithm::SpBagsConservative => !trace.has_futures(),
        }
    }

    /// True if the algorithm can consume this trace at all. SP-Bags aborts
    /// on future constructs (it has no transition for them); everything else
    /// — including its conservative fallback — accepts any canonical stream.
    pub fn runnable_for(self, trace: &Trace) -> bool {
        match self {
            ReplayAlgorithm::SpBags => !trace.has_futures(),
            _ => true,
        }
    }

    /// True if the algorithm has a frozen reachability form, i.e.
    /// [`par_replay_detect`](crate::parallel::par_replay_detect) actually
    /// shards its detection instead of falling back to sequential replay.
    pub fn freezable(self) -> bool {
        matches!(
            self,
            ReplayAlgorithm::MultiBags | ReplayAlgorithm::MultiBagsPlus
        )
    }
}

impl std::fmt::Display for ReplayAlgorithm {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Replays a validated trace through an arbitrary observer and returns it.
///
/// This is the low-level hook: it lets a trace drive anything that consumes
/// the event stream (a detector, a dag recorder, statistics collectors).
pub fn replay_observer<O: Observer>(trace: &Trace, observer: O) -> Result<O, TraceError> {
    trace.validate()?;
    Ok(trace.replay(observer))
}

/// Replays a validated trace through a full race detector using `algorithm`
/// and returns the race report.
pub fn replay_detect(trace: &Trace, algorithm: ReplayAlgorithm) -> Result<RaceReport, TraceError> {
    trace.validate()?;
    Ok(replay_detect_unchecked(trace, algorithm))
}

/// As [`replay_detect`], but skips validation — for callers that already
/// validated (e.g. a loop over all algorithms).
pub fn replay_detect_unchecked(trace: &Trace, algorithm: ReplayAlgorithm) -> RaceReport {
    match algorithm {
        ReplayAlgorithm::MultiBags => trace
            .replay(RaceDetector::<MultiBags>::structured())
            .into_report(),
        ReplayAlgorithm::MultiBagsPlus => trace
            .replay(RaceDetector::<MultiBagsPlus>::general())
            .into_report(),
        ReplayAlgorithm::SpBags => trace.replay(RaceDetector::new(SpBags::new())).into_report(),
        ReplayAlgorithm::SpBagsConservative => {
            let mut report = trace
                .replay(RaceDetector::new(SpBagsConservative::new()))
                .into_report();
            if trace.has_futures() {
                // Futures were folded into fork-join constructs: the verdict
                // is approximate by construction.
                report.mark_approximate();
            }
            report
        }
        ReplayAlgorithm::GraphOracle => trace
            .replay(RaceDetector::new(GraphOracle::new()))
            .into_report(),
    }
}

/// One algorithm's verdict on a replayed trace.
#[derive(Debug)]
pub struct ReplayVerdict {
    /// The algorithm that produced the report.
    pub algorithm: ReplayAlgorithm,
    /// Whether the algorithm is sound for this trace (false ⇒ the verdict
    /// may contain false positives and is excluded from agreement checks).
    pub sound: bool,
    /// The race report.
    pub report: RaceReport,
}

/// Replays one trace through every algorithm that can consume it (see
/// [`ReplayAlgorithm::runnable_for`]) and returns the verdicts.
pub fn replay_all(trace: &Trace) -> Result<Vec<ReplayVerdict>, TraceError> {
    trace.validate()?;
    Ok(ReplayAlgorithm::ALL
        .iter()
        .filter(|algorithm| algorithm.runnable_for(trace))
        .map(|&algorithm| ReplayVerdict {
            algorithm,
            sound: algorithm.sound_for(trace),
            report: replay_detect_unchecked(trace, algorithm),
        })
        .collect())
}

/// How far an unsound-but-runnable algorithm's verdict strayed from the
/// ground-truth oracle on one trace — the quantified error of a baseline
/// run outside its sound program class (e.g. conservative SP-Bags on a
/// futures trace).
#[derive(Debug, Clone, Copy)]
pub struct ApproximationError {
    /// The approximate algorithm.
    pub algorithm: ReplayAlgorithm,
    /// Racy granules the oracle found that the algorithm missed (false
    /// negatives).
    pub missed: usize,
    /// Granules the algorithm reported racy that the oracle did not (false
    /// positives).
    pub spurious: usize,
}

impl ApproximationError {
    /// Measures an approximate `report` against the ground-truth `oracle`
    /// report: how many racy granules it missed and how many it invented.
    pub fn measure(
        algorithm: ReplayAlgorithm,
        report: &RaceReport,
        oracle: &RaceReport,
    ) -> ApproximationError {
        let addr_of = |g: u64| futurerd_dag::MemAddr(g * futurerd_dag::MemAddr::GRANULARITY);
        ApproximationError {
            algorithm,
            missed: oracle
                .racy_granules()
                .filter(|&g| !report.is_racy(addr_of(g)))
                .count(),
            spurious: report
                .racy_granules()
                .filter(|&g| !oracle.is_racy(addr_of(g)))
                .count(),
        }
    }

    /// True if the approximate verdict happened to match the oracle exactly.
    pub fn is_exact(&self) -> bool {
        self.missed == 0 && self.spurious == 0
    }
}

impl std::fmt::Display for ApproximationError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}: {} racy granule(s) missed, {} spurious",
            self.algorithm, self.missed, self.spurious
        )
    }
}

/// The outcome of the differential replay driver.
#[derive(Debug)]
pub struct DifferentialOutcome {
    /// Per-algorithm verdicts (every runnable algorithm, soundness flagged).
    pub verdicts: Vec<ReplayVerdict>,
    /// Human-readable descriptions of every disagreement between a sound
    /// algorithm and the ground-truth oracle.
    pub disagreements: Vec<String>,
    /// Quantified error of each unsound-but-runnable verdict against the
    /// oracle — how wrong the fork-join baseline is on futures programs.
    pub approximations: Vec<ApproximationError>,
}

impl DifferentialOutcome {
    /// True if every sound algorithm agreed with the oracle.
    pub fn agreed(&self) -> bool {
        self.disagreements.is_empty()
    }

    /// The oracle's distinct-racy-granule count.
    pub fn oracle_race_count(&self) -> usize {
        self.verdicts
            .iter()
            .find(|v| v.algorithm == ReplayAlgorithm::GraphOracle)
            .map(|v| v.report.race_count())
            .expect("oracle always runs")
    }
}

/// Replays one trace through all detectors and cross-checks the verdicts:
/// every algorithm that is sound for the trace must agree with the
/// ground-truth graph oracle on the set of racy granules.
pub fn differential(trace: &Trace) -> Result<DifferentialOutcome, TraceError> {
    let verdicts = replay_all(trace)?;
    let oracle = &verdicts
        .iter()
        .find(|v| v.algorithm == ReplayAlgorithm::GraphOracle)
        .expect("oracle is in ALL")
        .report;
    let mut disagreements = Vec::new();
    let mut approximations = Vec::new();
    for verdict in &verdicts {
        if verdict.algorithm == ReplayAlgorithm::GraphOracle {
            continue;
        }
        if !verdict.sound {
            // Not held to agreement — measure how wrong it was instead.
            approximations.push(ApproximationError::measure(
                verdict.algorithm,
                &verdict.report,
                oracle,
            ));
            continue;
        }
        if verdict.report.race_count() != oracle.race_count() {
            disagreements.push(format!(
                "{}: {} racy granules, oracle found {}",
                verdict.algorithm,
                verdict.report.race_count(),
                oracle.race_count()
            ));
            continue;
        }
        for witness in oracle.witnesses() {
            if !verdict.report.is_racy(witness.addr) {
                disagreements.push(format!(
                    "{}: missed the race on {} (oracle witness: {})",
                    verdict.algorithm, witness.addr, witness
                ));
            }
        }
    }
    Ok(DifferentialOutcome {
        verdicts,
        disagreements,
        approximations,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use futurerd_dag::events::{
        CreateFutureEvent, ForkInfo, GetFutureEvent, SpawnEvent, SyncEvent,
    };
    use futurerd_dag::trace::TraceEvent;
    use futurerd_dag::{FunctionId, MemAddr, StrandId};

    /// The canonical fork-join trace with one read/write race.
    fn racy_fork_join_trace() -> Trace {
        let root = FunctionId(0);
        let child = FunctionId(1);
        let x = MemAddr(0x1000);
        let mut t = Trace::new();
        t.push(TraceEvent::ProgramStart {
            root,
            first: StrandId(0),
        });
        t.push(TraceEvent::StrandStart {
            strand: StrandId(0),
            function: root,
        });
        t.push(TraceEvent::Spawn(SpawnEvent {
            parent: root,
            child,
            fork_strand: StrandId(0),
            cont_strand: StrandId(2),
            child_first_strand: StrandId(1),
        }));
        t.push(TraceEvent::StrandStart {
            strand: StrandId(1),
            function: child,
        });
        t.push(TraceEvent::Write {
            strand: StrandId(1),
            addr: x,
            size: 4,
        });
        t.push(TraceEvent::Return {
            function: child,
            last: StrandId(1),
        });
        t.push(TraceEvent::StrandStart {
            strand: StrandId(2),
            function: root,
        });
        t.push(TraceEvent::Read {
            strand: StrandId(2),
            addr: x,
            size: 4,
        });
        t.push(TraceEvent::Sync(SyncEvent {
            parent: root,
            child,
            pre_join_strand: StrandId(2),
            join_strand: StrandId(3),
            child_last_strand: StrandId(1),
            fork: ForkInfo {
                pre_fork_strand: StrandId(0),
                child_first_strand: StrandId(1),
                cont_strand: StrandId(2),
            },
        }));
        t.push(TraceEvent::StrandStart {
            strand: StrandId(3),
            function: root,
        });
        t.push(TraceEvent::Read {
            strand: StrandId(3),
            addr: x,
            size: 4,
        });
        t.push(TraceEvent::Return {
            function: root,
            last: StrandId(3),
        });
        t.push(TraceEvent::ProgramEnd { last: StrandId(3) });
        t
    }

    #[test]
    fn every_algorithm_finds_the_replayed_race() {
        let trace = racy_fork_join_trace();
        for algorithm in ReplayAlgorithm::ALL {
            let report = replay_detect(&trace, algorithm).expect("valid trace");
            assert_eq!(report.race_count(), 1, "{algorithm}");
        }
    }

    #[test]
    fn differential_agrees_on_fork_join() {
        let outcome = differential(&racy_fork_join_trace()).expect("valid trace");
        assert!(outcome.agreed(), "{:?}", outcome.disagreements);
        assert_eq!(outcome.oracle_race_count(), 1);
        // A pure fork-join trace is sound for all four algorithms.
        assert!(outcome.verdicts.iter().all(|v| v.sound));
    }

    #[test]
    fn replay_rejects_invalid_traces() {
        let mut trace = racy_fork_join_trace();
        trace.push(TraceEvent::ProgramEnd { last: StrandId(3) });
        assert!(replay_detect(&trace, ReplayAlgorithm::GraphOracle).is_err());
        assert!(replay_all(&trace).is_err());
        assert!(differential(&trace).is_err());
    }

    /// root spawns a child that writes `x`, then creates and gets an
    /// unrelated future, then reads `x` *before* syncing the child. The
    /// conservative SP-Bags fallback treats the `get` as a `sync`, falsely
    /// joining the child — so it misses the real race on `x`.
    fn cons_miss_trace() -> Trace {
        let (f0, f1, f2) = (FunctionId(0), FunctionId(1), FunctionId(2));
        let x = MemAddr(0x1000);
        let mut t = Trace::new();
        t.push(TraceEvent::ProgramStart {
            root: f0,
            first: StrandId(0),
        });
        t.push(TraceEvent::StrandStart {
            strand: StrandId(0),
            function: f0,
        });
        t.push(TraceEvent::Spawn(SpawnEvent {
            parent: f0,
            child: f1,
            fork_strand: StrandId(0),
            cont_strand: StrandId(2),
            child_first_strand: StrandId(1),
        }));
        t.push(TraceEvent::StrandStart {
            strand: StrandId(1),
            function: f1,
        });
        t.push(TraceEvent::Write {
            strand: StrandId(1),
            addr: x,
            size: 4,
        });
        t.push(TraceEvent::Return {
            function: f1,
            last: StrandId(1),
        });
        t.push(TraceEvent::StrandStart {
            strand: StrandId(2),
            function: f0,
        });
        t.push(TraceEvent::CreateFuture(CreateFutureEvent {
            parent: f0,
            child: f2,
            creator_strand: StrandId(2),
            cont_strand: StrandId(4),
            child_first_strand: StrandId(3),
        }));
        t.push(TraceEvent::StrandStart {
            strand: StrandId(3),
            function: f2,
        });
        t.push(TraceEvent::Return {
            function: f2,
            last: StrandId(3),
        });
        t.push(TraceEvent::StrandStart {
            strand: StrandId(4),
            function: f0,
        });
        t.push(TraceEvent::GetFuture(GetFutureEvent {
            parent: f0,
            future: f2,
            pre_get_strand: StrandId(4),
            getter_strand: StrandId(5),
            future_last_strand: StrandId(3),
            prior_touches: 0,
        }));
        t.push(TraceEvent::StrandStart {
            strand: StrandId(5),
            function: f0,
        });
        t.push(TraceEvent::Read {
            strand: StrandId(5),
            addr: x,
            size: 4,
        });
        t.push(TraceEvent::Sync(SyncEvent {
            parent: f0,
            child: f1,
            pre_join_strand: StrandId(5),
            join_strand: StrandId(6),
            child_last_strand: StrandId(1),
            fork: ForkInfo {
                pre_fork_strand: StrandId(0),
                child_first_strand: StrandId(1),
                cont_strand: StrandId(2),
            },
        }));
        t.push(TraceEvent::StrandStart {
            strand: StrandId(6),
            function: f0,
        });
        t.push(TraceEvent::Return {
            function: f0,
            last: StrandId(6),
        });
        t.push(TraceEvent::ProgramEnd { last: StrandId(6) });
        t
    }

    #[test]
    fn differential_quantifies_the_conservative_baseline_error() {
        let trace = cons_miss_trace();
        // The exact detectors all see the race; the conservative fallback
        // misses it (it believes the get joined the spawned child).
        assert_eq!(
            replay_detect(&trace, ReplayAlgorithm::GraphOracle)
                .unwrap()
                .race_count(),
            1
        );
        let cons = replay_detect(&trace, ReplayAlgorithm::SpBagsConservative).unwrap();
        assert_eq!(cons.race_count(), 0);
        assert!(cons.is_approximate());
        let outcome = differential(&trace).expect("valid trace");
        assert!(outcome.agreed(), "{:?}", outcome.disagreements);
        let err = outcome
            .approximations
            .iter()
            .find(|a| a.algorithm == ReplayAlgorithm::SpBagsConservative)
            .expect("conservative fallback is unsound on futures traces");
        assert_eq!(err.missed, 1);
        assert_eq!(err.spurious, 0);
        assert!(!err.is_exact());
        assert!(err.to_string().contains("missed"));
    }

    #[test]
    fn algorithm_names_round_trip() {
        for algorithm in ReplayAlgorithm::ALL {
            assert_eq!(ReplayAlgorithm::parse(algorithm.name()), Some(algorithm));
        }
        assert_eq!(ReplayAlgorithm::parse("nope"), None);
    }

    #[test]
    fn replay_observer_drives_arbitrary_observers() {
        let trace = racy_fork_join_trace();
        let recorder =
            replay_observer(&trace, futurerd_dag::DagRecorder::new()).expect("valid trace");
        assert_eq!(recorder.dag().num_strands(), 4);
        assert_eq!(recorder.reads, 2);
        assert_eq!(recorder.writes, 1);
    }
}
