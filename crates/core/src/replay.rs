//! Offline detection: replay a recorded [`Trace`] through the detectors.
//!
//! Recording decouples *running* a program from *detecting* on it: a trace
//! captured once (see `futurerd-runtime::trace`) can be replayed through
//! every reachability algorithm, repeatedly, without re-executing the
//! workload. Because the detectors are plain [`Observer`]s, replay is just
//! feeding the stored events back in order — but the detectors' amortized
//! bounds and correctness assume the canonical serial-DF event discipline,
//! so every entry point here validates the trace first.
//!
//! [`differential`] is the cross-checking driver: it replays one trace
//! through every algorithm that is *sound* for that trace (SP-Bags only
//! handles fork-join streams; MultiBags requires single-touch futures) and
//! reports any verdict that disagrees with the ground-truth graph oracle.

use crate::detector::RaceDetector;
use crate::races::RaceReport;
use crate::reachability::{GraphOracle, MultiBags, MultiBagsPlus, SpBags};
use futurerd_dag::trace::{Trace, TraceError};
use futurerd_dag::Observer;

/// The reachability algorithms a trace can be replayed through.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ReplayAlgorithm {
    /// MultiBags (Section 4) — sound for structured (single-touch) futures.
    MultiBags,
    /// MultiBags+ (Section 5) — sound for general futures.
    MultiBagsPlus,
    /// The SP-Bags baseline — sound for pure fork-join streams only.
    SpBags,
    /// The ground-truth transitive-closure oracle — sound for everything,
    /// quadratic space.
    GraphOracle,
}

impl ReplayAlgorithm {
    /// Every algorithm, in comparison order.
    pub const ALL: [ReplayAlgorithm; 4] = [
        ReplayAlgorithm::MultiBags,
        ReplayAlgorithm::MultiBagsPlus,
        ReplayAlgorithm::SpBags,
        ReplayAlgorithm::GraphOracle,
    ];

    /// Short display name.
    pub fn name(self) -> &'static str {
        match self {
            ReplayAlgorithm::MultiBags => "multibags",
            ReplayAlgorithm::MultiBagsPlus => "multibags+",
            ReplayAlgorithm::SpBags => "spbags",
            ReplayAlgorithm::GraphOracle => "oracle",
        }
    }

    /// Parses a CLI-style name (as produced by [`ReplayAlgorithm::name`]).
    pub fn parse(name: &str) -> Option<Self> {
        Some(match name {
            "multibags" | "mb" => ReplayAlgorithm::MultiBags,
            "multibags+" | "mbp" | "multibagsplus" => ReplayAlgorithm::MultiBagsPlus,
            "spbags" | "sp" => ReplayAlgorithm::SpBags,
            "oracle" | "graph" => ReplayAlgorithm::GraphOracle,
            _ => return None,
        })
    }

    /// True if the algorithm's race verdict is trustworthy for this trace.
    /// Unsound-but-runnable combinations (MultiBags on a multi-touch trace)
    /// still replay, but may report false positives, so [`differential`]
    /// excludes them from agreement checks.
    pub fn sound_for(self, trace: &Trace) -> bool {
        match self {
            ReplayAlgorithm::MultiBags => trace.is_single_touch(),
            ReplayAlgorithm::MultiBagsPlus | ReplayAlgorithm::GraphOracle => true,
            ReplayAlgorithm::SpBags => !trace.has_futures(),
        }
    }

    /// True if the algorithm can consume this trace at all. SP-Bags aborts
    /// on future constructs (it has no transition for them); everything else
    /// accepts any canonical stream.
    pub fn runnable_for(self, trace: &Trace) -> bool {
        match self {
            ReplayAlgorithm::SpBags => !trace.has_futures(),
            _ => true,
        }
    }
}

impl std::fmt::Display for ReplayAlgorithm {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Replays a validated trace through an arbitrary observer and returns it.
///
/// This is the low-level hook: it lets a trace drive anything that consumes
/// the event stream (a detector, a dag recorder, statistics collectors).
pub fn replay_observer<O: Observer>(trace: &Trace, observer: O) -> Result<O, TraceError> {
    trace.validate()?;
    Ok(trace.replay(observer))
}

/// Replays a validated trace through a full race detector using `algorithm`
/// and returns the race report.
pub fn replay_detect(trace: &Trace, algorithm: ReplayAlgorithm) -> Result<RaceReport, TraceError> {
    trace.validate()?;
    Ok(replay_detect_unchecked(trace, algorithm))
}

/// As [`replay_detect`], but skips validation — for callers that already
/// validated (e.g. a loop over all algorithms).
pub fn replay_detect_unchecked(trace: &Trace, algorithm: ReplayAlgorithm) -> RaceReport {
    match algorithm {
        ReplayAlgorithm::MultiBags => trace
            .replay(RaceDetector::<MultiBags>::structured())
            .into_report(),
        ReplayAlgorithm::MultiBagsPlus => trace
            .replay(RaceDetector::<MultiBagsPlus>::general())
            .into_report(),
        ReplayAlgorithm::SpBags => trace.replay(RaceDetector::new(SpBags::new())).into_report(),
        ReplayAlgorithm::GraphOracle => trace
            .replay(RaceDetector::new(GraphOracle::new()))
            .into_report(),
    }
}

/// One algorithm's verdict on a replayed trace.
#[derive(Debug)]
pub struct ReplayVerdict {
    /// The algorithm that produced the report.
    pub algorithm: ReplayAlgorithm,
    /// Whether the algorithm is sound for this trace (false ⇒ the verdict
    /// may contain false positives and is excluded from agreement checks).
    pub sound: bool,
    /// The race report.
    pub report: RaceReport,
}

/// Replays one trace through every algorithm that can consume it (see
/// [`ReplayAlgorithm::runnable_for`]) and returns the verdicts.
pub fn replay_all(trace: &Trace) -> Result<Vec<ReplayVerdict>, TraceError> {
    trace.validate()?;
    Ok(ReplayAlgorithm::ALL
        .iter()
        .filter(|algorithm| algorithm.runnable_for(trace))
        .map(|&algorithm| ReplayVerdict {
            algorithm,
            sound: algorithm.sound_for(trace),
            report: replay_detect_unchecked(trace, algorithm),
        })
        .collect())
}

/// The outcome of the differential replay driver.
#[derive(Debug)]
pub struct DifferentialOutcome {
    /// Per-algorithm verdicts (all four, soundness flagged).
    pub verdicts: Vec<ReplayVerdict>,
    /// Human-readable descriptions of every disagreement between a sound
    /// algorithm and the ground-truth oracle.
    pub disagreements: Vec<String>,
}

impl DifferentialOutcome {
    /// True if every sound algorithm agreed with the oracle.
    pub fn agreed(&self) -> bool {
        self.disagreements.is_empty()
    }

    /// The oracle's distinct-racy-granule count.
    pub fn oracle_race_count(&self) -> usize {
        self.verdicts
            .iter()
            .find(|v| v.algorithm == ReplayAlgorithm::GraphOracle)
            .map(|v| v.report.race_count())
            .expect("oracle always runs")
    }
}

/// Replays one trace through all detectors and cross-checks the verdicts:
/// every algorithm that is sound for the trace must agree with the
/// ground-truth graph oracle on the set of racy granules.
pub fn differential(trace: &Trace) -> Result<DifferentialOutcome, TraceError> {
    let verdicts = replay_all(trace)?;
    let oracle = &verdicts
        .iter()
        .find(|v| v.algorithm == ReplayAlgorithm::GraphOracle)
        .expect("oracle is in ALL")
        .report;
    let mut disagreements = Vec::new();
    for verdict in &verdicts {
        if !verdict.sound || verdict.algorithm == ReplayAlgorithm::GraphOracle {
            continue;
        }
        if verdict.report.race_count() != oracle.race_count() {
            disagreements.push(format!(
                "{}: {} racy granules, oracle found {}",
                verdict.algorithm,
                verdict.report.race_count(),
                oracle.race_count()
            ));
            continue;
        }
        for witness in oracle.witnesses() {
            if !verdict.report.is_racy(witness.addr) {
                disagreements.push(format!(
                    "{}: missed the race on {} (oracle witness: {})",
                    verdict.algorithm, witness.addr, witness
                ));
            }
        }
    }
    Ok(DifferentialOutcome {
        verdicts,
        disagreements,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use futurerd_dag::events::{ForkInfo, SpawnEvent, SyncEvent};
    use futurerd_dag::trace::TraceEvent;
    use futurerd_dag::{FunctionId, MemAddr, StrandId};

    /// The canonical fork-join trace with one read/write race.
    fn racy_fork_join_trace() -> Trace {
        let root = FunctionId(0);
        let child = FunctionId(1);
        let x = MemAddr(0x1000);
        let mut t = Trace::new();
        t.push(TraceEvent::ProgramStart {
            root,
            first: StrandId(0),
        });
        t.push(TraceEvent::StrandStart {
            strand: StrandId(0),
            function: root,
        });
        t.push(TraceEvent::Spawn(SpawnEvent {
            parent: root,
            child,
            fork_strand: StrandId(0),
            cont_strand: StrandId(2),
            child_first_strand: StrandId(1),
        }));
        t.push(TraceEvent::StrandStart {
            strand: StrandId(1),
            function: child,
        });
        t.push(TraceEvent::Write {
            strand: StrandId(1),
            addr: x,
            size: 4,
        });
        t.push(TraceEvent::Return {
            function: child,
            last: StrandId(1),
        });
        t.push(TraceEvent::StrandStart {
            strand: StrandId(2),
            function: root,
        });
        t.push(TraceEvent::Read {
            strand: StrandId(2),
            addr: x,
            size: 4,
        });
        t.push(TraceEvent::Sync(SyncEvent {
            parent: root,
            child,
            pre_join_strand: StrandId(2),
            join_strand: StrandId(3),
            child_last_strand: StrandId(1),
            fork: ForkInfo {
                pre_fork_strand: StrandId(0),
                child_first_strand: StrandId(1),
                cont_strand: StrandId(2),
            },
        }));
        t.push(TraceEvent::StrandStart {
            strand: StrandId(3),
            function: root,
        });
        t.push(TraceEvent::Read {
            strand: StrandId(3),
            addr: x,
            size: 4,
        });
        t.push(TraceEvent::Return {
            function: root,
            last: StrandId(3),
        });
        t.push(TraceEvent::ProgramEnd { last: StrandId(3) });
        t
    }

    #[test]
    fn every_algorithm_finds_the_replayed_race() {
        let trace = racy_fork_join_trace();
        for algorithm in ReplayAlgorithm::ALL {
            let report = replay_detect(&trace, algorithm).expect("valid trace");
            assert_eq!(report.race_count(), 1, "{algorithm}");
        }
    }

    #[test]
    fn differential_agrees_on_fork_join() {
        let outcome = differential(&racy_fork_join_trace()).expect("valid trace");
        assert!(outcome.agreed(), "{:?}", outcome.disagreements);
        assert_eq!(outcome.oracle_race_count(), 1);
        // A pure fork-join trace is sound for all four algorithms.
        assert!(outcome.verdicts.iter().all(|v| v.sound));
    }

    #[test]
    fn replay_rejects_invalid_traces() {
        let mut trace = racy_fork_join_trace();
        trace.push(TraceEvent::ProgramEnd { last: StrandId(3) });
        assert!(replay_detect(&trace, ReplayAlgorithm::GraphOracle).is_err());
        assert!(replay_all(&trace).is_err());
        assert!(differential(&trace).is_err());
    }

    #[test]
    fn algorithm_names_round_trip() {
        for algorithm in ReplayAlgorithm::ALL {
            assert_eq!(ReplayAlgorithm::parse(algorithm.name()), Some(algorithm));
        }
        assert_eq!(ReplayAlgorithm::parse("nope"), None);
    }

    #[test]
    fn replay_observer_drives_arbitrary_observers() {
        let trace = racy_fork_join_trace();
        let recorder =
            replay_observer(&trace, futurerd_dag::DagRecorder::new()).expect("valid trace");
        assert_eq!(recorder.dag().num_strands(), 4);
        assert_eq!(recorder.reads, 2);
        assert_eq!(recorder.writes, 1);
    }
}
