//! The MultiBags algorithm (Section 4 of the paper): reachability for
//! programs with *structured* futures.
//!
//! Every function instance `F` that has been created and not yet joined owns
//! a *bag* — a set in a disjoint-set structure — labelled either `S_F` or
//! `P_F`:
//!
//! * while `F` is active all of its strands are in `S_F`;
//! * when `F` returns, `S_F` is relabelled `P_F` (this is the crucial
//!   difference from SP-Bags, which unions the returning child's S-bag into
//!   the parent's P-bag);
//! * when `F` is joined (`get_fut`, or `sync` for a spawned child), `P_F` is
//!   unioned into the joining function's S-bag.
//!
//! The invariant (Theorem 4.2): a previously executed strand is in an S-bag
//! iff it is sequentially before the currently executing strand. A race
//! query is therefore a single `find` plus a tag inspection.
//!
//! For structured futures `spawn`/`sync` are just `create_fut`/`get_fut`
//! (Section 4, "Notation"), so this structure treats the two pairs of events
//! identically. The same code also serves as the `DSP` component of
//! MultiBags+ by disabling the union performed at `get_fut`
//! ([`MultiBags::dsp_for_multibags_plus`]).

use super::Reachability;
use crate::stats::ReachStats;
use futurerd_dag::events::{GetFutureEvent, SyncEvent};
use futurerd_dag::{FunctionId, Observer, StrandId};
use futurerd_dsu::{ElementId, TaggedDisjointSets};

/// The label of a bag: the S-bag or P-bag of a particular function instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Bag {
    /// `S_F`: strands known to be sequentially before the current strand.
    S(FunctionId),
    /// `P_F`: strands of a completed, not-yet-joined function.
    P(FunctionId),
}

impl Bag {
    fn is_s(self) -> bool {
        matches!(self, Bag::S(_))
    }
}

/// Reachability for structured futures in `O(α(m,n))` amortized per
/// operation.
#[derive(Debug, Default)]
pub struct MultiBags {
    bags: TaggedDisjointSets<Bag>,
    /// Disjoint-set element of each strand (indexed by strand id).
    elem_of: Vec<Option<ElementId>>,
    /// A strand known to be in each function's bag (its first strand),
    /// indexed by function id.
    first_strand: Vec<Option<StrandId>>,
    current: StrandId,
    /// Whether `sync`/`get_fut` union the child's P-bag into the joining
    /// function's S-bag. True for MultiBags proper; for the `DSP` structure
    /// inside MultiBags+ the union is performed at `sync` but *not* at
    /// `get_fut`.
    union_on_get: bool,
    queries: u64,
}

impl MultiBags {
    /// Creates the reachability structure for structured futures.
    pub fn new() -> Self {
        Self {
            union_on_get: true,
            ..Default::default()
        }
    }

    /// Creates the `DSP` variant used inside MultiBags+: identical, except
    /// that nothing happens on `get_fut` (Section 5, "Reachability data
    /// structures").
    pub(crate) fn dsp_for_multibags_plus() -> Self {
        Self {
            union_on_get: false,
            ..Default::default()
        }
    }

    fn elem(&self, strand: StrandId) -> ElementId {
        self.elem_of
            .get(strand.index())
            .copied()
            .flatten()
            .unwrap_or_else(|| panic!("strand {strand} has not started executing"))
    }

    fn function_member(&self, function: FunctionId) -> StrandId {
        self.first_strand
            .get(function.index())
            .copied()
            .flatten()
            .unwrap_or_else(|| panic!("function {function} has not started executing"))
    }

    /// True if `strand` is currently in an S-bag. This is the raw query of
    /// Figure 1 in the paper.
    pub fn in_s_bag(&mut self, strand: StrandId) -> bool {
        let elem = self.elem(strand);
        self.bags.tag(elem).is_s()
    }

    /// The bag ownership of a strand, for tests reproducing Figure 2:
    /// returns `(is_s_bag, owning_function)`.
    pub fn bag_of(&mut self, strand: StrandId) -> (bool, FunctionId) {
        let elem = self.elem(strand);
        match *self.bags.tag(elem) {
            Bag::S(f) => (true, f),
            Bag::P(f) => (false, f),
        }
    }

    fn join_child(&mut self, parent: FunctionId, child: FunctionId) {
        let parent_member = self.function_member(parent);
        let child_member = self.function_member(child);
        let parent_elem = self.elem(parent_member);
        let child_elem = self.elem(child_member);
        // S_F = Union(S_F, P_G): the merged set keeps the parent's S tag.
        self.bags.union_into(parent_elem, child_elem);
    }
}

impl Observer for MultiBags {
    fn on_strand_start(&mut self, strand: StrandId, function: FunctionId) {
        if self.elem_of.len() <= strand.index() {
            self.elem_of.resize(strand.index() + 1, None);
        }
        if self.first_strand.len() <= function.index() {
            self.first_strand.resize(function.index() + 1, None);
        }
        let elem = self.bags.make_set(Bag::S(function));
        self.elem_of[strand.index()] = Some(elem);
        match self.first_strand[function.index()] {
            None => {
                // First strand of the function: this set *is* S_F.
                self.first_strand[function.index()] = Some(strand);
            }
            Some(first) => {
                // Subsequent strand: union it into the existing S_F (the
                // function is necessarily still active).
                let first_elem = self.elem(first);
                self.bags.union_into(first_elem, elem);
            }
        }
        self.current = strand;
    }

    fn on_return(&mut self, function: FunctionId, _last_strand: StrandId) {
        // P_G = S_G: relabel the bag.
        let member = self.function_member(function);
        let elem = self.elem(member);
        self.bags.set_tag(elem, Bag::P(function));
    }

    fn on_sync(&mut self, ev: &SyncEvent) {
        // sync is get_fut on a spawned child (Section 4 notation); both
        // MultiBags and the DSP of MultiBags+ perform the union here.
        self.join_child(ev.parent, ev.child);
    }

    fn on_get_future(&mut self, ev: &GetFutureEvent) {
        if self.union_on_get {
            self.join_child(ev.parent, ev.future);
        }
    }
}

impl Reachability for MultiBags {
    fn precedes_current(&mut self, u: StrandId) -> bool {
        self.queries += 1;
        self.in_s_bag(u)
    }

    fn current_strand(&self) -> StrandId {
        self.current
    }

    fn name(&self) -> &'static str {
        if self.union_on_get {
            "multibags"
        } else {
            "multibags-dsp"
        }
    }

    fn stats(&self) -> ReachStats {
        let mut s = ReachStats {
            queries: self.queries,
            ..Default::default()
        };
        s.absorb_dsu(self.bags.counters());
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use futurerd_dag::events::{CreateFutureEvent, ForkInfo};

    /// Drive the observer by hand through: root creates future G, continues,
    /// then gets it.
    #[test]
    fn future_strands_move_from_s_to_p_and_back_to_s() {
        let root = FunctionId(0);
        let fut = FunctionId(1);
        let (s0, sg, s_cont, s_get) = (StrandId(0), StrandId(1), StrandId(2), StrandId(3));
        let mut mb = MultiBags::new();

        mb.on_program_start(root, s0);
        mb.on_strand_start(s0, root);
        mb.on_create_future(&CreateFutureEvent {
            parent: root,
            child: fut,
            creator_strand: s0,
            cont_strand: s_cont,
            child_first_strand: sg,
        });
        mb.on_strand_start(sg, fut);
        // While the future executes, the creator strand is in an S bag.
        assert!(mb.in_s_bag(s0));
        assert!(mb.in_s_bag(sg));
        mb.on_return(fut, sg);
        mb.on_strand_start(s_cont, root);
        // After the future returned but before get: its strands are in a P
        // bag (parallel with the continuation).
        assert!(!mb.in_s_bag(sg));
        assert!(mb.in_s_bag(s0));
        mb.on_get_future(&GetFutureEvent {
            parent: root,
            future: fut,
            pre_get_strand: s_cont,
            getter_strand: s_get,
            future_last_strand: sg,
            prior_touches: 0,
        });
        mb.on_strand_start(s_get, root);
        // After the get the future's strands are sequentially before us.
        assert!(mb.in_s_bag(sg));
        assert_eq!(mb.bag_of(sg), (true, root));
    }

    #[test]
    fn spawned_child_parallel_until_sync() {
        let root = FunctionId(0);
        let child = FunctionId(1);
        let (s0, sc, s_cont, s_join) = (StrandId(0), StrandId(1), StrandId(2), StrandId(3));
        let mut mb = MultiBags::new();
        mb.on_strand_start(s0, root);
        mb.on_strand_start(sc, child);
        mb.on_return(child, sc);
        mb.on_strand_start(s_cont, root);
        assert!(!mb.precedes_current(sc));
        assert!(mb.precedes_current(s0));
        assert!(mb.precedes_current(s_cont));
        mb.on_sync(&SyncEvent {
            parent: root,
            child,
            pre_join_strand: s_cont,
            join_strand: s_join,
            child_last_strand: sc,
            fork: ForkInfo {
                pre_fork_strand: s0,
                child_first_strand: sc,
                cont_strand: s_cont,
            },
        });
        mb.on_strand_start(s_join, root);
        assert!(mb.precedes_current(sc));
        assert_eq!(mb.current_strand(), s_join);
    }

    #[test]
    fn dsp_variant_ignores_get_future() {
        let root = FunctionId(0);
        let fut = FunctionId(1);
        let (s0, sg, s_cont, s_get) = (StrandId(0), StrandId(1), StrandId(2), StrandId(3));
        let mut dsp = MultiBags::dsp_for_multibags_plus();
        dsp.on_strand_start(s0, root);
        dsp.on_strand_start(sg, fut);
        dsp.on_return(fut, sg);
        dsp.on_strand_start(s_cont, root);
        dsp.on_get_future(&GetFutureEvent {
            parent: root,
            future: fut,
            pre_get_strand: s_cont,
            getter_strand: s_get,
            future_last_strand: sg,
            prior_touches: 0,
        });
        dsp.on_strand_start(s_get, root);
        // DSP does not union at get_fut, so the future's strand stays in a P
        // bag even though it now precedes the getter.
        assert!(!dsp.in_s_bag(sg));
        assert_eq!(dsp.name(), "multibags-dsp");
    }

    #[test]
    fn stats_count_queries_and_dsu_ops() {
        let mut mb = MultiBags::new();
        mb.on_strand_start(StrandId(0), FunctionId(0));
        mb.on_strand_start(StrandId(1), FunctionId(0));
        let _ = mb.precedes_current(StrandId(0));
        let stats = mb.stats();
        assert_eq!(stats.queries, 1);
        assert!(stats.make_sets >= 2);
        assert!(stats.unions >= 1);
    }

    #[test]
    #[should_panic(expected = "has not started executing")]
    fn querying_unknown_strand_panics() {
        let mut mb = MultiBags::new();
        mb.on_strand_start(StrandId(0), FunctionId(0));
        mb.precedes_current(StrandId(5));
    }
}
