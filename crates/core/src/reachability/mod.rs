//! Reachability data structures: the heart of the paper.
//!
//! A reachability structure is an [`Observer`] of the execution event stream
//! that can, at any point during the run, answer the query *"is previously
//! executed strand `u` sequentially before the currently executing
//! strand?"* — exactly the query the access-history protocol of Section 3
//! needs. Four implementations are provided:
//!
//! | Structure | Programs | Time (total) | Role |
//! |---|---|---|---|
//! | [`MultiBags`] | structured futures | `O(T1·α(m,n))` | the paper's first algorithm (Section 4) |
//! | [`MultiBagsPlus`] | general futures | `O((T1+k²)·α(m,n))` | the paper's second algorithm (Section 5) |
//! | [`SpBags`] | fork-join only | `O(T1·α(m,n))` | classical SP-Bags baseline \[Feng & Leiserson 1997\] |
//! | [`GraphOracle`] | anything | `O(T1·n/64)` time, `O(n²/64)` space | ground truth for tests and ablations |

mod multibags;
mod multibags_plus;
mod oracle;
mod rgraph;
mod spbags;

pub use multibags::MultiBags;
pub use multibags_plus::MultiBagsPlus;
pub use oracle::GraphOracle;
pub use rgraph::{RGraph, RNodeId};
pub use spbags::{SpBags, SpBagsConservative};

use crate::stats::ReachStats;
use futurerd_dag::{Observer, StrandId};

/// An on-the-fly reachability structure.
///
/// Implementations consume the execution event stream (they are
/// [`Observer`]s) and answer precedence queries against the *currently
/// executing* strand. Queries may only name strands that have already begun
/// executing (which is all the access history ever stores).
pub trait Reachability: Observer {
    /// Returns true iff strand `u` is sequentially before the currently
    /// executing strand (or is the current strand itself). `u` must have
    /// started executing already.
    fn precedes_current(&mut self, u: StrandId) -> bool;

    /// The currently executing strand.
    fn current_strand(&self) -> StrandId;

    /// A short human-readable name (used in benchmark tables).
    fn name(&self) -> &'static str;

    /// Work counters for complexity ablations.
    fn stats(&self) -> ReachStats;
}

impl<R: Reachability + ?Sized> Reachability for &mut R {
    fn precedes_current(&mut self, u: StrandId) -> bool {
        (**self).precedes_current(u)
    }
    fn current_strand(&self) -> StrandId {
        (**self).current_strand()
    }
    fn name(&self) -> &'static str {
        (**self).name()
    }
    fn stats(&self) -> ReachStats {
        (**self).stats()
    }
}
