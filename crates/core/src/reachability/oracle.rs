//! Ground-truth reachability maintained from the event stream.
//!
//! [`GraphOracle`] keeps, for every strand, the bitset of strands that can
//! reach it. Because every edge of the computation dag is known the moment
//! its destination strand is created (a property of the event stream), each
//! strand's predecessor set is final at creation time and queries are exact.
//!
//! This is the "just keep the whole graph" comparator: `O(n²/64)` memory and
//! `O(n/64)` work per strand, hopeless for long executions but perfect as
//! the specification in differential tests and as a reference point in the
//! ablation benchmarks.

use super::Reachability;
use crate::bitset::DynBitSet;
use crate::stats::ReachStats;
use futurerd_dag::events::{CreateFutureEvent, GetFutureEvent, SpawnEvent, SyncEvent};
use futurerd_dag::{FunctionId, Observer, StrandId};

/// Exact reachability via per-strand predecessor bitsets.
#[derive(Debug, Default)]
pub struct GraphOracle {
    /// `pred[s]`: strands with a non-empty path to `s`.
    pred: Vec<DynBitSet>,
    current: StrandId,
    queries: u64,
}

impl GraphOracle {
    /// Creates an empty oracle.
    pub fn new() -> Self {
        Self::default()
    }

    fn ensure(&mut self, strand: StrandId) {
        if self.pred.len() <= strand.index() {
            self.pred.resize_with(strand.index() + 1, DynBitSet::new);
        }
    }

    /// Records the edge `from -> to` (to's predecessors absorb from's).
    fn add_edge(&mut self, from: StrandId, to: StrandId) {
        self.ensure(from);
        self.ensure(to);
        let from_pred = self.pred[from.index()].clone();
        let dst = &mut self.pred[to.index()];
        dst.union_with(&from_pred);
        dst.set(from.index());
    }

    /// True iff `u` strictly precedes `v` in the dag recorded so far.
    pub fn strictly_precedes(&mut self, u: StrandId, v: StrandId) -> bool {
        self.ensure(v);
        self.pred[v.index()].get(u.index())
    }

    /// Number of strands seen.
    pub fn num_strands(&self) -> usize {
        self.pred.len()
    }
}

impl Observer for GraphOracle {
    fn on_strand_start(&mut self, strand: StrandId, _function: FunctionId) {
        self.ensure(strand);
        self.current = strand;
    }

    fn on_spawn(&mut self, ev: &SpawnEvent) {
        self.add_edge(ev.fork_strand, ev.child_first_strand);
        self.add_edge(ev.fork_strand, ev.cont_strand);
    }

    fn on_create_future(&mut self, ev: &CreateFutureEvent) {
        self.add_edge(ev.creator_strand, ev.child_first_strand);
        self.add_edge(ev.creator_strand, ev.cont_strand);
    }

    fn on_sync(&mut self, ev: &SyncEvent) {
        self.add_edge(ev.child_last_strand, ev.join_strand);
        self.add_edge(ev.pre_join_strand, ev.join_strand);
    }

    fn on_get_future(&mut self, ev: &GetFutureEvent) {
        self.add_edge(ev.future_last_strand, ev.getter_strand);
        self.add_edge(ev.pre_get_strand, ev.getter_strand);
    }
}

impl Reachability for GraphOracle {
    fn precedes_current(&mut self, u: StrandId) -> bool {
        self.queries += 1;
        let v = self.current;
        u == v || self.strictly_precedes(u, v)
    }

    fn current_strand(&self) -> StrandId {
        self.current
    }

    fn name(&self) -> &'static str {
        "graph-oracle"
    }

    fn stats(&self) -> ReachStats {
        ReachStats {
            queries: self.queries,
            ..Default::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use futurerd_dag::events::ForkInfo;

    #[test]
    fn fork_join_reachability() {
        let mut o = GraphOracle::new();
        o.on_strand_start(StrandId(0), FunctionId(0));
        o.on_spawn(&SpawnEvent {
            parent: FunctionId(0),
            child: FunctionId(1),
            fork_strand: StrandId(0),
            cont_strand: StrandId(2),
            child_first_strand: StrandId(1),
        });
        o.on_strand_start(StrandId(1), FunctionId(1));
        assert!(o.precedes_current(StrandId(0)));
        o.on_strand_start(StrandId(2), FunctionId(0));
        assert!(!o.precedes_current(StrandId(1)));
        o.on_sync(&SyncEvent {
            parent: FunctionId(0),
            child: FunctionId(1),
            pre_join_strand: StrandId(2),
            join_strand: StrandId(3),
            child_last_strand: StrandId(1),
            fork: ForkInfo {
                pre_fork_strand: StrandId(0),
                child_first_strand: StrandId(1),
                cont_strand: StrandId(2),
            },
        });
        o.on_strand_start(StrandId(3), FunctionId(0));
        assert!(o.precedes_current(StrandId(1)));
        assert!(o.precedes_current(StrandId(2)));
        assert!(o.precedes_current(StrandId(3)));
        assert_eq!(o.num_strands(), 4);
        assert_eq!(o.name(), "graph-oracle");
    }

    #[test]
    fn future_edges_contribute_paths() {
        let mut o = GraphOracle::new();
        o.on_strand_start(StrandId(0), FunctionId(0));
        o.on_create_future(&CreateFutureEvent {
            parent: FunctionId(0),
            child: FunctionId(1),
            creator_strand: StrandId(0),
            cont_strand: StrandId(2),
            child_first_strand: StrandId(1),
        });
        o.on_strand_start(StrandId(1), FunctionId(1));
        o.on_strand_start(StrandId(2), FunctionId(0));
        assert!(!o.precedes_current(StrandId(1)));
        o.on_get_future(&GetFutureEvent {
            parent: FunctionId(0),
            future: FunctionId(1),
            pre_get_strand: StrandId(2),
            getter_strand: StrandId(3),
            future_last_strand: StrandId(1),
            prior_touches: 0,
        });
        o.on_strand_start(StrandId(3), FunctionId(0));
        assert!(o.precedes_current(StrandId(1)));
    }
}
