//! The classical SP-Bags algorithm \[Feng & Leiserson 1997\] for pure
//! fork-join (series-parallel) programs.
//!
//! Included as the baseline the paper builds on and contrasts with
//! (Section 1 and Section 4: "The algorithm looks similar to SP-Bags ...
//! The main difference is that when the function G returns, its S-bag S_G is
//! renamed as P_G; in SP-bags, S_G would be unioned with P_F, the parent
//! function of G"). SP-Bags is *only* correct for programs whose dag is
//! series-parallel; feeding it `create_fut`/`get_fut` events panics.

use super::Reachability;
use crate::stats::ReachStats;
use futurerd_dag::events::{CreateFutureEvent, GetFutureEvent, SyncEvent};
use futurerd_dag::{FunctionId, Observer, StrandId};
use futurerd_dsu::{ElementId, TaggedDisjointSets};

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SpBag {
    S(FunctionId),
    P(FunctionId),
}

/// Per-function bookkeeping: a member strand of its S-bag and (if non-empty)
/// of its P-bag.
#[derive(Debug, Clone, Copy, Default)]
struct FunctionBags {
    s_member: Option<StrandId>,
    p_member: Option<StrandId>,
}

/// SP-Bags reachability for fork-join programs.
#[derive(Debug, Default)]
pub struct SpBags {
    bags: TaggedDisjointSets<SpBag>,
    elem_of: Vec<Option<ElementId>>,
    functions: Vec<FunctionBags>,
    /// Parent of each function (needed to move a returning child's S-bag
    /// into the parent's P-bag).
    parent_of: Vec<Option<FunctionId>>,
    current: StrandId,
    queries: u64,
}

impl SpBags {
    /// Creates an SP-Bags structure.
    pub fn new() -> Self {
        Self::default()
    }

    fn elem(&self, strand: StrandId) -> ElementId {
        self.elem_of
            .get(strand.index())
            .copied()
            .flatten()
            .unwrap_or_else(|| panic!("strand {strand} has not started executing"))
    }

    fn bags_of(&mut self, function: FunctionId) -> &mut FunctionBags {
        if self.functions.len() <= function.index() {
            self.functions
                .resize(function.index() + 1, FunctionBags::default());
        }
        &mut self.functions[function.index()]
    }

    /// True if `strand` is currently in an S-bag.
    pub fn in_s_bag(&mut self, strand: StrandId) -> bool {
        let elem = self.elem(strand);
        matches!(*self.bags.tag(elem), SpBag::S(_))
    }

    /// Records that `child` is a child function of `parent` (needed when the
    /// child returns, to move its S-bag into the parent's P-bag).
    fn note_child(&mut self, parent: FunctionId, child: FunctionId) {
        if self.parent_of.len() <= child.index() {
            self.parent_of.resize(child.index() + 1, None);
        }
        self.parent_of[child.index()] = Some(parent);
    }

    /// The `sync` transition: S_F = S_F ∪ P_F; P_F = ∅.
    fn sync_parent(&mut self, parent: FunctionId) {
        let bags = self.bags_of(parent);
        let (s_member, p_member) = (bags.s_member, bags.p_member);
        if let (Some(s), Some(p)) = (s_member, p_member) {
            let s_elem = self.elem(s);
            let p_elem = self.elem(p);
            self.bags.union_into(s_elem, p_elem);
        }
        self.bags_of(parent).p_member = None;
    }
}

impl Observer for SpBags {
    fn on_strand_start(&mut self, strand: StrandId, function: FunctionId) {
        if self.elem_of.len() <= strand.index() {
            self.elem_of.resize(strand.index() + 1, None);
        }
        let elem = self.bags.make_set(SpBag::S(function));
        self.elem_of[strand.index()] = Some(elem);
        let bags = self.bags_of(function);
        match bags.s_member {
            None => bags.s_member = Some(strand),
            Some(first) => {
                let first_elem = self.elem(first);
                self.bags.union_into(first_elem, elem);
            }
        }
        self.current = strand;
    }

    fn on_spawn(&mut self, ev: &futurerd_dag::events::SpawnEvent) {
        // Record the parent so the child's return can move its S-bag.
        self.note_child(ev.parent, ev.child);
    }

    fn on_return(&mut self, function: FunctionId, _last: StrandId) {
        // SP-Bags: P_parent = P_parent ∪ S_child.
        let Some(Some(parent)) = self.parent_of.get(function.index()).copied() else {
            // The root function returning at program end has no parent.
            return;
        };
        let child_member = match self.bags_of(function).s_member {
            Some(m) => m,
            None => return,
        };
        let child_elem = self.elem(child_member);
        let parent_bags = self.bags_of(parent);
        match parent_bags.p_member {
            None => {
                parent_bags.p_member = Some(child_member);
                self.bags.set_tag(child_elem, SpBag::P(parent));
            }
            Some(p_member) => {
                let p_elem = self.elem(p_member);
                self.bags.union_into(p_elem, child_elem);
            }
        }
    }

    fn on_sync(&mut self, ev: &SyncEvent) {
        // SP-Bags: S_F = S_F ∪ P_F; P_F = ∅.
        self.sync_parent(ev.parent);
    }

    fn on_create_future(&mut self, _ev: &CreateFutureEvent) {
        panic!("SP-Bags cannot race detect programs that use futures");
    }

    fn on_get_future(&mut self, _ev: &GetFutureEvent) {
        panic!("SP-Bags cannot race detect programs that use futures");
    }
}

impl Reachability for SpBags {
    fn precedes_current(&mut self, u: StrandId) -> bool {
        self.queries += 1;
        self.in_s_bag(u)
    }

    fn current_strand(&self) -> StrandId {
        self.current
    }

    fn name(&self) -> &'static str {
        "sp-bags"
    }

    fn stats(&self) -> ReachStats {
        let mut s = ReachStats {
            queries: self.queries,
            ..Default::default()
        };
        s.absorb_dsu(self.bags.counters());
        s
    }
}

/// SP-Bags with a *conservative futures fallback*: `create_fut` is treated
/// like `spawn` and `get_fut` like `sync`, so the classical fork-join
/// algorithm can consume any canonical trace instead of aborting on future
/// constructs.
///
/// This is deliberately wrong on futures — a `get` joins the getter with
/// *every* returned-but-unjoined child of the getting function, not just the
/// touched future, and non-SP reachability through future handles is
/// invisible to the bags — so on futures-bearing streams the verdict may
/// both miss real races and report spurious ones. Its purpose is to let the
/// differential driver *quantify* that error against the ground-truth
/// oracle (motivating the paper's algorithms); reports produced from
/// futures traces are marked
/// [approximate](crate::races::RaceReport::is_approximate). On pure
/// fork-join streams it behaves exactly like [`SpBags`].
#[derive(Debug, Default)]
pub struct SpBagsConservative {
    inner: SpBags,
}

impl SpBagsConservative {
    /// Creates the conservative fallback structure.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Observer for SpBagsConservative {
    fn on_program_start(&mut self, root: FunctionId, first: StrandId) {
        self.inner.on_program_start(root, first);
    }
    fn on_strand_start(&mut self, strand: StrandId, function: FunctionId) {
        self.inner.on_strand_start(strand, function);
    }
    fn on_spawn(&mut self, ev: &futurerd_dag::events::SpawnEvent) {
        self.inner.on_spawn(ev);
    }
    fn on_create_future(&mut self, ev: &CreateFutureEvent) {
        // Conservative: a created future is just a spawned child.
        self.inner.note_child(ev.parent, ev.child);
    }
    fn on_return(&mut self, function: FunctionId, last: StrandId) {
        self.inner.on_return(function, last);
    }
    fn on_sync(&mut self, ev: &SyncEvent) {
        self.inner.on_sync(ev);
    }
    fn on_get_future(&mut self, ev: &GetFutureEvent) {
        // Conservative: a get joins the getting function with its whole
        // P-bag, as a sync would.
        self.inner.sync_parent(ev.parent);
    }
    fn on_program_end(&mut self, last: StrandId) {
        self.inner.on_program_end(last);
    }
}

impl Reachability for SpBagsConservative {
    fn precedes_current(&mut self, u: StrandId) -> bool {
        self.inner.precedes_current(u)
    }

    fn current_strand(&self) -> StrandId {
        self.inner.current_strand()
    }

    fn name(&self) -> &'static str {
        "sp-bags-cons"
    }

    fn stats(&self) -> ReachStats {
        self.inner.stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use futurerd_dag::events::{ForkInfo, SpawnEvent};

    fn spawn_ev(parent: u32, child: u32, fork: u32, cont: u32, first: u32) -> SpawnEvent {
        SpawnEvent {
            parent: FunctionId(parent),
            child: FunctionId(child),
            fork_strand: StrandId(fork),
            cont_strand: StrandId(cont),
            child_first_strand: StrandId(first),
        }
    }

    fn sync_ev(parent: u32, child: u32, pre: u32, join: u32, child_last: u32) -> SyncEvent {
        SyncEvent {
            parent: FunctionId(parent),
            child: FunctionId(child),
            pre_join_strand: StrandId(pre),
            join_strand: StrandId(join),
            child_last_strand: StrandId(child_last),
            fork: ForkInfo {
                pre_fork_strand: StrandId(0),
                child_first_strand: StrandId(first_strand_placeholder()),
                cont_strand: StrandId(pre),
            },
        }
    }

    fn first_strand_placeholder() -> u32 {
        1
    }

    #[test]
    fn spawned_child_is_parallel_until_sync() {
        let mut sp = SpBags::new();
        sp.on_program_start(FunctionId(0), StrandId(0));
        sp.on_strand_start(StrandId(0), FunctionId(0));
        sp.on_spawn(&spawn_ev(0, 1, 0, 2, 1));
        sp.on_strand_start(StrandId(1), FunctionId(1));
        assert!(sp.precedes_current(StrandId(0)));
        sp.on_return(FunctionId(1), StrandId(1));
        sp.on_strand_start(StrandId(2), FunctionId(0));
        assert!(!sp.precedes_current(StrandId(1)));
        assert!(sp.precedes_current(StrandId(0)));
        sp.on_sync(&sync_ev(0, 1, 2, 3, 1));
        sp.on_strand_start(StrandId(3), FunctionId(0));
        assert!(sp.precedes_current(StrandId(1)));
        assert!(sp.precedes_current(StrandId(2)));
        assert_eq!(sp.name(), "sp-bags");
        assert!(sp.stats().queries >= 4);
    }

    #[test]
    fn two_spawned_children_are_parallel_with_each_other_until_sync() {
        let mut sp = SpBags::new();
        sp.on_strand_start(StrandId(0), FunctionId(0));
        // spawn child 1
        sp.on_spawn(&spawn_ev(0, 1, 0, 2, 1));
        sp.on_strand_start(StrandId(1), FunctionId(1));
        sp.on_return(FunctionId(1), StrandId(1));
        sp.on_strand_start(StrandId(2), FunctionId(0));
        // spawn child 2
        sp.on_spawn(&spawn_ev(0, 2, 2, 4, 3));
        sp.on_strand_start(StrandId(3), FunctionId(2));
        // While child 2 runs, child 1 must look parallel.
        assert!(!sp.precedes_current(StrandId(1)));
        sp.on_return(FunctionId(2), StrandId(3));
        sp.on_strand_start(StrandId(4), FunctionId(0));
        assert!(!sp.precedes_current(StrandId(1)));
        assert!(!sp.precedes_current(StrandId(3)));
        sp.on_sync(&sync_ev(0, 2, 4, 5, 3));
        sp.on_strand_start(StrandId(5), FunctionId(0));
        assert!(sp.precedes_current(StrandId(1)));
        assert!(sp.precedes_current(StrandId(3)));
    }

    #[test]
    #[should_panic(expected = "cannot race detect programs that use futures")]
    fn future_events_panic() {
        let mut sp = SpBags::new();
        sp.on_strand_start(StrandId(0), FunctionId(0));
        sp.on_create_future(&CreateFutureEvent {
            parent: FunctionId(0),
            child: FunctionId(1),
            creator_strand: StrandId(0),
            cont_strand: StrandId(2),
            child_first_strand: StrandId(1),
        });
    }

    #[test]
    fn conservative_fallback_treats_create_get_as_spawn_sync() {
        // root creates a future, continues (parallel), then gets it — the
        // conservative structure must survive the stream and order the
        // future's strand before the getter.
        let mut sp = SpBagsConservative::new();
        sp.on_program_start(FunctionId(0), StrandId(0));
        sp.on_strand_start(StrandId(0), FunctionId(0));
        sp.on_create_future(&CreateFutureEvent {
            parent: FunctionId(0),
            child: FunctionId(1),
            creator_strand: StrandId(0),
            cont_strand: StrandId(2),
            child_first_strand: StrandId(1),
        });
        sp.on_strand_start(StrandId(1), FunctionId(1));
        sp.on_return(FunctionId(1), StrandId(1));
        sp.on_strand_start(StrandId(2), FunctionId(0));
        // Parallel with the continuation, as with a spawned child.
        assert!(!sp.precedes_current(StrandId(1)));
        sp.on_get_future(&GetFutureEvent {
            parent: FunctionId(0),
            future: FunctionId(1),
            pre_get_strand: StrandId(2),
            getter_strand: StrandId(3),
            future_last_strand: StrandId(1),
            prior_touches: 0,
        });
        sp.on_strand_start(StrandId(3), FunctionId(0));
        assert!(sp.precedes_current(StrandId(1)));
        assert_eq!(sp.name(), "sp-bags-cons");
        assert!(sp.stats().queries >= 2);
    }

    #[test]
    fn conservative_fallback_survives_multi_touch_gets() {
        let mut sp = SpBagsConservative::new();
        sp.on_strand_start(StrandId(0), FunctionId(0));
        sp.on_create_future(&CreateFutureEvent {
            parent: FunctionId(0),
            child: FunctionId(1),
            creator_strand: StrandId(0),
            cont_strand: StrandId(2),
            child_first_strand: StrandId(1),
        });
        sp.on_strand_start(StrandId(1), FunctionId(1));
        sp.on_return(FunctionId(1), StrandId(1));
        sp.on_strand_start(StrandId(2), FunctionId(0));
        for (touch, pre, getter) in [(0u32, 2u32, 3u32), (1, 3, 4)] {
            sp.on_get_future(&GetFutureEvent {
                parent: FunctionId(0),
                future: FunctionId(1),
                pre_get_strand: StrandId(pre),
                getter_strand: StrandId(getter),
                future_last_strand: StrandId(1),
                prior_touches: touch,
            });
            sp.on_strand_start(StrandId(getter), FunctionId(0));
        }
        assert!(sp.precedes_current(StrandId(1)));
    }
}
