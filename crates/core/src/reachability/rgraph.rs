//! The reachability dag `R` over attached sets, with an incrementally
//! maintained transitive closure.
//!
//! MultiBags+ keeps `R` small (O(k) nodes for k `get_fut` operations) and
//! pays O(k) per arc insertion to keep the closure exact, so queries are
//! O(1). FutureRD represents the closure as bit vectors and propagates
//! reachability with parallel bit operations; this implementation does the
//! same with [`DynBitSet`].

use crate::bitset::DynBitSet;
use serde::{Deserialize, Serialize};

/// Identifier of a node of `R` (an attached set).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct RNodeId(pub u32);

impl RNodeId {
    /// The id as an index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for RNodeId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "R{}", self.0)
    }
}

/// A dag with an exact, incrementally maintained transitive closure.
#[derive(Debug, Clone, Default)]
pub struct RGraph {
    /// `pred[i]`: nodes with a (non-empty) path to `i`.
    pred: Vec<DynBitSet>,
    /// `succ[i]`: nodes reachable from `i` by a non-empty path.
    succ: Vec<DynBitSet>,
    arcs: u64,
}

impl RGraph {
    /// Creates an empty graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.pred.len()
    }

    /// Number of arcs added (not counting arcs already implied by the
    /// closure, which are still stored but not re-counted).
    pub fn num_arcs(&self) -> u64 {
        self.arcs
    }

    /// Adds a node with no arcs and returns its id.
    pub fn add_node(&mut self) -> RNodeId {
        let id = RNodeId(self.pred.len() as u32);
        self.pred.push(DynBitSet::new());
        self.succ.push(DynBitSet::new());
        id
    }

    /// Adds an arc `from -> to` and updates the transitive closure.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if the arc would create a cycle; the
    /// execution order guarantees arcs always point forward in time.
    pub fn add_arc(&mut self, from: RNodeId, to: RNodeId) {
        debug_assert!(
            from != to && !self.reaches(to, from),
            "arc {from}->{to} would create a cycle in R"
        );
        self.arcs += 1;
        if self.reaches(from, to) {
            return;
        }
        // ancestors = pred(from) ∪ {from}; descendants = succ(to) ∪ {to}.
        let mut ancestors = self.pred[from.index()].clone();
        ancestors.set(from.index());
        // In MultiBags+ almost every arc points at a freshly created node
        // (`to` has no successors yet), so the descendant set is tiny;
        // enumerate it explicitly and update the closure with single-bit
        // writes, which keeps the common case at O(|ancestors|) per arc and
        // the total closure maintenance at the O(k²) of Theorem 5.1.
        let mut descendant_ids: Vec<usize> = self.succ[to.index()].iter().collect();
        descendant_ids.push(to.index());
        for a in ancestors.iter() {
            for &d in &descendant_ids {
                self.succ[a].set(d);
            }
        }
        for &d in &descendant_ids {
            self.pred[d].union_with(&ancestors);
        }
    }

    /// True iff there is a non-empty path `from -> to`.
    pub fn reaches(&self, from: RNodeId, to: RNodeId) -> bool {
        self.succ
            .get(from.index())
            .map(|s| s.get(to.index()))
            .unwrap_or(false)
    }

    /// Approximate heap usage of the closure in bytes.
    pub fn heap_bytes(&self) -> usize {
        self.pred
            .iter()
            .chain(self.succ.iter())
            .map(|b| b.heap_bytes())
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_graph_has_no_reachability() {
        let g = RGraph::new();
        assert_eq!(g.num_nodes(), 0);
        assert!(!g.reaches(RNodeId(0), RNodeId(1)));
    }

    #[test]
    fn direct_arc_is_reachable() {
        let mut g = RGraph::new();
        let a = g.add_node();
        let b = g.add_node();
        g.add_arc(a, b);
        assert!(g.reaches(a, b));
        assert!(!g.reaches(b, a));
        assert!(!g.reaches(a, a));
        assert_eq!(g.num_arcs(), 1);
    }

    #[test]
    fn closure_is_transitive_in_both_directions() {
        let mut g = RGraph::new();
        let n: Vec<_> = (0..6).map(|_| g.add_node()).collect();
        // chain 0->1->2 and 3->4->5, then bridge 2->3.
        g.add_arc(n[0], n[1]);
        g.add_arc(n[1], n[2]);
        g.add_arc(n[3], n[4]);
        g.add_arc(n[4], n[5]);
        assert!(!g.reaches(n[0], n[5]));
        g.add_arc(n[2], n[3]);
        for i in 0..6 {
            for j in 0..6 {
                assert_eq!(g.reaches(n[i], n[j]), i < j, "({i},{j})");
            }
        }
    }

    #[test]
    fn diamond_reachability() {
        let mut g = RGraph::new();
        let a = g.add_node();
        let b = g.add_node();
        let c = g.add_node();
        let d = g.add_node();
        g.add_arc(a, b);
        g.add_arc(a, c);
        g.add_arc(b, d);
        g.add_arc(c, d);
        assert!(g.reaches(a, d));
        assert!(!g.reaches(b, c));
        assert!(!g.reaches(c, b));
    }

    #[test]
    fn redundant_arcs_do_not_break_closure() {
        let mut g = RGraph::new();
        let a = g.add_node();
        let b = g.add_node();
        let c = g.add_node();
        g.add_arc(a, b);
        g.add_arc(b, c);
        g.add_arc(a, c); // already implied
        assert!(g.reaches(a, c));
        assert_eq!(g.num_arcs(), 3);
    }

    #[test]
    fn closure_matches_floyd_warshall_on_random_dags() {
        // Deterministic pseudo-random dag: arcs only from lower to higher
        // ids, compare against a Floyd–Warshall closure.
        let n = 40usize;
        let mut state = 0x243f6a8885a308d3u64;
        let mut next = || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let mut g = RGraph::new();
        let nodes: Vec<_> = (0..n).map(|_| g.add_node()).collect();
        let mut adj = vec![vec![false; n]; n];
        for i in 0..n {
            for j in (i + 1)..n {
                if next() % 10 < 2 {
                    g.add_arc(nodes[i], nodes[j]);
                    adj[i][j] = true;
                }
            }
        }
        // Floyd–Warshall closure.
        for k in 0..n {
            for i in 0..n {
                if adj[i][k] {
                    for j in 0..n {
                        if adj[k][j] {
                            adj[i][j] = true;
                        }
                    }
                }
            }
        }
        for i in 0..n {
            for j in 0..n {
                assert_eq!(g.reaches(nodes[i], nodes[j]), adj[i][j], "({i},{j})");
            }
        }
    }

    #[test]
    fn heap_bytes_grows_with_nodes() {
        let mut g = RGraph::new();
        let a = g.add_node();
        for _ in 0..200 {
            let b = g.add_node();
            g.add_arc(a, b);
        }
        assert!(g.heap_bytes() > 0);
    }
}
