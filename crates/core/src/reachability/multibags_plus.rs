//! The MultiBags+ algorithm (Section 5 of the paper): reachability for
//! programs that mix fork-join parallelism with *general* (possibly
//! multi-touch) futures.
//!
//! MultiBags+ maintains three cooperating structures:
//!
//! * `DSP` — the MultiBags bags over the series-parallel skeleton: `spawn`
//!   is treated like `create_fut` and `sync` like `get_fut`, but nothing
//!   happens at a real `get_fut`. If a strand is in an S-bag it is
//!   sequentially before the current strand via SP edges alone.
//! * `DNSP` — a second disjoint-set structure grouping strands into
//!   *attached* sets (which appear in `R`) and *unattached* sets (complete
//!   series-parallel subdags with no incident non-SP edges, which carry an
//!   attached-predecessor and possibly an attached-successor pointer used as
//!   proxies when querying `R`).
//! * `R` — a dag over the attached sets with an exact transitive closure
//!   ([`RGraph`]), recording reachability that flows through `create_fut` /
//!   `get_fut` edges.
//!
//! The update rules follow Figure 4 of the paper; the query follows
//! Figure 3. Only O(k) attached sets are ever created (k = number of
//! `get_fut`s), giving the `O((T1 + k²)·α(m,n))` bound of Theorem 5.1.

use super::multibags::MultiBags;
use super::rgraph::{RGraph, RNodeId};
use super::Reachability;
use crate::stats::ReachStats;
use futurerd_dag::events::{CreateFutureEvent, GetFutureEvent, SpawnEvent, SyncEvent};
use futurerd_dag::{FunctionId, Observer, StrandId};
use futurerd_dsu::{ElementId, TaggedDisjointSets};

/// The state of a `DNSP` set.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum NspTag {
    /// The set appears in `R` as `rnode`.
    Attached {
        /// Node of `R` representing this set.
        rnode: RNodeId,
    },
    /// A complete series-parallel subdag with no incident non-SP edges.
    Unattached {
        /// Attached set all of whose strands precede every strand of this
        /// set (with no intervening non-SP edge); used as the query proxy
        /// for the *destination* side.
        att_pred: RNodeId,
        /// Attached set containing the join that follows this subdag, once
        /// it has executed; used as the query proxy for the *source* side.
        att_succ: Option<RNodeId>,
    },
}

/// Reachability for general futures (Section 5).
#[derive(Debug, Default)]
pub struct MultiBagsPlus {
    /// The series-parallel bags (`DSP`).
    dsp: MultiBags,
    /// The non-SP disjoint sets (`DNSP`).
    dnsp: TaggedDisjointSets<NspTag>,
    /// `DNSP` element of each strand, indexed by strand id.
    nsp_elem: Vec<Option<ElementId>>,
    /// The reachability dag over attached sets.
    r: RGraph,
    current: StrandId,
    queries: u64,
    /// Times a set the algorithm expected to be attached was attachified
    /// defensively (should stay zero; see `ReachStats`).
    unexpected_attachifies: u64,
}

impl MultiBagsPlus {
    /// Creates the reachability structure for general futures.
    pub fn new() -> Self {
        Self {
            dsp: MultiBags::dsp_for_multibags_plus(),
            ..Default::default()
        }
    }

    /// Number of attached sets (nodes of `R`) created so far.
    pub fn num_attached_sets(&self) -> usize {
        self.r.num_nodes()
    }

    /// Read-only access to `R` (for tests reproducing Figure 5).
    pub fn r_graph(&self) -> &RGraph {
        &self.r
    }

    fn elem(&self, strand: StrandId) -> ElementId {
        self.nsp_elem
            .get(strand.index())
            .copied()
            .flatten()
            .unwrap_or_else(|| panic!("strand {strand} is not registered in DNSP"))
    }

    fn register(&mut self, strand: StrandId, elem: ElementId) {
        if self.nsp_elem.len() <= strand.index() {
            self.nsp_elem.resize(strand.index() + 1, None);
        }
        debug_assert!(
            self.nsp_elem[strand.index()].is_none(),
            "strand {strand} registered twice in DNSP"
        );
        self.nsp_elem[strand.index()] = Some(elem);
    }

    fn make_unattached(&mut self, strand: StrandId, att_pred: RNodeId) {
        let elem = self.dnsp.make_set(NspTag::Unattached {
            att_pred,
            att_succ: None,
        });
        self.register(strand, elem);
    }

    fn make_attached(&mut self, strand: StrandId) -> RNodeId {
        let rnode = self.r.add_node();
        let elem = self.dnsp.make_set(NspTag::Attached { rnode });
        self.register(strand, elem);
        rnode
    }

    fn is_attached(&mut self, strand: StrandId) -> bool {
        let elem = self.elem(strand);
        matches!(*self.dnsp.tag(elem), NspTag::Attached { .. })
    }

    /// The attached-predecessor proxy of a strand's set: the set's own `R`
    /// node when attached, its `attPred` otherwise.
    fn att_pred_proxy(&mut self, strand: StrandId) -> RNodeId {
        let elem = self.elem(strand);
        match *self.dnsp.tag(elem) {
            NspTag::Attached { rnode } => rnode,
            NspTag::Unattached { att_pred, .. } => att_pred,
        }
    }

    /// The attached-successor proxy of a strand's set: the set's own `R`
    /// node when attached, its `attSucc` otherwise (None if not yet set).
    fn att_succ_proxy(&mut self, strand: StrandId) -> Option<RNodeId> {
        let elem = self.elem(strand);
        match *self.dnsp.tag(elem) {
            NspTag::Attached { rnode } => Some(rnode),
            NspTag::Unattached { att_succ, .. } => att_succ,
        }
    }

    /// `Attachify(u)` (Figure 4, lines 18–22): if the set containing `u` is
    /// unattached, add it to `R` with an arc from its attached predecessor.
    fn attachify(&mut self, strand: StrandId) -> RNodeId {
        let elem = self.elem(strand);
        match *self.dnsp.tag(elem) {
            NspTag::Attached { rnode } => rnode,
            NspTag::Unattached { att_pred, .. } => {
                let rnode = self.r.add_node();
                self.r.add_arc(att_pred, rnode);
                self.dnsp.set_tag(elem, NspTag::Attached { rnode });
                rnode
            }
        }
    }

    /// Returns the `R` node of a set the algorithm expects to already be
    /// attached. If it is not (which the paper's invariants say cannot
    /// happen), the set is attachified defensively and the event counted.
    fn expect_attached(&mut self, strand: StrandId) -> RNodeId {
        if !self.is_attached(strand) {
            self.unexpected_attachifies += 1;
        }
        self.attachify(strand)
    }

    /// Unions the set containing `victim` into the set containing `winner`
    /// (keeping the winner's tag), as in `Union(DNSP, winner, victim)`.
    fn union_into(&mut self, winner: StrandId, victim: StrandId) {
        let w = self.elem(winner);
        let v = self.elem(victim);
        self.dnsp.union_into(w, v);
    }

    /// Creates the `DNSP` element for a join strand `j` and unions it into
    /// the set containing `host` (Figure 4, lines 32 and 45).
    fn make_strand_in_set_of(&mut self, j: StrandId, host: StrandId) {
        let host_elem = self.elem(host);
        // The placeholder tag is discarded by the union (the host's tag
        // wins); use the host's current tag shape to avoid inventing state.
        let placeholder = *self.dnsp.tag(host_elem);
        let j_elem = self.dnsp.make_set(placeholder);
        self.register(j, j_elem);
        self.dnsp.union_into(host_elem, j_elem);
    }
}

impl Observer for MultiBagsPlus {
    fn on_program_start(&mut self, root: FunctionId, first_strand: StrandId) {
        self.dsp.on_program_start(root, first_strand);
        // Figure 4, line 1: the first strand goes into an attached set with
        // no predecessor.
        self.make_attached(first_strand);
    }

    fn on_strand_start(&mut self, strand: StrandId, function: FunctionId) {
        self.dsp.on_strand_start(strand, function);
        self.current = strand;
    }

    fn on_spawn(&mut self, ev: &SpawnEvent) {
        self.dsp.on_spawn(ev);
        // Figure 4, lines 3–6: the continuation and the child's first strand
        // start new unattached sets whose attached predecessor is inherited
        // from the forking strand.
        let pred = self.att_pred_proxy(ev.fork_strand);
        self.make_unattached(ev.cont_strand, pred);
        self.make_unattached(ev.child_first_strand, pred);
    }

    fn on_create_future(&mut self, ev: &CreateFutureEvent) {
        self.dsp.on_create_future(ev);
        // Figure 4, lines 8–12.
        let ru = self.attachify(ev.creator_strand);
        let rv = self.make_attached(ev.cont_strand);
        self.r.add_arc(ru, rv);
        let rw = self.make_attached(ev.child_first_strand);
        self.r.add_arc(ru, rw);
    }

    fn on_return(&mut self, function: FunctionId, last_strand: StrandId) {
        self.dsp.on_return(function, last_strand);
    }

    fn on_get_future(&mut self, ev: &GetFutureEvent) {
        self.dsp.on_get_future(ev);
        // Figure 4, lines 14–17.
        let ru = self.attachify(ev.pre_get_strand);
        let rv = self.make_attached(ev.getter_strand);
        self.r.add_arc(ru, rv);
        // The future's last strand is guaranteed to be in an attached set.
        let rw = self.expect_attached(ev.future_last_strand);
        self.r.add_arc(rw, rv);
    }

    fn on_sync(&mut self, ev: &SyncEvent) {
        self.dsp.on_sync(ev);
        // Figure 4, lines 24–46.
        let f = ev.fork.pre_fork_strand;
        let s1 = ev.fork.child_first_strand;
        let s2 = ev.fork.cont_strand;
        let j = ev.join_strand;
        let t1 = ev.child_last_strand;
        let t2 = ev.pre_join_strand;

        let t1_attached = self.is_attached(t1);
        let t2_attached = self.is_attached(t2);

        if !t1_attached && !t2_attached {
            // Lines 29–32: no non-SP edges below this join — fold the whole
            // parallel composition into the set containing the fork strand.
            self.union_into(f, t1);
            self.union_into(f, t2);
            self.make_strand_in_set_of(j, f);
        } else if t1_attached && t2_attached {
            // Lines 33–40: both branches contain non-SP edges.
            let rf = self.attachify(f);
            let rs1 = self.expect_attached(s1);
            let rs2 = self.expect_attached(s2);
            self.r.add_arc(rf, rs1);
            self.r.add_arc(rf, rs2);
            let rj = self.make_attached(j);
            let rt1 = self.expect_attached(t1);
            let rt2 = self.expect_attached(t2);
            self.r.add_arc(rt1, rj);
            self.r.add_arc(rt2, rj);
        } else {
            // Lines 41–46: exactly one branch contains non-SP edges.
            let (ta, tu, sa) = if t1_attached {
                (t1, t2, s1)
            } else {
                (t2, t1, s2)
            };
            if !self.is_attached(f) {
                // Union(DNSP, sa, f): grow the attached branch's source set
                // backwards over the fork strand's set.
                self.union_into(sa, f);
            }
            // Union(DNSP, ta, Make-Set(j)).
            self.make_strand_in_set_of(j, ta);
            // Find(DNSP, tu).attSucc = Find(DNSP, j).
            let rj = self.expect_attached(j);
            let tu_elem = self.elem(tu);
            if let NspTag::Unattached { att_succ, .. } = self.dnsp.tag_mut(tu_elem) {
                *att_succ = Some(rj);
            }
        }
    }

    fn on_program_end(&mut self, last_strand: StrandId) {
        self.dsp.on_program_end(last_strand);
    }
}

impl Reachability for MultiBagsPlus {
    fn precedes_current(&mut self, u: StrandId) -> bool {
        self.queries += 1;
        let v = self.current;
        if u == v {
            return true;
        }
        // Figure 3, lines 1–2: the SP bags answer all queries whose path
        // uses no get edge.
        if self.dsp.in_s_bag(u) {
            return true;
        }
        // Lines 3–5: proxy for the destination.
        let sv = self.att_pred_proxy(v);
        // Lines 6–9: proxy for the source.
        let su = match self.att_succ_proxy(u) {
            Some(r) => r,
            None => return false,
        };
        // Line 10: consult the transitive closure of R.
        self.r.reaches(su, sv)
    }

    fn current_strand(&self) -> StrandId {
        self.current
    }

    fn name(&self) -> &'static str {
        "multibags+"
    }

    fn stats(&self) -> ReachStats {
        let mut s = ReachStats {
            queries: self.queries + self.dsp.stats().queries,
            attached_sets: self.r.num_nodes() as u64,
            r_arcs: self.r.num_arcs(),
            r_bytes: self.r.heap_bytes() as u64,
            unexpected_attachifies: self.unexpected_attachifies,
            ..Default::default()
        };
        s.absorb_dsu(self.dnsp.counters());
        let dsp_stats = self.dsp.stats();
        s.make_sets += dsp_stats.make_sets;
        s.unions += dsp_stats.unions;
        s.finds += dsp_stats.finds;
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use futurerd_dag::events::ForkInfo;

    /// Root creates a future, continues (parallel), then gets it.
    #[test]
    fn future_parallel_until_get() {
        let root = FunctionId(0);
        let fut = FunctionId(1);
        let (s0, sf, s_cont, s_get) = (StrandId(0), StrandId(1), StrandId(2), StrandId(3));
        let mut mbp = MultiBagsPlus::new();
        mbp.on_program_start(root, s0);
        mbp.on_strand_start(s0, root);
        mbp.on_create_future(&CreateFutureEvent {
            parent: root,
            child: fut,
            creator_strand: s0,
            cont_strand: s_cont,
            child_first_strand: sf,
        });
        mbp.on_strand_start(sf, fut);
        assert!(mbp.precedes_current(s0));
        mbp.on_return(fut, sf);
        mbp.on_strand_start(s_cont, root);
        // The future body is parallel with the continuation.
        assert!(!mbp.precedes_current(sf));
        assert!(mbp.precedes_current(s0));
        mbp.on_get_future(&GetFutureEvent {
            parent: root,
            future: fut,
            pre_get_strand: s_cont,
            getter_strand: s_get,
            future_last_strand: sf,
            prior_touches: 0,
        });
        mbp.on_strand_start(s_get, root);
        // After the get, the future body precedes us — via R, not via DSP.
        assert!(mbp.precedes_current(sf));
        assert!(mbp.precedes_current(s_cont));
        assert_eq!(mbp.stats().unexpected_attachifies, 0);
        assert!(mbp.num_attached_sets() >= 4);
    }

    /// Pure fork-join program: no attached sets beyond the initial one.
    #[test]
    fn fork_join_only_keeps_r_small() {
        let root = FunctionId(0);
        let child = FunctionId(1);
        let (s0, sc, s_cont, s_join) = (StrandId(0), StrandId(1), StrandId(2), StrandId(3));
        let mut mbp = MultiBagsPlus::new();
        mbp.on_program_start(root, s0);
        mbp.on_strand_start(s0, root);
        mbp.on_spawn(&SpawnEvent {
            parent: root,
            child,
            fork_strand: s0,
            cont_strand: s_cont,
            child_first_strand: sc,
        });
        mbp.on_strand_start(sc, child);
        mbp.on_return(child, sc);
        mbp.on_strand_start(s_cont, root);
        assert!(!mbp.precedes_current(sc));
        mbp.on_sync(&SyncEvent {
            parent: root,
            child,
            pre_join_strand: s_cont,
            join_strand: s_join,
            child_last_strand: sc,
            fork: ForkInfo {
                pre_fork_strand: s0,
                child_first_strand: sc,
                cont_strand: s_cont,
            },
        });
        mbp.on_strand_start(s_join, root);
        assert!(mbp.precedes_current(sc));
        assert!(mbp.precedes_current(s_cont));
        // A series-parallel program creates no attached sets beyond the
        // program's initial one (k = 0 ⇒ |R| = O(1)).
        assert_eq!(mbp.num_attached_sets(), 1);
        assert_eq!(mbp.stats().unexpected_attachifies, 0);
    }

    #[test]
    fn name_and_stats_are_exposed() {
        let mut mbp = MultiBagsPlus::new();
        mbp.on_program_start(FunctionId(0), StrandId(0));
        mbp.on_strand_start(StrandId(0), FunctionId(0));
        assert_eq!(mbp.name(), "multibags+");
        assert!(mbp.precedes_current(StrandId(0)));
        assert_eq!(mbp.stats().attached_sets, 1);
    }
}
