//! A growable bitset used by the reachability matrix `R` and the graph
//! oracle.
//!
//! Unlike `futurerd_dag::reachability::BitSet` (fixed capacity, sized when an
//! oracle is built from a finished dag), the detector's sets grow as the
//! execution unfolds, so this bitset extends itself on demand and treats
//! out-of-range bits as zero.

use serde::{Deserialize, Serialize};

/// A dynamically growing bitset.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct DynBitSet {
    words: Vec<u64>,
}

impl DynBitSet {
    /// Creates an empty bitset.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty bitset with room for `bits` bits.
    pub fn with_capacity(bits: usize) -> Self {
        Self {
            words: Vec::with_capacity(bits.div_ceil(64)),
        }
    }

    #[inline]
    fn ensure(&mut self, word: usize) {
        if self.words.len() <= word {
            self.words.resize(word + 1, 0);
        }
    }

    /// Sets bit `i`.
    #[inline]
    pub fn set(&mut self, i: usize) {
        self.ensure(i / 64);
        self.words[i / 64] |= 1u64 << (i % 64);
    }

    /// Clears bit `i`.
    #[inline]
    pub fn clear(&mut self, i: usize) {
        if let Some(w) = self.words.get_mut(i / 64) {
            *w &= !(1u64 << (i % 64));
        }
    }

    /// Returns bit `i` (false if beyond the current capacity).
    #[inline]
    pub fn get(&self, i: usize) -> bool {
        self.words
            .get(i / 64)
            .map(|w| (w >> (i % 64)) & 1 == 1)
            .unwrap_or(false)
    }

    /// Ors `other` into `self` (bit-parallel). Trailing and interior zero
    /// words of `other` are skipped, so the cost is proportional to the
    /// number of non-zero words — important for the reachability matrix `R`,
    /// whose per-arc propagation usually adds a single new bit to many rows.
    pub fn union_with(&mut self, other: &DynBitSet) {
        let last_nonzero = match other.words.iter().rposition(|&w| w != 0) {
            Some(i) => i,
            None => return,
        };
        self.ensure(last_nonzero);
        for (i, &w) in other.words[..=last_nonzero].iter().enumerate() {
            if w != 0 {
                self.words[i] |= w;
            }
        }
    }

    /// Number of set bits.
    pub fn count(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// True if no bit is set.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Iterates over the indices of set bits, in increasing order.
    pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &w)| {
            (0..64).filter_map(move |b| ((w >> b) & 1 == 1).then_some(wi * 64 + b))
        })
    }

    /// Approximate heap usage in bytes (for the memory statistics the paper
    /// discusses when the reachability matrix grows with small base cases).
    pub fn heap_bytes(&self) -> usize {
        self.words.capacity() * std::mem::size_of::<u64>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_get_roundtrip_across_word_boundaries() {
        let mut b = DynBitSet::new();
        for i in [0usize, 1, 63, 64, 65, 127, 128, 1000] {
            assert!(!b.get(i));
            b.set(i);
            assert!(b.get(i));
        }
        assert_eq!(b.count(), 8);
    }

    #[test]
    fn out_of_range_reads_are_false() {
        let b = DynBitSet::new();
        assert!(!b.get(0));
        assert!(!b.get(10_000));
        assert!(b.is_empty());
    }

    #[test]
    fn clear_resets_bits() {
        let mut b = DynBitSet::new();
        b.set(70);
        b.clear(70);
        assert!(!b.get(70));
        // Clearing an out-of-range bit is a no-op.
        b.clear(10_000);
        assert!(b.is_empty());
    }

    #[test]
    fn union_grows_the_target() {
        let mut a = DynBitSet::new();
        a.set(1);
        let mut b = DynBitSet::new();
        b.set(200);
        a.union_with(&b);
        assert!(a.get(1) && a.get(200));
        assert_eq!(a.count(), 2);
    }

    #[test]
    fn iter_yields_sorted_indices() {
        let mut b = DynBitSet::new();
        for i in [5usize, 64, 3, 128] {
            b.set(i);
        }
        assert_eq!(b.iter().collect::<Vec<_>>(), vec![3, 5, 64, 128]);
    }

    #[test]
    fn with_capacity_does_not_set_bits() {
        let b = DynBitSet::with_capacity(1024);
        assert!(b.is_empty());
        assert_eq!(b.count(), 0);
    }
}
