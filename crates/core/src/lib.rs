//! # futurerd-core
//!
//! A from-scratch Rust implementation of **FutureRD** — the on-the-fly
//! determinacy-race detector for task-parallel programs with futures from
//! *Efficient Race Detection with Futures* (Utterback, Agrawal, Fineman,
//! Lee — PPoPP 2019).
//!
//! A determinacy race occurs when two logically parallel strands access the
//! same memory location and at least one access is a write. The detector
//! runs the program **sequentially in depth-first eager order** (see
//! `futurerd-runtime`) and maintains two components:
//!
//! * a **reachability data structure** answering "is the previously executed
//!   strand *u* sequentially before the currently executing strand?" —
//!   the paper's contribution:
//!   * [`MultiBags`] for *structured* futures, in
//!     `O(T1·α(m,n))` total time (Section 4 of the paper);
//!   * [`MultiBagsPlus`] for *general* futures,
//!     in `O((T1+k²)·α(m,n))` (Section 5);
//!   * plus an [`SpBags`] baseline for pure fork-join
//!     programs and a ground-truth [`GraphOracle`]
//!     used in tests and ablations;
//! * an **access history** ([`shadow::AccessHistory`]) storing, per
//!   four-byte granule, the last writer and the list of readers since that
//!   write (Section 3).
//!
//! The [`detector`] module glues the two together into observers that plug
//! into the sequential executor, one per measurement configuration used in
//! the paper's evaluation (baseline / reachability / instrumentation /
//! full). The [`replay`] module feeds a recorded
//! [`Trace`](futurerd_dag::trace::Trace) through those same observers, so a
//! program recorded once can be detected on offline, repeatedly, by every
//! algorithm. The [`parallel`] module shards that offline detection across
//! threads: reachability is frozen into an immutable index in one pass and
//! the granule space is partitioned across workers in a second, with a
//! deterministic merge making the result identical to sequential replay.
//!
//! ## Quick start
//!
//! ```
//! use futurerd_core::detector::RaceDetector;
//! use futurerd_core::reachability::MultiBags;
//! use futurerd_runtime::{run_program, ShadowArray};
//!
//! // A program with a determinacy race: the spawned child writes a cell
//! // that the parent's continuation reads before the sync.
//! let (_, detector, _) = run_program(RaceDetector::<MultiBags>::structured(), |cx| {
//!     let mut shared = ShadowArray::new(cx, 1, 0u32);
//!     cx.spawn(|cx| shared.set(cx, 0, 1));
//!     let _racy = shared.get(cx, 0); // races with the child's write
//!     cx.sync();
//!     let _fine = shared.get(cx, 0); // after the sync: no race
//! });
//! let report = detector.into_report();
//! assert_eq!(report.race_count(), 1);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod bitset;
pub mod detector;
pub mod parallel;
pub mod races;
pub mod reachability;
pub mod replay;
pub mod shadow;
pub mod stats;

pub use detector::{InstrumentationOnly, RaceDetector, ReachabilityOnly};
pub use parallel::{par_replay_detect, DetectExecutor, ReachIndex, ShadowPartition};
pub use races::{AccessKind, Race, RaceReport};
pub use reachability::{
    GraphOracle, MultiBags, MultiBagsPlus, Reachability, SpBags, SpBagsConservative,
};
pub use replay::{differential, replay_all, replay_detect, ReplayAlgorithm};
pub use stats::ReachStats;
