//! Race descriptions and reports.

use futurerd_dag::{MemAddr, StrandId};
use serde::{Deserialize, Serialize};
use std::collections::HashSet;

/// Whether an access was a read or a write.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AccessKind {
    /// A load.
    Read,
    /// A store.
    Write,
}

impl std::fmt::Display for AccessKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            AccessKind::Read => "read",
            AccessKind::Write => "write",
        })
    }
}

/// A determinacy race: two logically parallel accesses to the same granule,
/// at least one of which is a write.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Race {
    /// Address of the racing granule (granule-aligned).
    pub addr: MemAddr,
    /// The earlier access (already in the access history).
    pub prior_strand: StrandId,
    /// Kind of the earlier access.
    pub prior_kind: AccessKind,
    /// The access that exposed the race (the currently executing strand).
    pub current_strand: StrandId,
    /// Kind of the current access.
    pub current_kind: AccessKind,
}

impl std::fmt::Display for Race {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "race on {}: {} by {} is logically parallel with {} by {}",
            self.addr, self.prior_kind, self.prior_strand, self.current_kind, self.current_strand
        )
    }
}

/// Collects races found during a run.
///
/// Like FutureRD, the detector reports *that* a location races (with one
/// witness pair per granule) rather than every racing pair — full
/// enumeration can be quadratic. The total number of racy pairs observed is
/// still counted.
///
/// Two reports compare equal ([`PartialEq`]) when they hold the same
/// witnesses in the same order, the same racy-granule set, the same
/// observation total and the same configuration — the equality the parallel
/// engine's determinism tests assert against sequential replay.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RaceReport {
    races: Vec<Race>,
    racy_granules: HashSet<u64>,
    /// Total racing pairs observed, including duplicates per granule.
    total_observations: u64,
    /// Maximum number of distinct witnesses kept.
    max_witnesses: usize,
    /// True when the producing detector is known to be approximate on the
    /// replayed program class (e.g. the conservative SP-Bags fallback on
    /// futures traces): the verdict may both miss and invent races.
    may_overapproximate: bool,
}

impl Default for RaceReport {
    fn default() -> Self {
        Self::new(1024)
    }
}

impl RaceReport {
    /// Creates a report keeping at most `max_witnesses` distinct witness
    /// races (one per racy granule).
    pub fn new(max_witnesses: usize) -> Self {
        Self {
            races: Vec::new(),
            racy_granules: HashSet::new(),
            total_observations: 0,
            max_witnesses,
            may_overapproximate: false,
        }
    }

    /// Records a racing pair. Returns true if it was kept as a new witness
    /// (first race seen on its granule and within the witness cap).
    pub fn record(&mut self, race: Race) -> bool {
        self.total_observations += 1;
        let granule = race.addr.granule();
        if self.racy_granules.contains(&granule) {
            return false;
        }
        self.racy_granules.insert(granule);
        if self.races.len() < self.max_witnesses {
            self.races.push(race);
            true
        } else {
            false
        }
    }

    /// True if no race was observed.
    pub fn is_race_free(&self) -> bool {
        self.total_observations == 0
    }

    /// Number of distinct racy granules observed.
    pub fn race_count(&self) -> usize {
        self.racy_granules.len()
    }

    /// Total racing pairs observed (including several per granule).
    pub fn total_observations(&self) -> u64 {
        self.total_observations
    }

    /// The witness races (at most one per granule).
    pub fn witnesses(&self) -> &[Race] {
        &self.races
    }

    /// True if the given granule-aligned address was found racy.
    pub fn is_racy(&self, addr: MemAddr) -> bool {
        self.racy_granules.contains(&addr.granule())
    }

    /// Iterates over every racy granule index (not just the ones with a kept
    /// witness), in arbitrary order.
    pub fn racy_granules(&self) -> impl Iterator<Item = u64> + '_ {
        self.racy_granules.iter().copied()
    }

    /// Marks the report as produced by a detector that is approximate for
    /// the replayed program class (see [`RaceReport::is_approximate`]).
    pub fn mark_approximate(&mut self) {
        self.may_overapproximate = true;
    }

    /// True if the verdict may be approximate: the producing detector was
    /// run outside its sound program class (e.g. the conservative SP-Bags
    /// fallback on a futures trace), so races may be both missed and
    /// spuriously reported.
    pub fn is_approximate(&self) -> bool {
        self.may_overapproximate
    }

    /// Adds `n` racing-pair observations without new witnesses — used by the
    /// parallel engine's merge to restore the per-granule duplicate counts
    /// its partitions observed.
    pub(crate) fn add_observations(&mut self, n: u64) {
        self.total_observations += n;
    }

    /// Merges another report into this one.
    pub fn merge(&mut self, other: &RaceReport) {
        self.total_observations += other.total_observations;
        self.may_overapproximate |= other.may_overapproximate;
        for race in &other.races {
            let granule = race.addr.granule();
            if self.racy_granules.insert(granule) && self.races.len() < self.max_witnesses {
                self.races.push(*race);
            }
        }
        for g in &other.racy_granules {
            self.racy_granules.insert(*g);
        }
    }
}

impl std::fmt::Display for RaceReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let qualifier = if self.may_overapproximate {
            " (approximate verdict)"
        } else {
            ""
        };
        if self.is_race_free() {
            return write!(f, "no determinacy races detected{qualifier}");
        }
        writeln!(
            f,
            "{} racy location(s), {} racing pair(s) observed{qualifier}:",
            self.race_count(),
            self.total_observations
        )?;
        for r in &self.races {
            writeln!(f, "  {r}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn race_at(addr: u64, prior: u32, current: u32) -> Race {
        Race {
            addr: MemAddr(addr),
            prior_strand: StrandId(prior),
            prior_kind: AccessKind::Write,
            current_strand: StrandId(current),
            current_kind: AccessKind::Read,
        }
    }

    #[test]
    fn empty_report_is_race_free() {
        let r = RaceReport::default();
        assert!(r.is_race_free());
        assert_eq!(r.race_count(), 0);
        assert_eq!(r.to_string(), "no determinacy races detected");
    }

    #[test]
    fn first_race_per_granule_is_a_witness() {
        let mut r = RaceReport::default();
        assert!(r.record(race_at(0x100, 1, 2)));
        assert!(!r.record(race_at(0x100, 3, 4))); // same granule
        assert!(r.record(race_at(0x104, 1, 2))); // different granule
        assert_eq!(r.race_count(), 2);
        assert_eq!(r.total_observations(), 3);
        assert_eq!(r.witnesses().len(), 2);
        assert!(r.is_racy(MemAddr(0x100)));
        assert!(!r.is_racy(MemAddr(0x200)));
    }

    #[test]
    fn witness_cap_is_respected() {
        let mut r = RaceReport::new(2);
        for i in 0..10u64 {
            r.record(race_at(0x100 + 4 * i, 1, 2));
        }
        assert_eq!(r.witnesses().len(), 2);
        assert_eq!(r.race_count(), 10);
    }

    #[test]
    fn merge_combines_reports() {
        let mut a = RaceReport::default();
        a.record(race_at(0x100, 1, 2));
        let mut b = RaceReport::default();
        b.record(race_at(0x100, 5, 6));
        b.record(race_at(0x200, 5, 6));
        a.merge(&b);
        assert_eq!(a.race_count(), 2);
        assert_eq!(a.total_observations(), 3);
    }

    #[test]
    fn display_lists_witnesses() {
        let mut r = RaceReport::default();
        r.record(race_at(0x10, 1, 2));
        let text = r.to_string();
        assert!(text.contains("1 racy location"));
        assert!(text.contains("s1"));
        assert!(text.contains("s2"));
    }
}
