//! Race-detector observers: reachability structure + access history.
//!
//! The paper evaluates FutureRD in four configurations (Section 6); each has
//! a direct counterpart here, realized as a distinct observer type so the
//! compiler monomorphizes exactly the work each configuration performs —
//! the library-level analogue of FutureRD's separately compiled binaries:
//!
//! | Paper configuration | Observer |
//! |---|---|
//! | *baseline* — no race detection | [`futurerd_dag::NullObserver`] |
//! | *reachability* — maintain the reachability structure only | [`ReachabilityOnly`] |
//! | *instrumentation* — + memory-access instrumentation, but no access history | [`InstrumentationOnly`] |
//! | *full* — + access history updates and race queries | [`RaceDetector`] |

use crate::races::{AccessKind, Race, RaceReport};
use crate::reachability::{MultiBags, MultiBagsPlus, Reachability};
use crate::shadow::AccessHistory;
use crate::stats::{DetectorStats, ReachStats};
use futurerd_dag::events::{CreateFutureEvent, GetFutureEvent, SpawnEvent, SyncEvent};
use futurerd_dag::{FunctionId, MemAddr, Observer, StrandId};

/// Forwards parallel-construct events to a reachability structure and
/// ignores memory accesses: the paper's *reachability* configuration.
#[derive(Debug, Default)]
pub struct ReachabilityOnly<R> {
    reach: R,
}

impl<R: Reachability> ReachabilityOnly<R> {
    /// Wraps a reachability structure.
    pub fn new(reach: R) -> Self {
        Self { reach }
    }

    /// The wrapped reachability structure.
    pub fn reachability(&self) -> &R {
        &self.reach
    }

    /// Work statistics of the reachability structure.
    pub fn stats(&self) -> ReachStats {
        self.reach.stats()
    }
}

impl ReachabilityOnly<MultiBags> {
    /// MultiBags reachability (structured futures).
    pub fn structured() -> Self {
        Self::new(MultiBags::new())
    }
}

impl ReachabilityOnly<MultiBagsPlus> {
    /// MultiBags+ reachability (general futures).
    pub fn general() -> Self {
        Self::new(MultiBagsPlus::new())
    }
}

impl<R: Reachability> Observer for ReachabilityOnly<R> {
    fn on_program_start(&mut self, root: FunctionId, first: StrandId) {
        self.reach.on_program_start(root, first);
    }
    fn on_strand_start(&mut self, strand: StrandId, function: FunctionId) {
        self.reach.on_strand_start(strand, function);
    }
    fn on_spawn(&mut self, ev: &SpawnEvent) {
        self.reach.on_spawn(ev);
    }
    fn on_create_future(&mut self, ev: &CreateFutureEvent) {
        self.reach.on_create_future(ev);
    }
    fn on_return(&mut self, function: FunctionId, last: StrandId) {
        self.reach.on_return(function, last);
    }
    fn on_sync(&mut self, ev: &SyncEvent) {
        self.reach.on_sync(ev);
    }
    fn on_get_future(&mut self, ev: &GetFutureEvent) {
        self.reach.on_get_future(ev);
    }
    fn on_program_end(&mut self, last: StrandId) {
        self.reach.on_program_end(last);
    }
}

/// The *instrumentation* configuration: reachability is maintained and every
/// memory access pays the instrumentation cost (granule decomposition plus a
/// table-independent touch), but the access history is neither maintained
/// nor queried.
#[derive(Debug, Default)]
pub struct InstrumentationOnly<R> {
    reach: R,
    /// Granule-accesses observed (prevents the instrumentation work from
    /// being optimized away and doubles as a statistic).
    pub granules_touched: u64,
}

impl<R: Reachability> InstrumentationOnly<R> {
    /// Wraps a reachability structure.
    pub fn new(reach: R) -> Self {
        Self {
            reach,
            granules_touched: 0,
        }
    }

    /// Work statistics of the reachability structure.
    pub fn stats(&self) -> ReachStats {
        self.reach.stats()
    }
}

impl InstrumentationOnly<MultiBags> {
    /// MultiBags reachability (structured futures).
    pub fn structured() -> Self {
        Self::new(MultiBags::new())
    }
}

impl InstrumentationOnly<MultiBagsPlus> {
    /// MultiBags+ reachability (general futures).
    pub fn general() -> Self {
        Self::new(MultiBagsPlus::new())
    }
}

impl<R: Reachability> Observer for InstrumentationOnly<R> {
    fn on_program_start(&mut self, root: FunctionId, first: StrandId) {
        self.reach.on_program_start(root, first);
    }
    fn on_strand_start(&mut self, strand: StrandId, function: FunctionId) {
        self.reach.on_strand_start(strand, function);
    }
    fn on_spawn(&mut self, ev: &SpawnEvent) {
        self.reach.on_spawn(ev);
    }
    fn on_create_future(&mut self, ev: &CreateFutureEvent) {
        self.reach.on_create_future(ev);
    }
    fn on_return(&mut self, function: FunctionId, last: StrandId) {
        self.reach.on_return(function, last);
    }
    fn on_sync(&mut self, ev: &SyncEvent) {
        self.reach.on_sync(ev);
    }
    fn on_get_future(&mut self, ev: &GetFutureEvent) {
        self.reach.on_get_future(ev);
    }
    fn on_read(&mut self, _strand: StrandId, addr: MemAddr, size: usize) {
        self.granules_touched += addr.granules(size).count() as u64;
    }
    fn on_write(&mut self, _strand: StrandId, addr: MemAddr, size: usize) {
        self.granules_touched += addr.granules(size).count() as u64;
    }
    fn on_program_end(&mut self, last: StrandId) {
        self.reach.on_program_end(last);
    }
}

/// The *full* race detector: reachability + access history + race checks.
///
/// On every read of a location it checks the last writer; on every write it
/// checks the last writer and the whole reader list, then empties the list
/// (Section 3). Races are collected in a [`RaceReport`].
#[derive(Debug, Default)]
pub struct RaceDetector<R> {
    reach: R,
    history: AccessHistory,
    report: RaceReport,
}

impl<R: Reachability> RaceDetector<R> {
    /// Wraps a reachability structure with a fresh access history.
    pub fn new(reach: R) -> Self {
        Self {
            reach,
            history: AccessHistory::new(),
            report: RaceReport::default(),
        }
    }

    /// The race report accumulated so far.
    pub fn report(&self) -> &RaceReport {
        &self.report
    }

    /// Consumes the detector and returns the race report.
    pub fn into_report(self) -> RaceReport {
        self.report
    }

    /// Consumes the detector and returns the report plus both statistics
    /// blocks.
    pub fn into_parts(self) -> (RaceReport, ReachStats, DetectorStats) {
        (self.report, self.reach.stats(), self.history.stats())
    }

    /// Work statistics of the reachability structure.
    pub fn reach_stats(&self) -> ReachStats {
        self.reach.stats()
    }

    /// Access-history statistics.
    pub fn history_stats(&self) -> DetectorStats {
        self.history.stats()
    }

    /// The wrapped reachability structure.
    pub fn reachability(&self) -> &R {
        &self.reach
    }

    /// Queries the underlying reachability structure directly: is `strand`
    /// sequentially before the currently executing strand? Useful for tests
    /// and tools that want to inspect reachability without performing a
    /// memory access.
    pub fn strand_precedes_current(&mut self, strand: StrandId) -> bool {
        self.reach.precedes_current(strand)
    }
}

impl RaceDetector<MultiBags> {
    /// A full detector using MultiBags (structured futures).
    pub fn structured() -> Self {
        Self::new(MultiBags::new())
    }
}

impl RaceDetector<MultiBagsPlus> {
    /// A full detector using MultiBags+ (general futures).
    pub fn general() -> Self {
        Self::new(MultiBagsPlus::new())
    }
}

impl<R: Reachability> RaceDetector<R> {
    fn handle_read(&mut self, strand: StrandId, addr: MemAddr, size: usize) {
        let reach = &mut self.reach;
        let report = &mut self.report;
        self.history
            .for_each_granule(addr, size, |granule, state, stats| {
                stats.read_checks += 1;
                if let Some(writer) = state.last_writer {
                    if !reach.precedes_current(writer) {
                        stats.races_found += 1;
                        report.record(Race {
                            addr: MemAddr(granule * MemAddr::GRANULARITY),
                            prior_strand: writer,
                            prior_kind: AccessKind::Write,
                            current_strand: strand,
                            current_kind: AccessKind::Read,
                        });
                    }
                }
                // Avoid appending the same strand repeatedly for consecutive
                // reads; a strand needs to appear only once per write epoch.
                if state.readers.last() != Some(&strand) {
                    state.readers.push(strand);
                    stats.readers_recorded += 1;
                }
            });
    }

    fn handle_write(&mut self, strand: StrandId, addr: MemAddr, size: usize) {
        let reach = &mut self.reach;
        let report = &mut self.report;
        self.history
            .for_each_granule(addr, size, |granule, state, stats| {
                stats.write_checks += 1;
                let addr_of_granule = MemAddr(granule * MemAddr::GRANULARITY);
                if let Some(writer) = state.last_writer {
                    if !reach.precedes_current(writer) {
                        stats.races_found += 1;
                        report.record(Race {
                            addr: addr_of_granule,
                            prior_strand: writer,
                            prior_kind: AccessKind::Write,
                            current_strand: strand,
                            current_kind: AccessKind::Write,
                        });
                    }
                }
                for &reader in &state.readers {
                    if !reach.precedes_current(reader) {
                        stats.races_found += 1;
                        report.record(Race {
                            addr: addr_of_granule,
                            prior_strand: reader,
                            prior_kind: AccessKind::Read,
                            current_strand: strand,
                            current_kind: AccessKind::Write,
                        });
                    }
                }
                stats.readers_cleared += state.readers.len() as u64;
                state.readers.clear();
                state.last_writer = Some(strand);
            });
    }
}

impl<R: Reachability> Observer for RaceDetector<R> {
    fn on_program_start(&mut self, root: FunctionId, first: StrandId) {
        self.reach.on_program_start(root, first);
    }
    fn on_strand_start(&mut self, strand: StrandId, function: FunctionId) {
        self.reach.on_strand_start(strand, function);
    }
    fn on_spawn(&mut self, ev: &SpawnEvent) {
        self.reach.on_spawn(ev);
    }
    fn on_create_future(&mut self, ev: &CreateFutureEvent) {
        self.reach.on_create_future(ev);
    }
    fn on_return(&mut self, function: FunctionId, last: StrandId) {
        self.reach.on_return(function, last);
    }
    fn on_sync(&mut self, ev: &SyncEvent) {
        self.reach.on_sync(ev);
    }
    fn on_get_future(&mut self, ev: &GetFutureEvent) {
        self.reach.on_get_future(ev);
    }
    fn on_read(&mut self, strand: StrandId, addr: MemAddr, size: usize) {
        self.handle_read(strand, addr, size);
    }
    fn on_write(&mut self, strand: StrandId, addr: MemAddr, size: usize) {
        self.handle_write(strand, addr, size);
    }
    fn on_program_end(&mut self, last: StrandId) {
        self.reach.on_program_end(last);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reachability::GraphOracle;
    use futurerd_dag::events::ForkInfo;

    /// Emit the events of: root writes x, spawns a child that writes x,
    /// continuation reads x (race with the child's write), sync, read again
    /// (no race).
    fn drive_fork_join_race<R: Reachability>(mut det: RaceDetector<R>) -> RaceReport {
        let root = FunctionId(0);
        let child = FunctionId(1);
        let x = MemAddr(0x1000);
        det.on_program_start(root, StrandId(0));
        det.on_strand_start(StrandId(0), root);
        det.on_write(StrandId(0), x, 4);
        det.on_spawn(&SpawnEvent {
            parent: root,
            child,
            fork_strand: StrandId(0),
            cont_strand: StrandId(2),
            child_first_strand: StrandId(1),
        });
        det.on_strand_start(StrandId(1), child);
        det.on_write(StrandId(1), x, 4); // no race: strand 0 precedes
        det.on_return(child, StrandId(1));
        det.on_strand_start(StrandId(2), root);
        det.on_read(StrandId(2), x, 4); // race with strand 1's write
        det.on_sync(&SyncEvent {
            parent: root,
            child,
            pre_join_strand: StrandId(2),
            join_strand: StrandId(3),
            child_last_strand: StrandId(1),
            fork: ForkInfo {
                pre_fork_strand: StrandId(0),
                child_first_strand: StrandId(1),
                cont_strand: StrandId(2),
            },
        });
        det.on_strand_start(StrandId(3), root);
        det.on_read(StrandId(3), x, 4); // no race after the sync
        det.on_program_end(StrandId(3));
        det.into_report()
    }

    #[test]
    fn fork_join_race_is_found_by_all_detectors() {
        for report in [
            drive_fork_join_race(RaceDetector::structured()),
            drive_fork_join_race(RaceDetector::general()),
            drive_fork_join_race(RaceDetector::new(GraphOracle::new())),
        ] {
            assert_eq!(report.race_count(), 1, "{report}");
            let witness = report.witnesses()[0];
            assert_eq!(witness.prior_strand, StrandId(1));
            assert_eq!(witness.current_strand, StrandId(2));
            assert_eq!(witness.prior_kind, AccessKind::Write);
            assert_eq!(witness.current_kind, AccessKind::Read);
        }
    }

    #[test]
    fn sequential_accesses_never_race() {
        let mut det = RaceDetector::structured();
        det.on_program_start(FunctionId(0), StrandId(0));
        det.on_strand_start(StrandId(0), FunctionId(0));
        let x = MemAddr(0x2000);
        det.on_write(StrandId(0), x, 4);
        det.on_read(StrandId(0), x, 4);
        det.on_write(StrandId(0), x, 4);
        assert!(det.report().is_race_free());
        let (report, reach_stats, det_stats) = det.into_parts();
        assert!(report.is_race_free());
        assert!(reach_stats.queries >= 2);
        assert_eq!(det_stats.write_checks, 2);
        assert_eq!(det_stats.read_checks, 1);
    }

    #[test]
    fn wide_accesses_check_every_granule() {
        let mut det = RaceDetector::structured();
        det.on_program_start(FunctionId(0), StrandId(0));
        det.on_strand_start(StrandId(0), FunctionId(0));
        det.on_write(StrandId(0), MemAddr(0x1000), 16);
        let stats = det.history_stats();
        assert_eq!(stats.write_checks, 4);
    }

    #[test]
    fn reader_list_cleared_by_writer() {
        // Two parallel readers then a parallel writer: the writer races with
        // both readers (2 observations) but the granule is reported once.
        let mut det = RaceDetector::general();
        let root = FunctionId(0);
        let x = MemAddr(0x1000);
        det.on_program_start(root, StrandId(0));
        det.on_strand_start(StrandId(0), root);
        det.on_read(StrandId(0), x, 4);

        // future 1 reads x in parallel, then root writes x.
        det.on_create_future(&CreateFutureEvent {
            parent: root,
            child: FunctionId(1),
            creator_strand: StrandId(0),
            cont_strand: StrandId(2),
            child_first_strand: StrandId(1),
        });
        det.on_strand_start(StrandId(1), FunctionId(1));
        det.on_read(StrandId(1), x, 4);
        det.on_return(FunctionId(1), StrandId(1));
        det.on_strand_start(StrandId(2), root);
        det.on_write(StrandId(2), x, 4);
        let report = det.report();
        assert_eq!(report.race_count(), 1);
        assert_eq!(report.total_observations(), 1);
        let stats = det.history_stats();
        assert_eq!(stats.readers_cleared, 2);
    }

    #[test]
    fn instrumentation_only_counts_granules_without_history() {
        let mut obs = InstrumentationOnly::structured();
        obs.on_program_start(FunctionId(0), StrandId(0));
        obs.on_strand_start(StrandId(0), FunctionId(0));
        obs.on_read(StrandId(0), MemAddr(0x1000), 8);
        obs.on_write(StrandId(0), MemAddr(0x1000), 4);
        assert_eq!(obs.granules_touched, 3);
        assert!(obs.stats().queries == 0);
    }

    #[test]
    fn reachability_only_ignores_memory() {
        let mut obs = ReachabilityOnly::general();
        obs.on_program_start(FunctionId(0), StrandId(0));
        obs.on_strand_start(StrandId(0), FunctionId(0));
        obs.on_read(StrandId(0), MemAddr(0x1000), 4);
        assert_eq!(obs.stats().queries, 0);
        assert_eq!(obs.reachability().name(), "multibags+");
    }
}
