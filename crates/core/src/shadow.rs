//! The access history ("shadow memory").
//!
//! Section 3 of the paper: for each memory location the detector keeps the
//! most recent writer strand (`last-writer`) and the list of reader strands
//! that have read the location since that write (`reader-list`). The reader
//! list can grow arbitrarily for programs with futures (unlike the constant
//! bound that suffices for series-parallel programs), but the writer empties
//! it, so each reader is checked against a writer at most twice and the
//! total number of reachability queries stays `O(T1)`.
//!
//! FutureRD stores the history "like a two-level direct-mapped cache" at
//! four-byte granularity; this implementation mirrors that with a two-level
//! page table indexed by the granule number: the high bits select a lazily
//! allocated page, the low bits a slot within it.

use crate::stats::DetectorStats;
use futurerd_dag::{MemAddr, StrandId};

/// log2 of the number of granules per shadow page.
const PAGE_BITS: u32 = 12;
/// Number of granules per shadow page (4096 granules = 16 KiB of traced
/// memory per page at 4-byte granularity).
const PAGE_SIZE: usize = 1 << PAGE_BITS;

/// The per-granule access history entry.
#[derive(Debug, Clone, Default)]
pub struct LocationState {
    /// The most recent writer, if any.
    pub last_writer: Option<StrandId>,
    /// Readers since the last write.
    pub readers: Vec<StrandId>,
}

impl LocationState {
    /// True if the location has never been accessed.
    pub fn is_untouched(&self) -> bool {
        self.last_writer.is_none() && self.readers.is_empty()
    }
}

type Page = Box<[LocationState]>;

/// The two-level shadow-memory table.
#[derive(Debug, Default)]
pub struct AccessHistory {
    pages: Vec<Option<Page>>,
    stats: DetectorStats,
}

impl AccessHistory {
    /// Creates an empty access history.
    pub fn new() -> Self {
        Self::default()
    }

    /// Statistics about the table (pages allocated, readers recorded, …).
    pub fn stats(&self) -> DetectorStats {
        self.stats
    }

    /// Mutable statistics access for the detector driving this table.
    pub fn stats_mut(&mut self) -> &mut DetectorStats {
        &mut self.stats
    }

    #[inline]
    fn split(granule: u64) -> (usize, usize) {
        (
            (granule >> PAGE_BITS) as usize,
            (granule & (PAGE_SIZE as u64 - 1)) as usize,
        )
    }

    /// Returns the state of a granule if it has ever been touched.
    pub fn get(&self, granule: u64) -> Option<&LocationState> {
        let (page, slot) = Self::split(granule);
        self.pages
            .get(page)
            .and_then(|p| p.as_ref())
            .map(|p| &p[slot])
            .filter(|s| !s.is_untouched())
    }

    /// Returns a mutable reference to the state of a granule, allocating its
    /// page on first touch.
    pub fn get_mut(&mut self, granule: u64) -> &mut LocationState {
        let (page, slot) = Self::split(granule);
        if self.pages.len() <= page {
            self.pages.resize_with(page + 1, || None);
        }
        let entry = &mut self.pages[page];
        if entry.is_none() {
            *entry = Some(vec![LocationState::default(); PAGE_SIZE].into_boxed_slice());
            self.stats.shadow_pages += 1;
        }
        &mut entry.as_mut().unwrap()[slot]
    }

    /// Number of shadow pages currently allocated.
    pub fn num_pages(&self) -> usize {
        self.pages.iter().filter(|p| p.is_some()).count()
    }

    /// Approximate heap usage of the table in bytes.
    pub fn heap_bytes(&self) -> usize {
        self.num_pages() * PAGE_SIZE * std::mem::size_of::<LocationState>()
    }

    /// Iterates over the granules covered by an access, applying `f` to each
    /// granule's state.
    pub fn for_each_granule(
        &mut self,
        addr: MemAddr,
        size: usize,
        mut f: impl FnMut(u64, &mut LocationState, &mut DetectorStats),
    ) {
        for granule in addr.granules(size) {
            let (page, slot) = Self::split(granule);
            if self.pages.len() <= page {
                self.pages.resize_with(page + 1, || None);
            }
            if self.pages[page].is_none() {
                self.pages[page] =
                    Some(vec![LocationState::default(); PAGE_SIZE].into_boxed_slice());
                self.stats.shadow_pages += 1;
            }
            let state = &mut self.pages[page].as_mut().unwrap()[slot];
            f(granule, state, &mut self.stats);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn untouched_locations_are_invisible() {
        let mut h = AccessHistory::new();
        assert!(h.get(10).is_none());
        // get_mut allocates but the state is still "untouched" until someone
        // records an access.
        let _ = h.get_mut(10);
        assert!(h.get(10).is_none());
        assert_eq!(h.num_pages(), 1);
    }

    #[test]
    fn writers_and_readers_are_stored_per_granule() {
        let mut h = AccessHistory::new();
        h.get_mut(4).last_writer = Some(StrandId(1));
        h.get_mut(4).readers.push(StrandId(2));
        h.get_mut(5).readers.push(StrandId(3));
        assert_eq!(h.get(4).unwrap().last_writer, Some(StrandId(1)));
        assert_eq!(h.get(4).unwrap().readers, vec![StrandId(2)]);
        assert_eq!(h.get(5).unwrap().last_writer, None);
        assert!(h.get(6).is_none());
    }

    #[test]
    fn distant_granules_live_on_distinct_pages() {
        let mut h = AccessHistory::new();
        h.get_mut(0).last_writer = Some(StrandId(0));
        h.get_mut(1 << 20).last_writer = Some(StrandId(1));
        assert_eq!(h.num_pages(), 2);
        assert!(h.heap_bytes() > 0);
    }

    #[test]
    fn for_each_granule_visits_every_covered_granule() {
        let mut h = AccessHistory::new();
        let mut visited = Vec::new();
        h.for_each_granule(MemAddr(8), 12, |g, state, _| {
            visited.push(g);
            state.readers.push(StrandId(9));
        });
        assert_eq!(visited, vec![2, 3, 4]);
        for g in visited {
            assert_eq!(h.get(g).unwrap().readers, vec![StrandId(9)]);
        }
    }

    #[test]
    fn page_allocation_is_counted_once() {
        let mut h = AccessHistory::new();
        h.for_each_granule(MemAddr(0), 4, |_, s, _| s.readers.push(StrandId(0)));
        h.for_each_granule(MemAddr(4), 4, |_, s, _| s.readers.push(StrandId(0)));
        assert_eq!(h.stats().shadow_pages, 1);
        assert_eq!(h.num_pages(), 1);
    }
}
