//! The sequential depth-first eager executor.
//!
//! Race detection in the paper runs the program to be checked *sequentially*:
//! when a `spawn` or `create_fut` is reached the child is executed eagerly
//! and to completion before the parent's continuation resumes. Because the
//! execution is eager, a `sync` never blocks and — for forward-pointing
//! futures — a `get_fut` never blocks either: the value is always ready.
//!
//! The executor's job is therefore bookkeeping: it assigns dense
//! [`StrandId`]s and [`FunctionId`]s, tracks the currently-executing strand,
//! and reports every parallel construct (and every instrumented memory
//! access) to an [`Observer`]. Detectors, dag recorders, or a no-op
//! [`NullObserver`](futurerd_dag::NullObserver) (for the paper's *baseline*
//! configuration) can be plugged in; the executor is generic over the
//! observer type so unused callbacks compile away entirely.

use futurerd_dag::events::{CreateFutureEvent, ForkInfo, GetFutureEvent, SpawnEvent, SyncEvent};
use futurerd_dag::{FunctionId, MemAddr, Observer, StrandId};

/// First abstract address handed out by [`Cx::alloc_region`]; non-zero so
/// that address `0` never appears in detector state. The parallel trace
/// capture in [`crate::trace`] replicates this allocation discipline so
/// pool-captured traces match the sequential executor's byte for byte.
pub(crate) const BASE_ADDR: u64 = 0x1000;

/// A handle to an eagerly-evaluated future.
///
/// Because execution is depth-first eager, the future's value is already
/// computed when the handle is returned by [`Cx::create_future`]; the handle
/// simply carries the value plus the metadata the detector needs when the
/// future is joined ([`Cx::get_future`] / [`Cx::touch_future`]).
#[derive(Debug)]
pub struct FutureHandle<T> {
    value: T,
    future_fn: FunctionId,
    last_strand: StrandId,
    touches: u32,
}

impl<T> FutureHandle<T> {
    /// The function instance that computed this future.
    pub fn function(&self) -> FunctionId {
        self.future_fn
    }

    /// The last strand of the future task.
    pub fn last_strand(&self) -> StrandId {
        self.last_strand
    }

    /// How many times this future has been consumed so far.
    pub fn touches(&self) -> u32 {
        self.touches
    }

    /// Returns the value *without* recording a `get_fut` — only for use by
    /// test harnesses that need to peek at results outside the computation.
    pub fn peek(&self) -> &T {
        &self.value
    }
}

/// Counts of what an execution did; returned by [`run_program`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ExecutionSummary {
    /// Number of function instances (root + spawned + futures).
    pub functions: u64,
    /// Number of strands.
    pub strands: u64,
    /// Number of `spawn` constructs.
    pub spawns: u64,
    /// Number of `create_fut` constructs.
    pub creates: u64,
    /// Number of binary sync joins.
    pub syncs: u64,
    /// Number of `get_fut` operations (the paper's `k`).
    pub gets: u64,
    /// Number of instrumented read events.
    pub reads: u64,
    /// Number of instrumented write events.
    pub writes: u64,
    /// Bytes of abstract address space allocated.
    pub bytes_allocated: u64,
}

impl ExecutionSummary {
    /// Total number of instrumented memory accesses.
    pub fn accesses(&self) -> u64 {
        self.reads + self.writes
    }

    /// Total number of parallelism-creating constructs (the paper's `n`).
    pub fn parallel_constructs(&self) -> u64 {
        self.spawns + self.creates
    }
}

struct PendingChild {
    child: FunctionId,
    fork: ForkInfo,
    child_last: StrandId,
}

struct Frame {
    /// Kept for debugging/assertions; the executor resumes the parent's
    /// function id explicitly at each construct.
    #[allow(dead_code)]
    function: FunctionId,
    pending: Vec<PendingChild>,
}

/// The execution context handed to every task body.
///
/// A task body is a closure `FnOnce(&mut Cx<O>) -> T`; it creates parallelism
/// with [`spawn`](Cx::spawn) / [`create_future`](Cx::create_future), joins it
/// with [`sync`](Cx::sync) / [`get_future`](Cx::get_future), and performs
/// instrumented memory accesses through the wrappers in
/// [`crate::memory`].
///
/// # Example
///
/// ```
/// use futurerd_dag::NullObserver;
/// use futurerd_runtime::{run_program, ShadowCell};
///
/// let (sum, _obs, summary) = run_program(NullObserver, |cx| {
///     let mut cell = ShadowCell::new(cx, 0i64);
///     let fut = cx.create_future(|_cx| 21i64);
///     cx.spawn(|cx| {
///         let v = cell.get(cx);
///         cell.set(cx, v + 1);
///     });
///     cx.sync();
///     let half = cx.get_future(fut);
///     half * 2 + cell.get(cx)
/// });
/// assert_eq!(sum, 43);
/// assert_eq!(summary.spawns, 1);
/// assert_eq!(summary.creates, 1);
/// assert_eq!(summary.gets, 1);
/// ```
pub struct Cx<O: Observer> {
    obs: O,
    next_strand: u32,
    next_function: u32,
    next_addr: u64,
    current_function: FunctionId,
    current_strand: StrandId,
    frames: Vec<Frame>,
    summary: ExecutionSummary,
}

impl<O: Observer> Cx<O> {
    fn new(obs: O) -> Self {
        Self {
            obs,
            next_strand: 0,
            next_function: 0,
            next_addr: BASE_ADDR,
            current_function: FunctionId(0),
            current_strand: StrandId(0),
            frames: Vec::new(),
            summary: ExecutionSummary::default(),
        }
    }

    #[inline]
    fn new_strand(&mut self) -> StrandId {
        let id = StrandId(self.next_strand);
        self.next_strand += 1;
        self.summary.strands += 1;
        id
    }

    #[inline]
    fn new_function(&mut self) -> FunctionId {
        let id = FunctionId(self.next_function);
        self.next_function += 1;
        self.summary.functions += 1;
        id
    }

    /// The strand currently executing.
    #[inline]
    pub fn current_strand(&self) -> StrandId {
        self.current_strand
    }

    /// The function instance currently executing.
    #[inline]
    pub fn current_function(&self) -> FunctionId {
        self.current_function
    }

    /// Access to the observer (e.g. to inspect detector state mid-run).
    pub fn observer(&self) -> &O {
        &self.obs
    }

    /// Mutable access to the observer.
    pub fn observer_mut(&mut self) -> &mut O {
        &mut self.obs
    }

    /// Execution counters accumulated so far.
    pub fn summary(&self) -> ExecutionSummary {
        self.summary
    }

    /// Runs `body` as a new function instance whose first strand is
    /// `first_strand`, applying Cilk semantics (implicit sync before return).
    /// Returns the body's value and the function's last strand.
    fn run_function<T>(
        &mut self,
        function: FunctionId,
        first_strand: StrandId,
        body: impl FnOnce(&mut Self) -> T,
    ) -> (T, StrandId) {
        self.frames.push(Frame {
            function,
            pending: Vec::new(),
        });
        self.current_function = function;
        self.current_strand = first_strand;
        self.obs.on_strand_start(first_strand, function);
        let value = body(self);
        // Implicit sync: every Cilk function joins its spawned children
        // before returning. Futures it created are *not* joined (they escape).
        self.sync_impl();
        let last = self.current_strand;
        self.obs.on_return(function, last);
        self.frames.pop();
        (value, last)
    }

    /// Spawns `body` as a child task. In the eager sequential execution the
    /// child runs to completion immediately; logically it is in parallel with
    /// the parent's continuation until the next [`sync`](Cx::sync).
    pub fn spawn(&mut self, body: impl FnOnce(&mut Self)) {
        let parent = self.current_function;
        let fork_strand = self.current_strand;
        let child = self.new_function();
        let child_first = self.new_strand();
        let cont = self.new_strand();
        self.summary.spawns += 1;
        self.obs.on_spawn(&SpawnEvent {
            parent,
            child,
            fork_strand,
            cont_strand: cont,
            child_first_strand: child_first,
        });
        let ((), child_last) = self.run_function(child, child_first, body);
        self.frames
            .last_mut()
            .expect("spawn outside of a running program")
            .pending
            .push(PendingChild {
                child,
                fork: ForkInfo {
                    pre_fork_strand: fork_strand,
                    child_first_strand: child_first,
                    cont_strand: cont,
                },
                child_last,
            });
        self.current_function = parent;
        self.current_strand = cont;
        self.obs.on_strand_start(cont, parent);
    }

    /// Joins all children spawned by the current function since the last
    /// sync. Children are joined innermost-first so the resulting dag is a
    /// properly nested series-parallel composition of binary joins.
    pub fn sync(&mut self) {
        self.sync_impl();
    }

    fn sync_impl(&mut self) {
        while let Some(pc) = self.frames.last_mut().and_then(|f| f.pending.pop()) {
            let parent = self.current_function;
            let pre_join = self.current_strand;
            let join = self.new_strand();
            self.summary.syncs += 1;
            self.obs.on_sync(&SyncEvent {
                parent,
                child: pc.child,
                pre_join_strand: pre_join,
                join_strand: join,
                child_last_strand: pc.child_last,
                fork: pc.fork,
            });
            self.current_strand = join;
            self.obs.on_strand_start(join, parent);
        }
    }

    /// Creates a future computing `body`. The future escapes the enclosing
    /// function's sync scope: only [`get_future`](Cx::get_future) /
    /// [`touch_future`](Cx::touch_future) join it.
    pub fn create_future<T>(&mut self, body: impl FnOnce(&mut Self) -> T) -> FutureHandle<T> {
        let parent = self.current_function;
        let creator = self.current_strand;
        let child = self.new_function();
        let child_first = self.new_strand();
        let cont = self.new_strand();
        self.summary.creates += 1;
        self.obs.on_create_future(&CreateFutureEvent {
            parent,
            child,
            creator_strand: creator,
            cont_strand: cont,
            child_first_strand: child_first,
        });
        let (value, child_last) = self.run_function(child, child_first, body);
        self.current_function = parent;
        self.current_strand = cont;
        self.obs.on_strand_start(cont, parent);
        FutureHandle {
            value,
            future_fn: child,
            last_strand: child_last,
            touches: 0,
        }
    }

    fn emit_get(&mut self, future: FunctionId, future_last: StrandId, prior_touches: u32) {
        let parent = self.current_function;
        let pre_get = self.current_strand;
        let getter = self.new_strand();
        self.summary.gets += 1;
        self.obs.on_get_future(&GetFutureEvent {
            parent,
            future,
            pre_get_strand: pre_get,
            getter_strand: getter,
            future_last_strand: future_last,
            prior_touches,
        });
        self.current_strand = getter;
        self.obs.on_strand_start(getter, parent);
    }

    /// Consumes a future handle, joining the future into the current task
    /// (single-touch `get_fut`).
    pub fn get_future<T>(&mut self, handle: FutureHandle<T>) -> T {
        self.emit_get(handle.future_fn, handle.last_strand, handle.touches);
        handle.value
    }

    /// Joins a future without consuming the handle (multi-touch `get_fut`,
    /// only meaningful for *general* futures / MultiBags+). Each call is a
    /// separate `get_fut` operation.
    pub fn touch_future<T: Clone>(&mut self, handle: &mut FutureHandle<T>) -> T {
        let prior = handle.touches;
        handle.touches += 1;
        self.emit_get(handle.future_fn, handle.last_strand, prior);
        handle.value.clone()
    }

    /// Allocates `bytes` of abstract (detector-visible) address space and
    /// returns its base address. Used by the instrumented memory wrappers.
    pub fn alloc_region(&mut self, bytes: u64) -> MemAddr {
        let granule = MemAddr::GRANULARITY;
        let rounded = bytes.div_ceil(granule).max(1) * granule;
        let addr = MemAddr(self.next_addr);
        self.next_addr += rounded;
        self.summary.bytes_allocated += rounded;
        addr
    }

    /// Reports an instrumented read of `size` bytes at `addr` by the current
    /// strand.
    #[inline]
    pub fn record_read(&mut self, addr: MemAddr, size: usize) {
        self.summary.reads += 1;
        self.obs.on_read(self.current_strand, addr, size);
    }

    /// Reports an instrumented write of `size` bytes at `addr` by the
    /// current strand.
    #[inline]
    pub fn record_write(&mut self, addr: MemAddr, size: usize) {
        self.summary.writes += 1;
        self.obs.on_write(self.current_strand, addr, size);
    }
}

/// Runs `body` as the root function of a program under `observer`, using
/// sequential depth-first eager execution.
///
/// Returns the body's value, the observer (so detector results can be
/// extracted), and an [`ExecutionSummary`].
pub fn run_program<O: Observer, T>(
    observer: O,
    body: impl FnOnce(&mut Cx<O>) -> T,
) -> (T, O, ExecutionSummary) {
    let mut cx = Cx::new(observer);
    let root = cx.new_function();
    let first = cx.new_strand();
    cx.obs.on_program_start(root, first);
    let (value, last) = cx.run_function(root, first, body);
    cx.obs.on_program_end(last);
    (value, cx.obs, cx.summary)
}

#[cfg(test)]
mod tests {
    use super::*;
    use futurerd_dag::{DagRecorder, NullObserver, ReachabilityOracle};

    #[test]
    fn straight_line_program_has_one_strand() {
        let (v, _, s) = run_program(NullObserver, |_cx| 7);
        assert_eq!(v, 7);
        assert_eq!(s.strands, 1);
        assert_eq!(s.functions, 1);
        assert_eq!(s.spawns, 0);
    }

    #[test]
    fn spawn_sync_counts() {
        let (_, _, s) = run_program(NullObserver, |cx| {
            cx.spawn(|_| {});
            cx.spawn(|_| {});
            cx.sync();
        });
        assert_eq!(s.functions, 3);
        assert_eq!(s.spawns, 2);
        assert_eq!(s.syncs, 2);
        // root: first + 2 conts + 2 joins = 5; children: 1 each.
        assert_eq!(s.strands, 7);
    }

    #[test]
    fn implicit_sync_joins_spawned_children() {
        let (_, _, s) = run_program(NullObserver, |cx| {
            cx.spawn(|_| {});
            // no explicit sync: the root's implicit sync must join it.
        });
        assert_eq!(s.syncs, 1);
    }

    #[test]
    fn futures_escape_sync_scope() {
        let (_, _, s) = run_program(NullObserver, |cx| {
            let f = cx.create_future(|_| 1);
            cx.sync(); // must not join the future
            assert_eq!(s_clone_placeholder(), 0);
            let _ = cx.get_future(f);
        });
        assert_eq!(s.creates, 1);
        assert_eq!(s.gets, 1);
        // The sync with no pending spawned children emits no join.
        assert_eq!(s.syncs, 0);
    }

    // Helper so the closure above can contain an assertion without borrowing
    // issues; always returns 0.
    fn s_clone_placeholder() -> u64 {
        0
    }

    #[test]
    fn nested_spawn_structure_matches_recorded_dag() {
        let (_, rec, s) = run_program(DagRecorder::new(), |cx| {
            cx.spawn(|cx| {
                cx.spawn(|_| {});
                cx.sync();
            });
            cx.sync();
        });
        let dag = rec.dag();
        assert_eq!(dag.num_strands() as u64, s.strands);
        assert!(dag.check_consistency().is_empty());
        let counts = dag.edge_kind_counts();
        assert_eq!(counts.spawn, 2);
        assert_eq!(counts.join, 2);
        assert_eq!(counts.create, 0);
    }

    #[test]
    fn spawned_child_is_parallel_with_continuation() {
        let (ids, rec, _) = run_program(DagRecorder::new(), |cx| {
            let mut child_strand = None;
            cx.spawn(|cx| {
                child_strand = Some(cx.current_strand());
            });
            let cont = cx.current_strand();
            cx.sync();
            let after = cx.current_strand();
            (child_strand.unwrap(), cont, after)
        });
        let (child, cont, after) = ids;
        let oracle = ReachabilityOracle::from_dag(rec.dag());
        assert!(oracle.parallel(child, cont));
        assert!(oracle.strictly_precedes(child, after));
        assert!(oracle.strictly_precedes(cont, after));
    }

    #[test]
    fn future_value_flows_through_get() {
        let (v, _, _) = run_program(NullObserver, |cx| {
            let f = cx.create_future(|cx| {
                let g = cx.create_future(|_| 20);
                cx.get_future(g) + 1
            });
            cx.get_future(f) + 1
        });
        assert_eq!(v, 22);
    }

    #[test]
    fn future_is_parallel_with_continuation_until_get() {
        let ((fut_strand, cont, after_get), rec, _) = run_program(DagRecorder::new(), |cx| {
            let mut fs = None;
            let f = cx.create_future(|cx| {
                fs = Some(cx.current_strand());
            });
            let cont = cx.current_strand();
            cx.get_future(f);
            (fs.unwrap(), cont, cx.current_strand())
        });
        let oracle = ReachabilityOracle::from_dag(rec.dag());
        assert!(oracle.parallel(fut_strand, cont));
        assert!(oracle.strictly_precedes(fut_strand, after_get));
        assert!(oracle.strictly_precedes(cont, after_get));
    }

    #[test]
    fn future_escapes_nested_function_scope() {
        // A future created inside a spawned child and consumed by the parent
        // after syncing: classic pipeline-style escape.
        let ((fut_strand, getter_strand), rec, _) = run_program(DagRecorder::new(), |cx| {
            let mut handle = None;
            let mut fut_strand = None;
            cx.spawn(|cx| {
                handle = Some(cx.create_future(|cx| {
                    fut_strand = Some(cx.current_strand());
                    5
                }));
            });
            cx.sync();
            let v = cx.get_future(handle.unwrap());
            assert_eq!(v, 5);
            (fut_strand.unwrap(), cx.current_strand())
        });
        let oracle = ReachabilityOracle::from_dag(rec.dag());
        assert!(oracle.strictly_precedes(fut_strand, getter_strand));
    }

    #[test]
    fn multi_touch_future_counts_gets() {
        let (_, _, s) = run_program(NullObserver, |cx| {
            let mut f = cx.create_future(|_| 3);
            let a = cx.touch_future(&mut f);
            let b = cx.touch_future(&mut f);
            assert_eq!(a + b, 6);
            assert_eq!(f.touches(), 2);
        });
        assert_eq!(s.gets, 2);
    }

    #[test]
    fn alloc_region_is_disjoint_and_aligned() {
        run_program(NullObserver, |cx| {
            let a = cx.alloc_region(10);
            let b = cx.alloc_region(1);
            let c = cx.alloc_region(4);
            assert_eq!(a.raw() % MemAddr::GRANULARITY, 0);
            assert!(b.raw() >= a.raw() + 12); // 10 rounded up to 12
            assert!(c.raw() >= b.raw() + 4);
        });
    }

    #[test]
    fn memory_events_reach_observer() {
        let (_, rec, s) = run_program(DagRecorder::new(), |cx| {
            let a = cx.alloc_region(8);
            cx.record_write(a, 4);
            cx.record_read(a, 4);
            cx.record_read(a.offset(4), 4);
        });
        assert_eq!(s.reads, 2);
        assert_eq!(s.writes, 1);
        assert_eq!(rec.reads, 2);
        assert_eq!(rec.writes, 1);
    }

    #[test]
    fn summary_parallel_constructs() {
        let (_, _, s) = run_program(NullObserver, |cx| {
            cx.spawn(|_| {});
            let f = cx.create_future(|_| ());
            cx.sync();
            cx.get_future(f);
        });
        assert_eq!(s.parallel_constructs(), 2);
    }

    #[test]
    fn deep_recursion_of_spawns() {
        fn rec_spawn(cx: &mut Cx<NullObserver>, depth: u32) {
            if depth == 0 {
                return;
            }
            cx.spawn(move |cx| rec_spawn(cx, depth - 1));
            cx.sync();
        }
        let (_, _, s) = run_program(NullObserver, |cx| rec_spawn(cx, 200));
        assert_eq!(s.functions, 201);
        assert_eq!(s.spawns, 200);
    }
}
