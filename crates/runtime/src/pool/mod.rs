//! A Cilk/rayon-style work-stealing thread pool.
//!
//! The pool exists so the benchmark workloads are *real* parallel programs:
//! the paper's baseline configuration runs the benchmarks without any race
//! detection, and the examples demonstrate the same divide-and-conquer and
//! pipeline structures executing in parallel. (Race detection itself always
//! uses the sequential eager executor in [`crate::exec`], exactly as
//! FutureRD does.)
//!
//! Design:
//!
//! * each worker thread owns a LIFO deque of jobs and steals FIFO from other
//!   workers or from a global injector queue (`deque`);
//! * [`ThreadPool::join`] runs two closures potentially in parallel using the
//!   classic work-first strategy: the second closure is published for
//!   stealing while the first runs on the current thread, and if nobody stole
//!   it the current thread runs it too;
//! * [`ThreadPool::install`] moves a closure onto a worker thread and blocks
//!   until it completes — the entry point from non-pool threads;
//! * [`ThreadPool::spawn_future`] submits a `'static` task and returns a
//!   [`FutureTask`] handle whose value can be claimed later, mirroring the
//!   `create_fut`/`get_fut` constructs of the paper at the runtime level.
//!
//! Worker-local jobs are published by reference (the closures live on the
//! caller's stack) which requires `unsafe`; safety rests on the invariant
//! that `join`/`install` never return before the published job has executed,
//! enforced with latches (`latch`).

mod deque;
mod job;
pub mod latch;

use deque::{Stealer, WorkerDeque};
use job::{FutureState, HeapJob, IntoJobRef, JobRef, StackJob};
use latch::{CountLatch, LockLatch, SpinLatch};
use parking_lot::{Condvar, Mutex};
use std::cell::Cell;
use std::collections::VecDeque;
use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread;

/// Builder for [`ThreadPool`].
#[derive(Debug, Clone, Default)]
pub struct ThreadPoolBuilder {
    num_threads: Option<usize>,
    stack_size: Option<usize>,
    thread_name_prefix: Option<String>,
}

impl ThreadPoolBuilder {
    /// Creates a builder with default settings (one worker per available
    /// hardware thread).
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the number of worker threads.
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = Some(n);
        self
    }

    /// Sets the stack size of worker threads in bytes.
    pub fn stack_size(mut self, bytes: usize) -> Self {
        self.stack_size = Some(bytes);
        self
    }

    /// Sets the prefix used for worker thread names.
    pub fn thread_name_prefix(mut self, prefix: impl Into<String>) -> Self {
        self.thread_name_prefix = Some(prefix.into());
        self
    }

    /// Builds the pool, spawning the worker threads.
    pub fn build(self) -> ThreadPool {
        let num_threads = self.num_threads.filter(|&n| n > 0).unwrap_or_else(|| {
            thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        });
        ThreadPool::with_config(
            num_threads,
            self.stack_size,
            self.thread_name_prefix
                .unwrap_or_else(|| "futurerd-worker".to_string()),
        )
    }
}

struct Sleep {
    lock: Mutex<()>,
    condvar: Condvar,
}

/// Always-on per-worker scheduler counters (relaxed atomics; one add per
/// event, far off any hot loop). Snapshot through
/// [`ThreadPool::worker_stats`]; exported to the observability registry by
/// [`ThreadPool::export_worker_metrics`].
#[derive(Debug, Default)]
struct WorkerCounters {
    /// Jobs this worker executed (own deque, injector, or stolen).
    executed: AtomicU64,
    /// Jobs this worker stole from another worker's deque.
    steals: AtomicU64,
    /// Jobs this worker claimed from the external injector.
    injected: AtomicU64,
}

/// A point-in-time copy of one worker's scheduler counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WorkerStats {
    /// Worker index within the pool (`0..num_threads`).
    pub index: usize,
    /// Jobs this worker executed.
    pub executed: u64,
    /// Jobs stolen from other workers' deques.
    pub steals: u64,
    /// Jobs claimed from the external injector.
    pub injected: u64,
}

struct Registry {
    injector: Mutex<VecDeque<JobRef>>,
    stealers: Vec<Stealer>,
    sleep: Sleep,
    terminate: AtomicBool,
    num_threads: usize,
    counters: Vec<WorkerCounters>,
}

impl Registry {
    fn inject(&self, job: JobRef) {
        self.injector.lock().push_back(job);
        self.notify_all();
    }

    fn notify_all(&self) {
        let _guard = self.sleep.lock.lock();
        self.sleep.condvar.notify_all();
    }

    fn pop_injected(&self) -> Option<JobRef> {
        self.injector.lock().pop_front()
    }

    /// Tries to find a job from anywhere: the injector first (fairness for
    /// external submissions), then other workers' deques.
    fn steal_work(&self, thief: usize) -> Option<JobRef> {
        if let Some(job) = self.pop_injected() {
            self.counters[thief]
                .injected
                .fetch_add(1, Ordering::Relaxed);
            return Some(job);
        }
        let n = self.stealers.len();
        // Start at a thief-dependent offset so thieves do not all hammer
        // worker 0.
        for i in 0..n {
            let victim = (thief + 1 + i) % n;
            if victim == thief {
                continue;
            }
            if let Some(job) = self.stealers[victim].steal() {
                self.counters[thief].steals.fetch_add(1, Ordering::Relaxed);
                return Some(job);
            }
        }
        None
    }
}

struct WorkerThread {
    registry: Arc<Registry>,
    index: usize,
    deque: WorkerDeque,
}

thread_local! {
    static CURRENT_WORKER: Cell<*const WorkerThread> = const { Cell::new(std::ptr::null()) };
}

impl WorkerThread {
    /// Returns the worker running on the current thread, if any.
    fn current() -> *const WorkerThread {
        CURRENT_WORKER.with(|c| c.get())
    }

    fn set_current(worker: *const WorkerThread) {
        CURRENT_WORKER.with(|c| c.set(worker));
    }

    fn push(&self, job: JobRef) {
        self.deque.push(job);
        self.registry.notify_all();
    }

    fn pop(&self) -> Option<JobRef> {
        self.deque.pop()
    }

    fn find_work(&self) -> Option<JobRef> {
        self.pop().or_else(|| self.registry.steal_work(self.index))
    }

    /// Executes jobs until `latch` is set (used while waiting for a stolen
    /// job to finish).
    fn wait_until(&self, latch: &SpinLatch) {
        let mut idle_spins = 0u32;
        while !latch.probe() {
            if let Some(job) = self.find_work() {
                self.registry.counters[self.index]
                    .executed
                    .fetch_add(1, Ordering::Relaxed);
                // SAFETY: a JobRef obtained from a deque is executed exactly
                // once, and its publisher keeps it alive until then.
                unsafe { job.execute() };
                idle_spins = 0;
            } else {
                idle_spins += 1;
                if idle_spins < 64 {
                    std::hint::spin_loop();
                } else {
                    thread::yield_now();
                }
            }
        }
    }

    /// The worker main loop: run until the registry terminates.
    fn main_loop(&self) {
        loop {
            if let Some(job) = self.find_work() {
                self.registry.counters[self.index]
                    .executed
                    .fetch_add(1, Ordering::Relaxed);
                // SAFETY: as in wait_until — each dequeued JobRef is live and
                // executed exactly once.
                unsafe { job.execute() };
                continue;
            }
            if self.registry.terminate.load(Ordering::SeqCst) {
                return;
            }
            // Nothing to do: sleep until new work is announced.
            let mut guard = self.registry.sleep.lock.lock();
            // Re-check under the lock to avoid missing a notification.
            if self.registry.terminate.load(Ordering::SeqCst) {
                return;
            }
            self.registry
                .sleep
                .condvar
                .wait_for(&mut guard, std::time::Duration::from_millis(1));
        }
    }
}

/// A work-stealing thread pool.
///
/// # Example
///
/// ```
/// use futurerd_runtime::ThreadPoolBuilder;
///
/// let pool = ThreadPoolBuilder::new().num_threads(4).build();
/// let (a, b) = pool.install(|| {
///     pool.join(|| (0..1000u64).sum::<u64>(), || (0..1000u64).product::<u64>())
/// });
/// assert_eq!(a, 499500);
/// assert_eq!(b, 0);
/// ```
pub struct ThreadPool {
    registry: Arc<Registry>,
    handles: Vec<thread::JoinHandle<()>>,
}

impl ThreadPool {
    /// Creates a pool with `num_threads` workers and default settings.
    pub fn new(num_threads: usize) -> Self {
        ThreadPoolBuilder::new().num_threads(num_threads).build()
    }

    /// Returns a process-wide **shared** pool with `num_threads` workers
    /// (0 = one per available hardware thread), building it on first use and
    /// handing the same instance back afterwards.
    ///
    /// Worker threads take hundreds of microseconds to spawn — noticeable
    /// when every replay of a batch job builds its own pool. Callers that
    /// run many parallel detections (the `futurerd` facade's threaded
    /// replay, `futurerd-store`'s batch service) share one pool per size
    /// instead, amortizing the spawn cost across the whole batch.
    ///
    /// Shared pools live for the remainder of the process (idle workers park
    /// on a condvar, so an unused cached pool costs no CPU).
    pub fn shared(num_threads: usize) -> Arc<ThreadPool> {
        type PoolCache = Mutex<Vec<(usize, Arc<ThreadPool>)>>;
        static POOLS: std::sync::OnceLock<PoolCache> = std::sync::OnceLock::new();
        let pools = POOLS.get_or_init(|| Mutex::new(Vec::new()));
        let mut pools = pools.lock();
        if let Some((_, pool)) = pools.iter().find(|(n, _)| *n == num_threads) {
            return Arc::clone(pool);
        }
        let pool = Arc::new(
            ThreadPoolBuilder::new()
                .num_threads(num_threads)
                .thread_name_prefix("futurerd-shared")
                .build(),
        );
        pools.push((num_threads, Arc::clone(&pool)));
        pool
    }

    fn with_config(num_threads: usize, stack_size: Option<usize>, name_prefix: String) -> Self {
        let mut worker_deques = Vec::with_capacity(num_threads);
        let mut stealers = Vec::with_capacity(num_threads);
        for _ in 0..num_threads {
            let d = WorkerDeque::new();
            stealers.push(d.stealer());
            worker_deques.push(d);
        }
        let registry = Arc::new(Registry {
            injector: Mutex::new(VecDeque::new()),
            stealers,
            sleep: Sleep {
                lock: Mutex::new(()),
                condvar: Condvar::new(),
            },
            terminate: AtomicBool::new(false),
            num_threads,
            counters: (0..num_threads)
                .map(|_| WorkerCounters::default())
                .collect(),
        });
        let mut handles = Vec::with_capacity(num_threads);
        for (index, deque) in worker_deques.into_iter().enumerate() {
            let registry = Arc::clone(&registry);
            let mut builder = thread::Builder::new().name(format!("{name_prefix}-{index}"));
            if let Some(sz) = stack_size {
                builder = builder.stack_size(sz);
            }
            let handle = builder
                .spawn(move || {
                    futurerd_obs::set_thread_label(&format!("worker.{index}"));
                    let worker = WorkerThread {
                        registry,
                        index,
                        deque,
                    };
                    WorkerThread::set_current(&worker);
                    worker.main_loop();
                    WorkerThread::set_current(std::ptr::null());
                })
                .expect("failed to spawn worker thread");
            handles.push(handle);
        }
        Self { registry, handles }
    }

    /// Number of worker threads.
    pub fn num_threads(&self) -> usize {
        self.registry.num_threads
    }

    /// Snapshots the per-worker scheduler counters (jobs executed, deque
    /// steals, injector claims) accumulated over the pool's lifetime.
    pub fn worker_stats(&self) -> Vec<WorkerStats> {
        self.registry
            .counters
            .iter()
            .enumerate()
            .map(|(index, c)| WorkerStats {
                index,
                executed: c.executed.load(Ordering::Relaxed),
                steals: c.steals.load(Ordering::Relaxed),
                injected: c.injected.load(Ordering::Relaxed),
            })
            .collect()
    }

    /// Publishes the per-worker counters as `<prefix>.worker.<i>.<field>`
    /// gauges in the `futurerd-obs` metrics registry (no-op while
    /// recording is disabled). Gauges because the counters are lifetime
    /// totals: re-exporting after further work overwrites with the newer
    /// reading.
    pub fn export_worker_metrics(&self, prefix: &str) {
        if !futurerd_obs::enabled() {
            return;
        }
        for stats in self.worker_stats() {
            let i = stats.index;
            futurerd_obs::gauge_set(&format!("{prefix}.worker.{i}.executed"), stats.executed);
            futurerd_obs::gauge_set(&format!("{prefix}.worker.{i}.steals"), stats.steals);
            futurerd_obs::gauge_set(&format!("{prefix}.worker.{i}.injected"), stats.injected);
        }
    }

    /// True if the calling thread is one of this pool's workers.
    pub fn is_worker_thread(&self) -> bool {
        let ptr = WorkerThread::current();
        if ptr.is_null() {
            return false;
        }
        // SAFETY: the pointer is set by a live worker of *some* pool; compare
        // registries to confirm it is ours.
        let worker = unsafe { &*ptr };
        Arc::ptr_eq(&worker.registry, &self.registry)
    }

    /// Moves `f` onto a worker thread, blocks until it completes, and
    /// returns its result. If the calling thread already is a worker of this
    /// pool, `f` runs inline.
    pub fn install<R: Send>(&self, f: impl FnOnce() -> R + Send) -> R {
        if self.is_worker_thread() {
            return f();
        }
        let latch = LockLatch::new();
        let job = StackJob::new(f, &latch);
        // SAFETY: we block on the latch below, so the stack job outlives its
        // execution on the worker thread.
        let job_ref = unsafe { job.as_job_ref() };
        self.registry.inject(job_ref);
        latch.wait();
        job.into_result()
    }

    /// Runs `a` and `b`, potentially in parallel, and returns both results.
    ///
    /// When called on a worker thread, `b` is published on the worker's
    /// deque so an idle worker can steal it while the current thread runs
    /// `a`; when called from outside the pool the whole join is moved onto a
    /// worker first via [`install`](Self::install).
    pub fn join<A, B, RA, RB>(&self, a: A, b: B) -> (RA, RB)
    where
        A: FnOnce() -> RA + Send,
        B: FnOnce() -> RB + Send,
        RA: Send,
        RB: Send,
    {
        let worker_ptr = WorkerThread::current();
        if worker_ptr.is_null() || !self.is_worker_thread() {
            return self.install(|| self.join_worker(a, b));
        }
        self.join_worker(a, b)
    }

    fn join_worker<A, B, RA, RB>(&self, a: A, b: B) -> (RA, RB)
    where
        A: FnOnce() -> RA + Send,
        B: FnOnce() -> RB + Send,
        RA: Send,
        RB: Send,
    {
        // SAFETY: join_worker is only entered once is_worker_thread confirmed
        // the TLS pointer refers to a live worker of this pool.
        let worker = unsafe { &*WorkerThread::current() };
        let latch = SpinLatch::new();
        let job_b = StackJob::new(b, &latch);
        // SAFETY: we do not return until the latch is set (either by running
        // the job ourselves below or by the thief), so the stack job cannot
        // dangle.
        let job_b_ref = unsafe { job_b.as_job_ref() };
        let b_tag = job_b_ref.tag();
        worker.push(job_b_ref);

        // Run `a` on this thread. If it panics we must still wait for `b`
        // (it may be running on another thread and borrow from our stack).
        let result_a = panic::catch_unwind(AssertUnwindSafe(a));

        // Try to take `b` back from our own deque; if some other pending job
        // is on top (possible when scope tasks were pushed), execute it —
        // running extra work here is always safe.
        let mut b_popped = false;
        while let Some(job) = worker.pop() {
            // SAFETY: both branches execute a freshly popped JobRef exactly
            // once; publishers (this frame for `b`, scopes for the rest) keep
            // the pointees alive until execution.
            if job.tag() == b_tag {
                unsafe { job.execute() };
                b_popped = true;
                break;
            } else {
                unsafe { job.execute() };
            }
        }
        if !b_popped {
            // `b` was stolen; help with other work until it completes.
            worker.wait_until(&latch);
        }

        let result_b = job_b.into_result_catching();
        match (result_a, result_b) {
            (Ok(ra), Ok(rb)) => (ra, rb),
            (Err(p), _) | (_, Err(p)) => panic::resume_unwind(p),
        }
    }

    /// Submits an independent task and returns a handle to its eventual
    /// result — the pool-level analogue of `create_fut`. The task may run on
    /// any worker; claim the value with [`FutureTask::join`] (the analogue of
    /// `get_fut`).
    pub fn spawn_future<T, F>(&self, f: F) -> FutureTask<T>
    where
        T: Send + 'static,
        F: FnOnce() -> T + Send + 'static,
    {
        let state = Arc::new(FutureState::new());
        let state2 = Arc::clone(&state);
        let job = HeapJob::new(move || {
            let result = panic::catch_unwind(AssertUnwindSafe(f));
            state2.complete(result);
        });
        self.registry.inject(job.into_job_ref());
        FutureTask { state }
    }

    /// Runs a batch of independent borrowed tasks to completion on the
    /// pool's workers — the entry point for driving *detection* work (not
    /// just capture) through the work-stealing scheduler: `futurerd-core`'s
    /// parallel replay engine hands its per-partition detection workers here
    /// via the facade's `PoolExecutor`.
    ///
    /// Blocks until every task has finished. Tasks may borrow from the
    /// caller's stack (the `'env` lifetime); panics propagate like
    /// [`ThreadPool::scope`].
    ///
    /// ```
    /// use futurerd_runtime::ThreadPoolBuilder;
    ///
    /// let pool = ThreadPoolBuilder::new().num_threads(2).build();
    /// let mut slots = vec![0u64; 3];
    /// pool.run_batch(
    ///     slots
    ///         .iter_mut()
    ///         .enumerate()
    ///         .map(|(i, slot)| Box::new(move || *slot = i as u64 + 1) as Box<dyn FnOnce() + Send + '_>)
    ///         .collect(),
    /// );
    /// assert_eq!(slots, vec![1, 2, 3]);
    /// ```
    pub fn run_batch<'env>(&self, tasks: Vec<Box<dyn FnOnce() + Send + 'env>>) {
        if tasks.len() <= 1 {
            // A single task (or none) gains nothing from scheduling.
            for task in tasks {
                task();
            }
            return;
        }
        self.scope(|scope| {
            for task in tasks {
                scope.spawn(task);
            }
        });
    }

    /// Runs `body` on the calling thread and, concurrently, on up to
    /// `helpers` pool workers; returns when every copy has finished — the
    /// pool-side hook of the work-assisted freeze.
    ///
    /// Every copy of `body` is the *same* closure: a pull loop claiming
    /// work-unit ranges from a shared atomic chunk index until it drains.
    /// The coordinator always participates, so a saturated pool degrades
    /// gracefully — helpers that never get scheduled just find the index
    /// empty, they are not needed for progress.
    ///
    /// ```
    /// use futurerd_runtime::ThreadPoolBuilder;
    /// use std::sync::atomic::{AtomicUsize, Ordering};
    ///
    /// let pool = ThreadPoolBuilder::new().num_threads(2).build();
    /// let next = AtomicUsize::new(0);
    /// let done = AtomicUsize::new(0);
    /// pool.run_assist(2, &|| {
    ///     while next.fetch_add(1, Ordering::Relaxed) < 100 {
    ///         done.fetch_add(1, Ordering::Relaxed);
    ///     }
    /// });
    /// assert_eq!(done.load(Ordering::Relaxed), 100);
    /// ```
    pub fn run_assist(&self, helpers: usize, body: &(dyn Fn() + Sync)) {
        if helpers == 0 {
            body();
            return;
        }
        self.scope(|scope| {
            for _ in 0..helpers {
                scope.spawn(body);
            }
            body();
        });
    }

    /// Creates a scope in which borrowed tasks can be spawned; blocks until
    /// every task spawned in the scope has completed.
    ///
    /// ```
    /// use futurerd_runtime::ThreadPoolBuilder;
    ///
    /// let pool = ThreadPoolBuilder::new().num_threads(2).build();
    /// let mut parts = vec![0u64; 4];
    /// pool.scope(|s| {
    ///     for (i, slot) in parts.iter_mut().enumerate() {
    ///         s.spawn(move || *slot = (i as u64 + 1) * 10);
    ///     }
    /// });
    /// assert_eq!(parts, vec![10, 20, 30, 40]);
    /// ```
    pub fn scope<'scope, R>(&self, f: impl FnOnce(&Scope<'scope>) -> R) -> R {
        let scope = Scope {
            registry: Arc::clone(&self.registry),
            latch: CountLatch::new(),
            panic: Mutex::new(None),
            marker: std::marker::PhantomData,
        };
        let result = f(&scope);
        scope.wait();
        if let Some(p) = scope.panic.into_inner() {
            panic::resume_unwind(p);
        }
        result
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        self.registry.terminate.store(true, Ordering::SeqCst);
        self.registry.notify_all();
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

/// A handle to a value being computed by [`ThreadPool::spawn_future`].
pub struct FutureTask<T> {
    state: Arc<FutureState<T>>,
}

impl<T> FutureTask<T> {
    /// Blocks until the task completes and returns its value. Panics raised
    /// by the task are propagated.
    pub fn join(self) -> T {
        match self.state.wait() {
            Ok(v) => v,
            Err(p) => panic::resume_unwind(p),
        }
    }

    /// Returns `Some(value)` if the task has already completed.
    pub fn try_join(self) -> Result<T, FutureTask<T>> {
        if self.state.is_done() {
            Ok(self.join())
        } else {
            Err(self)
        }
    }
}

/// A raw pointer wrapper that may cross thread boundaries; used only for
/// pointers whose pointees are kept alive and synchronized by the scope
/// protocol.
struct SendPtr<T>(*const T);
// SAFETY: SendPtr is only constructed around Scope-owned state (latch, panic
// store) that `Scope::wait` keeps alive and synchronized until every task
// holding a copy has finished.
unsafe impl<T> Send for SendPtr<T> {}

impl<T> SendPtr<T> {
    /// Returns the wrapped pointer. Taking `self` (not a field access) keeps
    /// edition-2021 closures capturing the whole wrapper, which is what makes
    /// the closure `Send`.
    fn get(self) -> *const T {
        self.0
    }
}

/// A scope for spawning borrowed tasks; see [`ThreadPool::scope`].
pub struct Scope<'scope> {
    registry: Arc<Registry>,
    latch: CountLatch,
    panic: Mutex<Option<Box<dyn std::any::Any + Send>>>,
    marker: std::marker::PhantomData<fn(&'scope ()) -> &'scope ()>,
}

impl<'scope> Scope<'scope> {
    /// Spawns a task that may borrow from the enclosing scope. The task runs
    /// on some worker thread before [`ThreadPool::scope`] returns.
    pub fn spawn<F>(&self, f: F)
    where
        F: FnOnce() + Send + 'scope,
    {
        self.latch.increment();
        // SAFETY: the transmute erases the 'scope lifetime only — the scope
        // does not end until every spawned task has executed
        // (CountLatch::wait below), so the closure cannot outlive its
        // borrows.
        let f: Box<dyn FnOnce() + Send + 'scope> = Box::new(f);
        let f: Box<dyn FnOnce() + Send + 'static> = unsafe { std::mem::transmute(f) };
        let latch = SendPtr(&self.latch as *const CountLatch);
        let panic_store =
            SendPtr(&self.panic as *const Mutex<Option<Box<dyn std::any::Any + Send>>>);
        let job = HeapJob::new(move || {
            let result = panic::catch_unwind(AssertUnwindSafe(f));
            // SAFETY: the Scope (and thus the latch and panic store) is kept
            // alive by `wait()` until this decrement happens.
            unsafe {
                if let Err(p) = result {
                    (*panic_store.get()).lock().get_or_insert(p);
                }
                (*latch.get()).decrement();
            }
        });
        self.registry.inject(job.into_job_ref());
    }

    fn wait(&self) {
        // If we are on a worker thread, help execute work while waiting so
        // nested scopes cannot deadlock the pool.
        let worker_ptr = WorkerThread::current();
        if !worker_ptr.is_null() {
            // SAFETY: a non-null TLS worker pointer always refers to the live
            // worker that installed it for the duration of its main loop.
            let worker = unsafe { &*worker_ptr };
            if Arc::ptr_eq(&worker.registry, &self.registry) {
                while !self.latch.is_done() {
                    if let Some(job) = worker.find_work() {
                        // SAFETY: dequeued JobRefs are live and executed once.
                        unsafe { job.execute() };
                    } else {
                        thread::yield_now();
                    }
                }
                return;
            }
        }
        self.latch.wait();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn install_runs_on_worker_and_returns_value() {
        let pool = ThreadPool::new(2);
        let v = pool.install(|| 40 + 2);
        assert_eq!(v, 42);
    }

    #[test]
    fn join_returns_both_results() {
        let pool = ThreadPool::new(4);
        let (a, b) = pool.join(|| 1 + 1, || "two".len());
        assert_eq!(a, 2);
        assert_eq!(b, 3);
    }

    #[test]
    fn nested_joins_compute_fibonacci() {
        fn fib(pool: &ThreadPool, n: u64) -> u64 {
            if n < 2 {
                return n;
            }
            let (a, b) = pool.join(|| fib(pool, n - 1), || fib(pool, n - 2));
            a + b
        }
        let pool = ThreadPool::new(4);
        assert_eq!(pool.install(|| fib(&pool, 20)), 6765);
    }

    #[test]
    fn run_assist_drains_a_shared_counter_with_helpers() {
        let pool = ThreadPool::new(4);
        let next = AtomicUsize::new(0);
        let claimed = Mutex::new(vec![0u32; 1000]);
        pool.run_assist(3, &|| loop {
            let unit = next.fetch_add(1, Ordering::Relaxed);
            if unit >= 1000 {
                break;
            }
            claimed.lock()[unit] += 1;
        });
        assert!(claimed.lock().iter().all(|&c| c == 1));
    }

    #[test]
    fn run_assist_with_zero_helpers_runs_inline() {
        let pool = ThreadPool::new(2);
        let hits = AtomicUsize::new(0);
        let caller = thread::current().id();
        pool.run_assist(0, &|| {
            assert_eq!(thread::current().id(), caller);
            hits.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(hits.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn join_uses_multiple_threads() {
        let pool = ThreadPool::new(4);
        let seen = Arc::new(Mutex::new(std::collections::HashSet::new()));
        fn touch(
            seen: &Mutex<std::collections::HashSet<thread::ThreadId>>,
            depth: u32,
            pool: &ThreadPool,
        ) {
            seen.lock().insert(thread::current().id());
            if depth == 0 {
                std::thread::sleep(std::time::Duration::from_millis(2));
                return;
            }
            pool.join(
                || touch(seen, depth - 1, pool),
                || touch(seen, depth - 1, pool),
            );
        }
        let seen2 = Arc::clone(&seen);
        pool.install(|| touch(&seen2, 6, &pool));
        // With 4 workers and 64 leaf tasks sleeping, at least 2 distinct
        // threads should have participated.
        assert!(seen.lock().len() >= 2);
    }

    #[test]
    fn spawn_future_and_join() {
        let pool = ThreadPool::new(2);
        let f = pool.spawn_future(|| (0..100u64).sum::<u64>());
        let g = pool.spawn_future(|| 7u64);
        assert_eq!(f.join(), 4950);
        assert_eq!(g.join(), 7);
    }

    #[test]
    fn futures_pipeline_through_stages() {
        let pool = ThreadPool::new(3);
        let stage1 = pool.spawn_future(|| vec![1u32, 2, 3, 4]);
        let v = stage1.join();
        let stage2 = pool.spawn_future(move || v.into_iter().map(|x| x * x).collect::<Vec<_>>());
        assert_eq!(stage2.join(), vec![1, 4, 9, 16]);
    }

    #[test]
    fn run_batch_executes_every_task_and_blocks() {
        let pool = ThreadPool::new(4);
        let mut slots = vec![0u32; 64];
        pool.run_batch(
            slots
                .iter_mut()
                .enumerate()
                .map(|(i, slot)| {
                    Box::new(move || *slot = i as u32 + 1) as Box<dyn FnOnce() + Send + '_>
                })
                .collect(),
        );
        assert!(slots.iter().enumerate().all(|(i, &v)| v == i as u32 + 1));
        // Empty and single-task batches work too.
        pool.run_batch(Vec::new());
        let mut hit = false;
        pool.run_batch(vec![
            Box::new(|| hit = true) as Box<dyn FnOnce() + Send + '_>
        ]);
        assert!(hit);
    }

    #[test]
    fn scope_runs_all_tasks() {
        let pool = ThreadPool::new(4);
        let counter = AtomicUsize::new(0);
        pool.scope(|s| {
            for _ in 0..64 {
                s.spawn(|| {
                    counter.fetch_add(1, Ordering::SeqCst);
                });
            }
        });
        assert_eq!(counter.load(Ordering::SeqCst), 64);
    }

    #[test]
    fn scope_tasks_can_borrow_mutably_disjoint_slots() {
        let pool = ThreadPool::new(4);
        let mut data = vec![0u64; 32];
        pool.scope(|s| {
            for (i, slot) in data.iter_mut().enumerate() {
                s.spawn(move || *slot = i as u64 * 2);
            }
        });
        assert!(data.iter().enumerate().all(|(i, &v)| v == i as u64 * 2));
    }

    #[test]
    fn join_propagates_panics() {
        let pool = ThreadPool::new(2);
        let result = panic::catch_unwind(AssertUnwindSafe(|| {
            pool.join(|| 1, || panic!("boom"));
        }));
        assert!(result.is_err());
        // The pool must still be usable afterwards.
        let (a, b) = pool.join(|| 1, || 2);
        assert_eq!((a, b), (1, 2));
    }

    #[test]
    fn future_panic_propagates_at_join() {
        let pool = ThreadPool::new(2);
        let f = pool.spawn_future(|| -> u32 { panic!("future failed") });
        let result = panic::catch_unwind(AssertUnwindSafe(|| f.join()));
        assert!(result.is_err());
    }

    #[test]
    fn install_from_worker_runs_inline() {
        let pool = ThreadPool::new(2);
        let v = pool.install(|| pool.install(|| 5));
        assert_eq!(v, 5);
    }

    #[test]
    fn many_small_futures_complete() {
        let pool = ThreadPool::new(4);
        let futures: Vec<_> = (0..256u64)
            .map(|i| pool.spawn_future(move || i * i))
            .collect();
        let total: u64 = futures.into_iter().map(|f| f.join()).sum();
        assert_eq!(total, (0..256u64).map(|i| i * i).sum());
    }

    #[test]
    fn pool_with_one_thread_still_works() {
        let pool = ThreadPool::new(1);
        let (a, b) = pool.join(|| 10, || 20);
        assert_eq!(a + b, 30);
        assert_eq!(pool.num_threads(), 1);
    }

    #[test]
    fn builder_configures_threads() {
        let pool = ThreadPoolBuilder::new()
            .num_threads(3)
            .thread_name_prefix("bench-worker")
            .stack_size(1 << 20)
            .build();
        assert_eq!(pool.num_threads(), 3);
        assert!(!pool.is_worker_thread());
        pool.install(|| assert!(pool.is_worker_thread()));
    }

    #[test]
    fn shared_pools_are_cached_per_size() {
        let a = ThreadPool::shared(2);
        let b = ThreadPool::shared(2);
        assert!(Arc::ptr_eq(&a, &b), "same size must reuse the pool");
        assert_eq!(a.num_threads(), 2);
        let c = ThreadPool::shared(3);
        assert!(!Arc::ptr_eq(&a, &c), "different sizes get different pools");
        assert_eq!(c.num_threads(), 3);
        // Shared pools are fully functional (and reusable across callers).
        let (x, y) = a.join(|| 1, || 2);
        assert_eq!(x + y, 3);
        let mut done = [false; 4];
        a.run_batch(
            done.iter_mut()
                .map(|slot| Box::new(move || *slot = true) as Box<dyn FnOnce() + Send>)
                .collect(),
        );
        assert!(done.iter().all(|&d| d));
    }
}
