//! Type-erased jobs executed by worker threads.
//!
//! Two job flavours exist:
//!
//! * [`StackJob`] — lives on the stack of the thread that published it
//!   (`join`/`install`). It is published *by reference* as a [`JobRef`];
//!   safety rests on the publisher waiting on the job's latch before its
//!   stack frame is torn down.
//! * [`HeapJob`] — an owned, `'static` closure used by `spawn_future` and
//!   scope tasks.

use super::latch::Latch;
use std::any::Any;
use std::cell::UnsafeCell;
use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};

/// The payload carried by a panicking job.
pub(super) type PanicPayload = Box<dyn Any + Send>;

/// A type-erased pointer to a job plus its execute function.
///
/// `JobRef` is `Send` even though it may point at non-`Send` data captured on
/// another thread's stack; the scheduler only ever executes a job once, and
/// the `join`/`install` protocols guarantee the pointee is alive until then.
pub(super) struct JobRef {
    pointer: *const (),
    // SAFETY: invoked only through JobRef::execute, which forwards the
    // live-pointee / called-once contract.
    execute_fn: unsafe fn(*const ()),
}

// SAFETY: see the struct docs — single execution plus the publisher's
// keep-alive protocol make the erased pointer safe to move across threads.
unsafe impl Send for JobRef {}

impl JobRef {
    /// Creates a job reference from a pointer to a job implementation.
    ///
    /// # Safety
    ///
    /// `data` must remain valid until [`JobRef::execute`] has been called
    /// exactly once.
    pub(super) unsafe fn new<T: ErasedJob>(data: *const T) -> JobRef {
        JobRef {
            pointer: data as *const (),
            // SAFETY: `execute` forwards its own contract (live, run-once
            // pointee) to the typed implementation.
            execute_fn: |ptr| unsafe { T::execute(ptr as *const T) },
        }
    }

    /// An identity tag used to recognize a job popped back off a deque.
    pub(super) fn tag(&self) -> usize {
        self.pointer as usize
    }

    /// Executes the job.
    ///
    /// # Safety
    ///
    /// Must be called exactly once, while the pointee is still alive.
    pub(super) unsafe fn execute(self) {
        unsafe { (self.execute_fn)(self.pointer) }
    }
}

/// A job that can be executed through a raw pointer.
pub(super) trait ErasedJob {
    /// Runs the job.
    ///
    /// # Safety
    ///
    /// `this` must point to a live job that has not been executed yet.
    unsafe fn execute(this: *const Self);
}

/// A job whose closure and result live on the publishing thread's stack.
pub(super) struct StackJob<'l, L: Latch, F, R> {
    latch: &'l L,
    func: UnsafeCell<Option<F>>,
    result: UnsafeCell<Option<Result<R, PanicPayload>>>,
}

impl<'l, L: Latch, F, R> StackJob<'l, L, F, R>
where
    F: FnOnce() -> R,
{
    /// Wraps `func`; `latch` is set after the job runs.
    pub(super) fn new(func: F, latch: &'l L) -> Self {
        Self {
            latch,
            func: UnsafeCell::new(Some(func)),
            result: UnsafeCell::new(None),
        }
    }

    /// Publishes the job by reference.
    ///
    /// # Safety
    ///
    /// The caller must not drop the job (or return from its stack frame)
    /// until the latch has been set.
    pub(super) unsafe fn as_job_ref(&self) -> JobRef {
        unsafe { JobRef::new(self as *const Self) }
    }

    /// Takes the result after the latch has been set, propagating any panic
    /// raised by the closure.
    pub(super) fn into_result(self) -> R {
        match self.into_result_catching() {
            Ok(v) => v,
            Err(p) => panic::resume_unwind(p),
        }
    }

    /// Takes the result (or the captured panic) after the latch has been
    /// set.
    pub(super) fn into_result_catching(self) -> Result<R, PanicPayload> {
        self.result
            .into_inner()
            .expect("stack job result taken before the job executed")
    }
}

impl<L: Latch, F, R> ErasedJob for StackJob<'_, L, F, R>
where
    F: FnOnce() -> R,
{
    // SAFETY: the ErasedJob contract guarantees `this` is live and
    // executed once, so the UnsafeCell accesses below are exclusive:
    // nobody else touches `func`/`result` between publication and the
    // latch set.
    unsafe fn execute(this: *const Self) {
        let this = unsafe { &*this };
        let func = unsafe { (*this.func.get()).take() }.expect("stack job executed twice");
        let result = panic::catch_unwind(AssertUnwindSafe(func));
        unsafe { *this.result.get() = Some(result) };
        // Setting the latch releases the publisher, which may immediately
        // deallocate the job — nothing may touch `this` afterwards.
        this.latch.set();
    }
}

/// An owned, heap-allocated job.
pub(super) struct HeapJob<F> {
    func: F,
}

impl<F> HeapJob<F>
where
    F: FnOnce() + Send,
{
    /// Wraps an owned closure.
    pub(super) fn new(func: F) -> Box<Self> {
        Box::new(Self { func })
    }
}

/// Extension: convert a boxed heap job into a job reference that owns it.
pub(super) trait IntoJobRef {
    /// Converts into a [`JobRef`] that frees the job after executing it.
    fn into_job_ref(self) -> JobRef;
}

impl<F> IntoJobRef for Box<HeapJob<F>>
where
    F: FnOnce() + Send,
{
    fn into_job_ref(self) -> JobRef {
        let raw = Box::into_raw(self);
        // SAFETY: the pointer stays valid until execute reconstructs the box.
        unsafe { JobRef::new(raw) }
    }
}

impl<F> ErasedJob for HeapJob<F>
where
    F: FnOnce() + Send,
{
    unsafe fn execute(this: *const Self) {
        // SAFETY: `this` came from Box::into_raw in into_job_ref and the
        // run-once contract means nobody else will reconstruct it.
        let job = unsafe { Box::from_raw(this as *mut Self) };
        (job.func)();
    }
}

/// Shared completion state of a [`FutureTask`](super::FutureTask).
pub(super) struct FutureState<T> {
    result: parking_lot::Mutex<Option<Result<T, PanicPayload>>>,
    condvar: parking_lot::Condvar,
    done: AtomicBool,
}

impl<T> FutureState<T> {
    /// Creates an incomplete state.
    pub(super) fn new() -> Self {
        Self {
            result: parking_lot::Mutex::new(None),
            condvar: parking_lot::Condvar::new(),
            done: AtomicBool::new(false),
        }
    }

    /// Stores the result and wakes waiters.
    pub(super) fn complete(&self, value: Result<T, PanicPayload>) {
        let mut slot = self.result.lock();
        *slot = Some(value);
        self.done.store(true, Ordering::Release);
        self.condvar.notify_all();
    }

    /// True once the task has completed.
    pub(super) fn is_done(&self) -> bool {
        self.done.load(Ordering::Acquire)
    }

    /// Blocks until the task completes and takes the result.
    pub(super) fn wait(&self) -> Result<T, PanicPayload> {
        let mut slot = self.result.lock();
        while slot.is_none() {
            self.condvar.wait(&mut slot);
        }
        slot.take().expect("future result already taken")
    }
}

#[cfg(test)]
mod tests {
    use super::super::latch::SpinLatch;
    use super::*;

    #[test]
    fn stack_job_runs_and_sets_latch() {
        let latch = SpinLatch::new();
        let job = StackJob::new(|| 6 * 7, &latch);
        let job_ref = unsafe { job.as_job_ref() };
        assert!(!latch.probe());
        unsafe { job_ref.execute() };
        assert!(latch.probe());
        assert_eq!(job.into_result(), 42);
    }

    #[test]
    fn stack_job_captures_panic() {
        let latch = SpinLatch::new();
        let job: StackJob<'_, _, _, u32> = StackJob::new(|| panic!("nope"), &latch);
        let job_ref = unsafe { job.as_job_ref() };
        unsafe { job_ref.execute() };
        assert!(latch.probe());
        assert!(job.into_result_catching().is_err());
    }

    #[test]
    fn heap_job_executes_and_frees() {
        let flag = std::sync::Arc::new(AtomicBool::new(false));
        let flag2 = std::sync::Arc::clone(&flag);
        let job = HeapJob::new(move || flag2.store(true, Ordering::SeqCst)).into_job_ref();
        unsafe { job.execute() };
        assert!(flag.load(Ordering::SeqCst));
    }

    #[test]
    fn future_state_roundtrip() {
        let st: FutureState<u32> = FutureState::new();
        assert!(!st.is_done());
        st.complete(Ok(5));
        assert!(st.is_done());
        assert_eq!(st.wait().unwrap(), 5);
    }

    #[test]
    fn job_ref_tags_are_distinct_per_job() {
        let latch = SpinLatch::new();
        let a = StackJob::new(|| 1, &latch);
        let b = StackJob::new(|| 2, &latch);
        let (ra, rb) = unsafe { (a.as_job_ref(), b.as_job_ref()) };
        assert_ne!(ra.tag(), rb.tag());
        unsafe {
            ra.execute();
            rb.execute();
        }
        let _ = (a.into_result(), b.into_result());
    }
}
