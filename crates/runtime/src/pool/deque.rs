//! Per-worker job deques.
//!
//! Each worker owns a deque that it treats as a LIFO stack (`push`/`pop` at
//! the back), while thieves steal from the front (FIFO). LIFO execution for
//! the owner preserves the depth-first, cache-friendly order of the
//! sequential program; FIFO stealing hands thieves the oldest — and
//! typically largest — pending subcomputation, exactly the Cilk/rayon
//! discipline.
//!
//! The implementation protects the deque with a [`parking_lot::Mutex`]. A
//! lock-free Chase–Lev deque is the classical alternative; with the coarse
//! task granularity used by the benchmark workloads the mutex version is not
//! a bottleneck, and it keeps this crate free of subtle memory-ordering
//! proofs. The owner/stealer API mirrors the lock-free design so the
//! internals can be swapped without touching the scheduler.

use super::job::JobRef;
use parking_lot::Mutex;
use std::collections::VecDeque;
use std::sync::Arc;

#[derive(Default)]
struct Inner {
    jobs: Mutex<VecDeque<JobRef>>,
}

/// The owner side of a worker deque (only the worker thread uses it).
pub(super) struct WorkerDeque {
    inner: Arc<Inner>,
}

/// The thief side of a worker deque (shared with every other worker).
#[derive(Clone)]
pub(super) struct Stealer {
    inner: Arc<Inner>,
}

impl WorkerDeque {
    /// Creates an empty deque.
    pub(super) fn new() -> Self {
        Self {
            inner: Arc::new(Inner::default()),
        }
    }

    /// Returns a stealer handle for this deque.
    pub(super) fn stealer(&self) -> Stealer {
        Stealer {
            inner: Arc::clone(&self.inner),
        }
    }

    /// Pushes a job onto the owner end (back).
    pub(super) fn push(&self, job: JobRef) {
        self.inner.jobs.lock().push_back(job);
    }

    /// Pops a job from the owner end (back, LIFO).
    pub(super) fn pop(&self) -> Option<JobRef> {
        self.inner.jobs.lock().pop_back()
    }

    /// Number of queued jobs (used by tests).
    #[cfg(test)]
    pub(super) fn len(&self) -> usize {
        self.inner.jobs.lock().len()
    }
}

impl Stealer {
    /// Steals a job from the thief end (front, FIFO).
    pub(super) fn steal(&self) -> Option<JobRef> {
        self.inner.jobs.lock().pop_front()
    }
}

#[cfg(test)]
mod tests {
    use super::super::job::{HeapJob, IntoJobRef};
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc as StdArc;

    fn counting_job(counter: &StdArc<AtomicUsize>, tag: usize) -> JobRef {
        let counter = StdArc::clone(counter);
        HeapJob::new(move || {
            counter.fetch_add(tag, Ordering::SeqCst);
        })
        .into_job_ref()
    }

    #[test]
    fn owner_pops_lifo_and_thief_steals_fifo() {
        let counter = StdArc::new(AtomicUsize::new(0));
        let deque = WorkerDeque::new();
        let stealer = deque.stealer();
        deque.push(counting_job(&counter, 1));
        deque.push(counting_job(&counter, 10));
        deque.push(counting_job(&counter, 100));
        assert_eq!(deque.len(), 3);

        // Thief gets the oldest job (tag 1).
        let stolen = stealer.steal().unwrap();
        unsafe { stolen.execute() };
        assert_eq!(counter.load(Ordering::SeqCst), 1);

        // Owner gets the newest job (tag 100).
        let popped = deque.pop().unwrap();
        unsafe { popped.execute() };
        assert_eq!(counter.load(Ordering::SeqCst), 101);

        let last = deque.pop().unwrap();
        unsafe { last.execute() };
        assert_eq!(counter.load(Ordering::SeqCst), 111);
        assert!(deque.pop().is_none());
        assert!(stealer.steal().is_none());
    }

    #[test]
    fn concurrent_steals_never_duplicate_jobs() {
        let counter = StdArc::new(AtomicUsize::new(0));
        let deque = WorkerDeque::new();
        let n = 1000;
        for _ in 0..n {
            deque.push(counting_job(&counter, 1));
        }
        let stealers: Vec<Stealer> = (0..4).map(|_| deque.stealer()).collect();
        std::thread::scope(|s| {
            for st in stealers {
                s.spawn(move || {
                    while let Some(job) = st.steal() {
                        unsafe { job.execute() };
                    }
                });
            }
            while let Some(job) = deque.pop() {
                unsafe { job.execute() };
            }
        });
        assert_eq!(counter.load(Ordering::SeqCst), n);
    }
}
