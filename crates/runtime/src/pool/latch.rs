//! Latches: one-shot "this happened" flags used to signal job completion.
//!
//! Three flavours, matching how the waiter wants to wait:
//!
//! * `SpinLatch` — probed by a worker thread that keeps stealing other work
//!   while it waits (used by `join`).
//! * `LockLatch` — blocks a non-worker thread on a condition variable
//!   (used by `install`).
//! * `CountLatch` — counts down from N; used by scopes to wait for all
//!   spawned tasks.
//!
//! The atomic protocols live in the shim-generic [`SpinLatchCore`] and
//! [`CountLatchCore`], instantiated here with the zero-cost
//! [`RealShim`]; the `futurerd-trace check` suite explores the same cores
//! under the model shim (set/probe publication, exact countdown). The
//! blocking layers (condvars, timed waits) stay on `parking_lot` — only
//! the lock-free state machines are model-checked.

use futurerd_check::sync::{AtomicIntShim, AtomicShim, Ordering, RealShim, SyncShim};
use parking_lot::{Condvar, Mutex};

/// A one-shot completion flag.
pub(super) trait Latch {
    /// Signals completion. May be called from any thread; called exactly
    /// once per logical event.
    fn set(&self);
}

/// The spin latch's atomic core: a one-shot release/acquire flag. The
/// Release set / Acquire probe pair is what hands the completed job's
/// writes to the prober — model-checked (a `Relaxed` set here is the
/// `relaxed-latch-race` planted bug the checker must catch).
#[derive(Debug, Default)]
pub struct SpinLatchCore<S: SyncShim> {
    set: S::AtomicBool,
}

impl<S: SyncShim> SpinLatchCore<S> {
    /// Creates an unset latch.
    pub fn new() -> Self {
        Self {
            set: S::AtomicBool::new(false),
        }
    }

    /// Returns true once [`SpinLatchCore::set`] has been called, acquiring
    /// the setter's writes.
    pub fn probe(&self) -> bool {
        self.set.load(Ordering::Acquire)
    }

    /// Signals completion, releasing the caller's writes to probers.
    pub fn set(&self) {
        self.set.store(true, Ordering::Release);
    }
}

/// A latch probed by busy workers.
pub(super) type SpinLatch = SpinLatchCore<RealShim>;

impl Latch for SpinLatch {
    fn set(&self) {
        SpinLatchCore::set(self);
    }
}

/// A latch a non-worker thread can block on.
#[derive(Debug, Default)]
pub(super) struct LockLatch {
    done: Mutex<bool>,
    condvar: Condvar,
}

impl LockLatch {
    /// Creates an unset latch.
    pub(super) fn new() -> Self {
        Self::default()
    }

    /// Blocks until the latch is set.
    pub(super) fn wait(&self) {
        let mut done = self.done.lock();
        while !*done {
            self.condvar.wait(&mut done);
        }
    }
}

impl Latch for LockLatch {
    fn set(&self) {
        let mut done = self.done.lock();
        *done = true;
        self.condvar.notify_all();
    }
}

/// The countdown latch's atomic core: `increment` before publishing a
/// task, `decrement` when it completes; [`CountLatchCore::decrement`]
/// reports whether this call was the one that drained the count (so the
/// blocking wrapper wakes waiters exactly once per drain). Model-checked:
/// N concurrent decrements drain the count exactly once with no
/// double-wake and no missed drain.
#[derive(Debug)]
pub struct CountLatchCore<S: SyncShim> {
    count: S::AtomicUsize,
}

impl<S: SyncShim> Default for CountLatchCore<S> {
    fn default() -> Self {
        Self::new()
    }
}

impl<S: SyncShim> CountLatchCore<S> {
    /// Creates a core with a count of zero (already "done").
    pub fn new() -> Self {
        Self {
            count: S::AtomicUsize::new(0),
        }
    }

    /// Registers one more pending task.
    pub fn increment(&self) {
        self.count.fetch_add(1, Ordering::SeqCst);
    }

    /// Marks one task complete; true when this call drained the count.
    pub fn decrement(&self) -> bool {
        self.count.fetch_sub(1, Ordering::SeqCst) == 1
    }

    /// True when no tasks are pending.
    pub fn is_done(&self) -> bool {
        self.count.load(Ordering::SeqCst) == 0
    }
}

/// A countdown latch: the atomic [`CountLatchCore`] plus a condvar so
/// `wait` can block until the count returns to zero.
#[derive(Debug)]
pub(super) struct CountLatch {
    core: CountLatchCore<RealShim>,
    lock: Mutex<()>,
    condvar: Condvar,
}

impl CountLatch {
    /// Creates a latch with a count of zero (already "done").
    pub(super) fn new() -> Self {
        Self {
            core: CountLatchCore::new(),
            lock: Mutex::new(()),
            condvar: Condvar::new(),
        }
    }

    /// Registers one more pending task.
    pub(super) fn increment(&self) {
        self.core.increment();
    }

    /// Marks one task complete.
    pub(super) fn decrement(&self) {
        if self.core.decrement() {
            let _guard = self.lock.lock();
            self.condvar.notify_all();
        }
    }

    /// True when no tasks are pending.
    pub(super) fn is_done(&self) -> bool {
        self.core.is_done()
    }

    /// Blocks until no tasks are pending.
    pub(super) fn wait(&self) {
        let mut guard = self.lock.lock();
        while !self.is_done() {
            self.condvar
                .wait_for(&mut guard, std::time::Duration::from_millis(1));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn spin_latch_probe_transitions() {
        let l = SpinLatch::new();
        assert!(!l.probe());
        Latch::set(&l);
        assert!(l.probe());
    }

    #[test]
    fn lock_latch_wakes_waiter() {
        let l = Arc::new(LockLatch::new());
        let l2 = Arc::clone(&l);
        let t = std::thread::spawn(move || {
            std::thread::sleep(std::time::Duration::from_millis(5));
            l2.set();
        });
        l.wait();
        t.join().unwrap();
    }

    #[test]
    fn count_latch_counts_down() {
        let l = Arc::new(CountLatch::new());
        assert!(l.is_done());
        for _ in 0..8 {
            l.increment();
        }
        assert!(!l.is_done());
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let l = Arc::clone(&l);
                std::thread::spawn(move || l.decrement())
            })
            .collect();
        l.wait();
        assert!(l.is_done());
        for h in handles {
            h.join().unwrap();
        }
    }

    #[test]
    fn count_latch_core_reports_the_draining_decrement() {
        let core = CountLatchCore::<futurerd_check::sync::RealShim>::new();
        core.increment();
        core.increment();
        assert!(!core.decrement());
        assert!(core.decrement(), "second decrement drains");
        assert!(core.is_done());
    }
}
