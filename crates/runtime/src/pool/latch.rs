//! Latches: one-shot "this happened" flags used to signal job completion.
//!
//! Three flavours, matching how the waiter wants to wait:
//!
//! * [`SpinLatch`] — probed by a worker thread that keeps stealing other work
//!   while it waits (used by `join`).
//! * [`LockLatch`] — blocks a non-worker thread on a condition variable
//!   (used by `install`).
//! * [`CountLatch`] — counts down from N; used by scopes to wait for all
//!   spawned tasks.

use parking_lot::{Condvar, Mutex};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

/// A one-shot completion flag.
pub(super) trait Latch {
    /// Signals completion. May be called from any thread; called exactly
    /// once per logical event.
    fn set(&self);
}

/// A latch probed by busy workers.
#[derive(Debug, Default)]
pub(super) struct SpinLatch {
    set: AtomicBool,
}

impl SpinLatch {
    /// Creates an unset latch.
    pub(super) fn new() -> Self {
        Self::default()
    }

    /// Returns true once [`Latch::set`] has been called.
    pub(super) fn probe(&self) -> bool {
        self.set.load(Ordering::Acquire)
    }
}

impl Latch for SpinLatch {
    fn set(&self) {
        self.set.store(true, Ordering::Release);
    }
}

/// A latch a non-worker thread can block on.
#[derive(Debug, Default)]
pub(super) struct LockLatch {
    done: Mutex<bool>,
    condvar: Condvar,
}

impl LockLatch {
    /// Creates an unset latch.
    pub(super) fn new() -> Self {
        Self::default()
    }

    /// Blocks until the latch is set.
    pub(super) fn wait(&self) {
        let mut done = self.done.lock();
        while !*done {
            self.condvar.wait(&mut done);
        }
    }
}

impl Latch for LockLatch {
    fn set(&self) {
        let mut done = self.done.lock();
        *done = true;
        self.condvar.notify_all();
    }
}

/// A countdown latch: `increment` before publishing a task, `decrement` when
/// it completes; `wait` blocks until the count returns to zero.
#[derive(Debug)]
pub(super) struct CountLatch {
    count: AtomicUsize,
    lock: Mutex<()>,
    condvar: Condvar,
}

impl CountLatch {
    /// Creates a latch with a count of zero (already "done").
    pub(super) fn new() -> Self {
        Self {
            count: AtomicUsize::new(0),
            lock: Mutex::new(()),
            condvar: Condvar::new(),
        }
    }

    /// Registers one more pending task.
    pub(super) fn increment(&self) {
        self.count.fetch_add(1, Ordering::SeqCst);
    }

    /// Marks one task complete.
    pub(super) fn decrement(&self) {
        if self.count.fetch_sub(1, Ordering::SeqCst) == 1 {
            let _guard = self.lock.lock();
            self.condvar.notify_all();
        }
    }

    /// True when no tasks are pending.
    pub(super) fn is_done(&self) -> bool {
        self.count.load(Ordering::SeqCst) == 0
    }

    /// Blocks until no tasks are pending.
    pub(super) fn wait(&self) {
        let mut guard = self.lock.lock();
        while !self.is_done() {
            self.condvar
                .wait_for(&mut guard, std::time::Duration::from_millis(1));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn spin_latch_probe_transitions() {
        let l = SpinLatch::new();
        assert!(!l.probe());
        l.set();
        assert!(l.probe());
    }

    #[test]
    fn lock_latch_wakes_waiter() {
        let l = Arc::new(LockLatch::new());
        let l2 = Arc::clone(&l);
        let t = std::thread::spawn(move || {
            std::thread::sleep(std::time::Duration::from_millis(5));
            l2.set();
        });
        l.wait();
        t.join().unwrap();
    }

    #[test]
    fn count_latch_counts_down() {
        let l = Arc::new(CountLatch::new());
        assert!(l.is_done());
        for _ in 0..8 {
            l.increment();
        }
        assert!(!l.is_done());
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let l = Arc::clone(&l);
                std::thread::spawn(move || l.decrement())
            })
            .collect();
        l.wait();
        assert!(l.is_done());
        for h in handles {
            h.join().unwrap();
        }
    }
}
