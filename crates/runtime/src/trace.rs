//! Trace capture: turning executions into persistent [`Trace`]s.
//!
//! Two capture paths produce byte-identical traces:
//!
//! 1. **Sequential**: [`TraceRecorder`] is an [`Observer`] that appends every
//!    callback of the depth-first eager executor to a [`Trace`] — recording
//!    is just another observer, composable with a detector through
//!    [`MultiObserver`](futurerd_dag::MultiObserver).
//! 2. **Parallel**: [`capture_spec_parallel`] runs a generated
//!    [`ProgramSpec`] on the work-stealing [`ThreadPool`], with *per-worker
//!    buffered capture*: each worker thread appends structural records to its
//!    own buffer as it executes (steals included), tagged with the record's
//!    position in the task tree. A deterministic merge then rebuilds the
//!    canonical serial-DF event stream — the same stream the sequential
//!    executor would have emitted — regardless of how the scheduler
//!    interleaved the work.
//!
//! The parallel path leans on a property of this execution model: the event
//! *structure* of a program is data-independent (which locations a strand
//! touches does not depend on the values read), so a trace captured from any
//! interleaving can be renumbered into the canonical serial-DF order. Each
//! record carries its tree position `(path, seq)` — `path` is the sequence
//! of parent action indices that forked the task, `seq` the record's index
//! within the task — and the merge is a depth-first walk of that tree
//! replaying the executor's id-allocation discipline.

use crate::exec::{run_program, Cx, ExecutionSummary, BASE_ADDR};
use crate::pool::ThreadPool;
use crate::spec::run_spec;
use futurerd_dag::events::ForkInfo;
use futurerd_dag::events::{CreateFutureEvent, GetFutureEvent, SpawnEvent, SyncEvent};
use futurerd_dag::genprog::{Action, ProgramSpec};
use futurerd_dag::ids::{FunctionId, MemAddr, StrandId};
use futurerd_dag::trace::{Trace, TraceEvent};
use futurerd_dag::Observer;
use parking_lot::Mutex;
use std::cell::RefCell;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::sync::Arc;

/// An [`Observer`] that records every event into a [`Trace`].
///
/// # Example
///
/// ```
/// use futurerd_runtime::{run_program, TraceRecorder};
///
/// let (_, recorder, summary) = run_program(TraceRecorder::new(), |cx| {
///     cx.spawn(|_| {});
///     cx.sync();
/// });
/// let trace = recorder.into_trace();
/// let counts = trace.validate().expect("executor traces are canonical");
/// assert_eq!(counts.spawns, summary.spawns);
/// assert_eq!(counts.strands, summary.strands);
/// ```
#[derive(Debug, Default)]
pub struct TraceRecorder {
    trace: Trace,
}

impl TraceRecorder {
    /// Creates an empty recorder.
    pub fn new() -> Self {
        Self::default()
    }

    /// The trace recorded so far.
    pub fn trace(&self) -> &Trace {
        &self.trace
    }

    /// Consumes the recorder and returns the trace.
    pub fn into_trace(self) -> Trace {
        self.trace
    }

    /// Removes and returns the events recorded since the last take, in
    /// stream order — the live end of the
    /// [`EventSource`](futurerd_dag::source::EventSource) abstraction: a
    /// recorder can be polled *while its program is still running* and the
    /// drained increments fed straight into a detection session.
    pub fn take_events(&mut self) -> Vec<TraceEvent> {
        self.trace.take_events()
    }
}

impl futurerd_dag::source::EventSource for TraceRecorder {
    fn take_events(&mut self) -> Vec<TraceEvent> {
        TraceRecorder::take_events(self)
    }
}

impl Observer for TraceRecorder {
    fn on_program_start(&mut self, root: FunctionId, first_strand: StrandId) {
        self.trace.push(TraceEvent::ProgramStart {
            root,
            first: first_strand,
        });
    }
    fn on_strand_start(&mut self, strand: StrandId, function: FunctionId) {
        self.trace
            .push(TraceEvent::StrandStart { strand, function });
    }
    fn on_spawn(&mut self, ev: &SpawnEvent) {
        self.trace.push(TraceEvent::Spawn(*ev));
    }
    fn on_create_future(&mut self, ev: &CreateFutureEvent) {
        self.trace.push(TraceEvent::CreateFuture(*ev));
    }
    fn on_return(&mut self, function: FunctionId, last_strand: StrandId) {
        self.trace.push(TraceEvent::Return {
            function,
            last: last_strand,
        });
    }
    fn on_sync(&mut self, ev: &SyncEvent) {
        self.trace.push(TraceEvent::Sync(*ev));
    }
    fn on_get_future(&mut self, ev: &GetFutureEvent) {
        self.trace.push(TraceEvent::GetFuture(*ev));
    }
    fn on_read(&mut self, strand: StrandId, addr: MemAddr, size: usize) {
        self.trace.push(TraceEvent::Read {
            strand,
            addr,
            size: size as u32,
        });
    }
    fn on_write(&mut self, strand: StrandId, addr: MemAddr, size: usize) {
        self.trace.push(TraceEvent::Write {
            strand,
            addr,
            size: size as u32,
        });
    }
    fn on_program_end(&mut self, last_strand: StrandId) {
        self.trace
            .push(TraceEvent::ProgramEnd { last: last_strand });
    }
}

/// Runs `body` on the sequential depth-first eager executor while recording
/// its event stream; returns the body's value, the trace, and the execution
/// summary.
pub fn record_program<T>(
    body: impl FnOnce(&mut Cx<TraceRecorder>) -> T,
) -> (T, Trace, ExecutionSummary) {
    let (value, recorder, summary) = run_program(TraceRecorder::new(), body);
    (value, recorder.into_trace(), summary)
}

/// Records the trace of a generated program on the sequential executor.
pub fn record_spec(spec: &ProgramSpec) -> (Trace, ExecutionSummary) {
    let (recorder, summary) = run_spec(spec, TraceRecorder::new());
    (recorder.into_trace(), summary)
}

/// The result of capturing a program's trace from the work-stealing pool.
#[derive(Debug)]
pub struct ParallelCapture {
    /// The merged trace, in canonical serial-DF order.
    pub trace: Trace,
    /// Number of worker threads whose buffers received at least one record.
    pub workers: usize,
    /// Total structural records captured before the merge.
    pub records: usize,
}

// ---------------------------------------------------------------------------
// Per-worker buffered capture
// ---------------------------------------------------------------------------

/// One structural record: what a task did at one step, minus the ids (those
/// are assigned by the deterministic merge).
#[derive(Debug, Clone)]
enum Rec {
    /// Instrumented reads then writes of abstract locations.
    Compute { reads: Vec<u32>, writes: Vec<u32> },
    /// A child task was spawned; its records live at `path + [seq]`.
    Spawn,
    /// A future task was created; its records live at `path + [seq]`.
    CreateFuture(u32),
    /// Join all spawned children so far.
    Sync,
    /// Consume (touch) a future.
    Get(u32),
}

#[derive(Debug)]
struct Entry {
    /// Action indices of the forks leading to this record's task.
    path: Vec<u32>,
    /// Index of this record within its task.
    seq: u32,
    rec: Rec,
}

static NEXT_SESSION_ID: AtomicU64 = AtomicU64::new(1);

/// A worker's shared append buffer.
type SharedBuffer = Arc<Mutex<Vec<Entry>>>;

thread_local! {
    /// The calling thread's buffer for the capture session it last touched.
    /// Keyed by session id so a stale buffer from a finished session is
    /// never appended to.
    static WORKER_BUFFER: RefCell<Option<(u64, SharedBuffer)>> = const { RefCell::new(None) };
}

/// A capture session: the registry of per-worker buffers.
struct Session {
    id: u64,
    buffers: Mutex<Vec<SharedBuffer>>,
}

impl Session {
    fn new() -> Self {
        Self {
            id: NEXT_SESSION_ID.fetch_add(1, Ordering::Relaxed),
            buffers: Mutex::new(Vec::new()),
        }
    }

    /// Appends a record to the calling worker's buffer, registering a fresh
    /// buffer for this session on the worker's first record.
    fn record(&self, entry: Entry) {
        WORKER_BUFFER.with(|slot| {
            let mut slot = slot.borrow_mut();
            let stale = !matches!(&*slot, Some((id, _)) if *id == self.id);
            if stale {
                let buffer = Arc::new(Mutex::new(Vec::new()));
                self.buffers.lock().push(Arc::clone(&buffer));
                *slot = Some((self.id, buffer));
            }
            let (_, buffer) = slot.as_ref().expect("just installed");
            buffer.lock().push(entry);
        });
    }

    /// Drains every worker's buffer into one vector.
    fn collect(self) -> (Vec<Entry>, usize) {
        let buffers = self.buffers.into_inner();
        let workers = buffers.len();
        let mut entries = Vec::new();
        for buffer in &buffers {
            entries.append(&mut buffer.lock());
        }
        (entries, workers)
    }
}

/// Executes `spec` on the work-stealing pool, capturing structural records
/// into per-worker buffers, and merges them back into the canonical
/// serial-DF trace.
///
/// The returned trace is byte-identical to what [`record_spec`] produces on
/// the sequential executor for the same spec — that equivalence is the
/// correctness statement of the merge, and is asserted by this module's
/// tests across seeded random programs.
pub fn capture_spec_parallel(pool: &ThreadPool, spec: &ProgramSpec) -> ParallelCapture {
    let session = Session::new();
    let memory: Vec<AtomicU32> = (0..spec.num_locations.max(1))
        .map(|_| AtomicU32::new(0))
        .collect();
    pool.install(|| run_actions(pool, &session, &memory, &spec.root.actions, Vec::new(), 0));
    let (entries, workers) = session.collect();
    let records = entries.len();
    let trace = assemble(entries);
    ParallelCapture {
        trace,
        workers,
        records,
    }
}

/// Interprets a suffix of a task's action list on the pool. At each fork the
/// child and the remainder of this task run as a `join` pair, so idle
/// workers steal whichever side they reach first — the capture must work
/// under every interleaving.
fn run_actions(
    pool: &ThreadPool,
    session: &Session,
    memory: &[AtomicU32],
    actions: &[Action],
    path: Vec<u32>,
    start_seq: u32,
) {
    for ((idx, action), seq) in actions.iter().enumerate().zip(start_seq..) {
        match action {
            Action::Compute { reads, writes } => {
                let mut acc = 0u32;
                for loc in reads {
                    acc = acc.wrapping_add(memory[loc.0 as usize].load(Ordering::Relaxed));
                }
                for loc in writes {
                    memory[loc.0 as usize].store(acc.wrapping_add(loc.0), Ordering::Relaxed);
                }
                session.record(Entry {
                    path: path.clone(),
                    seq,
                    rec: Rec::Compute {
                        reads: reads.iter().map(|l| l.0).collect(),
                        writes: writes.iter().map(|l| l.0).collect(),
                    },
                });
            }
            Action::Sync => session.record(Entry {
                path: path.clone(),
                seq,
                rec: Rec::Sync,
            }),
            Action::GetFuture(id) => session.record(Entry {
                path: path.clone(),
                seq,
                rec: Rec::Get(id.0),
            }),
            Action::Spawn(child) | Action::CreateFuture(_, child) => {
                let rec = match action {
                    Action::Spawn(_) => Rec::Spawn,
                    Action::CreateFuture(id, _) => Rec::CreateFuture(id.0),
                    _ => unreachable!(),
                };
                session.record(Entry {
                    path: path.clone(),
                    seq,
                    rec,
                });
                let mut child_path = path.clone();
                child_path.push(seq);
                let rest = &actions[idx + 1..];
                let cont_seq = seq + 1;
                let cont_path = path;
                pool.join(
                    || run_actions(pool, session, memory, &child.actions, child_path, 0),
                    || run_actions(pool, session, memory, rest, cont_path, cont_seq),
                );
                return;
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Deterministic merge back into serial-DF order
// ---------------------------------------------------------------------------

struct FutureInfo {
    function: FunctionId,
    last: StrandId,
    touches: u32,
}

struct Merger<'a> {
    tasks: &'a HashMap<Vec<u32>, Vec<(u32, Rec)>>,
    trace: Trace,
    next_strand: u32,
    next_function: u32,
    futures: HashMap<u32, FutureInfo>,
}

impl Merger<'_> {
    fn new_strand(&mut self) -> StrandId {
        let id = StrandId(self.next_strand);
        self.next_strand += 1;
        id
    }

    fn new_function(&mut self) -> FunctionId {
        let id = FunctionId(self.next_function);
        self.next_function += 1;
        id
    }

    /// Emits one task's events in canonical order, replaying the sequential
    /// executor's id-allocation and implicit-sync discipline; returns the
    /// task's last strand.
    fn emit_task(
        &mut self,
        path: &mut Vec<u32>,
        function: FunctionId,
        first: StrandId,
    ) -> StrandId {
        self.trace.push(TraceEvent::StrandStart {
            strand: first,
            function,
        });
        let mut current = first;
        let mut pending: Vec<(FunctionId, ForkInfo, StrandId)> = Vec::new();
        // Copy the map reference out of `self` so iterating the steps does
        // not hold a borrow of `self` across the mutations below.
        let tasks = self.tasks;
        let steps: &[(u32, Rec)] = tasks.get(path.as_slice()).map(Vec::as_slice).unwrap_or(&[]);
        for &(seq, ref rec) in steps {
            match *rec {
                Rec::Compute {
                    ref reads,
                    ref writes,
                } => {
                    for &loc in reads {
                        self.trace.push(TraceEvent::Read {
                            strand: current,
                            addr: MemAddr(BASE_ADDR + u64::from(loc) * MemAddr::GRANULARITY),
                            size: MemAddr::GRANULARITY as u32,
                        });
                    }
                    for &loc in writes {
                        self.trace.push(TraceEvent::Write {
                            strand: current,
                            addr: MemAddr(BASE_ADDR + u64::from(loc) * MemAddr::GRANULARITY),
                            size: MemAddr::GRANULARITY as u32,
                        });
                    }
                }
                Rec::Spawn => {
                    let child = self.new_function();
                    let child_first = self.new_strand();
                    let cont = self.new_strand();
                    self.trace.push(TraceEvent::Spawn(SpawnEvent {
                        parent: function,
                        child,
                        fork_strand: current,
                        cont_strand: cont,
                        child_first_strand: child_first,
                    }));
                    let fork = ForkInfo {
                        pre_fork_strand: current,
                        child_first_strand: child_first,
                        cont_strand: cont,
                    };
                    path.push(seq);
                    let child_last = self.emit_task(path, child, child_first);
                    path.pop();
                    pending.push((child, fork, child_last));
                    current = cont;
                    self.trace.push(TraceEvent::StrandStart {
                        strand: cont,
                        function,
                    });
                }
                Rec::CreateFuture(fut) => {
                    let child = self.new_function();
                    let child_first = self.new_strand();
                    let cont = self.new_strand();
                    self.trace.push(TraceEvent::CreateFuture(CreateFutureEvent {
                        parent: function,
                        child,
                        creator_strand: current,
                        cont_strand: cont,
                        child_first_strand: child_first,
                    }));
                    path.push(seq);
                    let child_last = self.emit_task(path, child, child_first);
                    path.pop();
                    self.futures.insert(
                        fut,
                        FutureInfo {
                            function: child,
                            last: child_last,
                            touches: 0,
                        },
                    );
                    current = cont;
                    self.trace.push(TraceEvent::StrandStart {
                        strand: cont,
                        function,
                    });
                }
                Rec::Sync => {
                    current = self.drain_pending(function, current, &mut pending);
                }
                Rec::Get(fut) => {
                    let getter = self.new_strand();
                    let info = self
                        .futures
                        .get_mut(&fut)
                        .expect("generator guarantees creation precedes every get in DF order");
                    self.trace.push(TraceEvent::GetFuture(GetFutureEvent {
                        parent: function,
                        future: info.function,
                        pre_get_strand: current,
                        getter_strand: getter,
                        future_last_strand: info.last,
                        prior_touches: info.touches,
                    }));
                    info.touches += 1;
                    current = getter;
                    self.trace.push(TraceEvent::StrandStart {
                        strand: getter,
                        function,
                    });
                }
            }
        }
        // Implicit sync: every function joins its spawned children before
        // returning (futures escape).
        current = self.drain_pending(function, current, &mut pending);
        self.trace.push(TraceEvent::Return {
            function,
            last: current,
        });
        current
    }

    fn drain_pending(
        &mut self,
        function: FunctionId,
        mut current: StrandId,
        pending: &mut Vec<(FunctionId, ForkInfo, StrandId)>,
    ) -> StrandId {
        while let Some((child, fork, child_last)) = pending.pop() {
            let join = self.new_strand();
            self.trace.push(TraceEvent::Sync(SyncEvent {
                parent: function,
                child,
                pre_join_strand: current,
                join_strand: join,
                child_last_strand: child_last,
                fork,
            }));
            current = join;
            self.trace.push(TraceEvent::StrandStart {
                strand: join,
                function,
            });
        }
        current
    }
}

/// Rebuilds the canonical serial-DF trace from the captured records.
fn assemble(entries: Vec<Entry>) -> Trace {
    let mut tasks: HashMap<Vec<u32>, Vec<(u32, Rec)>> = HashMap::new();
    for entry in entries {
        tasks
            .entry(entry.path)
            .or_default()
            .push((entry.seq, entry.rec));
    }
    for steps in tasks.values_mut() {
        steps.sort_by_key(|&(seq, _)| seq);
    }
    let mut merger = Merger {
        tasks: &tasks,
        trace: Trace::new(),
        next_strand: 0,
        next_function: 0,
        futures: HashMap::new(),
    };
    let root = merger.new_function();
    let first = merger.new_strand();
    merger.trace.push(TraceEvent::ProgramStart { root, first });
    let mut path = Vec::new();
    let last = merger.emit_task(&mut path, root, first);
    merger.trace.push(TraceEvent::ProgramEnd { last });
    merger.trace
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::memory::ShadowCell;
    use futurerd_dag::genprog::{generate_program, GenConfig};

    #[test]
    fn recorded_trace_validates_and_matches_summary() {
        let (_, trace, summary) = record_program(|cx| {
            let mut cell = ShadowCell::new(cx, 0u32);
            let fut = cx.create_future(|cx| cell.get(cx));
            cx.spawn(|cx| cell.set(cx, 1));
            cx.sync();
            cx.get_future(fut)
        });
        let counts = trace.validate().expect("executor trace is canonical");
        assert_eq!(counts.functions, summary.functions);
        assert_eq!(counts.strands, summary.strands);
        assert_eq!(counts.spawns, summary.spawns);
        assert_eq!(counts.creates, summary.creates);
        assert_eq!(counts.syncs, summary.syncs);
        assert_eq!(counts.gets, summary.gets);
        assert_eq!(counts.reads, summary.reads);
        assert_eq!(counts.writes, summary.writes);
    }

    #[test]
    fn recorded_spec_traces_validate() {
        for cfg in [GenConfig::structured(), GenConfig::general()] {
            for seed in 0..25 {
                let spec = generate_program(&cfg, seed);
                let (trace, summary) = record_spec(&spec);
                let counts = trace
                    .validate()
                    .unwrap_or_else(|e| panic!("seed {seed}: {e}"));
                assert_eq!(counts.strands, summary.strands, "seed {seed}");
            }
        }
    }

    #[test]
    fn parallel_capture_matches_sequential_trace() {
        let pool = ThreadPool::new(4);
        for (cfg, tag) in [(GenConfig::structured(), "s"), (GenConfig::general(), "g")] {
            for seed in 0..40 {
                let spec = generate_program(&cfg, seed);
                let (sequential, _) = record_spec(&spec);
                let capture = capture_spec_parallel(&pool, &spec);
                assert_eq!(
                    capture.trace, sequential,
                    "{tag}{seed}: pool capture diverged from the sequential trace"
                );
                assert!(capture.workers >= 1, "{tag}{seed}");
                capture
                    .trace
                    .validate()
                    .unwrap_or_else(|e| panic!("{tag}{seed}: {e}"));
            }
        }
    }

    #[test]
    fn parallel_capture_serializes_identically() {
        let pool = ThreadPool::new(3);
        let spec = generate_program(&GenConfig::general(), 7);
        let (sequential, _) = record_spec(&spec);
        let capture = capture_spec_parallel(&pool, &spec);
        assert_eq!(capture.trace.to_bytes(), sequential.to_bytes());
    }

    #[test]
    fn parallel_capture_works_single_threaded() {
        let pool = ThreadPool::new(1);
        let spec = generate_program(&GenConfig::structured(), 11);
        let (sequential, _) = record_spec(&spec);
        let capture = capture_spec_parallel(&pool, &spec);
        assert_eq!(capture.trace, sequential);
    }

    #[test]
    fn large_capture_uses_multiple_workers() {
        // A deep spawn-heavy config so several workers get to steal.
        let cfg = GenConfig {
            max_depth: 7,
            max_actions: 6,
            w_spawn: 6,
            ..GenConfig::structured()
        };
        let pool = ThreadPool::new(4);
        let mut max_workers = 0;
        for seed in 0..10 {
            let spec = generate_program(&cfg, seed);
            let capture = capture_spec_parallel(&pool, &spec);
            max_workers = max_workers.max(capture.workers);
            let (sequential, _) = record_spec(&spec);
            assert_eq!(capture.trace, sequential, "seed {seed}");
        }
        // Not guaranteed by the scheduler, but with 10 spawn-heavy programs
        // on 4 workers a lone worker would indicate the capture never left
        // the installing thread.
        assert!(
            max_workers >= 2,
            "capture never ran on more than one worker"
        );
    }
}
