//! Interpreter for randomly generated program specifications.
//!
//! [`futurerd_dag::genprog`] generates declarative [`ProgramSpec`] trees;
//! this module executes them on the sequential eager executor so that the
//! same random program can be fed to a race detector, to the dag recorder,
//! and to the reachability oracle — the backbone of the differential
//! property tests in `futurerd-core`.

use crate::exec::{run_program, Cx, ExecutionSummary, FutureHandle};
use crate::memory::ShadowArray;
use futurerd_dag::genprog::{Action, FunctionSpec, FutId, ProgramSpec};
use futurerd_dag::Observer;
use std::collections::HashMap;

/// Executes `spec` under `observer` and returns the observer plus the
/// execution summary.
///
/// Every [`Action::Compute`] reads/writes one instrumented `u32` cell per
/// referenced location; every generated future produces a `u32` value (the
/// number of actions it executed) so that `get_fut` has a value to return.
pub fn run_spec<O: Observer>(spec: &ProgramSpec, observer: O) -> (O, ExecutionSummary) {
    let (_, obs, summary) = run_program(observer, |cx| {
        let mut mem = ShadowArray::new(cx, spec.num_locations.max(1) as usize, 0u32);
        let mut futures: HashMap<FutId, FutureHandle<u32>> = HashMap::new();
        interp(cx, &spec.root, &mut mem, &mut futures);
    });
    (obs, summary)
}

fn interp<O: Observer>(
    cx: &mut Cx<O>,
    body: &FunctionSpec,
    mem: &mut ShadowArray<u32>,
    futures: &mut HashMap<FutId, FutureHandle<u32>>,
) -> u32 {
    let mut steps = 0u32;
    for action in &body.actions {
        steps += 1;
        match action {
            Action::Compute { reads, writes } => {
                let mut acc = 0u32;
                for loc in reads {
                    acc = acc.wrapping_add(mem.get(cx, loc.0 as usize));
                }
                for loc in writes {
                    mem.set(cx, loc.0 as usize, acc.wrapping_add(loc.0));
                }
            }
            Action::Spawn(child) => {
                cx.spawn(|cx| {
                    interp(cx, child, &mut *mem, &mut *futures);
                });
            }
            Action::Sync => cx.sync(),
            Action::CreateFuture(id, child) => {
                let handle = cx.create_future(|cx| interp(cx, child, &mut *mem, &mut *futures));
                futures.insert(*id, handle);
            }
            Action::GetFuture(id) => {
                let handle = futures
                    .get_mut(id)
                    .expect("generator guarantees the future was created before any get");
                steps = steps.wrapping_add(cx.touch_future(handle));
            }
        }
    }
    steps
}

#[cfg(test)]
mod tests {
    use super::*;
    use futurerd_dag::genprog::{generate_program, GenConfig};
    use futurerd_dag::{DagRecorder, NullObserver, ReachabilityOracle};

    #[test]
    fn structured_specs_execute_without_panicking() {
        let cfg = GenConfig::structured();
        for seed in 0..100 {
            let spec = generate_program(&cfg, seed);
            let (_, summary) = run_spec(&spec, NullObserver);
            assert!(summary.strands >= 1);
        }
    }

    #[test]
    fn general_specs_execute_without_panicking() {
        let cfg = GenConfig::general();
        for seed in 0..100 {
            let spec = generate_program(&cfg, seed);
            let (_, summary) = run_spec(&spec, NullObserver);
            assert!(summary.strands >= 1);
        }
    }

    #[test]
    fn gets_in_spec_match_executed_gets() {
        let cfg = GenConfig::structured();
        for seed in 0..50 {
            let spec = generate_program(&cfg, seed);
            let (_, summary) = run_spec(&spec, NullObserver);
            assert_eq!(summary.gets as usize, spec.num_gets(), "seed {seed}");
        }
    }

    #[test]
    fn recorded_dags_are_consistent_and_acyclic() {
        for (cfg, tag) in [(GenConfig::structured(), "s"), (GenConfig::general(), "g")] {
            for seed in 0..60 {
                let spec = generate_program(&cfg, seed);
                let (rec, summary) = run_spec(&spec, DagRecorder::new());
                let dag = rec.dag();
                assert_eq!(dag.num_strands() as u64, summary.strands, "{tag}{seed}");
                assert!(dag.check_consistency().is_empty(), "{tag}{seed}");
                // topological_order panics on cycles.
                let _ = dag.topological_order();
                // An oracle can always be built.
                let oracle = ReachabilityOracle::from_dag(dag);
                assert_eq!(oracle.len(), dag.num_strands());
            }
        }
    }

    #[test]
    fn structured_specs_have_no_multi_touch_get_events() {
        use futurerd_dag::events::GetFutureEvent;
        #[derive(Default)]
        struct TouchChecker {
            max_prior: u32,
        }
        impl Observer for TouchChecker {
            fn on_get_future(&mut self, ev: &GetFutureEvent) {
                self.max_prior = self.max_prior.max(ev.prior_touches);
            }
        }
        let cfg = GenConfig::structured();
        for seed in 0..100 {
            let spec = generate_program(&cfg, seed);
            let (checker, _) = run_spec(&spec, TouchChecker::default());
            assert_eq!(checker.max_prior, 0, "seed {seed}");
        }
    }
}
