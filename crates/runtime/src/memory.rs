//! Instrumented shared-memory wrappers.
//!
//! The paper's FutureRD instruments every compiled load and store via the
//! compiler. A library-level reproduction instead routes detector-visible
//! memory through explicit wrappers: a [`ShadowArray`], [`ShadowCell`] or
//! [`ShadowMatrix`] owns its data and an abstract address range allocated
//! from the execution context, and every instrumented access reports a read
//! or write event for the covered granules before touching the data.
//!
//! Each element is padded to the access-history granularity
//! ([`MemAddr::GRANULARITY`] = 4 bytes) so that two distinct elements never
//! share a granule; this mirrors the paper's per-four-byte tracking (all its
//! benchmarks perform four-byte-or-larger accesses).
//!
//! Uninstrumented (`raw`) accessors are provided for program setup,
//! verification and I/O — the phases the paper's benchmarks do not
//! instrument either.

use crate::exec::Cx;
use futurerd_dag::{MemAddr, Observer};

fn elem_stride<T>() -> u64 {
    let sz = std::mem::size_of::<T>() as u64;
    sz.max(MemAddr::GRANULARITY).div_ceil(MemAddr::GRANULARITY) * MemAddr::GRANULARITY
}

/// A one-dimensional instrumented array.
///
/// # Example
///
/// ```
/// use futurerd_dag::NullObserver;
/// use futurerd_runtime::{run_program, ShadowArray};
///
/// let (sum, _, summary) = run_program(NullObserver, |cx| {
///     let mut a = ShadowArray::new(cx, 4, 0u32);
///     for i in 0..4 {
///         a.set(cx, i, i as u32 + 1);
///     }
///     (0..4).map(|i| a.get(cx, i)).sum::<u32>()
/// });
/// assert_eq!(sum, 10);
/// assert_eq!(summary.writes, 4);
/// assert_eq!(summary.reads, 4);
/// ```
#[derive(Debug)]
pub struct ShadowArray<T> {
    data: Vec<T>,
    base: MemAddr,
    stride: u64,
}

impl<T: Copy> ShadowArray<T> {
    /// Allocates an instrumented array of `len` copies of `init`.
    pub fn new<O: Observer>(cx: &mut Cx<O>, len: usize, init: T) -> Self {
        Self::from_vec(cx, vec![init; len])
    }
}

impl<T> ShadowArray<T> {
    /// Wraps an existing vector, giving it an instrumented address range.
    pub fn from_vec<O: Observer>(cx: &mut Cx<O>, data: Vec<T>) -> Self {
        let stride = elem_stride::<T>();
        let base = cx.alloc_region(stride * data.len().max(1) as u64);
        Self { data, base, stride }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True if the array has no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// The abstract address of element `i`.
    pub fn addr_of(&self, i: usize) -> MemAddr {
        assert!(i < self.data.len(), "index {i} out of bounds");
        self.base.offset(self.stride * i as u64)
    }

    /// The size in bytes reported for each element access.
    fn access_size(&self) -> usize {
        std::mem::size_of::<T>().max(MemAddr::GRANULARITY as usize)
    }

    /// Instrumented read of element `i`.
    pub fn get<O: Observer>(&self, cx: &mut Cx<O>, i: usize) -> T
    where
        T: Copy,
    {
        cx.record_read(self.addr_of(i), self.access_size());
        self.data[i]
    }

    /// Instrumented write of element `i`.
    pub fn set<O: Observer>(&mut self, cx: &mut Cx<O>, i: usize, value: T) {
        cx.record_write(self.addr_of(i), self.access_size());
        self.data[i] = value;
    }

    /// Instrumented read-modify-write of element `i` (reported as a read
    /// followed by a write, as a compiler would emit for `a[i] += x`).
    pub fn update<O: Observer>(&mut self, cx: &mut Cx<O>, i: usize, f: impl FnOnce(&T) -> T) {
        cx.record_read(self.addr_of(i), self.access_size());
        let new = f(&self.data[i]);
        cx.record_write(self.addr_of(i), self.access_size());
        self.data[i] = new;
    }

    /// Uninstrumented view of the data (setup / verification only).
    pub fn raw(&self) -> &[T] {
        &self.data
    }

    /// Uninstrumented mutable view of the data (setup / verification only).
    pub fn raw_mut(&mut self) -> &mut [T] {
        &mut self.data
    }

    /// Consumes the wrapper and returns the data.
    pub fn into_vec(self) -> Vec<T> {
        self.data
    }
}

/// A single instrumented memory cell.
#[derive(Debug)]
pub struct ShadowCell<T> {
    value: T,
    addr: MemAddr,
}

impl<T> ShadowCell<T> {
    /// Allocates an instrumented cell holding `value`.
    pub fn new<O: Observer>(cx: &mut Cx<O>, value: T) -> Self {
        let addr = cx.alloc_region(elem_stride::<T>());
        Self { value, addr }
    }

    /// The cell's abstract address.
    pub fn addr(&self) -> MemAddr {
        self.addr
    }

    fn access_size(&self) -> usize {
        std::mem::size_of::<T>().max(MemAddr::GRANULARITY as usize)
    }

    /// Instrumented read.
    pub fn get<O: Observer>(&self, cx: &mut Cx<O>) -> T
    where
        T: Copy,
    {
        cx.record_read(self.addr, self.access_size());
        self.value
    }

    /// Instrumented write.
    pub fn set<O: Observer>(&mut self, cx: &mut Cx<O>, value: T) {
        cx.record_write(self.addr, self.access_size());
        self.value = value;
    }

    /// Uninstrumented read (setup / verification only).
    pub fn raw(&self) -> &T {
        &self.value
    }
}

/// A two-dimensional instrumented matrix stored in row-major order.
#[derive(Debug)]
pub struct ShadowMatrix<T> {
    data: ShadowArray<T>,
    rows: usize,
    cols: usize,
}

impl<T: Copy> ShadowMatrix<T> {
    /// Allocates a `rows × cols` matrix filled with `init`.
    pub fn new<O: Observer>(cx: &mut Cx<O>, rows: usize, cols: usize, init: T) -> Self {
        Self {
            data: ShadowArray::new(cx, rows * cols, init),
            rows,
            cols,
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    #[inline]
    fn index(&self, r: usize, c: usize) -> usize {
        assert!(r < self.rows && c < self.cols, "({r},{c}) out of bounds");
        r * self.cols + c
    }

    /// Instrumented read of element `(r, c)`.
    pub fn get<O: Observer>(&self, cx: &mut Cx<O>, r: usize, c: usize) -> T {
        self.data.get(cx, self.index(r, c))
    }

    /// Instrumented write of element `(r, c)`.
    pub fn set<O: Observer>(&mut self, cx: &mut Cx<O>, r: usize, c: usize, value: T) {
        let i = self.index(r, c);
        self.data.set(cx, i, value)
    }

    /// The abstract address of element `(r, c)`.
    pub fn addr_of(&self, r: usize, c: usize) -> MemAddr {
        self.data.addr_of(self.index(r, c))
    }

    /// Uninstrumented view of the underlying row-major data.
    pub fn raw(&self) -> &[T] {
        self.data.raw()
    }

    /// Uninstrumented mutable view of the underlying row-major data.
    pub fn raw_mut(&mut self) -> &mut [T] {
        self.data.raw_mut()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::run_program;
    use futurerd_dag::NullObserver;

    #[test]
    fn element_addresses_do_not_share_granules() {
        run_program(NullObserver, |cx| {
            let bytes = ShadowArray::new(cx, 8, 0u8);
            let mut granules = std::collections::HashSet::new();
            for i in 0..8 {
                assert!(granules.insert(bytes.addr_of(i).granule()));
            }
        });
    }

    #[test]
    fn wide_elements_cover_multiple_granules() {
        run_program(NullObserver, |cx| {
            let wide = ShadowArray::new(cx, 2, [0u64; 2]);
            let g0: Vec<u64> = wide.addr_of(0).granules(16).collect();
            let g1: Vec<u64> = wide.addr_of(1).granules(16).collect();
            assert_eq!(g0.len(), 4);
            assert!(g0.iter().all(|g| !g1.contains(g)));
        });
    }

    #[test]
    fn arrays_from_different_allocations_are_disjoint() {
        run_program(NullObserver, |cx| {
            let a = ShadowArray::new(cx, 4, 0u32);
            let b = ShadowArray::new(cx, 4, 0u32);
            assert!(a.addr_of(3).raw() < b.addr_of(0).raw());
        });
    }

    #[test]
    fn update_counts_read_and_write() {
        let (_, _, s) = run_program(NullObserver, |cx| {
            let mut a = ShadowArray::new(cx, 1, 5u32);
            a.update(cx, 0, |v| v + 1);
            assert_eq!(a.raw()[0], 6);
        });
        assert_eq!(s.reads, 1);
        assert_eq!(s.writes, 1);
    }

    #[test]
    fn cell_roundtrip() {
        let (v, _, s) = run_program(NullObserver, |cx| {
            let mut c = ShadowCell::new(cx, 1.5f64);
            c.set(cx, 2.5);
            c.get(cx)
        });
        assert_eq!(v, 2.5);
        assert_eq!(s.reads, 1);
        assert_eq!(s.writes, 1);
    }

    #[test]
    fn matrix_addressing_is_row_major_and_disjoint() {
        run_program(NullObserver, |cx| {
            let m = ShadowMatrix::new(cx, 3, 4, 0i32);
            assert_eq!(m.rows(), 3);
            assert_eq!(m.cols(), 4);
            let mut addrs = std::collections::HashSet::new();
            for r in 0..3 {
                for c in 0..4 {
                    assert!(addrs.insert(m.addr_of(r, c)));
                }
            }
            assert!(m.addr_of(0, 3) < m.addr_of(1, 0));
        });
    }

    #[test]
    fn matrix_get_set() {
        let (v, _, _) = run_program(NullObserver, |cx| {
            let mut m = ShadowMatrix::new(cx, 2, 2, 0u32);
            m.set(cx, 1, 1, 9);
            m.get(cx, 1, 1) + m.get(cx, 0, 0)
        });
        assert_eq!(v, 9);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn matrix_bounds_checked() {
        run_program(NullObserver, |cx| {
            let m = ShadowMatrix::new(cx, 2, 2, 0u32);
            m.get(cx, 2, 0);
        });
    }

    #[test]
    fn from_vec_preserves_contents() {
        run_program(NullObserver, |cx| {
            let a = ShadowArray::from_vec(cx, vec![3u64, 1, 4, 1, 5]);
            assert_eq!(a.len(), 5);
            assert_eq!(a.raw(), &[3, 1, 4, 1, 5]);
            assert_eq!(a.into_vec(), vec![3, 1, 4, 1, 5]);
        });
    }
}
