//! The `FRDIDX` sidecar codec: a compact LEB128 binary encoding of a frozen
//! reachability index, its granule access stream, its freeze resume state,
//! and (optionally) the cached per-partition detection outcomes.
//!
//! ## Layout
//!
//! ```text
//! magic      8 bytes   "FRDIDX\0\0"
//! version    u32 LE    INDEX_VERSION
//! checksum   u64 LE    hash64 of the payload bytes
//! payload:
//!   algorithm      u8                  0 = multibags, 1 = multibags+
//!   frozen_pos     varint              events frozen
//!   trace_hash     u64 LE              hash of the frozen event prefix
//!   bags           merge forest + live resume state
//!   nsp            flag + DNSP forest + closure rows (multibags+ only)
//!   accesses       16-byte granule access records
//!   outcomes       flag + cached partition results
//! ```
//!
//! Scalars, counts and the small per-set records are LEB128 varints; the
//! *bulk* arrays — strand/set tables, the timed-closure rows and the granule
//! access stream — are raw little-endian words, because a warm load must be
//! strictly cheaper than refreezing and fixed-width rows decode at memcpy
//! speed where per-element varints do not. The checksum (an FNV-style hash
//! folded over 8-byte words) is verified **before** the payload is decoded —
//! a truncated or bit-flipped sidecar is a typed [`StoreError`], never a
//! panic, a hang, or a silently wrong index (the structural validation of
//! `IncrementalFreezer::from_raw` backstops the vanishingly unlikely
//! checksum collision).

use crate::StoreError;
use futurerd_core::parallel::{
    GranuleAccess, PartitionOutcome, RawBagSet, RawBags, RawFreeze, RawNsp, RawNspSet, RAW_NONE,
};
use futurerd_core::replay::ReplayAlgorithm;
use futurerd_core::stats::DetectorStats;
use futurerd_core::{AccessKind, Race};
use futurerd_dag::{MemAddr, StrandId};

/// Magic bytes identifying an `FRDIDX` sidecar file.
pub const INDEX_MAGIC: [u8; 8] = *b"FRDIDX\0\0";
/// Current sidecar format version. Version 2 added the per-partition
/// access-history counters ([`DetectorStats`]) to cached outcomes; v1
/// sidecars are rejected as [`StoreError::UnsupportedVersion`], which the
/// store treats as a routine invalidation (refreeze cold, rewrite).
pub const INDEX_VERSION: u32 = 2;

/// The sidecar checksum: FNV-style multiply-xor folded over 8-byte
/// little-endian words (plus a length-salted tail), ~8× faster than
/// byte-at-a-time FNV on the multi-megabyte payloads warm loads read.
pub fn hash64(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325 ^ (bytes.len() as u64);
    let mut chunks = bytes.chunks_exact(8);
    for chunk in &mut chunks {
        let word = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
        hash = (hash ^ word).wrapping_mul(0x0000_0100_0000_01b3);
    }
    let mut tail = 0u64;
    for (i, &b) in chunks.remainder().iter().enumerate() {
        tail |= u64::from(b) << (8 * i);
    }
    hash = (hash ^ tail).wrapping_mul(0x0000_0100_0000_01b3);
    hash
}

/// The decoded contents of an `FRDIDX` sidecar.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Sidecar {
    /// Hash of the event prefix this index was frozen from (binds the
    /// sidecar to its trace; a mismatch means the trace was rewritten and
    /// the index is stale).
    pub trace_hash: u64,
    /// The complete freezer state (frozen timelines + resume state +
    /// access stream).
    pub freeze: RawFreeze,
    /// Cached per-partition detection outcomes, if detection ran.
    pub outcomes: Option<Vec<PartitionOutcome>>,
}

// ---------------------------------------------------------------------------
// Primitive writers/readers
// ---------------------------------------------------------------------------

fn put_varint(out: &mut Vec<u8>, mut value: u64) {
    loop {
        let byte = (value & 0x7f) as u8;
        value >>= 7;
        if value == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// A bounds-checked cursor over the (already checksum-verified) payload.
struct Reader<'a> {
    bytes: &'a [u8],
    at: usize,
}

impl<'a> Reader<'a> {
    fn new(bytes: &'a [u8]) -> Self {
        Self { bytes, at: 0 }
    }

    fn is_empty(&self) -> bool {
        self.at >= self.bytes.len()
    }

    fn u8(&mut self) -> Result<u8, StoreError> {
        let b = *self.bytes.get(self.at).ok_or(StoreError::Truncated)?;
        self.at += 1;
        Ok(b)
    }

    fn u64_le(&mut self) -> Result<u64, StoreError> {
        let end = self.at.checked_add(8).ok_or(StoreError::Truncated)?;
        let bytes = self.bytes.get(self.at..end).ok_or(StoreError::Truncated)?;
        self.at = end;
        Ok(u64::from_le_bytes(bytes.try_into().expect("8-byte slice")))
    }

    fn varint(&mut self) -> Result<u64, StoreError> {
        let mut value = 0u64;
        let mut shift = 0u32;
        loop {
            let byte = self.u8()?;
            if shift >= 63 && byte > 1 {
                return Err(StoreError::FieldOverflow);
            }
            value |= u64::from(byte & 0x7f) << shift;
            if byte & 0x80 == 0 {
                return Ok(value);
            }
            shift += 7;
            if shift > 63 {
                return Err(StoreError::FieldOverflow);
            }
        }
    }

    fn u32v(&mut self) -> Result<u32, StoreError> {
        u32::try_from(self.varint()?).map_err(|_| StoreError::FieldOverflow)
    }

    /// A declared element count, sanity-capped by the bytes that remain (no
    /// element costs fewer than `min_bytes` bytes) so corrupt lengths cannot
    /// trigger huge allocations.
    fn count(&mut self, min_bytes: usize) -> Result<usize, StoreError> {
        let n = usize::try_from(self.varint()?).map_err(|_| StoreError::FieldOverflow)?;
        let remaining = self.bytes.len() - self.at;
        if n > remaining / min_bytes.max(1) {
            return Err(StoreError::Truncated);
        }
        Ok(n)
    }

    /// Takes the next `n` raw bytes.
    fn raw(&mut self, n: usize) -> Result<&'a [u8], StoreError> {
        let end = self.at.checked_add(n).ok_or(StoreError::Truncated)?;
        let bytes = self.bytes.get(self.at..end).ok_or(StoreError::Truncated)?;
        self.at = end;
        Ok(bytes)
    }
}

/// `Option<u32>`-like fields: [`RAW_NONE`] encodes as 0, everything else as
/// `value + 1` — absent fields cost one byte instead of five.
fn put_opt(out: &mut Vec<u8>, value: u32) {
    put_varint(
        out,
        if value == RAW_NONE {
            0
        } else {
            u64::from(value) + 1
        },
    );
}

fn get_opt(r: &mut Reader<'_>) -> Result<u32, StoreError> {
    let v = r.varint()?;
    if v == 0 {
        return Ok(RAW_NONE);
    }
    u32::try_from(v - 1).map_err(|_| StoreError::FieldOverflow)
}

/// Bulk `u32` arrays (strand/set tables, closure rows) are raw little-endian
/// words: a varint-per-element decode of a multi-megabyte closure costs more
/// than the freeze it is supposed to replace; fixed-width rows decode at
/// memcpy speed. [`RAW_NONE`] is `u32::MAX` and needs no translation.
fn put_u32_slice(out: &mut Vec<u8>, values: &[u32]) {
    put_varint(out, values.len() as u64);
    for &v in values {
        out.extend_from_slice(&v.to_le_bytes());
    }
}

fn get_u32_vec(r: &mut Reader<'_>) -> Result<Vec<u32>, StoreError> {
    let n = r.count(4)?;
    let bytes = r.raw(n * 4)?;
    Ok(bytes
        .chunks_exact(4)
        .map(|c| u32::from_le_bytes(c.try_into().expect("4-byte chunk")))
        .collect())
}

// ---------------------------------------------------------------------------
// Sections
// ---------------------------------------------------------------------------

fn algorithm_tag(algorithm: ReplayAlgorithm) -> u8 {
    match algorithm {
        ReplayAlgorithm::MultiBags => 0,
        ReplayAlgorithm::MultiBagsPlus => 1,
        // The store only freezes freezable algorithms; this is enforced at
        // Store::detect entry.
        _ => unreachable!("only freezable algorithms are persisted"),
    }
}

fn algorithm_from_tag(tag: u8) -> Result<ReplayAlgorithm, StoreError> {
    match tag {
        0 => Ok(ReplayAlgorithm::MultiBags),
        1 => Ok(ReplayAlgorithm::MultiBagsPlus),
        other => Err(StoreError::Corrupt(format!(
            "unknown algorithm tag {other}"
        ))),
    }
}

fn access_kind_tag(kind: AccessKind) -> u8 {
    match kind {
        AccessKind::Read => 0,
        AccessKind::Write => 1,
    }
}

fn access_kind_from_tag(tag: u8) -> Result<AccessKind, StoreError> {
    match tag {
        0 => Ok(AccessKind::Read),
        1 => Ok(AccessKind::Write),
        other => Err(StoreError::Corrupt(format!("unknown access kind {other}"))),
    }
}

fn put_bags(out: &mut Vec<u8>, bags: &RawBags) {
    put_u32_slice(out, &bags.set_of_strand);
    put_varint(out, bags.sets.len() as u64);
    for set in &bags.sets {
        out.extend_from_slice(&set.relabel.to_le_bytes());
        out.extend_from_slice(&set.merged_pos.to_le_bytes());
        out.extend_from_slice(&set.merged_target.to_le_bytes());
    }
    put_u32_slice(out, &bags.live);
    put_u32_slice(out, &bags.first_strand);
}

fn get_bags(r: &mut Reader<'_>) -> Result<RawBags, StoreError> {
    let set_of_strand = get_u32_vec(r)?;
    let n = r.count(12)?;
    let bytes = r.raw(n * 12)?;
    let sets = bytes
        .chunks_exact(12)
        .map(|c| RawBagSet {
            relabel: u32::from_le_bytes(c[0..4].try_into().expect("4 bytes")),
            merged_pos: u32::from_le_bytes(c[4..8].try_into().expect("4 bytes")),
            merged_target: u32::from_le_bytes(c[8..12].try_into().expect("4 bytes")),
        })
        .collect();
    Ok(RawBags {
        set_of_strand,
        sets,
        live: get_u32_vec(r)?,
        first_strand: get_u32_vec(r)?,
    })
}

fn put_nsp(out: &mut Vec<u8>, nsp: &RawNsp) {
    put_u32_slice(out, &nsp.set_of_strand);
    put_varint(out, nsp.sets.len() as u64);
    for set in &nsp.sets {
        out.push(u8::from(set.birth_attached));
        put_varint(out, set.birth_node.into());
        put_opt(out, set.attached_pos);
        put_varint(out, set.attached_node.into());
        put_varint(out, set.att_succ.len() as u64);
        for &(pos, node) in &set.att_succ {
            put_varint(out, pos.into());
            put_varint(out, node.into());
        }
        put_opt(out, set.merged_pos);
        put_varint(out, set.merged_target.into());
    }
    put_u32_slice(out, &nsp.live);
    put_varint(out, nsp.closure_rows.len() as u64);
    for row in &nsp.closure_rows {
        put_u32_slice(out, row);
    }
}

fn get_nsp(r: &mut Reader<'_>) -> Result<RawNsp, StoreError> {
    let set_of_strand = get_u32_vec(r)?;
    let n = r.count(6)?;
    let mut sets = Vec::with_capacity(n);
    for _ in 0..n {
        let birth_attached = match r.u8()? {
            0 => false,
            1 => true,
            other => {
                return Err(StoreError::Corrupt(format!(
                    "unknown DNSP birth tag {other}"
                )))
            }
        };
        let birth_node = r.u32v()?;
        let attached_pos = get_opt(r)?;
        let attached_node = r.u32v()?;
        let n_succ = r.count(2)?;
        let mut att_succ = Vec::with_capacity(n_succ);
        for _ in 0..n_succ {
            att_succ.push((r.u32v()?, r.u32v()?));
        }
        sets.push(RawNspSet {
            birth_attached,
            birth_node,
            attached_pos,
            attached_node,
            att_succ,
            merged_pos: get_opt(r)?,
            merged_target: r.u32v()?,
        });
    }
    let live = get_u32_vec(r)?;
    let n_rows = r.count(1)?;
    let mut closure_rows = Vec::with_capacity(n_rows);
    for _ in 0..n_rows {
        closure_rows.push(get_u32_vec(r)?);
    }
    Ok(RawNsp {
        set_of_strand,
        sets,
        live,
        closure_rows,
    })
}

/// The access stream is the hottest bulk section (one record per granule
/// access of the whole trace): 16-byte fixed-width records — granule with
/// the write bit folded into its top bit, position, strand — decoded at
/// memcpy speed. Granules are `addr >> 2`, so bit 63 is always free.
fn put_accesses(out: &mut Vec<u8>, accesses: &[GranuleAccess]) {
    put_varint(out, accesses.len() as u64);
    for a in accesses {
        debug_assert_eq!(a.granule >> 63, 0, "granules are addr/GRANULARITY");
        let packed = a.granule | (u64::from(a.is_write) << 63);
        out.extend_from_slice(&packed.to_le_bytes());
        out.extend_from_slice(&a.pos.to_le_bytes());
        out.extend_from_slice(&a.strand.0.to_le_bytes());
    }
}

fn get_accesses(r: &mut Reader<'_>) -> Result<Vec<GranuleAccess>, StoreError> {
    let n = r.count(16)?;
    let bytes = r.raw(n * 16)?;
    Ok(bytes
        .chunks_exact(16)
        .map(|c| {
            let packed = u64::from_le_bytes(c[0..8].try_into().expect("8 bytes"));
            GranuleAccess {
                granule: packed & !(1 << 63),
                pos: u32::from_le_bytes(c[8..12].try_into().expect("4 bytes")),
                strand: StrandId(u32::from_le_bytes(c[12..16].try_into().expect("4 bytes"))),
                is_write: packed >> 63 == 1,
            }
        })
        .collect())
}

fn put_outcomes(out: &mut Vec<u8>, outcomes: &[PartitionOutcome]) {
    put_varint(out, outcomes.len() as u64);
    for outcome in outcomes {
        put_varint(out, outcome.range.start);
        put_varint(out, outcome.range.end);
        put_varint(out, outcome.observations);
        put_varint(out, outcome.witnesses.len() as u64);
        for &(pos, race) in &outcome.witnesses {
            put_varint(out, pos.into());
            put_varint(out, race.addr.0);
            put_varint(out, race.prior_strand.0.into());
            out.push(access_kind_tag(race.prior_kind));
            put_varint(out, race.current_strand.0.into());
            out.push(access_kind_tag(race.current_kind));
        }
        let s = &outcome.stats;
        for field in [
            s.read_checks,
            s.write_checks,
            s.readers_recorded,
            s.readers_cleared,
            s.races_found,
            s.shadow_pages,
        ] {
            put_varint(out, field);
        }
    }
}

fn get_outcomes(r: &mut Reader<'_>) -> Result<Vec<PartitionOutcome>, StoreError> {
    let n = r.count(4)?;
    let mut outcomes = Vec::with_capacity(n);
    for _ in 0..n {
        let start = r.varint()?;
        let end = r.varint()?;
        if start > end {
            return Err(StoreError::Corrupt(format!(
                "inverted partition range {start}..{end}"
            )));
        }
        let observations = r.varint()?;
        let n_wit = r.count(6)?;
        let mut witnesses = Vec::with_capacity(n_wit);
        for _ in 0..n_wit {
            let pos = r.u32v()?;
            witnesses.push((
                pos,
                Race {
                    addr: MemAddr(r.varint()?),
                    prior_strand: StrandId(r.u32v()?),
                    prior_kind: access_kind_from_tag(r.u8()?)?,
                    current_strand: StrandId(r.u32v()?),
                    current_kind: access_kind_from_tag(r.u8()?)?,
                },
            ));
        }
        if (witnesses.len() as u64) > observations {
            return Err(StoreError::Corrupt(
                "more witnesses than observations".to_string(),
            ));
        }
        let stats = DetectorStats {
            read_checks: r.varint()?,
            write_checks: r.varint()?,
            readers_recorded: r.varint()?,
            readers_cleared: r.varint()?,
            races_found: r.varint()?,
            shadow_pages: r.varint()?,
        };
        if stats.races_found < observations {
            return Err(StoreError::Corrupt(
                "fewer races counted than observations".to_string(),
            ));
        }
        outcomes.push(PartitionOutcome {
            range: start..end,
            witnesses,
            observations,
            stats,
        });
    }
    Ok(outcomes)
}

// ---------------------------------------------------------------------------
// Whole-file encode/decode
// ---------------------------------------------------------------------------

/// Serializes a sidecar to bytes (header + checksummed payload).
pub fn encode_sidecar(sidecar: &Sidecar) -> Vec<u8> {
    let mut payload = Vec::new();
    payload.push(algorithm_tag(sidecar.freeze.algorithm));
    put_varint(&mut payload, sidecar.freeze.pos.into());
    payload.extend_from_slice(&sidecar.trace_hash.to_le_bytes());
    put_bags(&mut payload, &sidecar.freeze.bags);
    match &sidecar.freeze.nsp {
        None => payload.push(0),
        Some(nsp) => {
            payload.push(1);
            put_nsp(&mut payload, nsp);
        }
    }
    put_accesses(&mut payload, &sidecar.freeze.accesses);
    match &sidecar.outcomes {
        None => payload.push(0),
        Some(outcomes) => {
            payload.push(1);
            put_outcomes(&mut payload, outcomes);
        }
    }

    let mut bytes = Vec::with_capacity(20 + payload.len());
    bytes.extend_from_slice(&INDEX_MAGIC);
    bytes.extend_from_slice(&INDEX_VERSION.to_le_bytes());
    bytes.extend_from_slice(&hash64(&payload).to_le_bytes());
    bytes.extend_from_slice(&payload);
    bytes
}

/// Deserializes a sidecar, verifying the header checksum **before** decoding
/// the payload. Every failure is a typed [`StoreError`].
pub fn decode_sidecar(bytes: &[u8]) -> Result<Sidecar, StoreError> {
    if bytes.len() < 20 {
        if bytes.len() >= 8 && bytes[..8] != INDEX_MAGIC {
            return Err(StoreError::BadMagic);
        }
        return Err(StoreError::Truncated);
    }
    if bytes[..8] != INDEX_MAGIC {
        return Err(StoreError::BadMagic);
    }
    let version = u32::from_le_bytes(bytes[8..12].try_into().expect("4 bytes"));
    if version != INDEX_VERSION {
        return Err(StoreError::UnsupportedVersion(version));
    }
    let expected = u64::from_le_bytes(bytes[12..20].try_into().expect("8 bytes"));
    let payload = &bytes[20..];
    let found = hash64(payload);
    if found != expected {
        return Err(StoreError::Checksum { expected, found });
    }

    let mut r = Reader::new(payload);
    let algorithm = algorithm_from_tag(r.u8()?)?;
    let pos = r.u32v()?;
    let trace_hash = r.u64_le()?;
    let bags = get_bags(&mut r)?;
    let nsp = match r.u8()? {
        0 => None,
        1 => Some(get_nsp(&mut r)?),
        other => {
            return Err(StoreError::Corrupt(format!(
                "unknown DNSP section tag {other}"
            )))
        }
    };
    let accesses = get_accesses(&mut r)?;
    let outcomes = match r.u8()? {
        0 => None,
        1 => Some(get_outcomes(&mut r)?),
        other => {
            return Err(StoreError::Corrupt(format!(
                "unknown outcomes section tag {other}"
            )))
        }
    };
    if !r.is_empty() {
        return Err(StoreError::TrailingData);
    }
    Ok(Sidecar {
        trace_hash,
        freeze: RawFreeze {
            algorithm,
            pos,
            bags,
            nsp,
            accesses,
        },
        outcomes,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use futurerd_core::parallel::IncrementalFreezer;
    use futurerd_dag::events::SpawnEvent;
    use futurerd_dag::trace::{Trace, TraceEvent};
    use futurerd_dag::FunctionId;

    fn sample_sidecar(algorithm: ReplayAlgorithm) -> Sidecar {
        let trace = sample_trace();
        let mut fz = IncrementalFreezer::new(algorithm).expect("freezable");
        fz.extend(trace.events());
        Sidecar {
            trace_hash: 0xdead_beef_cafe_f00d,
            freeze: fz.to_raw(),
            outcomes: Some(vec![PartitionOutcome {
                range: 0..1024,
                witnesses: vec![(
                    7,
                    Race {
                        addr: MemAddr(0x1000),
                        prior_strand: StrandId(1),
                        prior_kind: AccessKind::Write,
                        current_strand: StrandId(2),
                        current_kind: AccessKind::Read,
                    },
                )],
                observations: 3,
                stats: DetectorStats {
                    read_checks: 5,
                    write_checks: 2,
                    readers_recorded: 4,
                    readers_cleared: 1,
                    races_found: 3,
                    shadow_pages: 1,
                },
            }]),
        }
    }

    fn sample_trace() -> Trace {
        let root = FunctionId(0);
        let child = FunctionId(1);
        let mut t = Trace::new();
        t.push(TraceEvent::ProgramStart {
            root,
            first: StrandId(0),
        });
        t.push(TraceEvent::StrandStart {
            strand: StrandId(0),
            function: root,
        });
        t.push(TraceEvent::Spawn(SpawnEvent {
            parent: root,
            child,
            fork_strand: StrandId(0),
            cont_strand: StrandId(2),
            child_first_strand: StrandId(1),
        }));
        t.push(TraceEvent::StrandStart {
            strand: StrandId(1),
            function: child,
        });
        t.push(TraceEvent::Write {
            strand: StrandId(1),
            addr: MemAddr(0x1000),
            size: 4,
        });
        t.push(TraceEvent::Return {
            function: child,
            last: StrandId(1),
        });
        t.push(TraceEvent::StrandStart {
            strand: StrandId(2),
            function: root,
        });
        t.push(TraceEvent::Read {
            strand: StrandId(2),
            addr: MemAddr(0x1000),
            size: 4,
        });
        t
    }

    #[test]
    fn sidecar_round_trips() {
        for algorithm in [ReplayAlgorithm::MultiBags, ReplayAlgorithm::MultiBagsPlus] {
            let sidecar = sample_sidecar(algorithm);
            let bytes = encode_sidecar(&sidecar);
            assert_eq!(&bytes[..8], &INDEX_MAGIC);
            let back = decode_sidecar(&bytes).expect("decodes");
            assert_eq!(back, sidecar, "{algorithm}");
        }
    }

    #[test]
    fn sidecar_without_outcomes_round_trips() {
        let mut sidecar = sample_sidecar(ReplayAlgorithm::MultiBags);
        sidecar.outcomes = None;
        let bytes = encode_sidecar(&sidecar);
        assert_eq!(decode_sidecar(&bytes).expect("decodes"), sidecar);
    }

    #[test]
    fn decoder_rejects_bad_magic_version_and_flips() {
        let bytes = encode_sidecar(&sample_sidecar(ReplayAlgorithm::MultiBagsPlus));

        let mut bad = bytes.clone();
        bad[0] = b'X';
        assert!(matches!(decode_sidecar(&bad), Err(StoreError::BadMagic)));

        let mut bad = bytes.clone();
        bad[8] = 99;
        assert!(matches!(
            decode_sidecar(&bad),
            Err(StoreError::UnsupportedVersion(99))
        ));

        let mut bad = bytes.clone();
        let last = bad.len() - 1;
        bad[last] ^= 0x10;
        assert!(matches!(
            decode_sidecar(&bad),
            Err(StoreError::Checksum { .. })
        ));

        for cut in 0..20.min(bytes.len()) {
            assert!(decode_sidecar(&bytes[..cut]).is_err(), "header cut {cut}");
        }
    }

    #[test]
    fn hash64_is_length_and_content_sensitive() {
        assert_ne!(hash64(b""), hash64(b"\0"));
        assert_ne!(hash64(b"\0\0"), hash64(b"\0"));
        assert_ne!(hash64(b"abcdefgh"), hash64(b"abcdefgi"));
        assert_eq!(hash64(b"abcdefghij"), hash64(b"abcdefghij"));
    }
}
