//! # futurerd-store — the persistent detection store
//!
//! Recording once and detecting many times (the trace pipeline) still pays
//! the **freeze** — pass 1 of the parallel engine — on every replay, and a
//! single appended event invalidates everything. This crate makes detection
//! state *persistent, versioned and incremental*:
//!
//! * **`FRDIDX` sidecars** ([`codec`]): the frozen [`ReachIndex`] timelines,
//!   the granule access stream, the freeze *resume state* and the cached
//!   per-partition detection outcomes serialize to a checksummed LEB128
//!   sidecar next to each trace. A multi-replay workload pays the freeze
//!   once ("cold"), then every later replay loads it ("warm") — and a warm
//!   report is byte-identical to a cold one at any thread count.
//! * **Incremental re-detection** ([`Store::detect`] after
//!   [`Store::append_events`]): the frozen timelines are append-only, so
//!   extending a stored trace refreezes only what the appended suffix
//!   touches (the freezer resumes from its persisted state) and re-runs only
//!   the detection partitions whose granule ranges the suffix accessed;
//!   untouched partitions reuse their cached outcomes verbatim. The merged
//!   report is byte-identical to full from-scratch detection on the
//!   extended trace.
//! * **Batch replay service** ([`Store::submit`] / [`Store::run_batch`]):
//!   queued `(trace, algorithm, threads)` jobs run in a deterministic order
//!   over process-shared worker pools (`ThreadPool::shared`), producing a
//!   [`BatchManifest`] whose rendering — including a digest of every race
//!   report — is reproducible run-to-run. The `futurerd-trace batch` CLI is
//!   a thin wrapper over this service.
//!
//! ## Invalidation rules
//!
//! A sidecar binds to its trace by a hash of the event prefix it was frozen
//! from. On [`Store::detect`]:
//!
//! * hash matches and the frozen position equals the trace length → **warm**
//!   (reuse everything);
//! * hash matches a strict prefix → **incremental** (refreeze the suffix,
//!   re-run touched partitions);
//! * anything else (rewritten trace, different algorithm, corrupt or
//!   truncated sidecar) → **cold** (refreeze from scratch, rewrite the
//!   sidecar).
//!
//! ```
//! use futurerd_core::replay::ReplayAlgorithm;
//! use futurerd_store::Store;
//!
//! # fn trace() -> futurerd_dag::trace::Trace {
//! #     use futurerd_dag::trace::{Trace, TraceEvent};
//! #     use futurerd_dag::{FunctionId, StrandId};
//! #     let mut t = Trace::new();
//! #     t.push(TraceEvent::ProgramStart { root: FunctionId(0), first: StrandId(0) });
//! #     t.push(TraceEvent::StrandStart { strand: StrandId(0), function: FunctionId(0) });
//! #     t.push(TraceEvent::Return { function: FunctionId(0), last: StrandId(0) });
//! #     t.push(TraceEvent::ProgramEnd { last: StrandId(0) });
//! #     t
//! # }
//! let dir = std::env::temp_dir().join(format!("frd-doc-{}", std::process::id()));
//! let mut store = Store::open(&dir).unwrap();
//! store.put_trace("example", &trace()).unwrap();
//! let cold = store.detect("example", ReplayAlgorithm::MultiBags, 2).unwrap();
//! let warm = store.detect("example", ReplayAlgorithm::MultiBags, 2).unwrap();
//! assert_eq!(warm.report, cold.report);
//! assert!(warm.path.is_warm() && !cold.path.is_warm());
//! # std::fs::remove_dir_all(&dir).ok();
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod codec;

use futurerd_core::parallel::{
    self, merge_outcomes, GranuleAccess, IncrementalFreezer, IncrementalOutcomes, PartitionOutcome,
    ReachIndex, StdExecutor,
};
use futurerd_core::replay::ReplayAlgorithm;
use futurerd_core::RaceReport;
use futurerd_dag::trace::{fnv1a64, Trace, TraceCounts, TraceError, TraceEvent};
use futurerd_runtime::ThreadPool;
use std::io;
use std::path::{Path, PathBuf};

pub use codec::{decode_sidecar, encode_sidecar, Sidecar, INDEX_MAGIC, INDEX_VERSION};

/// Errors produced by the detection store.
#[derive(Debug)]
pub enum StoreError {
    /// An underlying I/O error.
    Io(io::Error),
    /// The trace file is invalid (codec or canonical-ordering failure).
    Trace(TraceError),
    /// A sidecar does not start with [`INDEX_MAGIC`].
    BadMagic,
    /// A sidecar's format version is not supported.
    UnsupportedVersion(u32),
    /// A sidecar's payload does not hash to its header checksum.
    Checksum {
        /// The checksum stored in the header.
        expected: u64,
        /// The checksum computed over the payload.
        found: u64,
    },
    /// A sidecar ended in the middle of a field.
    Truncated,
    /// A sidecar continues past its declared contents.
    TrailingData,
    /// A varint field does not fit its integer width.
    FieldOverflow,
    /// A sidecar decoded but is structurally inconsistent.
    Corrupt(String),
    /// The named trace does not exist in the store.
    UnknownTrace(String),
    /// Trace names must be non-empty and `[A-Za-z0-9_-]` only (they become
    /// file stems).
    InvalidName(String),
    /// The algorithm has no frozen reachability form, so the store cannot
    /// persist an index for it (SP-Bags variants and the graph oracle).
    Unfreezable(ReplayAlgorithm),
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "i/o error: {e}"),
            StoreError::Trace(e) => write!(f, "trace error: {e}"),
            StoreError::BadMagic => write!(f, "not a futurerd index sidecar (bad magic)"),
            StoreError::UnsupportedVersion(v) => {
                write!(f, "unsupported sidecar version {v} (expected {INDEX_VERSION})")
            }
            StoreError::Checksum { expected, found } => write!(
                f,
                "sidecar checksum mismatch: header says {expected:#018x}, payload hashes to {found:#018x}"
            ),
            StoreError::Truncated => write!(f, "sidecar truncated mid-field"),
            StoreError::TrailingData => write!(f, "sidecar continues past its declared contents"),
            StoreError::FieldOverflow => write!(f, "varint field exceeds its integer width"),
            StoreError::Corrupt(message) => write!(f, "corrupt sidecar: {message}"),
            StoreError::UnknownTrace(name) => write!(f, "no trace named '{name}' in the store"),
            StoreError::InvalidName(name) => {
                write!(f, "invalid trace name '{name}' (use [A-Za-z0-9_-])")
            }
            StoreError::Unfreezable(algorithm) => write!(
                f,
                "{algorithm} has no frozen reachability form; the store only serves freezable algorithms"
            ),
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StoreError::Io(e) => Some(e),
            StoreError::Trace(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for StoreError {
    fn from(e: io::Error) -> Self {
        StoreError::Io(e)
    }
}

impl From<TraceError> for StoreError {
    fn from(e: TraceError) -> Self {
        StoreError::Trace(e)
    }
}

/// Hashes an event prefix (a word-folded FNV-style hash over a canonical
/// field rendering, no allocation) — the binding between a sidecar and the
/// trace it was frozen from. Runs on every [`Store::detect`], so it must be
/// a small fraction of the detection it guards.
pub fn hash_events(events: &[TraceEvent]) -> u64 {
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325 ^ (events.len() as u64);
    let mut fold = |word: u64| hash = (hash ^ word).wrapping_mul(PRIME);
    let pair = |a: u32, b: u32| u64::from(a) | (u64::from(b) << 32);
    for event in events {
        match event {
            TraceEvent::ProgramStart { root, first } => {
                fold(0);
                fold(pair(root.0, first.0));
            }
            TraceEvent::StrandStart { strand, function } => {
                fold(1);
                fold(pair(strand.0, function.0));
            }
            TraceEvent::Spawn(ev) => {
                fold(2);
                fold(pair(ev.parent.0, ev.child.0));
                fold(pair(ev.fork_strand.0, ev.cont_strand.0));
                fold(u64::from(ev.child_first_strand.0));
            }
            TraceEvent::CreateFuture(ev) => {
                fold(3);
                fold(pair(ev.parent.0, ev.child.0));
                fold(pair(ev.creator_strand.0, ev.cont_strand.0));
                fold(u64::from(ev.child_first_strand.0));
            }
            TraceEvent::Return { function, last } => {
                fold(4);
                fold(pair(function.0, last.0));
            }
            TraceEvent::Sync(ev) => {
                fold(5);
                fold(pair(ev.parent.0, ev.child.0));
                fold(pair(ev.pre_join_strand.0, ev.join_strand.0));
                fold(pair(ev.child_last_strand.0, ev.fork.pre_fork_strand.0));
                fold(pair(ev.fork.child_first_strand.0, ev.fork.cont_strand.0));
            }
            TraceEvent::GetFuture(ev) => {
                fold(6);
                fold(pair(ev.parent.0, ev.future.0));
                fold(pair(ev.pre_get_strand.0, ev.getter_strand.0));
                fold(pair(ev.future_last_strand.0, ev.prior_touches));
            }
            TraceEvent::Read { strand, addr, size } => {
                fold(7);
                fold(pair(strand.0, *size));
                fold(addr.0);
            }
            TraceEvent::Write { strand, addr, size } => {
                fold(8);
                fold(pair(strand.0, *size));
                fold(addr.0);
            }
            TraceEvent::ProgramEnd { last } => {
                fold(9);
                fold(u64::from(last.0));
            }
        }
    }
    hash
}

/// How [`Store::detect`] served a request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DetectionPath {
    /// No usable sidecar: froze from scratch and ran full detection.
    Cold,
    /// Loaded the frozen index from the sidecar but had to run detection
    /// (no cached outcomes).
    WarmIndex,
    /// Loaded the frozen index *and* cached detection outcomes — no freeze,
    /// no detection, merge only.
    WarmCached,
    /// The trace grew since the sidecar was written: refroze the appended
    /// suffix and re-ran only the touched partitions.
    Incremental {
        /// Events appended since the sidecar's frozen position.
        appended_events: usize,
        /// Partitions re-run because the suffix touched their granules.
        rerun: usize,
        /// Partitions whose cached outcomes were reused verbatim.
        reused: usize,
        /// True if the access histogram drifted past the threshold and the
        /// partition ranges were recomputed from the full stream (see
        /// [`parallel::REBALANCE_DRIFT_FACTOR`]).
        rebalanced: bool,
    },
}

impl DetectionPath {
    /// True if the frozen index was loaded instead of recomputed.
    pub fn is_warm(self) -> bool {
        matches!(self, DetectionPath::WarmIndex | DetectionPath::WarmCached)
    }

    /// Stable dotted-metric suffix for this path kind — the per-request
    /// provenance counter names (`store.path.<kind>`,
    /// `session.report.<kind>`) are built from it, so it never carries the
    /// per-request parameters `Display` shows.
    pub fn kind_key(self) -> &'static str {
        match self {
            DetectionPath::Cold => "cold",
            DetectionPath::WarmIndex => "warm_index",
            DetectionPath::WarmCached => "warm_cached",
            DetectionPath::Incremental { .. } => "incremental",
        }
    }
}

impl std::fmt::Display for DetectionPath {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DetectionPath::Cold => f.write_str("cold"),
            DetectionPath::WarmIndex => f.write_str("warm-index"),
            DetectionPath::WarmCached => f.write_str("warm-cached"),
            DetectionPath::Incremental {
                appended_events,
                rerun,
                reused,
                rebalanced,
            } => write!(
                f,
                "incremental(+{appended_events}ev, {rerun} rerun / {reused} reused{})",
                if *rebalanced { ", rebalanced" } else { "" }
            ),
        }
    }
}

/// The result of one [`Store::detect`] request.
#[derive(Debug, Clone)]
pub struct StoreDetection {
    /// The race report — byte-identical to cold full detection of the same
    /// trace, whatever path produced it.
    pub report: RaceReport,
    /// Per-construct totals of the (possibly still growing) trace.
    pub counts: TraceCounts,
    /// True if the trace has reached its `ProgramEnd`.
    pub complete: bool,
    /// Number of events in the trace.
    pub events: usize,
    /// How the request was served.
    pub path: DetectionPath,
}

/// Work counters accumulated by a [`Store`] — the cold/warm/incremental
/// economics of the detection service.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StoreStats {
    /// Full freezes (cold path).
    pub cold_freezes: u64,
    /// Sidecar index loads that still ran detection.
    pub warm_index_loads: u64,
    /// Fully cached hits (index + outcomes reused).
    pub warm_cached_hits: u64,
    /// Incremental refreezes (suffix only).
    pub incremental_refreezes: u64,
    /// Detection partitions re-run during incremental requests.
    pub partitions_rerun: u64,
    /// Detection partitions reused verbatim during incremental requests.
    pub partitions_reused: u64,
    /// Incremental requests that re-balanced the partition ranges because
    /// the access histogram had drifted.
    pub rebalances: u64,
    /// Sidecars discarded as corrupt, stale or mismatched.
    pub invalidated_sidecars: u64,
}

impl StoreStats {
    /// Registers every counter as a `<prefix>.<field>` gauge in the
    /// `futurerd-obs` metrics registry (no-op while recording is
    /// disabled). Gauges because these are store-lifetime totals: each
    /// export overwrites with the newer reading.
    pub fn export_metrics(&self, prefix: &str) {
        if !futurerd_obs::enabled() {
            return;
        }
        futurerd_obs::gauge_set(&format!("{prefix}.cold_freezes"), self.cold_freezes);
        futurerd_obs::gauge_set(&format!("{prefix}.warm_index_loads"), self.warm_index_loads);
        futurerd_obs::gauge_set(&format!("{prefix}.warm_cached_hits"), self.warm_cached_hits);
        futurerd_obs::gauge_set(
            &format!("{prefix}.incremental_refreezes"),
            self.incremental_refreezes,
        );
        futurerd_obs::gauge_set(&format!("{prefix}.partitions_rerun"), self.partitions_rerun);
        futurerd_obs::gauge_set(
            &format!("{prefix}.partitions_reused"),
            self.partitions_reused,
        );
        futurerd_obs::gauge_set(&format!("{prefix}.rebalances"), self.rebalances);
        futurerd_obs::gauge_set(
            &format!("{prefix}.invalidated_sidecars"),
            self.invalidated_sidecars,
        );
    }
}

/// One queued batch job: replay `trace` under `algorithm` with `threads`
/// detection workers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BatchJob {
    /// Store-relative trace name (no extension).
    pub trace: String,
    /// The detection algorithm (must be freezable).
    pub algorithm: ReplayAlgorithm,
    /// Detection worker count.
    pub threads: usize,
}

/// The summary of one completed batch job.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BatchSummary {
    /// How the store served the job.
    pub path: DetectionPath,
    /// Distinct racy granules.
    pub races: usize,
    /// Total racing pairs observed.
    pub observations: u64,
    /// Events in the trace.
    pub events: usize,
    /// FNV-1a 64 digest of the rendered race report — the determinism
    /// fingerprint compared across runs and machines.
    pub digest: u64,
}

/// One line of the batch manifest: the job plus its summary or failure.
#[derive(Debug, Clone)]
pub struct BatchRecord {
    /// The job as submitted.
    pub job: BatchJob,
    /// The outcome (a failure is recorded, not fatal to the batch).
    pub outcome: Result<BatchSummary, String>,
}

/// The deterministic result manifest of one [`Store::run_batch`] run: jobs
/// sorted by `(trace, algorithm, threads)`, each with its report digest.
/// Rendered with [`std::fmt::Display`] and written to
/// `batch-manifest.txt` inside the store.
#[derive(Debug, Clone, Default)]
pub struct BatchManifest {
    /// One record per job, in manifest order.
    pub records: Vec<BatchRecord>,
}

impl BatchManifest {
    /// True if every job completed.
    pub fn all_ok(&self) -> bool {
        self.records.iter().all(|r| r.outcome.is_ok())
    }

    /// How many completed jobs were served by each [`DetectionPath`] kind,
    /// in fixed `(cold, warm_index, warm_cached, incremental)` order.
    /// Deterministic for a given store history — path provenance depends
    /// only on which sidecars exist, never on timings — so it is safe to
    /// render into the reproducible manifest.
    pub fn path_counts(&self) -> [(&'static str, usize); 4] {
        let mut counts = [
            ("cold", 0),
            ("warm_index", 0),
            ("warm_cached", 0),
            ("incremental", 0),
        ];
        for record in &self.records {
            if let Ok(summary) = &record.outcome {
                let key = summary.path.kind_key();
                if let Some(slot) = counts.iter_mut().find(|(name, _)| *name == key) {
                    slot.1 += 1;
                }
            }
        }
        counts
    }
}

impl std::fmt::Display for BatchManifest {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "# futurerd-store batch manifest ({} jobs)",
            self.records.len()
        )?;
        let [cold, warm_index, warm_cached, incremental] = self.path_counts();
        writeln!(
            f,
            "# paths: cold={} warm-index={} warm-cached={} incremental={}",
            cold.1, warm_index.1, warm_cached.1, incremental.1
        )?;
        for record in &self.records {
            let job = &record.job;
            write!(f, "{} {} P={}: ", job.trace, job.algorithm, job.threads)?;
            match &record.outcome {
                Ok(s) => writeln!(
                    f,
                    "races={} pairs={} events={} digest={:016x} [{}]",
                    s.races, s.observations, s.events, s.digest, s.path
                )?,
                Err(e) => writeln!(f, "FAILED {e}")?,
            }
        }
        Ok(())
    }
}

/// A persistent, versioned detection store rooted at a directory.
///
/// Layout: `<name>.trace` holds a recorded (possibly still growing) event
/// stream; `<name>.<algorithm>.frdidx` holds the frozen index sidecar for
/// one algorithm; `batch-manifest.txt` holds the last batch run's manifest.
#[derive(Debug)]
pub struct Store {
    root: PathBuf,
    queue: Vec<BatchJob>,
    stats: StoreStats,
}

impl Store {
    /// Opens a store rooted at `root`, creating the directory if needed.
    pub fn open(root: impl AsRef<Path>) -> Result<Self, StoreError> {
        let root = root.as_ref().to_path_buf();
        std::fs::create_dir_all(&root)?;
        Ok(Self {
            root,
            queue: Vec::new(),
            stats: StoreStats::default(),
        })
    }

    /// The store's root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// Accumulated work counters.
    pub fn stats(&self) -> StoreStats {
        self.stats
    }

    fn check_name(name: &str) -> Result<(), StoreError> {
        if name.is_empty()
            || !name
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '-')
        {
            return Err(StoreError::InvalidName(name.to_string()));
        }
        Ok(())
    }

    /// Path of the named trace file.
    pub fn trace_path(&self, name: &str) -> PathBuf {
        self.root.join(format!("{name}.trace"))
    }

    /// Path of the named trace's sidecar for `algorithm`.
    pub fn sidecar_path(&self, name: &str, algorithm: ReplayAlgorithm) -> PathBuf {
        self.root.join(format!("{name}.{algorithm}.frdidx"))
    }

    /// Names of every stored trace, sorted.
    pub fn trace_names(&self) -> Result<Vec<String>, StoreError> {
        let mut names = Vec::new();
        for entry in std::fs::read_dir(&self.root)? {
            let path = entry?.path();
            if path.extension().and_then(|e| e.to_str()) == Some("trace") {
                if let Some(stem) = path.file_stem().and_then(|s| s.to_str()) {
                    names.push(stem.to_string());
                }
            }
        }
        names.sort();
        Ok(names)
    }

    /// Stores (or replaces) a trace under `name` after validating it as a
    /// canonical prefix. Returns its counts and completeness.
    pub fn put_trace(
        &mut self,
        name: &str,
        trace: &Trace,
    ) -> Result<(TraceCounts, bool), StoreError> {
        Self::check_name(name)?;
        let prefix = trace.validate_prefix()?;
        trace.save(self.trace_path(name))?;
        Ok(prefix)
    }

    /// Loads the named trace.
    pub fn load_trace(&self, name: &str) -> Result<Trace, StoreError> {
        Self::check_name(name)?;
        let path = self.trace_path(name);
        if !path.exists() {
            return Err(StoreError::UnknownTrace(name.to_string()));
        }
        Ok(Trace::load(path)?)
    }

    /// Appends events to a stored trace, validating the extended stream as a
    /// canonical prefix. The trace file is rewritten; its sidecars are *not*
    /// touched — the next [`Store::detect`] notices the grown trace and
    /// takes the incremental path.
    pub fn append_events(
        &mut self,
        name: &str,
        events: &[TraceEvent],
    ) -> Result<(TraceCounts, bool), StoreError> {
        let mut trace = self.load_trace(name)?;
        trace.extend_events(events);
        let prefix = trace.validate_prefix()?;
        trace.save(self.trace_path(name))?;
        Ok(prefix)
    }

    /// Detects races on the named trace under `algorithm` with `threads`
    /// workers, serving the request from the cheapest valid path (warm →
    /// incremental → cold; see the module docs for the invalidation rules)
    /// and persisting the refreshed sidecar.
    ///
    /// The returned report is byte-identical to cold full detection of the
    /// current trace — the path only changes the cost, never the answer.
    pub fn detect(
        &mut self,
        name: &str,
        algorithm: ReplayAlgorithm,
        threads: usize,
    ) -> Result<StoreDetection, StoreError> {
        if !algorithm.freezable() {
            return Err(StoreError::Unfreezable(algorithm));
        }
        let threads = threads.max(1);
        let trace = self.load_trace(name)?;
        let (counts, complete) = trace.validate_prefix()?;
        let events = trace.len();

        let loaded = self.load_sidecar(name, algorithm, &trace);
        let (freezer, cached_outcomes, frozen_pos) = match loaded {
            Some((freezer, outcomes)) => {
                let pos = freezer.position() as usize;
                (Some(freezer), outcomes, pos)
            }
            None => (None, None, 0),
        };

        let (sidecar, report, path) = match freezer {
            Some(fz) if frozen_pos == events => {
                // Warm: the index covers the whole trace.
                if let Some(outcomes) = cached_outcomes {
                    let _path_span =
                        futurerd_obs::Span::enter(futurerd_obs::names::STORE_DETECT_WARM_CACHED);
                    let report = merge_outcomes(outcomes.iter().cloned());
                    (None, report, DetectionPath::WarmCached)
                } else {
                    let _path_span =
                        futurerd_obs::Span::enter(futurerd_obs::names::STORE_DETECT_WARM_INDEX);
                    let index = fz.snapshot_index();
                    let outcomes = full_outcomes(&index, fz.accesses(), threads);
                    let report = merge_outcomes(outcomes.iter().cloned());
                    (
                        Some(self.make_sidecar(&trace, &fz, outcomes)),
                        report,
                        DetectionPath::WarmIndex,
                    )
                }
            }
            Some(mut fz) => {
                // Incremental: refreeze the appended suffix only.
                let _path_span =
                    futurerd_obs::Span::enter(futurerd_obs::names::STORE_DETECT_INCREMENTAL);
                let appended_events = events - frozen_pos;
                let old_access_count = fz.accesses().len();
                extend_freezer(&mut fz, &trace.events()[frozen_pos..], threads);
                let index = fz.snapshot_index();
                let accesses = fz.accesses();
                let fresh = &accesses[old_access_count..];
                let IncrementalOutcomes {
                    outcomes,
                    rerun,
                    reused,
                    rebalanced,
                } = match cached_outcomes {
                    Some(stored) if !stored.is_empty() => {
                        incremental_on_pool(&index, accesses, fresh, stored, threads)
                    }
                    _ => {
                        let outcomes = full_outcomes(&index, accesses, threads);
                        let rerun = outcomes.len();
                        IncrementalOutcomes {
                            outcomes,
                            rerun,
                            reused: 0,
                            rebalanced: false,
                        }
                    }
                };
                let report = merge_outcomes(outcomes.iter().cloned());
                (
                    Some(self.make_sidecar(&trace, &fz, outcomes)),
                    report,
                    DetectionPath::Incremental {
                        appended_events,
                        rerun,
                        reused,
                        rebalanced,
                    },
                )
            }
            None => {
                // Cold: freeze from scratch.
                let _path_span = futurerd_obs::Span::enter(futurerd_obs::names::STORE_DETECT_COLD);
                let mut fz = IncrementalFreezer::new(algorithm).expect("freezable checked above");
                extend_freezer(&mut fz, trace.events(), threads);
                let index = fz.snapshot_index();
                let outcomes = full_outcomes(&index, fz.accesses(), threads);
                let report = merge_outcomes(outcomes.iter().cloned());
                (
                    Some(self.make_sidecar(&trace, &fz, outcomes)),
                    report,
                    DetectionPath::Cold,
                )
            }
        };

        self.record_path(path);
        if let Some(sidecar) = sidecar {
            let bytes = {
                let _span = futurerd_obs::Span::enter(futurerd_obs::names::STORE_SIDECAR_ENCODE);
                codec::encode_sidecar(&sidecar)
            };
            futurerd_obs::counter_add(
                futurerd_obs::names::STORE_SIDECAR_ENCODED_BYTES,
                bytes.len() as u64,
            );
            std::fs::write(self.sidecar_path(name, algorithm), bytes)?;
        }
        Ok(StoreDetection {
            report,
            counts,
            complete,
            events,
            path,
        })
    }

    /// Queues a batch job (run later by [`Store::run_batch`]).
    pub fn submit(&mut self, job: BatchJob) {
        self.queue.push(job);
    }

    /// Number of queued jobs.
    pub fn pending_jobs(&self) -> usize {
        self.queue.len()
    }

    /// Runs every queued job in deterministic `(trace, algorithm, threads)`
    /// order over the shared worker pools, writes the manifest to
    /// `batch-manifest.txt` inside the store, and returns it. Job failures
    /// are recorded in the manifest, not raised.
    pub fn run_batch(&mut self) -> Result<BatchManifest, StoreError> {
        let mut jobs = std::mem::take(&mut self.queue);
        jobs.sort_by(|a, b| {
            (a.trace.as_str(), a.algorithm.name(), a.threads).cmp(&(
                b.trace.as_str(),
                b.algorithm.name(),
                b.threads,
            ))
        });
        let mut records = Vec::with_capacity(jobs.len());
        for job in jobs {
            let outcome = self
                .detect(&job.trace, job.algorithm, job.threads)
                .map(|d| BatchSummary {
                    path: d.path,
                    races: d.report.race_count(),
                    observations: d.report.total_observations(),
                    events: d.events,
                    digest: fnv1a64(d.report.to_string().as_bytes()),
                })
                .map_err(|e| e.to_string());
            records.push(BatchRecord { job, outcome });
        }
        let manifest = BatchManifest { records };
        std::fs::write(self.root.join("batch-manifest.txt"), manifest.to_string())?;
        Ok(manifest)
    }

    /// Loads, verifies and binds the sidecar for `(name, algorithm)` against
    /// the current trace. Any mismatch (corrupt bytes, wrong algorithm,
    /// rewritten prefix) invalidates it — the caller then goes cold.
    fn load_sidecar(
        &mut self,
        name: &str,
        algorithm: ReplayAlgorithm,
        trace: &Trace,
    ) -> Option<(IncrementalFreezer, Option<Vec<PartitionOutcome>>)> {
        let bytes = match std::fs::read(self.sidecar_path(name, algorithm)) {
            Ok(bytes) => bytes,
            Err(_) => return None,
        };
        futurerd_obs::counter_add(
            futurerd_obs::names::STORE_SIDECAR_DECODED_BYTES,
            bytes.len() as u64,
        );
        let decoded = {
            let _span = futurerd_obs::Span::enter(futurerd_obs::names::STORE_SIDECAR_DECODE);
            codec::decode_sidecar(&bytes)
        };
        let sidecar = match decoded {
            Ok(sidecar) => sidecar,
            Err(_) => {
                self.stats.invalidated_sidecars += 1;
                return None;
            }
        };
        let pos = sidecar.freeze.pos as usize;
        if sidecar.freeze.algorithm != algorithm
            || pos > trace.len()
            || sidecar.trace_hash != hash_events(&trace.events()[..pos])
        {
            self.stats.invalidated_sidecars += 1;
            return None;
        }
        match IncrementalFreezer::from_raw(sidecar.freeze) {
            Ok(freezer) => Some((freezer, sidecar.outcomes)),
            Err(_) => {
                self.stats.invalidated_sidecars += 1;
                None
            }
        }
    }

    fn make_sidecar(
        &self,
        trace: &Trace,
        freezer: &IncrementalFreezer,
        outcomes: Vec<PartitionOutcome>,
    ) -> Sidecar {
        let pos = freezer.position() as usize;
        Sidecar {
            trace_hash: hash_events(&trace.events()[..pos]),
            freeze: freezer.to_raw(),
            outcomes: Some(outcomes),
        }
    }

    /// Opens the raw state a long-lived detection session resumes from: the
    /// named trace plus — when a valid bound sidecar exists for `algorithm`
    /// — the resident freezer and any cached partition outcomes.
    ///
    /// A session keeps the freezer *in memory* across appends instead of
    /// round-tripping it through the sidecar per request; it writes state
    /// back with [`Store::persist_session`] so a later open resumes warm.
    pub fn open_session_state(
        &mut self,
        name: &str,
        algorithm: ReplayAlgorithm,
    ) -> Result<SessionState, StoreError> {
        if !algorithm.freezable() {
            return Err(StoreError::Unfreezable(algorithm));
        }
        let trace = self.load_trace(name)?;
        let (freezer, outcomes) = match self.load_sidecar(name, algorithm, &trace) {
            Some((freezer, outcomes)) => (Some(freezer), outcomes),
            None => (None, None),
        };
        Ok(SessionState {
            trace,
            freezer,
            outcomes,
        })
    }

    /// Persists a session's current state: rewrites the trace file and the
    /// freezer's algorithm sidecar (with its cached outcomes), so the next
    /// [`Store::detect`] or session open is served warm.
    pub fn persist_session(
        &mut self,
        name: &str,
        trace: &Trace,
        freezer: &IncrementalFreezer,
        outcomes: Vec<PartitionOutcome>,
    ) -> Result<(), StoreError> {
        Self::check_name(name)?;
        trace.save(self.trace_path(name))?;
        let sidecar = self.make_sidecar(trace, freezer, outcomes);
        let bytes = {
            let _span = futurerd_obs::Span::enter(futurerd_obs::names::STORE_SIDECAR_ENCODE);
            codec::encode_sidecar(&sidecar)
        };
        futurerd_obs::counter_add(
            futurerd_obs::names::STORE_SIDECAR_ENCODED_BYTES,
            bytes.len() as u64,
        );
        std::fs::write(self.sidecar_path(name, freezer.algorithm()), bytes)?;
        Ok(())
    }

    /// Folds one session-served detection into the store's work counters.
    /// Sessions route requests through their resident state, so the store
    /// only sees the resulting [`DetectionPath`]; this keeps the
    /// cold/warm/incremental economics in [`Store::stats`] accurate for
    /// session traffic too.
    pub fn record_path(&mut self, path: DetectionPath) {
        if futurerd_obs::enabled() {
            futurerd_obs::counter_add(&format!("store.path.{}", path.kind_key()), 1);
        }
        match path {
            DetectionPath::Cold => self.stats.cold_freezes += 1,
            DetectionPath::WarmIndex => self.stats.warm_index_loads += 1,
            DetectionPath::WarmCached => self.stats.warm_cached_hits += 1,
            DetectionPath::Incremental {
                rerun,
                reused,
                rebalanced,
                ..
            } => {
                self.stats.incremental_refreezes += 1;
                self.stats.partitions_rerun += rerun as u64;
                self.stats.partitions_reused += reused as u64;
                self.stats.rebalances += u64::from(rebalanced);
            }
        }
    }
}

/// The raw state of a store-backed detection session (see
/// [`Store::open_session_state`]).
#[derive(Debug)]
pub struct SessionState {
    /// The stored trace as currently on disk.
    pub trace: Trace,
    /// The resident freezer resumed from the sidecar, if one was valid.
    pub freezer: Option<IncrementalFreezer>,
    /// Cached per-partition outcomes, if the sidecar carried them.
    pub outcomes: Option<Vec<PartitionOutcome>>,
}

/// Runs full sharded detection over a frozen index, on the shared pool when
/// `threads > 1`.
fn full_outcomes(
    index: &ReachIndex,
    accesses: &[GranuleAccess],
    threads: usize,
) -> Vec<PartitionOutcome> {
    if threads > 1 {
        let pool = ThreadPool::shared(threads);
        parallel::detect_frozen_outcomes(index, accesses, threads, &PoolExec(&pool))
    } else {
        parallel::detect_frozen_outcomes(index, accesses, 1, &StdExecutor)
    }
}

/// Incremental pass 2 ([`parallel::incremental_outcomes`]) on the shared
/// worker pool when it pays, the calling thread otherwise.
fn incremental_on_pool(
    index: &ReachIndex,
    accesses: &[GranuleAccess],
    fresh: &[GranuleAccess],
    stored: Vec<PartitionOutcome>,
    threads: usize,
) -> IncrementalOutcomes {
    if threads > 1 {
        let pool = ThreadPool::shared(threads);
        parallel::incremental_outcomes(index, accesses, fresh, stored, threads, &PoolExec(&pool))
    } else {
        parallel::incremental_outcomes(index, accesses, fresh, stored, 1, &StdExecutor)
    }
}

/// [`parallel::DetectExecutor`] over the shared work-stealing pool.
struct PoolExec<'p>(&'p ThreadPool);

impl parallel::DetectExecutor for PoolExec<'_> {
    fn run_batch<'a>(&self, tasks: Vec<Box<dyn FnOnce() + Send + 'a>>) {
        self.0.run_batch(tasks);
    }
}

impl parallel::AssistExecutor for PoolExec<'_> {
    fn assist(&self, helpers: usize, body: &(dyn Fn() + Sync)) {
        self.0.run_assist(helpers, body);
    }
}

/// Extends a freezer (the cold and incremental pass-1 paths), routing large
/// closure-stamping batches through the shared pool's idle workers when
/// `threads > 1`. The frozen state — and therefore the sidecar bytes — is
/// byte-identical at every thread count.
fn extend_freezer(fz: &mut IncrementalFreezer, events: &[TraceEvent], threads: usize) {
    if threads > 1 {
        let pool = ThreadPool::shared(threads);
        let executor = PoolExec(&pool);
        fz.extend_assisted(events, &parallel::FreezeAssist::new(threads, &executor));
    } else {
        fz.extend(events);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use futurerd_dag::events::SpawnEvent;
    use futurerd_dag::trace::TraceEvent;
    use futurerd_dag::{FunctionId, MemAddr, StrandId};

    fn temp_store(tag: &str) -> Store {
        let dir =
            std::env::temp_dir().join(format!("futurerd-store-test-{}-{tag}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        Store::open(dir).expect("store opens")
    }

    fn racy_trace() -> Trace {
        let root = FunctionId(0);
        let child = FunctionId(1);
        let x = MemAddr(0x1000);
        let mut t = Trace::new();
        t.push(TraceEvent::ProgramStart {
            root,
            first: StrandId(0),
        });
        t.push(TraceEvent::StrandStart {
            strand: StrandId(0),
            function: root,
        });
        t.push(TraceEvent::Spawn(SpawnEvent {
            parent: root,
            child,
            fork_strand: StrandId(0),
            cont_strand: StrandId(2),
            child_first_strand: StrandId(1),
        }));
        t.push(TraceEvent::StrandStart {
            strand: StrandId(1),
            function: child,
        });
        t.push(TraceEvent::Write {
            strand: StrandId(1),
            addr: x,
            size: 4,
        });
        t.push(TraceEvent::Return {
            function: child,
            last: StrandId(1),
        });
        t.push(TraceEvent::StrandStart {
            strand: StrandId(2),
            function: root,
        });
        t.push(TraceEvent::Read {
            strand: StrandId(2),
            addr: x,
            size: 4,
        });
        t
    }

    #[test]
    fn warm_path_reuses_the_sidecar() {
        let mut store = temp_store("warm");
        store.put_trace("t", &racy_trace()).expect("stores");
        let cold = store
            .detect("t", ReplayAlgorithm::MultiBags, 1)
            .expect("cold");
        assert_eq!(cold.path, DetectionPath::Cold);
        assert_eq!(cold.report.race_count(), 1);
        assert!(!cold.complete, "trace is a prefix");
        let warm = store
            .detect("t", ReplayAlgorithm::MultiBags, 1)
            .expect("warm");
        assert_eq!(warm.path, DetectionPath::WarmCached);
        assert_eq!(warm.report, cold.report);
        assert_eq!(store.stats().cold_freezes, 1);
        assert_eq!(store.stats().warm_cached_hits, 1);
        std::fs::remove_dir_all(store.root()).ok();
    }

    #[test]
    fn append_triggers_the_incremental_path() {
        let mut store = temp_store("incr");
        store.put_trace("t", &racy_trace()).expect("stores");
        store
            .detect("t", ReplayAlgorithm::MultiBagsPlus, 1)
            .expect("cold");
        // Append a second racy read on a *different* granule plus the rest
        // of the program.
        let suffix = [
            TraceEvent::Read {
                strand: StrandId(2),
                addr: MemAddr(0x9000),
                size: 4,
            },
            TraceEvent::Sync(futurerd_dag::events::SyncEvent {
                parent: FunctionId(0),
                child: FunctionId(1),
                pre_join_strand: StrandId(2),
                join_strand: StrandId(3),
                child_last_strand: StrandId(1),
                fork: futurerd_dag::events::ForkInfo {
                    pre_fork_strand: StrandId(0),
                    child_first_strand: StrandId(1),
                    cont_strand: StrandId(2),
                },
            }),
            TraceEvent::StrandStart {
                strand: StrandId(3),
                function: FunctionId(0),
            },
            TraceEvent::Return {
                function: FunctionId(0),
                last: StrandId(3),
            },
            TraceEvent::ProgramEnd { last: StrandId(3) },
        ];
        let (_, complete) = store.append_events("t", &suffix).expect("appends");
        assert!(complete);
        let inc = store
            .detect("t", ReplayAlgorithm::MultiBagsPlus, 1)
            .expect("incremental");
        assert!(
            matches!(
                inc.path,
                DetectionPath::Incremental {
                    appended_events: 5,
                    ..
                }
            ),
            "{:?}",
            inc.path
        );
        // Byte-identical to cold full detection of the extended trace.
        let mut cold_store = temp_store("incr-cold");
        let full = store.load_trace("t").expect("loads");
        cold_store.put_trace("t", &full).expect("stores");
        let cold = cold_store
            .detect("t", ReplayAlgorithm::MultiBagsPlus, 1)
            .expect("cold");
        assert_eq!(inc.report, cold.report);
        assert_eq!(inc.report.to_string(), cold.report.to_string());
        std::fs::remove_dir_all(store.root()).ok();
        std::fs::remove_dir_all(cold_store.root()).ok();
    }

    #[test]
    fn corrupt_sidecars_invalidate_to_cold() {
        let mut store = temp_store("corrupt");
        store.put_trace("t", &racy_trace()).expect("stores");
        let first = store
            .detect("t", ReplayAlgorithm::MultiBags, 1)
            .expect("cold");
        let sidecar = store.sidecar_path("t", ReplayAlgorithm::MultiBags);
        let mut bytes = std::fs::read(&sidecar).expect("sidecar written");
        let last = bytes.len() - 1;
        bytes[last] ^= 0xff;
        std::fs::write(&sidecar, &bytes).expect("rewrites");
        let again = store
            .detect("t", ReplayAlgorithm::MultiBags, 1)
            .expect("re-detects");
        assert_eq!(again.path, DetectionPath::Cold);
        assert_eq!(again.report, first.report);
        assert_eq!(store.stats().invalidated_sidecars, 1);
        std::fs::remove_dir_all(store.root()).ok();
    }

    #[test]
    fn store_rejects_bad_names_and_unfreezable_algorithms() {
        let mut store = temp_store("names");
        assert!(matches!(
            store.put_trace("../evil", &Trace::new()),
            Err(StoreError::InvalidName(_))
        ));
        assert!(matches!(
            store.detect("nope", ReplayAlgorithm::MultiBags, 1),
            Err(StoreError::UnknownTrace(_))
        ));
        store.put_trace("t", &racy_trace()).expect("stores");
        assert!(matches!(
            store.detect("t", ReplayAlgorithm::GraphOracle, 1),
            Err(StoreError::Unfreezable(_))
        ));
        std::fs::remove_dir_all(store.root()).ok();
    }

    #[test]
    fn batch_runs_jobs_in_deterministic_order() {
        let mut store = temp_store("batch");
        store.put_trace("b", &racy_trace()).expect("stores");
        store.put_trace("a", &racy_trace()).expect("stores");
        for (trace, algorithm, threads) in [
            ("b", ReplayAlgorithm::MultiBagsPlus, 2),
            ("a", ReplayAlgorithm::MultiBags, 1),
            ("missing", ReplayAlgorithm::MultiBags, 1),
            ("a", ReplayAlgorithm::MultiBagsPlus, 2),
        ] {
            store.submit(BatchJob {
                trace: trace.to_string(),
                algorithm,
                threads,
            });
        }
        assert_eq!(store.pending_jobs(), 4);
        let manifest = store.run_batch().expect("batch runs");
        assert_eq!(store.pending_jobs(), 0);
        assert!(!manifest.all_ok(), "the missing trace must be recorded");
        let order: Vec<&str> = manifest
            .records
            .iter()
            .map(|r| r.job.trace.as_str())
            .collect();
        assert_eq!(order, ["a", "a", "b", "missing"]);
        let rendered = manifest.to_string();
        assert!(rendered.contains("digest="), "{rendered}");
        assert!(rendered.contains("FAILED"), "{rendered}");
        let on_disk =
            std::fs::read_to_string(store.root().join("batch-manifest.txt")).expect("manifest");
        assert_eq!(on_disk, rendered);
        // Re-running the same jobs yields the same digests (warm paths).
        for record in &manifest.records {
            store.submit(record.job.clone());
        }
        let again = store.run_batch().expect("batch reruns");
        for (a, b) in manifest.records.iter().zip(&again.records) {
            match (&a.outcome, &b.outcome) {
                (Ok(x), Ok(y)) => {
                    assert_eq!(x.digest, y.digest);
                    assert!(y.path.is_warm(), "{:?}", y.path);
                }
                (Err(_), Err(_)) => {}
                other => panic!("outcome class changed: {other:?}"),
            }
        }
        std::fs::remove_dir_all(store.root()).ok();
    }

    #[test]
    fn hash_events_distinguishes_prefixes() {
        let t = racy_trace();
        let h_full = hash_events(t.events());
        let h_prefix = hash_events(&t.events()[..t.len() - 1]);
        assert_ne!(h_full, h_prefix);
        assert_eq!(h_full, hash_events(t.events()));
    }
}
