//! Warm-vs-cold equivalence of the detection store.
//!
//! The acceptance property: loading a frozen `FRDIDX` sidecar and detecting
//! on it ("warm") produces a report **byte-identical** to from-scratch
//! two-pass detection ("cold", `par_replay_detect`) for every freezable
//! algorithm at P ∈ {1, 2, 8} — over seeded generated programs in both
//! future regimes. Reports are compared with `==` *and* by rendered form.

use futurerd_core::parallel::par_replay_detect;
use futurerd_core::replay::ReplayAlgorithm;
use futurerd_dag::genprog::{generate_program, GenConfig};
use futurerd_runtime::trace::record_spec;
use futurerd_store::{DetectionPath, Store};

fn temp_store(tag: &str) -> Store {
    let dir = std::env::temp_dir().join(format!("futurerd-roundtrip-{}-{tag}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    Store::open(dir).expect("store opens")
}

const SEEDS: u64 = 12;
const THREADS: [usize; 3] = [1, 2, 8];

fn check_config(config: &GenConfig, tag: &str) {
    let mut store = temp_store(tag);
    for seed in 0..SEEDS {
        let spec = generate_program(config, seed);
        let (trace, _) = record_spec(&spec);
        let name = format!("{tag}-{seed}");
        store.put_trace(&name, &trace).expect("trace stores");
        for algorithm in [ReplayAlgorithm::MultiBags, ReplayAlgorithm::MultiBagsPlus] {
            for (round, &threads) in THREADS.iter().enumerate() {
                let cold = par_replay_detect(&trace, algorithm, threads)
                    .expect("recorded traces are canonical");
                let stored = store
                    .detect(&name, algorithm, threads)
                    .expect("store detects");
                assert_eq!(
                    stored.report, cold,
                    "{tag} seed {seed} {algorithm} P={threads}"
                );
                assert_eq!(
                    stored.report.to_string(),
                    cold.to_string(),
                    "{tag} seed {seed} {algorithm} P={threads} (rendered)"
                );
                if round == 0 {
                    assert_eq!(stored.path, DetectionPath::Cold, "first request freezes");
                } else {
                    assert!(
                        stored.path.is_warm(),
                        "later requests must be warm, got {:?}",
                        stored.path
                    );
                }
                assert!(stored.complete);
            }
        }
    }
    let stats = store.stats();
    assert_eq!(stats.cold_freezes, SEEDS * 2, "one cold freeze per sidecar");
    assert_eq!(
        stats.warm_cached_hits,
        SEEDS * 2 * (THREADS.len() as u64 - 1),
        "every later request is fully cached"
    );
    assert_eq!(stats.invalidated_sidecars, 0);
    std::fs::remove_dir_all(store.root()).ok();
}

#[test]
fn warm_equals_cold_on_structured_programs() {
    check_config(&GenConfig::structured(), "structured");
}

#[test]
fn warm_equals_cold_on_general_programs() {
    check_config(&GenConfig::general(), "general");
}

/// The sidecar must survive the full filesystem round trip across store
/// instances (a new process opening the same directory).
#[test]
fn warm_path_survives_store_reopen() {
    let spec = generate_program(&GenConfig::general(), 7);
    let (trace, _) = record_spec(&spec);
    let mut first = temp_store("reopen");
    let root = first.root().to_path_buf();
    first.put_trace("t", &trace).expect("stores");
    let cold = first
        .detect("t", ReplayAlgorithm::MultiBagsPlus, 2)
        .expect("cold");
    drop(first);

    let mut second = Store::open(&root).expect("reopens");
    let warm = second
        .detect("t", ReplayAlgorithm::MultiBagsPlus, 2)
        .expect("warm");
    assert_eq!(warm.path, DetectionPath::WarmCached);
    assert_eq!(warm.report, cold.report);
    assert_eq!(second.stats().cold_freezes, 0);
    std::fs::remove_dir_all(&root).ok();
}

/// Each algorithm gets its own sidecar; serving one never invalidates the
/// other.
#[test]
fn per_algorithm_sidecars_are_independent() {
    let spec = generate_program(&GenConfig::structured(), 3);
    let (trace, _) = record_spec(&spec);
    let mut store = temp_store("peralgo");
    store.put_trace("t", &trace).expect("stores");
    store
        .detect("t", ReplayAlgorithm::MultiBags, 1)
        .expect("mb cold");
    store
        .detect("t", ReplayAlgorithm::MultiBagsPlus, 1)
        .expect("mbp cold");
    let mb = store
        .detect("t", ReplayAlgorithm::MultiBags, 1)
        .expect("mb warm");
    let mbp = store
        .detect("t", ReplayAlgorithm::MultiBagsPlus, 1)
        .expect("mbp warm");
    assert!(mb.path.is_warm() && mbp.path.is_warm());
    assert!(store.sidecar_path("t", ReplayAlgorithm::MultiBags).exists());
    assert!(store
        .sidecar_path("t", ReplayAlgorithm::MultiBagsPlus)
        .exists());
    std::fs::remove_dir_all(store.root()).ok();
}
