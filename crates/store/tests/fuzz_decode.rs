//! Seeded fuzz-style robustness tests: truncated and bit-flipped `FRDTRACE`
//! and `FRDIDX` bytes must always produce a **typed error** — never a
//! panic, a hang, or (for checksummed formats) a silent mis-decode.

use futurerd_core::replay::ReplayAlgorithm;
use futurerd_dag::genprog::{generate_program, GenConfig};
use futurerd_dag::trace::{Trace, TRACE_VERSION_V1, TRACE_VERSION_V2};
use futurerd_runtime::trace::record_spec;
use futurerd_store::{decode_sidecar, encode_sidecar, hash_events, Sidecar};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn sample_trace() -> Trace {
    let spec = generate_program(
        &GenConfig {
            max_depth: 3,
            max_actions: 5,
            num_locations: 6,
            general_futures: true,
            ..GenConfig::structured()
        },
        42,
    );
    record_spec(&spec).0
}

fn sample_sidecar(trace: &Trace) -> Vec<u8> {
    use futurerd_core::parallel::IncrementalFreezer;
    let mut fz = IncrementalFreezer::new(ReplayAlgorithm::MultiBagsPlus).expect("freezable");
    fz.extend(trace.events());
    encode_sidecar(&Sidecar {
        trace_hash: hash_events(trace.events()),
        freeze: fz.to_raw(),
        outcomes: None,
    })
}

/// Any strict prefix of a trace file must fail to decode, in every format
/// version, with a typed error.
#[test]
fn truncated_traces_are_typed_errors() {
    let trace = sample_trace();
    let mut rng = StdRng::seed_from_u64(0xF0F0);
    for version in [
        TRACE_VERSION_V1,
        TRACE_VERSION_V2,
        futurerd_dag::trace::TRACE_VERSION,
    ] {
        let bytes = trace.to_bytes_versioned(version).expect("encodes");
        // Every short prefix, plus 200 random interior cuts.
        let cuts: Vec<usize> = (0..bytes.len().min(64))
            .chain((0..200).map(|_| rng.gen_range(0..bytes.len())))
            .collect();
        for cut in cuts {
            let result = Trace::from_bytes(&bytes[..cut]);
            assert!(
                result.is_err(),
                "v{version}: prefix of {cut}/{} bytes decoded",
                bytes.len()
            );
            // Rendering the error must not panic either.
            let _ = result.unwrap_err().to_string();
        }
    }
}

/// Single-bit flips anywhere in a v3 trace are always *detected* (the
/// payload is checksummed; header fields are individually validated). For
/// v1/v2 — which predate the checksum — a flip may legitimately decode to a
/// different stream, but it must never panic.
#[test]
fn bit_flipped_traces_never_panic_and_v3_always_errors() {
    let trace = sample_trace();
    let mut rng = StdRng::seed_from_u64(0xB17F);

    let v3 = trace
        .to_bytes_versioned(futurerd_dag::trace::TRACE_VERSION)
        .expect("encodes");
    for _ in 0..400 {
        let mut bytes = v3.clone();
        let at = rng.gen_range(0..bytes.len());
        bytes[at] ^= 1 << rng.gen_range(0..8);
        let result = Trace::from_bytes(&bytes);
        assert!(
            result.is_err(),
            "v3 flip at byte {at} was not detected ({} bytes)",
            bytes.len()
        );
        let _ = result.unwrap_err().to_string();
    }

    for version in [TRACE_VERSION_V1, TRACE_VERSION_V2] {
        let encoded = trace.to_bytes_versioned(version).expect("encodes");
        for _ in 0..200 {
            let mut bytes = encoded.clone();
            let at = rng.gen_range(0..bytes.len());
            bytes[at] ^= 1 << rng.gen_range(0..8);
            // Decoding may succeed (absolute-field formats have no
            // checksum) — it must simply never panic.
            match Trace::from_bytes(&bytes) {
                Ok(decoded) => {
                    let _ = decoded.len();
                }
                Err(e) => {
                    let _ = e.to_string();
                }
            }
        }
    }
}

/// Truncations and bit flips of an `FRDIDX` sidecar are always typed
/// errors: the payload checksum is verified before decoding, so corruption
/// can never produce a silently wrong index.
#[test]
fn corrupt_sidecars_are_typed_errors() {
    let trace = sample_trace();
    let bytes = sample_sidecar(&trace);
    assert!(decode_sidecar(&bytes).is_ok(), "control: intact decodes");
    let mut rng = StdRng::seed_from_u64(0x51D3);

    for cut in (0..bytes.len().min(64)).chain((0..200).map(|_| rng.gen_range(0..bytes.len()))) {
        let result = decode_sidecar(&bytes[..cut]);
        assert!(result.is_err(), "prefix of {cut}/{} decoded", bytes.len());
        let _ = result.unwrap_err().to_string();
    }

    for _ in 0..400 {
        let mut corrupt = bytes.clone();
        let at = rng.gen_range(0..corrupt.len());
        corrupt[at] ^= 1 << rng.gen_range(0..8);
        let result = decode_sidecar(&corrupt);
        assert!(result.is_err(), "flip at byte {at} was not detected");
        let _ = result.unwrap_err().to_string();
    }

    // Multi-byte garbage: random blocks overwritten.
    for _ in 0..100 {
        let mut corrupt = bytes.clone();
        let at = rng.gen_range(0..corrupt.len());
        let len = rng.gen_range(1..32.min(corrupt.len() - at + 1));
        for b in &mut corrupt[at..at + len] {
            *b = rng.gen();
        }
        if corrupt == bytes {
            continue;
        }
        let result = decode_sidecar(&corrupt);
        assert!(result.is_err(), "garbage block at {at}+{len} not detected");
    }
}

/// Arbitrary random bytes (not derived from a valid file) must also fail
/// cleanly for both decoders.
#[test]
fn random_bytes_fail_cleanly() {
    let mut rng = StdRng::seed_from_u64(0xA11A);
    for _ in 0..200 {
        let len = rng.gen_range(0..512);
        let mut bytes = vec![0u8; len];
        for b in &mut bytes {
            *b = rng.gen();
        }
        assert!(Trace::from_bytes(&bytes).is_err());
        assert!(decode_sidecar(&bytes).is_err());
    }
    // Valid magic but random everything else.
    for _ in 0..200 {
        let len = rng.gen_range(8..512);
        let mut bytes = vec![0u8; len];
        for b in &mut bytes {
            *b = rng.gen();
        }
        bytes[..8].copy_from_slice(b"FRDTRACE");
        assert!(Trace::from_bytes(&bytes).is_err());
        bytes[..8].copy_from_slice(b"FRDIDX\0\0");
        assert!(decode_sidecar(&bytes).is_err());
    }
}
