//! Incremental re-detection ≡ full from-scratch detection.
//!
//! The acceptance property: for random generated programs split at random
//! append points, storing the prefix, detecting, appending the suffix and
//! re-detecting **incrementally** yields a report byte-identical to cold
//! full detection of the extended trace — at P ∈ {1, 4}, for both freezable
//! algorithms, in both future regimes, including multi-chunk append chains.

use futurerd_core::parallel::par_replay_detect;
use futurerd_core::replay::ReplayAlgorithm;
use futurerd_dag::genprog::{generate_program, GenConfig};
use futurerd_dag::trace::Trace;
use futurerd_runtime::trace::record_spec;
use futurerd_store::{DetectionPath, Store};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Every call gets its own directory: the two `#[test]`s run concurrently
/// in one process, so a shared dir would let one test wipe the other's
/// live store mid-run.
fn temp_store(tag: &str) -> Store {
    use std::sync::atomic::{AtomicU64, Ordering};
    static NEXT: AtomicU64 = AtomicU64::new(0);
    let unique = NEXT.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!(
        "futurerd-increq-{}-{tag}-{unique}",
        std::process::id()
    ));
    std::fs::remove_dir_all(&dir).ok();
    Store::open(dir).expect("store opens")
}

/// Stores `trace[..cut]`, detects, appends the rest in `chunks` pieces
/// re-detecting after each, and checks the final report against cold
/// detection of the full trace.
fn check_split(
    trace: &Trace,
    cut: usize,
    chunks: usize,
    algorithm: ReplayAlgorithm,
    threads: usize,
    context: &str,
) {
    let mut store = temp_store("case");
    let mut prefix = Trace::new();
    prefix.extend_events(&trace.events()[..cut]);
    store.put_trace("t", &prefix).expect("prefix is canonical");
    let first = store
        .detect("t", algorithm, threads)
        .expect("prefix detects");
    assert_eq!(first.path, DetectionPath::Cold, "{context}");

    // Append the suffix in `chunks` roughly equal pieces, re-detecting
    // after each append (every re-detection must take the incremental
    // path — the sidecar is valid for the previous prefix).
    let suffix = &trace.events()[cut..];
    let chunk = suffix.len().div_ceil(chunks.max(1)).max(1);
    let mut last = None;
    for (i, piece) in suffix.chunks(chunk).enumerate() {
        store.append_events("t", piece).expect("append validates");
        let detection = store
            .detect("t", algorithm, threads)
            .expect("incremental detects");
        assert!(
            matches!(detection.path, DetectionPath::Incremental { .. }),
            "{context} chunk {i}: {:?}",
            detection.path
        );
        last = Some(detection);
    }
    let last = match last {
        Some(last) => last,
        None => return, // cut == len: nothing to append
    };
    assert!(last.complete, "{context}: full trace must be complete");

    // Byte-identical to the cold two-pass engine on the extended trace.
    let cold = par_replay_detect(trace, algorithm, threads).expect("canonical");
    assert_eq!(last.report, cold, "{context}");
    assert_eq!(last.report.to_string(), cold.to_string(), "{context}");

    // And the refreshed sidecar is warm for the extended trace.
    let warm = store.detect("t", algorithm, threads).expect("warm");
    assert_eq!(warm.path, DetectionPath::WarmCached, "{context}");
    assert_eq!(warm.report, cold, "{context}");
    let stats = store.stats();
    assert_eq!(stats.invalidated_sidecars, 0, "{context}");
    assert!(stats.incremental_refreezes >= 1, "{context}");
    std::fs::remove_dir_all(store.root()).ok();
}

#[test]
fn prop_incremental_equals_full_detection() {
    let mut rng = StdRng::seed_from_u64(0x57_0e_e1);
    for case in 0..24 {
        let seed: u64 = rng.gen();
        let general: bool = rng.gen();
        let cfg = GenConfig {
            max_depth: rng.gen_range(2u32..7),
            max_actions: rng.gen_range(2u32..9),
            num_locations: rng.gen_range(1u32..20),
            general_futures: general,
            ..GenConfig::structured()
        };
        let spec = generate_program(&cfg, seed);
        let (trace, _) = record_spec(&spec);
        let cut = rng.gen_range(0..trace.len());
        let chunks = rng.gen_range(1usize..4);
        let algorithm = if rng.gen() {
            ReplayAlgorithm::MultiBags
        } else {
            ReplayAlgorithm::MultiBagsPlus
        };
        for threads in [1usize, 4] {
            check_split(
                &trace,
                cut,
                chunks,
                algorithm,
                threads,
                &format!(
                    "case {case} seed {seed} general {general} cut {cut}/{} chunks {chunks} {algorithm} P={threads}",
                    trace.len()
                ),
            );
        }
    }
}

/// Every cut point of one small program, both algorithms — the exhaustive
/// complement to the randomized sweep above.
#[test]
fn incremental_equals_full_at_every_cut_of_a_small_program() {
    let spec = generate_program(
        &GenConfig {
            max_depth: 3,
            max_actions: 4,
            num_locations: 4,
            general_futures: true,
            ..GenConfig::structured()
        },
        11,
    );
    let (trace, _) = record_spec(&spec);
    for cut in 0..trace.len() {
        for algorithm in [ReplayAlgorithm::MultiBags, ReplayAlgorithm::MultiBagsPlus] {
            check_split(
                &trace,
                cut,
                1,
                algorithm,
                1,
                &format!("exhaustive cut {cut}/{} {algorithm}", trace.len()),
            );
        }
    }
}
