//! Heart-wall tracking (`heartwall`) — synthetic substitute for the Rodinia
//! benchmark used in the paper.
//!
//! The Rodinia benchmark tracks a set of sample points on the inner and
//! outer heart wall across a sequence of ultrasound frames: the position of
//! point `p` in frame `f` is found by correlating a template around the
//! point's position in frame `f-1` with a search window in frame `f`. The
//! dependence structure — per-point chains across frames, all points of a
//! frame independent of each other — is what matters for race-detection
//! overhead; the pixel data itself does not, so frames here are
//! synthetically generated.
//!
//! * **Structured**: frames are processed with a barrier — the driver
//!   creates one future per point for frame `f` and joins them all before
//!   frame `f+1` (single touch).
//! * **General**: the future for point `p` in frame `f` directly touches the
//!   frame-`f-1` futures of `p` and of its two neighbouring points (the
//!   search windows overlap), so futures are multi-touch and the dag is not
//!   series-parallel.

use futurerd_dag::Observer;
use futurerd_runtime::exec::FutureHandle;
use futurerd_runtime::{Cx, ShadowArray, ShadowMatrix};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Parameters and synthetic frames.
#[derive(Debug, Clone)]
pub struct HeartwallInput {
    /// Number of frames (the paper uses 10).
    pub frames: usize,
    /// Number of tracked sample points.
    pub points: usize,
    /// Width/height of each (square) synthetic frame.
    pub frame_dim: usize,
    /// Half-width of the correlation search window.
    pub window: usize,
    /// Synthetic frame pixels, one `frame_dim²` block per frame.
    pub pixels: Vec<Vec<i32>>,
}

impl HeartwallInput {
    /// Generates synthetic frames.
    pub fn generate(frames: usize, points: usize, frame_dim: usize, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let pixels = (0..frames)
            .map(|_| {
                (0..frame_dim * frame_dim)
                    .map(|_| rng.gen_range(0..256))
                    .collect()
            })
            .collect();
        Self {
            frames,
            points,
            frame_dim,
            window: 4,
            pixels,
        }
    }
}

/// Correlation kernel: given the previous position of a point, scan the
/// search window in the current frame and return the offset with the best
/// (synthetic) response. Deterministic in the inputs.
fn track_point<O: Observer>(
    cx: &mut Cx<O>,
    frame: &ShadowMatrix<i32>,
    prev_pos: (usize, usize),
    window: usize,
    dim: usize,
) -> (usize, usize) {
    let (py, px) = prev_pos;
    let mut best = i64::MIN;
    let mut best_pos = prev_pos;
    let y0 = py.saturating_sub(window);
    let x0 = px.saturating_sub(window);
    let y1 = (py + window).min(dim - 1);
    let x1 = (px + window).min(dim - 1);
    for y in y0..=y1 {
        for x in x0..=x1 {
            // A small correlation surrogate: sum of a 3x3 neighbourhood
            // weighted by distance from the previous position.
            let mut acc = 0i64;
            for dy in 0..3usize {
                for dx in 0..3usize {
                    let yy = (y + dy).min(dim - 1);
                    let xx = (x + dx).min(dim - 1);
                    acc += frame.get(cx, yy, xx) as i64;
                }
            }
            let dist = (y.abs_diff(py) + x.abs_diff(px)) as i64;
            let score = acc - 7 * dist;
            if score > best {
                best = score;
                best_pos = (y, x);
            }
        }
    }
    best_pos
}

/// Serial reference: tracks every point through every frame and returns a
/// checksum of the final positions.
pub fn serial(input: &HeartwallInput) -> u64 {
    let dim = input.frame_dim;
    let mut positions: Vec<(usize, usize)> = (0..input.points)
        .map(|p| (dim / 2, (p * dim / input.points.max(1)).min(dim - 1)))
        .collect();
    for f in 0..input.frames {
        let frame = &input.pixels[f];
        for pos in positions.iter_mut() {
            let (py, px) = *pos;
            let mut best = i64::MIN;
            let mut best_pos = *pos;
            let (y0, x0) = (
                py.saturating_sub(input.window),
                px.saturating_sub(input.window),
            );
            let (y1, x1) = (
                (py + input.window).min(dim - 1),
                (px + input.window).min(dim - 1),
            );
            for y in y0..=y1 {
                for x in x0..=x1 {
                    let mut acc = 0i64;
                    for dy in 0..3usize {
                        for dx in 0..3usize {
                            acc +=
                                frame[(y + dy).min(dim - 1) * dim + (x + dx).min(dim - 1)] as i64;
                        }
                    }
                    let dist = (y.abs_diff(py) + x.abs_diff(px)) as i64;
                    let score = acc - 7 * dist;
                    if score > best {
                        best = score;
                        best_pos = (y, x);
                    }
                }
            }
            *pos = best_pos;
        }
    }
    positions
        .iter()
        .enumerate()
        .fold(0u64, |acc, (i, &(y, x))| {
            acc.wrapping_add(((y * dim + x) as u64).rotate_left((i % 61) as u32))
        })
}

fn checksum(positions: &[(usize, usize)], dim: usize) -> u64 {
    positions
        .iter()
        .enumerate()
        .fold(0u64, |acc, (i, &(y, x))| {
            acc.wrapping_add(((y * dim + x) as u64).rotate_left((i % 61) as u32))
        })
}

fn initial_positions(input: &HeartwallInput) -> Vec<(usize, usize)> {
    let dim = input.frame_dim;
    (0..input.points)
        .map(|p| (dim / 2, (p * dim / input.points.max(1)).min(dim - 1)))
        .collect()
}

fn load_frame<O: Observer>(cx: &mut Cx<O>, input: &HeartwallInput, f: usize) -> ShadowMatrix<i32> {
    let dim = input.frame_dim;
    let mut m = ShadowMatrix::new(cx, dim, dim, 0i32);
    m.raw_mut().copy_from_slice(&input.pixels[f]);
    m
}

/// Structured-futures tracker (per-frame barrier). Returns a checksum of the
/// final point positions.
pub fn structured<O: Observer>(cx: &mut Cx<O>, input: &HeartwallInput) -> u64 {
    let dim = input.frame_dim;
    // Positions are stored in instrumented memory: frame f's tracking of
    // point p reads positions[p] (written in frame f-1) and writes it back.
    let mut pos_y = ShadowArray::new(cx, input.points, 0u32);
    let mut pos_x = ShadowArray::new(cx, input.points, 0u32);
    for (p, (y, x)) in initial_positions(input).into_iter().enumerate() {
        pos_y.set(cx, p, y as u32);
        pos_x.set(cx, p, x as u32);
    }
    for f in 0..input.frames {
        let frame = load_frame(cx, input, f);
        let mut futures: Vec<FutureHandle<()>> = Vec::new();
        for p in 0..input.points {
            let frame_ref = &frame;
            let (py_ref, px_ref) = (&mut pos_y, &mut pos_x);
            let window = input.window;
            futures.push(cx.create_future(move |cx| {
                let prev = (py_ref.get(cx, p) as usize, px_ref.get(cx, p) as usize);
                let (ny, nx) = track_point(cx, frame_ref, prev, window, dim);
                py_ref.set(cx, p, ny as u32);
                px_ref.set(cx, p, nx as u32);
            }));
        }
        for fut in futures {
            cx.get_future(fut);
        }
    }
    let positions: Vec<(usize, usize)> = (0..input.points)
        .map(|p| (pos_y.raw()[p] as usize, pos_x.raw()[p] as usize))
        .collect();
    checksum(&positions, dim)
}

/// General-futures tracker: point `(f, p)` touches the frame-`f-1` futures
/// of `p-1`, `p`, `p+1` (multi-touch), with no per-frame barrier.
pub fn general<O: Observer>(cx: &mut Cx<O>, input: &HeartwallInput) -> u64 {
    let dim = input.frame_dim;
    // Per-point position cells; each (f, p) future owns cell p exclusively
    // in its frame, ordered across frames by the future chain.
    let mut pos_y = ShadowArray::new(cx, input.points, 0u32);
    let mut pos_x = ShadowArray::new(cx, input.points, 0u32);
    for (p, (y, x)) in initial_positions(input).into_iter().enumerate() {
        pos_y.set(cx, p, y as u32);
        pos_x.set(cx, p, x as u32);
    }
    let mut prev_frame: Vec<Option<FutureHandle<()>>> = (0..input.points).map(|_| None).collect();
    for f in 0..input.frames {
        let frame = load_frame(cx, input, f);
        let mut this_frame: Vec<Option<FutureHandle<()>>> =
            (0..input.points).map(|_| None).collect();
        for p in 0..input.points {
            // Dependencies: previous frame's futures for p-1, p, p+1.
            let lo = p.saturating_sub(1);
            let hi = (p + 1).min(input.points - 1);
            let mut deps: Vec<Option<FutureHandle<()>>> =
                (lo..=hi).map(|q| prev_frame[q].take()).collect();
            let frame_ref = &frame;
            let (py_ref, px_ref) = (&mut pos_y, &mut pos_x);
            let window = input.window;
            let handle = {
                let deps_ref = &mut deps;
                cx.create_future(move |cx| {
                    for d in deps_ref.iter_mut().flatten() {
                        cx.touch_future(d);
                    }
                    let prev = (py_ref.get(cx, p) as usize, px_ref.get(cx, p) as usize);
                    let (ny, nx) = track_point(cx, frame_ref, prev, window, dim);
                    py_ref.set(cx, p, ny as u32);
                    px_ref.set(cx, p, nx as u32);
                })
            };
            for (q, dep) in (lo..=hi).zip(deps) {
                if dep.is_some() {
                    prev_frame[q] = dep;
                }
            }
            this_frame[p] = Some(handle);
        }
        prev_frame = this_frame;
    }
    // Join the last frame's futures before reading the final positions.
    for slot in prev_frame.iter_mut() {
        if let Some(h) = slot.as_mut() {
            cx.touch_future(h);
        }
    }
    let positions: Vec<(usize, usize)> = (0..input.points)
        .map(|p| (pos_y.get(cx, p) as usize, pos_x.get(cx, p) as usize))
        .collect();
    checksum(&positions, dim)
}

#[cfg(test)]
mod tests {
    use super::*;
    use futurerd_core::detector::RaceDetector;
    use futurerd_core::reachability::{MultiBags, MultiBagsPlus};
    use futurerd_dag::NullObserver;
    use futurerd_runtime::run_program;

    fn input() -> HeartwallInput {
        HeartwallInput::generate(4, 6, 32, 21)
    }

    #[test]
    fn structured_matches_serial() {
        let inp = input();
        let (got, _, _) = run_program(NullObserver, |cx| structured(cx, &inp));
        assert_eq!(got, serial(&inp));
    }

    #[test]
    fn general_matches_serial() {
        let inp = input();
        let (got, _, _) = run_program(NullObserver, |cx| general(cx, &inp));
        assert_eq!(got, serial(&inp));
    }

    #[test]
    fn structured_is_race_free_under_multibags() {
        let inp = input();
        let (_, det, _) = run_program(RaceDetector::<MultiBags>::structured(), |cx| {
            structured(cx, &inp)
        });
        assert!(det.report().is_race_free(), "{}", det.report());
    }

    #[test]
    fn general_is_race_free_under_multibags_plus() {
        let inp = input();
        let (_, det, _) = run_program(RaceDetector::<MultiBagsPlus>::general(), |cx| {
            general(cx, &inp)
        });
        assert!(det.report().is_race_free(), "{}", det.report());
    }

    #[test]
    fn one_future_per_point_per_frame() {
        let inp = input();
        let (_, _, s) = run_program(NullObserver, |cx| structured(cx, &inp));
        assert_eq!(s.creates, (inp.frames * inp.points) as u64);
        assert_eq!(s.gets, s.creates);
    }

    #[test]
    fn general_has_multi_touch_gets() {
        let inp = input();
        let (_, _, s) = run_program(NullObserver, |cx| general(cx, &inp));
        assert!(s.gets > s.creates);
    }
}
