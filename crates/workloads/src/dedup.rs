//! Deduplicating compression pipeline (`dedup`) — synthetic substitute for
//! the PARSEC benchmark used in the paper.
//!
//! PARSEC's dedup compresses a data stream with a pipeline: *fragment* the
//! stream into chunks, *deduplicate* chunks against a global hash table,
//! *compress* first-occurrence chunks, and *reorder/emit* the results in
//! stream order. The deduplication stage is inherently serial (it mutates
//! the shared table), while fragmentation and compression of different
//! chunks are parallel — the pipeline-parallel pattern the paper cites as
//! not expressible with fork-join alone.
//!
//! The input stream here is synthetic (deterministic pseudo-random data with
//! planted repetitions so deduplication actually triggers); the pipeline
//! stages, their dependence structure and their memory behaviour mirror the
//! real benchmark.
//!
//! * **Structured**: per-chunk *compress* futures run in parallel; the
//!   driver consumes each chunk's future once, in order, and performs the
//!   serial dedup-table update itself (single touch).
//! * **General**: the dedup stage is itself a chain of futures (stage `i`
//!   touches stage `i-1`), and the reorder stage touches both the dedup
//!   future and the compress future of each chunk — multi-touch futures
//!   forming a non-series-parallel pipeline dag.

use futurerd_dag::Observer;
use futurerd_runtime::exec::FutureHandle;
use futurerd_runtime::{Cx, ShadowArray};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The synthetic input stream.
#[derive(Debug, Clone)]
pub struct DedupInput {
    /// Raw data stream.
    pub data: Vec<u8>,
    /// Chunk size used by the fragmentation stage.
    pub chunk_size: usize,
}

impl DedupInput {
    /// Generates a stream of `chunks` chunks of `chunk_size` bytes with
    /// roughly 30% duplicate chunks.
    pub fn generate(chunks: usize, chunk_size: usize, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut unique: Vec<Vec<u8>> = Vec::new();
        let mut data = Vec::with_capacity(chunks * chunk_size);
        for _ in 0..chunks {
            if !unique.is_empty() && rng.gen_bool(0.3) {
                let pick = rng.gen_range(0..unique.len());
                data.extend_from_slice(&unique[pick]);
            } else {
                let chunk: Vec<u8> = (0..chunk_size).map(|_| rng.gen()).collect();
                data.extend_from_slice(&chunk);
                unique.push(chunk);
            }
        }
        Self { data, chunk_size }
    }

    /// Number of chunks in the stream.
    pub fn num_chunks(&self) -> usize {
        self.data.len().div_ceil(self.chunk_size)
    }
}

/// FNV-style chunk fingerprint.
fn fingerprint(bytes: &[u8]) -> u64 {
    bytes.iter().fold(0xcbf29ce484222325u64, |h, &b| {
        (h ^ b as u64).wrapping_mul(0x100000001b3)
    })
}

/// "Compression": run-length summary plus a mixing checksum — enough work to
/// stand in for the compression stage without an external codec.
fn compress(bytes: &[u8]) -> u64 {
    let mut out = 0u64;
    let mut run = 1u64;
    for w in bytes.windows(2) {
        if w[0] == w[1] {
            run += 1;
        } else {
            out = out
                .wrapping_mul(31)
                .wrapping_add(run)
                .wrapping_add(w[0] as u64);
            run = 1;
        }
    }
    out.wrapping_add(fingerprint(bytes).rotate_left(17))
}

/// Serial reference: returns the checksum of the emitted stream (compressed
/// payload for first occurrences, back-references for duplicates).
pub fn serial(input: &DedupInput) -> u64 {
    let mut table: std::collections::HashMap<u64, usize> = std::collections::HashMap::new();
    let mut out = 0u64;
    for (i, chunk) in input.data.chunks(input.chunk_size).enumerate() {
        let fp = fingerprint(chunk);
        let emitted = match table.get(&fp) {
            Some(&first) => (first as u64).rotate_left(3),
            None => {
                table.insert(fp, i);
                compress(chunk)
            }
        };
        out = out.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(emitted);
    }
    out
}

struct ChunkArrays {
    data: ShadowArray<u8>,
    fingerprints: ShadowArray<u64>,
    compressed: ShadowArray<u64>,
    emitted: ShadowArray<u64>,
}

fn setup<O: Observer>(cx: &mut Cx<O>, input: &DedupInput) -> ChunkArrays {
    let n = input.num_chunks();
    ChunkArrays {
        data: ShadowArray::from_vec(cx, input.data.clone()),
        fingerprints: ShadowArray::new(cx, n, 0u64),
        compressed: ShadowArray::new(cx, n, 0u64),
        emitted: ShadowArray::new(cx, n, 0u64),
    }
}

fn chunk_range(input: &DedupInput, i: usize) -> std::ops::Range<usize> {
    (i * input.chunk_size)..((i + 1) * input.chunk_size).min(input.data.len())
}

/// Fragment + fingerprint + compress one chunk (instrumented reads of the
/// stream, writes of the per-chunk outputs).
fn process_chunk<O: Observer>(
    cx: &mut Cx<O>,
    arrays: &mut ChunkArrays,
    range: std::ops::Range<usize>,
    index: usize,
) {
    let mut bytes = Vec::with_capacity(range.len());
    for i in range {
        bytes.push(arrays.data.get(cx, i));
    }
    arrays.fingerprints.set(cx, index, fingerprint(&bytes));
    arrays.compressed.set(cx, index, compress(&bytes));
}

fn fold_emitted<O: Observer>(cx: &mut Cx<O>, arrays: &ShadowArray<u64>, n: usize) -> u64 {
    let mut out = 0u64;
    for i in 0..n {
        out = out
            .wrapping_mul(0x9E3779B97F4A7C15)
            .wrapping_add(arrays.get(cx, i));
    }
    out
}

/// Structured-futures pipeline. Returns the output-stream checksum.
pub fn structured<O: Observer>(cx: &mut Cx<O>, input: &DedupInput) -> u64 {
    let n = input.num_chunks();
    let mut arrays = setup(cx, input);
    // Stage 1+3 (fragment + compress) in parallel, one future per chunk.
    let mut futures: Vec<FutureHandle<()>> = Vec::new();
    for i in 0..n {
        let range = chunk_range(input, i);
        let arrays_ref = &mut arrays;
        futures.push(cx.create_future(move |cx| process_chunk(cx, arrays_ref, range, i)));
    }
    // Stage 2 (dedup) + stage 4 (reorder/emit) performed serially by the
    // driver, consuming each chunk's future exactly once, in order.
    let mut table: std::collections::HashMap<u64, usize> = std::collections::HashMap::new();
    for (i, fut) in futures.into_iter().enumerate() {
        cx.get_future(fut);
        let fp = arrays.fingerprints.get(cx, i);
        let value = match table.get(&fp) {
            Some(&first) => (first as u64).rotate_left(3),
            None => {
                table.insert(fp, i);
                arrays.compressed.get(cx, i)
            }
        };
        arrays.emitted.set(cx, i, value);
    }
    fold_emitted(cx, &arrays.emitted, n)
}

/// General-futures pipeline: a serial chain of dedup futures plus parallel
/// compress futures, joined by a reorder stage that touches both — the dag
/// is not series-parallel. Returns the output-stream checksum.
pub fn general<O: Observer>(cx: &mut Cx<O>, input: &DedupInput) -> u64 {
    let n = input.num_chunks();
    let mut arrays = setup(cx, input);
    // The dedup stage's shared table lives in instrumented memory so that a
    // missing ordering edge would be reported as a race: dedup_slot[i] holds
    // the index of the first chunk with chunk i's fingerprint.
    let mut dedup_slot = ShadowArray::new(cx, n, u32::MAX);
    let mut table: std::collections::HashMap<u64, usize> = std::collections::HashMap::new();

    // Parallel compress futures.
    let mut compress_futs: Vec<Option<FutureHandle<()>>> = Vec::new();
    for i in 0..n {
        let range = chunk_range(input, i);
        let arrays_ref = &mut arrays;
        compress_futs.push(Some(
            cx.create_future(move |cx| process_chunk(cx, arrays_ref, range, i)),
        ));
    }
    // Serial dedup chain: future i touches future i-1 (serializing the
    // table updates) and the chunk's own compress future (first touch).
    let mut prev_dedup: Option<FutureHandle<()>> = None;
    for i in 0..n {
        let mut prev = prev_dedup.take();
        let mut own_compress = compress_futs[i].take();
        let arrays_ref = &mut arrays;
        let slot_ref = &mut dedup_slot;
        let table_ref = &mut table;
        let handle = {
            let prev_ref = &mut prev;
            let own_ref = &mut own_compress;
            cx.create_future(move |cx| {
                if let Some(p) = prev_ref.as_mut() {
                    cx.touch_future(p);
                }
                if let Some(c) = own_ref.as_mut() {
                    cx.touch_future(c);
                }
                let fp = arrays_ref.fingerprints.get(cx, i);
                let first = *table_ref.entry(fp).or_insert(i);
                slot_ref.set(cx, i, first as u32);
            })
        };
        // The compress handle goes back so the reorder stage can touch it a
        // second time; the dedup handle becomes the next chain predecessor.
        compress_futs[i] = own_compress;
        prev_dedup = Some(handle);
    }
    // Reorder/emit stage: touches the final dedup future (ordering the whole
    // chain) and each chunk's compress future a second time, then emits.
    if let Some(mut last) = prev_dedup.take() {
        cx.touch_future(&mut last);
    }
    for i in 0..n {
        if let Some(c) = compress_futs[i].as_mut() {
            cx.touch_future(c);
        }
        let first = dedup_slot.get(cx, i) as usize;
        let value = if first == i {
            arrays.compressed.get(cx, i)
        } else {
            (first as u64).rotate_left(3)
        };
        arrays.emitted.set(cx, i, value);
    }
    fold_emitted(cx, &arrays.emitted, n)
}

#[cfg(test)]
mod tests {
    use super::*;
    use futurerd_core::detector::RaceDetector;
    use futurerd_core::reachability::{MultiBags, MultiBagsPlus};
    use futurerd_dag::NullObserver;
    use futurerd_runtime::run_program;

    fn input() -> DedupInput {
        DedupInput::generate(24, 64, 17)
    }

    #[test]
    fn input_contains_duplicates() {
        let inp = input();
        let fps: std::collections::HashSet<u64> =
            inp.data.chunks(inp.chunk_size).map(fingerprint).collect();
        assert!(fps.len() < inp.num_chunks());
    }

    #[test]
    fn structured_matches_serial() {
        let inp = input();
        let (got, _, _) = run_program(NullObserver, |cx| structured(cx, &inp));
        assert_eq!(got, serial(&inp));
    }

    #[test]
    fn general_matches_serial() {
        let inp = input();
        let (got, _, _) = run_program(NullObserver, |cx| general(cx, &inp));
        assert_eq!(got, serial(&inp));
    }

    #[test]
    fn structured_is_race_free_under_multibags() {
        let inp = input();
        let (_, det, _) = run_program(RaceDetector::<MultiBags>::structured(), |cx| {
            structured(cx, &inp)
        });
        assert!(det.report().is_race_free(), "{}", det.report());
    }

    #[test]
    fn general_is_race_free_under_multibags_plus() {
        let inp = input();
        let (_, det, _) = run_program(RaceDetector::<MultiBagsPlus>::general(), |cx| {
            general(cx, &inp)
        });
        assert!(det.report().is_race_free(), "{}", det.report());
    }

    #[test]
    fn one_future_per_chunk_in_structured_mode() {
        let inp = input();
        let (_, _, s) = run_program(NullObserver, |cx| structured(cx, &inp));
        assert_eq!(s.creates, inp.num_chunks() as u64);
        assert_eq!(s.gets, s.creates);
    }

    #[test]
    fn general_mode_builds_a_longer_pipeline() {
        let inp = input();
        let (_, _, s) = run_program(NullObserver, |cx| general(cx, &inp));
        assert_eq!(s.creates, 2 * inp.num_chunks() as u64);
        assert!(s.gets > s.creates);
    }
}
