//! Longest common subsequence (`lcs`).
//!
//! The classic Θ(n²) dynamic program over two strings, blocked into
//! `B × B` tiles. Tile `(i, j)` depends on tiles `(i-1, j)`, `(i, j-1)` and
//! `(i-1, j-1)`, giving a wavefront of parallelism along anti-diagonals.
//!
//! * **Structured** variant: the driver walks anti-diagonals; it creates one
//!   future per tile of the current diagonal and consumes (`get_fut`) all of
//!   them before moving to the next diagonal. Every future is touched
//!   exactly once and strictly after its creation — structured futures,
//!   `k = (n/B)²` gets.
//! * **General** variant: one future per tile, and each tile's *body*
//!   touches the futures of its up / left / diagonal neighbours directly
//!   (multi-touch: an interior tile's future is consumed by up to three
//!   other tiles plus the final collection), exercising MultiBags+.
//!
//! Both variants are determinacy-race free: every cell of the DP table is
//! written by exactly one tile, and every read of another tile's cells
//! happens after the corresponding future has been joined.

use futurerd_dag::Observer;
use futurerd_runtime::exec::FutureHandle;
use futurerd_runtime::{Cx, ShadowArray, ShadowMatrix, ThreadPool};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Input strings for the DP.
#[derive(Debug, Clone)]
pub struct LcsInput {
    /// First sequence.
    pub a: Vec<u8>,
    /// Second sequence.
    pub b: Vec<u8>,
}

impl LcsInput {
    /// Generates two random sequences of length `n` over a 4-letter
    /// alphabet.
    pub fn generate(n: usize, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let a = (0..n).map(|_| rng.gen_range(b'a'..b'e')).collect();
        let b = (0..n).map(|_| rng.gen_range(b'a'..b'e')).collect();
        Self { a, b }
    }

    /// Sequence length.
    pub fn len(&self) -> usize {
        self.a.len()
    }

    /// True if the input is empty.
    pub fn is_empty(&self) -> bool {
        self.a.is_empty()
    }
}

/// Serial reference implementation (uninstrumented).
pub fn serial(input: &LcsInput) -> u32 {
    let (n, m) = (input.a.len(), input.b.len());
    let mut prev = vec![0u32; m + 1];
    let mut cur = vec![0u32; m + 1];
    for i in 1..=n {
        for j in 1..=m {
            cur[j] = if input.a[i - 1] == input.b[j - 1] {
                prev[j - 1] + 1
            } else {
                prev[j].max(cur[j - 1])
            };
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    prev[m]
}

/// Computes one `B × B` tile of the DP table in place.
fn compute_tile<O: Observer>(
    cx: &mut Cx<O>,
    table: &mut ShadowMatrix<u32>,
    a: &ShadowArray<u8>,
    b: &ShadowArray<u8>,
    rows: std::ops::Range<usize>,
    cols: std::ops::Range<usize>,
) {
    for i in rows {
        for j in cols.clone() {
            let up = table.get(cx, i - 1, j);
            let left = table.get(cx, i, j - 1);
            let diag = table.get(cx, i - 1, j - 1);
            let value = if a.get(cx, i - 1) == b.get(cx, j - 1) {
                diag + 1
            } else {
                up.max(left)
            };
            table.set(cx, i, j, value);
        }
    }
}

fn tile_ranges(n: usize, base: usize, t: usize) -> std::ops::Range<usize> {
    let start = t * base + 1;
    let end = ((t + 1) * base).min(n) + 1;
    start..end
}

/// Shared setup: allocate the instrumented table and inputs.
fn setup<O: Observer>(
    cx: &mut Cx<O>,
    input: &LcsInput,
) -> (ShadowMatrix<u32>, ShadowArray<u8>, ShadowArray<u8>) {
    let n = input.a.len();
    let m = input.b.len();
    let table = ShadowMatrix::new(cx, n + 1, m + 1, 0u32);
    let a = ShadowArray::from_vec(cx, input.a.clone());
    let b = ShadowArray::from_vec(cx, input.b.clone());
    (table, a, b)
}

/// Structured-futures variant: anti-diagonal barriers, one future per tile.
pub fn structured<O: Observer>(cx: &mut Cx<O>, input: &LcsInput, base: usize) -> u32 {
    let n = input.a.len();
    let m = input.b.len();
    let (mut table, a, b) = setup(cx, input);
    let tiles_i = n.div_ceil(base);
    let tiles_j = m.div_ceil(base);

    for diag in 0..(tiles_i + tiles_j - 1) {
        let mut futures: Vec<FutureHandle<()>> = Vec::new();
        for ti in 0..tiles_i {
            if diag < ti {
                continue;
            }
            let tj = diag - ti;
            if tj >= tiles_j {
                continue;
            }
            let rows = tile_ranges(n, base, ti);
            let cols = tile_ranges(m, base, tj);
            let table_ref = &mut table;
            let (a_ref, b_ref) = (&a, &b);
            futures.push(cx.create_future(move |cx| {
                compute_tile(cx, table_ref, a_ref, b_ref, rows, cols);
            }));
        }
        // Barrier: consume every tile of this diagonal exactly once before
        // the next diagonal's tiles are created.
        for f in futures {
            cx.get_future(f);
        }
    }
    table.get(cx, n, m)
}

/// General-futures variant: one future per tile; each tile touches its
/// neighbours' futures (multi-touch).
pub fn general<O: Observer>(cx: &mut Cx<O>, input: &LcsInput, base: usize) -> u32 {
    let n = input.a.len();
    let m = input.b.len();
    let (mut table, a, b) = setup(cx, input);
    let tiles_i = n.div_ceil(base);
    let tiles_j = m.div_ceil(base);

    // Futures indexed by tile, created in wavefront order so every
    // dependency exists (and has executed, under eager evaluation) before
    // the tile that needs it.
    let mut futures: Vec<Vec<Option<FutureHandle<()>>>> = (0..tiles_i)
        .map(|_| (0..tiles_j).map(|_| None).collect())
        .collect();

    for diag in 0..(tiles_i + tiles_j - 1) {
        for ti in 0..tiles_i {
            if diag < ti {
                continue;
            }
            let tj = diag - ti;
            if tj >= tiles_j {
                continue;
            }
            let rows = tile_ranges(n, base, ti);
            let cols = tile_ranges(m, base, tj);
            // Take the dependency handles out, touch them inside the new
            // tile's future, then put them back (they may be needed by the
            // next wavefront and by the final collection).
            let mut up = if ti > 0 {
                futures[ti - 1][tj].take()
            } else {
                None
            };
            let mut left = if tj > 0 {
                futures[ti][tj - 1].take()
            } else {
                None
            };
            let mut diag_dep = if ti > 0 && tj > 0 {
                futures[ti - 1][tj - 1].take()
            } else {
                None
            };
            let table_ref = &mut table;
            let (a_ref, b_ref) = (&a, &b);
            let handle = {
                let (up_ref, left_ref, diag_ref) = (&mut up, &mut left, &mut diag_dep);
                cx.create_future(move |cx| {
                    if let Some(h) = up_ref.as_mut() {
                        cx.touch_future(h);
                    }
                    if let Some(h) = left_ref.as_mut() {
                        cx.touch_future(h);
                    }
                    if let Some(h) = diag_ref.as_mut() {
                        cx.touch_future(h);
                    }
                    compute_tile(cx, table_ref, a_ref, b_ref, rows, cols);
                })
            };
            if let Some(h) = up {
                futures[ti - 1][tj] = Some(h);
            }
            if let Some(h) = left {
                futures[ti][tj - 1] = Some(h);
            }
            if let Some(h) = diag_dep {
                futures[ti - 1][tj - 1] = Some(h);
            }
            futures[ti][tj] = Some(handle);
        }
    }
    // Join the final tile (its transitive dependencies cover the table).
    if let Some(mut last) = futures[tiles_i - 1][tiles_j - 1].take() {
        cx.touch_future(&mut last);
    }
    table.get(cx, n, m)
}

/// A variant with a seeded determinacy race: the diagonal dependency is not
/// joined, so reading the diagonal neighbour's cells races with their
/// writes. Used by tests to confirm detection.
pub fn structured_with_race<O: Observer>(cx: &mut Cx<O>, input: &LcsInput, base: usize) -> u32 {
    let n = input.a.len();
    let m = input.b.len();
    let (mut table, a, b) = setup(cx, input);
    let tiles = n.div_ceil(base).min(m.div_ceil(base));
    // Create the (0,0) tile and the (1,1) tile without joining (0,0):
    // the (1,1) tile reads cells written by (0,0) -> race.
    let r0 = tile_ranges(n, base, 0);
    let c0 = tile_ranges(m, base, 0);
    let f0 = {
        let table_ref = &mut table;
        let (a_ref, b_ref) = (&a, &b);
        let (r0c, c0c) = (r0.clone(), c0.clone());
        cx.create_future(move |cx| compute_tile(cx, table_ref, a_ref, b_ref, r0c, c0c))
    };
    if tiles > 1 {
        let r1 = tile_ranges(n, base, 1);
        let c1 = tile_ranges(m, base, 1);
        let table_ref = &mut table;
        let (a_ref, b_ref) = (&a, &b);
        let f1 = cx.create_future(move |cx| {
            // Reads row r1.start-1 / col c1.start-1, written by tile (0,0):
            // no join happened, so this is a determinacy race.
            compute_tile(cx, table_ref, a_ref, b_ref, r1, c1)
        });
        cx.get_future(f1);
    }
    cx.get_future(f0);
    table.get(cx, n.min(base), m.min(base))
}

/// Parallel (uninstrumented) blocked LCS on the work-stealing pool,
/// processing each anti-diagonal's tiles with a parallel scope.
pub fn parallel(pool: &ThreadPool, input: &LcsInput, base: usize) -> u32 {
    let n = input.a.len();
    let m = input.b.len();
    let mut table = vec![0u32; (n + 1) * (m + 1)];
    let width = m + 1;
    let tiles_i = n.div_ceil(base);
    let tiles_j = m.div_ceil(base);
    let a = &input.a;
    let b = &input.b;

    for diag in 0..(tiles_i + tiles_j - 1) {
        // Collect the tiles of this diagonal as disjoint row-slices of the
        // table; each tile writes only rows it owns... rows are shared
        // between tiles of the same row-range, so instead split the table
        // into per-tile temporary deltas is overkill — tiles on one
        // anti-diagonal touch disjoint (row-block, col-block) regions, so a
        // raw pointer per tile would be needed for full parallel writes.
        // Keep it simple and safe: compute each tile's cells into a local
        // buffer in parallel, then write back serially.
        let mut work: Vec<(usize, usize)> = Vec::new();
        for ti in 0..tiles_i {
            if diag >= ti && diag - ti < tiles_j {
                work.push((ti, diag - ti));
            }
        }
        let snapshot = table.clone();
        let mut results: Vec<(usize, usize, Vec<u32>)> =
            work.iter().map(|&(ti, tj)| (ti, tj, Vec::new())).collect();
        pool.scope(|s| {
            for (ti, tj, out) in results.iter_mut() {
                let snapshot = &snapshot;
                s.spawn(move || {
                    let rows = tile_ranges(n, base, *ti);
                    let cols = tile_ranges(m, base, *tj);
                    let mut local = snapshot.clone();
                    for i in rows.clone() {
                        for j in cols.clone() {
                            local[i * width + j] = if a[i - 1] == b[j - 1] {
                                local[(i - 1) * width + (j - 1)] + 1
                            } else {
                                local[(i - 1) * width + j].max(local[i * width + (j - 1)])
                            };
                        }
                    }
                    let mut collected = Vec::with_capacity(rows.len() * cols.len());
                    for i in rows {
                        for j in cols.clone() {
                            collected.push(local[i * width + j]);
                        }
                    }
                    *out = collected;
                });
            }
        });
        for (ti, tj, values) in results {
            let rows = tile_ranges(n, base, ti);
            let cols = tile_ranges(m, base, tj);
            let mut it = values.into_iter();
            for i in rows {
                for j in cols.clone() {
                    table[i * width + j] = it.next().unwrap();
                }
            }
        }
    }
    table[n * width + m]
}

#[cfg(test)]
mod tests {
    use super::*;
    use futurerd_core::detector::RaceDetector;
    use futurerd_core::reachability::{MultiBags, MultiBagsPlus};
    use futurerd_dag::NullObserver;
    use futurerd_runtime::run_program;

    fn input() -> LcsInput {
        LcsInput::generate(48, 7)
    }

    #[test]
    fn structured_matches_serial() {
        let inp = input();
        let expected = serial(&inp);
        for base in [4, 7, 16, 48, 64] {
            let (got, _, _) = run_program(NullObserver, |cx| structured(cx, &inp, base));
            assert_eq!(got, expected, "base {base}");
        }
    }

    #[test]
    fn general_matches_serial() {
        let inp = input();
        let expected = serial(&inp);
        for base in [4, 7, 16, 48] {
            let (got, _, _) = run_program(NullObserver, |cx| general(cx, &inp, base));
            assert_eq!(got, expected, "base {base}");
        }
    }

    #[test]
    fn parallel_matches_serial() {
        let inp = input();
        let pool = ThreadPool::new(4);
        assert_eq!(parallel(&pool, &inp, 8), serial(&inp));
    }

    #[test]
    fn structured_variant_is_race_free_under_multibags() {
        let inp = input();
        let (_, det, _) = run_program(RaceDetector::<MultiBags>::structured(), |cx| {
            structured(cx, &inp, 8)
        });
        assert!(det.report().is_race_free(), "{}", det.report());
    }

    #[test]
    fn general_variant_is_race_free_under_multibags_plus() {
        let inp = input();
        let (_, det, _) = run_program(RaceDetector::<MultiBagsPlus>::general(), |cx| {
            general(cx, &inp, 8)
        });
        assert!(det.report().is_race_free(), "{}", det.report());
    }

    #[test]
    fn seeded_race_is_detected() {
        let inp = input();
        let (_, det, _) = run_program(RaceDetector::<MultiBagsPlus>::general(), |cx| {
            structured_with_race(cx, &inp, 8)
        });
        assert!(!det.report().is_race_free());
    }

    #[test]
    fn future_count_scales_with_base_case() {
        let inp = input();
        let (_, _, small) = run_program(NullObserver, |cx| structured(cx, &inp, 4));
        let (_, _, large) = run_program(NullObserver, |cx| structured(cx, &inp, 16));
        assert!(small.gets > large.gets);
        assert_eq!(small.gets, small.creates);
        // (48/4)^2 = 144 tiles.
        assert_eq!(small.creates, 144);
    }

    #[test]
    fn general_variant_has_more_gets_than_structured() {
        let inp = input();
        let (_, _, s) = run_program(NullObserver, |cx| structured(cx, &inp, 8));
        let (_, _, g) = run_program(NullObserver, |cx| general(cx, &inp, 8));
        assert!(g.gets > s.gets);
    }

    #[test]
    fn deterministic_input_generation() {
        let a = LcsInput::generate(32, 1);
        let b = LcsInput::generate(32, 1);
        let c = LcsInput::generate(32, 2);
        assert_eq!(a.a, b.a);
        assert_ne!(a.a, c.a);
        assert_eq!(a.len(), 32);
        assert!(!a.is_empty());
    }
}
