//! Binary tree / ordered-set merge (`bst`), after Blelloch & Reid-Miller's
//! "Pipelining with futures" (SPAA 1997).
//!
//! Two sorted key sets are merged by divide and conquer: split the first
//! set at its median, binary-search the split key in the second set, and
//! merge the two halves independently. Each half writes a *disjoint*,
//! precomputed range of the output, so the computation is determinacy-race
//! free while exposing abundant parallelism with very little work per task
//! — exactly the property the paper highlights for `bst` ("very little work
//! per parallel construct"), which makes the reachability overhead visible.
//!
//! * **Structured**: each recursive call creates futures for its two halves
//!   and consumes both before returning (single touch).
//! * **General**: the recursion additionally *pipelines*: the future for a
//!   half is touched a second time by a downstream consumer (a checksum
//!   pass) that walks the output ranges as they become available —
//!   multi-touch futures, the use case Blelloch & Reid-Miller's pipelining
//!   is about.

use futurerd_dag::Observer;
use futurerd_runtime::exec::FutureHandle;
use futurerd_runtime::{Cx, ShadowArray, ThreadPool};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Input: two sorted, duplicate-free key sequences.
#[derive(Debug, Clone)]
pub struct BstInput {
    /// First sorted set.
    pub a: Vec<u64>,
    /// Second sorted set.
    pub b: Vec<u64>,
}

impl BstInput {
    /// Generates two sorted random key sets of sizes `n_a` and `n_b`.
    pub fn generate(n_a: usize, n_b: usize, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut gen_sorted = |n: usize| {
            let mut v: Vec<u64> = (0..n).map(|_| rng.gen_range(0..u64::MAX / 2)).collect();
            v.sort_unstable();
            v.dedup();
            v
        };
        Self {
            a: gen_sorted(n_a),
            b: gen_sorted(n_b),
        }
    }

    /// Total number of keys.
    pub fn total(&self) -> usize {
        self.a.len() + self.b.len()
    }
}

/// Serial reference merge.
pub fn serial(input: &BstInput) -> Vec<u64> {
    let mut out = Vec::with_capacity(input.total());
    let (mut i, mut j) = (0, 0);
    while i < input.a.len() && j < input.b.len() {
        if input.a[i] <= input.b[j] {
            out.push(input.a[i]);
            i += 1;
        } else {
            out.push(input.b[j]);
            j += 1;
        }
    }
    out.extend_from_slice(&input.a[i..]);
    out.extend_from_slice(&input.b[j..]);
    out
}

/// Checksum of a merged sequence.
pub fn checksum(keys: &[u64]) -> u64 {
    keys.iter().enumerate().fold(0u64, |acc, (i, &k)| {
        acc.wrapping_add(k.rotate_left((i % 63) as u32))
    })
}

/// Sequentially (and instrumented) merges `a[ar]` and `b[br]` into
/// `out[start..]`.
fn merge_base<O: Observer>(
    cx: &mut Cx<O>,
    a: &ShadowArray<u64>,
    b: &ShadowArray<u64>,
    out: &mut ShadowArray<u64>,
    ar: std::ops::Range<usize>,
    br: std::ops::Range<usize>,
    start: usize,
) {
    let (mut i, mut j, mut o) = (ar.start, br.start, start);
    while i < ar.end && j < br.end {
        let x = a.get(cx, i);
        let y = b.get(cx, j);
        if x <= y {
            out.set(cx, o, x);
            i += 1;
        } else {
            out.set(cx, o, y);
            j += 1;
        }
        o += 1;
    }
    while i < ar.end {
        let x = a.get(cx, i);
        out.set(cx, o, x);
        i += 1;
        o += 1;
    }
    while j < br.end {
        let y = b.get(cx, j);
        out.set(cx, o, y);
        j += 1;
        o += 1;
    }
}

/// Binary search (instrumented reads) for the first index in `b[br]` whose
/// key is `>= key`.
fn lower_bound<O: Observer>(
    cx: &mut Cx<O>,
    b: &ShadowArray<u64>,
    br: std::ops::Range<usize>,
    key: u64,
) -> usize {
    let (mut lo, mut hi) = (br.start, br.end);
    while lo < hi {
        let mid = lo + (hi - lo) / 2;
        if b.get(cx, mid) < key {
            lo = mid + 1;
        } else {
            hi = mid;
        }
    }
    lo
}

/// How the recursive halves are joined.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Mode {
    /// Single-touch futures consumed by the parent.
    Structured,
    /// Futures stored for a second (pipelined) touch by the consumer pass.
    General,
}

#[allow(clippy::too_many_arguments)]
fn merge_rec<O: Observer>(
    cx: &mut Cx<O>,
    a: &ShadowArray<u64>,
    b: &ShadowArray<u64>,
    out: &mut ShadowArray<u64>,
    ar: std::ops::Range<usize>,
    br: std::ops::Range<usize>,
    start: usize,
    base: usize,
    mode: Mode,
    pipeline: &mut Vec<(usize, usize, FutureHandle<()>)>,
) {
    if ar.len() + br.len() <= base || ar.is_empty() || br.is_empty() {
        merge_base(cx, a, b, out, ar, br, start);
        return;
    }
    let mid = ar.start + ar.len() / 2;
    let pivot = a.get(cx, mid);
    let split = lower_bound(cx, b, br.clone(), pivot);
    let left_len = (mid - ar.start) + (split - br.start);

    // Left half: [ar.start, mid) x [br.start, split) -> out[start..]
    // Right half: [mid, ar.end) x [split, br.end)   -> out[start+left_len..]
    let (ar_l, ar_r) = (ar.start..mid, mid..ar.end);
    let (br_l, br_r) = (br.start..split, split..br.end);

    let mut left_pipeline = Vec::new();
    let mut right_pipeline = Vec::new();
    let mut left = {
        let out_ref = &mut *out;
        let (arl, brl) = (ar_l.clone(), br_l.clone());
        let lp = &mut left_pipeline;
        cx.create_future(move |cx| merge_rec(cx, a, b, out_ref, arl, brl, start, base, mode, lp))
    };
    let mut right = {
        let out_ref = &mut *out;
        let (arr, brr) = (ar_r.clone(), br_r.clone());
        let rp = &mut right_pipeline;
        cx.create_future(move |cx| {
            merge_rec(
                cx,
                a,
                b,
                out_ref,
                arr,
                brr,
                start + left_len,
                base,
                mode,
                rp,
            )
        })
    };
    match mode {
        Mode::Structured => {
            cx.get_future(left);
            cx.get_future(right);
        }
        Mode::General => {
            // Join the halves here (first touch) and also hand them to the
            // downstream pipeline, which touches them a second time before
            // consuming their output range — multi-touch futures.
            cx.touch_future(&mut left);
            cx.touch_future(&mut right);
            pipeline.push((start, left_len, left));
            pipeline.push((start + left_len, ar_r.len() + br_r.len(), right));
        }
    }
    pipeline.append(&mut left_pipeline);
    pipeline.append(&mut right_pipeline);
}

fn setup<O: Observer>(
    cx: &mut Cx<O>,
    input: &BstInput,
) -> (ShadowArray<u64>, ShadowArray<u64>, ShadowArray<u64>) {
    let a = ShadowArray::from_vec(cx, input.a.clone());
    let b = ShadowArray::from_vec(cx, input.b.clone());
    let out = ShadowArray::new(cx, input.total(), 0u64);
    (a, b, out)
}

/// Structured-futures merge; returns the checksum of the merged output.
pub fn structured<O: Observer>(cx: &mut Cx<O>, input: &BstInput, base: usize) -> u64 {
    let (a, b, mut out) = setup(cx, input);
    let (ar, br) = (0..a.len(), 0..b.len());
    let mut pipeline = Vec::new();
    merge_rec(
        cx,
        &a,
        &b,
        &mut out,
        ar,
        br,
        0,
        base,
        Mode::Structured,
        &mut pipeline,
    );
    debug_assert!(pipeline.is_empty());
    checksum(out.raw())
}

/// General-futures merge with a pipelined checksum consumer; returns the
/// checksum.
pub fn general<O: Observer>(cx: &mut Cx<O>, input: &BstInput, base: usize) -> u64 {
    let (a, b, mut out) = setup(cx, input);
    let (ar, br) = (0..a.len(), 0..b.len());
    let mut pipeline = Vec::new();
    let root = {
        let out_ref = &mut out;
        let p = &mut pipeline;
        let (a_ref, b_ref) = (&a, &b);
        let (arc, brc) = (ar.clone(), br.clone());
        cx.create_future(move |cx| {
            let mut inner = Vec::new();
            merge_rec(
                cx,
                a_ref,
                b_ref,
                out_ref,
                arc,
                brc,
                0,
                base,
                Mode::General,
                &mut inner,
            );
            p.append(&mut inner);
        })
    };
    // Pipelined consumer: each produced range's future is touched a second
    // time and its slice of the output read (the downstream stage of
    // Blelloch & Reid-Miller-style pipelining).
    let mut consumed = 0u64;
    for (start, len, mut fut) in std::mem::take(&mut pipeline) {
        cx.touch_future(&mut fut);
        for i in start..start + len {
            consumed = consumed.wrapping_add(out.get(cx, i));
        }
    }
    cx.get_future(root);
    // `consumed` double-counts nested ranges by design (every pipeline stage
    // reads its whole range); the caller-visible result is the canonical
    // checksum of the merged output.
    std::hint::black_box(consumed);
    checksum(out.raw())
}

/// Parallel (uninstrumented) merge on the work-stealing pool.
pub fn parallel(pool: &ThreadPool, input: &BstInput, base: usize) -> u64 {
    fn rec(pool: &ThreadPool, a: &[u64], b: &[u64], out: &mut [u64], base: usize) {
        if a.len() + b.len() <= base || a.is_empty() || b.is_empty() {
            let (mut i, mut j, mut o) = (0, 0, 0);
            while i < a.len() && j < b.len() {
                if a[i] <= b[j] {
                    out[o] = a[i];
                    i += 1;
                } else {
                    out[o] = b[j];
                    j += 1;
                }
                o += 1;
            }
            out[o..o + a.len() - i].copy_from_slice(&a[i..]);
            out[o + a.len() - i..].copy_from_slice(&b[j..]);
            return;
        }
        let mid = a.len() / 2;
        let pivot = a[mid];
        let split = b.partition_point(|&x| x < pivot);
        let left_len = mid + split;
        let (a_l, a_r) = a.split_at(mid);
        let (b_l, b_r) = b.split_at(split);
        let (out_l, out_r) = out.split_at_mut(left_len);
        pool.join(
            || rec(pool, a_l, b_l, out_l, base),
            || rec(pool, a_r, b_r, out_r, base),
        );
    }
    let mut out = vec![0u64; input.total()];
    pool.install(|| rec(pool, &input.a, &input.b, &mut out, base));
    checksum(&out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use futurerd_core::detector::RaceDetector;
    use futurerd_core::reachability::{MultiBags, MultiBagsPlus};
    use futurerd_dag::NullObserver;
    use futurerd_runtime::run_program;

    fn input() -> BstInput {
        BstInput::generate(300, 200, 13)
    }

    #[test]
    fn structured_matches_serial() {
        let inp = input();
        let expected = checksum(&serial(&inp));
        for base in [8, 32, 1024] {
            let (got, _, _) = run_program(NullObserver, |cx| structured(cx, &inp, base));
            assert_eq!(got, expected, "base {base}");
        }
    }

    #[test]
    fn general_matches_serial() {
        let inp = input();
        let expected = checksum(&serial(&inp));
        let (got, _, _) = run_program(NullObserver, |cx| general(cx, &inp, 16));
        assert_eq!(got, expected);
    }

    #[test]
    fn parallel_matches_serial() {
        let inp = input();
        let pool = ThreadPool::new(4);
        assert_eq!(parallel(&pool, &inp, 16), checksum(&serial(&inp)));
    }

    #[test]
    fn merged_output_is_sorted() {
        let inp = input();
        let merged = serial(&inp);
        assert!(merged.windows(2).all(|w| w[0] <= w[1]));
        assert_eq!(merged.len(), inp.total());
    }

    #[test]
    fn structured_variant_is_race_free() {
        let inp = BstInput::generate(120, 90, 3);
        let (_, det, _) = run_program(RaceDetector::<MultiBags>::structured(), |cx| {
            structured(cx, &inp, 16)
        });
        assert!(det.report().is_race_free(), "{}", det.report());
    }

    #[test]
    fn general_variant_is_race_free() {
        let inp = BstInput::generate(120, 90, 3);
        let (_, det, _) = run_program(RaceDetector::<MultiBagsPlus>::general(), |cx| {
            general(cx, &inp, 16)
        });
        assert!(det.report().is_race_free(), "{}", det.report());
    }

    #[test]
    fn little_work_per_construct() {
        // bst's defining property in the paper: the ratio of memory accesses
        // to parallel constructs is small compared with the dense kernels.
        let inp = input();
        let (_, _, s) = run_program(NullObserver, |cx| structured(cx, &inp, 8));
        let per_construct = s.accesses() as f64 / s.parallel_constructs() as f64;
        assert!(
            per_construct < 200.0,
            "accesses per construct: {per_construct}"
        );
    }
}
