//! Benchmark workloads from the PPoPP 2019 evaluation of FutureRD.
//!
//! Six benchmarks, each in a *structured*-futures and a *general*-futures
//! variant, written against the `futurerd-runtime` execution context so the
//! same code runs under every detector configuration:
//!
//! | Benchmark | Paper description | Here |
//! |---|---|---|
//! | [`lcs`] | longest common subsequence, Θ(n²) work, `(n/B)²` futures | blocked wavefront DP |
//! | [`sw`] | Smith–Waterman with general gap penalty, Θ(n³) work, `(n/B)²` futures | blocked wavefront DP with row/column scans |
//! | [`mm`] | matrix multiplication without temporaries, Θ(n³) work, `(n/B)³` futures | blocked k-round accumulation |
//! | [`bst`] | binary tree merge (Blelloch & Reid-Miller pipelining) | divide-and-conquer ordered merge with futures |
//! | [`heartwall`] | Rodinia heart-wall tracking (10 ultrasound frames) | synthetic per-frame point tracker with the same cross-frame dependence structure |
//! | [`dedup`] | PARSEC dedup pipeline (fragment, dedup, compress, reorder) | synthetic chunk pipeline with a serialized dedup stage |
//!
//! `heartwall` and `dedup` replace proprietary/packaged inputs with
//! synthetically generated data of the same shape (see `DESIGN.md`,
//! "Substitutions"); the dependence structure — which is what the race
//! detector's overhead depends on — is preserved.
//!
//! Every workload provides:
//!
//! * an input generator (deterministic from a seed),
//! * a serial reference implementation used to verify results,
//! * `structured`/`general` variants running on the instrumented executor,
//! * for the divide-and-conquer benchmarks, a `parallel` variant on the
//!   work-stealing pool demonstrating the same decomposition running
//!   multithreaded,
//! * a "seeded race" variant used by tests to confirm the detectors flag
//!   injected races.
//!
//! ## Quick start
//!
//! Run any workload through the uniform [`harness`] entry point; the result
//! checksum is identical across variants and detector configurations:
//!
//! ```
//! use futurerd_dag::NullObserver;
//! use futurerd_workloads::{
//!     reference_checksum, run_workload, FutureMode, WorkloadKind, WorkloadParams,
//! };
//!
//! let params = WorkloadParams::tiny();
//! let (_, result) = run_workload(WorkloadKind::Lcs, FutureMode::Structured, &params, NullObserver);
//! assert_eq!(result.checksum, reference_checksum(WorkloadKind::Lcs, &params));
//! assert!(result.summary.creates > 0); // futures were created
//! ```
//!
//! To race detect a workload, pass a detector from `futurerd-core` (or use
//! the `futurerd` facade) instead of the [`NullObserver`](futurerd_dag::NullObserver).

#![warn(missing_docs)]

pub mod bst;
pub mod dedup;
pub mod fuzzgen;
pub mod harness;
pub mod heartwall;
pub mod lcs;
pub mod mm;
pub mod sw;

pub use harness::{
    reference_checksum, run_workload, FutureMode, WorkloadKind, WorkloadParams, WorkloadResult,
};
