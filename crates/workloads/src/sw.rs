//! Smith–Waterman local alignment with a general gap penalty (`sw`).
//!
//! The Θ(n³)-work variant evaluated in the paper: cell `(i, j)` takes the
//! maximum over the diagonal predecessor plus the substitution score and
//! over *every* cell above it in its column and to its left in its row,
//! each minus an affine gap penalty. Blocked into `B × B` tiles with the
//! same wavefront dependence structure as `lcs`, but far more work per cell
//! — which is why the paper observes that shrinking the base case barely
//! affects `sw` (work dominates the extra future overhead).
//!
//! Variants mirror `lcs`: structured (anti-diagonal barriers, single-touch
//! futures) and general (neighbour futures touched directly, multi-touch).

use futurerd_dag::Observer;
use futurerd_runtime::exec::FutureHandle;
use futurerd_runtime::{Cx, ShadowArray, ShadowMatrix};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Scoring parameters for the alignment.
#[derive(Debug, Clone, Copy)]
pub struct SwParams {
    /// Score added when the two symbols match.
    pub match_score: i64,
    /// Score added (typically negative) when they differ.
    pub mismatch: i64,
    /// Gap-open penalty (subtracted).
    pub gap_open: i64,
    /// Gap-extend penalty per additional position (subtracted).
    pub gap_extend: i64,
}

impl Default for SwParams {
    fn default() -> Self {
        Self {
            match_score: 3,
            mismatch: -2,
            gap_open: 4,
            gap_extend: 1,
        }
    }
}

/// Input sequences.
#[derive(Debug, Clone)]
pub struct SwInput {
    /// First sequence.
    pub a: Vec<u8>,
    /// Second sequence.
    pub b: Vec<u8>,
    /// Scoring parameters.
    pub params: SwParams,
}

impl SwInput {
    /// Generates two random sequences of length `n`.
    pub fn generate(n: usize, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        Self {
            a: (0..n).map(|_| rng.gen_range(b'a'..b'e')).collect(),
            b: (0..n).map(|_| rng.gen_range(b'a'..b'e')).collect(),
            params: SwParams::default(),
        }
    }

    /// Sequence length.
    pub fn len(&self) -> usize {
        self.a.len()
    }

    /// True if the sequences are empty.
    pub fn is_empty(&self) -> bool {
        self.a.is_empty()
    }
}

fn substitution(p: &SwParams, x: u8, y: u8) -> i64 {
    if x == y {
        p.match_score
    } else {
        p.mismatch
    }
}

fn gap(p: &SwParams, len: usize) -> i64 {
    p.gap_open + p.gap_extend * len as i64
}

/// Serial reference implementation. Returns the maximum cell value (the
/// local alignment score).
pub fn serial(input: &SwInput) -> i64 {
    let (n, m) = (input.a.len(), input.b.len());
    let p = &input.params;
    let w = m + 1;
    let mut h = vec![0i64; (n + 1) * w];
    let mut best = 0;
    for i in 1..=n {
        for j in 1..=m {
            let mut v = h[(i - 1) * w + j - 1] + substitution(p, input.a[i - 1], input.b[j - 1]);
            for k in 1..=i {
                v = v.max(h[(i - k) * w + j] - gap(p, k));
            }
            for l in 1..=j {
                v = v.max(h[i * w + j - l] - gap(p, l));
            }
            v = v.max(0);
            h[i * w + j] = v;
            best = best.max(v);
        }
    }
    best
}

/// Computes one tile; every cell scans its whole column above and row to the
/// left (Θ(n) work per cell).
fn compute_tile<O: Observer>(
    cx: &mut Cx<O>,
    h: &mut ShadowMatrix<i64>,
    a: &ShadowArray<u8>,
    b: &ShadowArray<u8>,
    p: SwParams,
    rows: std::ops::Range<usize>,
    cols: std::ops::Range<usize>,
) -> i64 {
    let mut best = 0i64;
    for i in rows {
        for j in cols.clone() {
            let ai = a.get(cx, i - 1);
            let bj = b.get(cx, j - 1);
            let mut v = h.get(cx, i - 1, j - 1) + substitution(&p, ai, bj);
            for k in 1..=i {
                v = v.max(h.get(cx, i - k, j) - gap(&p, k));
            }
            for l in 1..=j {
                v = v.max(h.get(cx, i, j - l) - gap(&p, l));
            }
            v = v.max(0);
            h.set(cx, i, j, v);
            best = best.max(v);
        }
    }
    best
}

fn tile_range(n: usize, base: usize, t: usize) -> std::ops::Range<usize> {
    (t * base + 1)..(((t + 1) * base).min(n) + 1)
}

/// Structured-futures variant (anti-diagonal barriers). Returns the
/// alignment score.
pub fn structured<O: Observer>(cx: &mut Cx<O>, input: &SwInput, base: usize) -> i64 {
    let (n, m) = (input.a.len(), input.b.len());
    let p = input.params;
    let mut h = ShadowMatrix::new(cx, n + 1, m + 1, 0i64);
    let a = ShadowArray::from_vec(cx, input.a.clone());
    let b = ShadowArray::from_vec(cx, input.b.clone());
    let (ti_max, tj_max) = (n.div_ceil(base), m.div_ceil(base));
    let mut best = 0i64;
    for diag in 0..(ti_max + tj_max - 1) {
        let mut futures: Vec<FutureHandle<i64>> = Vec::new();
        for ti in 0..ti_max {
            if diag < ti || diag - ti >= tj_max {
                continue;
            }
            let tj = diag - ti;
            let rows = tile_range(n, base, ti);
            let cols = tile_range(m, base, tj);
            let h_ref = &mut h;
            let (a_ref, b_ref) = (&a, &b);
            futures.push(
                cx.create_future(move |cx| compute_tile(cx, h_ref, a_ref, b_ref, p, rows, cols)),
            );
        }
        for f in futures {
            best = best.max(cx.get_future(f));
        }
    }
    best
}

/// General-futures variant: one future per tile touching its neighbours'
/// futures directly (multi-touch).
pub fn general<O: Observer>(cx: &mut Cx<O>, input: &SwInput, base: usize) -> i64 {
    let (n, m) = (input.a.len(), input.b.len());
    let p = input.params;
    let mut h = ShadowMatrix::new(cx, n + 1, m + 1, 0i64);
    let a = ShadowArray::from_vec(cx, input.a.clone());
    let b = ShadowArray::from_vec(cx, input.b.clone());
    let (ti_max, tj_max) = (n.div_ceil(base), m.div_ceil(base));
    let mut futures: Vec<Vec<Option<FutureHandle<i64>>>> = (0..ti_max)
        .map(|_| (0..tj_max).map(|_| None).collect())
        .collect();

    for diag in 0..(ti_max + tj_max - 1) {
        for ti in 0..ti_max {
            if diag < ti || diag - ti >= tj_max {
                continue;
            }
            let tj = diag - ti;
            let rows = tile_range(n, base, ti);
            let cols = tile_range(m, base, tj);
            // For the Θ(n³) recurrence a tile depends on *every* tile above
            // it and to its left; touching the immediate up/left/diagonal
            // neighbours is sufficient for correctness of the dependence dag
            // (their own dependencies are transitive).
            let mut up = if ti > 0 {
                futures[ti - 1][tj].take()
            } else {
                None
            };
            let mut left = if tj > 0 {
                futures[ti][tj - 1].take()
            } else {
                None
            };
            let mut dg = if ti > 0 && tj > 0 {
                futures[ti - 1][tj - 1].take()
            } else {
                None
            };
            let h_ref = &mut h;
            let (a_ref, b_ref) = (&a, &b);
            let handle = {
                let (u, l, d) = (&mut up, &mut left, &mut dg);
                cx.create_future(move |cx| {
                    let mut best = 0i64;
                    if let Some(x) = u.as_mut() {
                        best = best.max(cx.touch_future(x));
                    }
                    if let Some(x) = l.as_mut() {
                        best = best.max(cx.touch_future(x));
                    }
                    if let Some(x) = d.as_mut() {
                        best = best.max(cx.touch_future(x));
                    }
                    best.max(compute_tile(cx, h_ref, a_ref, b_ref, p, rows, cols))
                })
            };
            if let Some(x) = up {
                futures[ti - 1][tj] = Some(x);
            }
            if let Some(x) = left {
                futures[ti][tj - 1] = Some(x);
            }
            if let Some(x) = dg {
                futures[ti - 1][tj - 1] = Some(x);
            }
            futures[ti][tj] = Some(handle);
        }
    }
    let mut last = futures[ti_max - 1][tj_max - 1]
        .take()
        .expect("final tile exists");
    cx.touch_future(&mut last)
}

#[cfg(test)]
mod tests {
    use super::*;
    use futurerd_core::detector::RaceDetector;
    use futurerd_core::reachability::MultiBagsPlus;
    use futurerd_dag::NullObserver;
    use futurerd_runtime::run_program;

    fn input() -> SwInput {
        SwInput::generate(28, 11)
    }

    #[test]
    fn structured_matches_serial() {
        let inp = input();
        let expected = serial(&inp);
        for base in [4, 7, 28] {
            let (got, _, _) = run_program(NullObserver, |cx| structured(cx, &inp, base));
            assert_eq!(got, expected, "base {base}");
        }
    }

    #[test]
    fn general_matches_serial() {
        let inp = input();
        let expected = serial(&inp);
        let (got, _, _) = run_program(NullObserver, |cx| general(cx, &inp, 5));
        assert_eq!(got, expected);
    }

    #[test]
    fn score_is_nonnegative_and_identical_sequences_score_high() {
        let mut inp = input();
        inp.b = inp.a.clone();
        let score = serial(&inp);
        assert_eq!(score, inp.params.match_score * inp.a.len() as i64);
    }

    #[test]
    fn both_variants_are_race_free() {
        let inp = input();
        let (_, det, _) = run_program(RaceDetector::<MultiBagsPlus>::general(), |cx| {
            structured(cx, &inp, 7)
        });
        assert!(det.report().is_race_free(), "{}", det.report());
        let (_, det, _) = run_program(RaceDetector::<MultiBagsPlus>::general(), |cx| {
            general(cx, &inp, 7)
        });
        assert!(det.report().is_race_free(), "{}", det.report());
    }

    #[test]
    fn work_grows_cubically_with_n() {
        let small = SwInput::generate(16, 3);
        let large = SwInput::generate(32, 3);
        let (_, _, s) = run_program(NullObserver, |cx| structured(cx, &small, 8));
        let (_, _, l) = run_program(NullObserver, |cx| structured(cx, &large, 8));
        // Doubling n should multiply the number of reads by roughly 8 (Θ(n³)).
        assert!(l.reads > 5 * s.reads, "small={} large={}", s.reads, l.reads);
    }
}
