//! A uniform entry point over all workloads, used by the benchmark harness
//! and the integration tests.

use crate::{bst, dedup, heartwall, lcs, mm, sw};
use futurerd_dag::Observer;
use futurerd_runtime::exec::ExecutionSummary;
use futurerd_runtime::run_program;

/// Which benchmark to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum WorkloadKind {
    /// Longest common subsequence.
    Lcs,
    /// Smith–Waterman.
    Sw,
    /// Matrix multiplication without temporaries.
    Mm,
    /// Binary tree / ordered-set merge.
    Bst,
    /// Heart-wall tracking (synthetic frames).
    Heartwall,
    /// Dedup compression pipeline (synthetic stream).
    Dedup,
}

impl WorkloadKind {
    /// All benchmarks, in the order the paper's tables list them.
    pub const ALL: [WorkloadKind; 6] = [
        WorkloadKind::Lcs,
        WorkloadKind::Sw,
        WorkloadKind::Mm,
        WorkloadKind::Heartwall,
        WorkloadKind::Dedup,
        WorkloadKind::Bst,
    ];

    /// The benchmark's name as used in the paper.
    pub fn name(self) -> &'static str {
        match self {
            WorkloadKind::Lcs => "lcs",
            WorkloadKind::Sw => "sw",
            WorkloadKind::Mm => "mm",
            WorkloadKind::Bst => "bst",
            WorkloadKind::Heartwall => "heartwall",
            WorkloadKind::Dedup => "dedup",
        }
    }
}

impl std::fmt::Display for WorkloadKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Which futures variant of a workload to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FutureMode {
    /// Structured (single-touch) futures — the MultiBags use case.
    Structured,
    /// General (multi-touch) futures — the MultiBags+ use case.
    General,
}

impl std::fmt::Display for FutureMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            FutureMode::Structured => "structured",
            FutureMode::General => "general",
        })
    }
}

/// Problem-size parameters. The defaults are scaled-down versions of the
/// paper's inputs (which target minutes-long native runs); the benchmark
/// harness scales them up or down via environment variables.
#[derive(Debug, Clone, Copy)]
pub struct WorkloadParams {
    /// Sequence length (lcs, sw) or matrix dimension (mm).
    pub n: usize,
    /// Tile/base-case size for the blocked kernels.
    pub base: usize,
    /// Tree sizes for bst (the paper uses 8e6 / 4e6).
    pub bst_sizes: (usize, usize),
    /// Frames and points for heartwall (the paper uses 10 frames).
    pub heartwall: (usize, usize, usize),
    /// Chunks and chunk size for dedup.
    pub dedup: (usize, usize),
    /// Input-generation seed.
    pub seed: u64,
}

impl Default for WorkloadParams {
    fn default() -> Self {
        Self {
            n: 128,
            base: 16,
            bst_sizes: (4000, 2000),
            heartwall: (10, 16, 64),
            dedup: (64, 256),
            seed: 0x5eed,
        }
    }
}

impl WorkloadParams {
    /// Parameters sized for fast unit/integration tests.
    pub fn tiny() -> Self {
        Self {
            n: 32,
            base: 8,
            bst_sizes: (300, 200),
            heartwall: (3, 6, 32),
            dedup: (16, 64),
            seed: 0x5eed,
        }
    }

    /// Returns a copy with a different blocked-kernel base case (used by the
    /// Figure 8 sweep).
    pub fn with_base(mut self, base: usize) -> Self {
        self.base = base;
        self
    }

    /// Returns a copy with a different problem size.
    pub fn with_n(mut self, n: usize) -> Self {
        self.n = n;
        self
    }
}

/// Result of running one workload once.
#[derive(Debug, Clone, Copy)]
pub struct WorkloadResult {
    /// A checksum of the computed output (same value across variants and
    /// detector configurations for a given input).
    pub checksum: u64,
    /// Execution counters (strands, futures, memory accesses, ...).
    pub summary: ExecutionSummary,
}

/// Runs `kind` in `mode` with the given parameters under `observer`,
/// returning the observer (e.g. a detector with its race report) and the
/// result.
pub fn run_workload<O: Observer>(
    kind: WorkloadKind,
    mode: FutureMode,
    params: &WorkloadParams,
    observer: O,
) -> (O, WorkloadResult) {
    let (checksum, obs, summary) = match (kind, mode) {
        (WorkloadKind::Lcs, FutureMode::Structured) => {
            let input = lcs::LcsInput::generate(params.n, params.seed);
            let (v, o, s) = run_program(observer, |cx| lcs::structured(cx, &input, params.base));
            (v as u64, o, s)
        }
        (WorkloadKind::Lcs, FutureMode::General) => {
            let input = lcs::LcsInput::generate(params.n, params.seed);
            let (v, o, s) = run_program(observer, |cx| lcs::general(cx, &input, params.base));
            (v as u64, o, s)
        }
        (WorkloadKind::Sw, FutureMode::Structured) => {
            let input = sw::SwInput::generate(params.n, params.seed);
            let (v, o, s) = run_program(observer, |cx| sw::structured(cx, &input, params.base));
            (v as u64, o, s)
        }
        (WorkloadKind::Sw, FutureMode::General) => {
            let input = sw::SwInput::generate(params.n, params.seed);
            let (v, o, s) = run_program(observer, |cx| sw::general(cx, &input, params.base));
            (v as u64, o, s)
        }
        (WorkloadKind::Mm, FutureMode::Structured) => {
            let input = mm::MmInput::generate(params.n, params.seed);
            let (v, o, s) = run_program(observer, |cx| mm::structured(cx, &input, params.base));
            (v, o, s)
        }
        (WorkloadKind::Mm, FutureMode::General) => {
            let input = mm::MmInput::generate(params.n, params.seed);
            let (v, o, s) = run_program(observer, |cx| mm::general(cx, &input, params.base));
            (v, o, s)
        }
        (WorkloadKind::Bst, FutureMode::Structured) => {
            let input =
                bst::BstInput::generate(params.bst_sizes.0, params.bst_sizes.1, params.seed);
            let (v, o, s) = run_program(observer, |cx| bst::structured(cx, &input, params.base));
            (v, o, s)
        }
        (WorkloadKind::Bst, FutureMode::General) => {
            let input =
                bst::BstInput::generate(params.bst_sizes.0, params.bst_sizes.1, params.seed);
            let (v, o, s) = run_program(observer, |cx| bst::general(cx, &input, params.base));
            (v, o, s)
        }
        (WorkloadKind::Heartwall, FutureMode::Structured) => {
            let (frames, points, dim) = params.heartwall;
            let input = heartwall::HeartwallInput::generate(frames, points, dim, params.seed);
            let (v, o, s) = run_program(observer, |cx| heartwall::structured(cx, &input));
            (v, o, s)
        }
        (WorkloadKind::Heartwall, FutureMode::General) => {
            let (frames, points, dim) = params.heartwall;
            let input = heartwall::HeartwallInput::generate(frames, points, dim, params.seed);
            let (v, o, s) = run_program(observer, |cx| heartwall::general(cx, &input));
            (v, o, s)
        }
        (WorkloadKind::Dedup, FutureMode::Structured) => {
            let input = dedup::DedupInput::generate(params.dedup.0, params.dedup.1, params.seed);
            let (v, o, s) = run_program(observer, |cx| dedup::structured(cx, &input));
            (v, o, s)
        }
        (WorkloadKind::Dedup, FutureMode::General) => {
            let input = dedup::DedupInput::generate(params.dedup.0, params.dedup.1, params.seed);
            let (v, o, s) = run_program(observer, |cx| dedup::general(cx, &input));
            (v, o, s)
        }
    };
    (obs, WorkloadResult { checksum, summary })
}

/// The serial (uninstrumented) reference checksum for a workload/parameters
/// pair; used to verify results under every detector configuration.
pub fn reference_checksum(kind: WorkloadKind, params: &WorkloadParams) -> u64 {
    match kind {
        WorkloadKind::Lcs => lcs::serial(&lcs::LcsInput::generate(params.n, params.seed)) as u64,
        WorkloadKind::Sw => sw::serial(&sw::SwInput::generate(params.n, params.seed)) as u64,
        WorkloadKind::Mm => {
            mm::checksum(&mm::serial(&mm::MmInput::generate(params.n, params.seed)))
        }
        WorkloadKind::Bst => bst::checksum(&bst::serial(&bst::BstInput::generate(
            params.bst_sizes.0,
            params.bst_sizes.1,
            params.seed,
        ))),
        WorkloadKind::Heartwall => {
            let (frames, points, dim) = params.heartwall;
            heartwall::serial(&heartwall::HeartwallInput::generate(
                frames,
                points,
                dim,
                params.seed,
            ))
        }
        WorkloadKind::Dedup => dedup::serial(&dedup::DedupInput::generate(
            params.dedup.0,
            params.dedup.1,
            params.seed,
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use futurerd_core::detector::RaceDetector;
    use futurerd_core::reachability::{GraphOracle, MultiBags, MultiBagsPlus};
    use futurerd_dag::NullObserver;

    #[test]
    fn every_workload_and_mode_matches_the_reference() {
        let params = WorkloadParams::tiny();
        for kind in WorkloadKind::ALL {
            let expected = reference_checksum(kind, &params);
            for mode in [FutureMode::Structured, FutureMode::General] {
                let (_, result) = run_workload(kind, mode, &params, NullObserver);
                assert_eq!(result.checksum, expected, "{kind} {mode}");
            }
        }
    }

    #[test]
    fn every_workload_is_race_free_under_its_designated_detector() {
        let params = WorkloadParams::tiny();
        for kind in WorkloadKind::ALL {
            let (det, _) = run_workload(
                kind,
                FutureMode::Structured,
                &params,
                RaceDetector::<MultiBags>::structured(),
            );
            assert!(
                det.report().is_race_free(),
                "{kind} structured: {}",
                det.report()
            );
            let (det, _) = run_workload(
                kind,
                FutureMode::General,
                &params,
                RaceDetector::<MultiBagsPlus>::general(),
            );
            assert!(
                det.report().is_race_free(),
                "{kind} general: {}",
                det.report()
            );
        }
    }

    #[test]
    fn detectors_agree_with_the_oracle_on_every_workload() {
        let params = WorkloadParams::tiny();
        for kind in WorkloadKind::ALL {
            for mode in [FutureMode::Structured, FutureMode::General] {
                let (oracle_det, _) =
                    run_workload(kind, mode, &params, RaceDetector::new(GraphOracle::new()));
                let (mbp_det, _) = run_workload(kind, mode, &params, RaceDetector::general());
                assert_eq!(
                    oracle_det.report().race_count(),
                    mbp_det.report().race_count(),
                    "{kind} {mode}"
                );
            }
        }
    }

    #[test]
    fn general_mode_always_uses_more_gets() {
        let params = WorkloadParams::tiny();
        for kind in WorkloadKind::ALL {
            let (_, s) = run_workload(kind, FutureMode::Structured, &params, NullObserver);
            let (_, g) = run_workload(kind, FutureMode::General, &params, NullObserver);
            assert!(
                g.summary.gets >= s.summary.gets,
                "{kind}: structured {} vs general {}",
                s.summary.gets,
                g.summary.gets
            );
        }
    }
}
