//! Matrix multiplication without temporary matrices (`mm`).
//!
//! `C += A · B` on `n × n` matrices, blocked into `B × B` tiles. Because no
//! temporary matrices are used, the updates of a given `C` tile across the
//! `k` dimension must be serialized; tiles of `C` are independent of each
//! other. The paper's general-futures version uses `(n/B)³` futures (one per
//! `(i, j, k)` tile product); the structured version processes the `k`
//! rounds with a barrier between rounds.
//!
//! * **Structured**: for each `k` round, one future per `(i, j)` tile
//!   computing `C[i,j] += A[i,k] · B[k,j]`; the driver consumes all futures
//!   of the round before the next round starts (single touch).
//! * **General**: one future per `(i, j, k)` product; the future for
//!   `(i, j, k)` touches the future for `(i, j, k-1)` (the accumulation
//!   chain), and the driver additionally touches every chain tail at the
//!   end — multi-touch, `k_gets ≈ (n/B)³`.

use futurerd_dag::Observer;
use futurerd_runtime::exec::FutureHandle;
use futurerd_runtime::{Cx, ShadowMatrix, ThreadPool};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Input matrices (row-major, `n × n`).
#[derive(Debug, Clone)]
pub struct MmInput {
    /// Matrix dimension.
    pub n: usize,
    /// Left operand.
    pub a: Vec<i64>,
    /// Right operand.
    pub b: Vec<i64>,
}

impl MmInput {
    /// Generates two random `n × n` matrices with small entries.
    pub fn generate(n: usize, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        Self {
            n,
            a: (0..n * n).map(|_| rng.gen_range(-4i64..5)).collect(),
            b: (0..n * n).map(|_| rng.gen_range(-4i64..5)).collect(),
        }
    }
}

/// Serial reference product; returns the full result matrix.
pub fn serial(input: &MmInput) -> Vec<i64> {
    let n = input.n;
    let mut c = vec![0i64; n * n];
    for i in 0..n {
        for k in 0..n {
            let aik = input.a[i * n + k];
            for j in 0..n {
                c[i * n + j] += aik * input.b[k * n + j];
            }
        }
    }
    c
}

/// A cheap checksum of a matrix, used to compare results across variants.
pub fn checksum(c: &[i64]) -> u64 {
    c.iter().fold(0u64, |acc, &x| {
        acc.wrapping_mul(0x100000001b3).wrapping_add(x as u64)
    })
}

fn range(n: usize, base: usize, t: usize) -> std::ops::Range<usize> {
    (t * base)..((t + 1) * base).min(n)
}

/// `C[rows, cols] += A[rows, kk] · B[kk, cols]` on instrumented matrices.
fn accumulate_tile<O: Observer>(
    cx: &mut Cx<O>,
    c: &mut ShadowMatrix<i64>,
    a: &ShadowMatrix<i64>,
    b: &ShadowMatrix<i64>,
    rows: std::ops::Range<usize>,
    cols: std::ops::Range<usize>,
    kk: std::ops::Range<usize>,
) {
    for i in rows {
        for k in kk.clone() {
            let aik = a.get(cx, i, k);
            for j in cols.clone() {
                let prev = c.get(cx, i, j);
                let bkj = b.get(cx, k, j);
                c.set(cx, i, j, prev + aik * bkj);
            }
        }
    }
}

fn setup<O: Observer>(
    cx: &mut Cx<O>,
    input: &MmInput,
) -> (ShadowMatrix<i64>, ShadowMatrix<i64>, ShadowMatrix<i64>) {
    let n = input.n;
    let mut a = ShadowMatrix::new(cx, n, n, 0i64);
    let mut b = ShadowMatrix::new(cx, n, n, 0i64);
    a.raw_mut().copy_from_slice(&input.a);
    b.raw_mut().copy_from_slice(&input.b);
    let c = ShadowMatrix::new(cx, n, n, 0i64);
    (c, a, b)
}

/// Structured-futures variant. Returns the checksum of `C`.
pub fn structured<O: Observer>(cx: &mut Cx<O>, input: &MmInput, base: usize) -> u64 {
    let n = input.n;
    let (mut c, a, b) = setup(cx, input);
    let tiles = n.div_ceil(base);
    for tk in 0..tiles {
        let mut futures: Vec<FutureHandle<()>> = Vec::new();
        for ti in 0..tiles {
            for tj in 0..tiles {
                let (rows, cols, kk) = (range(n, base, ti), range(n, base, tj), range(n, base, tk));
                let c_ref = &mut c;
                let (a_ref, b_ref) = (&a, &b);
                futures.push(cx.create_future(move |cx| {
                    accumulate_tile(cx, c_ref, a_ref, b_ref, rows, cols, kk);
                }));
            }
        }
        for f in futures {
            cx.get_future(f);
        }
    }
    checksum(c.raw())
}

/// General-futures variant (per-`(i,j,k)` futures chained along `k`).
/// Returns the checksum of `C`.
pub fn general<O: Observer>(cx: &mut Cx<O>, input: &MmInput, base: usize) -> u64 {
    let n = input.n;
    let (mut c, a, b) = setup(cx, input);
    let tiles = n.div_ceil(base);
    // chain[ti][tj] holds the future of the most recent k-step for that tile.
    let mut chain: Vec<Vec<Option<FutureHandle<()>>>> = (0..tiles)
        .map(|_| (0..tiles).map(|_| None).collect())
        .collect();
    for tk in 0..tiles {
        for ti in 0..tiles {
            for tj in 0..tiles {
                let (rows, cols, kk) = (range(n, base, ti), range(n, base, tj), range(n, base, tk));
                let mut prev = chain[ti][tj].take();
                let c_ref = &mut c;
                let (a_ref, b_ref) = (&a, &b);
                let handle = {
                    let prev_ref = &mut prev;
                    cx.create_future(move |cx| {
                        if let Some(p) = prev_ref.as_mut() {
                            cx.touch_future(p);
                        }
                        accumulate_tile(cx, c_ref, a_ref, b_ref, rows, cols, kk);
                    })
                };
                chain[ti][tj] = Some(handle);
                // The previous link stays alive conceptually (multi-touch);
                // it has already been consumed inside the new future so it
                // can be discarded here.
                let _ = prev;
            }
        }
    }
    // Touch every chain tail so the final read of C is ordered after all
    // accumulations.
    for row in chain.iter_mut() {
        for slot in row.iter_mut() {
            if let Some(h) = slot.as_mut() {
                cx.touch_future(h);
            }
        }
    }
    checksum(c.raw())
}

/// Parallel (uninstrumented) blocked multiplication on the work-stealing
/// pool: `C` row-blocks are distributed across scope tasks.
pub fn parallel(pool: &ThreadPool, input: &MmInput, base: usize) -> u64 {
    let n = input.n;
    let mut c = vec![0i64; n * n];
    let a = &input.a;
    let b = &input.b;
    let row_blocks: Vec<&mut [i64]> = c.chunks_mut(base.max(1) * n).collect();
    pool.scope(|s| {
        for (bi, block) in row_blocks.into_iter().enumerate() {
            s.spawn(move || {
                let i0 = bi * base;
                let rows_here = block.len() / n;
                for di in 0..rows_here {
                    let i = i0 + di;
                    for k in 0..n {
                        let aik = a[i * n + k];
                        for j in 0..n {
                            block[di * n + j] += aik * b[k * n + j];
                        }
                    }
                }
            });
        }
    });
    checksum(&c)
}

#[cfg(test)]
mod tests {
    use super::*;
    use futurerd_core::detector::RaceDetector;
    use futurerd_core::reachability::{MultiBags, MultiBagsPlus};
    use futurerd_dag::NullObserver;
    use futurerd_runtime::run_program;

    fn input() -> MmInput {
        MmInput::generate(12, 5)
    }

    #[test]
    fn structured_matches_serial() {
        let inp = input();
        let expected = checksum(&serial(&inp));
        for base in [3, 4, 12] {
            let (got, _, _) = run_program(NullObserver, |cx| structured(cx, &inp, base));
            assert_eq!(got, expected, "base {base}");
        }
    }

    #[test]
    fn general_matches_serial() {
        let inp = input();
        let expected = checksum(&serial(&inp));
        let (got, _, _) = run_program(NullObserver, |cx| general(cx, &inp, 4));
        assert_eq!(got, expected);
    }

    #[test]
    fn parallel_matches_serial() {
        let inp = input();
        let pool = ThreadPool::new(3);
        assert_eq!(parallel(&pool, &inp, 4), checksum(&serial(&inp)));
    }

    #[test]
    fn both_variants_are_race_free() {
        let inp = input();
        let (_, det, _) = run_program(RaceDetector::<MultiBags>::structured(), |cx| {
            structured(cx, &inp, 4)
        });
        assert!(det.report().is_race_free(), "{}", det.report());
        let (_, det, _) = run_program(RaceDetector::<MultiBagsPlus>::general(), |cx| {
            general(cx, &inp, 4)
        });
        assert!(det.report().is_race_free(), "{}", det.report());
    }

    #[test]
    fn general_future_count_is_cubic_in_tiles() {
        let inp = input();
        let (_, _, s) = run_program(NullObserver, |cx| general(cx, &inp, 4));
        // 3 tiles per dimension -> 27 futures; gets = 27 (chains) + ... >= 27.
        assert_eq!(s.creates, 27);
        assert!(s.gets >= 27);
    }

    #[test]
    fn structured_creates_one_future_per_tile_per_round() {
        let inp = input();
        let (_, _, s) = run_program(NullObserver, |cx| structured(cx, &inp, 4));
        assert_eq!(s.creates, 27);
        assert_eq!(s.gets, 27);
    }
}
