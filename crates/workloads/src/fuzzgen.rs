//! Seeded racy-program generator for the differential fuzzing subsystem.
//!
//! `futurerd-dag::genprog` draws uniformly-shaped random programs; real
//! executions (and the paper's hard cases) are not uniform. This module
//! generates [`ProgramSpec`]s in deliberately adversarial *shapes* that the
//! fuzz driver in `futurerd-fuzz` differentials against the ground-truth
//! graph oracle:
//!
//! * [`FuzzShape::Structured`] / [`FuzzShape::General`] — the baseline
//!   genprog regimes with seed-varied depth and fanout, kept in the rotation
//!   so the fuzzer never regresses on the bread-and-butter programs;
//! * [`FuzzShape::Pipeline`] — producer/consumer stages communicating
//!   through futures whose handles are touched by several consumers
//!   (heavy multi-touch), with occasional consumers that skip the `get`
//!   and race with the producer;
//! * [`FuzzShape::Speculation`] — get-then-retry: a reader speculatively
//!   reads a future's output location *before* the `get` (a race), then
//!   gets and re-reads (settled), then retries the `get` (multi-touch);
//! * [`FuzzShape::PlantedRaces`] — a random base program plus deliberately
//!   planted races on dedicated locations the base program cannot touch, so
//!   the expected racy-granule set is known *a priori* (see
//!   [`FuzzProgram::planted`]);
//! * [`FuzzShape::AdversarialKn`] — every strand a `create_fut`/`get_fut`
//!   pair chained into one long dependence spine: `k ≈ 2n`, the regime
//!   where MultiBags+'s O(k²) timed-closure construction dominates (the
//!   paper only brushes it in the Figure 8 base-case sweep).
//!
//! All shapes are *forward-pointing* by construction (the creator executes
//! before every getter in depth-first eager order), so the recorded traces
//! are canonical serial-DF streams every detector can replay.

use futurerd_dag::genprog::{
    generate_program, Action, FunctionSpec, FutId, GenConfig, LocId, ProgramSpec,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The generator families the fuzzer rotates through.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FuzzShape {
    /// Baseline structured-futures genprog (seed-varied shape).
    Structured,
    /// Baseline general-futures genprog (seed-varied shape).
    General,
    /// Producer/consumer pipeline with heavy multi-touch futures.
    Pipeline,
    /// Speculative get-then-retry readers.
    Speculation,
    /// Random base program plus planted races with a known granule set.
    PlantedRaces,
    /// Adversarial `k ≈ n` create/get chain stressing the O(k²) regime.
    AdversarialKn,
}

impl FuzzShape {
    /// Every shape, in rotation order.
    pub const ALL: [FuzzShape; 6] = [
        FuzzShape::Structured,
        FuzzShape::General,
        FuzzShape::Pipeline,
        FuzzShape::Speculation,
        FuzzShape::PlantedRaces,
        FuzzShape::AdversarialKn,
    ];

    /// Short display name (used in fixture names and fuzz summaries).
    pub fn name(self) -> &'static str {
        match self {
            FuzzShape::Structured => "structured",
            FuzzShape::General => "general",
            FuzzShape::Pipeline => "pipeline",
            FuzzShape::Speculation => "speculation",
            FuzzShape::PlantedRaces => "planted",
            FuzzShape::AdversarialKn => "kn",
        }
    }
}

impl std::fmt::Display for FuzzShape {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// A generated fuzz program: the spec plus what the generator knows about
/// it.
#[derive(Debug, Clone)]
pub struct FuzzProgram {
    /// The executable program.
    pub spec: ProgramSpec,
    /// The family it was drawn from.
    pub shape: FuzzShape,
    /// Locations carrying a deliberately planted race
    /// ([`FuzzShape::PlantedRaces`] only). The base program never touches
    /// these locations, so every one of them **must** appear in the
    /// ground-truth oracle's racy set — a miss is a detector bug.
    pub planted: Vec<LocId>,
}

/// Generates the fuzz program for `seed`, rotating through every
/// [`FuzzShape`] (shape = `seed % 6`, shape-local randomness from the full
/// seed). Deterministic: the same seed always yields the same program.
pub fn generate_fuzz_program(seed: u64) -> FuzzProgram {
    let shape = FuzzShape::ALL[(seed % FuzzShape::ALL.len() as u64) as usize];
    generate_shaped(shape, seed)
}

/// Generates a program of the given shape from `seed`.
pub fn generate_shaped(shape: FuzzShape, seed: u64) -> FuzzProgram {
    let mut rng = StdRng::seed_from_u64(seed ^ 0xfa55_0000);
    match shape {
        FuzzShape::Structured => base_program(&mut rng, false),
        FuzzShape::General => base_program(&mut rng, true),
        FuzzShape::Pipeline => pipeline(&mut rng),
        FuzzShape::Speculation => speculation(&mut rng),
        FuzzShape::PlantedRaces => planted_races(&mut rng),
        FuzzShape::AdversarialKn => {
            let n = rng.gen_range(12..=40);
            adversarial_kn(n, seed)
        }
    }
}

/// The adversarial `k ≈ n` chain at an explicit size — exposed separately so
/// the benchmark sweep can scale `n` past what the fuzz rotation uses.
///
/// The root creates `f_i` and gets `f_{i-1}` — one step behind — so
/// adjacent futures are logically parallel (their random accesses race),
/// and each future's body re-touches its grandparent (`get_fut(f_{i-2})`),
/// making every future multi-touch. Every strand belongs to a
/// `create_fut`/`get_fut` pair and the number of `get_fut`s `k = 2n - 2`
/// tracks the number of parallel constructs `n` — the regime where
/// MultiBags+'s O(k²) timed closure dominates.
pub fn adversarial_kn(n: usize, seed: u64) -> FuzzProgram {
    let mut rng = StdRng::seed_from_u64(seed ^ 0xfa55_0001);
    let num_locations = (n as u32 / 2).clamp(4, 64);
    let mut actions = Vec::with_capacity(2 * n);
    for i in 0..n {
        let mut body = Vec::new();
        if i >= 2 {
            body.push(Action::GetFuture(FutId(i as u32 - 2)));
        }
        body.push(gen_compute(&mut rng, 0..num_locations, 2));
        actions.push(Action::CreateFuture(
            FutId(i as u32),
            FunctionSpec { actions: body },
        ));
        if i >= 1 {
            actions.push(Action::GetFuture(FutId(i as u32 - 1)));
        }
    }
    actions.push(Action::GetFuture(FutId(n as u32 - 1)));
    FuzzProgram {
        spec: ProgramSpec {
            root: FunctionSpec { actions },
            num_locations,
            num_futures: n as u32,
            structured: false,
        },
        shape: FuzzShape::AdversarialKn,
        planted: Vec::new(),
    }
}

/// A baseline genprog program with seed-varied generator shape.
fn base_program(rng: &mut StdRng, general: bool) -> FuzzProgram {
    let cfg = GenConfig {
        max_depth: rng.gen_range(2..7),
        max_actions: rng.gen_range(3..10),
        num_locations: rng.gen_range(4..24),
        ..if general {
            GenConfig::general()
        } else {
            GenConfig::structured()
        }
    };
    FuzzProgram {
        spec: generate_program(&cfg, rng.gen()),
        shape: if general {
            FuzzShape::General
        } else {
            FuzzShape::Structured
        },
        planted: Vec::new(),
    }
}

/// Producer/consumer pipeline: one producer future per stage writes the
/// stage's locations (after getting the previous stage — the pipeline
/// spine), then a crowd of consumer tasks each re-touch a producer handle
/// and read its stage. Some consumers skip the `get` before reading: those
/// reads race with the producer's writes, and the oracle decides which.
fn pipeline(rng: &mut StdRng) -> FuzzProgram {
    let stages = rng.gen_range(2..=4u32);
    let width = rng.gen_range(2..=4u32);
    let num_locations = stages * width;
    let loc = |s: u32, i: u32| LocId(s * width + i);

    let mut actions = Vec::new();
    // Producers: stage s writes loc(s, *); for s > 0 the body first gets
    // stage s-1 and reads one of its cells (the pipeline dependence).
    for s in 0..stages {
        let mut body = Vec::new();
        if s > 0 {
            body.push(Action::GetFuture(FutId(s - 1)));
            body.push(Action::Compute {
                reads: vec![loc(s - 1, rng.gen_range(0..width))],
                writes: Vec::new(),
            });
        }
        for i in 0..width {
            body.push(Action::Compute {
                reads: Vec::new(),
                writes: vec![loc(s, i)],
            });
        }
        actions.push(Action::CreateFuture(
            FutId(s),
            FunctionSpec { actions: body },
        ));
    }
    // Consumers: spawned tasks that each pick a stage; most get the
    // producer's handle first (multi-touch — the same handle is touched by
    // several consumers and by the pipeline spine), some skip the get and
    // read the stage's cells unprotected.
    let consumers = rng.gen_range(2..=5u32);
    for _ in 0..consumers {
        let s = rng.gen_range(0..stages);
        let mut body = Vec::new();
        if rng.gen_bool(0.7) {
            body.push(Action::GetFuture(FutId(s)));
        }
        body.push(Action::Compute {
            reads: (0..width).map(|i| loc(s, i)).collect(),
            writes: Vec::new(),
        });
        actions.push(Action::Spawn(FunctionSpec { actions: body }));
    }
    actions.push(Action::Sync);
    // The root drains every producer once more (another multi-touch layer).
    for s in 0..stages {
        actions.push(Action::GetFuture(FutId(s)));
    }
    FuzzProgram {
        spec: ProgramSpec {
            root: FunctionSpec { actions },
            num_locations,
            num_futures: stages,
            structured: false,
        },
        shape: FuzzShape::Pipeline,
        planted: Vec::new(),
    }
}

/// Speculative get-then-retry: per round, a future writes its output
/// location; the root reads it *before* the `get` (speculation — a race),
/// gets, re-reads (settled), and sometimes retries the `get`. A closing
/// "blind spot" exercises the conservative SP-Bags fallback's known error:
/// a spawned writer left unjoined while an unrelated `get_fut` — which the
/// fallback folds into a `sync` — falsely joins it, hiding the race from
/// the baseline (but not from the oracle).
fn speculation(rng: &mut StdRng) -> FuzzProgram {
    let rounds = rng.gen_range(2..=5u32);
    let num_locations = rounds + 1;
    let blind = LocId(rounds);
    let mut actions = Vec::new();
    for r in 0..rounds {
        let mut body = Vec::new();
        if r > 0 && rng.gen_bool(0.5) {
            // Later rounds may consume the previous round's settled value.
            body.push(Action::GetFuture(FutId(r - 1)));
        }
        body.push(Action::Compute {
            reads: Vec::new(),
            writes: vec![LocId(r)],
        });
        actions.push(Action::CreateFuture(
            FutId(r),
            FunctionSpec { actions: body },
        ));
        // Speculative read before the get: races with the body's write.
        actions.push(Action::Compute {
            reads: vec![LocId(r)],
            writes: Vec::new(),
        });
        actions.push(Action::GetFuture(FutId(r)));
        // Settled re-read after the get: never a race.
        actions.push(Action::Compute {
            reads: vec![LocId(r)],
            writes: Vec::new(),
        });
        if rng.gen_bool(0.5) {
            // Retry: a second touch of the same handle.
            actions.push(Action::GetFuture(FutId(r)));
        }
    }
    // The blind spot: spawn a writer, "join" it only through an unrelated
    // get, then read what it wrote — a real race the conservative fallback
    // cannot see.
    actions.push(Action::Spawn(FunctionSpec {
        actions: vec![Action::Compute {
            reads: Vec::new(),
            writes: vec![blind],
        }],
    }));
    actions.push(Action::CreateFuture(
        FutId(rounds),
        FunctionSpec {
            actions: Vec::new(),
        },
    ));
    actions.push(Action::GetFuture(FutId(rounds)));
    actions.push(Action::Compute {
        reads: vec![blind],
        writes: Vec::new(),
    });
    actions.push(Action::Sync);
    FuzzProgram {
        spec: ProgramSpec {
            root: FunctionSpec { actions },
            num_locations,
            num_futures: rounds + 1,
            structured: false,
        },
        shape: FuzzShape::Speculation,
        planted: Vec::new(),
    }
}

/// A random base program plus planted races on dedicated locations the base
/// program cannot reference: for each planted location, a spawned child
/// writes it while the continuation reads it before the closing `sync`. The
/// planted set is a *lower bound* on the ground-truth racy set.
fn planted_races(rng: &mut StdRng) -> FuzzProgram {
    let general = rng.gen_bool(0.5);
    let base_cfg = GenConfig {
        max_depth: rng.gen_range(2..5),
        max_actions: rng.gen_range(3..8),
        num_locations: rng.gen_range(4..16),
        ..if general {
            GenConfig::general()
        } else {
            GenConfig::structured()
        }
    };
    let base = generate_program(&base_cfg, rng.gen());
    let planted: Vec<LocId> = (0..rng.gen_range(1..=3u32))
        .map(|i| LocId(base.num_locations + i))
        .collect();

    let mut root = base.root.clone();
    for &loc in &planted {
        root.actions.push(Action::Spawn(FunctionSpec {
            actions: vec![Action::Compute {
                reads: Vec::new(),
                writes: vec![loc],
            }],
        }));
        // Read in the continuation, racing with the spawned write.
        root.actions.push(Action::Compute {
            reads: vec![loc],
            writes: Vec::new(),
        });
    }
    root.actions.push(Action::Sync);
    FuzzProgram {
        spec: ProgramSpec {
            root,
            num_locations: base.num_locations + planted.len() as u32,
            num_futures: base.num_futures,
            structured: base.structured,
        },
        shape: FuzzShape::PlantedRaces,
        planted,
    }
}

/// A small random compute step over the given location range.
fn gen_compute(rng: &mut StdRng, locs: std::ops::Range<u32>, max_accesses: u32) -> Action {
    let n = rng.gen_range(1..=max_accesses);
    let mut reads = Vec::new();
    let mut writes = Vec::new();
    for _ in 0..n {
        let loc = LocId(rng.gen_range(locs.clone()));
        if rng.gen_bool(0.5) {
            reads.push(loc);
        } else {
            writes.push(loc);
        }
    }
    Action::Compute { reads, writes }
}

#[cfg(test)]
mod tests {
    use super::*;
    use futurerd_core::detector::RaceDetector;
    use futurerd_core::reachability::GraphOracle;
    use futurerd_dag::genprog::check_structured;
    use futurerd_dag::NullObserver;
    use futurerd_runtime::spec::run_spec;

    #[test]
    fn generation_is_deterministic_per_seed() {
        for seed in 0..24 {
            let a = generate_fuzz_program(seed);
            let b = generate_fuzz_program(seed);
            assert_eq!(a.spec, b.spec, "seed {seed}");
            assert_eq!(a.shape, b.shape);
            assert_eq!(a.planted, b.planted);
        }
    }

    #[test]
    fn rotation_covers_every_shape() {
        let shapes: std::collections::HashSet<_> =
            (0..12u64).map(|s| generate_fuzz_program(s).shape).collect();
        assert_eq!(shapes.len(), FuzzShape::ALL.len());
    }

    #[test]
    fn every_shape_executes_without_panicking() {
        for seed in 0..60 {
            let program = generate_fuzz_program(seed);
            let (_, summary) = run_spec(&program.spec, NullObserver);
            assert!(summary.strands >= 1, "seed {seed} ({})", program.shape);
        }
    }

    #[test]
    fn pipeline_and_kn_are_multi_touch() {
        for shape in [FuzzShape::Pipeline, FuzzShape::AdversarialKn] {
            let program = generate_shaped(shape, 7);
            assert!(
                !check_structured(&program.spec).is_empty(),
                "{shape}: expected multi-touch futures"
            );
        }
    }

    #[test]
    fn adversarial_kn_gets_track_parallel_constructs() {
        for n in [8usize, 16, 32] {
            let program = adversarial_kn(n, 1);
            let (_, summary) = run_spec(&program.spec, NullObserver);
            assert_eq!(summary.creates, n as u64);
            assert_eq!(summary.gets, 2 * n as u64 - 2, "k = 2n - 2");
            // Every strand belongs to a create/get pair: strand count is
            // linear in n with a small constant.
            assert!(summary.strands >= 3 * n as u64);
        }
    }

    #[test]
    fn adversarial_kn_races_between_adjacent_futures() {
        // Adjacent futures are logically parallel with random overlapping
        // accesses: across a few seeds the oracle must find races.
        let raced = (0..8u64).any(|seed| {
            let program = adversarial_kn(24, seed);
            let (det, _) = run_spec(&program.spec, RaceDetector::new(GraphOracle::new()));
            det.into_report().race_count() > 0
        });
        assert!(raced, "the k≈n chain must be able to race");
    }

    #[test]
    fn speculation_exposes_the_conservative_blind_spot() {
        use futurerd_core::reachability::SpBagsConservative;
        for seed in 0..10u64 {
            let program = generate_shaped(FuzzShape::Speculation, seed);
            let (oracle, _) = run_spec(&program.spec, RaceDetector::new(GraphOracle::new()));
            let (cons, _) = run_spec(&program.spec, RaceDetector::new(SpBagsConservative::new()));
            assert!(
                cons.into_report().race_count() < oracle.into_report().race_count(),
                "seed {seed}: the conservative fallback must miss the blind-spot race"
            );
        }
    }

    #[test]
    fn planted_races_are_found_by_the_oracle() {
        for seed in 0..20u64 {
            let program = generate_shaped(FuzzShape::PlantedRaces, seed);
            assert!(!program.planted.is_empty());
            let (det, _) = run_spec(&program.spec, RaceDetector::new(GraphOracle::new()));
            let report = det.into_report();
            assert!(
                report.race_count() >= program.planted.len(),
                "seed {seed}: {} planted, oracle saw {}",
                program.planted.len(),
                report.race_count()
            );
        }
    }

    #[test]
    fn speculation_always_races() {
        for seed in 0..20u64 {
            let program = generate_shaped(FuzzShape::Speculation, seed);
            let (det, _) = run_spec(&program.spec, RaceDetector::new(GraphOracle::new()));
            assert!(
                det.into_report().race_count() >= 1,
                "seed {seed}: the speculative read must race"
            );
        }
    }

    #[test]
    fn shape_names_are_unique() {
        let names: std::collections::HashSet<_> = FuzzShape::ALL.iter().map(|s| s.name()).collect();
        assert_eq!(names.len(), FuzzShape::ALL.len());
    }
}
