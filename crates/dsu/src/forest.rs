//! The core union-find forest with union by rank and path compression.

use crate::counters::OpCounters;
use crate::ElementId;

/// A forest of disjoint sets over dense element ids.
///
/// Supports the three classic operations:
///
/// * [`make_set`](DisjointSets::make_set) — create a fresh singleton set,
/// * [`find`](DisjointSets::find) — return the representative of the set
///   containing an element (with path compression),
/// * [`union`](DisjointSets::union) — merge two sets (by rank).
///
/// Any sequence of `m` operations over `n` elements costs
/// `O(m · α(m, n))` amortized.
///
/// # Example
///
/// ```
/// use futurerd_dsu::DisjointSets;
///
/// let mut dsu = DisjointSets::new();
/// let a = dsu.make_set();
/// let b = dsu.make_set();
/// let c = dsu.make_set();
/// assert!(!dsu.same_set(a, b));
/// dsu.union(a, b);
/// assert!(dsu.same_set(a, b));
/// assert!(!dsu.same_set(a, c));
/// ```
#[derive(Debug, Clone, Default)]
pub struct DisjointSets {
    /// Parent pointer per element; a root points to itself.
    parent: Vec<u32>,
    /// Union-by-rank rank per element (only meaningful at roots).
    rank: Vec<u8>,
    /// Number of live (non-merged-away) sets.
    num_sets: usize,
    /// Operation counters for complexity instrumentation.
    counters: OpCounters,
}

impl DisjointSets {
    /// Creates an empty forest.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty forest with room for `capacity` elements.
    pub fn with_capacity(capacity: usize) -> Self {
        Self {
            parent: Vec::with_capacity(capacity),
            rank: Vec::with_capacity(capacity),
            num_sets: 0,
            counters: OpCounters::default(),
        }
    }

    /// Number of elements ever created.
    #[inline]
    pub fn len(&self) -> usize {
        self.parent.len()
    }

    /// True if no element has been created yet.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.parent.is_empty()
    }

    /// Number of distinct sets currently in the forest.
    #[inline]
    pub fn num_sets(&self) -> usize {
        self.num_sets
    }

    /// Returns the operation counters accumulated so far.
    #[inline]
    pub fn counters(&self) -> &OpCounters {
        &self.counters
    }

    /// Creates a new singleton set and returns its element id.
    #[inline]
    pub fn make_set(&mut self) -> ElementId {
        let id = self.parent.len() as u32;
        self.parent.push(id);
        self.rank.push(0);
        self.num_sets += 1;
        self.counters.make_sets += 1;
        ElementId(id)
    }

    /// Returns true if `x` is a valid element of this forest.
    #[inline]
    pub fn contains(&self, x: ElementId) -> bool {
        x.index() < self.parent.len()
    }

    /// Finds the representative of the set containing `x`, compressing the
    /// path as it goes.
    ///
    /// # Panics
    ///
    /// Panics if `x` was not created by this forest.
    pub fn find(&mut self, x: ElementId) -> ElementId {
        assert!(self.contains(x), "element {x} out of range");
        self.counters.finds += 1;
        let mut root = x.0;
        // Walk up to the root.
        while self.parent[root as usize] != root {
            root = self.parent[root as usize];
        }
        // Path compression: point every node on the path straight at the root.
        let mut cur = x.0;
        while self.parent[cur as usize] != root {
            let next = self.parent[cur as usize];
            self.parent[cur as usize] = root;
            cur = next;
        }
        ElementId(root)
    }

    /// Finds the representative of the set containing `x` without mutating
    /// the structure (no path compression). Slower but usable from `&self`.
    pub fn find_immutable(&self, x: ElementId) -> ElementId {
        assert!(self.contains(x), "element {x} out of range");
        let mut root = x.0;
        while self.parent[root as usize] != root {
            root = self.parent[root as usize];
        }
        ElementId(root)
    }

    /// Returns true if `x` and `y` are currently in the same set.
    pub fn same_set(&mut self, x: ElementId, y: ElementId) -> bool {
        self.find(x) == self.find(y)
    }

    /// Unions the sets containing `x` and `y` (union by rank) and returns the
    /// representative of the merged set. If they are already the same set the
    /// existing representative is returned.
    pub fn union(&mut self, x: ElementId, y: ElementId) -> ElementId {
        self.counters.unions += 1;
        let rx = self.find(x);
        let ry = self.find(y);
        if rx == ry {
            return rx;
        }
        self.num_sets -= 1;
        let (hi, lo) = if self.rank[rx.index()] >= self.rank[ry.index()] {
            (rx, ry)
        } else {
            (ry, rx)
        };
        self.parent[lo.index()] = hi.0;
        if self.rank[hi.index()] == self.rank[lo.index()] {
            self.rank[hi.index()] += 1;
        }
        hi
    }

    /// Unions the set containing `victim` *into* the set containing `winner`,
    /// guaranteeing that the representative of the merged set is the current
    /// representative of `winner`'s set.
    ///
    /// This is the operation the MultiBags algorithms need (`Union(S_F, P_G)`
    /// must leave the result identified as `S_F`). It still uses union by
    /// rank internally: if the rank order would prefer `victim`'s root we
    /// still link under it, but then *re-point the identity*: the returned
    /// representative is always `winner`'s old root, and callers that track
    /// tags should use [`TaggedDisjointSets`](crate::TaggedDisjointSets),
    /// which handles the re-tagging automatically.
    ///
    /// Returns `(representative, merged)` where `merged` is false if the two
    /// elements were already in the same set.
    pub fn union_into(&mut self, winner: ElementId, victim: ElementId) -> (ElementId, bool) {
        self.counters.unions += 1;
        let rw = self.find(winner);
        let rv = self.find(victim);
        if rw == rv {
            return (rw, false);
        }
        self.num_sets -= 1;
        // Union by rank for the tree shape; identity follows the winner.
        let (hi, lo) = if self.rank[rw.index()] >= self.rank[rv.index()] {
            (rw, rv)
        } else {
            (rv, rw)
        };
        self.parent[lo.index()] = hi.0;
        if self.rank[hi.index()] == self.rank[lo.index()] {
            self.rank[hi.index()] += 1;
        }
        (hi, true)
    }

    /// Returns every element currently in the same set as `x`.
    ///
    /// This is an O(n) scan intended for tests and debugging output, not for
    /// the hot path.
    pub fn members_of(&mut self, x: ElementId) -> Vec<ElementId> {
        let root = self.find(x);
        (0..self.parent.len() as u32)
            .map(ElementId)
            .filter(|&e| self.find(e) == root)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn singleton_is_its_own_representative() {
        let mut dsu = DisjointSets::new();
        let a = dsu.make_set();
        assert_eq!(dsu.find(a), a);
        assert_eq!(dsu.num_sets(), 1);
        assert_eq!(dsu.len(), 1);
    }

    #[test]
    fn union_merges_sets() {
        let mut dsu = DisjointSets::new();
        let ids: Vec<_> = (0..10).map(|_| dsu.make_set()).collect();
        for w in ids.windows(2) {
            dsu.union(w[0], w[1]);
        }
        assert_eq!(dsu.num_sets(), 1);
        let root = dsu.find(ids[0]);
        for &e in &ids {
            assert_eq!(dsu.find(e), root);
        }
    }

    #[test]
    fn union_of_same_set_is_noop() {
        let mut dsu = DisjointSets::new();
        let a = dsu.make_set();
        let b = dsu.make_set();
        dsu.union(a, b);
        let sets_before = dsu.num_sets();
        dsu.union(a, b);
        assert_eq!(dsu.num_sets(), sets_before);
    }

    #[test]
    fn union_into_reports_merge_flag() {
        let mut dsu = DisjointSets::new();
        let a = dsu.make_set();
        let b = dsu.make_set();
        let (_, merged) = dsu.union_into(a, b);
        assert!(merged);
        let (_, merged) = dsu.union_into(a, b);
        assert!(!merged);
    }

    #[test]
    fn members_of_returns_whole_set() {
        let mut dsu = DisjointSets::new();
        let a = dsu.make_set();
        let b = dsu.make_set();
        let c = dsu.make_set();
        let d = dsu.make_set();
        dsu.union(a, b);
        dsu.union(c, d);
        let mut members = dsu.members_of(a);
        members.sort();
        assert_eq!(members, vec![a, b]);
        let mut members = dsu.members_of(d);
        members.sort();
        assert_eq!(members, vec![c, d]);
    }

    #[test]
    fn find_immutable_matches_find() {
        let mut dsu = DisjointSets::new();
        let ids: Vec<_> = (0..32).map(|_| dsu.make_set()).collect();
        for i in (0..32).step_by(2) {
            dsu.union(ids[i], ids[i + 1]);
        }
        for &e in &ids {
            assert_eq!(dsu.find_immutable(e), dsu.find(e));
        }
    }

    #[test]
    fn counters_track_operations() {
        let mut dsu = DisjointSets::new();
        let a = dsu.make_set();
        let b = dsu.make_set();
        dsu.union(a, b);
        dsu.find(a);
        assert_eq!(dsu.counters().make_sets, 2);
        assert_eq!(dsu.counters().unions, 1);
        // union performs internal finds too.
        assert!(dsu.counters().finds >= 3);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn find_of_unknown_element_panics() {
        let mut dsu = DisjointSets::new();
        dsu.find(ElementId(3));
    }

    #[test]
    fn many_unions_stay_consistent() {
        // Deterministic pseudo-random union pattern; verify against a naive
        // labelling implementation.
        let n = 500usize;
        let mut dsu = DisjointSets::new();
        let ids: Vec<_> = (0..n).map(|_| dsu.make_set()).collect();
        let mut labels: Vec<usize> = (0..n).collect();
        let relabel = |labels: &mut Vec<usize>, from: usize, to: usize| {
            for l in labels.iter_mut() {
                if *l == from {
                    *l = to;
                }
            }
        };
        let mut state = 0x9e3779b97f4a7c15u64;
        let mut next = || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state as usize
        };
        for _ in 0..2 * n {
            let x = next() % n;
            let y = next() % n;
            dsu.union(ids[x], ids[y]);
            let (lx, ly) = (labels[x], labels[y]);
            if lx != ly {
                relabel(&mut labels, ly, lx);
            }
        }
        for i in 0..n {
            for j in 0..n {
                assert_eq!(
                    dsu.same_set(ids[i], ids[j]),
                    labels[i] == labels[j],
                    "mismatch at ({i},{j})"
                );
            }
        }
    }
}
