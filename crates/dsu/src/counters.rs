//! Operation counters used to report the work the reachability structures do.
//!
//! The paper's complexity bounds are stated in terms of the number of
//! disjoint-set operations; these counters let the benchmark harness verify
//! the *shape* of those bounds empirically (the `scaling` ablation table).

/// Counts of the three disjoint-set operations performed so far.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OpCounters {
    /// Number of `make_set` calls.
    pub make_sets: u64,
    /// Number of `union` / `union_into` calls.
    pub unions: u64,
    /// Number of `find` calls (including those performed inside unions).
    pub finds: u64,
}

impl OpCounters {
    /// Total number of operations.
    pub fn total(&self) -> u64 {
        self.make_sets + self.unions + self.finds
    }

    /// Adds another counter set into this one.
    pub fn merge(&mut self, other: &OpCounters) {
        self.make_sets += other.make_sets;
        self.unions += other.unions;
        self.finds += other.finds;
    }
}

impl std::ops::Add for OpCounters {
    type Output = OpCounters;
    fn add(self, rhs: OpCounters) -> OpCounters {
        OpCounters {
            make_sets: self.make_sets + rhs.make_sets,
            unions: self.unions + rhs.unions,
            finds: self.finds + rhs.finds,
        }
    }
}

impl std::fmt::Display for OpCounters {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "make_set={} union={} find={}",
            self.make_sets, self.unions, self.finds
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn total_sums_fields() {
        let c = OpCounters {
            make_sets: 1,
            unions: 2,
            finds: 3,
        };
        assert_eq!(c.total(), 6);
    }

    #[test]
    fn merge_accumulates() {
        let mut a = OpCounters {
            make_sets: 1,
            unions: 1,
            finds: 1,
        };
        let b = OpCounters {
            make_sets: 2,
            unions: 3,
            finds: 4,
        };
        a.merge(&b);
        assert_eq!(a.make_sets, 3);
        assert_eq!(a.unions, 4);
        assert_eq!(a.finds, 5);
        let c = a + b;
        assert_eq!(c.total(), a.total() + b.total());
    }

    #[test]
    fn display_is_humane() {
        let c = OpCounters {
            make_sets: 7,
            unions: 8,
            finds: 9,
        };
        assert_eq!(c.to_string(), "make_set=7 union=8 find=9");
    }
}
