//! Fast disjoint-set (union-find) data structures.
//!
//! Both race-detection algorithms in the paper (*Efficient Race Detection
//! with Futures*, PPoPP 2019) are built on Tarjan's classic disjoint-set
//! structure with **union by rank** and **path compression**, which supports
//! any intermixed sequence of `m` operations over `n` elements in
//! `O(m · α(m, n))` time, where `α` is the inverse Ackermann function
//! (≤ 4 for every input that fits in a physical machine).
//!
//! Two variants are provided:
//!
//! * [`DisjointSets`] — a plain forest over dense `usize` element ids.
//! * [`TaggedDisjointSets`] — the same forest, but every set root carries a
//!   user-supplied *tag*. The MultiBags algorithms store the bag descriptor
//!   (S-bag / P-bag and the owning function) as the tag, so "which bag does
//!   strand *u* currently live in?" is a single `find` followed by a tag
//!   lookup.
//!
//! Elements are created with [`DisjointSets::make_set`]; the returned ids are
//! dense and monotonically increasing, which lets callers use them directly
//! as indices into side tables.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod counters;
pub mod forest;
pub mod tagged;

pub use counters::OpCounters;
pub use forest::DisjointSets;
pub use tagged::TaggedDisjointSets;

/// Identifier of an element managed by a disjoint-set forest.
///
/// Ids are dense: the `k`-th call to `make_set` returns `ElementId(k)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ElementId(pub u32);

impl ElementId {
    /// Returns the id as a `usize` index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl From<u32> for ElementId {
    #[inline]
    fn from(v: u32) -> Self {
        ElementId(v)
    }
}

impl std::fmt::Display for ElementId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "e{}", self.0)
    }
}
