//! A disjoint-set forest whose sets carry a user-defined tag.
//!
//! The MultiBags algorithms need to know, for every strand, *which bag* it
//! currently lives in (an S-bag or P-bag of some function, or for
//! MultiBags+'s `DNSP` structure, an attached or unattached set with its
//! predecessor/successor pointers). The natural encoding is a disjoint-set
//! forest where the tag describing the bag lives at the set's representative
//! and moves with it when sets are merged or relabelled.

use crate::forest::DisjointSets;
use crate::{ElementId, OpCounters};

/// A disjoint-set forest where every set has an associated tag of type `T`.
///
/// Tags are supplied at [`make_set`](TaggedDisjointSets::make_set) time and
/// can be read or replaced for the whole set at any point. When two sets are
/// merged with [`union_into`](TaggedDisjointSets::union_into) the surviving
/// set keeps the *winner's* tag; the victim's tag is dropped.
///
/// # Example
///
/// ```
/// use futurerd_dsu::TaggedDisjointSets;
///
/// #[derive(Debug, PartialEq, Clone)]
/// enum Bag { S(u32), P(u32) }
///
/// let mut bags: TaggedDisjointSets<Bag> = TaggedDisjointSets::new();
/// let u = bags.make_set(Bag::S(0));
/// let v = bags.make_set(Bag::S(1));
/// bags.union_into(u, v);                 // v's strands join function 0's S bag
/// assert_eq!(bags.tag(v), &Bag::S(0));
/// bags.set_tag(u, Bag::P(0));            // function 0 returned: S bag becomes P bag
/// assert_eq!(bags.tag(v), &Bag::P(0));
/// ```
#[derive(Debug, Clone)]
pub struct TaggedDisjointSets<T> {
    forest: DisjointSets,
    /// Tag slot per element; only the slot of a set's current representative
    /// is meaningful.
    tags: Vec<Option<T>>,
}

impl<T> Default for TaggedDisjointSets<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> TaggedDisjointSets<T> {
    /// Creates an empty tagged forest.
    pub fn new() -> Self {
        Self {
            forest: DisjointSets::new(),
            tags: Vec::new(),
        }
    }

    /// Creates an empty tagged forest with room for `capacity` elements.
    pub fn with_capacity(capacity: usize) -> Self {
        Self {
            forest: DisjointSets::with_capacity(capacity),
            tags: Vec::with_capacity(capacity),
        }
    }

    /// Number of elements ever created.
    pub fn len(&self) -> usize {
        self.forest.len()
    }

    /// True if no elements have been created.
    pub fn is_empty(&self) -> bool {
        self.forest.is_empty()
    }

    /// Number of distinct sets.
    pub fn num_sets(&self) -> usize {
        self.forest.num_sets()
    }

    /// Operation counters from the underlying forest.
    pub fn counters(&self) -> &OpCounters {
        self.forest.counters()
    }

    /// Returns true if `x` is a valid element.
    pub fn contains(&self, x: ElementId) -> bool {
        self.forest.contains(x)
    }

    /// Creates a new singleton set carrying `tag`.
    pub fn make_set(&mut self, tag: T) -> ElementId {
        let id = self.forest.make_set();
        debug_assert_eq!(id.index(), self.tags.len());
        self.tags.push(Some(tag));
        id
    }

    /// Finds the representative of the set containing `x`.
    pub fn find(&mut self, x: ElementId) -> ElementId {
        self.forest.find(x)
    }

    /// Returns true if `x` and `y` are in the same set.
    pub fn same_set(&mut self, x: ElementId, y: ElementId) -> bool {
        self.forest.same_set(x, y)
    }

    /// Returns a reference to the tag of the set containing `x`.
    pub fn tag(&mut self, x: ElementId) -> &T {
        let root = self.forest.find(x);
        self.tags[root.index()]
            .as_ref()
            .expect("set representative must carry a tag")
    }

    /// Returns a mutable reference to the tag of the set containing `x`.
    pub fn tag_mut(&mut self, x: ElementId) -> &mut T {
        let root = self.forest.find(x);
        self.tags[root.index()]
            .as_mut()
            .expect("set representative must carry a tag")
    }

    /// Replaces the tag of the entire set containing `x`, returning the old
    /// tag.
    pub fn set_tag(&mut self, x: ElementId, tag: T) -> T {
        let root = self.forest.find(x);
        self.tags[root.index()]
            .replace(tag)
            .expect("set representative must carry a tag")
    }

    /// Merges the set containing `victim` into the set containing `winner`.
    /// The merged set keeps the winner's tag; the victim's tag is returned
    /// (or `None` if the two were already the same set).
    pub fn union_into(&mut self, winner: ElementId, victim: ElementId) -> Option<T> {
        let winner_root = self.forest.find(winner);
        let victim_root = self.forest.find(victim);
        if winner_root == victim_root {
            return None;
        }
        let winner_tag = self.tags[winner_root.index()]
            .take()
            .expect("winner representative must carry a tag");
        let victim_tag = self.tags[victim_root.index()]
            .take()
            .expect("victim representative must carry a tag");
        let (new_root, merged) = self.forest.union_into(winner_root, victim_root);
        debug_assert!(merged);
        self.tags[new_root.index()] = Some(winner_tag);
        Some(victim_tag)
    }

    /// Returns every element in the same set as `x` (O(n); for tests/debug).
    pub fn members_of(&mut self, x: ElementId) -> Vec<ElementId> {
        self.forest.members_of(x)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tags_follow_sets() {
        let mut t: TaggedDisjointSets<&'static str> = TaggedDisjointSets::new();
        let a = t.make_set("alpha");
        let b = t.make_set("beta");
        assert_eq!(*t.tag(a), "alpha");
        assert_eq!(*t.tag(b), "beta");
        let dropped = t.union_into(a, b);
        assert_eq!(dropped, Some("beta"));
        assert_eq!(*t.tag(b), "alpha");
        assert_eq!(t.num_sets(), 1);
    }

    #[test]
    fn set_tag_relabels_whole_set() {
        let mut t: TaggedDisjointSets<u32> = TaggedDisjointSets::new();
        let a = t.make_set(1);
        let b = t.make_set(2);
        let c = t.make_set(3);
        t.union_into(a, b);
        t.union_into(a, c);
        let old = t.set_tag(c, 99);
        assert_eq!(old, 1);
        assert_eq!(*t.tag(a), 99);
        assert_eq!(*t.tag(b), 99);
        assert_eq!(*t.tag(c), 99);
    }

    #[test]
    fn union_into_same_set_returns_none_and_keeps_tag() {
        let mut t: TaggedDisjointSets<u32> = TaggedDisjointSets::new();
        let a = t.make_set(7);
        let b = t.make_set(8);
        t.union_into(a, b);
        assert_eq!(t.union_into(a, b), None);
        assert_eq!(*t.tag(b), 7);
    }

    #[test]
    fn winner_tag_survives_regardless_of_rank_order() {
        // Build a deep set for the victim so union-by-rank would prefer the
        // victim's root; the winner's tag must still win.
        let mut t: TaggedDisjointSets<&'static str> = TaggedDisjointSets::new();
        let winner = t.make_set("winner");
        let victims: Vec<_> = (0..16).map(|_| t.make_set("victim")).collect();
        for w in victims.windows(2) {
            t.union_into(w[0], w[1]);
        }
        t.union_into(winner, victims[0]);
        for &v in &victims {
            assert_eq!(*t.tag(v), "winner");
        }
        assert_eq!(*t.tag(winner), "winner");
    }

    #[test]
    fn tag_mut_mutates_in_place() {
        let mut t: TaggedDisjointSets<Vec<u32>> = TaggedDisjointSets::new();
        let a = t.make_set(vec![1]);
        let b = t.make_set(vec![2]);
        t.union_into(a, b);
        t.tag_mut(b).push(42);
        assert_eq!(*t.tag(a), vec![1, 42]);
    }
}
