//! Property-based tests for the disjoint-set forests: differential testing
//! against a naive label-array implementation.
//!
//! The properties are exercised over randomized operation sequences drawn
//! from a seeded generator (the workspace's offline `rand` stand-in), so
//! every run covers the same cases deterministically — failures reproduce by
//! seed without a shrinking framework.

use futurerd_dsu::{DisjointSets, ElementId, TaggedDisjointSets};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A naive O(n) union-find used as the specification.
#[derive(Clone)]
struct NaiveSets {
    label: Vec<usize>,
}

impl NaiveSets {
    fn new() -> Self {
        Self { label: Vec::new() }
    }
    fn make_set(&mut self) -> usize {
        let id = self.label.len();
        self.label.push(id);
        id
    }
    fn same(&self, a: usize, b: usize) -> bool {
        self.label[a] == self.label[b]
    }
    fn union_into(&mut self, winner: usize, victim: usize) {
        let (lw, lv) = (self.label[winner], self.label[victim]);
        if lw == lv {
            return;
        }
        for l in self.label.iter_mut() {
            if *l == lv {
                *l = lw;
            }
        }
    }
    fn num_sets(&self) -> usize {
        let mut labels: Vec<usize> = self.label.clone();
        labels.sort_unstable();
        labels.dedup();
        labels.len()
    }
}

#[derive(Debug, Clone)]
enum Op {
    MakeSet,
    Union(usize, usize),
    CheckSame(usize, usize),
}

/// Draws a random operation sequence: make-set with weight 2, union and
/// same-set checks with weight 3 each (matching the original proptest
/// strategy).
fn gen_ops(rng: &mut StdRng, max_ops: usize) -> Vec<Op> {
    let n_ops = rng.gen_range(1..max_ops);
    (0..n_ops)
        .map(|_| match rng.gen_range(0..8) {
            0 | 1 => Op::MakeSet,
            2..=4 => Op::Union(rng.gen_range(0..64), rng.gen_range(0..64)),
            _ => Op::CheckSame(rng.gen_range(0..64), rng.gen_range(0..64)),
        })
        .collect()
}

#[test]
fn forest_matches_naive_model() {
    for seed in 0..256u64 {
        let ops = gen_ops(&mut StdRng::seed_from_u64(seed), 200);
        let mut dsu = DisjointSets::new();
        let mut naive = NaiveSets::new();
        let mut ids: Vec<ElementId> = Vec::new();

        for op in ops {
            match op {
                Op::MakeSet => {
                    let id = dsu.make_set();
                    let nid = naive.make_set();
                    assert_eq!(id.index(), nid, "seed {seed}");
                    ids.push(id);
                }
                Op::Union(a, b) if !ids.is_empty() => {
                    let a = a % ids.len();
                    let b = b % ids.len();
                    dsu.union_into(ids[a], ids[b]);
                    naive.union_into(a, b);
                }
                Op::CheckSame(a, b) if !ids.is_empty() => {
                    let a = a % ids.len();
                    let b = b % ids.len();
                    assert_eq!(
                        dsu.same_set(ids[a], ids[b]),
                        naive.same(a, b),
                        "seed {seed}"
                    );
                }
                _ => {}
            }
            assert_eq!(dsu.num_sets(), naive.num_sets(), "seed {seed}");
        }
    }
}

#[test]
fn tagged_forest_tag_is_winners() {
    for seed in 0..256u64 {
        let ops = gen_ops(&mut StdRng::seed_from_u64(0x7a63ed ^ seed), 200);
        // Model: the tag of a set is the label of the "winner chain" root.
        let mut tagged: TaggedDisjointSets<usize> = TaggedDisjointSets::new();
        let mut naive = NaiveSets::new();
        // naive_tag[label] = tag of that set
        let mut naive_tag: Vec<usize> = Vec::new();
        let mut ids: Vec<ElementId> = Vec::new();

        for op in ops {
            match op {
                Op::MakeSet => {
                    let nid = naive.make_set();
                    naive_tag.push(nid); // initial tag = element id
                    let id = tagged.make_set(nid);
                    ids.push(id);
                }
                Op::Union(a, b) if !ids.is_empty() => {
                    let a = a % ids.len();
                    let b = b % ids.len();
                    if !naive.same(a, b) {
                        let winner_tag = naive_tag[naive.label[a]];
                        naive.union_into(a, b);
                        naive_tag[naive.label[a]] = winner_tag;
                    }
                    tagged.union_into(ids[a], ids[b]);
                }
                Op::CheckSame(a, b) if !ids.is_empty() => {
                    let a = a % ids.len();
                    let b = b % ids.len();
                    assert_eq!(
                        tagged.same_set(ids[a], ids[b]),
                        naive.same(a, b),
                        "seed {seed}"
                    );
                    assert_eq!(
                        *tagged.tag(ids[a]),
                        naive_tag[naive.label[a]],
                        "seed {seed}"
                    );
                    assert_eq!(
                        *tagged.tag(ids[b]),
                        naive_tag[naive.label[b]],
                        "seed {seed}"
                    );
                }
                _ => {}
            }
        }
    }
}

#[test]
fn find_is_idempotent() {
    for seed in 0..256u64 {
        let mut rng = StdRng::seed_from_u64(0xf1fd ^ seed);
        let n = rng.gen_range(1usize..200);
        let n_unions = rng.gen_range(0usize..300);
        let mut dsu = DisjointSets::new();
        let ids: Vec<_> = (0..n).map(|_| dsu.make_set()).collect();
        for _ in 0..n_unions {
            let a = rng.gen_range(0usize..200);
            let b = rng.gen_range(0usize..200);
            dsu.union(ids[a % n], ids[b % n]);
        }
        for &e in &ids {
            let r1 = dsu.find(e);
            let r2 = dsu.find(e);
            assert_eq!(r1, r2, "seed {seed}");
            // The representative of the representative is itself.
            assert_eq!(dsu.find(r1), r1, "seed {seed}");
        }
    }
}
