//! Property-based tests for the disjoint-set forests: differential testing
//! against a naive label-array implementation.

use futurerd_dsu::{DisjointSets, ElementId, TaggedDisjointSets};
use proptest::prelude::*;

/// A naive O(n) union-find used as the specification.
#[derive(Clone)]
struct NaiveSets {
    label: Vec<usize>,
}

impl NaiveSets {
    fn new() -> Self {
        Self { label: Vec::new() }
    }
    fn make_set(&mut self) -> usize {
        let id = self.label.len();
        self.label.push(id);
        id
    }
    fn same(&self, a: usize, b: usize) -> bool {
        self.label[a] == self.label[b]
    }
    fn union_into(&mut self, winner: usize, victim: usize) {
        let (lw, lv) = (self.label[winner], self.label[victim]);
        if lw == lv {
            return;
        }
        for l in self.label.iter_mut() {
            if *l == lv {
                *l = lw;
            }
        }
    }
    fn num_sets(&self) -> usize {
        let mut labels: Vec<usize> = self.label.clone();
        labels.sort_unstable();
        labels.dedup();
        labels.len()
    }
}

#[derive(Debug, Clone)]
enum Op {
    MakeSet,
    Union(usize, usize),
    CheckSame(usize, usize),
}

fn ops_strategy(max_ops: usize) -> impl Strategy<Value = Vec<Op>> {
    prop::collection::vec(
        prop_oneof![
            2 => Just(Op::MakeSet),
            3 => (0usize..64, 0usize..64).prop_map(|(a, b)| Op::Union(a, b)),
            3 => (0usize..64, 0usize..64).prop_map(|(a, b)| Op::CheckSame(a, b)),
        ],
        1..max_ops,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn forest_matches_naive_model(ops in ops_strategy(200)) {
        let mut dsu = DisjointSets::new();
        let mut naive = NaiveSets::new();
        let mut ids: Vec<ElementId> = Vec::new();

        for op in ops {
            match op {
                Op::MakeSet => {
                    let id = dsu.make_set();
                    let nid = naive.make_set();
                    prop_assert_eq!(id.index(), nid);
                    ids.push(id);
                }
                Op::Union(a, b) if !ids.is_empty() => {
                    let a = a % ids.len();
                    let b = b % ids.len();
                    dsu.union_into(ids[a], ids[b]);
                    naive.union_into(a, b);
                }
                Op::CheckSame(a, b) if !ids.is_empty() => {
                    let a = a % ids.len();
                    let b = b % ids.len();
                    prop_assert_eq!(dsu.same_set(ids[a], ids[b]), naive.same(a, b));
                }
                _ => {}
            }
            prop_assert_eq!(dsu.num_sets(), naive.num_sets());
        }
    }

    #[test]
    fn tagged_forest_tag_is_winners(ops in ops_strategy(200)) {
        // Model: the tag of a set is the label of the "winner chain" root.
        let mut tagged: TaggedDisjointSets<usize> = TaggedDisjointSets::new();
        let mut naive = NaiveSets::new();
        // naive_tag[label] = tag of that set
        let mut naive_tag: Vec<usize> = Vec::new();
        let mut ids: Vec<ElementId> = Vec::new();

        for op in ops {
            match op {
                Op::MakeSet => {
                    let nid = naive.make_set();
                    naive_tag.push(nid); // initial tag = element id
                    let id = tagged.make_set(nid);
                    ids.push(id);
                }
                Op::Union(a, b) if !ids.is_empty() => {
                    let a = a % ids.len();
                    let b = b % ids.len();
                    if !naive.same(a, b) {
                        let winner_tag = naive_tag[naive.label[a]];
                        naive.union_into(a, b);
                        naive_tag[naive.label[a]] = winner_tag;
                    }
                    tagged.union_into(ids[a], ids[b]);
                }
                Op::CheckSame(a, b) if !ids.is_empty() => {
                    let a = a % ids.len();
                    let b = b % ids.len();
                    prop_assert_eq!(tagged.same_set(ids[a], ids[b]), naive.same(a, b));
                    prop_assert_eq!(*tagged.tag(ids[a]), naive_tag[naive.label[a]]);
                    prop_assert_eq!(*tagged.tag(ids[b]), naive_tag[naive.label[b]]);
                }
                _ => {}
            }
        }
    }

    #[test]
    fn find_is_idempotent(n in 1usize..200, unions in prop::collection::vec((0usize..200, 0usize..200), 0..300)) {
        let mut dsu = DisjointSets::new();
        let ids: Vec<_> = (0..n).map(|_| dsu.make_set()).collect();
        for (a, b) in unions {
            dsu.union(ids[a % n], ids[b % n]);
        }
        for &e in &ids {
            let r1 = dsu.find(e);
            let r2 = dsu.find(e);
            prop_assert_eq!(r1, r2);
            // The representative of the representative is itself.
            prop_assert_eq!(dsu.find(r1), r1);
        }
    }
}
