//! Differential fuzzing for the FutureRD detectors.
//!
//! The paper's claim (conf_ppopp_UtterbackAFL19, Sections 4–5) is that
//! MultiBags and MultiBags+ answer exactly the reachability queries a
//! ground-truth dag oracle answers, at amortized-constant cost. This crate
//! is the harness that attacks the claim continuously: per seed it draws an
//! adversarially shaped racy program
//! ([`futurerd_workloads::fuzzgen`]), records its canonical trace, and
//! differentials **every detector over every detection path** against the
//! [`GraphOracle`](futurerd_core::reachability::GraphOracle):
//!
//! * sequential replay of each algorithm, classified against the oracle's
//!   racy-granule set — a sound algorithm that strays is a
//!   [`DivergenceKind::RealBug`]; an unsound-but-runnable one (conservative
//!   SP-Bags on futures, MultiBags on multi-touch) is quantified and
//!   recorded as [`DivergenceKind::KnownApproximation`];
//! * the parallel two-pass engine at P ∈ {1, 2, 8}, which must be
//!   *byte-identical* to sequential replay (witnesses, granule set, and
//!   observation totals) — any difference is a real bug regardless of
//!   algorithm soundness;
//! * the work-assisted pass-1 freeze at P ∈ {2, 8} with forced-low batch
//!   thresholds, whose frozen state must equal the sequential freeze **bit
//!   for bit** ([`IncrementalFreezer::to_raw`]) — any mismatch is a real
//!   scheduling bug;
//! * streaming [`Session`](futurerd::Session)s over random chunkings of the
//!   same events, with a mid-stream report to force the incremental path;
//! * persistent store round-trips: put a prefix, detect, append the rest,
//!   re-detect (incremental), re-detect again (warm cache) — all three must
//!   agree with cold sequential replay.
//!
//! When a real bug is found, [`shrink`] minimizes the failing trace by
//! spec-level strand pruning plus event-range bisection — re-validating the
//! canonical serial-DF order after every candidate — and [`fixture`] emits
//! it as a self-contained regression fixture (FRDTRACE bytes + expected
//! verdict) for `tests/fixtures/`.
//!
//! The harness checks itself: [`Mutation`] plants a bug in one detector
//! (dropping every race, or inventing one), and the crate's tests assert
//! the matrix catches it and shrinks it to a fixture of ≤ 64 events.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod fixture;
pub mod shrink;

use futurerd::{Algorithm, Config};
use futurerd_core::parallel::{par_replay_detect, FreezeAssist, IncrementalFreezer, StdExecutor};
use futurerd_core::races::{AccessKind, Race, RaceReport};
use futurerd_core::replay::{replay_detect_unchecked, ApproximationError, ReplayAlgorithm};
use futurerd_dag::genprog::{Action, FunctionSpec, ProgramSpec};
use futurerd_dag::trace::{Trace, TraceEvent};
use futurerd_dag::{MemAddr, StrandId};
use futurerd_runtime::trace::record_spec;
use futurerd_store::Store;
use futurerd_workloads::fuzzgen::{generate_fuzz_program, FuzzProgram, FuzzShape};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeMap;
use std::path::PathBuf;
use std::time::Instant;

/// A deliberately planted detector bug — the harness's self-test hook. The
/// mutation corrupts the *sequential* verdict of one algorithm before
/// classification, emulating a detector defect; the differential matrix
/// must flag it as a real bug.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mutation {
    /// The algorithm reports no races at all (misses everything).
    DropAllRaces(ReplayAlgorithm),
    /// The algorithm invents a race on a granule nothing ever touched.
    SpuriousRace(ReplayAlgorithm),
}

/// How a divergence from the oracle is classified.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DivergenceKind {
    /// An algorithm running outside its sound program class strayed from
    /// the oracle — expected, quantified, not a failure.
    KnownApproximation,
    /// A sound algorithm (or a supposedly byte-identical detection path)
    /// disagreed with its reference. This fails the fuzz run.
    RealBug,
}

/// One observed divergence between a detector (on some detection path) and
/// its reference verdict.
#[derive(Debug, Clone)]
pub struct Divergence {
    /// Seed of the generated program.
    pub seed: u64,
    /// Generator shape of the program.
    pub shape: FuzzShape,
    /// The algorithm that diverged.
    pub algorithm: ReplayAlgorithm,
    /// The detection path that produced the divergent verdict
    /// (`"sequential"`, `"par(P=2)"`, `"session(chunking=1,threads=2)"`,
    /// `"store(incremental)"`, ...).
    pub path: String,
    /// The classification.
    pub kind: DivergenceKind,
    /// Racy granules the reference found that this verdict missed.
    pub missed: usize,
    /// Granules this verdict reported racy that the reference did not.
    pub spurious: usize,
    /// Human-readable description.
    pub detail: String,
}

impl std::fmt::Display for Divergence {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let kind = match self.kind {
            DivergenceKind::KnownApproximation => "known-approximation",
            DivergenceKind::RealBug => "REAL BUG",
        };
        write!(
            f,
            "[{kind}] seed {} ({}) {} via {}: {} missed, {} spurious — {}",
            self.seed,
            self.shape,
            self.algorithm,
            self.path,
            self.missed,
            self.spurious,
            self.detail
        )
    }
}

/// Knobs for one fuzzing run.
#[derive(Debug, Clone)]
pub struct FuzzOptions {
    /// Parallel-engine widths to check (each must be byte-identical to
    /// sequential replay).
    pub threads: Vec<usize>,
    /// Random session chunkings per seed.
    pub chunkings: u32,
    /// Exercise persistent-store round-trips (put prefix → detect → append
    /// → incremental detect → warm detect).
    pub store_checks: bool,
    /// Directory for the round-trip store; `None` uses a per-process temp
    /// directory that is removed when the run finishes.
    pub store_dir: Option<PathBuf>,
    /// Plant a detector bug (self-test of the harness).
    pub mutation: Option<Mutation>,
    /// Stop drawing new seeds after this instant (for `--minutes` budgets).
    pub deadline: Option<Instant>,
}

impl Default for FuzzOptions {
    fn default() -> Self {
        Self {
            threads: vec![1, 2, 8],
            chunkings: 2,
            store_checks: true,
            store_dir: None,
            mutation: None,
            deadline: None,
        }
    }
}

/// What one seed produced.
#[derive(Debug)]
pub struct SeedOutcome {
    /// The seed.
    pub seed: u64,
    /// Generator shape drawn for the seed.
    pub shape: FuzzShape,
    /// Events in the recorded trace.
    pub events: usize,
    /// Distinct racy granules per the ground-truth oracle.
    pub oracle_races: usize,
    /// Every divergence observed across the detector × path matrix.
    pub divergences: Vec<Divergence>,
}

/// Aggregate result of [`run_fuzz`].
#[derive(Debug, Default)]
pub struct FuzzSummary {
    /// Seeds actually run (the deadline may cut a range short).
    pub seeds_run: u64,
    /// Total events replayed.
    pub events: u64,
    /// Total distinct racy granules the oracle found.
    pub oracle_races: u64,
    /// Divergences classified as known approximations.
    pub known_approximations: u64,
    /// Racy granules missed across the known approximations.
    pub approx_missed: u64,
    /// Spurious racy granules across the known approximations.
    pub approx_spurious: u64,
    /// Divergences classified as real bugs — must be empty for a clean run.
    pub real_bugs: Vec<Divergence>,
    /// Seeds per generator shape.
    pub per_shape: BTreeMap<&'static str, u64>,
}

impl FuzzSummary {
    /// True if no divergence was left unexplained: every one is a known
    /// approximation.
    pub fn clean(&self) -> bool {
        self.real_bugs.is_empty()
    }

    /// The one-line verdict printed by the CLI, with the divergent racy
    /// granules classified per kind (known approximation vs real bug) and
    /// direction (missed vs spurious).
    pub fn summary_line(&self) -> String {
        let shapes: Vec<String> = self
            .per_shape
            .iter()
            .map(|(shape, count)| format!("{shape}:{count}"))
            .collect();
        let bug_missed: usize = self.real_bugs.iter().map(|d| d.missed).sum();
        let bug_spurious: usize = self.real_bugs.iter().map(|d| d.spurious).sum();
        format!(
            "fuzz: {} seed(s) [{}], {} events, {} oracle racy granules, {} known approximation(s) ({} missed / {} spurious), {} real bug(s) ({} missed / {} spurious) => {}",
            self.seeds_run,
            shapes.join(" "),
            self.events,
            self.oracle_races,
            self.known_approximations,
            self.approx_missed,
            self.approx_spurious,
            self.real_bugs.len(),
            bug_missed,
            bug_spurious,
            if self.clean() { "CLEAN" } else { "DIVERGED" },
        )
    }
}

/// Runs the full differential matrix over a seed range. Stops early at
/// [`FuzzOptions::deadline`].
pub fn run_fuzz(seeds: std::ops::Range<u64>, opts: &FuzzOptions) -> FuzzSummary {
    let (mut store, temp_dir) = if opts.store_checks {
        let (dir, temp) = match &opts.store_dir {
            Some(dir) => (dir.clone(), None),
            None => {
                let dir = std::env::temp_dir().join(format!(
                    "futurerd-fuzz-{}-{}",
                    std::process::id(),
                    seeds.start
                ));
                (dir.clone(), Some(dir))
            }
        };
        (Store::open(&dir).ok(), temp)
    } else {
        (None, None)
    };

    let mut summary = FuzzSummary::default();
    for seed in seeds {
        if opts.deadline.is_some_and(|d| Instant::now() >= d) {
            break;
        }
        let outcome = fuzz_seed(seed, opts, store.as_mut());
        summary.seeds_run += 1;
        summary.events += outcome.events as u64;
        summary.oracle_races += outcome.oracle_races as u64;
        *summary.per_shape.entry(outcome.shape.name()).or_default() += 1;
        for divergence in outcome.divergences {
            match divergence.kind {
                DivergenceKind::KnownApproximation => {
                    summary.known_approximations += 1;
                    summary.approx_missed += divergence.missed as u64;
                    summary.approx_spurious += divergence.spurious as u64;
                }
                DivergenceKind::RealBug => summary.real_bugs.push(divergence),
            }
        }
    }
    drop(store);
    if let Some(dir) = temp_dir {
        std::fs::remove_dir_all(dir).ok();
    }
    summary
}

/// Runs the differential matrix for one seed.
pub fn fuzz_seed(seed: u64, opts: &FuzzOptions, store: Option<&mut Store>) -> SeedOutcome {
    let program = generate_fuzz_program(seed);
    let (trace, _) = record_spec(&program.spec);
    let mut outcome = SeedOutcome {
        seed,
        shape: program.shape,
        events: trace.len(),
        oracle_races: 0,
        divergences: Vec::new(),
    };

    if let Err(err) = trace.validate() {
        outcome.divergences.push(Divergence {
            seed,
            shape: program.shape,
            algorithm: ReplayAlgorithm::GraphOracle,
            path: "recorder".to_string(),
            kind: DivergenceKind::RealBug,
            missed: 0,
            spurious: 0,
            detail: format!("recorded trace is not canonical: {err}"),
        });
        return outcome;
    }

    let oracle = replay_detect_unchecked(&trace, ReplayAlgorithm::GraphOracle);
    outcome.oracle_races = oracle.race_count();

    // Planted races are a ground-truth lower bound: the oracle itself is on
    // trial here — a planted granule it misses is a bug in the ground truth.
    for granule in planted_granules(&program) {
        if !oracle.is_racy(MemAddr(granule * MemAddr::GRANULARITY)) {
            outcome.divergences.push(Divergence {
                seed,
                shape: program.shape,
                algorithm: ReplayAlgorithm::GraphOracle,
                path: "sequential".to_string(),
                kind: DivergenceKind::RealBug,
                missed: 1,
                spurious: 0,
                detail: format!("oracle missed the planted race on granule {granule}"),
            });
        }
    }

    // Sequential verdict of every runnable algorithm, classified against
    // the oracle.
    for divergence in classify_sequential(&trace, opts.mutation) {
        outcome.divergences.push(Divergence {
            seed,
            shape: program.shape,
            ..divergence
        });
    }

    // Parallel engine: byte-identical to sequential replay at every width,
    // soundness notwithstanding (determinism is unconditional).
    for algorithm in ReplayAlgorithm::ALL {
        if !algorithm.runnable_for(&trace) {
            continue;
        }
        let sequential = replay_detect_unchecked(&trace, algorithm);
        for &threads in &opts.threads {
            match par_replay_detect(&trace, algorithm, threads) {
                Ok(parallel) if parallel == sequential => {}
                Ok(parallel) => outcome.divergences.push(path_bug(
                    seed,
                    program.shape,
                    algorithm,
                    format!("par(P={threads})"),
                    &parallel,
                    &sequential,
                )),
                Err(err) => outcome.divergences.push(Divergence {
                    seed,
                    shape: program.shape,
                    algorithm,
                    path: format!("par(P={threads})"),
                    kind: DivergenceKind::RealBug,
                    missed: 0,
                    spurious: 0,
                    detail: format!("parallel replay failed on a valid trace: {err}"),
                }),
            }
        }
    }

    // Streaming sessions over random chunkings, with a mid-stream report to
    // force the incremental path.
    for algorithm in ReplayAlgorithm::ALL {
        if !algorithm.runnable_for(&trace) {
            continue;
        }
        let sequential = replay_detect_unchecked(&trace, algorithm);
        for chunking in 0..opts.chunkings {
            let threads = if chunking % 2 == 0 { 1 } else { 2 };
            let mut rng = StdRng::seed_from_u64(seed ^ (u64::from(chunking) << 32) ^ 0xc09c);
            match session_report(&trace, algorithm, threads, &mut rng) {
                Ok(report) if report == sequential => {}
                Ok(report) => outcome.divergences.push(path_bug(
                    seed,
                    program.shape,
                    algorithm,
                    format!("session(chunking={chunking},threads={threads})"),
                    &report,
                    &sequential,
                )),
                Err(err) => outcome.divergences.push(Divergence {
                    seed,
                    shape: program.shape,
                    algorithm,
                    path: format!("session(chunking={chunking},threads={threads})"),
                    kind: DivergenceKind::RealBug,
                    missed: 0,
                    spurious: 0,
                    detail: format!("session failed on a valid stream: {err}"),
                }),
            }
        }
    }

    // Persistent store round-trips (freezable algorithms only: the store
    // rejects the rest by design).
    if let Some(store) = store {
        let mut rng = StdRng::seed_from_u64(seed ^ 0x5703);
        for algorithm in [ReplayAlgorithm::MultiBags, ReplayAlgorithm::MultiBagsPlus] {
            let tag = if algorithm == ReplayAlgorithm::MultiBags {
                "mb"
            } else {
                "mbp"
            };
            let name = format!("s{seed}-{tag}");
            match store_roundtrip(store, &name, &trace, algorithm, &mut rng) {
                Ok(mismatches) => {
                    for (path, report) in mismatches {
                        let sequential = replay_detect_unchecked(&trace, algorithm);
                        outcome.divergences.push(path_bug(
                            seed,
                            program.shape,
                            algorithm,
                            path,
                            &report,
                            &sequential,
                        ));
                    }
                }
                Err(err) => outcome.divergences.push(Divergence {
                    seed,
                    shape: program.shape,
                    algorithm,
                    path: "store".to_string(),
                    kind: DivergenceKind::RealBug,
                    missed: 0,
                    spurious: 0,
                    detail: format!("store round-trip failed: {err}"),
                }),
            }
        }
    }

    outcome
}

/// Single-process classification: replays every runnable algorithm
/// (applying the planted [`Mutation`], if any) and measures each verdict
/// against the oracle's racy-granule set, then pushes every freezable
/// algorithm through the work-assisted pass-1 freeze at P ∈ {2, 8} and
/// byte-compares the frozen state against the sequential freeze. The
/// `seed`/`shape` fields of the returned divergences are placeholders —
/// [`fuzz_seed`] fills them in; the shrinker uses this directly as its
/// failure predicate.
pub fn classify_sequential(trace: &Trace, mutation: Option<Mutation>) -> Vec<Divergence> {
    let oracle = replay_detect_unchecked(trace, ReplayAlgorithm::GraphOracle);
    let mut divergences = Vec::new();
    for algorithm in ReplayAlgorithm::ALL {
        if algorithm == ReplayAlgorithm::GraphOracle || !algorithm.runnable_for(trace) {
            continue;
        }
        let report = detect_mutated(trace, algorithm, mutation);
        let error = ApproximationError::measure(algorithm, &report, &oracle);
        if error.is_exact() {
            continue;
        }
        let sound = algorithm.sound_for(trace);
        divergences.push(Divergence {
            seed: 0,
            shape: FuzzShape::Structured,
            algorithm,
            path: "sequential".to_string(),
            kind: if sound {
                DivergenceKind::RealBug
            } else {
                DivergenceKind::KnownApproximation
            },
            missed: error.missed,
            spurious: error.spurious,
            detail: if sound {
                format!("sound algorithm diverged from the oracle ({error})")
            } else {
                format!("approximate verdict outside the sound class ({error})")
            },
        });
    }
    // The work-assisted pass-1 freeze carries a byte-identity contract: the
    // frozen state it leaves behind must equal the sequential freeze bit for
    // bit at every worker count. Any mismatch is a real scheduling bug, so it
    // is classified (and shrunk) exactly like the other parallel paths. The
    // thresholds are forced low so even shrunken traces exercise real
    // chunking.
    for algorithm in ReplayAlgorithm::ALL {
        if !algorithm.freezable() {
            continue;
        }
        let mut seq = IncrementalFreezer::new(algorithm).expect("freezable algorithm");
        seq.extend(trace.events());
        let expected = seq.to_raw();
        let executor = StdExecutor;
        for workers in [2usize, 8] {
            let assist = FreezeAssist::new(workers, &executor)
                .with_min_batch(2)
                .with_unit_target(4);
            let mut par = IncrementalFreezer::new(algorithm).expect("freezable algorithm");
            par.extend_assisted(trace.events(), &assist);
            if par.to_raw() != expected {
                divergences.push(Divergence {
                    seed: 0,
                    shape: FuzzShape::Structured,
                    algorithm,
                    path: format!("freeze(P={workers})"),
                    kind: DivergenceKind::RealBug,
                    missed: 0,
                    spurious: 0,
                    detail: "work-assisted freeze left a different frozen state \
                             than the sequential pass"
                        .to_string(),
                });
            }
        }
    }
    divergences
}

/// True if the trace still exhibits a sequential real-bug divergence — the
/// shrinker's failure predicate.
pub fn has_real_bug(trace: &Trace, mutation: Option<Mutation>) -> bool {
    classify_sequential(trace, mutation)
        .iter()
        .any(|d| d.kind == DivergenceKind::RealBug)
}

/// Replays `algorithm` and applies the planted mutation to its verdict.
fn detect_mutated(
    trace: &Trace,
    algorithm: ReplayAlgorithm,
    mutation: Option<Mutation>,
) -> RaceReport {
    let mut report = replay_detect_unchecked(trace, algorithm);
    match mutation {
        Some(Mutation::DropAllRaces(target)) if target == algorithm => {
            let approximate = report.is_approximate();
            report = RaceReport::default();
            if approximate {
                report.mark_approximate();
            }
        }
        Some(Mutation::SpuriousRace(target)) if target == algorithm => {
            report.record(Race {
                addr: MemAddr(0xdead_0000),
                prior_strand: StrandId(0),
                prior_kind: AccessKind::Write,
                current_strand: StrandId(0),
                current_kind: AccessKind::Write,
            });
        }
        _ => {}
    }
    report
}

/// Builds the real-bug divergence for a detection path whose report failed
/// the byte-identity check against sequential replay.
fn path_bug(
    seed: u64,
    shape: FuzzShape,
    algorithm: ReplayAlgorithm,
    path: String,
    got: &RaceReport,
    want: &RaceReport,
) -> Divergence {
    let error = ApproximationError::measure(algorithm, got, want);
    let detail = if error.is_exact() {
        format!(
            "same racy granules but different reports (witnesses/observations): \
             {} vs {} observation(s)",
            got.total_observations(),
            want.total_observations()
        )
    } else {
        format!("path verdict differs from sequential replay ({error})")
    };
    Divergence {
        seed,
        shape,
        algorithm,
        path,
        kind: DivergenceKind::RealBug,
        missed: error.missed,
        spurious: error.spurious,
        detail,
    }
}

/// Feeds the trace into a streaming session in random chunks, forcing one
/// mid-stream report, and returns the final report.
fn session_report(
    trace: &Trace,
    algorithm: ReplayAlgorithm,
    threads: usize,
    rng: &mut StdRng,
) -> Result<RaceReport, futurerd::Error> {
    let events = trace.events();
    let mut session = Config::new()
        .algorithm(facade_algorithm(algorithm))
        .threads(threads)
        .session();
    let mid = rng.gen_range(0..=events.len());
    let mut reported_mid = false;
    let mut at = 0;
    while at < events.len() {
        let max_step = (events.len() / 3).max(1).min(events.len() - at);
        let step = rng.gen_range(1..=max_step);
        session.ingest(&events[at..at + step])?;
        at += step;
        if !reported_mid && at >= mid {
            session.report()?;
            reported_mid = true;
        }
    }
    let detection = session.report()?;
    Ok(detection
        .report
        .expect("full-analysis sessions always carry a report"))
}

/// One store round-trip: put a random prefix, detect cold, append the rest,
/// detect incrementally, detect again warm. Returns the reports of the
/// final-state paths that must match sequential replay.
fn store_roundtrip(
    store: &mut Store,
    name: &str,
    trace: &Trace,
    algorithm: ReplayAlgorithm,
    rng: &mut StdRng,
) -> Result<Vec<(String, RaceReport)>, futurerd_store::StoreError> {
    let sequential = replay_detect_unchecked(trace, algorithm);
    let events = trace.events();
    let split = rng.gen_range(1..events.len());
    let mut prefix = Trace::new();
    prefix.extend_events(&events[..split]);
    store.put_trace(name, &prefix)?;
    // The cold prefix verdict is not compared (the prefix is a different
    // stream); it exists to leave a sidecar the append invalidates.
    store.detect(name, algorithm, 2)?;
    store.append_events(name, &events[split..])?;
    let incremental = store.detect(name, algorithm, 2)?;
    let warm = store.detect(name, algorithm, 2)?;
    let mut mismatches = Vec::new();
    if incremental.report != sequential {
        mismatches.push((format!("store({})", incremental.path), incremental.report));
    }
    if warm.report != sequential {
        mismatches.push((format!("store({})", warm.path), warm.report));
    }
    Ok(mismatches)
}

/// Maps a replay algorithm onto the facade's algorithm selector.
fn facade_algorithm(algorithm: ReplayAlgorithm) -> Algorithm {
    match algorithm {
        ReplayAlgorithm::MultiBags => Algorithm::MultiBags,
        ReplayAlgorithm::MultiBagsPlus => Algorithm::MultiBagsPlus,
        ReplayAlgorithm::SpBags => Algorithm::SpBags,
        ReplayAlgorithm::SpBagsConservative => Algorithm::SpBagsConservative,
        ReplayAlgorithm::GraphOracle => Algorithm::GraphOracle,
    }
}

/// Resolves the granules of a program's planted locations by probing: a
/// one-compute spec with the same location count writes exactly the planted
/// locations, and the recorded `Write` events carry their addresses (the
/// bump allocator is deterministic, so the probe and the real run place the
/// shadow array identically).
pub fn planted_granules(program: &FuzzProgram) -> Vec<u64> {
    if program.planted.is_empty() {
        return Vec::new();
    }
    let probe = ProgramSpec {
        root: FunctionSpec {
            actions: vec![Action::Compute {
                reads: Vec::new(),
                writes: program.planted.clone(),
            }],
        },
        num_locations: program.spec.num_locations,
        num_futures: 0,
        structured: true,
    };
    let (trace, _) = record_spec(&probe);
    trace
        .events()
        .iter()
        .filter_map(|event| match event {
            TraceEvent::Write { addr, .. } => Some(addr.granule()),
            _ => None,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn a_seed_range_runs_clean() {
        let opts = FuzzOptions {
            threads: vec![1, 2],
            chunkings: 1,
            store_checks: false,
            ..FuzzOptions::default()
        };
        let summary = run_fuzz(0..30, &opts);
        assert_eq!(summary.seeds_run, 30);
        assert!(summary.clean(), "{:#?}", summary.real_bugs);
        assert!(summary.oracle_races > 0, "the generator must produce races");
        assert_eq!(summary.per_shape.len(), FuzzShape::ALL.len());
        assert!(summary.summary_line().contains("CLEAN"));
    }

    #[test]
    fn store_roundtrips_run_clean() {
        let opts = FuzzOptions {
            threads: vec![2],
            chunkings: 0,
            store_checks: true,
            ..FuzzOptions::default()
        };
        let summary = run_fuzz(100..112, &opts);
        assert!(summary.clean(), "{:#?}", summary.real_bugs);
    }

    #[test]
    fn planted_granules_match_the_oracle() {
        let program = futurerd_workloads::fuzzgen::generate_shaped(FuzzShape::PlantedRaces, 4);
        let granules = planted_granules(&program);
        assert_eq!(granules.len(), program.planted.len());
        let (trace, _) = record_spec(&program.spec);
        let oracle = replay_detect_unchecked(&trace, ReplayAlgorithm::GraphOracle);
        for granule in granules {
            assert!(oracle.is_racy(MemAddr(granule * MemAddr::GRANULARITY)));
        }
    }

    #[test]
    fn dropped_races_are_flagged_as_a_real_bug() {
        let mutation = Some(Mutation::DropAllRaces(ReplayAlgorithm::MultiBagsPlus));
        let opts = FuzzOptions {
            threads: vec![1],
            chunkings: 0,
            store_checks: false,
            mutation,
            ..FuzzOptions::default()
        };
        let summary = run_fuzz(0..12, &opts);
        assert!(
            !summary.clean(),
            "a detector that reports nothing must be caught"
        );
        let bug = &summary.real_bugs[0];
        assert_eq!(bug.algorithm, ReplayAlgorithm::MultiBagsPlus);
        assert_eq!(bug.kind, DivergenceKind::RealBug);
        assert!(bug.missed > 0);
        assert!(bug.to_string().contains("REAL BUG"));
    }

    #[test]
    fn spurious_races_are_flagged_as_a_real_bug() {
        let mutation = Some(Mutation::SpuriousRace(ReplayAlgorithm::MultiBags));
        // Structured seeds keep MultiBags sound, so the invented granule is
        // a real bug, not an approximation.
        let program = generate_fuzz_program(0);
        assert_eq!(program.shape, FuzzShape::Structured);
        let (trace, _) = record_spec(&program.spec);
        if !ReplayAlgorithm::MultiBags.sound_for(&trace) {
            panic!("seed 0 must draw a structured program for this test");
        }
        let divergences = classify_sequential(&trace, mutation);
        let bug = divergences
            .iter()
            .find(|d| d.kind == DivergenceKind::RealBug)
            .expect("the spurious granule must surface");
        assert_eq!(bug.algorithm, ReplayAlgorithm::MultiBags);
        assert!(bug.spurious > 0);
    }

    #[test]
    fn conservative_spbags_divergences_are_classified_not_fatal() {
        // The speculation shape always races through futures, where the
        // conservative fallback is unsound: its divergences must be
        // classified as known approximations, never real bugs.
        let mut saw_approximation = false;
        for seed in 0..30u64 {
            let program =
                futurerd_workloads::fuzzgen::generate_shaped(FuzzShape::Speculation, seed);
            let (trace, _) = record_spec(&program.spec);
            for divergence in classify_sequential(&trace, None) {
                assert_eq!(
                    divergence.kind,
                    DivergenceKind::KnownApproximation,
                    "{divergence}"
                );
                saw_approximation = true;
            }
        }
        assert!(
            saw_approximation,
            "speculation must expose the baseline's error"
        );
    }
}
