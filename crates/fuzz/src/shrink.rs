//! Failing-trace minimization.
//!
//! Shrinking happens at two levels, both re-validating the canonical
//! serial-DF order after every candidate:
//!
//! 1. **Spec-level strand pruning** — delta-debugging over the generated
//!    program's action tree: contiguous action ranges are removed from each
//!    function body (removing a `Spawn`/`CreateFuture` prunes the whole
//!    strand subtree), dangling `get_fut`s of removed futures are dropped,
//!    and the candidate is re-recorded; it is kept only when its trace is
//!    canonical and the failure predicate still fires.
//! 2. **Event-range bisection** — contiguous ranges of memory-access events
//!    are removed from the recorded trace directly (structural events stay,
//!    so the stream remains canonical by construction, which
//!    [`Trace::validate`] re-confirms).
//!
//! The result is a minimal self-contained trace suitable for a committed
//! regression fixture (see [`crate::fixture`]).

use futurerd_dag::genprog::{Action, FunctionSpec, FutId, ProgramSpec};
use futurerd_dag::trace::{Trace, TraceEvent};
use futurerd_runtime::trace::record_spec;
use std::collections::HashSet;

/// The outcome of shrinking one failing program.
#[derive(Debug)]
pub struct ShrinkResult {
    /// The minimized program spec.
    pub spec: ProgramSpec,
    /// The minimized trace recorded from it (after access bisection).
    pub trace: Trace,
    /// Events in the original recorded trace.
    pub original_events: usize,
}

/// Minimizes a failing program against `fails` (a predicate that re-runs
/// whatever check originally failed — e.g.
/// [`has_real_bug`](crate::has_real_bug)). The input program's recorded
/// trace must satisfy `fails`; the returned trace still does, is canonical,
/// and is at most as long as the input's.
pub fn shrink_failing_program(
    spec: &ProgramSpec,
    fails: &mut dyn FnMut(&Trace) -> bool,
) -> ShrinkResult {
    let (original, _) = record_spec(spec);
    debug_assert!(
        fails(&original),
        "shrink_failing_program: the input must fail the predicate"
    );
    let spec = shrink_spec(spec.clone(), fails);
    let (trace, _) = record_spec(&spec);
    let trace = shrink_trace_accesses(&trace, fails);
    ShrinkResult {
        spec,
        trace,
        original_events: original.len(),
    }
}

/// Spec-level pass: remove action ranges (largest first) from every
/// function body until no removal keeps the failure alive.
fn shrink_spec(mut spec: ProgramSpec, fails: &mut dyn FnMut(&Trace) -> bool) -> ProgramSpec {
    'restart: loop {
        for path in body_paths(&spec) {
            let len = body_at(&spec, &path).actions.len();
            let mut chunk = (len / 2).max(1);
            loop {
                let mut start = 0;
                while start < body_at(&spec, &path).actions.len() {
                    if let Some(candidate) = remove_range(&spec, &path, start, chunk) {
                        let (trace, _) = record_spec(&candidate);
                        if trace.validate().is_ok() && fails(&trace) {
                            spec = candidate;
                            // The tree changed shape: recompute the paths.
                            continue 'restart;
                        }
                    }
                    start += chunk;
                }
                if chunk == 1 {
                    break;
                }
                chunk /= 2;
            }
        }
        return spec;
    }
}

/// Trace-level pass: bisect away contiguous ranges of `Read`/`Write`
/// events. Structural events are never touched, so candidates stay
/// canonical; `validate` re-confirms before the predicate runs.
pub fn shrink_trace_accesses(trace: &Trace, fails: &mut dyn FnMut(&Trace) -> bool) -> Trace {
    let mut best = trace.clone();
    let mut chunk = (access_positions(&best).len() / 2).max(1);
    loop {
        let accesses = access_positions(&best);
        if accesses.is_empty() {
            return best;
        }
        let chunk_now = chunk.min(accesses.len());
        let mut progressed = false;
        let mut start = 0;
        while start < access_positions(&best).len() {
            let accesses = access_positions(&best);
            let drop: HashSet<usize> = accesses[start..(start + chunk_now).min(accesses.len())]
                .iter()
                .copied()
                .collect();
            let mut candidate = Trace::new();
            let kept: Vec<TraceEvent> = best
                .events()
                .iter()
                .enumerate()
                .filter(|(i, _)| !drop.contains(i))
                .map(|(_, e)| *e)
                .collect();
            candidate.extend_events(&kept);
            if candidate.validate().is_ok() && fails(&candidate) {
                best = candidate;
                progressed = true;
                // Indices shifted: re-enter at the same start.
            } else {
                start += chunk_now;
            }
        }
        if !progressed {
            if chunk == 1 {
                return best;
            }
            chunk /= 2;
        }
    }
}

/// Indices of the memory-access events in a trace.
fn access_positions(trace: &Trace) -> Vec<usize> {
    trace
        .events()
        .iter()
        .enumerate()
        .filter(|(_, e)| matches!(e, TraceEvent::Read { .. } | TraceEvent::Write { .. }))
        .map(|(i, _)| i)
        .collect()
}

/// Paths (sequences of action indices through nested `Spawn`/`CreateFuture`
/// bodies) of every function body in the spec, root first.
fn body_paths(spec: &ProgramSpec) -> Vec<Vec<usize>> {
    let mut paths = Vec::new();
    collect_paths(&spec.root, Vec::new(), &mut paths);
    paths
}

fn collect_paths(body: &FunctionSpec, path: Vec<usize>, out: &mut Vec<Vec<usize>>) {
    out.push(path.clone());
    for (index, action) in body.actions.iter().enumerate() {
        if let Action::Spawn(child) | Action::CreateFuture(_, child) = action {
            let mut child_path = path.clone();
            child_path.push(index);
            collect_paths(child, child_path, out);
        }
    }
}

fn body_at<'s>(spec: &'s ProgramSpec, path: &[usize]) -> &'s FunctionSpec {
    let mut body = &spec.root;
    for &index in path {
        body = match &body.actions[index] {
            Action::Spawn(child) | Action::CreateFuture(_, child) => child,
            other => unreachable!("path step through a leaf action: {other:?}"),
        };
    }
    body
}

fn body_at_mut<'s>(spec: &'s mut ProgramSpec, path: &[usize]) -> &'s mut FunctionSpec {
    let mut body = &mut spec.root;
    for &index in path {
        body = match &mut body.actions[index] {
            Action::Spawn(child) | Action::CreateFuture(_, child) => child,
            other => unreachable!("path step through a leaf action: {other:?}"),
        };
    }
    body
}

/// Removes `len` actions starting at `start` from the body at `path`, then
/// drops every `get_fut` whose future no longer exists anywhere in the
/// candidate (removing a `create_fut` prunes its strand *and* orphans its
/// getters). Returns `None` when the range is empty or out of bounds.
fn remove_range(
    spec: &ProgramSpec,
    path: &[usize],
    start: usize,
    len: usize,
) -> Option<ProgramSpec> {
    let mut candidate = spec.clone();
    let body = body_at_mut(&mut candidate, path);
    if start >= body.actions.len() || len == 0 {
        return None;
    }
    let end = (start + len).min(body.actions.len());
    body.actions.drain(start..end);
    let mut created = HashSet::new();
    collect_created(&candidate.root, &mut created);
    drop_orphan_gets(&mut candidate.root, &created);
    candidate.num_futures = created.len() as u32;
    Some(candidate)
}

fn collect_created(body: &FunctionSpec, out: &mut HashSet<FutId>) {
    for action in &body.actions {
        match action {
            Action::CreateFuture(id, child) => {
                out.insert(*id);
                collect_created(child, out);
            }
            Action::Spawn(child) => collect_created(child, out),
            _ => {}
        }
    }
}

fn drop_orphan_gets(body: &mut FunctionSpec, created: &HashSet<FutId>) {
    body.actions.retain(|action| match action {
        Action::GetFuture(id) => created.contains(id),
        _ => true,
    });
    for action in &mut body.actions {
        if let Action::Spawn(child) | Action::CreateFuture(_, child) = action {
            drop_orphan_gets(child, created);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{has_real_bug, Mutation};
    use futurerd_core::replay::{replay_detect_unchecked, ReplayAlgorithm};
    use futurerd_workloads::fuzzgen::{generate_shaped, FuzzShape};

    #[test]
    fn shrinks_a_planted_detector_bug_to_a_tiny_trace() {
        let mutation = Some(Mutation::DropAllRaces(ReplayAlgorithm::MultiBagsPlus));
        let program = generate_shaped(FuzzShape::PlantedRaces, 11);
        let mut fails = |t: &Trace| has_real_bug(t, mutation);
        let (original, _) = record_spec(&program.spec);
        assert!(fails(&original), "the mutation must fire on a racy program");
        let result = shrink_failing_program(&program.spec, &mut fails);
        assert!(
            result.trace.validate().is_ok(),
            "shrunk trace stays canonical"
        );
        assert!(fails(&result.trace), "shrunk trace still fails");
        assert!(
            result.trace.len() <= 64,
            "expected <= 64 events, got {} (from {})",
            result.trace.len(),
            result.original_events
        );
        assert!(result.trace.len() <= result.original_events);
    }

    #[test]
    fn shrinking_preserves_the_oracle_verdict_when_asked_to() {
        // Corpus-style predicate: the oracle's racy-granule set must stay
        // exactly what it was.
        let program = generate_shaped(FuzzShape::Pipeline, 3);
        let (original, _) = record_spec(&program.spec);
        let want: Vec<u64> = {
            let mut g: Vec<u64> = replay_detect_unchecked(&original, ReplayAlgorithm::GraphOracle)
                .racy_granules()
                .collect();
            g.sort_unstable();
            g
        };
        assert!(!want.is_empty(), "pipeline seed 3 must race");
        let mut fails = |t: &Trace| {
            let mut got: Vec<u64> = replay_detect_unchecked(t, ReplayAlgorithm::GraphOracle)
                .racy_granules()
                .collect();
            got.sort_unstable();
            got == want
        };
        let result = shrink_failing_program(&program.spec, &mut fails);
        let mut got: Vec<u64> =
            replay_detect_unchecked(&result.trace, ReplayAlgorithm::GraphOracle)
                .racy_granules()
                .collect();
        got.sort_unstable();
        assert_eq!(got, want);
        assert!(result.trace.len() <= result.original_events);
    }

    #[test]
    fn orphan_gets_are_dropped_with_their_create() {
        // Removing the create of an adversarial chain's future must drop
        // its gets everywhere instead of panicking the interpreter.
        let program = futurerd_workloads::fuzzgen::adversarial_kn(6, 2);
        let spec = &program.spec;
        // Remove the first create (index 0 of the root body).
        let candidate = remove_range(spec, &[], 0, 1).expect("non-empty range");
        let (trace, _) = record_spec(&candidate); // must not panic
        assert!(trace.validate().is_ok());
    }
}
