//! Self-contained regression fixtures: FRDTRACE bytes + expected verdict.
//!
//! A fixture is a pair of files in `tests/fixtures/`:
//!
//! * `<name>.frdtrace` — the minimized trace, in the versioned FRDTRACE
//!   container ([`Trace::save`]);
//! * `<name>.expect` — a small `key = value` text file with the expected
//!   ground-truth verdict (oracle racy-granule set) and provenance (seed,
//!   generator shape).
//!
//! The corpus regression test replays every fixture through the full
//! detector matrix on each `cargo test` run; [`emit_corpus`] regenerates
//! the committed corpus (see `tests/fixtures/README.md`).

use crate::shrink::shrink_failing_program;
use futurerd_core::replay::{replay_detect_unchecked, ReplayAlgorithm};
use futurerd_dag::trace::Trace;
use futurerd_runtime::trace::record_spec;
use futurerd_workloads::fuzzgen::{generate_shaped, FuzzShape};
use std::io;
use std::path::Path;

/// The expected verdict (and provenance) of one fixture.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Expect {
    /// Seed the program was generated from.
    pub seed: u64,
    /// Generator shape name (see [`FuzzShape::name`]).
    pub shape: String,
    /// Events in the fixture trace.
    pub events: usize,
    /// Distinct racy granules per the ground-truth oracle.
    pub oracle_races: usize,
    /// The oracle's racy granules, sorted ascending.
    pub racy_granules: Vec<u64>,
}

impl Expect {
    /// Computes the expected verdict of `trace` from the ground-truth
    /// oracle.
    pub fn from_trace(seed: u64, shape: FuzzShape, trace: &Trace) -> Expect {
        let oracle = replay_detect_unchecked(trace, ReplayAlgorithm::GraphOracle);
        let mut racy_granules: Vec<u64> = oracle.racy_granules().collect();
        racy_granules.sort_unstable();
        Expect {
            seed,
            shape: shape.name().to_string(),
            events: trace.len(),
            oracle_races: oracle.race_count(),
            racy_granules,
        }
    }
}

/// One loaded fixture.
#[derive(Debug)]
pub struct Fixture {
    /// Fixture name (file stem).
    pub name: String,
    /// The trace.
    pub trace: Trace,
    /// The expected verdict.
    pub expect: Expect,
}

/// Writes `<name>.frdtrace` + `<name>.expect` into `dir`.
pub fn write_fixture(dir: &Path, name: &str, trace: &Trace, expect: &Expect) -> io::Result<()> {
    std::fs::create_dir_all(dir)?;
    trace
        .save(dir.join(format!("{name}.frdtrace")))
        .map_err(io::Error::other)?;
    let granules: Vec<String> = expect.racy_granules.iter().map(u64::to_string).collect();
    let text = format!(
        "# futurerd-fuzz regression fixture; see tests/fixtures/README.md\n\
         seed = {}\n\
         shape = {}\n\
         events = {}\n\
         oracle_races = {}\n\
         racy_granules = {}\n",
        expect.seed,
        expect.shape,
        expect.events,
        expect.oracle_races,
        granules.join(",")
    );
    std::fs::write(dir.join(format!("{name}.expect")), text)
}

/// Parses a `.expect` file.
pub fn read_expect(path: &Path) -> io::Result<Expect> {
    let text = std::fs::read_to_string(path)?;
    let mut expect = Expect {
        seed: 0,
        shape: String::new(),
        events: 0,
        oracle_races: 0,
        racy_granules: Vec::new(),
    };
    let bad = |line: &str| io::Error::other(format!("malformed expect line: {line:?}"));
    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let (key, value) = line.split_once('=').ok_or_else(|| bad(line))?;
        let (key, value) = (key.trim(), value.trim());
        match key {
            "seed" => expect.seed = value.parse().map_err(|_| bad(line))?,
            "shape" => expect.shape = value.to_string(),
            "events" => expect.events = value.parse().map_err(|_| bad(line))?,
            "oracle_races" => expect.oracle_races = value.parse().map_err(|_| bad(line))?,
            "racy_granules" => {
                expect.racy_granules = if value.is_empty() {
                    Vec::new()
                } else {
                    value
                        .split(',')
                        .map(|g| g.trim().parse().map_err(|_| bad(line)))
                        .collect::<io::Result<Vec<u64>>>()?
                };
            }
            _ => return Err(bad(line)),
        }
    }
    Ok(expect)
}

/// Loads every `*.frdtrace` + `*.expect` pair in `dir`, sorted by name.
pub fn load_fixtures(dir: &Path) -> io::Result<Vec<Fixture>> {
    let mut names: Vec<String> = std::fs::read_dir(dir)?
        .filter_map(|entry| {
            let path = entry.ok()?.path();
            (path.extension()? == "frdtrace")
                .then(|| path.file_stem().unwrap().to_string_lossy().into_owned())
        })
        .collect();
    names.sort();
    names
        .into_iter()
        .map(|name| {
            let trace =
                Trace::load(dir.join(format!("{name}.frdtrace"))).map_err(io::Error::other)?;
            let expect = read_expect(&dir.join(format!("{name}.expect")))?;
            Ok(Fixture {
                name,
                trace,
                expect,
            })
        })
        .collect()
}

/// Regenerates the fixture corpus: for every generator shape, takes the
/// first `per_shape` seeds whose program races, shrinks each trace as far
/// as the oracle's exact racy-granule set (and the shape's regime — futures
/// present, multi-touch preserved) allows, and writes the minimized
/// fixtures into `dir`. Returns the fixture names written.
pub fn emit_corpus(dir: &Path, per_shape: usize) -> io::Result<Vec<String>> {
    let mut written = Vec::new();
    for shape in FuzzShape::ALL {
        let mut emitted = 0;
        for seed in 0..200u64 {
            if emitted == per_shape {
                break;
            }
            let program = generate_shaped(shape, seed);
            let (trace, _) = record_spec(&program.spec);
            if trace.validate().is_err() {
                continue;
            }
            let want = {
                let mut g: Vec<u64> = replay_detect_unchecked(&trace, ReplayAlgorithm::GraphOracle)
                    .racy_granules()
                    .collect();
                g.sort_unstable();
                g
            };
            if want.is_empty() {
                continue; // a race-free draw is not an interesting fixture
            }
            // Preserve the verdict exactly, and keep the trace inside the
            // regime the fixture is meant to cover.
            let keep_futures = shape != FuzzShape::Structured;
            let keep_multi_touch = matches!(shape, FuzzShape::Pipeline | FuzzShape::AdversarialKn);
            let mut fails = |t: &Trace| {
                let mut got: Vec<u64> = replay_detect_unchecked(t, ReplayAlgorithm::GraphOracle)
                    .racy_granules()
                    .collect();
                got.sort_unstable();
                got == want
                    && (!keep_futures || t.has_futures())
                    && (!keep_multi_touch || !t.is_single_touch())
            };
            if !fails(&trace) {
                continue; // regime not exhibited by this draw
            }
            let result = shrink_failing_program(&program.spec, &mut fails);
            let name = format!("{}-{seed:03}", shape.name());
            let expect = Expect::from_trace(seed, shape, &result.trace);
            write_fixture(dir, &name, &result.trace, &expect)?;
            written.push(name);
            emitted += 1;
        }
    }
    Ok(written)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "futurerd-fuzz-fixture-{}-{tag}",
            std::process::id()
        ));
        std::fs::remove_dir_all(&dir).ok();
        dir
    }

    #[test]
    fn fixtures_round_trip_through_disk() {
        let dir = temp_dir("roundtrip");
        let program = generate_shaped(FuzzShape::Speculation, 1);
        let (trace, _) = record_spec(&program.spec);
        let expect = Expect::from_trace(1, FuzzShape::Speculation, &trace);
        assert!(expect.oracle_races > 0);
        write_fixture(&dir, "spec-001", &trace, &expect).unwrap();
        let fixtures = load_fixtures(&dir).unwrap();
        assert_eq!(fixtures.len(), 1);
        assert_eq!(fixtures[0].name, "spec-001");
        assert_eq!(fixtures[0].expect, expect);
        assert_eq!(fixtures[0].trace.len(), trace.len());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn emitted_corpus_verdicts_hold() {
        let dir = temp_dir("emit");
        let written = emit_corpus(&dir, 1).unwrap();
        assert_eq!(written.len(), FuzzShape::ALL.len());
        for fixture in load_fixtures(&dir).unwrap() {
            let check = Expect::from_trace(
                fixture.expect.seed,
                FuzzShape::ALL
                    .iter()
                    .copied()
                    .find(|s| s.name() == fixture.expect.shape)
                    .unwrap(),
                &fixture.trace,
            );
            assert_eq!(check, fixture.expect, "{}", fixture.name);
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn malformed_expect_files_are_rejected() {
        let dir = temp_dir("malformed");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("bad.expect");
        std::fs::write(&path, "seed = not-a-number\n").unwrap();
        assert!(read_expect(&path).is_err());
        std::fs::write(&path, "unknown_key = 3\n").unwrap();
        assert!(read_expect(&path).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }
}
