//! Replays the committed regression corpus in `tests/fixtures/` on every
//! `cargo test` run: each minimized trace must keep its recorded
//! ground-truth verdict, the differential matrix must stay free of real
//! bugs on it, and the parallel engine must stay byte-identical to
//! sequential replay.

use futurerd_core::parallel::{par_replay_detect, FreezeAssist, IncrementalFreezer, StdExecutor};
use futurerd_core::replay::{replay_detect_unchecked, ReplayAlgorithm};
use futurerd_fuzz::classify_sequential;
use futurerd_fuzz::fixture::load_fixtures;
use futurerd_fuzz::DivergenceKind;
use std::collections::BTreeSet;
use std::path::Path;

fn corpus_dir() -> std::path::PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../../tests/fixtures")
}

#[test]
fn committed_corpus_covers_the_required_regimes() {
    let fixtures = load_fixtures(&corpus_dir()).expect("tests/fixtures must load");
    assert!(
        fixtures.len() >= 10,
        "the committed corpus holds at least 10 fixtures, found {}",
        fixtures.len()
    );
    let shapes: BTreeSet<&str> = fixtures.iter().map(|f| f.expect.shape.as_str()).collect();
    for required in [
        "structured",
        "general",
        "pipeline",
        "speculation",
        "planted",
        "kn",
    ] {
        assert!(shapes.contains(required), "no {required} fixture committed");
    }
    // The k≈n fixtures keep their adversarial regime: futures touched more
    // than once, so MultiBags+ pays its attached-bag machinery.
    for fixture in fixtures.iter().filter(|f| f.expect.shape == "kn") {
        assert!(fixture.trace.has_futures(), "{}", fixture.name);
        assert!(!fixture.trace.is_single_touch(), "{}", fixture.name);
    }
}

#[test]
fn every_fixture_keeps_its_recorded_verdict() {
    for fixture in load_fixtures(&corpus_dir()).expect("tests/fixtures must load") {
        let name = &fixture.name;
        fixture
            .trace
            .validate()
            .unwrap_or_else(|e| panic!("{name}: fixture trace not canonical: {e}"));
        assert_eq!(fixture.trace.len(), fixture.expect.events, "{name}");
        let oracle = replay_detect_unchecked(&fixture.trace, ReplayAlgorithm::GraphOracle);
        assert_eq!(oracle.race_count(), fixture.expect.oracle_races, "{name}");
        let mut granules: Vec<u64> = oracle.racy_granules().collect();
        granules.sort_unstable();
        assert_eq!(granules, fixture.expect.racy_granules, "{name}");
    }
}

#[test]
fn every_fixture_fuzzes_clean_and_parallel_matches_sequential() {
    for fixture in load_fixtures(&corpus_dir()).expect("tests/fixtures must load") {
        let name = &fixture.name;
        for divergence in classify_sequential(&fixture.trace, None) {
            assert_eq!(
                divergence.kind,
                DivergenceKind::KnownApproximation,
                "{name}: {divergence}"
            );
        }
        for algorithm in ReplayAlgorithm::ALL {
            if !algorithm.runnable_for(&fixture.trace) {
                continue;
            }
            let sequential = replay_detect_unchecked(&fixture.trace, algorithm);
            let parallel = par_replay_detect(&fixture.trace, algorithm, 2)
                .unwrap_or_else(|e| panic!("{name}: parallel {algorithm} failed: {e}"));
            assert_eq!(parallel, sequential, "{name}: {algorithm} P=2 diverged");
        }
    }
}

#[test]
fn every_fixture_freezes_byte_identically_under_assists() {
    // The committed corpus doubles as a regression net for the
    // work-assisted pass-1 freeze: every fixture trace, frozen with worker
    // assists at P ∈ {2, 8} and single-stamp work units, must leave exactly
    // the frozen state the sequential freeze leaves.
    let executor = StdExecutor;
    for fixture in load_fixtures(&corpus_dir()).expect("tests/fixtures must load") {
        let name = &fixture.name;
        for algorithm in ReplayAlgorithm::ALL {
            if !algorithm.freezable() {
                continue;
            }
            let mut seq = IncrementalFreezer::new(algorithm).expect("freezable algorithm");
            seq.extend(fixture.trace.events());
            let expected = seq.to_raw();
            for workers in [2usize, 8] {
                let assist = FreezeAssist::new(workers, &executor)
                    .with_min_batch(1)
                    .with_unit_target(1);
                let mut par = IncrementalFreezer::new(algorithm).expect("freezable algorithm");
                par.extend_assisted(fixture.trace.events(), &assist);
                assert_eq!(
                    par.to_raw(),
                    expected,
                    "{name}: {algorithm} assisted freeze diverged at P={workers}"
                );
            }
        }
    }
}

#[test]
fn the_escape_fixture_documents_the_multibags_regime_boundary() {
    // escape-031 is the trace the fuzzer found when `sound_for` still
    // equated "structured" with "single-touch": a single-touch handle
    // escapes its creating task's scope, and MultiBags reports a race the
    // oracle disproves. It must stay classified as a known approximation —
    // and keep disagreeing, so the regime boundary stays documented.
    let fixtures = load_fixtures(&corpus_dir()).expect("tests/fixtures must load");
    let fixture = fixtures
        .iter()
        .find(|f| f.name == "escape-031")
        .expect("the escape-031 fixture is committed");
    assert!(fixture.trace.is_single_touch());
    assert!(!fixture.trace.is_structured());
    assert!(!ReplayAlgorithm::MultiBags.sound_for(&fixture.trace));
    let multibags = replay_detect_unchecked(&fixture.trace, ReplayAlgorithm::MultiBags);
    let oracle = replay_detect_unchecked(&fixture.trace, ReplayAlgorithm::GraphOracle);
    let mb: BTreeSet<u64> = multibags.racy_granules().collect();
    let or: BTreeSet<u64> = oracle.racy_granules().collect();
    assert_ne!(mb, or, "the false positive must keep reproducing");
    assert!(or.is_empty() && !mb.is_empty(), "spurious, not missed");
}
