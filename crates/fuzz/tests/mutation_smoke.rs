//! The harness's self-test, end to end: plant a detector bug, let the fuzz
//! matrix catch it, shrink the failing trace, and emit it as a regression
//! fixture — the acceptance loop a real detector regression would follow.

use futurerd_core::replay::ReplayAlgorithm;
use futurerd_dag::trace::Trace;
use futurerd_fuzz::fixture::{load_fixtures, write_fixture, Expect};
use futurerd_fuzz::shrink::shrink_failing_program;
use futurerd_fuzz::{has_real_bug, run_fuzz, DivergenceKind, FuzzOptions, Mutation};
use futurerd_workloads::fuzzgen::generate_fuzz_program;

#[test]
fn planted_detector_bug_is_caught_and_shrunk_to_a_fixture() {
    let mutation = Some(Mutation::DropAllRaces(ReplayAlgorithm::MultiBagsPlus));
    let opts = FuzzOptions {
        threads: vec![1],
        chunkings: 0,
        store_checks: false,
        mutation,
        ..FuzzOptions::default()
    };

    // 1. The matrix catches the planted bug.
    let summary = run_fuzz(0..24, &opts);
    assert!(
        !summary.clean(),
        "a detector that misses every race must not fuzz clean"
    );
    let bug = summary
        .real_bugs
        .iter()
        .find(|d| d.algorithm == ReplayAlgorithm::MultiBagsPlus)
        .expect("the mutated algorithm is the one that diverges");
    assert_eq!(bug.kind, DivergenceKind::RealBug);
    assert!(bug.missed > 0, "{bug}");

    // 2. The shrinker minimizes the failing seed to a tiny canonical trace.
    let program = generate_fuzz_program(bug.seed);
    let mut fails = |t: &Trace| has_real_bug(t, mutation);
    let result = shrink_failing_program(&program.spec, &mut fails);
    assert!(
        result.trace.validate().is_ok(),
        "shrunk trace stays canonical"
    );
    assert!(has_real_bug(&result.trace, mutation), "still failing");
    assert!(
        result.trace.len() <= 64,
        "shrunk to {} events (from {}), expected <= 64",
        result.trace.len(),
        result.original_events
    );

    // 3. The shrunk trace round-trips through a self-contained fixture that
    //    still reproduces the failure.
    let dir = std::env::temp_dir().join(format!("futurerd-fuzz-smoke-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    let expect = Expect::from_trace(bug.seed, bug.shape, &result.trace);
    assert!(expect.oracle_races > 0);
    write_fixture(&dir, "mutation-smoke", &result.trace, &expect).unwrap();
    let fixtures = load_fixtures(&dir).unwrap();
    assert_eq!(fixtures.len(), 1);
    assert_eq!(fixtures[0].expect, expect);
    assert!(
        has_real_bug(&fixtures[0].trace, mutation),
        "the fixture reproduces the planted bug byte-for-byte"
    );
    std::fs::remove_dir_all(&dir).ok();
}
