//! Shim-generic concurrency cores of the obs layer.
//!
//! The two pieces of this crate with a real concurrent protocol — the
//! lossy per-thread timeline ring and the process-wide metrics registry —
//! live here, generic over [`SyncShim`]. Production code uses the
//! [`RealShim`](futurerd_check::sync::RealShim) instantiation (thin
//! newtypes over `std::sync`, zero-cost), while the `futurerd-trace
//! check` suite explores the same code under the model shim, asserting
//! the ring never blocks and counts drops exactly, and that concurrent
//! registry updates merge losslessly.

use std::collections::BTreeMap;

use futurerd_check::sync::{MutexShim, SyncShim};

use crate::MetricKind;

/// One thread's bounded interval journal: recorded `(stage, start_ns,
/// end_ns)` triples in close order, plus how many intervals arrived after
/// the ring filled and were discarded.
#[derive(Default)]
struct RingState {
    intervals: Vec<(&'static str, u64, u64)>,
    dropped: u64,
}

/// A bounded, lossy interval journal: pushes past the capacity are
/// counted and discarded under the same lock that guards the ring, so
/// `kept + dropped` always equals the number of pushes and survivors
/// keep their recording order. The hot path never blocks on a full ring.
pub struct TimelineJournal<S: SyncShim> {
    ring: S::Mutex<RingState>,
}

impl<S: SyncShim> Default for TimelineJournal<S> {
    fn default() -> Self {
        Self::new()
    }
}

impl<S: SyncShim> TimelineJournal<S> {
    /// Creates an empty journal.
    pub fn new() -> Self {
        Self {
            ring: S::Mutex::new(RingState::default()),
        }
    }

    /// Journals one interval, or counts it as dropped once the ring holds
    /// `capacity` intervals. Dropping never disturbs retained intervals.
    pub fn push(&self, stage: &'static str, start_ns: u64, end_ns: u64, capacity: usize) {
        self.ring.with(|ring| {
            if ring.intervals.len() >= capacity {
                ring.dropped += 1;
            } else {
                ring.intervals.push((stage, start_ns, end_ns));
            }
        });
    }

    /// The retained intervals (in recording order) and the drop count.
    pub fn snapshot(&self) -> (Vec<(&'static str, u64, u64)>, u64) {
        self.ring
            .with(|ring| (ring.intervals.clone(), ring.dropped))
    }

    /// Number of intervals discarded so far.
    pub fn dropped(&self) -> u64 {
        self.ring.with(|ring| ring.dropped)
    }

    /// Empties the journal and zeroes the drop count.
    pub fn clear(&self) {
        self.ring.with(|ring| *ring = RingState::default());
    }
}

/// The process-wide metrics table: monotonically accumulated counters and
/// last-write-wins gauges, keyed by dotted name. All mutation happens
/// under one lock, so concurrent `counter_add`s are lossless — the
/// model-checked invariant behind the registry's merge guarantees.
pub struct MetricsRegistry<S: SyncShim> {
    table: S::Mutex<BTreeMap<String, (MetricKind, u64)>>,
}

impl<S: SyncShim> Default for MetricsRegistry<S> {
    fn default() -> Self {
        Self::new()
    }
}

impl<S: SyncShim> MetricsRegistry<S> {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self {
            table: S::Mutex::new(BTreeMap::new()),
        }
    }

    /// Adds `delta` to the named counter (creating it at zero first).
    pub fn counter_add(&self, name: &str, delta: u64) {
        self.table.with(|table| match table.get_mut(name) {
            Some((_, value)) => *value += delta,
            None => {
                table.insert(name.to_string(), (MetricKind::Counter, delta));
            }
        });
    }

    /// Sets the named gauge to `value`.
    pub fn gauge_set(&self, name: &str, value: u64) {
        self.table.with(|table| {
            table.insert(name.to_string(), (MetricKind::Gauge, value));
        });
    }

    /// Current value of a metric, if present.
    pub fn get(&self, name: &str) -> Option<u64> {
        self.table.with(|table| table.get(name).map(|(_, v)| *v))
    }

    /// Every metric, sorted by name (BTreeMap order).
    pub fn rows(&self) -> Vec<(String, MetricKind, u64)> {
        self.table.with(|table| {
            table
                .iter()
                .map(|(name, (kind, value))| (name.clone(), *kind, *value))
                .collect()
        })
    }

    /// Removes every metric.
    pub fn clear(&self) {
        self.table.with(|table| table.clear());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use futurerd_check::sync::RealShim;

    #[test]
    fn journal_counts_drops_exactly() {
        let journal = TimelineJournal::<RealShim>::new();
        for i in 0..5 {
            journal.push("stage", i, i + 1, 3);
        }
        let (kept, dropped) = journal.snapshot();
        assert_eq!(kept.len(), 3);
        assert_eq!(dropped, 2);
        assert_eq!(kept[0], ("stage", 0, 1));
        assert_eq!(kept[2], ("stage", 2, 3));
        journal.clear();
        assert_eq!(journal.snapshot(), (Vec::new(), 0));
    }

    #[test]
    fn registry_counters_accumulate_gauges_overwrite() {
        let registry = MetricsRegistry::<RealShim>::new();
        registry.counter_add("c", 2);
        registry.counter_add("c", 3);
        registry.gauge_set("g", 10);
        registry.gauge_set("g", 4);
        assert_eq!(registry.get("c"), Some(5));
        assert_eq!(registry.get("g"), Some(4));
        let rows = registry.rows();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0], ("c".to_string(), MetricKind::Counter, 5));
        assert_eq!(rows[1], ("g".to_string(), MetricKind::Gauge, 4));
        registry.clear();
        assert!(registry.rows().is_empty());
    }
}
