//! # futurerd-obs — observability substrate for the FutureRD stack
//!
//! A zero-dependency (std-only) observability layer shared by every crate
//! in the workspace: lock-cheap **spans** measuring where wall time goes,
//! a process-wide **metrics registry** unifying the stack's scattered
//! counters under stable dotted names, and three **exporters** (human text
//! table, JSON lines, Prometheus text format) over a deterministic
//! [`Snapshot`].
//!
//! ## Determinism contract
//!
//! Observability is **off the correctness path**. The recording side only
//! ever *reads* detection state and *writes* obs-private buffers; nothing
//! in this crate feeds back into what the detectors compute. Every
//! detection output (reports, frozen indices, manifests) is byte-identical
//! with metrics enabled or disabled, at every thread count — enforced by
//! the `obs_invariance` property suite at the workspace root.
//!
//! Recording is globally gated by [`set_enabled`] and **off by default**:
//! the disabled fast path is one relaxed atomic load per call site.
//!
//! ## Span naming scheme
//!
//! Stage names are `'static` dotted paths, hierarchical by prefix. The
//! top-level pipeline stages are disjoint on the coordinator thread and
//! sum to ≈ the replay wall time:
//!
//! | stage       | where                                                  |
//! |-------------|--------------------------------------------------------|
//! | `validate`  | trace/prefix validation                                |
//! | `freeze`    | pass-1 freeze replay (one-shot or incremental extend)  |
//! | `detect`    | pass-2 sharded shadow-memory detection                 |
//! | `merge`     | deterministic outcome merge                            |
//!
//! Nested and worker-side stages refine those: `freeze.assist.dispatch`
//! (coordinator-side batch publication), `freeze.assist.stamp`
//! (worker-side pull loops), `detect.partition` (per-partition tasks),
//! `store.sidecar.encode` / `store.sidecar.decode`, and per-path report
//! timings `session.report.cold|warm_index|warm_cached|incremental`.
//!
//! ## Thread attribution
//!
//! Spans record into per-thread buffers (one uncontended mutex per
//! thread), merged deterministically — sorted by stage name — at
//! [`snapshot`] time. Pool workers call [`set_thread_label`] once at
//! spawn; per-worker metrics embed the label in the metric name
//! (`freeze.assist.units.worker.3`).
//!
//! ## Timeline journal
//!
//! On top of the aggregated [`StageStats`], an optional **interval
//! timeline** ([`set_timeline_enabled`]) journals every closed span as a
//! `(thread, stage, start_ns, end_ns)` [`Interval`] into a bounded
//! per-thread ring. The ring is lossy: once a thread's ring holds
//! [`timeline_capacity`] intervals, further intervals on that thread are
//! counted (`obs.timeline.dropped`) and discarded — the hot path never
//! blocks on a full journal and surviving intervals keep their order.
//! [`timeline()`] merges the rings deterministically (sorted by
//! `(start, thread, stage)`); see [`Timeline`] for the derived analyses
//! (worker utilization, assist dispatch latency, partition overlap) and
//! [`export::export_chrome_trace`] / [`export::export_timeline_text`]
//! for the exporters.

#![forbid(unsafe_code)]

use std::cell::RefCell;
use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicU8, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

use futurerd_check::sync::RealShim;
use proto::{MetricsRegistry, TimelineJournal};

pub mod export;
pub mod names;
pub mod proto;
pub mod timeline;

pub use export::{
    export_chrome_trace, export_json_lines, export_prometheus, export_text, export_timeline_text,
};
pub use timeline::{Interval, ParallelismProfile, Timeline, WorkerUtilization};

// ---------------------------------------------------------------------------
// Global enable flags
// ---------------------------------------------------------------------------

/// Bit 0: aggregate recording (spans + metrics registry).
const FLAG_METRICS: u8 = 1;
/// Bit 1: interval timeline journaling.
const FLAG_TIMELINE: u8 = 1 << 1;

static FLAGS: AtomicU8 = AtomicU8::new(0);

#[inline]
fn flags() -> u8 {
    FLAGS.load(Ordering::Relaxed)
}

fn set_flag(bit: u8, on: bool) {
    if on {
        FLAGS.fetch_or(bit, Ordering::Relaxed);
    } else {
        FLAGS.fetch_and(!bit, Ordering::Relaxed);
    }
}

/// Turns aggregate recording (spans + metrics) on or off process-wide.
/// Off by default.
///
/// Disabling does not clear previously recorded data; use [`reset`] for a
/// clean slate between measured sections.
pub fn set_enabled(on: bool) {
    set_flag(FLAG_METRICS, on);
}

/// Whether aggregate recording is currently enabled (one relaxed atomic
/// load — cheap enough for hot-path call sites to check directly).
#[inline]
pub fn enabled() -> bool {
    flags() & FLAG_METRICS != 0
}

/// Turns the interval timeline journal on or off process-wide. Off by
/// default. Enabling pins the timeline epoch (the `start_ns = 0` origin)
/// if it is not pinned yet.
pub fn set_timeline_enabled(on: bool) {
    if on {
        epoch(); // pin the time origin before the first interval
    }
    set_flag(FLAG_TIMELINE, on);
}

/// Whether the interval timeline journal is currently enabled.
#[inline]
pub fn timeline_enabled() -> bool {
    flags() & FLAG_TIMELINE != 0
}

/// Whether anything (aggregates or timeline) is recording — the single
/// relaxed load every [`Span::enter`] pays while fully disabled.
#[inline]
pub fn recording() -> bool {
    flags() != 0
}

// ---------------------------------------------------------------------------
// Timeline epoch and capacity
// ---------------------------------------------------------------------------

static EPOCH: OnceLock<Instant> = OnceLock::new();

/// The timeline's time origin: all interval timestamps are nanoseconds
/// since this instant. Pinned on first use (or when the timeline is first
/// enabled) and never moves for the life of the process.
pub fn epoch() -> Instant {
    *EPOCH.get_or_init(Instant::now)
}

/// Default bound on intervals retained per thread.
pub const DEFAULT_TIMELINE_CAPACITY: usize = 65_536;

static TIMELINE_CAPACITY: AtomicUsize = AtomicUsize::new(DEFAULT_TIMELINE_CAPACITY);

/// Sets the per-thread interval ring bound (min 1). Intervals recorded
/// past the bound are dropped and counted, never retained — shrinking the
/// bound does not evict already-journaled intervals.
pub fn set_timeline_capacity(capacity: usize) {
    TIMELINE_CAPACITY.store(capacity.max(1), Ordering::Relaxed);
}

/// The current per-thread interval ring bound.
pub fn timeline_capacity() -> usize {
    TIMELINE_CAPACITY.load(Ordering::Relaxed)
}

// ---------------------------------------------------------------------------
// Stage statistics
// ---------------------------------------------------------------------------

/// Aggregated timings for one stage name: how many spans closed, and the
/// total / min / max span duration in nanoseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StageStats {
    /// Number of spans recorded under this name.
    pub count: u64,
    /// Sum of span durations, nanoseconds.
    pub total_ns: u64,
    /// Shortest span, nanoseconds.
    pub min_ns: u64,
    /// Longest span, nanoseconds.
    pub max_ns: u64,
}

impl StageStats {
    fn one(ns: u64) -> Self {
        StageStats {
            count: 1,
            total_ns: ns,
            min_ns: ns,
            max_ns: ns,
        }
    }

    fn record(&mut self, ns: u64) {
        self.count += 1;
        self.total_ns += ns;
        self.min_ns = self.min_ns.min(ns);
        self.max_ns = self.max_ns.max(ns);
    }

    /// Merges another aggregate into this one (used when combining
    /// per-thread buffers for the same stage name).
    pub fn merge(&mut self, other: &StageStats) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        self.count += other.count;
        self.total_ns += other.total_ns;
        self.min_ns = self.min_ns.min(other.min_ns);
        self.max_ns = self.max_ns.max(other.max_ns);
    }

    /// Mean span duration in nanoseconds (0 when no spans recorded).
    pub fn avg_ns(&self) -> u64 {
        self.total_ns.checked_div(self.count).unwrap_or(0)
    }
}

// ---------------------------------------------------------------------------
// Per-thread span buffers
// ---------------------------------------------------------------------------

/// One thread's recording state. The mutexes are uncontended in steady
/// state (only the owning thread writes; [`snapshot`]/[`reset`] briefly
/// lock them from outside), so a span close is a CAS plus a map update.
///
/// The timeline ring is the shim-generic [`TimelineJournal`] — the same
/// push/drop protocol the model checker explores — instantiated with the
/// zero-cost [`RealShim`].
struct ThreadBuffer {
    stages: Mutex<HashMap<&'static str, StageStats>>,
    timeline: TimelineJournal<RealShim>,
    label: Mutex<Option<String>>,
}

static BUFFERS: Mutex<Vec<Arc<ThreadBuffer>>> = Mutex::new(Vec::new());

thread_local! {
    static LOCAL: RefCell<Option<Arc<ThreadBuffer>>> = const { RefCell::new(None) };
}

fn with_local_buffer<R>(f: impl FnOnce(&ThreadBuffer) -> R) -> R {
    LOCAL.with(|slot| {
        let mut slot = slot.borrow_mut();
        let buf = slot.get_or_insert_with(|| {
            let buf = Arc::new(ThreadBuffer {
                stages: Mutex::new(HashMap::new()),
                timeline: TimelineJournal::new(),
                label: Mutex::new(None),
            });
            BUFFERS.lock().unwrap().push(Arc::clone(&buf));
            buf
        });
        f(buf)
    })
}

fn record_span(name: &'static str, ns: u64) {
    with_local_buffer(|buf| {
        let mut stages = buf.stages.lock().unwrap();
        stages
            .entry(name)
            .and_modify(|s| s.record(ns))
            .or_insert_with(|| StageStats::one(ns));
    });
}

fn record_interval(name: &'static str, start_ns: u64, end_ns: u64) {
    with_local_buffer(|buf| {
        buf.timeline
            .push(name, start_ns, end_ns, timeline_capacity());
    });
}

/// Folds one closed measurement into whatever layers are enabled: the
/// aggregate [`StageStats`] (metrics bit) and the interval journal
/// (timeline bit). `start` is the measurement's begin instant; the
/// duration is computed once so the journaled interval and the aggregate
/// total reconcile exactly, nanosecond for nanosecond.
fn record_closed(name: &'static str, start: Instant) {
    let flags = flags();
    if flags == 0 {
        return;
    }
    let ns = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
    if flags & FLAG_METRICS != 0 {
        record_span(name, ns);
    }
    if flags & FLAG_TIMELINE != 0 {
        let start_ns =
            u64::try_from(start.saturating_duration_since(epoch()).as_nanos()).unwrap_or(u64::MAX);
        record_interval(name, start_ns, start_ns.saturating_add(ns));
    }
}

/// Records a pre-measured duration under `name`, exactly as if a [`Span`]
/// had timed it — for call sites where the stage name is only known after
/// the fact (e.g. a session report labels its timing with the
/// `DetectionPath` the routing chose). No-op while recording is disabled.
///
/// Aggregate-only: a bare duration has no position on the timeline. Call
/// sites that hold the begin instant should use [`record_stage`] instead,
/// which also journals the interval.
pub fn record_duration_ns(name: &'static str, ns: u64) {
    if !enabled() {
        return;
    }
    record_span(name, ns);
}

/// Closes a measurement started at `start` under a stage name chosen
/// after the fact: records the aggregate timing *and* journals the
/// timeline interval, exactly as if a [`Span`] named `name` had been
/// entered at `start` and dropped now. No-op while nothing is recording.
pub fn record_stage(name: &'static str, start: Instant) {
    record_closed(name, start);
}

/// Labels the calling thread for per-worker metric attribution
/// (e.g. `"worker.3"`). Pool workers call this once at spawn; unlabeled
/// threads report as `"main"`.
pub fn set_thread_label(label: &str) {
    with_local_buffer(|buf| {
        *buf.label.lock().unwrap() = Some(label.to_string());
    });
}

/// The calling thread's label (set via [`set_thread_label`]), or
/// `"main"` if none was set.
pub fn thread_label() -> String {
    LOCAL.with(|slot| {
        slot.borrow()
            .as_ref()
            .and_then(|buf| buf.label.lock().unwrap().clone())
            .unwrap_or_else(|| "main".to_string())
    })
}

// ---------------------------------------------------------------------------
// Span guard
// ---------------------------------------------------------------------------

/// An RAII timer for one stage. [`Span::enter`] starts the clock when
/// recording is enabled (and is a no-op otherwise); dropping the guard
/// folds the elapsed time into the calling thread's buffer.
///
/// ```
/// futurerd_obs::set_enabled(true);
/// {
///     let _span = futurerd_obs::Span::enter("freeze");
///     // ... timed work ...
/// }
/// futurerd_obs::set_enabled(false);
/// let snap = futurerd_obs::snapshot();
/// assert_eq!(snap.stage("freeze").unwrap().count, 1);
/// # futurerd_obs::reset();
/// ```
#[must_use = "a span records on drop; binding it to `_` drops immediately"]
pub struct Span {
    active: Option<(&'static str, Instant)>,
}

impl Span {
    /// Starts timing `name` if anything (aggregates or timeline) is
    /// recording; the fully-disabled cost is one relaxed atomic load.
    #[inline]
    pub fn enter(name: &'static str) -> Span {
        let active = recording().then(|| (name, Instant::now()));
        Span { active }
    }

    /// A guard that records nothing (useful to keep one code path).
    pub fn disabled() -> Span {
        Span { active: None }
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some((name, start)) = self.active.take() {
            record_closed(name, start);
        }
    }
}

// ---------------------------------------------------------------------------
// Metrics registry
// ---------------------------------------------------------------------------

/// What a registered metric measures: a monotonically accumulated
/// [`Counter`](MetricKind::Counter) or a last-write-wins
/// [`Gauge`](MetricKind::Gauge).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricKind {
    /// Accumulates via [`counter_add`].
    Counter,
    /// Overwritten via [`gauge_set`].
    Gauge,
}

impl MetricKind {
    /// Lower-case name as used by the exporters (`"counter"` / `"gauge"`).
    pub fn as_str(self) -> &'static str {
        match self {
            MetricKind::Counter => "counter",
            MetricKind::Gauge => "gauge",
        }
    }
}

/// The process-wide registry: the shim-generic [`MetricsRegistry`] — the
/// same lossless-merge protocol the model checker explores — instantiated
/// with the zero-cost [`RealShim`].
fn metrics() -> &'static MetricsRegistry<RealShim> {
    static METRICS: OnceLock<MetricsRegistry<RealShim>> = OnceLock::new();
    METRICS.get_or_init(MetricsRegistry::new)
}

/// Adds `delta` to the named counter (creating it at zero first). No-op
/// while recording is disabled.
pub fn counter_add(name: &str, delta: u64) {
    if !enabled() {
        return;
    }
    metrics().counter_add(name, delta);
}

/// Sets the named gauge to `value`. No-op while recording is disabled.
pub fn gauge_set(name: &str, value: u64) {
    if !enabled() {
        return;
    }
    metrics().gauge_set(name, value);
}

// ---------------------------------------------------------------------------
// Snapshot
// ---------------------------------------------------------------------------

/// One merged stage row in a [`Snapshot`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StageRow {
    /// Dotted stage name.
    pub name: String,
    /// Aggregated timings across every thread.
    pub stats: StageStats,
}

/// One metric row in a [`Snapshot`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MetricRow {
    /// Dotted metric name.
    pub name: String,
    /// Counter or gauge.
    pub kind: MetricKind,
    /// Current value.
    pub value: u64,
}

/// A deterministic point-in-time view of everything recorded so far:
/// per-thread span buffers merged by stage name, plus the metrics
/// registry. Both sections are sorted by name, so two snapshots of the
/// same state render identically regardless of which threads recorded.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Snapshot {
    /// Stage timings, sorted by name.
    pub stages: Vec<StageRow>,
    /// Metrics, sorted by name.
    pub metrics: Vec<MetricRow>,
}

impl Snapshot {
    /// Looks up a stage row by exact name.
    pub fn stage(&self, name: &str) -> Option<&StageStats> {
        self.stages
            .iter()
            .find(|row| row.name == name)
            .map(|row| &row.stats)
    }

    /// Looks up a metric value by exact name.
    pub fn metric(&self, name: &str) -> Option<u64> {
        self.metrics
            .iter()
            .find(|row| row.name == name)
            .map(|row| row.value)
    }

    /// Sum of `total_ns` over stages matching one of `names` exactly.
    pub fn total_ns_of(&self, names: &[&str]) -> u64 {
        self.stages
            .iter()
            .filter(|row| names.contains(&row.name.as_str()))
            .map(|row| row.stats.total_ns)
            .sum()
    }

    /// True when nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.stages.is_empty() && self.metrics.is_empty()
    }
}

/// Merges every thread's span buffer and the metrics registry into a
/// sorted [`Snapshot`]. Cheap relative to any measured work; safe to call
/// while other threads are still recording (their in-flight spans simply
/// land in a later snapshot).
pub fn snapshot() -> Snapshot {
    let mut merged: BTreeMap<String, StageStats> = BTreeMap::new();
    for buf in BUFFERS.lock().unwrap().iter() {
        for (name, stats) in buf.stages.lock().unwrap().iter() {
            merged
                .entry((*name).to_string())
                .and_modify(|s| s.merge(stats))
                .or_insert(*stats);
        }
    }
    let stages = merged
        .into_iter()
        .map(|(name, stats)| StageRow { name, stats })
        .collect();
    let metrics = metrics()
        .rows()
        .into_iter()
        .map(|(name, kind, value)| MetricRow { name, kind, value })
        .collect();
    Snapshot { stages, metrics }
}

/// Merges every thread's interval ring into one deterministic
/// [`Timeline`]: intervals sorted by `(start_ns, thread, stage)`, plus the
/// total number of intervals dropped by full rings. When any were
/// dropped, the count is also surfaced in the metrics registry as the
/// `obs.timeline.dropped` gauge so plain [`snapshot`] consumers see the
/// journal was lossy.
pub fn timeline() -> Timeline {
    let mut intervals = Vec::new();
    let mut dropped = 0u64;
    for buf in BUFFERS.lock().unwrap().iter() {
        let label = buf
            .label
            .lock()
            .unwrap()
            .clone()
            .unwrap_or_else(|| "main".to_string());
        let (ring, ring_dropped) = buf.timeline.snapshot();
        dropped += ring_dropped;
        for (stage, start_ns, end_ns) in ring {
            intervals.push(Interval {
                thread: label.clone(),
                stage,
                start_ns,
                end_ns,
            });
        }
    }
    intervals
        .sort_by(|a, b| (a.start_ns, &a.thread, a.stage).cmp(&(b.start_ns, &b.thread, b.stage)));
    if dropped > 0 {
        // Bypasses the `enabled()` gate deliberately: the drop count must
        // surface even when aggregate recording was switched off between
        // journaling and snapshotting.
        metrics().gauge_set(names::OBS_TIMELINE_DROPPED, dropped);
    }
    Timeline { intervals, dropped }
}

/// Clears all recorded spans, journaled intervals and metrics. Buffers of
/// threads that have exited are dropped; live threads keep their (now
/// empty) buffers.
pub fn reset() {
    let mut buffers = BUFFERS.lock().unwrap();
    for buf in buffers.iter() {
        buf.stages.lock().unwrap().clear();
        buf.timeline.clear();
    }
    // A strong count of 1 means the owning thread's `LOCAL` slot is gone:
    // the thread exited and the buffer can never fill again.
    buffers.retain(|buf| Arc::strong_count(buf) > 1);
    metrics().clear();
}

/// Formats a nanosecond duration for human output (`17ns`, `4.200us`,
/// `1.250ms`, `2.000s`).
pub fn fmt_duration_ns(ns: u64) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.3}s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.3}ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.3}us", ns as f64 / 1e3)
    } else {
        format!("{ns}ns")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The obs state is process-global; tests that enable recording
    /// serialize on this lock so cargo's parallel test threads don't
    /// interleave their counters.
    static GLOBAL: Mutex<()> = Mutex::new(());

    fn exclusive() -> std::sync::MutexGuard<'static, ()> {
        let guard = GLOBAL.lock().unwrap_or_else(|e| e.into_inner());
        reset();
        guard
    }

    #[test]
    fn disabled_records_nothing() {
        let _x = exclusive();
        set_enabled(false);
        {
            let _span = Span::enter("noop");
        }
        counter_add("noop.counter", 5);
        gauge_set("noop.gauge", 7);
        assert!(snapshot().is_empty());
    }

    #[test]
    fn span_records_count_total_min_max() {
        let _x = exclusive();
        set_enabled(true);
        for _ in 0..3 {
            let _span = Span::enter("stage.a");
        }
        set_enabled(false);
        let snap = snapshot();
        let stats = snap.stage("stage.a").expect("stage recorded");
        assert_eq!(stats.count, 3);
        assert!(stats.min_ns <= stats.max_ns);
        assert!(stats.total_ns >= stats.max_ns);
        reset();
        assert!(snapshot().is_empty());
    }

    #[test]
    fn counters_accumulate_and_gauges_overwrite() {
        let _x = exclusive();
        set_enabled(true);
        counter_add("c", 2);
        counter_add("c", 3);
        gauge_set("g", 10);
        gauge_set("g", 4);
        set_enabled(false);
        let snap = snapshot();
        assert_eq!(snap.metric("c"), Some(5));
        assert_eq!(snap.metric("g"), Some(4));
        let kinds: Vec<_> = snap
            .metrics
            .iter()
            .map(|m| (m.name.as_str(), m.kind))
            .collect();
        assert_eq!(
            kinds,
            vec![("c", MetricKind::Counter), ("g", MetricKind::Gauge)]
        );
        reset();
    }

    #[test]
    fn cross_thread_spans_merge_deterministically() {
        let _x = exclusive();
        set_enabled(true);
        let handles: Vec<_> = (0..4)
            .map(|i| {
                std::thread::spawn(move || {
                    set_thread_label(&format!("worker.{i}"));
                    let _span = Span::enter("shared.stage");
                    let _inner = Span::enter("shared.stage.inner");
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        set_enabled(false);
        let a = snapshot();
        let b = snapshot();
        assert_eq!(a, b, "snapshots of quiescent state are identical");
        assert_eq!(a.stage("shared.stage").unwrap().count, 4);
        assert_eq!(a.stage("shared.stage.inner").unwrap().count, 4);
        let names: Vec<_> = a.stages.iter().map(|s| s.name.clone()).collect();
        let mut sorted = names.clone();
        sorted.sort();
        assert_eq!(names, sorted, "stages are name-sorted");
        reset();
    }

    #[test]
    fn thread_label_defaults_to_main() {
        assert_eq!(thread_label(), "main");
        std::thread::spawn(|| {
            set_thread_label("worker.9");
            assert_eq!(thread_label(), "worker.9");
        })
        .join()
        .unwrap();
    }

    #[test]
    fn reset_prunes_dead_thread_buffers() {
        let _x = exclusive();
        set_enabled(true);
        std::thread::spawn(|| {
            let _span = Span::enter("ephemeral");
        })
        .join()
        .unwrap();
        set_enabled(false);
        assert!(snapshot().stage("ephemeral").is_some());
        reset();
        assert!(snapshot().stage("ephemeral").is_none());
    }

    #[test]
    fn duration_formatting() {
        assert_eq!(fmt_duration_ns(17), "17ns");
        assert_eq!(fmt_duration_ns(4_200), "4.200us");
        assert_eq!(fmt_duration_ns(1_250_000), "1.250ms");
        assert_eq!(fmt_duration_ns(2_000_000_000), "2.000s");
    }

    #[test]
    fn stage_stats_merge() {
        let mut a = StageStats::one(10);
        a.record(30);
        let b = StageStats::one(5);
        let mut m = a;
        m.merge(&b);
        assert_eq!(m.count, 3);
        assert_eq!(m.total_ns, 45);
        assert_eq!(m.min_ns, 5);
        assert_eq!(m.max_ns, 30);
        let mut empty = StageStats {
            count: 0,
            total_ns: 0,
            min_ns: 0,
            max_ns: 0,
        };
        empty.merge(&b);
        assert_eq!(empty, b);
    }
}
