//! The central manifest of every observability name in the workspace.
//!
//! Every stage and metric name the stack records lives here, either as a
//! named constant (static names — use these at call sites instead of
//! string literals) or as a wildcard pattern covering a family built with
//! `format!` (dynamic names). `*` stands for exactly one dotted segment,
//! so a two-segment dynamic tail needs two stars: `pool.worker.*.steals`
//! covers `pool.worker.3.steals`.
//!
//! [`MANIFEST`] is the machine-readable union of both. The
//! `futurerd-trace lint` obs-name rule sweeps every dotted string literal
//! in `crates/*/src` and requires it to normalize (placeholders → `*`)
//! into this list: a typo'd name is a lint error, not a silently minted
//! stray metric.

// --- Top-level pipeline stages (spans) -------------------------------------

/// Trace/prefix validation.
pub const VALIDATE: &str = "validate";
/// Pass-1 freeze replay (one-shot or incremental extend).
pub const FREEZE: &str = "freeze";
/// Pass-2 sharded shadow-memory detection.
pub const DETECT: &str = "detect";
/// Deterministic outcome merge.
pub const MERGE: &str = "merge";

// --- Nested / worker-side stages (spans) -----------------------------------

/// Per-partition detection task (worker side).
pub const DETECT_PARTITION: &str = "detect.partition";
/// Coordinator-side publication of one stamping batch.
pub const FREEZE_ASSIST_DISPATCH: &str = "freeze.assist.dispatch";
/// Worker-side pull loop over one stamping batch.
pub const FREEZE_ASSIST_STAMP: &str = "freeze.assist.stamp";

/// Store-level detection, cold path.
pub const STORE_DETECT_COLD: &str = "store.detect.cold";
/// Store-level detection against a warm loaded index.
pub const STORE_DETECT_WARM_INDEX: &str = "store.detect.warm_index";
/// Store-level detection fully served by the cache.
pub const STORE_DETECT_WARM_CACHED: &str = "store.detect.warm_cached";
/// Store-level incremental re-detection.
pub const STORE_DETECT_INCREMENTAL: &str = "store.detect.incremental";
/// Sidecar serialization.
pub const STORE_SIDECAR_ENCODE: &str = "store.sidecar.encode";
/// Sidecar deserialization.
pub const STORE_SIDECAR_DECODE: &str = "store.sidecar.decode";

/// Session report timing, cold path.
pub const SESSION_REPORT_COLD: &str = "session.report.cold";
/// Session report timing, warm-index path.
pub const SESSION_REPORT_WARM_INDEX: &str = "session.report.warm_index";
/// Session report timing, warm-cached path.
pub const SESSION_REPORT_WARM_CACHED: &str = "session.report.warm_cached";
/// Session report timing, incremental path.
pub const SESSION_REPORT_INCREMENTAL: &str = "session.report.incremental";

// --- Counters ---------------------------------------------------------------

/// Events accepted by session ingest.
pub const SESSION_INGEST_EVENTS: &str = "session.ingest.events";
/// Stamping batches published by the work-assisted freeze.
pub const FREEZE_ASSIST_BATCHES: &str = "freeze.assist.batches";
/// Drained-index claims (one per puller + contention overshoot).
pub const FREEZE_ASSIST_INDEX_MISSES: &str = "freeze.assist.index_misses";
/// Sidecar bytes written.
pub const STORE_SIDECAR_ENCODED_BYTES: &str = "store.sidecar.encoded_bytes";
/// Sidecar bytes read.
pub const STORE_SIDECAR_DECODED_BYTES: &str = "store.sidecar.decoded_bytes";

// --- Gauges -----------------------------------------------------------------

/// Ingest throughput over the session's accumulated ingest time.
pub const SESSION_INGEST_EVENTS_PER_SEC: &str = "session.ingest.events_per_sec";
/// Intervals discarded by full timeline rings (set by
/// [`timeline()`](crate::timeline()) when nonzero).
pub const OBS_TIMELINE_DROPPED: &str = "obs.timeline.dropped";

/// Everything the stack may record, one pattern per line. `*` matches
/// exactly one dotted segment (on either side: manifest patterns use it
/// for dynamic segments, and the linter normalizes `{…}` format
/// placeholders in scanned literals to `*` before matching).
pub const MANIFEST: &[&str] = &[
    // Spans.
    VALIDATE,
    FREEZE,
    DETECT,
    MERGE,
    DETECT_PARTITION,
    FREEZE_ASSIST_DISPATCH,
    FREEZE_ASSIST_STAMP,
    STORE_DETECT_COLD,
    STORE_DETECT_WARM_INDEX,
    STORE_DETECT_WARM_CACHED,
    STORE_DETECT_INCREMENTAL,
    STORE_SIDECAR_ENCODE,
    STORE_SIDECAR_DECODE,
    SESSION_REPORT_COLD,
    SESSION_REPORT_WARM_INDEX,
    SESSION_REPORT_WARM_CACHED,
    SESSION_REPORT_INCREMENTAL,
    // Counters.
    SESSION_INGEST_EVENTS,
    "session.path.*",
    "store.path.*",
    FREEZE_ASSIST_BATCHES,
    FREEZE_ASSIST_INDEX_MISSES,
    "freeze.assist.units.*",
    "freeze.assist.units.worker.*",
    "freeze.assist.units.detect.*",
    STORE_SIDECAR_ENCODED_BYTES,
    STORE_SIDECAR_DECODED_BYTES,
    // Gauges.
    SESSION_INGEST_EVENTS_PER_SEC,
    OBS_TIMELINE_DROPPED,
    // Per-worker pool stats: `pool.worker.<i>.<stat>`.
    "pool.worker.*.executed",
    "pool.worker.*.steals",
    "pool.worker.*.injected",
    // Reachability stats, exported under the `reach` prefix.
    "reach.queries",
    "reach.make_sets",
    "reach.unions",
    "reach.finds",
    "reach.attached_sets",
    "reach.r_arcs",
    "reach.r_bytes",
    "reach.unexpected_attachifies",
    // Detector access-history stats, exported under `detector`.
    "detector.read_checks",
    "detector.write_checks",
    "detector.readers_recorded",
    "detector.readers_cleared",
    "detector.races_found",
    "detector.shadow_pages",
    // Store path/cache stats, exported under `store`.
    "store.cold_freezes",
    "store.warm_index_loads",
    "store.warm_cached_hits",
    "store.incremental_refreezes",
    "store.partitions_rerun",
    "store.partitions_reused",
    "store.rebalances",
    "store.invalidated_sidecars",
    // Thread labels (not metric names, but recorded dotted strings).
    "worker.*",
    "detect.*",
];

#[cfg(test)]
mod tests {
    use super::MANIFEST;

    #[test]
    fn manifest_is_sorted_within_reason_and_duplicate_free() {
        let mut seen = std::collections::BTreeSet::new();
        for entry in MANIFEST {
            assert!(seen.insert(*entry), "duplicate manifest entry: {entry}");
            assert!(!entry.is_empty());
            assert!(
                entry.split('.').all(|seg| seg == "*"
                    || seg
                        .chars()
                        .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_')),
                "malformed manifest entry: {entry}"
            );
            assert!(!entry.starts_with('.') && !entry.ends_with('.'));
        }
    }

    #[test]
    fn consts_are_all_in_the_manifest() {
        for name in [
            super::VALIDATE,
            super::FREEZE,
            super::DETECT,
            super::MERGE,
            super::DETECT_PARTITION,
            super::FREEZE_ASSIST_DISPATCH,
            super::FREEZE_ASSIST_STAMP,
            super::SESSION_INGEST_EVENTS,
            super::OBS_TIMELINE_DROPPED,
        ] {
            assert!(MANIFEST.contains(&name), "{name} missing from MANIFEST");
        }
    }
}
