//! Exporters rendering a [`Snapshot`] in three formats: a human text
//! table, JSON lines (one object per row), and the Prometheus text
//! exposition format — plus two [`Timeline`] exporters: Chrome-trace
//! JSON (loadable in `chrome://tracing` / Perfetto) and an aligned text
//! timeline. All are pure functions of their input, so the golden tests
//! in `tests/golden.rs` pin their exact output.

use crate::{fmt_duration_ns, MetricKind, Snapshot, Timeline};

/// Renders the snapshot as an aligned human-readable table: a stage
/// section (count / total / avg / min / max) followed by a metric
/// section. Empty sections are omitted; an empty snapshot renders a
/// single placeholder line.
pub fn export_text(snapshot: &Snapshot) -> String {
    if snapshot.is_empty() {
        return "(no observability data recorded)\n".to_string();
    }
    let mut out = String::new();
    if !snapshot.stages.is_empty() {
        let name_w = snapshot
            .stages
            .iter()
            .map(|s| s.name.len())
            .chain(["stage".len()])
            .max()
            .unwrap();
        out.push_str(&format!(
            "{:<name_w$}  {:>8}  {:>12}  {:>12}  {:>12}  {:>12}\n",
            "stage", "count", "total", "avg", "min", "max"
        ));
        for row in &snapshot.stages {
            out.push_str(&format!(
                "{:<name_w$}  {:>8}  {:>12}  {:>12}  {:>12}  {:>12}\n",
                row.name,
                row.stats.count,
                fmt_duration_ns(row.stats.total_ns),
                fmt_duration_ns(row.stats.avg_ns()),
                fmt_duration_ns(row.stats.min_ns),
                fmt_duration_ns(row.stats.max_ns),
            ));
        }
    }
    if !snapshot.metrics.is_empty() {
        if !snapshot.stages.is_empty() {
            out.push('\n');
        }
        let name_w = snapshot
            .metrics
            .iter()
            .map(|m| m.name.len())
            .chain(["metric".len()])
            .max()
            .unwrap();
        out.push_str(&format!(
            "{:<name_w$}  {:>7}  {:>16}\n",
            "metric", "kind", "value"
        ));
        for row in &snapshot.metrics {
            out.push_str(&format!(
                "{:<name_w$}  {:>7}  {:>16}\n",
                row.name,
                row.kind.as_str(),
                row.value
            ));
        }
    }
    out
}

/// Renders the snapshot as JSON lines: one `{"type":"stage",...}` object
/// per stage row, then one `{"type":"metric",...}` object per metric row,
/// in snapshot (name-sorted) order. Each line is a complete JSON object,
/// so the stream concatenates across runs (the nightly-fuzz artifact
/// appends one block per night).
pub fn export_json_lines(snapshot: &Snapshot) -> String {
    let mut out = String::new();
    for row in &snapshot.stages {
        out.push_str(&format!(
            "{{\"type\":\"stage\",\"name\":{},\"count\":{},\"total_ns\":{},\"min_ns\":{},\"max_ns\":{}}}\n",
            json_string(&row.name),
            row.stats.count,
            row.stats.total_ns,
            row.stats.min_ns,
            row.stats.max_ns,
        ));
    }
    for row in &snapshot.metrics {
        out.push_str(&format!(
            "{{\"type\":\"metric\",\"name\":{},\"kind\":\"{}\",\"value\":{}}}\n",
            json_string(&row.name),
            row.kind.as_str(),
            row.value,
        ));
    }
    out
}

/// Renders the snapshot in the Prometheus text exposition format. Stage
/// timings become three series keyed by a `stage` label
/// (`futurerd_stage_spans_total`, `futurerd_stage_nanoseconds_total`,
/// `futurerd_stage_max_nanoseconds`); each registry metric becomes its
/// own `futurerd_`-prefixed series with dots mapped to underscores.
pub fn export_prometheus(snapshot: &Snapshot) -> String {
    let mut out = String::new();
    if !snapshot.stages.is_empty() {
        out.push_str("# TYPE futurerd_stage_spans_total counter\n");
        for row in &snapshot.stages {
            out.push_str(&format!(
                "futurerd_stage_spans_total{{stage=\"{}\"}} {}\n",
                row.name, row.stats.count
            ));
        }
        out.push_str("# TYPE futurerd_stage_nanoseconds_total counter\n");
        for row in &snapshot.stages {
            out.push_str(&format!(
                "futurerd_stage_nanoseconds_total{{stage=\"{}\"}} {}\n",
                row.name, row.stats.total_ns
            ));
        }
        out.push_str("# TYPE futurerd_stage_max_nanoseconds gauge\n");
        for row in &snapshot.stages {
            out.push_str(&format!(
                "futurerd_stage_max_nanoseconds{{stage=\"{}\"}} {}\n",
                row.name, row.stats.max_ns
            ));
        }
    }
    for row in &snapshot.metrics {
        let name = prom_name(&row.name);
        let kind = match row.kind {
            MetricKind::Counter => "counter",
            MetricKind::Gauge => "gauge",
        };
        out.push_str(&format!("# TYPE futurerd_{name} {kind}\n"));
        out.push_str(&format!("futurerd_{name} {}\n", row.value));
    }
    out
}

/// Renders the timeline in the Chrome trace event format (the JSON
/// object form: `{"traceEvents": [...]}`), loadable in
/// `chrome://tracing` or Perfetto. Threads get deterministic `tid`s
/// from their sorted labels, announced by `"M"` (`thread_name`)
/// metadata events; every interval becomes one `"X"` complete event.
/// `ts`/`dur` are microseconds as the format requires, but each event's
/// `args` carries the exact `start_ns`/`end_ns`/`dur_ns`, so tooling
/// (and the reconciliation test) can recover nanosecond stage totals
/// without rounding error. The journal's drop counter rides along as
/// `otherData.dropped`.
pub fn export_chrome_trace(timeline: &Timeline) -> String {
    let mut threads: Vec<&str> = timeline
        .intervals
        .iter()
        .map(|i| i.thread.as_str())
        .collect();
    threads.sort_unstable();
    threads.dedup();
    let tid_of = |label: &str| threads.iter().position(|t| *t == label).unwrap() as u64 + 1;

    let mut out = String::new();
    out.push_str("{\"displayTimeUnit\":\"ns\",\"traceEvents\":[");
    let mut first = true;
    let mut push_event = |out: &mut String, event: String| {
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str("\n  ");
        out.push_str(&event);
    };
    for thread in &threads {
        push_event(
            &mut out,
            format!(
                "{{\"ph\":\"M\",\"name\":\"thread_name\",\"pid\":1,\"tid\":{},\
                 \"args\":{{\"name\":{}}}}}",
                tid_of(thread),
                json_string(thread)
            ),
        );
    }
    for interval in &timeline.intervals {
        push_event(
            &mut out,
            format!(
                "{{\"ph\":\"X\",\"name\":{},\"cat\":\"stage\",\"pid\":1,\"tid\":{},\
                 \"ts\":{},\"dur\":{},\
                 \"args\":{{\"start_ns\":{},\"end_ns\":{},\"dur_ns\":{}}}}}",
                json_string(interval.stage),
                tid_of(&interval.thread),
                micros(interval.start_ns),
                micros(interval.duration_ns()),
                interval.start_ns,
                interval.end_ns,
                interval.duration_ns(),
            ),
        );
    }
    out.push_str(&format!(
        "\n],\"otherData\":{{\"dropped\":{}}}}}\n",
        timeline.dropped
    ));
    out
}

/// Renders the timeline as an aligned text table ordered like the
/// merged journal (`(start, thread, stage)`): one row per interval with
/// start/end offsets and duration, then a drop-counter line when the
/// rings lost intervals. An empty journal renders a placeholder line.
pub fn export_timeline_text(timeline: &Timeline) -> String {
    if timeline.is_empty() {
        return "(no timeline intervals recorded)\n".to_string();
    }
    let mut out = String::new();
    if !timeline.intervals.is_empty() {
        let thread_w = timeline
            .intervals
            .iter()
            .map(|i| i.thread.len())
            .chain(["thread".len()])
            .max()
            .unwrap();
        let stage_w = timeline
            .intervals
            .iter()
            .map(|i| i.stage.len())
            .chain(["stage".len()])
            .max()
            .unwrap();
        out.push_str(&format!(
            "{:<thread_w$}  {:<stage_w$}  {:>14}  {:>14}  {:>12}\n",
            "thread", "stage", "start_ns", "end_ns", "dur"
        ));
        for interval in &timeline.intervals {
            out.push_str(&format!(
                "{:<thread_w$}  {:<stage_w$}  {:>14}  {:>14}  {:>12}\n",
                interval.thread,
                interval.stage,
                interval.start_ns,
                interval.end_ns,
                fmt_duration_ns(interval.duration_ns()),
            ));
        }
    }
    if timeline.dropped > 0 {
        out.push_str(&format!(
            "(ring buffers full: {} interval(s) dropped)\n",
            timeline.dropped
        ));
    }
    out
}

/// Formats nanoseconds as decimal microseconds with exactly three
/// fractional digits — lossless for nanosecond inputs, and what Chrome
/// trace viewers expect in `ts`/`dur`.
fn micros(ns: u64) -> String {
    format!("{}.{:03}", ns / 1000, ns % 1000)
}

/// Escapes a string as a JSON string literal (quotes included).
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Maps a dotted metric name onto the Prometheus charset
/// (`[a-zA-Z0-9_:]`), replacing every other character with `_`.
fn prom_name(name: &str) -> String {
    name.chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '_' || c == ':' {
                c
            } else {
                '_'
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_escaping() {
        assert_eq!(json_string("plain.name"), "\"plain.name\"");
        assert_eq!(json_string("a\"b\\c"), "\"a\\\"b\\\\c\"");
        assert_eq!(json_string("nl\ntab\t"), "\"nl\\ntab\\t\"");
        assert_eq!(json_string("\u{1}"), "\"\\u0001\"");
    }

    #[test]
    fn prometheus_name_sanitization() {
        assert_eq!(
            prom_name("freeze.assist.units.worker.0"),
            "freeze_assist_units_worker_0"
        );
        assert_eq!(prom_name("ok_name:sub"), "ok_name:sub");
        assert_eq!(prom_name("weird name-x"), "weird_name_x");
    }

    #[test]
    fn empty_snapshot_renders_placeholder() {
        let empty = Snapshot::default();
        assert_eq!(export_text(&empty), "(no observability data recorded)\n");
        assert_eq!(export_json_lines(&empty), "");
        assert_eq!(export_prometheus(&empty), "");
    }

    fn sample_timeline() -> Timeline {
        Timeline {
            intervals: vec![
                crate::Interval {
                    thread: "main".to_string(),
                    stage: "freeze",
                    start_ns: 1_500,
                    end_ns: 4_000,
                },
                crate::Interval {
                    thread: "worker.0".to_string(),
                    stage: "freeze.assist.stamp",
                    start_ns: 2_000,
                    end_ns: 3_250,
                },
            ],
            dropped: 2,
        }
    }

    #[test]
    fn chrome_trace_shape_is_pinned() {
        let out = export_chrome_trace(&sample_timeline());
        assert_eq!(
            out,
            "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[\n  \
             {\"ph\":\"M\",\"name\":\"thread_name\",\"pid\":1,\"tid\":1,\"args\":{\"name\":\"main\"}},\n  \
             {\"ph\":\"M\",\"name\":\"thread_name\",\"pid\":1,\"tid\":2,\"args\":{\"name\":\"worker.0\"}},\n  \
             {\"ph\":\"X\",\"name\":\"freeze\",\"cat\":\"stage\",\"pid\":1,\"tid\":1,\"ts\":1.500,\"dur\":2.500,\
             \"args\":{\"start_ns\":1500,\"end_ns\":4000,\"dur_ns\":2500}},\n  \
             {\"ph\":\"X\",\"name\":\"freeze.assist.stamp\",\"cat\":\"stage\",\"pid\":1,\"tid\":2,\"ts\":2.000,\"dur\":1.250,\
             \"args\":{\"start_ns\":2000,\"end_ns\":3250,\"dur_ns\":1250}}\n\
             ],\"otherData\":{\"dropped\":2}}\n"
        );
    }

    #[test]
    fn timeline_text_is_aligned_and_reports_drops() {
        let out = export_timeline_text(&sample_timeline());
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("thread"));
        assert!(lines[1].starts_with("main      freeze"));
        assert!(lines[2].starts_with("worker.0  freeze.assist.stamp"));
        assert_eq!(lines[3], "(ring buffers full: 2 interval(s) dropped)");
        assert_eq!(
            export_timeline_text(&Timeline::default()),
            "(no timeline intervals recorded)\n"
        );
    }

    #[test]
    fn micros_is_lossless_decimal() {
        assert_eq!(micros(0), "0.000");
        assert_eq!(micros(999), "0.999");
        assert_eq!(micros(1_500), "1.500");
        assert_eq!(micros(1_000_001), "1000.001");
    }
}
