//! Exporters rendering a [`Snapshot`] in three formats: a human text
//! table, JSON lines (one object per row), and the Prometheus text
//! exposition format. All three are pure functions of the snapshot, so
//! the golden tests in `tests/golden.rs` pin their exact output.

use crate::{fmt_duration_ns, MetricKind, Snapshot};

/// Renders the snapshot as an aligned human-readable table: a stage
/// section (count / total / avg / min / max) followed by a metric
/// section. Empty sections are omitted; an empty snapshot renders a
/// single placeholder line.
pub fn export_text(snapshot: &Snapshot) -> String {
    if snapshot.is_empty() {
        return "(no observability data recorded)\n".to_string();
    }
    let mut out = String::new();
    if !snapshot.stages.is_empty() {
        let name_w = snapshot
            .stages
            .iter()
            .map(|s| s.name.len())
            .chain(["stage".len()])
            .max()
            .unwrap();
        out.push_str(&format!(
            "{:<name_w$}  {:>8}  {:>12}  {:>12}  {:>12}  {:>12}\n",
            "stage", "count", "total", "avg", "min", "max"
        ));
        for row in &snapshot.stages {
            out.push_str(&format!(
                "{:<name_w$}  {:>8}  {:>12}  {:>12}  {:>12}  {:>12}\n",
                row.name,
                row.stats.count,
                fmt_duration_ns(row.stats.total_ns),
                fmt_duration_ns(row.stats.avg_ns()),
                fmt_duration_ns(row.stats.min_ns),
                fmt_duration_ns(row.stats.max_ns),
            ));
        }
    }
    if !snapshot.metrics.is_empty() {
        if !snapshot.stages.is_empty() {
            out.push('\n');
        }
        let name_w = snapshot
            .metrics
            .iter()
            .map(|m| m.name.len())
            .chain(["metric".len()])
            .max()
            .unwrap();
        out.push_str(&format!(
            "{:<name_w$}  {:>7}  {:>16}\n",
            "metric", "kind", "value"
        ));
        for row in &snapshot.metrics {
            out.push_str(&format!(
                "{:<name_w$}  {:>7}  {:>16}\n",
                row.name,
                row.kind.as_str(),
                row.value
            ));
        }
    }
    out
}

/// Renders the snapshot as JSON lines: one `{"type":"stage",...}` object
/// per stage row, then one `{"type":"metric",...}` object per metric row,
/// in snapshot (name-sorted) order. Each line is a complete JSON object,
/// so the stream concatenates across runs (the nightly-fuzz artifact
/// appends one block per night).
pub fn export_json_lines(snapshot: &Snapshot) -> String {
    let mut out = String::new();
    for row in &snapshot.stages {
        out.push_str(&format!(
            "{{\"type\":\"stage\",\"name\":{},\"count\":{},\"total_ns\":{},\"min_ns\":{},\"max_ns\":{}}}\n",
            json_string(&row.name),
            row.stats.count,
            row.stats.total_ns,
            row.stats.min_ns,
            row.stats.max_ns,
        ));
    }
    for row in &snapshot.metrics {
        out.push_str(&format!(
            "{{\"type\":\"metric\",\"name\":{},\"kind\":\"{}\",\"value\":{}}}\n",
            json_string(&row.name),
            row.kind.as_str(),
            row.value,
        ));
    }
    out
}

/// Renders the snapshot in the Prometheus text exposition format. Stage
/// timings become three series keyed by a `stage` label
/// (`futurerd_stage_spans_total`, `futurerd_stage_nanoseconds_total`,
/// `futurerd_stage_max_nanoseconds`); each registry metric becomes its
/// own `futurerd_`-prefixed series with dots mapped to underscores.
pub fn export_prometheus(snapshot: &Snapshot) -> String {
    let mut out = String::new();
    if !snapshot.stages.is_empty() {
        out.push_str("# TYPE futurerd_stage_spans_total counter\n");
        for row in &snapshot.stages {
            out.push_str(&format!(
                "futurerd_stage_spans_total{{stage=\"{}\"}} {}\n",
                row.name, row.stats.count
            ));
        }
        out.push_str("# TYPE futurerd_stage_nanoseconds_total counter\n");
        for row in &snapshot.stages {
            out.push_str(&format!(
                "futurerd_stage_nanoseconds_total{{stage=\"{}\"}} {}\n",
                row.name, row.stats.total_ns
            ));
        }
        out.push_str("# TYPE futurerd_stage_max_nanoseconds gauge\n");
        for row in &snapshot.stages {
            out.push_str(&format!(
                "futurerd_stage_max_nanoseconds{{stage=\"{}\"}} {}\n",
                row.name, row.stats.max_ns
            ));
        }
    }
    for row in &snapshot.metrics {
        let name = prom_name(&row.name);
        let kind = match row.kind {
            MetricKind::Counter => "counter",
            MetricKind::Gauge => "gauge",
        };
        out.push_str(&format!("# TYPE futurerd_{name} {kind}\n"));
        out.push_str(&format!("futurerd_{name} {}\n", row.value));
    }
    out
}

/// Escapes a string as a JSON string literal (quotes included).
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Maps a dotted metric name onto the Prometheus charset
/// (`[a-zA-Z0-9_:]`), replacing every other character with `_`.
fn prom_name(name: &str) -> String {
    name.chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '_' || c == ':' {
                c
            } else {
                '_'
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_escaping() {
        assert_eq!(json_string("plain.name"), "\"plain.name\"");
        assert_eq!(json_string("a\"b\\c"), "\"a\\\"b\\\\c\"");
        assert_eq!(json_string("nl\ntab\t"), "\"nl\\ntab\\t\"");
        assert_eq!(json_string("\u{1}"), "\"\\u0001\"");
    }

    #[test]
    fn prometheus_name_sanitization() {
        assert_eq!(
            prom_name("freeze.assist.units.worker.0"),
            "freeze_assist_units_worker_0"
        );
        assert_eq!(prom_name("ok_name:sub"), "ok_name:sub");
        assert_eq!(prom_name("weird name-x"), "weird_name_x");
    }

    #[test]
    fn empty_snapshot_renders_placeholder() {
        let empty = Snapshot::default();
        assert_eq!(export_text(&empty), "(no observability data recorded)\n");
        assert_eq!(export_json_lines(&empty), "");
        assert_eq!(export_prometheus(&empty), "");
    }
}
