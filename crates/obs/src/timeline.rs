//! Timeline analysis: derived views over the merged interval journal.
//!
//! A [`Timeline`] is the deterministic merge of every thread's interval
//! ring (see [`timeline()`](crate::timeline())): one
//! `(thread, stage, start_ns, end_ns)` [`Interval`] per closed span, in
//! `(start, thread, stage)` order, timestamps relative to the process
//! [`epoch`](crate::epoch). On top of it this module computes the
//! questions aggregated [`StageStats`](crate::StageStats) cannot answer:
//!
//! * **per-worker utilization** ([`Timeline::utilization`]) — how busy
//!   each thread actually was over the journal's wall-clock window, with
//!   overlapping (nested) spans union-merged so nothing double-counts;
//! * **dispatch → first-claim latency** ([`Timeline::dispatch_latencies`])
//!   — for each `freeze.assist.dispatch` batch, how long until the first
//!   helper's `freeze.assist.stamp` pull loop opened;
//! * **partition overlap** ([`Timeline::parallelism_profile`]) — how much
//!   wall time `detect.partition` (or any stage) spent at each
//!   concurrency level, i.e. whether partitions actually overlapped;
//! * **coordinator critical path** ([`Timeline::stage_totals`] over
//!   [`TOP_STAGES`]) — the disjoint `validate`/`freeze`/`detect`/`merge`
//!   accounting, which [`Timeline::reconcile`] checks against the
//!   aggregate [`Snapshot`] totals: with zero drops the
//!   two views are recorded from the same measurements and must agree
//!   **exactly**, nanosecond for nanosecond.

use crate::{MetricRow, Snapshot, StageRow};

/// The disjoint top-level coordinator stages whose durations sum to ≈ the
/// pipeline wall clock; every other stage nests inside one of them.
pub const TOP_STAGES: [&str; 4] = ["validate", "freeze", "detect", "merge"];

/// One journaled span occurrence: which thread ran which stage, from
/// `start_ns` to `end_ns` (nanoseconds since the timeline epoch).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Interval {
    /// Thread label ([`set_thread_label`](crate::set_thread_label), or
    /// `"main"` for unlabeled threads).
    pub thread: String,
    /// Dotted stage name, same namespace as the aggregate stages.
    pub stage: &'static str,
    /// Begin, nanoseconds since the epoch.
    pub start_ns: u64,
    /// End, nanoseconds since the epoch (`end_ns >= start_ns`).
    pub end_ns: u64,
}

impl Interval {
    /// The interval's duration in nanoseconds.
    pub fn duration_ns(&self) -> u64 {
        self.end_ns.saturating_sub(self.start_ns)
    }
}

/// One thread's share of the journal window: how much of
/// `[window_start, window_end]` it spent inside at least one span.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkerUtilization {
    /// Thread label.
    pub thread: String,
    /// Nanoseconds covered by ≥1 interval (overlaps union-merged).
    pub busy_ns: u64,
    /// Number of intervals journaled on this thread.
    pub intervals: usize,
    /// `busy_ns` over the whole journal window (0.0 for an empty window).
    pub utilization: f64,
}

/// Wall time spent at each concurrency level of one stage.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ParallelismProfile {
    /// `levels[k]` = nanoseconds during which exactly `k` intervals of
    /// the stage were open (index 0 counts gaps *between* the stage's
    /// first and last activity, not the journal's idle tails).
    pub levels: Vec<u64>,
    /// Highest concurrency observed.
    pub max_parallelism: usize,
    /// Time-weighted mean concurrency over the active (≥1 open) time.
    pub avg_parallelism: f64,
}

/// The merged interval journal plus its loss counter. Produced by
/// [`timeline()`](crate::timeline()).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Timeline {
    /// All surviving intervals, sorted by `(start_ns, thread, stage)`.
    pub intervals: Vec<Interval>,
    /// Intervals discarded because a thread's ring was full.
    pub dropped: u64,
}

impl Timeline {
    /// True when nothing was journaled (and nothing dropped).
    pub fn is_empty(&self) -> bool {
        self.intervals.is_empty() && self.dropped == 0
    }

    /// The journal window: earliest start and latest end over all
    /// intervals, or `None` when empty.
    pub fn window(&self) -> Option<(u64, u64)> {
        let start = self.intervals.iter().map(|i| i.start_ns).min()?;
        let end = self.intervals.iter().map(|i| i.end_ns).max()?;
        Some((start, end))
    }

    /// Sum of durations over intervals with exactly this stage name.
    pub fn stage_total_ns(&self, stage: &str) -> u64 {
        self.intervals
            .iter()
            .filter(|i| i.stage == stage)
            .map(Interval::duration_ns)
            .sum()
    }

    /// Totals for the disjoint top-level coordinator stages, in
    /// [`TOP_STAGES`] order — the critical-path accounting of one
    /// pipeline run. Stages with no intervals report 0.
    pub fn stage_totals(&self) -> Vec<(&'static str, u64)> {
        TOP_STAGES
            .iter()
            .map(|&stage| (stage, self.stage_total_ns(stage)))
            .collect()
    }

    /// Per-thread busy time over the journal window, overlaps
    /// union-merged, sorted by thread label.
    pub fn utilization(&self) -> Vec<WorkerUtilization> {
        let Some((window_start, window_end)) = self.window() else {
            return Vec::new();
        };
        let window = (window_end - window_start).max(1);
        let mut threads: Vec<&str> = self.intervals.iter().map(|i| i.thread.as_str()).collect();
        threads.sort_unstable();
        threads.dedup();
        threads
            .into_iter()
            .map(|thread| {
                let mut spans: Vec<(u64, u64)> = self
                    .intervals
                    .iter()
                    .filter(|i| i.thread == thread)
                    .map(|i| (i.start_ns, i.end_ns))
                    .collect();
                let intervals = spans.len();
                spans.sort_unstable();
                let mut busy_ns = 0u64;
                let mut open: Option<(u64, u64)> = None;
                for (start, end) in spans {
                    match &mut open {
                        Some((_, open_end)) if start <= *open_end => {
                            *open_end = (*open_end).max(end);
                        }
                        _ => {
                            if let Some((s, e)) = open.take() {
                                busy_ns += e - s;
                            }
                            open = Some((start, end));
                        }
                    }
                }
                if let Some((s, e)) = open {
                    busy_ns += e - s;
                }
                WorkerUtilization {
                    thread: thread.to_string(),
                    busy_ns,
                    intervals,
                    utilization: busy_ns as f64 / window as f64,
                }
            })
            .collect()
    }

    /// For each `freeze.assist.dispatch` interval (the coordinator
    /// publishing a stamping batch), the nanoseconds until the first
    /// `freeze.assist.stamp` pull loop opened inside that dispatch — the
    /// batch's dispatch→first-claim latency. Dispatches during which no
    /// helper ever started are omitted (nothing claimed concurrently).
    pub fn dispatch_latencies(&self) -> Vec<u64> {
        self.intervals
            .iter()
            .filter(|i| i.stage == "freeze.assist.dispatch")
            .filter_map(|dispatch| {
                self.intervals
                    .iter()
                    .filter(|i| {
                        i.stage == "freeze.assist.stamp"
                            && i.start_ns >= dispatch.start_ns
                            && i.start_ns < dispatch.end_ns
                    })
                    .map(|stamp| stamp.start_ns - dispatch.start_ns)
                    .min()
            })
            .collect()
    }

    /// Sweeps the intervals of one stage (exact name match, e.g.
    /// `"detect.partition"`) and reports the wall time spent at each
    /// concurrency level between the stage's first start and last end.
    pub fn parallelism_profile(&self, stage: &str) -> ParallelismProfile {
        let mut edges: Vec<(u64, i64)> = Vec::new();
        for interval in self.intervals.iter().filter(|i| i.stage == stage) {
            edges.push((interval.start_ns, 1));
            edges.push((interval.end_ns, -1));
        }
        if edges.is_empty() {
            return ParallelismProfile::default();
        }
        // Ends sort before starts at the same timestamp so a zero-length
        // touch does not register as overlap with its successor.
        edges.sort_unstable();
        let mut levels: Vec<u64> = Vec::new();
        let mut level = 0i64;
        let mut prev = edges[0].0;
        for (at, delta) in edges {
            let k = usize::try_from(level).unwrap_or(0);
            if levels.len() <= k {
                levels.resize(k + 1, 0);
            }
            levels[k] += at - prev;
            prev = at;
            level += delta;
        }
        let max_parallelism = levels.len().saturating_sub(1);
        let active: u64 = levels.iter().skip(1).sum();
        let weighted: u64 = levels
            .iter()
            .enumerate()
            .skip(1)
            .map(|(k, &ns)| ns * k as u64)
            .sum();
        ParallelismProfile {
            levels,
            max_parallelism,
            avg_parallelism: if active == 0 {
                0.0
            } else {
                weighted as f64 / active as f64
            },
        }
    }

    /// Checks the reconciliation contract between the journal and the
    /// aggregate snapshot: for every [`TOP_STAGES`] stage, the summed
    /// interval durations must equal the snapshot's `total_ns` (and the
    /// interval count its span count). Both views are recorded from the
    /// same measurement at span close, so with `dropped == 0` they agree
    /// exactly; with drops the journal is allowed to undershoot but never
    /// overshoot. Returns the list of violated stages, empty on success.
    pub fn reconcile(&self, snapshot: &Snapshot) -> Result<(), Vec<String>> {
        let mut violations = Vec::new();
        for &stage in &TOP_STAGES {
            let aggregate = snapshot.stage(stage).copied().unwrap_or(crate::StageStats {
                count: 0,
                total_ns: 0,
                min_ns: 0,
                max_ns: 0,
            });
            let journal_total = self.stage_total_ns(stage);
            let journal_count = self.intervals.iter().filter(|i| i.stage == stage).count() as u64;
            let exact = self.dropped == 0;
            let total_ok = if exact {
                journal_total == aggregate.total_ns
            } else {
                journal_total <= aggregate.total_ns
            };
            let count_ok = if exact {
                journal_count == aggregate.count
            } else {
                journal_count <= aggregate.count
            };
            if !total_ok || !count_ok {
                violations.push(format!(
                    "{stage}: journal {journal_count} interval(s) / {journal_total}ns vs \
                     snapshot {} span(s) / {}ns (dropped {})",
                    aggregate.count, aggregate.total_ns, self.dropped
                ));
            }
        }
        if violations.is_empty() {
            Ok(())
        } else {
            Err(violations)
        }
    }

    /// Renders the timeline *and* the matching aggregate rows as a
    /// [`Snapshot`]-shaped pair for exporters that want both. Stage rows
    /// are derived from the journal alone.
    pub fn to_stage_rows(&self) -> Vec<StageRow> {
        let mut names: Vec<&'static str> = self.intervals.iter().map(|i| i.stage).collect();
        names.sort_unstable();
        names.dedup();
        names
            .into_iter()
            .map(|stage| {
                let mut stats = crate::StageStats {
                    count: 0,
                    total_ns: 0,
                    min_ns: u64::MAX,
                    max_ns: 0,
                };
                for interval in self.intervals.iter().filter(|i| i.stage == stage) {
                    let ns = interval.duration_ns();
                    stats.count += 1;
                    stats.total_ns += ns;
                    stats.min_ns = stats.min_ns.min(ns);
                    stats.max_ns = stats.max_ns.max(ns);
                }
                if stats.count == 0 {
                    stats.min_ns = 0;
                }
                StageRow {
                    name: stage.to_string(),
                    stats,
                }
            })
            .collect()
    }

    /// The `obs.timeline.dropped` row this journal would surface, if any.
    pub fn dropped_metric(&self) -> Option<MetricRow> {
        (self.dropped > 0).then(|| MetricRow {
            name: "obs.timeline.dropped".to_string(),
            kind: crate::MetricKind::Gauge,
            value: self.dropped,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn iv(thread: &str, stage: &'static str, start_ns: u64, end_ns: u64) -> Interval {
        Interval {
            thread: thread.to_string(),
            stage,
            start_ns,
            end_ns,
        }
    }

    fn sample() -> Timeline {
        Timeline {
            intervals: vec![
                iv("main", "validate", 0, 10),
                iv("main", "freeze", 10, 110),
                iv("main", "freeze.assist.dispatch", 20, 80),
                iv("worker.0", "freeze.assist.stamp", 25, 70),
                iv("worker.1", "freeze.assist.stamp", 30, 60),
                iv("main", "detect", 110, 200),
                iv("worker.0", "detect.partition", 115, 160),
                iv("worker.1", "detect.partition", 120, 190),
                iv("main", "merge", 200, 220),
            ],
            dropped: 0,
        }
    }

    #[test]
    fn window_and_stage_totals() {
        let tl = sample();
        assert_eq!(tl.window(), Some((0, 220)));
        assert_eq!(tl.stage_total_ns("freeze"), 100);
        assert_eq!(
            tl.stage_totals(),
            vec![
                ("validate", 10),
                ("freeze", 100),
                ("detect", 90),
                ("merge", 20)
            ]
        );
    }

    #[test]
    fn utilization_union_merges_nested_spans() {
        let tl = sample();
        let util = tl.utilization();
        assert_eq!(util.len(), 3);
        // main: [0,10] ∪ [10,110] ∪ [20,80] ∪ [110,200] ∪ [200,220] = 220.
        assert_eq!(util[0].thread, "main");
        assert_eq!(util[0].busy_ns, 220);
        assert!((util[0].utilization - 1.0).abs() < 1e-9);
        // worker.0: [25,70] ∪ [115,160] = 90 of 220.
        assert_eq!(util[1].thread, "worker.0");
        assert_eq!(util[1].busy_ns, 90);
        assert_eq!(util[1].intervals, 2);
    }

    #[test]
    fn dispatch_latency_is_first_claim_delta() {
        let tl = sample();
        assert_eq!(tl.dispatch_latencies(), vec![5]);
        // A dispatch with no stamp inside it is omitted.
        let mut quiet = sample();
        quiet.intervals.retain(|i| i.stage != "freeze.assist.stamp");
        assert!(quiet.dispatch_latencies().is_empty());
    }

    #[test]
    fn parallelism_profile_counts_overlap() {
        let tl = sample();
        let profile = tl.parallelism_profile("detect.partition");
        // [115,160] and [120,190]: overlap [120,160] = 40ns at 2,
        // [115,120] + [160,190] = 35ns at 1, no gaps.
        assert_eq!(profile.max_parallelism, 2);
        assert_eq!(profile.levels, vec![0, 35, 40]);
        let expected = (35.0 + 80.0) / 75.0;
        assert!((profile.avg_parallelism - expected).abs() < 1e-9);
        assert_eq!(
            tl.parallelism_profile("no.such.stage"),
            ParallelismProfile::default()
        );
    }

    #[test]
    fn reconcile_exact_without_drops_bounded_with() {
        let tl = sample();
        let snapshot = Snapshot {
            stages: tl.to_stage_rows(),
            metrics: Vec::new(),
        };
        assert!(tl.reconcile(&snapshot).is_ok());
        // A journal that lost intervals may undershoot...
        let mut lossy = tl.clone();
        lossy.intervals.retain(|i| i.stage != "merge");
        lossy.dropped = 1;
        assert!(lossy.reconcile(&snapshot).is_ok());
        // ...but a lossless journal must match exactly.
        lossy.dropped = 0;
        let violations = lossy.reconcile(&snapshot).unwrap_err();
        assert_eq!(violations.len(), 1);
        assert!(violations[0].starts_with("merge:"));
    }

    #[test]
    fn stage_rows_aggregate_like_snapshot() {
        let rows = sample().to_stage_rows();
        let names: Vec<_> = rows.iter().map(|r| r.name.as_str()).collect();
        let mut sorted = names.clone();
        sorted.sort_unstable();
        assert_eq!(names, sorted);
        let stamp = rows
            .iter()
            .find(|r| r.name == "freeze.assist.stamp")
            .unwrap();
        assert_eq!(stamp.stats.count, 2);
        assert_eq!(stamp.stats.total_ns, 75);
        assert_eq!(stamp.stats.min_ns, 30);
        assert_eq!(stamp.stats.max_ns, 45);
    }
}
