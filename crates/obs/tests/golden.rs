//! Exporter golden tests: the three formats are part of the CLI contract
//! (`futurerd-trace --metrics=text|json|prom`), so their exact rendering
//! of a hand-built snapshot is pinned here. Snapshots are constructed by
//! hand — never from live timings — so these tests are fully
//! deterministic.

use futurerd_obs::{
    export_json_lines, export_prometheus, export_text, MetricKind, MetricRow, Snapshot, StageRow,
    StageStats,
};

fn sample_snapshot() -> Snapshot {
    Snapshot {
        stages: vec![
            StageRow {
                name: "detect".to_string(),
                stats: StageStats {
                    count: 2,
                    total_ns: 3_000_000,
                    min_ns: 1_000_000,
                    max_ns: 2_000_000,
                },
            },
            StageRow {
                name: "freeze".to_string(),
                stats: StageStats {
                    count: 1,
                    total_ns: 4_200,
                    min_ns: 4_200,
                    max_ns: 4_200,
                },
            },
            StageRow {
                name: "freeze.assist.stamp".to_string(),
                stats: StageStats {
                    count: 8,
                    total_ns: 800,
                    min_ns: 50,
                    max_ns: 200,
                },
            },
        ],
        metrics: vec![
            MetricRow {
                name: "freeze.assist.units.worker.0".to_string(),
                kind: MetricKind::Counter,
                value: 1024,
            },
            MetricRow {
                name: "session.ingest.events_per_sec".to_string(),
                kind: MetricKind::Gauge,
                value: 250_000,
            },
            MetricRow {
                name: "store.sidecar.encoded_bytes".to_string(),
                kind: MetricKind::Counter,
                value: 8_192,
            },
        ],
    }
}

#[test]
fn golden_text() {
    let expected = "\
stage                   count         total           avg           min           max
detect                      2       3.000ms       1.500ms       1.000ms       2.000ms
freeze                      1       4.200us       4.200us       4.200us       4.200us
freeze.assist.stamp         8         800ns         100ns          50ns         200ns

metric                            kind             value
freeze.assist.units.worker.0   counter              1024
session.ingest.events_per_sec    gauge            250000
store.sidecar.encoded_bytes    counter              8192
";
    assert_eq!(export_text(&sample_snapshot()), expected);
}

#[test]
fn golden_json_lines() {
    let expected = "\
{\"type\":\"stage\",\"name\":\"detect\",\"count\":2,\"total_ns\":3000000,\"min_ns\":1000000,\"max_ns\":2000000}
{\"type\":\"stage\",\"name\":\"freeze\",\"count\":1,\"total_ns\":4200,\"min_ns\":4200,\"max_ns\":4200}
{\"type\":\"stage\",\"name\":\"freeze.assist.stamp\",\"count\":8,\"total_ns\":800,\"min_ns\":50,\"max_ns\":200}
{\"type\":\"metric\",\"name\":\"freeze.assist.units.worker.0\",\"kind\":\"counter\",\"value\":1024}
{\"type\":\"metric\",\"name\":\"session.ingest.events_per_sec\",\"kind\":\"gauge\",\"value\":250000}
{\"type\":\"metric\",\"name\":\"store.sidecar.encoded_bytes\",\"kind\":\"counter\",\"value\":8192}
";
    assert_eq!(export_json_lines(&sample_snapshot()), expected);
}

#[test]
fn golden_prometheus() {
    let expected = "\
# TYPE futurerd_stage_spans_total counter
futurerd_stage_spans_total{stage=\"detect\"} 2
futurerd_stage_spans_total{stage=\"freeze\"} 1
futurerd_stage_spans_total{stage=\"freeze.assist.stamp\"} 8
# TYPE futurerd_stage_nanoseconds_total counter
futurerd_stage_nanoseconds_total{stage=\"detect\"} 3000000
futurerd_stage_nanoseconds_total{stage=\"freeze\"} 4200
futurerd_stage_nanoseconds_total{stage=\"freeze.assist.stamp\"} 800
# TYPE futurerd_stage_max_nanoseconds gauge
futurerd_stage_max_nanoseconds{stage=\"detect\"} 2000000
futurerd_stage_max_nanoseconds{stage=\"freeze\"} 4200
futurerd_stage_max_nanoseconds{stage=\"freeze.assist.stamp\"} 200
# TYPE futurerd_freeze_assist_units_worker_0 counter
futurerd_freeze_assist_units_worker_0 1024
# TYPE futurerd_session_ingest_events_per_sec gauge
futurerd_session_ingest_events_per_sec 250000
# TYPE futurerd_store_sidecar_encoded_bytes counter
futurerd_store_sidecar_encoded_bytes 8192
";
    assert_eq!(export_prometheus(&sample_snapshot()), expected);
}

#[test]
fn json_lines_parse_as_json_objects() {
    // Minimal structural check without a JSON dependency: every line is a
    // single balanced object with the expected key set ordering.
    let out = export_json_lines(&sample_snapshot());
    for line in out.lines() {
        assert!(line.starts_with('{') && line.ends_with('}'), "line: {line}");
        assert!(line.contains("\"type\":\""), "line: {line}");
        assert!(line.contains("\"name\":\""), "line: {line}");
        assert_eq!(
            line.matches('{').count(),
            line.matches('}').count(),
            "balanced braces: {line}"
        );
    }
}
