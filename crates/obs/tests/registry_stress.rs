//! Concurrency stress for the process-global obs registry: many threads
//! hammering spans, counters, and gauges at once must never lose a
//! counter increment, and the merged [`Snapshot`](futurerd_obs::Snapshot)
//! must come out deterministic (name-sorted, identical across repeated
//! snapshots of quiescent state) no matter how the threads interleaved.
//!
//! This file is its own integration-test binary, so it owns the global
//! recorder for the whole process — no lock against other test files is
//! needed, only against the `#[test]`s inside this file.

use std::sync::{Barrier, Mutex, MutexGuard};

/// Serializes the `#[test]`s in this binary (cargo runs them on threads).
static OBS_LOCK: Mutex<()> = Mutex::new(());

fn exclusive() -> MutexGuard<'static, ()> {
    let guard = OBS_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    futurerd_obs::set_enabled(false);
    futurerd_obs::set_timeline_enabled(false);
    futurerd_obs::reset();
    guard
}

const THREADS: usize = 8;
const ROUNDS: usize = 200;

#[test]
fn concurrent_recording_is_lossless_and_deterministic() {
    let _guard = exclusive();
    futurerd_obs::set_enabled(true);

    let barrier = Barrier::new(THREADS);
    std::thread::scope(|scope| {
        for t in 0..THREADS {
            let barrier = &barrier;
            scope.spawn(move || {
                futurerd_obs::set_thread_label(&format!("stress.{t}"));
                barrier.wait();
                for round in 0..ROUNDS {
                    // Spans: one shared stage (merges across threads) and
                    // one per-thread nested stage.
                    let _outer = futurerd_obs::Span::enter("stress.shared");
                    let _inner = futurerd_obs::Span::enter("stress.shared.inner");
                    // Counters: contended (same name from every thread)
                    // and private (per-thread name). Every increment must
                    // survive the interleaving.
                    futurerd_obs::counter_add("stress.hits", 1);
                    futurerd_obs::counter_add(&format!("stress.hits.worker.{t}"), 2);
                    // Gauges: last write wins; the per-thread gauge ends
                    // on the final round's value.
                    futurerd_obs::gauge_set(&format!("stress.round.worker.{t}"), round as u64);
                }
            });
        }
    });

    futurerd_obs::set_enabled(false);
    let snap = futurerd_obs::snapshot();

    // Counters are lossless: no increment lost under contention.
    let total = (THREADS * ROUNDS) as u64;
    assert_eq!(snap.metric("stress.hits"), Some(total));
    for t in 0..THREADS {
        assert_eq!(
            snap.metric(&format!("stress.hits.worker.{t}")),
            Some(2 * ROUNDS as u64),
            "worker {t} lost counter increments"
        );
        assert_eq!(
            snap.metric(&format!("stress.round.worker.{t}")),
            Some(ROUNDS as u64 - 1),
            "worker {t} gauge is not the final write"
        );
    }

    // Spans merge losslessly too: every enter/drop pair is counted.
    let shared = snap.stage("stress.shared").expect("shared stage recorded");
    assert_eq!(shared.count, total);
    assert!(shared.min_ns <= shared.max_ns);
    assert!(shared.total_ns >= shared.max_ns);
    let inner = snap
        .stage("stress.shared.inner")
        .expect("nested stage recorded");
    assert_eq!(inner.count, total);

    // Determinism: both sections name-sorted, and a second snapshot of the
    // quiescent state is identical — merge order cannot depend on which
    // thread registered its buffer first.
    let stage_names: Vec<_> = snap.stages.iter().map(|s| s.name.clone()).collect();
    let mut sorted = stage_names.clone();
    sorted.sort();
    assert_eq!(stage_names, sorted, "stages must be name-sorted");
    let metric_names: Vec<_> = snap.metrics.iter().map(|m| m.name.clone()).collect();
    let mut sorted = metric_names.clone();
    sorted.sort();
    assert_eq!(metric_names, sorted, "metrics must be name-sorted");
    assert_eq!(snap, futurerd_obs::snapshot(), "repeat snapshot diverged");

    futurerd_obs::reset();
    assert!(futurerd_obs::snapshot().is_empty());
}

#[test]
fn concurrent_timeline_journaling_keeps_per_thread_order() {
    let _guard = exclusive();
    futurerd_obs::set_timeline_enabled(true);

    let barrier = Barrier::new(THREADS);
    std::thread::scope(|scope| {
        for t in 0..THREADS {
            let barrier = &barrier;
            scope.spawn(move || {
                futurerd_obs::set_thread_label(&format!("journal.{t}"));
                barrier.wait();
                for _ in 0..ROUNDS {
                    let _span = futurerd_obs::Span::enter("stress.journal");
                }
            });
        }
    });

    futurerd_obs::set_timeline_enabled(false);
    let timeline = futurerd_obs::timeline();
    assert_eq!(timeline.dropped, 0, "default capacity fits this volume");
    assert_eq!(timeline.intervals.len(), THREADS * ROUNDS);

    // The merge is globally ordered by (start, thread, stage) — which in
    // particular keeps each thread's own intervals in recording order,
    // since one thread's consecutive spans have non-decreasing starts.
    assert!(
        timeline.intervals.windows(2).all(|w| {
            (w[0].start_ns, &w[0].thread, w[0].stage) <= (w[1].start_ns, &w[1].thread, w[1].stage)
        }),
        "merged intervals out of (start, thread, stage) order"
    );
    let utilization = timeline.utilization();
    assert_eq!(utilization.len(), THREADS);
    for (t, util) in utilization.iter().enumerate() {
        assert_eq!(util.thread, format!("journal.{t}"), "labels sorted");
        assert_eq!(util.intervals, ROUNDS);
    }

    // Recording with the metrics bit off must leave the registry empty:
    // the journal and the aggregates are independently gated.
    assert!(
        futurerd_obs::snapshot().stage("stress.journal").is_none(),
        "timeline-only recording leaked into the aggregate registry"
    );

    futurerd_obs::reset();
    assert!(futurerd_obs::timeline().is_empty());
}
