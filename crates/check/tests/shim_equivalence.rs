//! RealShim must be a zero-cost passthrough: identical layout to the
//! std primitives it wraps and identical operational semantics, so code
//! generic over `SyncShim` compiled with `RealShim` behaves exactly
//! like the hand-written std version it replaced.

use std::mem::{align_of, size_of};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, AtomicUsize};
use std::sync::Arc;

use futurerd_check::sync::{AtomicIntShim, AtomicShim, MutexShim, Ordering, RealShim, SyncShim};

type RAtomicUsize = <RealShim as SyncShim>::AtomicUsize;
type RAtomicU64 = <RealShim as SyncShim>::AtomicU64;
type RAtomicU8 = <RealShim as SyncShim>::AtomicU8;
type RAtomicBool = <RealShim as SyncShim>::AtomicBool;
type RMutex<T> = <RealShim as SyncShim>::Mutex<T>;

#[test]
fn layout_matches_std() {
    assert_eq!(size_of::<RAtomicUsize>(), size_of::<AtomicUsize>());
    assert_eq!(align_of::<RAtomicUsize>(), align_of::<AtomicUsize>());
    assert_eq!(size_of::<RAtomicU64>(), size_of::<AtomicU64>());
    assert_eq!(align_of::<RAtomicU64>(), align_of::<AtomicU64>());
    assert_eq!(size_of::<RAtomicU8>(), size_of::<AtomicU8>());
    assert_eq!(align_of::<RAtomicU8>(), align_of::<AtomicU8>());
    assert_eq!(size_of::<RAtomicBool>(), size_of::<AtomicBool>());
    assert_eq!(align_of::<RAtomicBool>(), align_of::<AtomicBool>());
    assert_eq!(size_of::<RMutex<u64>>(), size_of::<std::sync::Mutex<u64>>());
}

#[test]
fn atomic_ops_match_std_semantics() {
    let shim = RAtomicUsize::new(10);
    let std_a = AtomicUsize::new(10);

    assert_eq!(
        shim.fetch_add(5, Ordering::AcqRel),
        std_a.fetch_add(5, Ordering::AcqRel)
    );
    assert_eq!(
        shim.fetch_sub(2, Ordering::AcqRel),
        std_a.fetch_sub(2, Ordering::AcqRel)
    );
    assert_eq!(
        shim.fetch_or(0b100, Ordering::AcqRel),
        std_a.fetch_or(0b100, Ordering::AcqRel)
    );
    assert_eq!(
        shim.fetch_and(0b110, Ordering::AcqRel),
        std_a.fetch_and(0b110, Ordering::AcqRel)
    );
    assert_eq!(
        shim.swap(99, Ordering::AcqRel),
        std_a.swap(99, Ordering::AcqRel)
    );
    assert_eq!(shim.load(Ordering::SeqCst), std_a.load(Ordering::SeqCst));

    // compare_exchange: both the success and failure paths.
    assert_eq!(
        shim.compare_exchange(99, 1, Ordering::AcqRel, Ordering::Acquire),
        std_a.compare_exchange(99, 1, Ordering::AcqRel, Ordering::Acquire)
    );
    assert_eq!(
        shim.compare_exchange(99, 2, Ordering::AcqRel, Ordering::Acquire),
        std_a.compare_exchange(99, 2, Ordering::AcqRel, Ordering::Acquire)
    );
    assert_eq!(shim.load(Ordering::SeqCst), std_a.load(Ordering::SeqCst));
}

#[test]
fn bool_and_narrow_widths_work() {
    let b = RAtomicBool::new(false);
    assert!(!b.swap(true, Ordering::AcqRel));
    assert!(b.load(Ordering::Acquire));
    assert_eq!(
        b.compare_exchange(true, false, Ordering::AcqRel, Ordering::Acquire),
        Ok(true)
    );

    let u = RAtomicU8::new(250);
    let w = AtomicU8::new(250);
    assert_eq!(
        u.fetch_add(9, Ordering::AcqRel),
        w.fetch_add(9, Ordering::AcqRel)
    );
    // u8 wrap-around matches std.
    assert_eq!(u.load(Ordering::Acquire), w.load(Ordering::Acquire));
    assert_eq!(u.load(Ordering::Acquire), 3);
}

#[test]
fn mutex_with_runs_closure_and_returns() {
    let m = RMutex::<Vec<u32>>::new(vec![1]);
    let len = m.with(|v| {
        v.push(2);
        v.len()
    });
    assert_eq!(len, 2);
    assert_eq!(m.with(|v| v.clone()), vec![1, 2]);
}

#[test]
fn real_shim_works_across_real_threads() {
    // The shim under genuine std::thread concurrency: a generic
    // protocol over SyncShim must hold up with real primitives.
    fn drain<S: SyncShim>(next: &S::AtomicUsize, len: usize) -> usize {
        let mut claimed = 0;
        loop {
            let cur = next.fetch_add(1, Ordering::AcqRel);
            if cur >= len {
                return claimed;
            }
            claimed += 1;
        }
    }
    const LEN: usize = 10_000;
    let next = Arc::new(RAtomicUsize::new(0));
    let handles: Vec<_> = (0..4)
        .map(|_| {
            let next = Arc::clone(&next);
            std::thread::spawn(move || drain::<RealShim>(&next, LEN))
        })
        .collect();
    let total: usize = handles.into_iter().map(|h| h.join().unwrap()).sum();
    assert_eq!(total, LEN, "every unit claimed exactly once");
}
