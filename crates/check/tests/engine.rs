//! Engine-level tests for the model checker itself: exploration counts,
//! sound pruning, deadlock/livelock detection, happens-before tracking,
//! and replay determinism.

use std::sync::Arc;

use futurerd_check::model::{self, CheckCell, Config, ModelAtomic, ModelMutex, Outcome};
use futurerd_check::sync::{AtomicIntShim, AtomicShim, MutexShim, Ordering};

fn exhaustive() -> Config {
    Config::exhaustive()
}

#[test]
fn single_thread_runs_once() {
    let stats = model::check(&exhaustive(), "single", || {
        let a = ModelAtomic::<usize>::new(1);
        assert_eq!(a.load(Ordering::Acquire), 1);
        a.store(2, Ordering::Release);
        assert_eq!(a.load(Ordering::Acquire), 2);
    });
    assert_eq!(stats.executions, 1, "no concurrency, no alternatives");
}

#[test]
fn two_increments_explore_both_orders() {
    let stats = model::check(&exhaustive(), "incr2", || {
        let n = Arc::new(ModelAtomic::<usize>::new(0));
        let n2 = Arc::clone(&n);
        let t = model::thread::spawn(move || {
            n2.fetch_add(1, Ordering::AcqRel);
        });
        n.fetch_add(1, Ordering::AcqRel);
        t.join();
        assert_eq!(n.load(Ordering::Acquire), 2);
    });
    assert!(
        stats.executions >= 2,
        "both orders must be visited, got {}",
        stats.executions
    );
}

#[test]
fn sleep_sets_prune_independent_pairs() {
    // Two threads touching DIFFERENT locations commute: DPOR should
    // need only one full execution order (plus pruned stubs).
    let stats = model::check(&exhaustive(), "indep", || {
        let a = Arc::new(ModelAtomic::<usize>::new(0));
        let b = Arc::new(ModelAtomic::<usize>::new(0));
        let a2 = Arc::clone(&a);
        let t = model::thread::spawn(move || {
            a2.fetch_add(1, Ordering::AcqRel);
        });
        b.fetch_add(1, Ordering::AcqRel);
        t.join();
        assert_eq!(a.load(Ordering::Acquire), 1);
        assert_eq!(b.load(Ordering::Acquire), 1);
    });
    // Unpruned this would be 2+ full executions over the 2-op
    // interleavings; sleep sets should cut the redundant order short.
    assert!(
        stats.pruned >= 1,
        "expected sleep-set pruning on commuting ops, stats: {stats:?}"
    );
}

#[test]
fn finds_lost_update() {
    let cex = model::assert_fails(&exhaustive(), "lost-update", || {
        let n = Arc::new(ModelAtomic::<usize>::new(0));
        let n2 = Arc::clone(&n);
        let t = model::thread::spawn(move || {
            let v = n2.load(Ordering::Acquire);
            n2.store(v + 1, Ordering::Release);
        });
        let v = n.load(Ordering::Acquire);
        n.store(v + 1, Ordering::Release);
        t.join();
        assert_eq!(n.load(Ordering::Acquire), 2, "lost update");
    });
    assert!(cex.message.contains("lost update"), "{}", cex.message);
    assert!(!cex.schedule.is_empty());
    assert!(!cex.trace.is_empty());
}

#[test]
fn spin_loop_terminates_via_stutter_filter() {
    // Without stutter filtering the waiter's spin loop makes the state
    // space infinite; with it, this explores and passes quickly.
    let stats = model::check(&exhaustive(), "spin", || {
        let flag = Arc::new(ModelAtomic::<bool>::new(false));
        let data = Arc::new(ModelAtomic::<usize>::new(0));
        let f2 = Arc::clone(&flag);
        let d2 = Arc::clone(&data);
        let t = model::thread::spawn(move || {
            d2.store(7, Ordering::Release);
            f2.store(true, Ordering::Release);
        });
        while !flag.load(Ordering::Acquire) {}
        assert_eq!(data.load(Ordering::Acquire), 7);
        t.join();
    });
    assert!(stats.executions < 100, "spin exploded: {stats:?}");
}

#[test]
fn deadlock_detected() {
    // A waiter spinning on a flag nobody ever sets: livelock.
    let cex = model::assert_fails(&exhaustive(), "stuck", || {
        let flag = Arc::new(ModelAtomic::<bool>::new(false));
        while !flag.load(Ordering::Acquire) {}
    });
    assert!(
        cex.message.contains("livelock") || cex.message.contains("deadlock"),
        "unexpected failure: {}",
        cex.message
    );
}

#[test]
fn mutex_provides_exclusion_and_ordering() {
    let stats = model::check(&exhaustive(), "mutex", || {
        let m = Arc::new(ModelMutex::<usize>::new(0));
        let m2 = Arc::clone(&m);
        let t = model::thread::spawn(move || {
            m2.with(|v| *v += 1);
        });
        m.with(|v| *v += 1);
        t.join();
        let total = m.with(|v| *v);
        assert_eq!(total, 2, "mutex increments can't be lost");
    });
    assert!(stats.executions >= 2);
}

#[test]
fn cell_race_detected_without_synchronization() {
    let cex = model::assert_fails(&exhaustive(), "race", || {
        let cell = Arc::new(CheckCell::new("shared", 0usize));
        let c2 = Arc::clone(&cell);
        let t = model::thread::spawn(move || {
            c2.with_mut(|v| *v = 1);
        });
        cell.with_mut(|v| *v = 2);
        t.join();
    });
    assert!(cex.message.contains("data race"), "{}", cex.message);
}

#[test]
fn cell_race_not_reported_with_release_acquire_publish() {
    model::check(&exhaustive(), "publish", || {
        let flag = Arc::new(ModelAtomic::<bool>::new(false));
        let cell = Arc::new(CheckCell::new("published", 0usize));
        let f2 = Arc::clone(&flag);
        let c2 = Arc::clone(&cell);
        let t = model::thread::spawn(move || {
            c2.with_mut(|v| *v = 9);
            f2.store(true, Ordering::Release);
        });
        while !flag.load(Ordering::Acquire) {}
        let v = cell.with(|v| *v);
        assert_eq!(v, 9);
        t.join();
    });
}

#[test]
fn relaxed_publish_is_a_race() {
    let cex = model::assert_fails(&exhaustive(), "relaxed-publish", || {
        let flag = Arc::new(ModelAtomic::<bool>::new(false));
        let cell = Arc::new(CheckCell::new("published", 0usize));
        let f2 = Arc::clone(&flag);
        let c2 = Arc::clone(&cell);
        let t = model::thread::spawn(move || {
            c2.with_mut(|v| *v = 9);
            f2.store(true, Ordering::Relaxed);
        });
        while !flag.load(Ordering::Acquire) {}
        let v = cell.with(|v| *v);
        assert_eq!(v, 9);
        t.join();
    });
    assert!(cex.message.contains("data race"), "{}", cex.message);
}

#[test]
fn three_threads_exhaustive_counter() {
    let stats = model::check(&exhaustive(), "incr3", || {
        let n = Arc::new(ModelAtomic::<usize>::new(0));
        let mk = |n: &Arc<ModelAtomic<usize>>| {
            let n = Arc::clone(n);
            move || {
                n.fetch_add(1, Ordering::AcqRel);
            }
        };
        let t1 = model::thread::spawn(mk(&n));
        let t2 = model::thread::spawn(mk(&n));
        n.fetch_add(1, Ordering::AcqRel);
        t1.join();
        t2.join();
        assert_eq!(n.load(Ordering::Acquire), 3);
    });
    assert!(stats.executions >= 6, "3! orders at least, got {stats:?}");
}

#[test]
fn preemption_bound_limits_exploration() {
    let run = |bound: Option<usize>| {
        let config = Config {
            preemption_bound: bound,
            ..Config::default()
        };
        model::check(&config, "bounded", || {
            let n = Arc::new(ModelAtomic::<usize>::new(0));
            let n2 = Arc::clone(&n);
            let t = model::thread::spawn(move || {
                for _ in 0..3 {
                    n2.fetch_add(1, Ordering::AcqRel);
                }
            });
            for _ in 0..3 {
                n.fetch_add(1, Ordering::AcqRel);
            }
            t.join();
            assert_eq!(n.load(Ordering::Acquire), 6);
        })
    };
    let bounded = run(Some(0));
    let free = run(None);
    assert!(
        bounded.executions < free.executions,
        "bound 0 ({:?}) must explore less than unbounded ({:?})",
        bounded,
        free
    );
}

#[test]
fn replay_follows_recorded_schedule() {
    let body = || {
        let n = Arc::new(ModelAtomic::<usize>::new(0));
        let n2 = Arc::clone(&n);
        let t = model::thread::spawn(move || {
            let v = n2.load(Ordering::Acquire);
            n2.store(v + 1, Ordering::Release);
        });
        let v = n.load(Ordering::Acquire);
        n.store(v + 1, Ordering::Release);
        t.join();
        assert_eq!(n.load(Ordering::Acquire), 2, "lost update");
    };
    let cex = model::assert_fails(&exhaustive(), "replayable", body);
    // assert_fails already replayed once; do it again explicitly and
    // compare end to end.
    let again = model::replay(body, &cex.schedule).expect("must reproduce");
    assert_eq!(again.message, cex.message);
    assert_eq!(again.schedule, cex.schedule);
}

#[test]
fn fixture_roundtrip() {
    let cex = model::Counterexample {
        message: "boom".into(),
        schedule: vec![0, 1, 1, 0, 2],
        trace: vec![],
        executions: 3,
    };
    let fixture = cex.to_fixture("demo");
    let parsed = model::parse_fixture(&fixture).expect("parses");
    assert_eq!(parsed, cex.schedule);
    assert!(fixture.contains("# target: demo"));
}

#[test]
fn outcome_incomplete_when_budget_too_small() {
    let config = Config {
        max_executions: 1,
        ..Config::default()
    };
    let outcome = model::explore(&config, || {
        let n = Arc::new(ModelAtomic::<usize>::new(0));
        let n2 = Arc::clone(&n);
        let t = model::thread::spawn(move || {
            n2.fetch_add(1, Ordering::AcqRel);
        });
        n.fetch_add(1, Ordering::AcqRel);
        t.join();
    });
    assert!(
        matches!(outcome, Outcome::Incomplete { .. }),
        "two runnable interleavings cannot finish in 1 execution: {outcome:?}"
    );
}
