//! Linter self-tests: seeded violations trip every rule, clean sources
//! pass, and the scanner survives the token-level edge cases that
//! would otherwise cause false positives.

use futurerd_check::lint::{self, LintConfig, Rule};

const MANIFEST: &[&str] = &[
    "session.ingest.events",
    "session.path.*",
    "freeze.assist.units.*",
    "obs.timeline.dropped",
    "reach.queries",
];

#[test]
fn seeded_violations_trip_every_rule() {
    let report = lint::seeded_violations(MANIFEST, &LintConfig::repo());
    assert!(!report.ok());
    for rule in [
        Rule::UnsafeAllowlist,
        Rule::SafetyComment,
        Rule::ObsName,
        Rule::RelaxedOrdering,
        Rule::InstantNow,
    ] {
        assert!(
            report.violations.iter().any(|v| v.rule == rule),
            "seeded sources failed to trip {rule}; report:\n{}",
            report.render()
        );
    }
}

fn lint_one(path: &str, text: &str, config: &LintConfig) -> Vec<lint::Violation> {
    lint::lint_sources(&[(path.to_string(), text.to_string())], MANIFEST, config).violations
}

#[test]
fn clean_file_passes() {
    let v = lint_one(
        "crates/core/src/freeze.rs",
        "pub fn stamp(&self) -> usize {\n    self.rows.len()\n}\n",
        &LintConfig::repo(),
    );
    assert!(v.is_empty(), "{v:?}");
}

#[test]
fn unsafe_in_allowlisted_file_needs_safety_comment() {
    let config = LintConfig::repo();
    let with_comment = lint_one(
        "crates/runtime/src/pool/job.rs",
        "fn g(p: *const u8) -> u8 {\n    // SAFETY: caller guarantees p is valid.\n    unsafe { *p }\n}\n",
        &config,
    );
    assert!(with_comment.is_empty(), "{with_comment:?}");

    let without = lint_one(
        "crates/runtime/src/pool/job.rs",
        "fn g(p: *const u8) -> u8 {\n    unsafe { *p }\n}\n",
        &config,
    );
    assert_eq!(without.len(), 1, "{without:?}");
    assert_eq!(without[0].rule, Rule::SafetyComment);
}

#[test]
fn unsafe_outside_allowlist_rejected_even_with_comment() {
    let v = lint_one(
        "crates/store/src/sidecar.rs",
        "fn f(p: *const u8) -> u8 {\n    // SAFETY: irrelevant, file not allowlisted.\n    unsafe { *p }\n}\n",
        &LintConfig::repo(),
    );
    assert_eq!(v.len(), 1, "{v:?}");
    assert_eq!(v[0].rule, Rule::UnsafeAllowlist);
}

#[test]
fn unsafe_in_string_or_comment_ignored() {
    let v = lint_one(
        "crates/store/src/sidecar.rs",
        "// this fn is not unsafe at all\nfn f() -> &'static str {\n    \"unsafe\"\n}\n",
        &LintConfig::repo(),
    );
    assert!(v.is_empty(), "{v:?}");
}

#[test]
fn unsafe_in_cfg_test_ignored() {
    let v = lint_one(
        "crates/store/src/sidecar.rs",
        "fn f() {}\n\n#[cfg(test)]\nmod tests {\n    fn g(p: *const u8) -> u8 {\n        unsafe { *p }\n    }\n}\n",
        &LintConfig::repo(),
    );
    assert!(v.is_empty(), "{v:?}");
}

#[test]
fn obs_name_typo_caught_and_manifest_name_passes() {
    let config = LintConfig::repo();
    let bad = lint_one(
        "crates/futurerd/src/session.rs",
        "fn h() { futurerd_obs::counter_add(\"sesion.ingest.evnts\", 1); }\n",
        &config,
    );
    assert_eq!(bad.len(), 1, "{bad:?}");
    assert_eq!(bad[0].rule, Rule::ObsName);

    let good = lint_one(
        "crates/futurerd/src/session.rs",
        "fn h() { futurerd_obs::counter_add(\"session.ingest.events\", 1); }\n",
        &config,
    );
    assert!(good.is_empty(), "{good:?}");
}

#[test]
fn obs_name_wildcards_match_format_placeholders() {
    let config = LintConfig::repo();
    // `format!("session.path.{kind}")`-style literals normalize their
    // placeholder to `*` and match the manifest wildcard.
    let good = lint_one(
        "crates/futurerd/src/session.rs",
        "fn h(kind: &str) { futurerd_obs::counter_add(&format!(\"session.path.{kind}\"), 1); }\n",
        &config,
    );
    assert!(good.is_empty(), "{good:?}");

    let bad = lint_one(
        "crates/futurerd/src/session.rs",
        "fn h(kind: &str) { futurerd_obs::counter_add(&format!(\"session.paths.{kind}\"), 1); }\n",
        &config,
    );
    assert_eq!(bad.len(), 1, "{bad:?}");
    assert_eq!(bad[0].rule, Rule::ObsName);
}

#[test]
fn obs_name_leading_placeholder_is_policed() {
    let config = LintConfig::repo();
    // A literal that opens with a `{prefix}` placeholder is still a name:
    // the placeholder normalizes to `*` and must match the manifest.
    let good = lint_one(
        "crates/core/src/stats.rs",
        "fn e(prefix: &str) { futurerd_obs::gauge_set(&format!(\"{prefix}.queries\"), 1); }\n",
        &config,
    );
    assert!(good.is_empty(), "{good:?}");

    let bad = lint_one(
        "crates/core/src/stats.rs",
        "fn e(prefix: &str) { futurerd_obs::gauge_set(&format!(\"{prefix}.querys\"), 1); }\n",
        &config,
    );
    assert_eq!(bad.len(), 1, "{bad:?}");
    assert_eq!(bad[0].rule, Rule::ObsName);
}

#[test]
fn non_name_strings_not_policed() {
    let v = lint_one(
        "crates/store/src/sidecar.rs",
        "fn ext() -> &'static str { \".sidecar.json\" }\nfn msg() -> &'static str { \"checksum mismatch. retry\" }\nfn ver() -> &'static str { \"Frd.Sidecar.V2\" }\n",
        &LintConfig::repo(),
    );
    assert!(v.is_empty(), "{v:?}");
}

#[test]
fn format_spec_dots_are_not_names() {
    // `{:.3}s` has its only dot inside the placeholder — a duration
    // formatter, not an obs name.
    let v = lint_one(
        "crates/obs/src/lib.rs",
        "fn f(ns: f64) -> String { format!(\"{:.3}s\", ns) }\n",
        &LintConfig::repo(),
    );
    assert!(v.is_empty(), "{v:?}");
}

#[test]
fn relaxed_field_on_its_own_line_attributes_to_the_allowlist() {
    // Rustfmt splits long chains; the allowlisted stat counter must
    // still be attributed across `.injected\n    .fetch_add(…)`.
    let good = lint_one(
        "crates/runtime/src/pool/mod.rs",
        "fn f(c: &C, i: usize) {\n    c.counters[i]\n        .injected\n        .fetch_add(1, Ordering::Relaxed);\n}\n",
        &LintConfig::repo(),
    );
    assert!(good.is_empty(), "{good:?}");

    let bad = lint_one(
        "crates/runtime/src/pool/mod.rs",
        "fn f(c: &C, i: usize) {\n    c.counters[i]\n        .claimed\n        .fetch_add(1, Ordering::Relaxed);\n}\n",
        &LintConfig::repo(),
    );
    assert_eq!(bad.len(), 1, "{bad:?}");
    assert_eq!(bad[0].rule, Rule::RelaxedOrdering);
}

#[test]
fn relaxed_on_policed_field_caught_allowlisted_field_passes() {
    let config = LintConfig::repo();
    let bad = lint_one(
        "crates/core/src/parallel/assist.rs",
        "impl ChunkIndex {\n    fn claim(&self) -> usize {\n        self.next.fetch_add(1, Ordering::Relaxed)\n    }\n}\n",
        &config,
    );
    assert_eq!(bad.len(), 1, "{bad:?}");
    assert_eq!(bad[0].rule, Rule::RelaxedOrdering);

    let allowed = lint_one(
        "crates/core/src/parallel/assist.rs",
        "impl ChunkIndex {\n    fn miss(&self) {\n        self.misses.fetch_add(1, Ordering::Relaxed);\n    }\n}\n",
        &config,
    );
    assert!(allowed.is_empty(), "{allowed:?}");
}

#[test]
fn relaxed_across_line_break_caught() {
    let v = lint_one(
        "crates/runtime/src/pool/latch.rs",
        "fn set(&self) {\n    self.set.store(\n        true,\n        Ordering::Relaxed,\n    );\n}\n",
        &LintConfig::repo(),
    );
    assert_eq!(v.len(), 1, "{v:?}");
    assert_eq!(v[0].rule, Rule::RelaxedOrdering);
}

#[test]
fn relaxed_outside_policed_files_ignored() {
    let v = lint_one(
        "crates/obs/src/lib.rs",
        "fn f(&self) { self.flags.load(Ordering::Relaxed); }\n",
        &LintConfig::repo(),
    );
    assert!(v.is_empty(), "{v:?}");
}

#[test]
fn instant_now_placement() {
    let config = LintConfig::repo();
    let bad = lint_one(
        "crates/core/src/parallel/mod.rs",
        "fn t() { let _ = std::time::Instant::now(); }\n",
        &config,
    );
    assert_eq!(bad.len(), 1, "{bad:?}");
    assert_eq!(bad[0].rule, Rule::InstantNow);

    let good = lint_one(
        "crates/obs/src/lib.rs",
        "fn t() { let _ = std::time::Instant::now(); }\n",
        &config,
    );
    assert!(good.is_empty(), "{good:?}");
}

#[test]
fn scanner_handles_raw_strings_and_lifetimes() {
    // Raw strings with quotes inside, lifetimes, char literals — none
    // of it should confuse the scanner into seeing phantom tokens.
    let v = lint_one(
        "crates/store/src/sidecar.rs",
        concat!(
            "fn f<'a>(s: &'a str) -> char {\n",
            "    let _raw = r#\"say \"unsafe\" out loud\"#;\n",
            "    let _esc = \"quote: \\\" unsafe \\\" done\";\n",
            "    let _b = b\"unsafe bytes\";\n",
            "    '\\''\n",
            "}\n",
        ),
        &LintConfig::repo(),
    );
    assert!(v.is_empty(), "{v:?}");
}

#[test]
fn report_renders_path_line_rule() {
    let report = lint::lint_sources(
        &[(
            "crates/core/src/parallel/mod.rs".to_string(),
            "fn t() {\n    let _ = std::time::Instant::now();\n}\n".to_string(),
        )],
        MANIFEST,
        &LintConfig::repo(),
    );
    let rendered = report.render();
    assert!(
        rendered.contains("crates/core/src/parallel/mod.rs:2: [instant-now]"),
        "{rendered}"
    );
}
