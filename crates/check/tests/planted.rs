//! Planted-bug self-tests: every deliberately broken protocol twin must
//! be refuted by the explorer with a replayable counterexample, and the
//! committed schedule fixtures must keep reproducing those failures.
//!
//! Regenerate fixtures after an engine change with:
//! `FUTURERD_CHECK_UPDATE_FIXTURES=1 cargo test -p futurerd-check --test planted`

use std::path::PathBuf;

use futurerd_check::model;
use futurerd_check::selftest;

#[test]
fn planted_double_claim_caught() {
    let cex = selftest::planted_double_claim();
    assert!(cex.message.contains("claimed twice"), "{}", cex.message);
    assert!(!cex.schedule.is_empty());
}

#[test]
fn planted_ring_drop_miscount_caught() {
    let cex = selftest::planted_ring_drop_miscount();
    assert!(
        cex.message.contains("ring accounting lost a push"),
        "{}",
        cex.message
    );
}

#[test]
fn planted_registry_lost_update_caught() {
    let cex = selftest::planted_registry_lost_update();
    assert!(cex.message.contains("lost an update"), "{}", cex.message);
}

#[test]
fn planted_relaxed_latch_race_caught() {
    let cex = selftest::planted_relaxed_latch_race();
    assert!(cex.message.contains("data race"), "{}", cex.message);
}

fn fixture_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(format!("{name}.schedule"))
}

/// The committed fixtures are byte-for-byte what the explorer produces
/// today (DFS order is deterministic), and each one replays to the
/// planted failure. With `FUTURERD_CHECK_UPDATE_FIXTURES=1` the test
/// rewrites them instead of failing on drift.
#[test]
fn committed_fixtures_replay_their_planted_bugs() {
    let update = std::env::var_os("FUTURERD_CHECK_UPDATE_FIXTURES").is_some();
    for (name, planted) in selftest::all() {
        let cex = planted();
        let fresh = cex.to_fixture(name);
        let path = fixture_path(name);
        if update {
            std::fs::create_dir_all(path.parent().unwrap()).unwrap();
            std::fs::write(&path, &fresh).unwrap();
            continue;
        }
        let committed = std::fs::read_to_string(&path).unwrap_or_else(|e| {
            panic!(
                "missing fixture {} ({e}); run with FUTURERD_CHECK_UPDATE_FIXTURES=1",
                path.display()
            )
        });
        assert_eq!(
            committed, fresh,
            "[{name}] fixture drifted from the explorer's counterexample; \
             regenerate with FUTURERD_CHECK_UPDATE_FIXTURES=1"
        );

        // And the committed schedule — parsed, not the in-memory one —
        // must still reproduce the failure on replay.
        let schedule = model::parse_fixture(&committed)
            .unwrap_or_else(|| panic!("[{name}] fixture has no parsable schedule line"));
        let body = selftest::body(name).unwrap();
        let replayed = model::replay(body, &schedule)
            .unwrap_or_else(|| panic!("[{name}] committed schedule no longer fails"));
        assert_eq!(replayed.message, cex.message, "[{name}] wrong failure");
    }
}
