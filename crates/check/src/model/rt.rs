//! The model runtime: one execution of the body under a controlled
//! schedule.
//!
//! Every model thread is a real OS thread, but exactly one runs at a
//! time — a baton protocol over one mutex + condvar. A thread reaching a
//! shim operation parks itself as `Waiting(op)`, picks the next runner
//! (it has the global view: everyone else is already parked), and blocks
//! until the baton comes back. The scheduling decision at each step is
//! either forced (replaying a DFS prefix or a counterexample schedule)
//! or free, in which case the step is recorded as a [`NewNode`] for the
//! explorer to backtrack over.
//!
//! Pruning implemented here, both sound:
//!
//! * **sleep sets** (DPOR): a choice already explored at a node stays
//!   asleep in the subtree of later siblings until a dependent operation
//!   wakes it; if every enabled thread is asleep the whole subtree is
//!   covered and the run aborts as `pruned`.
//! * **stutter filtering**: a pending atomic load of a location whose
//!   version is unchanged since the same thread's last load of it is
//!   never scheduled while anything else is enabled — rescheduling a
//!   no-op spin iteration cannot change any future state. This is what
//!   keeps spin-wait loops (latches) finite under exhaustive search.

use std::collections::BTreeSet;
use std::sync::{Arc, Condvar, Mutex, MutexGuard};

use super::clock::VClock;

pub(crate) type Tid = usize;
pub(crate) type LocId = usize;

/// What a parked thread wants to do next.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum OpKind {
    /// First transition of a freshly spawned thread.
    Start,
    /// Atomic load.
    Load,
    /// Atomic store.
    Store,
    /// Atomic read-modify-write (swap / compare_exchange / fetch_*).
    Rmw,
    /// Mutex acquisition (unlock is not a scheduling point: it only
    /// *enables* waiters, and commutes with every other enabled op).
    Lock,
    /// Non-atomic read of a [`CheckCell`](super::CheckCell).
    CellRead,
    /// Non-atomic write of a [`CheckCell`](super::CheckCell).
    CellWrite,
    /// Join on the thread with the given id.
    Join(Tid),
}

#[derive(Clone, Copy, Debug)]
pub(crate) struct PendingOp {
    pub kind: OpKind,
    pub loc: Option<LocId>,
}

/// Two enabled ops are independent iff executing them in either order
/// yields the same state: different locations always commute, and reads
/// of the same location commute with each other.
fn independent(a: &PendingOp, b: &PendingOp) -> bool {
    match (a.loc, b.loc) {
        (Some(la), Some(lb)) if la == lb => {
            let read = |k: OpKind| matches!(k, OpKind::Load | OpKind::CellRead);
            read(a.kind) && read(b.kind)
        }
        _ => true,
    }
}

pub(crate) enum LocKind {
    Atomic {
        value: u64,
    },
    Mutex {
        held_by: Option<Tid>,
    },
    Cell {
        last_write: Option<(Tid, VClock)>,
        reads: Vec<(Tid, VClock)>,
    },
}

pub(crate) struct Loc {
    pub label: String,
    pub kind: LocKind,
    /// Release clock of the location: joined by acquire loads / lock.
    pub sync: VClock,
    /// Bumped on every state change; drives stutter filtering.
    pub version: u64,
}

pub(crate) enum Status {
    Waiting(PendingOp),
    Running,
    Finished,
}

pub(crate) struct ThreadInfo {
    pub status: Status,
    pub clock: VClock,
    /// `(loc, version seen)` of the thread's latest executed atomic
    /// load, if its last op was a load.
    pub last_load: Option<(LocId, u64)>,
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub(crate) enum Phase {
    Running(Tid),
    Stopped,
}

/// A scheduling decision made beyond the forced prefix, recorded for
/// the explorer.
pub(crate) struct NewNode {
    /// Enabled, non-stuttering candidates at this point (pre preemption
    /// bound — the explorer applies the bound when picking siblings).
    pub enabled: Vec<(Tid, PendingOp)>,
    pub chosen: Tid,
    pub sleep_entry: Vec<Tid>,
    pub prev: Option<Tid>,
    pub preemptions_entry: usize,
}

/// Forced replay of one explorer path node.
pub(crate) struct PrefixStep {
    pub chosen: Tid,
    pub sleep_entry: Vec<Tid>,
    pub explored: Vec<Tid>,
}

pub(crate) enum Mode {
    Explore {
        prefix: Vec<PrefixStep>,
        bound: Option<usize>,
    },
    Replay {
        schedule: Vec<Tid>,
    },
}

pub(crate) struct RunState {
    pub phase: Phase,
    pub threads: Vec<ThreadInfo>,
    pub locs: Vec<Loc>,
    pub trace: Vec<String>,
    pub schedule: Vec<Tid>,
    pub new_nodes: Vec<NewNode>,
    pub failure: Option<String>,
    pub pruned: bool,
    mode: Mode,
    cur_sleep: Vec<Tid>,
    preemptions: usize,
    prev_running: Option<Tid>,
    depth: usize,
    steps_left: usize,
    pub handles: Vec<std::thread::JoinHandle<()>>,
}

pub(crate) struct Run {
    pub state: Mutex<RunState>,
    pub cv: Condvar,
}

/// Panic payload used to unwind a model thread when the run is over
/// (prune or failure elsewhere); caught by the thread wrapper.
pub(crate) struct AbortToken;

pub(crate) fn lock(run: &Run) -> MutexGuard<'_, RunState> {
    run.state
        .lock()
        .unwrap_or_else(|poison| poison.into_inner())
}

thread_local! {
    static CTX: std::cell::RefCell<Option<(Arc<Run>, Tid)>> =
        const { std::cell::RefCell::new(None) };
}

/// Runs `f` with the current model thread's run handle and id.
///
/// Panics with a clear message when a model primitive is used outside
/// `model::explore`.
pub(crate) fn with_ctx<R>(f: impl FnOnce(&Arc<Run>, Tid) -> R) -> R {
    CTX.with(|c| {
        let borrowed = c.borrow();
        let (run, tid) = borrowed
            .as_ref()
            .expect("futurerd-check model primitive used outside model::explore");
        f(run, *tid)
    })
}

impl RunState {
    fn is_stopped(&self) -> bool {
        self.phase == Phase::Stopped
    }

    /// Stops the run: wakes everyone so parked threads can unwind.
    pub fn stop(&mut self, cv: &Condvar) {
        self.phase = Phase::Stopped;
        cv.notify_all();
    }

    /// Records a protocol/model failure (first one wins).
    pub fn fail(&mut self, tid: Tid, message: impl Into<String>) {
        if self.failure.is_none() {
            let message = message.into();
            self.trace.push(format!("t{tid}: FAILURE: {message}"));
            self.failure = Some(message);
        }
    }

    /// Per-executed-op bookkeeping: advance the thread's clock and clear
    /// its load memory (loads re-set it afterwards).
    pub fn begin_op(&mut self, me: Tid) {
        self.threads[me].clock.bump(me);
        self.threads[me].last_load = None;
    }

    pub fn trace_ev(&mut self, me: Tid, text: impl Into<String>) {
        self.trace.push(format!("t{me}: {}", text.into()));
    }

    pub fn alloc_loc(&mut self, loc: Loc) -> LocId {
        self.locs.push(loc);
        self.locs.len() - 1
    }

    fn op_enabled(&self, op: &PendingOp) -> bool {
        match op.kind {
            OpKind::Lock => {
                let loc = op.loc.expect("lock op carries a location");
                match self.locs[loc].kind {
                    LocKind::Mutex { held_by } => held_by.is_none(),
                    _ => unreachable!("lock on non-mutex location"),
                }
            }
            OpKind::Join(target) => matches!(self.threads[target].status, Status::Finished),
            _ => true,
        }
    }

    fn is_stutter(&self, tid: Tid, op: &PendingOp) -> bool {
        if op.kind != OpKind::Load {
            return false;
        }
        let loc = op.loc.expect("load op carries a location");
        matches!(
            self.threads[tid].last_load,
            Some((l, v)) if l == loc && self.locs[loc].version == v
        )
    }

    fn op_desc(&self, op: &PendingOp) -> String {
        let at = op
            .loc
            .map(|l| format!(" on {}", self.locs[l].label))
            .unwrap_or_default();
        format!("{:?}{at}", op.kind)
    }

    /// Picks and wakes the next thread. Called with every thread parked
    /// (the previous runner just transitioned to `Waiting`/`Finished`).
    pub fn schedule_next(&mut self, cv: &Condvar) {
        if self.is_stopped() {
            return;
        }
        if self.failure.is_some() {
            self.stop(cv);
            return;
        }

        let mut enabled: Vec<(Tid, PendingOp)> = Vec::new();
        let mut stuttering: Vec<(Tid, PendingOp)> = Vec::new();
        let mut blocked: Vec<(Tid, PendingOp)> = Vec::new();
        let mut any_unfinished = false;
        for (tid, th) in self.threads.iter().enumerate() {
            match &th.status {
                Status::Waiting(op) => {
                    any_unfinished = true;
                    if !self.op_enabled(op) {
                        blocked.push((tid, *op));
                    } else if self.is_stutter(tid, op) {
                        stuttering.push((tid, *op));
                    } else {
                        enabled.push((tid, *op));
                    }
                }
                Status::Running => {
                    unreachable!("schedule_next while t{tid} is running")
                }
                Status::Finished => {}
            }
        }

        if !any_unfinished {
            self.stop(cv);
            return;
        }
        if enabled.is_empty() {
            // Stutter-only means every runnable transition is a spin
            // iteration that cannot change state: a livelock. No
            // runnable transition at all is a deadlock.
            let stuck: Vec<String> = stuttering
                .iter()
                .map(|(t, op)| format!("t{t} spinning: {}", self.op_desc(op)))
                .chain(
                    blocked
                        .iter()
                        .map(|(t, op)| format!("t{t} blocked: {}", self.op_desc(op))),
                )
                .collect();
            let kind = if stuttering.is_empty() {
                "deadlock"
            } else {
                "livelock"
            };
            self.fail(usize::MAX, format!("{kind}: {}", stuck.join("; ")));
            // Re-attribute: failure already traced with tid MAX; fine.
            self.stop(cv);
            return;
        }
        if self.steps_left == 0 {
            self.fail(
                usize::MAX,
                "transition budget exhausted (raise Config::max_steps or suspect livelock)",
            );
            self.stop(cv);
            return;
        }
        self.steps_left -= 1;

        let depth = self.depth;
        self.depth += 1;

        let chosen: Tid;
        match &self.mode {
            Mode::Replay { schedule } => {
                if depth < schedule.len() {
                    let want = schedule[depth];
                    if !enabled.iter().any(|(t, _)| *t == want)
                        && !stuttering.iter().any(|(t, _)| *t == want)
                    {
                        self.fail(
                            usize::MAX,
                            format!("replay diverged: schedule step {depth} wants t{want}, not runnable"),
                        );
                        self.stop(cv);
                        return;
                    }
                    chosen = want;
                } else {
                    chosen = enabled[0].0;
                }
            }
            Mode::Explore { prefix, bound } => {
                let bound = *bound;
                if depth < prefix.len() {
                    let step = &prefix[depth];
                    chosen = step.chosen;
                    if !enabled.iter().any(|(t, _)| *t == chosen) {
                        self.fail(
                            usize::MAX,
                            format!(
                                "internal: non-deterministic body? prefix step {depth} wants t{chosen}, not enabled"
                            ),
                        );
                        self.stop(cv);
                        return;
                    }
                    // Child sleep set = (entry sleep ∪ explored siblings)
                    // minus the chosen thread, filtered to ops
                    // independent of the chosen op.
                    let chosen_op = enabled.iter().find(|(t, _)| *t == chosen).unwrap().1;
                    let base: BTreeSet<Tid> = step
                        .sleep_entry
                        .iter()
                        .chain(step.explored.iter())
                        .copied()
                        .collect();
                    self.cur_sleep = self.filter_sleep(base, chosen, &chosen_op);
                } else {
                    // Free choice: record a node for the explorer.
                    let mut candidates: Vec<Tid> = enabled.iter().map(|(t, _)| *t).collect();
                    if let (Some(b), Some(prev)) = (bound, self.prev_running) {
                        if self.preemptions >= b && candidates.contains(&prev) {
                            candidates.retain(|t| *t == prev);
                        }
                    }
                    let Some(pick) = candidates
                        .iter()
                        .copied()
                        .find(|t| !self.cur_sleep.contains(t))
                    else {
                        // Everything enabled is asleep: subtree covered.
                        self.pruned = true;
                        self.stop(cv);
                        return;
                    };
                    chosen = pick;
                    self.new_nodes.push(NewNode {
                        enabled: enabled.clone(),
                        chosen,
                        sleep_entry: self.cur_sleep.clone(),
                        prev: self.prev_running,
                        preemptions_entry: self.preemptions,
                    });
                    let chosen_op = enabled.iter().find(|(t, _)| *t == chosen).unwrap().1;
                    let base: BTreeSet<Tid> = self.cur_sleep.iter().copied().collect();
                    self.cur_sleep = self.filter_sleep(base, chosen, &chosen_op);
                }
                if let Some(prev) = self.prev_running {
                    if chosen != prev && enabled.iter().any(|(t, _)| *t == prev) {
                        self.preemptions += 1;
                    }
                }
            }
        }

        self.schedule.push(chosen);
        self.prev_running = Some(chosen);
        self.phase = Phase::Running(chosen);
        cv.notify_all();
    }

    fn filter_sleep(&self, base: BTreeSet<Tid>, chosen: Tid, chosen_op: &PendingOp) -> Vec<Tid> {
        base.into_iter()
            .filter(|s| {
                if *s == chosen {
                    return false;
                }
                match &self.threads[*s].status {
                    Status::Waiting(op) => independent(op, chosen_op),
                    _ => false,
                }
            })
            .collect()
    }
}

fn panic_abort() -> ! {
    std::panic::panic_any(AbortToken)
}

/// Parks until the baton points at `me`, then marks it running.
/// Unwinds with [`AbortToken`] if the run stops first.
fn wait_for_baton(run: &Run, me: Tid) {
    let mut st = lock(run);
    loop {
        match st.phase {
            Phase::Running(t) if t == me => break,
            Phase::Stopped => {
                drop(st);
                panic_abort();
            }
            _ => st = run.cv.wait(st).unwrap_or_else(|poison| poison.into_inner()),
        }
    }
    st.threads[me].status = Status::Running;
}

/// The heart of every shim operation: park at a scheduling point with
/// `op` pending, and once scheduled run `exec` against the run state.
pub(crate) fn yield_and_execute<R>(op: PendingOp, exec: impl FnOnce(&mut RunState, Tid) -> R) -> R {
    with_ctx(|run, me| {
        {
            let mut st = lock(run);
            if st.is_stopped() {
                drop(st);
                panic_abort();
            }
            st.threads[me].status = Status::Waiting(op);
            st.schedule_next(&run.cv);
        }
        wait_for_baton(run, me);
        let mut st = lock(run);
        let out = exec(&mut st, me);
        if st.failure.is_some() {
            st.stop(&run.cv);
            drop(st);
            panic_abort();
        }
        out
    })
}

/// Runs `mutate` against the state without a scheduling point (used for
/// mutex unlock and location registration — operations that commute
/// with every enabled op).
pub(crate) fn execute_inline<R>(mutate: impl FnOnce(&mut RunState, Tid) -> R) -> R {
    with_ctx(|run, me| {
        let mut st = lock(run);
        let out = mutate(&mut st, me);
        if st.failure.is_some() {
            st.stop(&run.cv);
            drop(st);
            panic_abort();
        }
        out
    })
}

/// Spawns the OS thread backing model thread `tid`, which must already
/// be registered as `Waiting(Start)`.
pub(crate) fn spawn_os_thread(run: &Arc<Run>, tid: Tid, f: Box<dyn FnOnce() + Send>) {
    let run2 = Arc::clone(run);
    let handle = std::thread::spawn(move || {
        CTX.with(|c| *c.borrow_mut() = Some((Arc::clone(&run2), tid)));
        let entered = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            wait_for_baton(&run2, tid);
            let mut st = lock(&run2);
            st.begin_op(tid);
            st.trace_ev(tid, "start");
            drop(st);
            f();
        }));
        let mut st = lock(&run2);
        st.threads[tid].status = Status::Finished;
        match entered {
            Ok(()) => {
                st.trace_ev(tid, "finish");
                st.schedule_next(&run2.cv);
            }
            Err(payload) => {
                if payload.downcast_ref::<AbortToken>().is_none() {
                    let msg = payload
                        .downcast_ref::<&str>()
                        .map(|s| s.to_string())
                        .or_else(|| payload.downcast_ref::<String>().cloned())
                        .unwrap_or_else(|| "model thread panicked (non-string payload)".into());
                    st.fail(tid, msg);
                }
                st.stop(&run2.cv);
            }
        }
    });
    lock(run).handles.push(handle);
}

pub(crate) struct RunResult {
    pub failure: Option<String>,
    pub pruned: bool,
    pub schedule: Vec<Tid>,
    pub trace: Vec<String>,
    pub new_nodes: Vec<NewNode>,
}

/// Executes the body once under `mode` and returns what happened.
pub(crate) fn run_once(
    body: Arc<dyn Fn() + Send + Sync>,
    mode: Mode,
    max_steps: usize,
) -> RunResult {
    let run = Arc::new(Run {
        state: Mutex::new(RunState {
            phase: Phase::Running(usize::MAX), // placeholder until first decision
            threads: vec![ThreadInfo {
                status: Status::Waiting(PendingOp {
                    kind: OpKind::Start,
                    loc: None,
                }),
                clock: VClock::default(),
                last_load: None,
            }],
            locs: Vec::new(),
            trace: Vec::new(),
            schedule: Vec::new(),
            new_nodes: Vec::new(),
            failure: None,
            pruned: false,
            mode,
            cur_sleep: Vec::new(),
            preemptions: 0,
            prev_running: None,
            depth: 0,
            steps_left: max_steps,
            handles: Vec::new(),
        }),
        cv: Condvar::new(),
    });

    spawn_os_thread(&run, 0, Box::new(move || body()));
    {
        let mut st = lock(&run);
        st.schedule_next(&run.cv);
    }

    // Wait for the run to stop, then reap the OS threads.
    let handles = {
        let mut st = lock(&run);
        while st.phase != Phase::Stopped {
            st = run.cv.wait(st).unwrap_or_else(|poison| poison.into_inner());
        }
        std::mem::take(&mut st.handles)
    };
    for h in handles {
        let _ = h.join();
    }

    let mut st = lock(&run);
    RunResult {
        failure: st.failure.take(),
        pruned: st.pruned,
        schedule: std::mem::take(&mut st.schedule),
        trace: std::mem::take(&mut st.trace),
        new_nodes: std::mem::take(&mut st.new_nodes),
    }
}
