//! Vector clocks for the model's happens-before tracking.

/// A grow-on-demand vector clock indexed by model thread id.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub(crate) struct VClock(Vec<u64>);

impl VClock {
    /// Component for `tid` (0 if never touched).
    pub fn get(&self, tid: usize) -> u64 {
        self.0.get(tid).copied().unwrap_or(0)
    }

    fn grow(&mut self, tid: usize) {
        if self.0.len() <= tid {
            self.0.resize(tid + 1, 0);
        }
    }

    /// Advances `tid`'s own component — called once per executed op.
    pub fn bump(&mut self, tid: usize) {
        self.grow(tid);
        self.0[tid] += 1;
    }

    /// Element-wise max with `other` (acquire / join edge).
    pub fn join(&mut self, other: &VClock) {
        if other.0.is_empty() {
            return;
        }
        self.grow(other.0.len() - 1);
        for (mine, theirs) in self.0.iter_mut().zip(other.0.iter()) {
            *mine = (*mine).max(*theirs);
        }
    }

    /// Clears every component (used to model a relaxed store breaking a
    /// location's release history).
    pub fn clear(&mut self) {
        self.0.clear();
    }
}

/// Did the event with clock `ev` on thread `ev_tid` happen-before an
/// observer whose clock is `observer`?
pub(crate) fn happens_before(ev: &VClock, ev_tid: usize, observer: &VClock) -> bool {
    ev.get(ev_tid) <= observer.get(ev_tid)
}
