//! Model threads: the `std::thread::{spawn, JoinHandle}` analogue whose
//! scheduling the explorer controls.

use std::sync::{Arc, Mutex};

use super::rt::{self, OpKind, PendingOp, Status, ThreadInfo};

/// Handle to a spawned model thread.
pub struct JoinHandle<T> {
    tid: usize,
    result: Arc<Mutex<Option<T>>>,
}

/// Spawns a model thread running `f`.
///
/// Spawning is an event on the parent (the child inherits the parent's
/// clock: everything the parent did happens-before the child), but not
/// a scheduling point — the child's first transition is its own `Start`
/// op, which the explorer schedules like any other.
pub fn spawn<T, F>(f: F) -> JoinHandle<T>
where
    T: Send + 'static,
    F: FnOnce() -> T + Send + 'static,
{
    let result = Arc::new(Mutex::new(None));
    let slot = Arc::clone(&result);
    let tid = rt::execute_inline(|st, me| {
        st.begin_op(me);
        let clock = st.threads[me].clock.clone();
        let tid = st.threads.len();
        st.threads.push(ThreadInfo {
            status: Status::Waiting(PendingOp {
                kind: OpKind::Start,
                loc: None,
            }),
            clock,
            last_load: None,
        });
        st.trace_ev(me, format!("spawn t{tid}"));
        tid
    });
    rt::with_ctx(|run, _me| {
        rt::spawn_os_thread(
            run,
            tid,
            Box::new(move || {
                let value = f();
                *slot.lock().unwrap_or_else(|poison| poison.into_inner()) = Some(value);
            }),
        );
    });
    JoinHandle { tid, result }
}

impl<T> JoinHandle<T> {
    /// Waits for the thread to finish and returns its result.
    ///
    /// A scheduling point; disabled until the target thread has
    /// finished, and joins its final clock into the caller's
    /// (everything the child did happens-before the join).
    pub fn join(self) -> T {
        let tid = self.tid;
        rt::yield_and_execute(
            PendingOp {
                kind: OpKind::Join(tid),
                loc: None,
            },
            move |st, me| {
                st.begin_op(me);
                let child = st.threads[tid].clock.clone();
                st.threads[me].clock.join(&child);
                st.trace_ev(me, format!("join t{tid}"));
            },
        );
        self.result
            .lock()
            .unwrap_or_else(|poison| poison.into_inner())
            .take()
            .expect("model join: thread finished without storing a result")
    }
}
