//! A mini-loom: exhaustive schedule exploration for code written
//! against the [`sync`](crate::sync) shim.
//!
//! # Usage
//!
//! ```
//! use futurerd_check::model::{self, Config};
//! use futurerd_check::sync::{AtomicIntShim, AtomicShim, Ordering, SyncShim};
//! use std::sync::Arc;
//!
//! let stats = model::check(&Config::default(), "counter", || {
//!     let n = Arc::new(<model::ModelShim as SyncShim>::AtomicUsize::new(0));
//!     let n2 = Arc::clone(&n);
//!     let t = model::thread::spawn(move || {
//!         n2.fetch_add(1, Ordering::AcqRel);
//!     });
//!     n.fetch_add(1, Ordering::AcqRel);
//!     t.join();
//!     assert_eq!(n.load(Ordering::Acquire), 2);
//! });
//! assert!(stats.executions >= 2); // both interleavings visited
//! ```
//!
//! The body runs many times, once per explored schedule; it must be
//! deterministic apart from scheduling (create all shared state inside
//! the closure). On failure — a panicked assertion, a data race on a
//! [`CheckCell`], a deadlock or livelock — exploration stops and the
//! failing schedule comes back as a [`Counterexample`] that
//! [`replay`] can re-execute step for step.
//!
//! # State-space bounds
//!
//! Exploration is exhaustive up to two sound reductions (sleep sets and
//! spin-stutter filtering, see `rt`-internal docs) and one optional
//! unsound-but-complete-in-practice cut: a preemption bound
//! ([`Config::preemption_bound`]), counting the schedule points where a
//! thread was switched away from while still runnable. Two-thread
//! targets are cheap to run unbounded; three-thread targets explode and
//! are bounded in CI, with nightly raising the bound.

mod clock;
mod rt;
mod shim;
pub mod thread;

use std::sync::Arc;

pub use shim::{CheckCell, ModelAtomic, ModelMutex, ModelShim};

use rt::{Mode, NewNode, PrefixStep, Tid};

/// Exploration limits.
#[derive(Clone, Debug)]
pub struct Config {
    /// Maximum number of preemptive context switches per schedule
    /// (`None` = unbounded ⇒ fully exhaustive modulo sound pruning).
    pub preemption_bound: Option<usize>,
    /// Abort exploration after this many executions.
    pub max_executions: u64,
    /// Per-execution transition budget (runaway/livelock guard).
    pub max_steps: usize,
}

impl Default for Config {
    fn default() -> Self {
        Self {
            preemption_bound: None,
            max_executions: 500_000,
            max_steps: 10_000,
        }
    }
}

impl Config {
    /// Unbounded exhaustive exploration.
    pub fn exhaustive() -> Self {
        Self::default()
    }

    /// Exploration with at most `n` preemptions per schedule.
    pub fn bounded(n: usize) -> Self {
        Self {
            preemption_bound: Some(n),
            ..Self::default()
        }
    }
}

/// A failing schedule with everything needed to reproduce and read it.
#[derive(Clone, Debug)]
pub struct Counterexample {
    /// What went wrong (assertion message, race report, deadlock…).
    pub message: String,
    /// The scheduling decisions, in order: `schedule[i]` is the thread
    /// id chosen at the i-th scheduling point. Feed to [`replay`].
    pub schedule: Vec<usize>,
    /// Human-readable op-level trace of the failing execution.
    pub trace: Vec<String>,
    /// Executions performed before the failure was found.
    pub executions: u64,
}

impl Counterexample {
    /// Multi-line report: message, schedule, trace.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "model check failed (execution #{}): {}\n",
            self.executions, self.message
        ));
        out.push_str(&format!("schedule: {}\n", fmt_schedule(&self.schedule)));
        out.push_str("trace:\n");
        for (i, ev) in self.trace.iter().enumerate() {
            out.push_str(&format!("  {i:>3}  {ev}\n"));
        }
        out
    }

    /// Serializes the schedule as a committed regression fixture.
    pub fn to_fixture(&self, target: &str) -> String {
        let first_line = self.message.lines().next().unwrap_or("");
        format!(
            "# futurerd-check counterexample schedule\n\
             # target: {target}\n\
             # reproduces: {first_line}\n\
             schedule: {}\n",
            fmt_schedule(&self.schedule)
        )
    }
}

fn fmt_schedule(schedule: &[usize]) -> String {
    schedule
        .iter()
        .map(|t| t.to_string())
        .collect::<Vec<_>>()
        .join(" ")
}

/// Parses a fixture produced by [`Counterexample::to_fixture`].
///
/// Returns `None` if no `schedule:` line is present or it fails to
/// parse.
pub fn parse_fixture(text: &str) -> Option<Vec<usize>> {
    for line in text.lines() {
        if let Some(rest) = line.trim().strip_prefix("schedule:") {
            let mut out = Vec::new();
            for tok in rest.split_whitespace() {
                out.push(tok.parse().ok()?);
            }
            return Some(out);
        }
    }
    None
}

/// Statistics from a passing exploration.
#[derive(Clone, Copy, Debug)]
pub struct PassStats {
    /// Distinct schedules executed.
    pub executions: u64,
    /// Total transitions across all executions.
    pub transitions: u64,
    /// Executions cut short by sleep-set pruning (a measure of how much
    /// redundant interleaving DPOR removed).
    pub pruned: u64,
}

/// Result of [`explore`].
#[derive(Debug)]
pub enum Outcome {
    /// Every schedule (within bounds) upheld every invariant.
    Pass(PassStats),
    /// A schedule failed; counterexample attached.
    Fail(Box<Counterexample>),
    /// `max_executions` hit before the state space was exhausted.
    Incomplete {
        /// Executions performed before giving up.
        executions: u64,
    },
}

struct PathNode {
    inner: NewNode,
    explored: Vec<Tid>,
}

/// Explores every schedule of `body` within `config`'s bounds.
pub fn explore<F>(config: &Config, body: F) -> Outcome
where
    F: Fn() + Send + Sync + 'static,
{
    let body: Arc<dyn Fn() + Send + Sync> = Arc::new(body);
    let mut path: Vec<PathNode> = Vec::new();
    let mut executions = 0u64;
    let mut transitions = 0u64;
    let mut pruned = 0u64;

    loop {
        let prefix: Vec<PrefixStep> = path
            .iter()
            .map(|n| PrefixStep {
                chosen: n.inner.chosen,
                sleep_entry: n.inner.sleep_entry.clone(),
                explored: n.explored.clone(),
            })
            .collect();
        let res = rt::run_once(
            Arc::clone(&body),
            Mode::Explore {
                prefix,
                bound: config.preemption_bound,
            },
            config.max_steps,
        );
        executions += 1;
        transitions += res.schedule.len() as u64;
        pruned += res.pruned as u64;

        if let Some(message) = res.failure {
            return Outcome::Fail(Box::new(Counterexample {
                message,
                schedule: res.schedule,
                trace: res.trace,
                executions,
            }));
        }

        path.extend(res.new_nodes.into_iter().map(|inner| PathNode {
            inner,
            explored: Vec::new(),
        }));

        // Depth-first backtrack: mark the deepest node's choice
        // explored and move to its next viable sibling; pop when none.
        loop {
            let Some(node) = path.last_mut() else {
                return Outcome::Pass(PassStats {
                    executions,
                    transitions,
                    pruned,
                });
            };
            let chosen = node.inner.chosen;
            node.explored.push(chosen);
            if let Some(next) = next_choice(node, config.preemption_bound) {
                node.inner.chosen = next;
                break;
            }
            path.pop();
        }

        if executions >= config.max_executions {
            return Outcome::Incomplete { executions };
        }
    }
}

/// Next unexplored, non-sleeping, bound-respecting sibling at `node`.
fn next_choice(node: &PathNode, bound: Option<usize>) -> Option<Tid> {
    for (t, _op) in &node.inner.enabled {
        if node.explored.contains(t) || node.inner.sleep_entry.contains(t) {
            continue;
        }
        if let (Some(b), Some(prev)) = (bound, node.inner.prev) {
            let prev_enabled = node.inner.enabled.iter().any(|(e, _)| *e == prev);
            if prev_enabled && *t != prev && node.inner.preemptions_entry >= b {
                continue;
            }
        }
        return Some(*t);
    }
    None
}

/// Re-executes `body` under a recorded schedule. Returns the failure it
/// reproduces, or `None` if the run passes.
pub fn replay<F>(body: F, schedule: &[usize]) -> Option<Counterexample>
where
    F: Fn() + Send + Sync + 'static,
{
    let body: Arc<dyn Fn() + Send + Sync> = Arc::new(body);
    let res = rt::run_once(
        body,
        Mode::Replay {
            schedule: schedule.to_vec(),
        },
        Config::default().max_steps,
    );
    res.failure.map(|message| Counterexample {
        message,
        schedule: res.schedule,
        trace: res.trace,
        executions: 1,
    })
}

/// Explores and panics with a rendered counterexample on failure or an
/// incomplete search; returns pass statistics otherwise.
///
/// The go-to entry point for `#[test]`s.
pub fn check<F>(config: &Config, name: &str, body: F) -> PassStats
where
    F: Fn() + Send + Sync + 'static,
{
    match explore(config, body) {
        Outcome::Pass(stats) => stats,
        Outcome::Fail(cex) => panic!("[{name}] {}", cex.render()),
        Outcome::Incomplete { executions } => panic!(
            "[{name}] exploration incomplete after {executions} executions; \
             raise Config::max_executions or tighten the config"
        ),
    }
}

/// Explores expecting a failure (planted-bug self-tests): panics if the
/// body checks out clean, and verifies the counterexample is actually
/// replayable before returning it.
pub fn assert_fails<F>(config: &Config, name: &str, body: F) -> Counterexample
where
    F: Fn() + Send + Sync + Clone + 'static,
{
    match explore(config, body.clone()) {
        Outcome::Fail(cex) => {
            let replayed = replay(body, &cex.schedule).unwrap_or_else(|| {
                panic!(
                    "[{name}] counterexample schedule did not reproduce on replay:\n{}",
                    cex.render()
                )
            });
            assert_eq!(
                replayed.message, cex.message,
                "[{name}] replay reproduced a different failure"
            );
            *cex
        }
        Outcome::Pass(stats) => panic!(
            "[{name}] expected the planted bug to be caught, but {} executions passed",
            stats.executions
        ),
        Outcome::Incomplete { executions } => panic!(
            "[{name}] exploration incomplete after {executions} executions without finding the planted bug"
        ),
    }
}
